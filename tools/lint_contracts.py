#!/usr/bin/env python3
"""Repo concurrency-contract linter.

Mechanically enforceable halves of the concurrency contracts that Clang
Thread Safety Analysis cannot see (run alongside -Wthread-safety, not
instead of it):

  1. raw-primitive  -- no raw std::mutex / std::lock_guard /
     std::unique_lock / std::scoped_lock / std::condition_variable outside
     src/sync/. Everything locks through nttpim::sync so the annotated
     wrappers are the single locking vocabulary (a raw primitive would be
     invisible to the analysis).
  2. atomic-order   -- every atomic member-function op (.load/.store/
     .exchange/.fetch_*/.compare_exchange_*) names an explicit
     std::memory_order, and no atomic declared in the file is touched
     through its implicit-seq_cst operator sugar (++, --, +=, -=, plain
     assignment, or implicit-conversion read). Orderings are part of the
     contract; defaults hide them.
  3. no-test-sleep  -- no sleep_for / sleep_until in tests/. A sleeping
     test is a race with a timeout; the repo's test idioms (pause/resume
     staging, fake clocks + tick(), drain()) exist so tests never wait on
     wall time.

Exit status: 0 clean, 1 findings, 2 usage error. Findings print as
path:line: [rule] message.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINT_DIRS = ("src", "tests", "bench", "examples")
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

# The one place raw primitives are allowed: the annotated wrappers.
RAW_PRIMITIVE_ALLOWED = ("src/sync/",)

RAW_PRIMITIVES = re.compile(
    r"std\s*::\s*(mutex|timed_mutex|recursive_mutex|shared_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable"
    r"|condition_variable_any)\b"
)

# .clear()/.wait() are omitted: shared with vector/CondVar spellings, and
# the repo uses neither atomic_flag nor atomic wait.
ATOMIC_METHODS = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or"
    r"|fetch_xor|compare_exchange_weak|compare_exchange_strong"
    r"|test_and_set)\s*\("
)

ATOMIC_DECL = re.compile(
    r"std\s*::\s*(?:atomic\s*<[^;{}()]*>|atomic_flag|atomic_bool"
    r"|atomic_int|atomic_uint|atomic_size_t|atomic_uint64_t)\s+(\w+)"
)

SLEEP = re.compile(r"\b(?:std\s*::\s*this_thread\s*::\s*)?sleep_(for|until)\s*\(")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    reported line numbers stay true."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def call_argument_text(code: str, open_paren: int) -> str:
    """The text between a call's parentheses, depth-matched."""
    depth = 0
    for j in range(open_paren, len(code)):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1 : j]
    return code[open_paren + 1 :]


def line_of(code: str, pos: int) -> int:
    return code.count("\n", 0, pos) + 1


def check_raw_primitives(rel: str, code: str, findings: list[str]) -> None:
    if any(rel.startswith(prefix) for prefix in RAW_PRIMITIVE_ALLOWED):
        return
    for m in RAW_PRIMITIVES.finditer(code):
        findings.append(
            f"{rel}:{line_of(code, m.start())}: [raw-primitive] std::{m.group(1)} "
            f"outside src/sync/ — lock through nttpim::sync so the TSA "
            f"annotations see it"
        )


def check_atomic_order(rel: str, code: str, findings: list[str]) -> None:
    # Member-function ops must spell their ordering.
    for m in ATOMIC_METHODS.finditer(code):
        method = m.group(1)
        args = call_argument_text(code, m.end() - 1)
        if "memory_order" in args:
            continue
        findings.append(
            f"{rel}:{line_of(code, m.start())}: [atomic-order] .{method}() without "
            f"an explicit std::memory_order"
        )
    # Operator sugar on atomics declared in this file is implicit seq_cst.
    atomics = {m.group(1) for m in ATOMIC_DECL.finditer(code)}
    for name in atomics:
        sugar = re.compile(
            rf"(?:\+\+|--)\s*{name}\b|\b{name}(?:\s*\[[^\]]*\])?\s*"
            rf"(?:\+\+|--|(?<![<>=!+\-*/&|^]))(?:[+\-&|^]?=)(?!=)"
        )
        for m in sugar.finditer(code):
            # Skip the declaration itself (member init like {0} / = 0).
            decl = ATOMIC_DECL.search(code[: m.end()])
            if decl and decl.group(1) == name and decl.end() >= m.start():
                continue
            findings.append(
                f"{rel}:{line_of(code, m.start())}: [atomic-order] operator op on "
                f"atomic '{name}' (implicit seq_cst) — use "
                f".load/.store/.fetch_* with an explicit ordering"
            )


def check_test_sleep(rel: str, code: str, findings: list[str]) -> None:
    if not rel.startswith("tests/"):
        return
    for m in SLEEP.finditer(code):
        findings.append(
            f"{rel}:{line_of(code, m.start())}: [no-test-sleep] sleep_{m.group(1)} "
            f"in a test — stage determinism with pause()/resume(), fake "
            f"clocks + tick(), or drain() instead of wall time"
        )


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"lint_contracts: not a directory: {root}", file=sys.stderr)
        return 2
    findings: list[str] = []
    for top in LINT_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
            check_raw_primitives(rel, code, findings)
            check_atomic_order(rel, code, findings)
            check_test_sleep(rel, code, findings)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_contracts: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_contracts: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
