// Batched NTT requests, two ways:
//  1. Through the memory-controller front end (Fig. 1): several
//     polynomials with *different moduli* resident in one bank, each
//     transformed by its own queued request — the PARAM prologues
//     re-parameterize the CU between calls (the flexibility
//     MeNTT/CryptoPIM lack, Sec. VI.E).
//  2. Through the throughput-shaped FHE backend: PimBackend::transform_batch
//     shards a pile of same-parameter polynomials across a multi-bank
//     device, one cached plan replicated per bank, one engine pass per
//     wave — bank-level parallelism end-to-end.
#include <cstdlib>
#include <iostream>

#include "common/random.h"
#include "common/table.h"
#include "fhe/pim_backend.h"
#include "mapping/controller.h"
#include "ntt/negacyclic.h"
#include "ntt/primes.h"
#include "ntt/reference.h"
#include "pim/host.h"
#include "sim/engine.h"

namespace {

// Part 2: batched same-parameter transforms across a 4-bank device.
int run_backend_batch() {
  using namespace nttpim;

  const ntt::NttParams params = ntt::NttParams::create(1024, 30);
  fhe::PimBackend backend(/*num_buffers=*/4, 1200.0,
                          dram::hbm2e_geometry(4));

  Rng rng(11);
  std::vector<std::vector<std::uint32_t>> polys(10);
  std::vector<std::vector<std::uint32_t>> expected(10);
  for (std::size_t i = 0; i < polys.size(); ++i) {
    polys[i] = rng.residues(1024, params.q());
    expected[i] = polys[i];
    ntt::forward_negacyclic_ntt(expected[i], params);
  }

  backend.transform_batch(polys, params);

  const bool ok = polys == expected;
  std::cout << "\nBatched backend: 10 forward negacyclic NTTs (N = 1024) "
               "over 4 banks:\n  "
            << backend.engine_passes() << " engine passes (waves), "
            << backend.total_cycles() << " modeled cycles total, plan cache "
            << backend.plan_cache_misses() << " misses / "
            << backend.plan_cache_hits() << " hits, verified: "
            << (ok ? "YES" : "NO") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int main() {
  using namespace nttpim;

  const dram::DramGeometry geometry = dram::hbm2e_geometry();
  pim::PimDevice device(geometry, /*num_buffers=*/4);
  mapping::MemoryController controller(geometry,
                                       {.num_buffers = 4});

  // Three requests: different sizes, different moduli, disjoint rows.
  struct Job {
    std::size_t n;
    unsigned bits;
    std::uint32_t base_row;
  };
  const Job jobs[] = {{512, 31, 0}, {1024, 30, 8}, {256, 29, 16}};

  Rng rng(7);
  std::vector<std::vector<std::uint32_t>> inputs;
  std::vector<ntt::NttParams> params;
  for (const auto& job : jobs) {
    const std::uint32_t q = ntt::find_ntt_prime(job.n, job.bits);
    params.emplace_back(job.n, q);
    inputs.push_back(rng.residues(job.n, q));
    pim::load_polynomial(device.bank(0), job.base_row, inputs.back());
    controller.submit(
        {.bank = 0, .base_row = job.base_row, .n = job.n, .q = q});
  }

  const sim::Engine engine{sim::EngineConfig{}};
  const auto stats = engine.run(device, controller.pending_trace());

  TablePrinter table({"N", "q", "base row", "commands", "verified"});
  bool all_ok = true;
  for (std::size_t i = 0; i < std::size(jobs); ++i) {
    auto expected = inputs[i];
    ntt::forward_ntt(expected, params[i]);
    const auto& response = controller.responses()[i];
    const bool ok = pim::read_result(device.bank(0),
                                     response.result_base_row,
                                     jobs[i].n) == expected;
    all_ok = all_ok && ok;
    table.add_row({std::to_string(jobs[i].n),
                   std::to_string(params[i].q()),
                   std::to_string(jobs[i].base_row),
                   std::to_string(response.command_count),
                   ok ? "YES" : "NO"});
  }

  std::cout << "Batched NTT requests on one bank (one engine run):\n\n";
  table.print(std::cout);
  std::cout << "\nTotal: " << stats.commands << " commands, " << stats.cycles
            << " cycles (" << stats.us() << " us), bus utilization "
            << TablePrinter::num(stats.bus_utilization() * 100, 1)
            << "%\n";
  if (!all_ok) return EXIT_FAILURE;
  return run_backend_batch();
}
