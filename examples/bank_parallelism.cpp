// Bank-level parallelism (paper Sec. VI.A / VII): an RNS-decomposed FHE
// workload runs one limb's NTT in each DRAM bank concurrently, sharing only
// the command bus. Prints the measured throughput speedup per bank count.
#include <iostream>

#include "common/table.h"
#include "fhe/rns.h"
#include "sim/runner.h"

int main(int argc, char** argv) {
  using namespace nttpim;
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 2048;

  // The FHE framing: a 4-limb RNS ciphertext needs 4 independent NTTs —
  // one per bank. (run_parallel_ntts generalizes to any bank count.)
  const fhe::RnsBasis basis(n, 4, 30);
  std::cout << "RNS basis for N=" << n << ": ";
  for (std::size_t i = 0; i < basis.limb_count(); ++i)
    std::cout << basis.prime(i) << (i + 1 < basis.limb_count() ? ", " : "\n");
  std::cout << "Each limb's NTT maps to its own bank.\n\n";

  sim::NttRunConfig config;
  config.n = n;
  config.num_buffers = 4;

  TablePrinter table(
      {"banks (limbs)", "makespan (us)", "speedup", "efficiency"});
  const double ns_per_cycle = 1e3 / config.freq_mhz;
  for (const std::size_t banks : {1, 2, 4, 8}) {
    const auto r = sim::run_parallel_ntts(banks, config);
    if (!r.all_verified) {
      std::cerr << "verification FAILED\n";
      return 1;
    }
    table.add_row(
        {std::to_string(banks),
         TablePrinter::num(static_cast<double>(r.cycles) * ns_per_cycle /
                           1e3),
         TablePrinter::num(r.throughput_speedup),
         TablePrinter::num(r.throughput_speedup /
                           static_cast<double>(banks) * 100.0, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nAll banks' results verified against the reference NTT.\n";
  return 0;
}
