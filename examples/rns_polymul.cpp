// RNS polynomial product with a different NTT per bank.
//
// The paper's row-centric design supports "running different NTT functions
// in each bank" — exactly how RNS-decomposed FHE workloads behave: a wide
// modulus Q = q1*q2*q3*q4 splits into four limb primes, every limb runs
// its own independent negacyclic NTT, and the limbs map one-to-one onto
// banks. This demo multiplies two polynomials of R_Q = Z_Q[X]/(X^256 + 1)
// on a 4-bank device:
//   wave 1: all 8 forward transforms (4 limbs x 2 operands, limb i of both
//           operands stacked in bank i) — ONE engine pass;
//   host:   pointwise limb products;
//   wave 2: all 4 inverse transforms — one more pass;
//   CRT:    recombine limbs into [0, Q).
// The result is checked bit-for-bit against a 128-bit CPU schoolbook
// negacyclic product.
#include <cstdlib>
#include <iostream>
#include <set>

#include "common/random.h"
#include "common/table.h"
#include "fhe/pim_backend.h"
#include "fhe/rns.h"
#include "fhe/rns_poly.h"
#include "ntt/poly.h"

int main() {
  using namespace nttpim;

  constexpr std::size_t kN = 256;
  constexpr std::size_t kLimbs = 4;
  const fhe::RnsBasis basis(kN, kLimbs, 30);

  Rng rng(2026);
  const auto a = rng.wide_coeffs(kN, basis.modulus_product());
  const auto b = rng.wide_coeffs(kN, basis.modulus_product());

  fhe::PimBackend backend(/*num_buffers=*/4, 1200.0,
                          dram::hbm2e_geometry(kLimbs));
  backend.set_record_waves(true);
  const auto product = fhe::rns_negacyclic_multiply(basis, a, b, backend);

  // 128-bit CPU schoolbook reference: per-limb O(N^2) negacyclic products,
  // CRT-recombined.
  const auto ra = basis.to_rns(a);
  const auto rb = basis.to_rns(b);
  std::vector<std::vector<std::uint32_t>> limbs(kLimbs);
  for (std::size_t i = 0; i < kLimbs; ++i)
    limbs[i] = ntt::negacyclic_convolution_schoolbook(ra[i], rb[i],
                                                      basis.prime(i));
  const bool ok = product == basis.from_rns(limbs);

  std::cout << "RNS negacyclic product in R_Q, N = " << kN << ", "
            << kLimbs << " limbs (Q ~ 2^120) on a " << backend.num_banks()
            << "-bank device:\n\n";
  TablePrinter table({"limb", "prime q_i", "banks used", "transforms"});
  for (std::size_t i = 0; i < kLimbs; ++i) {
    std::size_t count = 0;
    std::set<std::uint16_t> banks;
    for (const auto& wave : backend.recorded_waves())
      for (const auto& slot : wave.slots)
        if (slot.q == basis.prime(i)) {
          ++count;
          banks.insert(slot.bank);
        }
    std::string bank_list;
    for (const auto bank : banks)
      bank_list += (bank_list.empty() ? "" : ",") + std::to_string(bank);
    table.add_row({std::to_string(i), std::to_string(basis.prime(i)),
                   bank_list, std::to_string(count)});
  }
  table.print(std::cout);

  const auto& fwd = backend.recorded_waves().front();
  std::set<std::uint32_t> fwd_moduli;
  for (const auto& slot : fwd.slots) fwd_moduli.insert(slot.q);
  std::cout << "\nForward stage: " << fwd.slots.size()
            << " transforms, " << fwd_moduli.size()
            << " distinct moduli, one engine pass ("
            << fwd.trace.size() << " merged commands)\n"
            << "Engine passes total: " << backend.engine_passes()
            << " (forward wave + inverse wave)\n"
            << "Modeled: " << backend.total_cycles() << " cycles, "
            << TablePrinter::num(backend.total_us(), 2) << " us, "
            << TablePrinter::num(backend.total_energy_nj(), 1) << " nJ\n"
            << "Plan cache: " << backend.plan_cache_misses() << " misses, "
            << backend.plan_cache_hits() << " hits\n"
            << "Verified against 128-bit CPU schoolbook: "
            << (ok ? "YES" : "NO") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
