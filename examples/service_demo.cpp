// Two tenants against the multi-tenant QoS serving runtime.
//
// A *bulk* tenant (six client threads churning forward transforms, inverse
// transforms and negacyclic products, no deadlines) shares one NttService
// with a *critical* tenant (two client threads, high priority, a real
// deadline on every request) — the classic batch-next-to-interactive mix.
// Three QoS layers keep them apart:
//
//   - admission: the bulk tenant carries a token bucket (rate 0, burst 60
//     here, so exactly 48 of its 108 requests are shed with
//     AdmissionShedError — deterministically, before costing any queue
//     capacity). The critical tenant is unlimited.
//   - EDF forming: a pending critical deadline flushes a wave early and
//     leads the cut, so critical requests never wait out the coalescing
//     window behind bulk traffic.
//   - deadline-pressure dispatch: critical waves jump queued bulk in the
//     shard lanes and are stolen first by idle shards.
//
// The interesting output is the per-class stats block: what latency each
// tenant actually got, what the flooder was shed, whether deadlines held —
// and the per-class *stage breakdown*: where each tenant's requests spent
// their time (admission wait, former residency, shard-queue wait, execute,
// completion). Execution still runs on a heterogeneous shard pair (one
// simulated PIM device next to a host-CPU worker pool), and every client
// verifies its results against the host CPU reference.
//
// `--trace <path>` additionally records every request's lifecycle (see
// src/telemetry/) and writes a Chrome trace-event JSON there — open it in
// Perfetto / chrome://tracing to see the two tenants' flows interleave
// across the dispatcher and shard tracks.
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <latch>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/table.h"
#include "fhe/cpu_backend.h"
#include "fhe/pim_backend.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "service/ntt_service.h"
#include "telemetry/chrome_trace.h"

namespace {

using namespace nttpim;

constexpr std::size_t kN = 256;
constexpr std::size_t kBulkClients = 6;
constexpr std::size_t kCriticalClients = 2;
constexpr std::size_t kRoundsPerClient = 6;
constexpr std::uint32_t kBulkTenant = 0;
constexpr std::uint32_t kCriticalTenant = 1;
constexpr double kBulkBurst = 60;  // of 108 bulk submits -> 48 shed

/// CPU reference for a negacyclic product (what submit_multiply computes).
std::vector<std::uint32_t> cpu_multiply(std::vector<std::uint32_t> a,
                                        std::vector<std::uint32_t> b,
                                        const ntt::NttParams& params) {
  fhe::CpuBackend cpu;
  cpu.forward(a, params);
  cpu.forward(b, params);
  auto prod = ntt::pointwise_mul(a, b, params.q());
  cpu.inverse(prod, params);
  return prod;
}

/// get() that tolerates admission shedding: true when the result arrived
/// and matched (or the request was shed — shed, not wrong); sheds counted
/// aside.
bool get_or_shed(std::future<std::vector<std::uint32_t>>& f,
                 const std::vector<std::uint32_t>& expected,
                 std::atomic<std::uint64_t>& sheds) {
  try {
    return f.get() == expected;
  } catch (const service::AdmissionShedError&) {
    sheds.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

void print_class(const char* label, const service::ClassStats& cs) {
  std::cout << label << cs.submitted << " submitted, " << cs.completed
            << " completed, " << cs.shed << " shed, " << cs.deadline_misses
            << " deadline misses\n"
            << "                  service p50/p95: "
            << cs.service_latency.p50_us << " / " << cs.service_latency.p95_us
            << " us\n";
}

constexpr const char* kUsage =
    "usage: service_demo [--trace <path>]\n"
    "  Two tenants (bulk + deadlined critical) against the multi-tenant\n"
    "  QoS serving runtime on a PIM + CPU shard pair; prints per-class\n"
    "  latency, shedding and deadline stats plus the per-class stage\n"
    "  breakdown (where each tenant's requests spent their time).\n"
    "  --trace <path>  also record per-request lifecycle tracing and\n"
    "                  write a Chrome trace-event JSON to <path> (open\n"
    "                  it in Perfetto / chrome://tracing)\n";

}  // namespace

int main(int argc, char** argv) {
  const auto trace_path = bench::consume_trace_flag(argc, argv);
  bench::finish_flags(argc, argv, kUsage);

  const auto params =
      std::make_shared<const ntt::NttParams>(ntt::NttParams::create(kN, 30));

  service::ServiceConfig cfg;
  // Heterogeneous tier: a 4-bank simulated PIM device next to a 2-lane
  // host-CPU pool. banks_per_shard still sizes the waves the former cuts.
  cfg.backend.descriptors = {service::make_pim_descriptor(/*banks=*/4),
                             service::make_cpu_descriptor(/*threads=*/2)};
  cfg.backend.banks_per_shard = 4;
  cfg.former.flush_window = std::chrono::microseconds(300);
  // Two request classes; only the bulk tenant is rate-limited. EDF forming
  // and deadline-pressure dispatch are on by default once num_classes > 1.
  cfg.qos.num_classes = 2;
  cfg.qos.admission = {{.rate_per_sec = 0.0, .burst = kBulkBurst}};
  // Lifecycle tracing costs nothing unless asked for (one relaxed atomic
  // load per would-be event when disabled).
  cfg.telemetry.enabled = trace_path.has_value();
  service::NttService svc(cfg);

  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> sheds{0};
  std::vector<std::thread> clients;
  clients.reserve(kBulkClients + kCriticalClients);

  // Bulk tenant: mixed transform/product churn, no deadlines, sheddable.
  for (std::size_t c = 0; c < kBulkClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(42 + c);
      fhe::CpuBackend cpu;
      service::SubmitOptions bulk;
      bulk.qos.tenant = kBulkTenant;
      for (std::size_t round = 0; round < kRoundsPerClient; ++round) {
        // One forward transform...
        auto poly = rng.residues(kN, params->q());
        auto expected = poly;
        cpu.forward(expected, *params);
        auto fwd = svc.submit(poly, params, bulk);
        if (!get_or_shed(fwd, expected, sheds))
          mismatches.fetch_add(1, std::memory_order_relaxed);
        // ...one round-trip through an inverse transform...
        auto inverse_expected = poly;
        auto inverse = bulk;
        inverse.inverse = true;
        auto inv = svc.submit(std::move(expected), params, inverse);
        if (!get_or_shed(inv, inverse_expected, sheds))
          mismatches.fetch_add(1, std::memory_order_relaxed);
        // ...and one negacyclic product.
        auto a = rng.residues(kN, params->q());
        auto b = rng.residues(kN, params->q());
        const auto product_expected = cpu_multiply(a, b, *params);
        auto prod =
            svc.submit_multiply(std::move(a), std::move(b), params, bulk);
        if (!get_or_shed(prod, product_expected, sheds))
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Critical tenant: high priority, a 2 ms deadline per request, unlimited
  // admission (tenant 1 is past the configured bucket vector).
  for (std::size_t c = 0; c < kCriticalClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(777 + c);
      fhe::CpuBackend cpu;
      for (std::size_t round = 0; round < kRoundsPerClient; ++round) {
        auto poly = rng.residues(kN, params->q());
        auto expected = poly;
        cpu.forward(expected, *params);
        service::SubmitOptions critical;
        critical.qos.tenant = kCriticalTenant;
        critical.qos.priority = 10;
        critical.qos.deadline =
            service::ServiceClock::now() + std::chrono::milliseconds(2);
        if (svc.submit(std::move(poly), params, critical).get() != expected)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();

  // Fire-and-forget flavor: a callback instead of a future (critical
  // class, so admission can never fail it).
  std::latch callback_done(1);
  std::atomic<bool> callback_ok{false};
  {
    Rng rng(999);
    auto poly = rng.residues(kN, params->q());
    auto expected = poly;
    fhe::CpuBackend cpu;
    cpu.forward(expected, *params);
    service::SubmitOptions critical;
    critical.qos.tenant = kCriticalTenant;
    svc.submit(std::move(poly), params, critical,
               [&, expected](std::vector<std::uint32_t>&& result,
                             std::exception_ptr error) {
                 // Relaxed flag: the latch publishes it to the waiter.
                 callback_ok.store(!error && result == expected,
                                   std::memory_order_relaxed);
                 callback_done.count_down();
               });
  }
  callback_done.wait();

  svc.drain();
  const service::ServiceStats stats = svc.stats();
  svc.shutdown();

  std::cout << "Multi-tenant QoS serving runtime: " << kBulkClients
            << " bulk + " << kCriticalClients << " critical clients x "
            << kRoundsPerClient << " rounds, pim + cpu shards, "
            << cfg.backend.banks_per_shard << "-item waves:\n"
            << "  requests:       " << stats.completed << " completed, "
            << stats.shed << " shed, " << stats.failed << " failed, "
            << stats.deadline_misses << " deadline misses\n"
            << "  waves:          " << stats.waves << " ("
            << stats.engine_passes << " engine passes, " << stats.batch_items
            << " batch items)\n"
            << "  occupancy:      " << stats.mean_wave_occupancy
            << " items/pass (1.0 = what a synchronous caller gets)\n";
  print_class("  bulk (t0):      ", stats.classes.at(kBulkTenant));
  print_class("  critical (t1):  ", stats.classes.at(kCriticalTenant));
  std::cout << "  per shard:      ";
  for (std::size_t s = 0; s < stats.shards.size(); ++s)
    std::cout << (s ? ", " : "") << "shard " << s << " ("
              << service::to_string(stats.shards[s].kind) << "): "
              << stats.shards[s].requests << " requests / "
              << stats.shards[s].waves << " waves ("
              << stats.shards[s].stolen_waves << " stolen)";

  // Where each tenant's completed requests actually spent their time —
  // the stage-latency attribution half of the telemetry subsystem
  // (always on; the five stages tile submit -> delivered exactly).
  std::cout << "\n\nStage breakdown (mean us per completed request):\n";
  TablePrinter stage_table({"class", "requests", "admission", "former",
                            "shard queue", "execute", "completion",
                            "total"});
  const char* class_labels[] = {"bulk (t0)", "critical (t1)"};
  for (std::size_t t = 0; t < stats.classes.size(); ++t) {
    const service::StageBreakdown& sb = stats.classes[t].stages;
    stage_table.add_row(
        {t < 2 ? class_labels[t] : std::to_string(t),
         std::to_string(sb.count), TablePrinter::num(sb.admission_wait_us, 1),
         TablePrinter::num(sb.former_residency_us, 1),
         TablePrinter::num(sb.shard_queue_wait_us, 1),
         TablePrinter::num(sb.execute_us, 1),
         TablePrinter::num(sb.completion_us, 1),
         TablePrinter::num(sb.total_us, 1)});
  }
  stage_table.print(std::cout);

  bool trace_written = true;
  if (trace_path) {
    std::ofstream out(*trace_path);
    telemetry::write_chrome_trace(out, svc.trace_collector().drain());
    trace_written = out.good();
    if (trace_written)
      std::cout << "\nWrote Chrome trace to " << *trace_path
                << " (open it in Perfetto / chrome://tracing); "
                << stats.trace_events << " events recorded, "
                << stats.trace_dropped_events << " dropped.\n";
    else
      std::cerr << "cannot write trace to " << *trace_path << "\n";
  }

  // Relaxed reads: every writer joined (or passed a latch) above.
  const bool ok = mismatches.load(std::memory_order_relaxed) == 0 &&
                  callback_ok.load(std::memory_order_relaxed);
  const bool shed_exact =
      stats.shed == sheds.load(std::memory_order_relaxed) &&
      stats.shed == kBulkClients * kRoundsPerClient * 3 -
                        static_cast<std::uint64_t>(kBulkBurst);
  std::cout << "\n  verified:       "
            << (ok && shed_exact ? "YES" : "NO") << "\n";

  return ok && shed_exact && stats.failed == 0 && trace_written
             ? EXIT_SUCCESS
             : EXIT_FAILURE;
}
