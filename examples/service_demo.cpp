// Many concurrent clients against the async NTT serving runtime.
//
// Eight client threads hammer one NttService with a mix of forward
// transforms, inverse transforms and negacyclic products, each verifying
// its own results against the host CPU reference — while the service
// coalesces everything into mixed waves and executes them on a
// *heterogeneous* shard pair: one simulated PIM device next to a host-CPU
// worker pool, the deployment shape the paper assumes. The interesting
// output is the stats block: the same synchronous one-request-at-a-time
// callers end up sharing bank-parallel engine passes (mean wave occupancy
// > 1) without ever knowing about each other. Behind the former sits the
// cost-aware dispatcher: waves are priced by each backend's own cost model
// in one modeled-cycle unit, assigned to whichever shard clears them
// soonest, and an idle shard steals the oldest compatible wave of a loaded
// peer (the per-shard "stolen" counts in the stats block).
#include <atomic>
#include <cstdlib>
#include <future>
#include <iostream>
#include <latch>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "fhe/cpu_backend.h"
#include "fhe/pim_backend.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "service/ntt_service.h"

namespace {

using namespace nttpim;

constexpr std::size_t kN = 256;
constexpr std::size_t kClients = 8;
constexpr std::size_t kRoundsPerClient = 6;

/// CPU reference for a negacyclic product (what submit_multiply computes).
std::vector<std::uint32_t> cpu_multiply(std::vector<std::uint32_t> a,
                                        std::vector<std::uint32_t> b,
                                        const ntt::NttParams& params) {
  fhe::CpuBackend cpu;
  cpu.forward(a, params);
  cpu.forward(b, params);
  auto prod = ntt::pointwise_mul(a, b, params.q());
  cpu.inverse(prod, params);
  return prod;
}

}  // namespace

int main() {
  const auto params =
      std::make_shared<const ntt::NttParams>(ntt::NttParams::create(kN, 30));

  service::ServiceConfig cfg;
  // Heterogeneous tier: a 4-bank simulated PIM device next to a 2-lane
  // host-CPU pool. banks_per_shard still sizes the waves the former cuts.
  cfg.backend.descriptors = {service::make_pim_descriptor(/*banks=*/4),
                             service::make_cpu_descriptor(/*threads=*/2)};
  cfg.backend.banks_per_shard = 4;
  cfg.former.flush_window = std::chrono::microseconds(300);
  service::NttService svc(cfg);

  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(42 + c);
      fhe::CpuBackend cpu;
      for (std::size_t round = 0; round < kRoundsPerClient; ++round) {
        // One forward transform...
        auto poly = rng.residues(kN, params->q());
        auto expected = poly;
        cpu.forward(expected, *params);
        if (svc.submit(poly, params).get() != expected) ++mismatches;
        // ...one round-trip through an inverse transform...
        auto inverse_expected = poly;
        service::SubmitOptions inverse;
        inverse.inverse = true;
        if (svc.submit(std::move(expected), params, inverse).get() !=
            inverse_expected)
          ++mismatches;
        // ...and one negacyclic product.
        auto a = rng.residues(kN, params->q());
        auto b = rng.residues(kN, params->q());
        const auto product_expected = cpu_multiply(a, b, *params);
        if (svc.submit_multiply(std::move(a), std::move(b), params).get() !=
            product_expected)
          ++mismatches;
      }
    });
  }
  for (auto& t : clients) t.join();

  // Fire-and-forget flavor: a callback instead of a future.
  std::latch callback_done(1);
  std::atomic<bool> callback_ok{false};
  {
    Rng rng(999);
    auto poly = rng.residues(kN, params->q());
    auto expected = poly;
    fhe::CpuBackend cpu;
    cpu.forward(expected, *params);
    svc.submit(std::move(poly), params, service::SubmitOptions{},
               [&, expected](std::vector<std::uint32_t>&& result,
                             std::exception_ptr error) {
                 callback_ok = !error && result == expected;
                 callback_done.count_down();
               });
  }
  callback_done.wait();

  svc.drain();
  const service::ServiceStats stats = svc.stats();
  svc.shutdown();

  std::cout << "Async serving runtime: " << kClients
            << " concurrent clients x " << kRoundsPerClient
            << " rounds (forward + inverse + multiply), pim + cpu shards, "
            << cfg.backend.banks_per_shard << "-item waves:\n"
            << "  requests:       " << stats.completed << " completed, "
            << stats.failed << " failed\n"
            << "  waves:          " << stats.waves << " ("
            << stats.engine_passes << " engine passes, "
            << stats.batch_items << " batch items)\n"
            << "  occupancy:      " << stats.mean_wave_occupancy
            << " items/pass (1.0 = what a synchronous caller gets)\n"
            << "  queue p50/p95:  " << stats.queue_latency.p50_us << " / "
            << stats.queue_latency.p95_us << " us\n"
            << "  service p50/95: " << stats.service_latency.p50_us << " / "
            << stats.service_latency.p95_us << " us\n"
            << "  per shard:      ";
  for (std::size_t s = 0; s < stats.shards.size(); ++s)
    std::cout << (s ? ", " : "") << "shard " << s << " ("
              << service::to_string(stats.shards[s].kind) << "): "
              << stats.shards[s].requests << " requests / "
              << stats.shards[s].waves << " waves ("
              << stats.shards[s].stolen_waves << " stolen)";
  std::cout << "\n  verified:       "
            << (mismatches == 0 && callback_ok ? "YES" : "NO") << "\n";

  return mismatches == 0 && callback_ok && stats.failed == 0 ? EXIT_SUCCESS
                                                             : EXIT_FAILURE;
}
