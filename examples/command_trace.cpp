// Prints the NTT dataflow (paper Fig. 3) and an annotated DRAM command
// trace (paper Figs. 4-5): how the memory controller turns one NTT call
// into ACT / CU-read / C1 / C2 / CU-write / PARAM sequences across the
// three mapping regimes.
#include <iostream>
#include <map>

#include "common/table.h"
#include "dram/command.h"
#include "mapping/mapper.h"
#include "mapping/trace.h"
#include "ntt/params.h"

namespace {

void print_dataflow() {
  std::cout <<
      "NTT dataflow for N = 8 (Cooley-Tukey DIT, bit-reversed input):\n"
      "\n"
      "  x[0] --+--------+--------+--> X[0]     stage:   1     2     3\n"
      "  x[4] --+w0      |        |--> X[1]     span m:  1     2     4\n"
      "  x[2] --+--------+w0      |--> X[2]\n"
      "  x[6] --+w0      +w2      |--> X[3]     butterfly (a, b):\n"
      "  x[1] --+--------+--------+w0> X[4]       a' = a + w*b\n"
      "  x[5] --+w0      |        +w1> X[5]       b' = a - w*b\n"
      "  x[3] --+--------+w0      +w2> X[6]     w stepped by the TFG\n"
      "  x[7] --+w0      +w2      +w3> X[7]\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nttpim;
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 1024;
  const std::size_t nb = argc > 2 ? std::stoul(argv[2]) : 4;
  const std::size_t max_lines = argc > 3 ? std::stoul(argv[3]) : 48;

  print_dataflow();

  const dram::DramGeometry geometry = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(n);
  mapping::MapperConfig config;
  config.num_buffers = nb;
  const mapping::RowCentricMapper mapper(geometry, params, config);
  const auto mapped = mapper.map(mapping::NttJob{});

  std::cout << "Command trace for N=" << n << ", q=" << params.q()
            << ", Nb=" << nb << " (" << mapped.trace.size()
            << " commands; first " << max_lines << " shown):\n\n";

  dram::Regime last = dram::Regime::kNone;
  std::size_t shown = 0;
  for (const auto& cmd : mapped.trace) {
    if (cmd.regime != last) {
      std::cout << "--- regime: " << dram::to_string(cmd.regime) << " ---\n";
      last = cmd.regime;
    }
    if (shown < max_lines) {
      std::cout << "  " << dram::describe(cmd) << '\n';
      ++shown;
    } else if (shown == max_lines) {
      std::cout << "  ... (" << mapped.trace.size() - max_lines
                << " more commands; regime markers continue)\n";
      shown++;
    }
  }

  const auto counts = mapping::count_commands(mapped.trace);
  std::cout << "\nTrace summary:\n";
  TablePrinter table({"command", "count"});
  table.add_row({"ACT", std::to_string(counts.acts)});
  table.add_row({"PRE", std::to_string(counts.pres)});
  table.add_row({"CU read", std::to_string(counts.column_reads)});
  table.add_row({"CU write", std::to_string(counts.column_writes)});
  table.add_row({"C1", std::to_string(counts.c1_ops)});
  table.add_row({"C2", std::to_string(counts.c2_ops)});
  table.add_row({"PARAM", std::to_string(counts.params)});
  table.print(std::cout);

  std::cout << "\nActivations per regime:\n";
  for (const auto& [regime, acts] : counts.acts_by_regime)
    std::cout << "  " << dram::to_string(regime) << ": " << acts << '\n';
  return 0;
}
