// End-to-end FHE demo on NTT-PIM: BFV keygen -> encrypt -> homomorphic
// add & multiply -> decrypt, with every NTT routed through the simulated
// PIM device. This is the application story of the paper's introduction:
// FHE's dominant kernel (NTT) offloaded into memory.
#include <cstdlib>
#include <iostream>

#include "common/random.h"
#include "fhe/bfv.h"
#include "fhe/pim_backend.h"

int main() {
  using namespace nttpim;

  fhe::BfvParams params;
  params.n = 256;
  params.t = 5;
  params.noise_bound = 2;

  fhe::PimBackend pim(/*num_buffers=*/4);
  fhe::Bfv bfv(params, pim, /*seed=*/99);

  std::cout << "Toy BFV on NTT-PIM\n"
            << "  ring          : Z_" << bfv.ntt_params().q() << "[X]/(X^"
            << params.n << " + 1)\n"
            << "  plaintext mod : " << params.t << "\n"
            << "  Delta (q/t)   : " << bfv.delta() << "\n\n";

  Rng rng(123);
  const auto m1 = rng.residues(params.n, params.t);
  const auto m2 = rng.residues(params.n, params.t);

  const auto ct1 = bfv.encrypt(m1);
  const auto ct2 = bfv.encrypt(m2);

  // Homomorphic addition.
  const auto sum = bfv.add(ct1, ct2);
  auto expected_sum = m1;
  for (std::size_t i = 0; i < params.n; ++i)
    expected_sum[i] = (m1[i] + m2[i]) % params.t;
  const bool add_ok = bfv.decrypt(sum) == expected_sum;

  // Homomorphic multiplication (degree-2 ciphertext, no relinearization).
  const auto product = bfv.multiply(ct1, ct2);
  const bool mul_ok = bfv.decrypt(product) == bfv.plaintext_multiply(m1, m2);

  std::cout << "  decrypt(ct1)        == m1       : "
            << (bfv.decrypt(ct1) == m1 ? "YES" : "NO") << "\n"
            << "  decrypt(ct1 + ct2)  == m1 + m2  : "
            << (add_ok ? "YES" : "NO") << "\n"
            << "  decrypt(ct1 * ct2)  == m1 * m2  : "
            << (mul_ok ? "YES" : "NO") << "\n"
            << "  fresh-ct noise magnitude        : "
            << bfv.noise_magnitude(ct1, m1) << " (budget limit "
            << bfv.ntt_params().q() / (2 * params.t) << ")\n\n"
            << "PIM work performed:\n"
            << "  NTT invocations  : " << pim.transform_count() << "\n"
            << "  simulated cycles : " << pim.total_cycles() << "\n"
            << "  simulated time   : " << pim.total_us() << " us\n"
            << "  simulated energy : " << pim.total_energy_nj() / 1e3
            << " uJ\n";

  return add_ok && mul_ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
