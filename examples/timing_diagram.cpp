// Reproduces the paper's Fig. 5/6 timing diagrams from actual simulation:
// the same NTT run without (Nb=2) and with (Nb=6) pipelining, rendered as
// ASCII lanes. With more buffers, reads of the next op overlap compute of
// the current one, and same-row accesses group to remove ACTs.
//
// Legend: A=ACT P=PRE F=refresh r=CU-read w=CU-write 1=C1 2=C2 q=PARAM
//         z=buffer-zero, '#'=overlap within one cell.
#include <iostream>

#include "common/random.h"
#include "mapping/mapper.h"
#include "ntt/params.h"
#include "pim/host.h"
#include "sim/engine.h"
#include "sim/timeline.h"

namespace {

using namespace nttpim;

sim::RunStats run_recorded(std::size_t n, std::size_t nb) {
  const dram::DramGeometry geometry = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(n);
  pim::PimDevice device(geometry, nb);
  Rng rng(1);
  pim::load_polynomial(device.bank(0), 0, rng.residues(n, params.q()));

  mapping::MapperConfig config;
  config.num_buffers = nb;
  const mapping::RowCentricMapper mapper(geometry, params, config);
  const auto mapped = mapper.map(mapping::NttJob{});

  sim::EngineConfig ec;
  ec.record_timeline = true;
  ec.enable_refresh = false;  // keep the diagrams clean
  return sim::Engine(ec).run(device, mapped.trace);
}

}  // namespace

int main() {
  std::cout << "Intra-atom + intra-row regimes (N = 256, start of run):\n\n";
  for (const std::size_t nb : {std::size_t{2}, std::size_t{6}}) {
    const auto stats = run_recorded(256, nb);
    std::cout << "Nb = " << nb << "  (total " << stats.cycles
              << " cycles):\n"
              << sim::render_timeline(stats.timeline,
                                      {.from_cycle = 0,
                                       .to_cycle = 720,
                                       .cycles_per_char = 6})
              << '\n';
  }

  std::cout << "Inter-row regime (N = 1024, window inside stage 9):\n\n";
  for (const std::size_t nb : {std::size_t{2}, std::size_t{6}}) {
    const auto stats = run_recorded(1024, nb);
    // The inter-row regime occupies the tail of the run; show a slice.
    const std::uint64_t from = stats.cycles * 3 / 4;
    std::cout << "Nb = " << nb << "  (total " << stats.cycles
              << " cycles):\n"
              << sim::render_timeline(stats.timeline,
                                      {.from_cycle = from,
                                       .to_cycle = from + 1200,
                                       .cycles_per_char = 10})
              << '\n';
  }

  std::cout << "Observation: with Nb=6 the i/o and cu lanes stay dense\n"
               "(reads for op k+S issue while op k computes) and the row\n"
               "lane shows fewer A/P pairs per unit time — the two effects\n"
               "of Sec. V's pipelining optimization.\n";
  return 0;
}
