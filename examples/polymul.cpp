// Polynomial multiplication through NTT-PIM — the paper's Eq. (1):
//   a * b = INTT( NTT(a) ⊙ NTT(b) )
// with both forward transforms and the inverse transform executed as
// simulated PIM command traces, and the result checked against the O(N^2)
// schoolbook product. This is the core FHE primitive the paper targets.
#include <cstdlib>
#include <iostream>

#include "common/random.h"
#include "fhe/pim_backend.h"
#include "ntt/params.h"
#include "ntt/poly.h"

int main(int argc, char** argv) {
  using namespace nttpim;
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 1024;

  const ntt::NttParams params = ntt::NttParams::create(n);
  Rng rng(2024);
  const auto a = rng.residues(n, params.q());
  const auto b = rng.residues(n, params.q());

  std::cout << "Negacyclic polynomial product in Z_" << params.q()
            << "[X]/(X^" << n << " + 1) via NTT-PIM\n\n";

  // Three transforms on the simulated PIM: NTT(a), NTT(b), INTT(product).
  fhe::PimBackend pim(/*num_buffers=*/4);
  auto fa = a;
  auto fb = b;
  pim.forward(fa, params);
  pim.forward(fb, params);
  auto fc = ntt::pointwise_mul(fa, fb, params.q());
  pim.inverse(fc, params);

  const auto expected =
      ntt::negacyclic_convolution_schoolbook(a, b, params.q());
  const bool ok = fc == expected;

  std::cout << "  transforms on PIM : " << pim.transform_count() << "\n"
            << "  simulated cycles  : " << pim.total_cycles() << "\n"
            << "  simulated time    : " << pim.total_us() << " us\n"
            << "  simulated energy  : " << pim.total_energy_nj() / 1e3
            << " uJ\n"
            << "  matches schoolbook: " << (ok ? "YES" : "NO") << "\n";

  if (ok) {
    std::cout << "\nFirst coefficients of a*b: ";
    for (int i = 0; i < 6; ++i) std::cout << fc[i] << ' ';
    std::cout << "...\n";
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
