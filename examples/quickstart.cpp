// Quickstart: run one NTT through the simulated NTT-PIM and verify it.
//
// Demonstrates the whole stack in a few lines: parameter generation, host
// data placement (bit reversal), the row-centric mapping, cycle-accurate
// simulation and functional verification against the CPU reference.
#include <cstdlib>
#include <iostream>

#include "sim/runner.h"

int main() {
  using namespace nttpim;

  sim::NttRunConfig config;
  config.n = 1024;         // polynomial length
  config.num_buffers = 4;  // Nb: primary (GSA) + 3 secondary atom buffers
  config.freq_mhz = 1200;  // HBM2E clock (paper Table I)

  const sim::NttRunResult result = sim::run_ntt_on_pim(config);

  std::cout << "NTT-PIM quickstart\n"
            << "  N            : " << config.n << "\n"
            << "  modulus q    : " << result.q << "\n"
            << "  Nb (buffers) : " << config.num_buffers << "\n"
            << "  commands     : " << result.trace_length << "\n"
            << "  activations  : " << result.stats.activations << "\n"
            << "  cycles       : " << result.stats.cycles << "\n"
            << "  latency      : " << result.latency_us << " us\n"
            << "  energy       : " << result.energy_nj / 1e3 << " uJ\n"
            << "  verified     : " << (result.verified ? "YES" : "NO")
            << "\n";
  return result.verified ? EXIT_SUCCESS : EXIT_FAILURE;
}
