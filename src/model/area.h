// CU / atom-buffer area model (paper Table II).
//
// The paper synthesized its CU with Synopsys DC on a Samsung 65 nm library
// and sized buffers with CACTI 7.0; neither tool nor PDK is available here,
// so this is a component-level analytical model:
//   * logic blocks are gate-count estimates times a 65 nm NAND2-equivalent
//     cell area,
//   * atom buffers cost SRAM cells (6T + 2T inverters, Sec. IV.A) plus
//     crossbar port growth, with marginal costs calibrated to the paper's
//     published increments (synthesis shows decreasing marginal cost as the
//     tool shares decode/control logic).
// The Nb = 1 point and buffer increments reproduce Table II; other Nb
// values inter/extrapolate. See DESIGN.md substitution notes.
#pragma once

#include <cstddef>

namespace nttpim::model {

/// One DRAM bank, CACTI-3DD DDR4 model at 32 nm (paper Table II note 2).
inline constexpr double kBankAreaMm2 = 4.2208;

/// Newton's per-bank compute hardware (16 FP16 MACs), paper's synthesis.
inline constexpr double kNewtonAreaMm2 = 0.0474;

struct AreaBreakdown {
  double modmult_mm2 = 0;   ///< 32-bit Montgomery modular multiplier
  double modaddsub_mm2 = 0; ///< two modular adder/subtractors
  double tfg_mm2 = 0;       ///< twiddle factor generator (mult + registers)
  double lsu_ctrl_mm2 = 0;  ///< load/store unit, decode, base crossbar
  double buffers_mm2 = 0;   ///< secondary atom buffers + crossbar growth
  double total_mm2 = 0;
  double percent_of_bank = 0;
};

class AreaModel {
 public:
  /// Area of the NTT-PIM bank extension with `num_buffers` atom buffers
  /// (including the primary, which is the existing GSA and free).
  AreaBreakdown nttpim_area(std::size_t num_buffers) const;

  /// Newton's accelerator area for the same comparison row.
  double newton_area() const { return kNewtonAreaMm2; }

  double bank_area() const { return kBankAreaMm2; }
};

}  // namespace nttpim::model
