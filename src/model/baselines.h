// Related-work comparison data and scaling models (paper Table III).
//
// MeNTT (6T-SRAM PIM), CryptoPIM (ReRAM PIM), the paper's x86 measurement
// and the FPGA baseline are *quoted* numbers in the paper as well — no
// hardware exists to re-run them. They are encoded here as reference data;
// fitted a*N*log2(N) + b models provide interpolation for sweep plots.
//
// Unit note: the paper's Table III column headers say "ns"/"nJ", but the
// magnitudes (and Fig. 7's microsecond axis, which the NTT-PIM rows match
// exactly) show the values are in us/uJ; we store them as us/uJ.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace nttpim::model {

struct ReferencePoint {
  std::size_t n;
  std::optional<double> latency_us;
  std::optional<double> energy_uj;
};

struct ReferenceDesign {
  std::string name;
  std::string method;
  std::string bitwidth;
  std::vector<ReferencePoint> points;

  /// Reported latency at exactly n, if the paper lists it.
  std::optional<double> latency_at(std::size_t n) const;
  std::optional<double> energy_at(std::size_t n) const;

  /// Least-squares fit of latency = a * N log2 N + b over the reported
  /// points, used to interpolate/extrapolate sweeps.
  double fitted_latency_us(std::size_t n) const;
};

/// The comparison designs of Table III (excluding our simulated NTT-PIM).
const std::vector<ReferenceDesign>& table3_designs();

/// The paper's own reported NTT-PIM rows (for paper-vs-measured tables).
const ReferenceDesign& paper_nttpim(std::size_t num_buffers);

}  // namespace nttpim::model
