#include "model/area.h"

#include "common/check.h"

namespace nttpim::model {

namespace {

// 65 nm standard-cell NAND2-equivalent area (um^2), routed.
constexpr double kNand2Um2 = 1.41;

// Gate-count estimates for the CU logic blocks (32-bit datapath, fully
// pipelined Montgomery multiplier per Sec. VI.B).
constexpr double kModMultGates = 7000;  // 32x32 mult + Montgomery reduce
constexpr double kModAddSubGates = 2 * 850;
constexpr double kTfgGates = 4200;      // shared-style mult + 3 x 32b regs
constexpr double kLsuCtrlGates = 2206;  // LSU, decode, base crossbar

double gates_to_mm2(double gates) { return gates * kNand2Um2 / 1e6; }

// Marginal cost of each additional atom buffer (SRAM macro + crossbar
// ports), calibrated to Table II's increments: synthesis shows decreasing
// marginal cost as decode/control amortizes.
//   Nb: 1 -> 2 : +0.0019 mm^2
//   Nb: 2 -> 4 : +0.00155 mm^2 each
//   Nb: 4 -> 6 : +0.0011 mm^2 each (and beyond)
double buffer_increment(std::size_t buffer_index) {
  if (buffer_index <= 1) return 0.0;      // primary buffer is the GSA: free
  if (buffer_index == 2) return 0.0019;
  if (buffer_index <= 4) return 0.00155;
  return 0.0011;
}

}  // namespace

AreaBreakdown AreaModel::nttpim_area(std::size_t num_buffers) const {
  NTTPIM_EXPECT_MSG(num_buffers >= 1, "at least the GSA must exist");
  AreaBreakdown out;
  out.modmult_mm2 = gates_to_mm2(kModMultGates);
  out.modaddsub_mm2 = gates_to_mm2(kModAddSubGates);
  out.tfg_mm2 = gates_to_mm2(kTfgGates);
  out.lsu_ctrl_mm2 = gates_to_mm2(kLsuCtrlGates);
  out.buffers_mm2 = 0;
  for (std::size_t b = 2; b <= num_buffers; ++b)
    out.buffers_mm2 += buffer_increment(b);
  out.total_mm2 = out.modmult_mm2 + out.modaddsub_mm2 + out.tfg_mm2 +
                  out.lsu_ctrl_mm2 + out.buffers_mm2;
  out.percent_of_bank = out.total_mm2 / kBankAreaMm2 * 100.0;
  return out;
}

}  // namespace nttpim::model
