// Measured x86 software baseline (the "x86 CPU" series of Figs. 7-8 and
// Table III).
//
// Two implementations are timed on the build host:
//  - "plain":      64-bit `%` reduction, on-the-fly twiddles — comparable in
//                  spirit to the unoptimized software the paper measured;
//  - "montgomery": precomputed tables + Montgomery arithmetic — what a tuned
//                  host library achieves (reported for context; absolute CPU
//                  numbers are host-dependent, see EXPERIMENTS.md).
//
// Energy is estimated as time x an effective package power calibrated to
// the power implied by the paper's own x86 rows (~6.7 W).
#pragma once

#include <cstddef>

namespace nttpim::model {

struct CpuMeasurement {
  double latency_us = 0;
  double energy_uj = 0;
};

/// Implied package power of the paper's x86 rows (570.6 uJ / 84.81 us).
inline constexpr double kCpuPowerW = 6.7;

/// Median-of-`reps` wall-clock of the plain (mod-operator) NTT.
CpuMeasurement measure_cpu_plain(std::size_t n, int reps = 7);

/// Median-of-`reps` wall-clock of the Montgomery table-based NTT.
CpuMeasurement measure_cpu_montgomery(std::size_t n, int reps = 7);

}  // namespace nttpim::model
