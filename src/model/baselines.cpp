#include "model/baselines.h"

#include <cmath>

#include "common/check.h"

namespace nttpim::model {

std::optional<double> ReferenceDesign::latency_at(std::size_t n) const {
  for (const auto& p : points)
    if (p.n == n) return p.latency_us;
  return std::nullopt;
}

std::optional<double> ReferenceDesign::energy_at(std::size_t n) const {
  for (const auto& p : points)
    if (p.n == n) return p.energy_uj;
  return std::nullopt;
}

double ReferenceDesign::fitted_latency_us(std::size_t n) const {
  // Least squares for y = a*x + b with x = N log2 N.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int count = 0;
  for (const auto& p : points) {
    if (!p.latency_us) continue;
    const double x =
        static_cast<double>(p.n) * std::log2(static_cast<double>(p.n));
    sx += x;
    sy += *p.latency_us;
    sxx += x * x;
    sxy += x * *p.latency_us;
    ++count;
  }
  NTTPIM_CHECK_MSG(count >= 2, "need at least two points to fit");
  const double denom = count * sxx - sx * sx;
  const double a = (count * sxy - sx * sy) / denom;
  const double b = (sy - a * sx) / count;
  const double x =
      static_cast<double>(n) * std::log2(static_cast<double>(n));
  return a * x + b;
}

const std::vector<ReferenceDesign>& table3_designs() {
  static const std::vector<ReferenceDesign> designs = {
      {"MeNTT",
       "6T-SRAM",
       "14/16",
       {{256, 23.0, 0.144},
        {512, 26.0, 0.324},
        {1024, 34.3, 0.868}}},
      {"CryptoPIM",
       "RRAM",
       "16/32",
       {{256, 68.57, 68.67},
        {512, 75.90, 75.90},
        {1024, 83.12, 83.12},
        {2048, 363.90, 363.60},
        {4096, 392.69, 421.78}}},
      {"x86 CPU (paper)",
       "Software",
       "32",
       {{256, 84.81, 570.60},
        {512, 168.96, 1179.52},
        {1024, 349.41, 2483.77},
        {2048, 736.92, 5273.07},
        {4096, 1503.31, 10864.64}}},
      {"FPGA",
       "-",
       "16",
       {{256, 21.56, 2.15}, {512, 47.64, 5.28}, {1024, 101.84, 12.52}}},
  };
  return designs;
}

const ReferenceDesign& paper_nttpim(std::size_t num_buffers) {
  static const ReferenceDesign nb2 = {
      "NTT-PIM (paper, Nb=2)",
      "DRAM",
      "32",
      {{256, 3.90, 0.80},
       {512, 14.16, 4.77},
       {1024, 38.19, 13.86},
       {2048, 95.84, 36.68},
       {4096, 230.45, 93.08}}};
  static const ReferenceDesign nb4 = {
      "NTT-PIM (paper, Nb=4)",
      "DRAM",
      "32",
      {{256, 2.50, 0.49},
       {512, 8.33, 2.67},
       {1024, 21.62, 7.16},
       {2048, 53.03, 18.98},
       {4096, 124.95, 48.93}}};
  static const ReferenceDesign nb6 = {
      "NTT-PIM (paper, Nb=6)",
      "DRAM",
      "32",
      {{256, 1.94, std::nullopt},
       {512, 6.58, std::nullopt},
       {1024, 16.89, std::nullopt},
       {2048, 41.18, std::nullopt},
       {4096, 96.62, std::nullopt}}};
  switch (num_buffers) {
    case 2: return nb2;
    case 4: return nb4;
    case 6: return nb6;
    default:
      NTTPIM_EXPECT_MSG(false, "paper reports Nb in {2, 4, 6} only");
  }
  return nb2;  // unreachable
}

}  // namespace nttpim::model
