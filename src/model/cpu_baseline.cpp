#include "model/cpu_baseline.h"

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "ntt/params.h"
#include "ntt/reference.h"

namespace nttpim::model {

namespace {

template <typename Fn>
CpuMeasurement measure(std::size_t n, int reps, Fn&& transform) {
  const ntt::NttParams params = ntt::NttParams::create(n);
  Rng rng(0xba5e11e);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  volatile std::uint32_t sink = 0;  // defeat dead-code elimination
  for (int r = 0; r < reps; ++r) {
    auto data = rng.residues(n, params.q());
    Stopwatch sw;
    transform(data, params);
    samples.push_back(sw.elapsed_us());
    sink = sink ^ data[0];
  }
  std::sort(samples.begin(), samples.end());
  CpuMeasurement m;
  m.latency_us = samples[samples.size() / 2];
  m.energy_uj = m.latency_us * kCpuPowerW;  // W * us = uJ
  return m;
}

}  // namespace

CpuMeasurement measure_cpu_plain(std::size_t n, int reps) {
  return measure(n, reps,
                 [](std::vector<std::uint32_t>& a, const ntt::NttParams& p) {
                   ntt::forward_ntt_plain_mod(a, p.q(), p.omega());
                 });
}

CpuMeasurement measure_cpu_montgomery(std::size_t n, int reps) {
  return measure(n, reps,
                 [](std::vector<std::uint32_t>& a, const ntt::NttParams& p) {
                   ntt::forward_ntt_montgomery(a, p);
                 });
}

}  // namespace nttpim::model
