#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "dram/bank.h"

namespace nttpim::sim {

using dram::CmdKind;
using dram::Command;

namespace {

/// Per-bank refresh state machine: a due refresh proceeds through up to
/// three bus commands (PRE if a row is open, REF, restoring ACT), each
/// scheduled competitively so other banks keep using the bus in between.
enum class RefreshStep : std::uint8_t { kNone, kNeedRef, kNeedRestore };

/// Per-bank scheduling state.
struct BankState {
  BankState(const dram::DramTiming& timing, std::size_t num_buffers,
            std::uint64_t refresh_offset)
      : timing(timing),
        buf_avail(num_buffers, 0),
        next_refresh(timing.trefi + refresh_offset) {}

  dram::BankTiming timing;
  std::vector<std::uint64_t> buf_avail;  ///< buffer busy-until timestamps
  std::uint64_t cu_next_issue = 0;       ///< CU pipeline initiation slot
  std::uint64_t cu_last_end = 0;         ///< completion of last compute
  std::uint64_t scalar_ready = 0;        ///< scalar register file readiness
  std::uint64_t next_refresh = 0;        ///< next tREFI deadline
  RefreshStep refresh_step = RefreshStep::kNone;
  std::int64_t saved_row = dram::BankTiming::kNoOpenRow;
  std::vector<std::size_t> queue;        ///< indices into the trace
  std::size_t head = 0;

  // Event-driven fast path: bus-independent earliest-issue times, valid
  // until the next commit (trace command or refresh step) to this bank.
  // Every timing constraint is of the form max(bus_free, bank-local), so
  // the actual earliest issue cycle is max(bus_free, cached local value) —
  // bit-identical to recomputing against the live bus, but without
  // re-deriving the bank-local part on every scheduler scan.
  std::uint64_t cached_cmd_local = 0;
  std::uint64_t cached_refresh_local = 0;
  bool cache_valid = false;

  bool done() const noexcept { return head == queue.size(); }
};

/// Shared scheduler core: per-bank queues, the commit rules (timing +
/// functional effect) and the transparent-refresh state machine. The two
/// Engine entry points differ only in how the next (bank, cycle) pair is
/// selected each step.
class Scheduler {
 public:
  Scheduler(const EngineConfig& config, pim::PimDevice& device,
            std::span<const Command> trace)
      : config_(config), t_(config.timing), device_(device), trace_(trace) {
    const dram::DramGeometry& g = device.geometry();
    NTTPIM_EXPECT_MSG(g.num_channels >= 1 && g.banks % g.num_channels == 0,
                      "banks must divide evenly across channels");
    bus_free_.assign(g.num_channels, 0);
    channel_makespan_.assign(g.num_channels, 0);
    banks_.reserve(device.num_banks());
    channel_.reserve(device.num_banks());
    for (std::size_t b = 0; b < device.num_banks(); ++b) {
      // With stagger_refresh, channel c's tREFI clock runs offset by
      // trefi * c / num_channels so the channels' refresh windows
      // interleave instead of landing on every command bus at once.
      const std::size_t c = g.channel_of(b);
      const std::uint64_t offset =
          t_.stagger_refresh
              ? static_cast<std::uint64_t>(t_.trefi) * c / g.num_channels
              : 0;
      banks_.emplace_back(t_, device.num_buffers(), offset);
      channel_.push_back(c);
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
      NTTPIM_EXPECT_MSG(trace[i].bank < device.num_banks(),
                        "command targets a nonexistent bank");
      banks_[trace[i].bank].queue.push_back(i);
    }
  }

  RunStats run(bool event_driven) {
    std::uint64_t butterflies_before = 0;
    for (std::size_t b = 0; b < device_.num_banks(); ++b)
      butterflies_before += device_.bank(b).cu().butterfly_count();

    if (event_driven)
      run_event_driven();
    else
      run_full_rescan();

    std::uint64_t butterflies_after = 0;
    for (std::size_t b = 0; b < device_.num_banks(); ++b)
      butterflies_after += device_.bank(b).cu().butterfly_count();

    stats_.cycles = makespan_;
    stats_.channel_makespans = std::move(channel_makespan_);
    stats_.ns = static_cast<double>(makespan_) * t_.ns_per_cycle();
    stats_.butterflies = butterflies_after - butterflies_before;

    dram::EnergyCounts counts;
    counts.activations = stats_.activations;
    counts.column_transfers = stats_.column_reads + stats_.column_writes;
    counts.butterflies = stats_.butterflies;
    counts.param_loads = stats_.param_loads;
    counts.refreshes = stats_.refreshes;
    stats_.energy = dram::compute_energy(config_.energy, counts, stats_.ns);
    return std::move(stats_);
  }

 private:
  // Earliest cycle >= t_min at which the head command of `bs` could issue.
  // Every branch composes max() with bank-local readiness, so
  // earliest(bs, cmd, t) == max(t, earliest(bs, cmd, 0)) — the separability
  // the event-driven scheduler's per-bank cache relies on.
  std::uint64_t earliest(const BankState& bs, const Command& cmd,
                         std::uint64_t t_min) const {
    std::uint64_t e = t_min;
    switch (cmd.kind) {
      case CmdKind::kAct:
        e = bs.timing.earliest_act(e);
        break;
      case CmdKind::kPre:
        e = bs.timing.earliest_pre(e);
        break;
      case CmdKind::kCuRead:
        e = bs.timing.earliest_column(e);
        e = std::max(e, bs.buf_avail[cmd.buf]);
        break;
      case CmdKind::kCuWrite:
        e = bs.timing.earliest_column(e);
        e = std::max(e, bs.buf_avail[cmd.buf]);
        break;
      case CmdKind::kC1:
        e = std::max(e, bs.cu_next_issue);
        e = std::max(e, bs.buf_avail[cmd.buf]);
        break;
      case CmdKind::kC2:
        e = std::max(e, bs.cu_next_issue);
        e = std::max(e, bs.buf_avail[cmd.buf]);
        e = std::max(e, bs.buf_avail[cmd.buf2]);
        break;
      case CmdKind::kParam:
        // Parameter registers feed the TFG/BU; don't clobber in-flight ops.
        e = std::max(e, bs.cu_last_end);
        break;
      case CmdKind::kBufZero:
        e = std::max(e, bs.buf_avail[cmd.buf]);
        break;
      case CmdKind::kScalarRead:
        e = bs.timing.earliest_column(e);
        e = std::max(e, bs.buf_avail[0]);
        break;
      case CmdKind::kScalarWrite:
        e = bs.timing.earliest_column(e);
        e = std::max(e, bs.buf_avail[0]);
        e = std::max(e, bs.scalar_ready);
        break;
      case CmdKind::kScalarBu:
        e = std::max(e, bs.cu_next_issue);
        e = std::max(e, bs.scalar_ready);
        break;
      case CmdKind::kRefresh:
        NTTPIM_CHECK_MSG(false, "refresh is engine-inserted, not mapped");
    }
    return e;
  }

  // Transparent refresh, as a real MC performs it: close the open row,
  // issue REF, and restore the row so the trace's open-row assumptions
  // continue to hold. The PRE/ACT bookkeeping is charged to the refresh
  // energy (refresh_pj), not the trace's activation counts.
  //
  // Earliest start >= t_min of the bank's next refresh action (kNone means
  // the tREFI deadline passed and the first step must be chosen). Same
  // max-separability as earliest().
  std::uint64_t refresh_action_time(const BankState& bs,
                                    std::uint64_t t_min) const {
    switch (bs.refresh_step) {
      case RefreshStep::kNeedRef:
        return bs.timing.earliest_refresh(t_min);
      case RefreshStep::kNeedRestore:
        return bs.timing.earliest_act(t_min);
      case RefreshStep::kNone:
        return bs.timing.open_row() == dram::BankTiming::kNoOpenRow
                   ? bs.timing.earliest_refresh(t_min)
                   : bs.timing.earliest_pre(t_min);
    }
    return t_min;
  }

  // Commit the head command of bank `b` at cycle `at`.
  void commit(std::size_t b, const Command& cmd, std::uint64_t at) {
    BankState& bs = banks_[b];
    std::uint64_t end = at + 1;
    std::uint64_t bus_cycles = 1;
    switch (cmd.kind) {
      case CmdKind::kAct:
        bs.timing.issue_act(at, cmd.row);
        end = at + t_.trcd;
        ++stats_.activations;
        break;
      case CmdKind::kPre:
        bs.timing.issue_pre(at);
        end = at + t_.trp;
        ++stats_.precharges;
        break;
      case CmdKind::kCuRead: {
        const std::uint64_t ready = bs.timing.issue_read(at);
        bs.buf_avail[cmd.buf] = ready;
        end = ready;
        ++stats_.column_reads;
        break;
      }
      case CmdKind::kCuWrite: {
        const std::uint64_t done = bs.timing.issue_write(at);
        bs.buf_avail[cmd.buf] = done;
        end = done;
        ++stats_.column_writes;
        break;
      }
      case CmdKind::kC1: {
        const std::uint64_t result = at + t_.c1_latency;
        bs.cu_next_issue = at + t_.c1_interval;
        bs.cu_last_end = std::max(bs.cu_last_end, result);
        bs.buf_avail[cmd.buf] = result;
        end = result;
        ++stats_.compute_ops;
        break;
      }
      case CmdKind::kC2: {
        const std::uint64_t result = at + t_.c2_latency;
        bs.cu_next_issue = at + t_.c2_interval;
        bs.cu_last_end = std::max(bs.cu_last_end, result);
        bs.buf_avail[cmd.buf] = result;
        bs.buf_avail[cmd.buf2] = result;
        end = result;
        ++stats_.compute_ops;
        break;
      }
      case CmdKind::kParam: {
        bus_cycles = t_.param_bus_cycles;
        const std::uint64_t applied = at + t_.param_latency;
        bs.cu_next_issue = std::max(bs.cu_next_issue, applied);
        bs.cu_last_end = std::max(bs.cu_last_end, applied);
        end = applied;
        ++stats_.param_loads;
        break;
      }
      case CmdKind::kBufZero:
        bs.buf_avail[cmd.buf] = at + t_.bufzero_latency;
        end = at + t_.bufzero_latency;
        break;
      case CmdKind::kScalarRead: {
        const std::uint64_t ready = bs.timing.issue_read(at);
        bs.buf_avail[0] = ready;
        bs.scalar_ready = std::max(bs.scalar_ready, ready);
        end = ready;
        ++stats_.column_reads;
        break;
      }
      case CmdKind::kScalarWrite: {
        const std::uint64_t done = bs.timing.issue_write(at);
        bs.buf_avail[0] = done;
        end = done;
        ++stats_.column_writes;
        break;
      }
      case CmdKind::kScalarBu: {
        const std::uint64_t result = at + t_.scalar_bu_latency;
        bs.cu_next_issue = result;
        bs.cu_last_end = std::max(bs.cu_last_end, result);
        bs.scalar_ready = result;
        end = result;
        ++stats_.compute_ops;
        break;
      }
      case CmdKind::kRefresh:
        NTTPIM_CHECK_MSG(false, "refresh is engine-inserted, not mapped");
    }
    const std::size_t ch = channel_[b];
    bus_free_[ch] = at + bus_cycles;
    stats_.bus_busy_cycles += bus_cycles;
    channel_makespan_[ch] = std::max(channel_makespan_[ch], end);
    makespan_ = std::max(makespan_, end);
    if (config_.record_timeline)
      stats_.timeline.push_back(TimelineEvent{
          bs.queue[bs.head], cmd.kind, cmd.bank, at, end});
    // Functional effect, applied in per-bank program order.
    device_.bank(b).apply(cmd);
    ++bs.head;
    ++stats_.commands;
    bs.cache_valid = false;
  }

  void commit_refresh_step(std::size_t b, std::uint64_t at) {
    BankState& bs = banks_[b];
    const std::size_t ch = channel_[b];
    switch (bs.refresh_step) {
      case RefreshStep::kNone:  // first step: PRE if open, else REF
        if (bs.timing.open_row() != dram::BankTiming::kNoOpenRow) {
          bs.saved_row = bs.timing.open_row();
          bs.timing.issue_pre(at);
          device_.bank(b).apply({.kind = CmdKind::kPre,
                                 .bank = static_cast<std::uint16_t>(b)});
          bs.refresh_step = RefreshStep::kNeedRef;
        } else {
          bs.saved_row = dram::BankTiming::kNoOpenRow;
          bs.timing.issue_refresh(at);
          ++stats_.refreshes;
          bs.next_refresh += t_.trefi;
          channel_makespan_[ch] = std::max(channel_makespan_[ch],
                                           at + t_.trfc);
          makespan_ = std::max(makespan_, at + t_.trfc);
          bs.refresh_step = RefreshStep::kNone;
          if (config_.record_timeline)
            stats_.timeline.push_back(
                TimelineEvent{static_cast<std::size_t>(-1),
                              CmdKind::kRefresh,
                              static_cast<std::uint16_t>(b), at,
                              at + t_.trfc});
        }
        break;
      case RefreshStep::kNeedRef:
        bs.timing.issue_refresh(at);
        ++stats_.refreshes;
        bs.next_refresh += t_.trefi;
        channel_makespan_[ch] = std::max(channel_makespan_[ch],
                                         at + t_.trfc);
        makespan_ = std::max(makespan_, at + t_.trfc);
        bs.refresh_step = bs.saved_row == dram::BankTiming::kNoOpenRow
                              ? RefreshStep::kNone
                              : RefreshStep::kNeedRestore;
        if (config_.record_timeline)
          stats_.timeline.push_back(
              TimelineEvent{static_cast<std::size_t>(-1), CmdKind::kRefresh,
                            static_cast<std::uint16_t>(b), at,
                            at + t_.trfc});
        break;
      case RefreshStep::kNeedRestore:
        bs.timing.issue_act(at, static_cast<std::uint32_t>(bs.saved_row));
        device_.bank(b).apply({.kind = CmdKind::kAct,
                               .bank = static_cast<std::uint16_t>(b),
                               .row = static_cast<std::uint32_t>(
                                   bs.saved_row)});
        bs.refresh_step = RefreshStep::kNone;
        bs.saved_row = dram::BankTiming::kNoOpenRow;
        break;
    }
    bus_free_[ch] = at + 1;
    bs.cache_valid = false;
  }

  // Reference scheduling loop: repeatedly perform the oldest-ready action —
  // either a bank's head command, or a due refresh sequence for a bank
  // whose head cannot issue before its tREFI deadline. Ties rotate
  // round-robin across banks — a fixed priority would let a low-numbered
  // bank stream while starving the others (convoy effect), destroying the
  // bank-level parallelism the architecture is built for.
  //
  // Every step rescans every bank and re-derives its earliest issue cycle
  // from the live timing state: O(trace x banks) BankTiming queries.
  // Retained verbatim as the golden model the event-driven scheduler is
  // property-tested against.
  void run_full_rescan() {
    std::size_t rr_start = 0;
    while (true) {
      std::size_t best_bank = banks_.size();
      bool best_is_refresh = false;
      std::uint64_t best_time = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t offset = 0; offset < banks_.size(); ++offset) {
        const std::size_t b = (rr_start + offset) % banks_.size();
        BankState& bs = banks_[b];
        const std::uint64_t bus_free = bus_free_[channel_[b]];
        const bool mid_refresh = bs.refresh_step != RefreshStep::kNone;
        if (bs.done() && !mid_refresh) continue;
        std::uint64_t e;
        bool is_refresh;
        if (mid_refresh) {
          // Finish an in-flight refresh sequence before trace commands.
          is_refresh = true;
          e = refresh_action_time(bs, bus_free);
        } else if (bs.done()) {
          continue;
        } else {
          const Command& cmd = trace_[bs.queue[bs.head]];
          e = earliest(bs, cmd, bus_free);
          is_refresh = config_.enable_refresh && e >= bs.next_refresh;
          if (is_refresh) e = refresh_action_time(bs, bus_free);
        }
        if (e < best_time) {
          best_time = e;
          best_bank = b;
          best_is_refresh = is_refresh;
        }
      }
      if (best_bank == banks_.size()) break;  // all work drained
      if (best_is_refresh) {
        commit_refresh_step(best_bank, best_time);
        continue;
      }
      commit(best_bank,
             trace_[banks_[best_bank].queue[banks_[best_bank].head]],
             best_time);
      rr_start = (best_bank + 1) % banks_.size();
    }
  }

  /// Refill a bank's cached bus-independent earliest-issue times. The head
  /// command's time is only derived outside an in-flight refresh sequence —
  /// mid-refresh the row may be transiently closed, and the reference loop
  /// never consults the head command in that state either.
  void refill_cache(BankState& bs) {
    const bool mid_refresh = bs.refresh_step != RefreshStep::kNone;
    if (!mid_refresh && !bs.done())
      bs.cached_cmd_local = earliest(bs, trace_[bs.queue[bs.head]], 0);
    bs.cached_refresh_local = refresh_action_time(bs, 0);
    bs.cache_valid = true;
  }

  // Event-driven scheduling loop: same selection rule and tie rotation as
  // run_full_rescan, but each bank's bus-independent earliest-issue times
  // are cached and invalidated only when *that* bank commits something.
  // Because every timing constraint separates as max(bus_free, bank-local),
  // max(bus_free, cached local) reproduces the reference cycle exactly, so
  // the scan degenerates to a couple of max/compare operations per bank and
  // BankTiming is queried O(trace) instead of O(trace x banks) times.
  void run_event_driven() {
    std::size_t rr_start = 0;
    while (true) {
      std::size_t best_bank = banks_.size();
      bool best_is_refresh = false;
      std::uint64_t best_time = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t offset = 0; offset < banks_.size(); ++offset) {
        const std::size_t b = (rr_start + offset) % banks_.size();
        BankState& bs = banks_[b];
        const std::uint64_t bus_free = bus_free_[channel_[b]];
        const bool mid_refresh = bs.refresh_step != RefreshStep::kNone;
        if (bs.done() && !mid_refresh) continue;
        if (!bs.cache_valid) refill_cache(bs);
        std::uint64_t e;
        bool is_refresh;
        if (mid_refresh) {
          is_refresh = true;
          e = std::max(bus_free, bs.cached_refresh_local);
        } else {
          e = std::max(bus_free, bs.cached_cmd_local);
          is_refresh = config_.enable_refresh && e >= bs.next_refresh;
          if (is_refresh)
            e = std::max(bus_free, bs.cached_refresh_local);
        }
        if (e < best_time) {
          best_time = e;
          best_bank = b;
          best_is_refresh = is_refresh;
        }
      }
      if (best_bank == banks_.size()) break;  // all work drained
      if (best_is_refresh) {
        commit_refresh_step(best_bank, best_time);
        continue;
      }
      commit(best_bank,
             trace_[banks_[best_bank].queue[banks_[best_bank].head]],
             best_time);
      rr_start = (best_bank + 1) % banks_.size();
    }
  }

  const EngineConfig& config_;
  const dram::DramTiming& t_;
  pim::PimDevice& device_;
  std::span<const Command> trace_;
  std::vector<BankState> banks_;
  std::vector<std::size_t> channel_;  ///< bank -> channel (command bus)
  std::vector<std::uint64_t> bus_free_;  ///< per-channel bus availability
  std::vector<std::uint64_t> channel_makespan_;
  std::uint64_t makespan_ = 0;
  RunStats stats_;
};

}  // namespace

RunStats Engine::run(pim::PimDevice& device,
                     std::span<const dram::Command> trace) const {
  return Scheduler(config_, device, trace).run(/*event_driven=*/true);
}

RunStats Engine::run_reference(pim::PimDevice& device,
                               std::span<const dram::Command> trace) const {
  return Scheduler(config_, device, trace).run(/*event_driven=*/false);
}

}  // namespace nttpim::sim
