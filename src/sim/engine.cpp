#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "dram/bank.h"

namespace nttpim::sim {

using dram::CmdKind;
using dram::Command;

namespace {

/// Per-bank refresh state machine: a due refresh proceeds through up to
/// three bus commands (PRE if a row is open, REF, restoring ACT), each
/// scheduled competitively so other banks keep using the bus in between.
enum class RefreshStep : std::uint8_t { kNone, kNeedRef, kNeedRestore };

/// Per-bank scheduling state.
struct BankState {
  BankState(const dram::DramTiming& timing, std::size_t num_buffers)
      : timing(timing),
        buf_avail(num_buffers, 0),
        next_refresh(timing.trefi) {}

  dram::BankTiming timing;
  std::vector<std::uint64_t> buf_avail;  ///< buffer busy-until timestamps
  std::uint64_t cu_next_issue = 0;       ///< CU pipeline initiation slot
  std::uint64_t cu_last_end = 0;         ///< completion of last compute
  std::uint64_t scalar_ready = 0;        ///< scalar register file readiness
  std::uint64_t next_refresh = 0;        ///< next tREFI deadline
  RefreshStep refresh_step = RefreshStep::kNone;
  std::int64_t saved_row = dram::BankTiming::kNoOpenRow;
  std::vector<std::size_t> queue;        ///< indices into the trace
  std::size_t head = 0;

  bool done() const noexcept { return head == queue.size(); }
};

}  // namespace

RunStats Engine::run(pim::PimDevice& device,
                     std::span<const dram::Command> trace) const {
  const dram::DramTiming& t = config_.timing;

  std::vector<BankState> banks;
  banks.reserve(device.num_banks());
  for (std::size_t b = 0; b < device.num_banks(); ++b)
    banks.emplace_back(t, device.num_buffers());

  for (std::size_t i = 0; i < trace.size(); ++i) {
    NTTPIM_EXPECT_MSG(trace[i].bank < device.num_banks(),
                      "command targets a nonexistent bank");
    banks[trace[i].bank].queue.push_back(i);
  }

  std::uint64_t bus_free = 0;
  std::uint64_t makespan = 0;
  RunStats stats;

  std::uint64_t butterflies_before = 0;
  for (std::size_t b = 0; b < device.num_banks(); ++b)
    butterflies_before += device.bank(b).cu().butterfly_count();

  // Earliest cycle at which the head command of `bs` could issue.
  const auto earliest = [&](const BankState& bs,
                            const Command& cmd) -> std::uint64_t {
    std::uint64_t e = bus_free;
    switch (cmd.kind) {
      case CmdKind::kAct:
        e = bs.timing.earliest_act(e);
        break;
      case CmdKind::kPre:
        e = bs.timing.earliest_pre(e);
        break;
      case CmdKind::kCuRead:
        e = bs.timing.earliest_column(e);
        e = std::max(e, bs.buf_avail[cmd.buf]);
        break;
      case CmdKind::kCuWrite:
        e = bs.timing.earliest_column(e);
        e = std::max(e, bs.buf_avail[cmd.buf]);
        break;
      case CmdKind::kC1:
        e = std::max(e, bs.cu_next_issue);
        e = std::max(e, bs.buf_avail[cmd.buf]);
        break;
      case CmdKind::kC2:
        e = std::max(e, bs.cu_next_issue);
        e = std::max(e, bs.buf_avail[cmd.buf]);
        e = std::max(e, bs.buf_avail[cmd.buf2]);
        break;
      case CmdKind::kParam:
        // Parameter registers feed the TFG/BU; don't clobber in-flight ops.
        e = std::max(e, bs.cu_last_end);
        break;
      case CmdKind::kBufZero:
        e = std::max(e, bs.buf_avail[cmd.buf]);
        break;
      case CmdKind::kScalarRead:
        e = bs.timing.earliest_column(e);
        e = std::max(e, bs.buf_avail[0]);
        break;
      case CmdKind::kScalarWrite:
        e = bs.timing.earliest_column(e);
        e = std::max(e, bs.buf_avail[0]);
        e = std::max(e, bs.scalar_ready);
        break;
      case CmdKind::kScalarBu:
        e = std::max(e, bs.cu_next_issue);
        e = std::max(e, bs.scalar_ready);
        break;
      case CmdKind::kRefresh:
        NTTPIM_CHECK_MSG(false, "refresh is engine-inserted, not mapped");
    }
    return e;
  };

  // Commit the head command of bank `b` at cycle `at`.
  const auto commit = [&](std::size_t b, const Command& cmd,
                          std::uint64_t at) {
    BankState& bs = banks[b];
    std::uint64_t end = at + 1;
    std::uint64_t bus_cycles = 1;
    switch (cmd.kind) {
      case CmdKind::kAct:
        bs.timing.issue_act(at, cmd.row);
        end = at + t.trcd;
        ++stats.activations;
        break;
      case CmdKind::kPre:
        bs.timing.issue_pre(at);
        end = at + t.trp;
        ++stats.precharges;
        break;
      case CmdKind::kCuRead: {
        const std::uint64_t ready = bs.timing.issue_read(at);
        bs.buf_avail[cmd.buf] = ready;
        end = ready;
        ++stats.column_reads;
        break;
      }
      case CmdKind::kCuWrite: {
        const std::uint64_t done = bs.timing.issue_write(at);
        bs.buf_avail[cmd.buf] = done;
        end = done;
        ++stats.column_writes;
        break;
      }
      case CmdKind::kC1: {
        const std::uint64_t result = at + t.c1_latency;
        bs.cu_next_issue = at + t.c1_interval;
        bs.cu_last_end = std::max(bs.cu_last_end, result);
        bs.buf_avail[cmd.buf] = result;
        end = result;
        ++stats.compute_ops;
        break;
      }
      case CmdKind::kC2: {
        const std::uint64_t result = at + t.c2_latency;
        bs.cu_next_issue = at + t.c2_interval;
        bs.cu_last_end = std::max(bs.cu_last_end, result);
        bs.buf_avail[cmd.buf] = result;
        bs.buf_avail[cmd.buf2] = result;
        end = result;
        ++stats.compute_ops;
        break;
      }
      case CmdKind::kParam: {
        bus_cycles = t.param_bus_cycles;
        const std::uint64_t applied = at + t.param_latency;
        bs.cu_next_issue = std::max(bs.cu_next_issue, applied);
        bs.cu_last_end = std::max(bs.cu_last_end, applied);
        end = applied;
        ++stats.param_loads;
        break;
      }
      case CmdKind::kBufZero:
        bs.buf_avail[cmd.buf] = at + t.bufzero_latency;
        end = at + t.bufzero_latency;
        break;
      case CmdKind::kScalarRead: {
        const std::uint64_t ready = bs.timing.issue_read(at);
        bs.buf_avail[0] = ready;
        bs.scalar_ready = std::max(bs.scalar_ready, ready);
        end = ready;
        ++stats.column_reads;
        break;
      }
      case CmdKind::kScalarWrite: {
        const std::uint64_t done = bs.timing.issue_write(at);
        bs.buf_avail[0] = done;
        end = done;
        ++stats.column_writes;
        break;
      }
      case CmdKind::kScalarBu: {
        const std::uint64_t result = at + t.scalar_bu_latency;
        bs.cu_next_issue = result;
        bs.cu_last_end = std::max(bs.cu_last_end, result);
        bs.scalar_ready = result;
        end = result;
        ++stats.compute_ops;
        break;
      }
      case CmdKind::kRefresh:
        NTTPIM_CHECK_MSG(false, "refresh is engine-inserted, not mapped");
    }
    bus_free = at + bus_cycles;
    stats.bus_busy_cycles += bus_cycles;
    makespan = std::max(makespan, end);
    if (config_.record_timeline)
      stats.timeline.push_back(TimelineEvent{
          bs.queue[bs.head], cmd.kind, cmd.bank, at, end});
    // Functional effect, applied in per-bank program order.
    device.bank(b).apply(cmd);
    ++bs.head;
    ++stats.commands;
  };

  // Transparent refresh, as a real MC performs it: close the open row,
  // issue REF, and restore the row so the trace's open-row assumptions
  // continue to hold. The PRE/ACT bookkeeping is charged to the refresh
  // energy (refresh_pj), not the trace's activation counts.
  //
  // Earliest start of the bank's next refresh action (kNone means the
  // tREFI deadline passed and the first step must be chosen).
  const auto refresh_action_time = [&](BankState& bs) -> std::uint64_t {
    switch (bs.refresh_step) {
      case RefreshStep::kNeedRef:
        return bs.timing.earliest_refresh(bus_free);
      case RefreshStep::kNeedRestore:
        return bs.timing.earliest_act(bus_free);
      case RefreshStep::kNone:
        return bs.timing.open_row() == dram::BankTiming::kNoOpenRow
                   ? bs.timing.earliest_refresh(bus_free)
                   : bs.timing.earliest_pre(bus_free);
    }
    return bus_free;
  };

  const auto commit_refresh_step = [&](std::size_t b, std::uint64_t at) {
    BankState& bs = banks[b];
    switch (bs.refresh_step) {
      case RefreshStep::kNone:  // first step: PRE if open, else REF
        if (bs.timing.open_row() != dram::BankTiming::kNoOpenRow) {
          bs.saved_row = bs.timing.open_row();
          bs.timing.issue_pre(at);
          device.bank(b).apply({.kind = CmdKind::kPre,
                                .bank = static_cast<std::uint16_t>(b)});
          bs.refresh_step = RefreshStep::kNeedRef;
        } else {
          bs.saved_row = dram::BankTiming::kNoOpenRow;
          bs.timing.issue_refresh(at);
          ++stats.refreshes;
          bs.next_refresh += t.trefi;
          makespan = std::max(makespan, at + t.trfc);
          bs.refresh_step = RefreshStep::kNone;
          if (config_.record_timeline)
            stats.timeline.push_back(
                TimelineEvent{static_cast<std::size_t>(-1),
                              CmdKind::kRefresh,
                              static_cast<std::uint16_t>(b), at,
                              at + t.trfc});
        }
        break;
      case RefreshStep::kNeedRef:
        bs.timing.issue_refresh(at);
        ++stats.refreshes;
        bs.next_refresh += t.trefi;
        makespan = std::max(makespan, at + t.trfc);
        bs.refresh_step = bs.saved_row == dram::BankTiming::kNoOpenRow
                              ? RefreshStep::kNone
                              : RefreshStep::kNeedRestore;
        if (config_.record_timeline)
          stats.timeline.push_back(
              TimelineEvent{static_cast<std::size_t>(-1), CmdKind::kRefresh,
                            static_cast<std::uint16_t>(b), at,
                            at + t.trfc});
        break;
      case RefreshStep::kNeedRestore:
        bs.timing.issue_act(at, static_cast<std::uint32_t>(bs.saved_row));
        device.bank(b).apply({.kind = CmdKind::kAct,
                              .bank = static_cast<std::uint16_t>(b),
                              .row = static_cast<std::uint32_t>(
                                  bs.saved_row)});
        bs.refresh_step = RefreshStep::kNone;
        bs.saved_row = dram::BankTiming::kNoOpenRow;
        break;
    }
    bus_free = at + 1;
  };

  // Main scheduling loop: repeatedly perform the oldest-ready action —
  // either a bank's head command, or a due refresh sequence for a bank
  // whose head cannot issue before its tREFI deadline. Ties rotate
  // round-robin across banks — a fixed priority would let a low-numbered
  // bank stream while starving the others (convoy effect), destroying the
  // bank-level parallelism the architecture is built for.
  std::size_t rr_start = 0;
  while (true) {
    std::size_t best_bank = banks.size();
    bool best_is_refresh = false;
    std::uint64_t best_time = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t offset = 0; offset < banks.size(); ++offset) {
      const std::size_t b = (rr_start + offset) % banks.size();
      BankState& bs = banks[b];
      const bool mid_refresh = bs.refresh_step != RefreshStep::kNone;
      if (bs.done() && !mid_refresh) continue;
      std::uint64_t e;
      bool is_refresh;
      if (mid_refresh) {
        // Finish an in-flight refresh sequence before trace commands.
        is_refresh = true;
        e = refresh_action_time(bs);
      } else if (bs.done()) {
        continue;
      } else {
        const Command& cmd = trace[bs.queue[bs.head]];
        e = earliest(bs, cmd);
        is_refresh = config_.enable_refresh && e >= bs.next_refresh;
        if (is_refresh) e = refresh_action_time(bs);
      }
      if (e < best_time) {
        best_time = e;
        best_bank = b;
        best_is_refresh = is_refresh;
      }
    }
    if (best_bank == banks.size()) break;  // all work drained
    if (best_is_refresh) {
      commit_refresh_step(best_bank, best_time);
      continue;
    }
    commit(best_bank, trace[banks[best_bank].queue[banks[best_bank].head]],
           best_time);
    rr_start = (best_bank + 1) % banks.size();
  }

  std::uint64_t butterflies_after = 0;
  for (std::size_t b = 0; b < device.num_banks(); ++b)
    butterflies_after += device.bank(b).cu().butterfly_count();

  stats.cycles = makespan;
  stats.ns = static_cast<double>(makespan) * t.ns_per_cycle();
  stats.butterflies = butterflies_after - butterflies_before;

  dram::EnergyCounts counts;
  counts.activations = stats.activations;
  counts.column_transfers = stats.column_reads + stats.column_writes;
  counts.butterflies = stats.butterflies;
  counts.param_loads = stats.param_loads;
  counts.refreshes = stats.refreshes;
  stats.energy = dram::compute_energy(config_.energy, counts, stats.ns);
  return stats;
}

}  // namespace nttpim::sim
