// End-to-end NTT-on-PIM runs: parameter generation, host data placement,
// mapping, simulation and verification against the reference transform.
// This is the C++ equivalent of the paper's front-end driver (Sec. VI.A),
// including its "verify the functionality of the NTT function as executed"
// role.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/energy.h"
#include "mapping/mapper.h"
#include "mapping/trace.h"
#include "sim/engine.h"

namespace nttpim::sim {

struct NttRunConfig {
  std::size_t n = 1024;
  std::uint32_t q = 0;  ///< 0 = pick the largest 31-bit NTT-friendly prime
  std::size_t num_buffers = 2;  ///< Nb (1 selects the naive fallback mapper)
  bool pipelined = true;
  bool in_place = true;
  bool row_centric = true;  ///< false = stage-major division ablation
  bool enable_refresh = true;
  double freq_mhz = 1200.0;
  mapping::Direction direction = mapping::Direction::kForward;
  bool negacyclic = false;
  std::uint64_t seed = 42;
  dram::EnergyParams energy{};
  bool validate_trace = true;  ///< run the static trace checker first
};

struct NttRunResult {
  RunStats stats;
  mapping::TraceCounts trace_counts;
  bool verified = false;     ///< memory image == reference transform
  double latency_us = 0;
  double energy_nj = 0;
  std::uint32_t q = 0;
  std::size_t trace_length = 0;
};

/// Run one NTT through the mapped command trace on the simulated PIM and
/// check the result against the CPU reference transform.
NttRunResult run_ntt_on_pim(const NttRunConfig& config);

/// Bank-level parallelism (paper Sec. VI.A / VII): run `banks` independent
/// NTTs, one per bank, sharing the command bus.
struct ParallelRunResult {
  std::uint64_t cycles = 0;          ///< makespan of all banks
  std::uint64_t single_bank_cycles = 0;  ///< one NTT alone
  bool all_verified = false;
  double throughput_speedup = 0;  ///< banks * single / makespan
};

ParallelRunResult run_parallel_ntts(std::size_t banks,
                                    const NttRunConfig& config);

}  // namespace nttpim::sim
