#include "sim/runner.h"

#include "common/check.h"
#include "common/random.h"
#include "mapping/naive_mapper.h"
#include "ntt/negacyclic.h"
#include "ntt/primes.h"
#include "ntt/reference.h"
#include "pim/host.h"

namespace nttpim::sim {

namespace {

ntt::NttParams make_params(const NttRunConfig& config) {
  const std::uint32_t q =
      config.q != 0 ? config.q
                    : ntt::find_ntt_prime(config.n, /*bits=*/31);
  return ntt::NttParams(config.n, q);
}

/// Reference result for the configured transform, natural order.
std::vector<std::uint32_t> reference_result(
    const NttRunConfig& config, const ntt::NttParams& params,
    const std::vector<std::uint32_t>& input) {
  std::vector<std::uint32_t> expected = input;
  if (config.direction == mapping::Direction::kForward) {
    if (config.negacyclic)
      ntt::forward_negacyclic_ntt(expected, params);
    else
      ntt::forward_ntt(expected, params);
  } else {
    if (config.negacyclic)
      ntt::inverse_negacyclic_ntt(expected, params);
    else
      ntt::inverse_ntt(expected, params);
  }
  return expected;
}

}  // namespace

NttRunResult run_ntt_on_pim(const NttRunConfig& config) {
  NTTPIM_EXPECT(config.n >= 2);
  const ntt::NttParams params = make_params(config);

  Rng rng(config.seed);
  const std::vector<std::uint32_t> input =
      rng.residues(config.n, params.q());

  // Host side: place the polynomial (bit-reversed; for the forward
  // negacyclic transform the host folds the psi^i pre-scaling into this
  // pass, since it touches every word anyway — see DESIGN.md).
  std::vector<std::uint32_t> to_load = input;
  if (config.negacyclic && config.direction == mapping::Direction::kForward)
    ntt::geometric_scale(to_load, params.psi(), 1, params.q());

  const dram::DramGeometry geometry = dram::hbm2e_geometry(1);
  pim::PimDevice device(geometry, config.num_buffers);
  pim::load_polynomial(device.bank(0), /*base_row=*/0, to_load);

  // Memory controller side: build the command trace.
  mapping::NttJob job;
  job.base_row = 0;
  job.direction = config.direction;
  job.negacyclic =
      config.negacyclic && config.direction == mapping::Direction::kInverse;

  mapping::MappedNtt mapped;
  if (config.num_buffers == 1) {
    const mapping::NaiveMapper mapper(geometry, params);
    mapped = mapper.map(job);
  } else {
    mapping::MapperConfig mc;
    mc.num_buffers = config.num_buffers;
    mc.pipelined = config.pipelined;
    mc.in_place = config.in_place;
    mc.row_centric = config.row_centric;
    const mapping::RowCentricMapper mapper(geometry, params, mc);
    mapped = mapper.map(job);
  }

  if (config.validate_trace)
    mapping::validate_trace(mapped.trace, geometry, config.num_buffers);

  EngineConfig ec;
  ec.timing = dram::hbm2e_timing().at_frequency(config.freq_mhz);
  ec.energy = config.energy;
  ec.enable_refresh = config.enable_refresh;
  const Engine engine(ec);
  const RunStats stats = engine.run(device, mapped.trace);

  const auto produced =
      pim::read_result(device.bank(0), mapped.result_base_row, config.n);
  const auto expected = reference_result(config, params, input);

  NttRunResult result;
  result.stats = stats;
  result.trace_counts = mapping::count_commands(mapped.trace);
  result.verified = produced == expected;
  result.latency_us = stats.us();
  result.energy_nj = stats.energy.total_nj();
  result.q = params.q();
  result.trace_length = mapped.trace.size();
  return result;
}

ParallelRunResult run_parallel_ntts(std::size_t banks,
                                    const NttRunConfig& config) {
  NTTPIM_EXPECT(banks >= 1);
  const ntt::NttParams params = make_params(config);

  const dram::DramGeometry geometry = dram::hbm2e_geometry(banks);
  pim::PimDevice device(geometry, config.num_buffers);

  // Independent polynomials per bank (the FHE use case: e.g. one RNS limb
  // or one ciphertext polynomial per bank).
  std::vector<std::vector<std::uint32_t>> inputs(banks);
  std::vector<dram::Command> merged;
  std::vector<std::uint32_t> result_rows(banks);
  for (std::size_t b = 0; b < banks; ++b) {
    Rng rng(config.seed + b);
    inputs[b] = rng.residues(config.n, params.q());
    pim::load_polynomial(device.bank(b), 0, inputs[b]);

    mapping::MapperConfig mc;
    mc.num_buffers = config.num_buffers;
    mc.pipelined = config.pipelined;
    mc.in_place = config.in_place;
    mc.row_centric = config.row_centric;
    mc.bank = static_cast<std::uint16_t>(b);
    const mapping::RowCentricMapper mapper(geometry, params, mc);
    auto mapped = mapper.map(mapping::NttJob{});
    result_rows[b] = mapped.result_base_row;
    merged.insert(merged.end(), mapped.trace.begin(), mapped.trace.end());
  }

  EngineConfig ec;
  ec.timing = dram::hbm2e_timing().at_frequency(config.freq_mhz);
  ec.energy = config.energy;
  ec.enable_refresh = config.enable_refresh;
  const Engine engine(ec);
  const RunStats stats = engine.run(device, merged);

  bool all_ok = true;
  for (std::size_t b = 0; b < banks; ++b) {
    auto expected = inputs[b];
    ntt::forward_ntt(expected, params);
    const auto produced =
        pim::read_result(device.bank(b), result_rows[b], config.n);
    all_ok = all_ok && produced == expected;
  }

  // Single-bank reference run for the speedup metric.
  NttRunConfig single = config;
  single.validate_trace = false;
  const auto single_result = run_ntt_on_pim(single);

  ParallelRunResult out;
  out.cycles = stats.cycles;
  out.single_bank_cycles = single_result.stats.cycles;
  out.all_verified = all_ok && single_result.verified;
  out.throughput_speedup =
      static_cast<double>(banks) *
      static_cast<double>(single_result.stats.cycles) /
      static_cast<double>(stats.cycles);
  return out;
}

}  // namespace nttpim::sim
