// Cycle-accurate timing + functional co-simulation of a PIM command trace.
//
// This replaces the paper's DRAMsim3 + Python front-end driver pair: one
// engine both enforces DRAM timing (per-bank FSM, shared command bus,
// single-ported buffers, pipelined CU) and executes the commands'
// functional effects, so the NTT result can be verified word-for-word
// against the reference transform while the cycle count is measured.
//
// Scheduling model. Commands issue in order *per bank*; across banks the
// engine each step picks the oldest-ready head-of-queue (lowest earliest
// issue cycle, ties broken by bank id), which models a simple
// bank-round-robin memory controller. Each *channel* of the device
// geometry has its own command bus (one command per cycle; PARAM occupies
// two bus cycles for its 16-bit chunks): a command serializes only against
// commands of banks in the same channel, so channels progress on
// independent timelines and the device makespan is the max over them —
// the DRAMsim3-style per-channel command-stream model. A single-channel
// geometry reproduces the paper's shared-bus device exactly.
//
// Timing rules per command kind:
//   ACT      max(bus, tRP after PRE);            row opens, tRCD starts
//   PRE      max(bus, tRAS, write recovery, read-to-precharge)
//   CU_RD    max(bus, tRCD, tCCD, buffer free);  data lands CL+burst later
//   CU_WR    max(bus, tRCD, tCCD, buffer data ready); recovery tWR after data
//   C1/C2    max(bus, CU pipeline free, operand buffers ready);
//            buffers busy until the result latency elapses
//   PARAM    max(bus, last compute completed); CU stalls param_latency
//   scalar   column rules + scalar-register readiness through the BU pipe
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dram/command.h"
#include "dram/config.h"
#include "dram/energy.h"
#include "pim/device.h"

namespace nttpim::sim {

struct EngineConfig {
  dram::DramTiming timing = dram::hbm2e_timing();
  dram::EnergyParams energy{};
  /// Model periodic refresh (tREFI/tRFC): the engine transparently closes
  /// the open row, stalls tRFC and restores it — like a real MC.
  bool enable_refresh = true;
  /// Record one TimelineEvent per command (for the Fig. 5/6-style
  /// timing-diagram renderer). Off by default: costs memory.
  bool record_timeline = false;
};

/// One scheduled command instance (for timing-diagram rendering).
struct TimelineEvent {
  std::size_t trace_index;  ///< index into the input trace (or SIZE_MAX
                            ///< for engine-inserted refresh operations)
  dram::CmdKind kind;
  std::uint16_t bank;
  std::uint64_t issue;  ///< bus cycle the command issued
  std::uint64_t end;    ///< cycle its effect completed (data/result ready)
};

struct RunStats {
  std::uint64_t cycles = 0;  ///< makespan of the trace
  double ns = 0;             ///< cycles converted at the configured clock
  std::uint64_t activations = 0;
  std::uint64_t precharges = 0;
  std::uint64_t column_reads = 0;
  std::uint64_t column_writes = 0;
  std::uint64_t compute_ops = 0;  ///< C1 + C2 + scalar BU commands
  std::uint64_t butterflies = 0;  ///< individual BU operations executed
  std::uint64_t param_loads = 0;
  std::uint64_t refreshes = 0;    ///< engine-inserted refresh cycles
  std::uint64_t commands = 0;
  std::uint64_t bus_busy_cycles = 0;  ///< command-bus occupancy, all buses
  /// Per-channel makespans: the last completion cycle of any command on
  /// that channel's banks. `cycles` is their max (channels run on
  /// independent buses); a single-channel device has exactly one entry.
  std::vector<std::uint64_t> channel_makespans;
  dram::EnergyBreakdown energy;
  std::vector<TimelineEvent> timeline;  ///< filled when record_timeline

  double us() const noexcept { return ns / 1e3; }

  /// Fraction of the makespan the command buses were occupied, summed over
  /// channels (a C-channel device can exceed 1.0 only if C > 1).
  double bus_utilization() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(bus_busy_cycles) /
                             static_cast<double>(cycles);
  }

  /// Column accesses per activation — the row-buffer locality the
  /// row-centric mapping exists to maximize.
  double column_accesses_per_activation() const noexcept {
    return activations == 0
               ? 0.0
               : static_cast<double>(column_reads + column_writes) /
                     static_cast<double>(activations);
  }
};

class Engine {
 public:
  explicit Engine(EngineConfig config) : config_(config) {}

  const EngineConfig& config() const noexcept { return config_; }

  /// Execute `trace` on `device` (functionally and temporally). Commands
  /// for different banks may interleave in the span; per-bank order is
  /// preserved. Returns the run statistics including the energy estimate.
  ///
  /// Uses the event-driven scheduler: per-bank bus-independent
  /// earliest-issue times are cached and invalidated only on commits to
  /// that bank, so BankTiming is queried O(trace) instead of
  /// O(trace x banks) times. Bit-identical to run_reference().
  RunStats run(pim::PimDevice& device,
               std::span<const dram::Command> trace) const;

  /// Reference scheduler: the original full-rescan loop that re-derives
  /// every bank's earliest issue cycle from live timing state on every
  /// step. Slower, retained as the golden model the event-driven fast path
  /// is property-tested against (identical RunStats and functional output).
  RunStats run_reference(pim::PimDevice& device,
                         std::span<const dram::Command> trace) const;

 private:
  EngineConfig config_;
};

}  // namespace nttpim::sim
