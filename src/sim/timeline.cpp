#include "sim/timeline.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace nttpim::sim {

namespace {

enum class Lane { kRow, kIo, kCu, kNone };

Lane lane_of(dram::CmdKind kind) {
  using dram::CmdKind;
  switch (kind) {
    case CmdKind::kAct:
    case CmdKind::kPre:
    case CmdKind::kRefresh:
      return Lane::kRow;
    case CmdKind::kCuRead:
    case CmdKind::kCuWrite:
    case CmdKind::kScalarRead:
    case CmdKind::kScalarWrite:
      return Lane::kIo;
    case CmdKind::kC1:
    case CmdKind::kC2:
    case CmdKind::kScalarBu:
    case CmdKind::kParam:
    case CmdKind::kBufZero:
      return Lane::kCu;
  }
  return Lane::kNone;
}

char glyph_of(dram::CmdKind kind) {
  using dram::CmdKind;
  switch (kind) {
    case CmdKind::kAct: return 'A';
    case CmdKind::kPre: return 'P';
    case CmdKind::kRefresh: return 'F';
    case CmdKind::kCuRead: return 'r';
    case CmdKind::kCuWrite: return 'w';
    case CmdKind::kScalarRead: return 'r';
    case CmdKind::kScalarWrite: return 'w';
    case CmdKind::kC1: return '1';
    case CmdKind::kC2: return '2';
    case CmdKind::kScalarBu: return 'b';
    case CmdKind::kParam: return 'q';
    case CmdKind::kBufZero: return 'z';
  }
  return '?';
}

}  // namespace

std::string render_timeline(const std::vector<TimelineEvent>& events,
                            const TimelineWindow& window) {
  NTTPIM_EXPECT(window.cycles_per_char >= 1);
  std::uint64_t to = window.to_cycle;
  if (to == 0) {
    for (const auto& e : events)
      if (e.bank == window.bank) to = std::max(to, e.end);
  }
  NTTPIM_EXPECT_MSG(to > window.from_cycle, "empty timeline window");

  const std::size_t width = static_cast<std::size_t>(
      (to - window.from_cycle + window.cycles_per_char - 1) /
      window.cycles_per_char);
  std::string lanes[3] = {std::string(width, '.'), std::string(width, '.'),
                          std::string(width, '.')};

  for (const auto& e : events) {
    if (e.bank != window.bank) continue;
    if (e.end <= window.from_cycle || e.issue >= to) continue;
    const Lane lane = lane_of(e.kind);
    if (lane == Lane::kNone) continue;
    const std::uint64_t begin = std::max(e.issue, window.from_cycle);
    const std::uint64_t finish = std::min(e.end, to);
    std::size_t c0 = static_cast<std::size_t>(
        (begin - window.from_cycle) / window.cycles_per_char);
    std::size_t c1 = static_cast<std::size_t>(
        (std::max(finish, begin + 1) - 1 - window.from_cycle) /
        window.cycles_per_char);
    c1 = std::min(c1, width - 1);
    auto& row = lanes[static_cast<int>(lane)];
    for (std::size_t c = c0; c <= c1; ++c) {
      row[c] = row[c] == '.' ? glyph_of(e.kind) : '#';  // '#' = overlap
    }
  }

  std::ostringstream os;
  os << "cycles " << window.from_cycle << ".." << to << " (1 char = "
     << window.cycles_per_char << " cycles; '#' marks overlapping events)\n";
  os << "  row: " << lanes[0] << '\n';
  os << "  i/o: " << lanes[1] << '\n';
  os << "  cu : " << lanes[2] << '\n';
  return os.str();
}

}  // namespace nttpim::sim
