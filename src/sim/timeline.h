// ASCII timing-diagram rendering (paper Figs. 5-6).
//
// Renders a recorded TimelineEvent stream as lanes:
//   row : ACT / PRE / REF commands (row-state changes)
//   i/o : column transfers (CU-read / CU-write / scalar)
//   cu  : compute (C1 / C2 / scalar BU) and PARAM loads
// One character per `cycles_per_char` cycles; events shorter than one cell
// still occupy one cell. Used by the timing_diagram example to reproduce
// the paper's pipelining illustrations from actual simulations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace nttpim::sim {

struct TimelineWindow {
  std::uint64_t from_cycle = 0;
  std::uint64_t to_cycle = 0;          ///< exclusive; 0 = auto (max end)
  unsigned cycles_per_char = 4;
  std::uint16_t bank = 0;
};

/// Render the events of one bank into a three-lane ASCII chart.
std::string render_timeline(const std::vector<TimelineEvent>& events,
                            const TimelineWindow& window);

}  // namespace nttpim::sim
