// Clang Thread Safety Analysis attribute macros.
//
// These wrap the capability-based lock annotations documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so the concurrency
// contracts of the serving stack (which mutex guards which member, which
// APIs require an externally held lock) are machine-checked at compile
// time instead of living only in header prose. Under a compiler without
// the attributes (gcc builds, MSVC) every macro expands to nothing, so the
// annotated code compiles identically everywhere; the clang CI job builds
// with -Wthread-safety -Werror and is the enforcement point.
//
// Naming follows the upstream attribute names with an NTTPIM_ prefix
// (the same shape as abseil's thread_annotations.h, which this layer is
// modeled on). Use them through the nttpim::sync wrappers (sync/mutex.h)
// rather than annotating std::mutex directly — the contract linter
// (tools/lint_contracts.py) rejects raw standard-library lock types
// outside src/sync/.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define NTTPIM_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define NTTPIM_HAS_ATTRIBUTE(x) 0
#endif

#if NTTPIM_HAS_ATTRIBUTE(capability)
#define NTTPIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NTTPIM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a capability (lockable) type; `x` names the
/// capability kind in diagnostics ("mutex").
#define NTTPIM_CAPABILITY(x) NTTPIM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define NTTPIM_SCOPED_CAPABILITY NTTPIM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define NTTPIM_GUARDED_BY(x) NTTPIM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define NTTPIM_PT_GUARDED_BY(x) NTTPIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define NTTPIM_ACQUIRED_BEFORE(...) \
  NTTPIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define NTTPIM_ACQUIRED_AFTER(...) \
  NTTPIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The caller must hold the listed capabilities (exclusively / shared).
/// The capability expression may name a member, a parameter of the
/// annotated function, or a member of a parameter — the latter is how
/// externally-locked classes (service/shard_queue.h) publish their
/// contract across the class boundary.
#define NTTPIM_REQUIRES(...) \
  NTTPIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NTTPIM_REQUIRES_SHARED(...) \
  NTTPIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the listed capabilities.
#define NTTPIM_ACQUIRE(...) \
  NTTPIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NTTPIM_ACQUIRE_SHARED(...) \
  NTTPIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define NTTPIM_RELEASE(...) \
  NTTPIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NTTPIM_RELEASE_SHARED(...) \
  NTTPIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function attempts the acquisition; the first argument is the
/// return value that means success.
#define NTTPIM_TRY_ACQUIRE(...) \
  NTTPIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (non-reentrancy).
#define NTTPIM_EXCLUDES(...) \
  NTTPIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (informs the analysis).
#define NTTPIM_ASSERT_CAPABILITY(x) \
  NTTPIM_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the named capability.
#define NTTPIM_RETURN_CAPABILITY(x) NTTPIM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the contract holds anyway.
#define NTTPIM_NO_THREAD_SAFETY_ANALYSIS \
  NTTPIM_THREAD_ANNOTATION(no_thread_safety_analysis)
