// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// This is the only place in the repository allowed to name the raw
// standard-library lock primitives (tools/lint_contracts.py enforces it).
// The wrappers add zero state and zero overhead over std::mutex /
// std::unique_lock / std::condition_variable; what they add is the Clang
// Thread Safety Analysis capability attributes, so every GUARDED_BY /
// REQUIRES contract written against a sync::Mutex is checked by the clang
// `-Wthread-safety -Werror` CI build.
//
// CondVar deliberately has no predicate-taking wait overload: TSA analyses
// a predicate lambda as a separate function, so a predicate touching
// GUARDED_BY members would produce false positives. Call sites spell the
// standard loop instead:
//
//   sync::MutexLock lk(mu_);
//   while (!ready_) cv_.wait(lk);
#pragma once

#include <condition_variable>
#include <mutex>

#include "sync/thread_annotations.h"

namespace nttpim::sync {

class CondVar;
class MutexLock;

/// A std::mutex carrying the TSA `capability` attribute. Prefer the RAII
/// MutexLock below; the manual lock()/unlock() surface exists for the rare
/// split-scope pattern and for the wrappers themselves.
class NTTPIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NTTPIM_ACQUIRE() { mu_.lock(); }
  void unlock() NTTPIM_RELEASE() { mu_.unlock(); }
  bool try_lock() NTTPIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a sync::Mutex (TSA `scoped_lockable`). Holds a
/// std::unique_lock underneath so CondVar can wait on it; supports manual
/// unlock()/lock() for split-scope sections (e.g. dropping the lock before
/// joining worker threads on a constructor failure path).
class NTTPIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NTTPIM_ACQUIRE(mu) : lk_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() NTTPIM_RELEASE() {}  // unique_lock releases if still held

  /// Releases early; the destructor then does nothing.
  void unlock() NTTPIM_RELEASE() { lk_.unlock(); }
  /// Re-acquires after an early unlock().
  void lock() NTTPIM_ACQUIRE() { lk_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable waiting on a MutexLock. wait() atomically releases
/// and re-acquires the lock; TSA models the capability as held across the
/// call, which matches the invariant the caller's loop relies on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lk_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.lk_, tp);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.lk_, d);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nttpim::sync
