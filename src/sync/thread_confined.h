// ThreadConfined<T>: checked wrapper for single-driver (thread-confined)
// state.
//
// Several hot structures in the stack are deliberately unlocked because
// exactly one thread ever touches them: a PIM worker's mapping plan cache,
// its wave capture log, and similar per-backend scratch. The prose
// contract used to be the only guard. This wrapper keeps the release-build
// cost at zero (the value is stored inline; get() is a plain reference in
// NDEBUG builds) while debug builds — including the ASan and TSan CI jobs,
// which compile with CMAKE_BUILD_TYPE=Debug — record the constructing
// thread and assert on every access that the caller is still that thread.
//
// Ownership handoff (construct on thread A, drive from thread B) must be
// externally synchronized; the new owner then calls rebind_owner() once
// before its first access.
#pragma once

#ifndef NDEBUG
#include <cassert>
#include <thread>
#endif

#include <utility>

namespace nttpim::sync {

template <typename T>
class ThreadConfined {
 public:
  template <typename... Args>
  explicit ThreadConfined(Args&&... args)
      : value_(std::forward<Args>(args)...) {}

  ThreadConfined(const ThreadConfined&) = delete;
  ThreadConfined& operator=(const ThreadConfined&) = delete;

  T& get() noexcept {
    assert_owner();
    return value_;
  }
  const T& get() const noexcept {
    assert_owner();
    return value_;
  }

  T* operator->() noexcept { return &get(); }
  const T* operator->() const noexcept { return &get(); }
  T& operator*() noexcept { return get(); }
  const T& operator*() const noexcept { return get(); }

  /// Adopts the calling thread as the new owner. The handoff itself must
  /// happen-before this call (e.g. via thread join or a lock).
  void rebind_owner() noexcept {
#ifndef NDEBUG
    owner_ = std::this_thread::get_id();
#endif
  }

 private:
  void assert_owner() const noexcept {
#ifndef NDEBUG
    assert(owner_ == std::this_thread::get_id() &&
           "ThreadConfined state accessed off its owner thread");
#endif
  }

#ifndef NDEBUG
  std::thread::id owner_ = std::this_thread::get_id();
#endif
  T value_;
};

}  // namespace nttpim::sync
