// Specialized reduction for the Goldilocks prime p = 2^64 - 2^32 + 1.
//
// The workhorse modulus of modern 64-bit NTT implementations: reduction
// needs only shifts and adds because 2^64 ≡ 2^32 - 1 and 2^96 ≡ -1 (mod p).
// Included to round out the host-side arithmetic library next to
// Montgomery/Barrett (the PIM datapath itself is 32-bit, per the paper).
#pragma once

#include <cstdint>

#include "ntt/modular.h"

namespace nttpim::ntt {

inline constexpr std::uint64_t kGoldilocksPrime =
    0xffffffff00000001ULL;  // 2^64 - 2^32 + 1

/// Reduce a 128-bit product modulo the Goldilocks prime.
///
/// Split x = lo + 2^64 * mid + 2^96 * hi (mid = low 32 bits of the upper
/// word, hi = high 32 bits). Using 2^64 ≡ 2^32 - 1 and 2^96 ≡ -1:
///   x ≡ lo + (2^32 - 1) * mid - hi (mod p).
constexpr std::uint64_t goldilocks_reduce(unsigned __int128 x) noexcept {
  const std::uint64_t lo = static_cast<std::uint64_t>(x);
  const std::uint64_t upper = static_cast<std::uint64_t>(x >> 64);
  const std::uint64_t mid = upper & 0xffffffffULL;
  const std::uint64_t hi = upper >> 32;

  // t = lo - hi (mod p); borrow handled by adding p.
  std::uint64_t t = lo - hi;
  if (lo < hi) t += kGoldilocksPrime;

  // u = (2^32 - 1) * mid never overflows 64 bits (mid < 2^32).
  const std::uint64_t u = (mid << 32) - mid;

  // result = t + u (mod p); at most one correction step is needed after
  // handling the single possible carry.
  std::uint64_t result = t + u;
  if (result < t) result += 0xffffffffULL;  // carry: add 2^64 mod p
  if (result >= kGoldilocksPrime) result -= kGoldilocksPrime;
  return result;
}

/// Multiply modulo the Goldilocks prime via the specialized reduction.
constexpr std::uint64_t goldilocks_mul(std::uint64_t a,
                                       std::uint64_t b) noexcept {
  return goldilocks_reduce(static_cast<unsigned __int128>(a) * b);
}

constexpr std::uint64_t goldilocks_add(std::uint64_t a,
                                       std::uint64_t b) noexcept {
  return add_mod(a, b, kGoldilocksPrime);
}

constexpr std::uint64_t goldilocks_sub(std::uint64_t a,
                                       std::uint64_t b) noexcept {
  return sub_mod(a, b, kGoldilocksPrime);
}

}  // namespace nttpim::ntt
