// Reference NTT implementations (golden models and CPU baselines).
//
// Conventions. All functions operate on vectors of residues in [0, q).
//  - "bitrev -> natural": expects input permuted by bit reversal, produces
//    output in natural index order (Cooley–Tukey / DIT dataflow, the one the
//    PIM mapping uses; the paper assumes host software performs the bit
//    reversal).
//  - "natural -> bitrev": Gentleman–Sande / DIF dataflow.
//  - forward_ntt / inverse_ntt are the natural->natural conveniences.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ntt/params.h"

namespace nttpim::ntt {

/// O(N^2) DFT over Z_q: X[k] = sum_i a[i] * omega^{ik}. Golden model.
std::vector<std::uint32_t> naive_dft(std::span<const std::uint32_t> a,
                                     const NttParams& params);

/// O(N^2) inverse DFT: a[i] = n^{-1} * sum_k X[k] * omega^{-ik}.
std::vector<std::uint32_t> naive_idft(std::span<const std::uint32_t> x,
                                      const NttParams& params);

/// In-place iterative Cooley–Tukey (DIT): bit-reversed input -> natural
/// output. Butterfly: (a, b) -> (a + w*b, a - w*b); stage s in [1, log N]
/// uses twiddles w_s^j, w_s = omega^(N / 2^s), j = in-group offset.
void ntt_dit_bitrev_to_natural(std::span<std::uint32_t> a,
                               const NttParams& params);

/// In-place DIT with inverse twiddles (no final scaling): bit-reversed input
/// -> natural output of the *unscaled* inverse transform.
void intt_dit_bitrev_to_natural(std::span<std::uint32_t> a,
                                const NttParams& params);

/// In-place iterative Gentleman–Sande (DIF): natural input -> bit-reversed
/// output. Butterfly: (a, b) -> (a + b, (a - b) * w).
void ntt_dif_natural_to_bitrev(std::span<std::uint32_t> a,
                               const NttParams& params);

/// Recursive Cooley–Tukey (even/odd split), natural -> natural. Slower, used
/// to cross-check and to mirror the paper's recursive-decomposition argument
/// (Sec. III.A).
std::vector<std::uint32_t> ntt_recursive(std::span<const std::uint32_t> a,
                                         const NttParams& params);

/// Natural -> natural forward NTT (bit-reverse + DIT).
void forward_ntt(std::vector<std::uint32_t>& a, const NttParams& params);

/// Natural -> natural forward NTT over an explicit primitive |a|-th root —
/// used by composed algorithms (e.g. the four-step NTT) whose
/// sub-transforms must share the parent transform's root rather than a
/// freshly derived one.
void forward_ntt_with_root(std::vector<std::uint32_t>& a, std::uint32_t q,
                           std::uint32_t omega);

/// Natural -> natural inverse NTT (bit-reverse + DIT(omega^-1) + scale 1/N).
void inverse_ntt(std::vector<std::uint32_t>& a, const NttParams& params);

/// Deliberately plain NTT used as the "x86 CPU software" baseline: 64-bit
/// `%` reduction, twiddles by repeated multiplication, no precomputed tables.
/// This approximates the unoptimized software the paper compares against.
void forward_ntt_plain_mod(std::vector<std::uint32_t>& a, std::uint32_t q,
                           std::uint32_t omega);

/// Optimized CPU NTT: Montgomery arithmetic with precomputed tables (what a
/// performance-conscious host implementation looks like).
void forward_ntt_montgomery(std::vector<std::uint32_t>& a,
                            const NttParams& params);

}  // namespace nttpim::ntt
