#include "ntt/pease.h"

#include "common/bitutil.h"
#include "common/check.h"
#include "ntt/modular.h"

namespace nttpim::ntt {

std::vector<std::uint32_t> ntt_pease_natural_to_bitrev(
    std::span<const std::uint32_t> a, const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n());
  const std::size_t n = params.n();
  const std::uint64_t q = params.q();
  const unsigned stages = params.log2n();

  std::vector<std::uint32_t> cur(a.begin(), a.end());
  std::vector<std::uint32_t> nxt(n);
  // idx[slot] = the standard-layout index whose value currently sits in
  // `slot`. Tracking it makes the constant-geometry twiddle selection
  // transparently correct: each constant-geometry pair (j, j + n/2) holds a
  // standard DIF pair (i, i + h), and we look its twiddle up directly.
  std::vector<std::uint32_t> idx(n);
  std::vector<std::uint32_t> idx_nxt(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint32_t>(i);

  std::size_t h = n / 2;  // span of the standard DIF stage being performed
  for (unsigned s = 0; s < stages; ++s, h >>= 1) {
    const std::uint64_t step = params.omega_pow(n / (2 * h));
    for (std::size_t j = 0; j < n / 2; ++j) {
      const std::uint32_t i = idx[j];
      NTTPIM_CHECK_MSG(idx[j + n / 2] == i + h,
                       "constant-geometry pairing invariant broken");
      const std::uint64_t u = cur[j];
      const std::uint64_t v = cur[j + n / 2];
      const std::uint64_t w = pow_mod(step, i % (2 * h), q);
      nxt[2 * j] = static_cast<std::uint32_t>(add_mod(u, v, q));
      nxt[2 * j + 1] =
          static_cast<std::uint32_t>(mul_mod(sub_mod(u, v, q), w, q));
      idx_nxt[2 * j] = i;
      idx_nxt[2 * j + 1] = i + static_cast<std::uint32_t>(h);
    }
    cur.swap(nxt);
    idx.swap(idx_nxt);
  }

  // The interleaving performed by the stages lands the results exactly in
  // the bit-reversed positions of the standard DIF output; undo the tracking
  // permutation so the function's contract matches ntt_dif_natural_to_bitrev.
  std::vector<std::uint32_t> out(n);
  for (std::size_t slot = 0; slot < n; ++slot) out[idx[slot]] = cur[slot];
  return out;
}

unsigned pease_shuffle_passes(const NttParams& params) {
  return params.log2n();
}

}  // namespace nttpim::ntt
