#include "ntt/poly.h"

#include "common/check.h"
#include "ntt/modular.h"
#include "ntt/negacyclic.h"
#include "ntt/reference.h"

namespace nttpim::ntt {

std::vector<std::uint32_t> cyclic_convolution_schoolbook(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
    std::uint32_t q) {
  NTTPIM_EXPECT(a.size() == b.size());
  const std::size_t n = a.size();
  std::vector<std::uint32_t> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t k = (i + j) % n;
      c[k] = static_cast<std::uint32_t>(
          add_mod(c[k], mul_mod(a[i], b[j], q), q));
    }
  }
  return c;
}

std::vector<std::uint32_t> negacyclic_convolution_schoolbook(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
    std::uint32_t q) {
  NTTPIM_EXPECT(a.size() == b.size());
  const std::size_t n = a.size();
  std::vector<std::uint32_t> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t prod = mul_mod(a[i], b[j], q);
      const std::size_t k = (i + j) % n;
      if (i + j < n) {
        c[k] = static_cast<std::uint32_t>(add_mod(c[k], prod, q));
      } else {
        // X^N = -1 wraps with a sign flip.
        c[k] = static_cast<std::uint32_t>(sub_mod(c[k], prod, q));
      }
    }
  }
  return c;
}

std::vector<std::uint32_t> pointwise_mul(std::span<const std::uint32_t> a,
                                         std::span<const std::uint32_t> b,
                                         std::uint32_t q) {
  NTTPIM_EXPECT(a.size() == b.size());
  std::vector<std::uint32_t> c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    c[i] = static_cast<std::uint32_t>(mul_mod(a[i], b[i], q));
  return c;
}

std::vector<std::uint32_t> cyclic_convolution_ntt(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
    const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n() && b.size() == params.n());
  std::vector<std::uint32_t> fa(a.begin(), a.end());
  std::vector<std::uint32_t> fb(b.begin(), b.end());
  forward_ntt(fa, params);
  forward_ntt(fb, params);
  auto fc = pointwise_mul(fa, fb, params.q());
  inverse_ntt(fc, params);
  return fc;
}

std::vector<std::uint32_t> negacyclic_convolution_ntt(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
    const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n() && b.size() == params.n());
  std::vector<std::uint32_t> fa(a.begin(), a.end());
  std::vector<std::uint32_t> fb(b.begin(), b.end());
  forward_negacyclic_ntt(fa, params);
  forward_negacyclic_ntt(fb, params);
  auto fc = pointwise_mul(fa, fb, params.q());
  inverse_negacyclic_ntt(fc, params);
  return fc;
}

}  // namespace nttpim::ntt
