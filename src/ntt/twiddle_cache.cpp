#include "ntt/twiddle_cache.h"

#include <map>
#include <tuple>

#include "common/bitutil.h"
#include "common/check.h"
#include "ntt/modular.h"
#include "sync/mutex.h"

namespace nttpim::ntt {

std::shared_ptr<const StageSteps> stage_steps(std::size_t n, std::uint64_t q,
                                              std::uint64_t base) {
  NTTPIM_EXPECT(is_pow2(n) && q > 1);
  using Key = std::tuple<std::size_t, std::uint64_t, std::uint64_t>;
  // Function-local statics: the capability cannot be named in a GUARDED_BY
  // (no member to annotate), so the lock scope below is the whole contract.
  static sync::Mutex mutex;
  static std::map<Key, std::shared_ptr<const StageSteps>> cache;

  const Key key{n, q, base};
  const sync::MutexLock lock(mutex);
  if (const auto it = cache.find(key); it != cache.end()) return it->second;

  const unsigned log2n = exact_log2(n);
  auto steps = std::make_shared<StageSteps>(log2n);
  if (log2n > 0) {
    // Last stage uses base^1; each earlier stage squares the next:
    // base^(n >> s) = (base^(n >> (s + 1)))^2.
    (*steps)[log2n - 1] = base % q;
    for (unsigned s = log2n - 1; s >= 1; --s)
      (*steps)[s - 1] = mul_mod((*steps)[s], (*steps)[s], q);
  }
  cache.emplace(key, steps);
  return steps;
}

}  // namespace nttpim::ntt
