// Radix-4 NTT (recursive), natural -> natural.
//
// Radix-4 halves the stage count relative to radix-2 at the cost of a more
// complex butterfly — a common FPGA/ASIC design point (cf. the vector-radix
// discussion in paper Sec. II.B). Requires N to be a power of four; kernel
// benchmarks compare it against the radix-2 variants.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ntt/params.h"

namespace nttpim::ntt {

/// True iff n is a power of four (the radix-4 applicability condition).
bool is_pow4(std::size_t n);

/// Recursive radix-4 NTT; requires is_pow4(params.n()).
std::vector<std::uint32_t> ntt_radix4(std::span<const std::uint32_t> a,
                                      const NttParams& params);

}  // namespace nttpim::ntt
