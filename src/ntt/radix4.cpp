#include "ntt/radix4.h"

#include "common/bitutil.h"
#include "common/check.h"
#include "ntt/modular.h"

namespace nttpim::ntt {

bool is_pow4(std::size_t n) {
  return is_pow2(n) && (exact_log2(n) % 2 == 0);
}

namespace {

// X[k] over the strided subsequence (offset, stride), length n; omega is a
// primitive n-th root. Splits into four interleaved quarter transforms:
//   X[k + j*n/4] = sum_{r=0..3} i^{-?}... concretely, with E_r the DFT of
//   the residue-r subsequence and w = omega^k:
//   X[k + j*n/4] = sum_r omega4^{jr} * w^r * E_r[k],  omega4 = omega^{n/4}.
std::vector<std::uint32_t> radix4_rec(std::span<const std::uint32_t> data,
                                      std::size_t offset, std::size_t stride,
                                      std::size_t n, std::uint64_t omega,
                                      std::uint64_t q) {
  if (n == 1) return {data[offset]};
  if (n == 2) {
    // Odd power of two cannot appear for power-of-four N, but n==2 guards
    // recursion misuse.
    const std::uint64_t a = data[offset];
    const std::uint64_t b = data[offset + stride];
    return {static_cast<std::uint32_t>(add_mod(a, b, q)),
            static_cast<std::uint32_t>(sub_mod(a, b, q))};
  }

  const std::size_t quarter = n / 4;
  const std::uint64_t omega4 = pow_mod(omega, 4, q);
  std::vector<std::uint32_t> sub[4];
  for (std::size_t r = 0; r < 4; ++r)
    sub[r] = radix4_rec(data, offset + r * stride, stride * 4, quarter,
                        omega4, q);

  const std::uint64_t j1 = pow_mod(omega, n / 4, q);  // 4th root of unity
  std::vector<std::uint32_t> out(n);
  std::uint64_t w = 1;  // omega^k
  for (std::size_t k = 0; k < quarter; ++k) {
    // t_r = omega^{kr} * E_r[k]
    const std::uint64_t t0 = sub[0][k];
    const std::uint64_t t1 = mul_mod(sub[1][k], w, q);
    const std::uint64_t t2 = mul_mod(sub[2][k], mul_mod(w, w, q), q);
    const std::uint64_t t3 =
        mul_mod(sub[3][k], mul_mod(mul_mod(w, w, q), w, q), q);

    // Four outputs with the 4-point DFT matrix [j1^{jr}].
    std::uint64_t j_pow = 1;  // j1^j
    for (std::size_t j = 0; j < 4; ++j) {
      const std::uint64_t j2 = mul_mod(j_pow, j_pow, q);
      const std::uint64_t j3 = mul_mod(j2, j_pow, q);
      std::uint64_t acc = t0;
      acc = add_mod(acc, mul_mod(t1, j_pow, q), q);
      acc = add_mod(acc, mul_mod(t2, j2, q), q);
      acc = add_mod(acc, mul_mod(t3, j3, q), q);
      out[k + j * quarter] = static_cast<std::uint32_t>(acc);
      j_pow = mul_mod(j_pow, j1, q);
    }
    w = mul_mod(w, omega, q);
  }
  return out;
}

}  // namespace

std::vector<std::uint32_t> ntt_radix4(std::span<const std::uint32_t> a,
                                      const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n());
  NTTPIM_EXPECT_MSG(is_pow4(params.n()),
                    "radix-4 requires N to be a power of four");
  return radix4_rec(a, 0, 1, params.n(), params.omega(), params.q());
}

}  // namespace nttpim::ntt
