// Barrett reduction for 32-bit moduli — used by the functional hot path
// (the TFG and the CU butterfly datapath) and evaluated against Montgomery
// and plain `%` in the kernel ablation benchmarks (bench_ntt_kernels).
#pragma once

#include <cstdint>

#include "common/check.h"

namespace nttpim::ntt {

/// Barrett context for a modulus 1 < q < 2^31.
///
/// Precomputes mu = floor(2^64 / q); reduce(x) then needs only one 128-bit
/// multiply-high and at most two conditional subtractions.
class Barrett32 {
 public:
  explicit Barrett32(std::uint32_t q) : q_(q) {
    NTTPIM_EXPECT_MSG(q > 1 && q < (1u << 31), "modulus must be in (1, 2^31)");
    mu_ = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(1) << 64) / q);
  }

  std::uint32_t modulus() const noexcept { return q_; }

  /// x mod q, exact for the full 64-bit range of x: mu underestimates
  /// 2^64/q by less than 1, so the remainder after subtracting the
  /// approximate quotient is below 2q and one conditional subtraction
  /// always lands in [0, q) (the second is belt-and-braces). In particular
  /// products of arbitrary 32-bit operands reduce correctly.
  std::uint32_t reduce(std::uint64_t x) const noexcept {
    const std::uint64_t approx_quotient = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * mu_) >> 64);
    std::uint64_t r = x - approx_quotient * q_;
    if (r >= q_) r -= q_;
    if (r >= q_) r -= q_;
    return static_cast<std::uint32_t>(r);
  }

  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const noexcept {
    return reduce(static_cast<std::uint64_t>(a) * b);
  }

 private:
  std::uint32_t q_;
  std::uint64_t mu_;
};

}  // namespace nttpim::ntt
