// Barrett reduction for 32-bit moduli — the alternative reduction evaluated
// in the kernel ablation benchmarks (bench_ntt_kernels).
#pragma once

#include <cstdint>

#include "common/check.h"

namespace nttpim::ntt {

/// Barrett context for a modulus 1 < q < 2^31.
///
/// Precomputes mu = floor(2^64 / q); reduce(x) then needs only one 128-bit
/// multiply-high and at most two conditional subtractions.
class Barrett32 {
 public:
  explicit Barrett32(std::uint32_t q) : q_(q) {
    NTTPIM_EXPECT_MSG(q > 1 && q < (1u << 31), "modulus must be in (1, 2^31)");
    mu_ = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(1) << 64) / q);
  }

  std::uint32_t modulus() const noexcept { return q_; }

  /// x mod q for any 64-bit x < 2^62 (covers products of residues).
  std::uint32_t reduce(std::uint64_t x) const noexcept {
    const std::uint64_t approx_quotient = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * mu_) >> 64);
    std::uint64_t r = x - approx_quotient * q_;
    if (r >= q_) r -= q_;
    if (r >= q_) r -= q_;
    return static_cast<std::uint32_t>(r);
  }

  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const noexcept {
    return reduce(static_cast<std::uint64_t>(a) * b);
  }

 private:
  std::uint32_t q_;
  std::uint64_t mu_;
};

}  // namespace nttpim::ntt
