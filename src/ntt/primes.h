// NTT parameter search: primality testing, NTT-friendly prime generation and
// primitive roots of unity.
//
// The paper stresses that NTT-PIM "can support arbitrary polynomial length
// and modulo values"; this module supplies valid (q, omega, psi) triples for
// any power-of-two N, which the host passes to the PIM as parameters.
#pragma once

#include <cstdint>
#include <vector>

namespace nttpim::ntt {

/// Deterministic Miller–Rabin, exact for all n < 2^64.
bool is_prime(std::uint64_t n);

/// Smallest prime q > floor with q ≡ 1 (mod modulus_step).
/// Throws std::runtime_error if none exists below 2^62.
std::uint64_t next_prime_congruent_one(std::uint64_t floor,
                                       std::uint64_t modulus_step);

/// Find an NTT-friendly prime q ≡ 1 (mod 2N) with approximately `bits` bits
/// (the largest such prime below 2^bits). N must be a power of two.
std::uint32_t find_ntt_prime(std::size_t n, unsigned bits = 31);

/// Find several distinct NTT-friendly primes (for RNS moduli chains).
std::vector<std::uint32_t> find_ntt_primes(std::size_t n, unsigned bits,
                                           std::size_t count);

/// Distinct prime factors of n (trial division + Pollard rho; n < 2^62).
std::vector<std::uint64_t> prime_factors(std::uint64_t n);

/// Smallest generator of Z_q^* for prime q.
std::uint64_t find_generator(std::uint64_t q);

/// A primitive n-th root of unity mod prime q; requires n | q-1.
std::uint64_t primitive_root_of_unity(std::uint64_t q, std::uint64_t n);

/// True iff w has exact multiplicative order n mod q.
bool has_order(std::uint64_t w, std::uint64_t n, std::uint64_t q);

}  // namespace nttpim::ntt
