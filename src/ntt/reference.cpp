#include "ntt/reference.h"

#include "common/bitutil.h"
#include "common/check.h"
#include "ntt/modular.h"
#include "ntt/montgomery.h"
#include "ntt/twiddle_cache.h"

namespace nttpim::ntt {

std::vector<std::uint32_t> naive_dft(std::span<const std::uint32_t> a,
                                     const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n());
  const std::uint64_t q = params.q();
  const std::size_t n = params.n();
  std::vector<std::uint32_t> x(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::uint64_t acc = 0;
    const std::uint64_t wk = params.omega_pow(k);
    std::uint64_t w = 1;  // omega^{ik}, stepped by omega^k per i
    for (std::size_t i = 0; i < n; ++i) {
      acc = add_mod(acc, mul_mod(a[i], w, q), q);
      w = mul_mod(w, wk, q);
    }
    x[k] = static_cast<std::uint32_t>(acc);
  }
  return x;
}

std::vector<std::uint32_t> naive_idft(std::span<const std::uint32_t> x,
                                      const NttParams& params) {
  NTTPIM_EXPECT(x.size() == params.n());
  const std::uint64_t q = params.q();
  const std::size_t n = params.n();
  std::vector<std::uint32_t> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t acc = 0;
    const std::uint64_t wi = pow_mod(params.omega_inv(), i, q);
    std::uint64_t w = 1;
    for (std::size_t k = 0; k < n; ++k) {
      acc = add_mod(acc, mul_mod(x[k], w, q), q);
      w = mul_mod(w, wi, q);
    }
    a[i] = static_cast<std::uint32_t>(mul_mod(acc, params.n_inv(), q));
  }
  return a;
}

namespace {

// Shared DIT kernel over an explicit modulus and twiddle base (omega for
// forward, omega^-1 for unscaled inverse).
void dit_kernel_raw(std::span<std::uint32_t> a, std::uint64_t q,
                    std::uint64_t twiddle_base) {
  const std::size_t n = a.size();
  const auto steps = stage_steps(n, q, twiddle_base % q);
  unsigned s = 1;
  for (std::size_t m = 1; m < n; m <<= 1, ++s) {
    // Stage with span m: butterfly pairs (k+j, k+j+m); twiddle step
    // w_s = base^(n/(2m)), twiddles w_s^j reset at each group.
    const std::uint64_t step = (*steps)[s - 1];
    for (std::size_t k = 0; k < n; k += 2 * m) {
      std::uint64_t w = 1;
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint64_t u = a[k + j];
        const std::uint64_t t = mul_mod(a[k + j + m], w, q);
        a[k + j] = static_cast<std::uint32_t>(add_mod(u, t, q));
        a[k + j + m] = static_cast<std::uint32_t>(sub_mod(u, t, q));
        w = mul_mod(w, step, q);
      }
    }
  }
}

void dit_kernel(std::span<std::uint32_t> a, const NttParams& params,
                std::uint32_t twiddle_base) {
  NTTPIM_EXPECT(a.size() == params.n());
  dit_kernel_raw(a, params.q(), twiddle_base);
}

}  // namespace

void ntt_dit_bitrev_to_natural(std::span<std::uint32_t> a,
                               const NttParams& params) {
  dit_kernel(a, params, params.omega());
}

void intt_dit_bitrev_to_natural(std::span<std::uint32_t> a,
                                const NttParams& params) {
  dit_kernel(a, params, params.omega_inv());
}

void forward_ntt_with_root(std::vector<std::uint32_t>& a, std::uint32_t q,
                           std::uint32_t omega) {
  NTTPIM_EXPECT(is_pow2(a.size()));
  NTTPIM_EXPECT_MSG(pow_mod(omega, a.size(), q) == 1,
                    "omega must be an |a|-th root of unity mod q");
  bit_reverse_permute(a);
  dit_kernel_raw(a, q, omega);
}

void ntt_dif_natural_to_bitrev(std::span<std::uint32_t> a,
                               const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n());
  const std::uint64_t q = params.q();
  const std::size_t n = params.n();
  // Same stage-step exponents as the DIT kernel (n/(2m) = n >> s with
  // 2^s = 2m), served from the shared per-(n, q, base) cache.
  const auto steps = stage_steps(n, q, params.omega());
  for (std::size_t m = n / 2; m >= 1; m >>= 1) {
    const std::uint64_t step = (*steps)[exact_log2(2 * m) - 1];
    for (std::size_t k = 0; k < n; k += 2 * m) {
      std::uint64_t w = 1;
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint64_t u = a[k + j];
        const std::uint64_t v = a[k + j + m];
        a[k + j] = static_cast<std::uint32_t>(add_mod(u, v, q));
        a[k + j + m] =
            static_cast<std::uint32_t>(mul_mod(sub_mod(u, v, q), w, q));
        w = mul_mod(w, step, q);
      }
    }
  }
}

std::vector<std::uint32_t> ntt_recursive(std::span<const std::uint32_t> a,
                                         const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n());
  const std::uint64_t q = params.q();

  // Recursive even/odd (DIT) split over an explicit stride view.
  struct Impl {
    std::uint64_t q;
    std::span<const std::uint32_t> data;

    std::vector<std::uint32_t> run(std::size_t offset, std::size_t stride,
                                   std::size_t n, std::uint64_t omega) const {
      if (n == 1) return {data[offset]};
      const std::uint64_t omega2 = mul_mod(omega, omega, q);
      const auto even = run(offset, stride * 2, n / 2, omega2);
      const auto odd = run(offset + stride, stride * 2, n / 2, omega2);
      std::vector<std::uint32_t> out(n);
      std::uint64_t w = 1;
      for (std::size_t k = 0; k < n / 2; ++k) {
        const std::uint64_t t = mul_mod(odd[k], w, q);
        out[k] = static_cast<std::uint32_t>(add_mod(even[k], t, q));
        out[k + n / 2] = static_cast<std::uint32_t>(sub_mod(even[k], t, q));
        w = mul_mod(w, omega, q);
      }
      return out;
    }
  };

  return Impl{q, a}.run(0, 1, params.n(), params.omega());
}

void forward_ntt(std::vector<std::uint32_t>& a, const NttParams& params) {
  bit_reverse_permute(a);
  ntt_dit_bitrev_to_natural(a, params);
}

void inverse_ntt(std::vector<std::uint32_t>& a, const NttParams& params) {
  bit_reverse_permute(a);
  intt_dit_bitrev_to_natural(a, params);
  const std::uint64_t q = params.q();
  for (auto& x : a)
    x = static_cast<std::uint32_t>(mul_mod(x, params.n_inv(), q));
}

void forward_ntt_plain_mod(std::vector<std::uint32_t>& a, std::uint32_t q,
                           std::uint32_t omega) {
  NTTPIM_EXPECT(is_pow2(a.size()));
  bit_reverse_permute(a);
  const std::size_t n = a.size();
  for (std::size_t m = 1; m < n; m <<= 1) {
    // Twiddle step computed on the fly by repeated squaring-free powmod —
    // deliberately unoptimized, mirroring plain software.
    std::uint64_t step = omega;
    for (std::size_t h = 2 * m; h < n; h <<= 1) step = step * step % q;
    for (std::size_t k = 0; k < n; k += 2 * m) {
      std::uint64_t w = 1;
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint64_t u = a[k + j];
        const std::uint64_t t = a[k + j + m] * w % q;
        a[k + j] = static_cast<std::uint32_t>((u + t) % q);
        a[k + j + m] = static_cast<std::uint32_t>((u + q - t) % q);
        w = w * step % q;
      }
    }
  }
}

void forward_ntt_montgomery(std::vector<std::uint32_t>& a,
                            const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n());
  const Montgomery32 mont(params.q());
  const std::size_t n = params.n();

  // Twiddle table in Montgomery form, ordered for sequential stage access.
  const auto& tw = params.twiddles();
  std::vector<std::uint32_t> mtw(tw.size());
  for (std::size_t i = 0; i < tw.size(); ++i) mtw[i] = mont.to_mont(tw[i]);

  bit_reverse_permute(a);
  for (auto& x : a) x = mont.to_mont(x);

  for (std::size_t m = 1; m < n; m <<= 1) {
    const std::size_t exponent_step = n / (2 * m);
    for (std::size_t k = 0; k < n; k += 2 * m) {
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint32_t w = mtw[j * exponent_step];
        const std::uint32_t u = a[k + j];
        const std::uint32_t t = mont.mul(a[k + j + m], w);
        a[k + j] = mont.add(u, t);
        a[k + j + m] = mont.sub(u, t);
      }
    }
  }
  for (auto& x : a) x = mont.from_mont(x);
}

}  // namespace nttpim::ntt
