#include "ntt/negacyclic.h"

#include "common/check.h"
#include "ntt/modular.h"
#include "ntt/reference.h"

namespace nttpim::ntt {

void geometric_scale(std::vector<std::uint32_t>& a, std::uint32_t base,
                     std::uint32_t scale0, std::uint32_t q) {
  std::uint64_t factor = scale0 % q;
  for (auto& x : a) {
    x = static_cast<std::uint32_t>(mul_mod(x, factor, q));
    factor = mul_mod(factor, base, q);
  }
}

void forward_negacyclic_ntt(std::vector<std::uint32_t>& a,
                            const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n());
  geometric_scale(a, params.psi(), 1, params.q());
  forward_ntt(a, params);
}

void inverse_negacyclic_ntt(std::vector<std::uint32_t>& a,
                            const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n());
  inverse_ntt(a, params);
  geometric_scale(a, params.psi_inv(), 1, params.q());
}

}  // namespace nttpim::ntt
