// Core modular arithmetic over Z_q.
//
// All NTT coefficients are 32-bit words (the paper's bitwidth); intermediate
// products use 64-bit (or 128-bit for 64-bit moduli in parameter search).
// Functions here are the straightforward, obviously-correct forms; the
// performance-tuned reductions live in montgomery.h / barrett.h and are
// cross-checked against these in the tests.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace nttpim::ntt {

/// (a + b) mod q for a, b in [0, q).
constexpr std::uint64_t add_mod(std::uint64_t a, std::uint64_t b,
                                std::uint64_t q) noexcept {
  const std::uint64_t s = a + b;
  return s >= q ? s - q : s;
}

/// (a - b) mod q for a, b in [0, q).
constexpr std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b,
                                std::uint64_t q) noexcept {
  return a >= b ? a - b : a + q - b;
}

/// (a * b) mod q via 128-bit intermediate; valid for q < 2^63.
constexpr std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                std::uint64_t q) noexcept {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % q);
}

/// a^e mod q by square-and-multiply.
constexpr std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e,
                                std::uint64_t q) noexcept {
  std::uint64_t base = a % q;
  std::uint64_t result = 1 % q;
  while (e != 0) {
    if (e & 1) result = mul_mod(result, base, q);
    base = mul_mod(base, base, q);
    e >>= 1;
  }
  return result;
}

/// Multiplicative inverse mod prime q (Fermat); requires gcd(a, q) = 1.
inline std::uint64_t inv_mod(std::uint64_t a, std::uint64_t q) {
  NTTPIM_EXPECT_MSG(a % q != 0, "inverse of 0 does not exist");
  return pow_mod(a, q - 2, q);
}

/// Negation: (-a) mod q.
constexpr std::uint64_t neg_mod(std::uint64_t a, std::uint64_t q) noexcept {
  return a == 0 ? 0 : q - a;
}

}  // namespace nttpim::ntt
