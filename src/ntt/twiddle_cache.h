// Process-wide cache of per-(n, q, base) DIT/DIF stage twiddle steps.
//
// The iterative reference kernels need one twiddle step per stage:
// step(s) = base^(n >> s) for stage s in [1, log2 n]. Deriving each with
// pow_mod costs O(log^2 n) modular multiplies per transform, which the
// CPU backend used to pay on *every* call — FHE workloads invoke the same
// (n, q) transform dozens of times per homomorphic operation. The table is
// built once per key with log2 n squarings (step(s) = step(s+1)^2) and then
// shared; entries are immutable, so callers may hold them indefinitely.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace nttpim::ntt {

/// steps[s - 1] = base^(n >> s) mod q for stage s in [1, log2 n].
using StageSteps = std::vector<std::uint64_t>;

/// Cached stage-step table for a size-n transform with twiddle base `base`
/// (omega for forward DIT/DIF, omega^{-1} for the unscaled inverse) modulo
/// q. Thread-safe; requires n a power of two >= 1 and base < q.
std::shared_ptr<const StageSteps> stage_steps(std::size_t n, std::uint64_t q,
                                              std::uint64_t base);

}  // namespace nttpim::ntt
