// Software model of the on-the-fly twiddle factor generator (TFG).
//
// The hardware CU keeps a current-twiddle register and a step register and
// produces one twiddle per butterfly via a single modular multiply
// (omega <- omega * step), mirroring the scheme of Aysu et al. [21] that the
// paper adopts. The memory controller loads (omega0, step) via PARAM
// commands; C2 commands carry a 1-bit reset that reloads omega0.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "ntt/barrett.h"

namespace nttpim::ntt {

class TwiddleGenerator {
 public:
  /// Requires q in (1, 2^31) — the BU datapath's modulus range.
  explicit TwiddleGenerator(std::uint32_t q) : q_(q), barrett_(q) {
    NTTPIM_EXPECT(q > 1);
  }

  /// PARAM: load the sequence start value (does not reset the current value).
  void set_omega0(std::uint32_t omega0) noexcept { omega0_ = omega0 % q_; }
  /// PARAM: load the per-butterfly step.
  void set_step(std::uint32_t step) noexcept { step_ = step % q_; }
  /// TFG reset bit on a compute command: current <- omega0.
  void reset() noexcept { current_ = omega0_; }

  std::uint32_t omega0() const noexcept { return omega0_; }
  std::uint32_t step() const noexcept { return step_; }
  std::uint32_t current() const noexcept { return current_; }

  /// Produce the twiddle for the next butterfly and advance the sequence.
  /// One Barrett multiply per butterfly — the single modular multiply the
  /// hardware TFG performs, without a 128-bit division on the host.
  std::uint32_t next() noexcept {
    const std::uint32_t value = current_;
    current_ = barrett_.mul(current_, step_);
    return value;
  }

 private:
  std::uint32_t q_;
  Barrett32 barrett_;
  std::uint32_t omega0_ = 1;
  std::uint32_t step_ = 1;
  std::uint32_t current_ = 1;
};

}  // namespace nttpim::ntt
