// Four-step (Bailey) NTT: natural -> natural.
//
// Views the length-N input as an n1 x n2 matrix and computes
//   column NTTs (size n1)  ->  twiddle scaling by omega^{ij}  ->
//   row NTTs (size n2)     ->  transpose.
// The blocked structure is the classical locality transformation for deep
// memory hierarchies — the software analogue of what NTT-PIM's row-block
// mapping achieves inside DRAM; included as a CPU baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ntt/params.h"

namespace nttpim::ntt {

/// Four-step NTT with an (automatically chosen) near-square factorization.
std::vector<std::uint32_t> ntt_four_step(std::span<const std::uint32_t> a,
                                         const NttParams& params);

}  // namespace nttpim::ntt
