// Stockham self-sorting NTT.
//
// Discussed in the paper (Sec. II.B) as the self-sorting alternative: no bit
// reversal is needed, but every stage streams the whole array through a
// double buffer — log N full-array passes of data movement. Implemented as a
// baseline for the kernel benchmarks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ntt/params.h"

namespace nttpim::ntt {

/// Stockham autosort NTT: natural input -> natural output, double-buffered.
std::vector<std::uint32_t> ntt_stockham(std::span<const std::uint32_t> a,
                                        const NttParams& params);

}  // namespace nttpim::ntt
