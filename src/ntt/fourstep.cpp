#include "ntt/fourstep.h"

#include "common/bitutil.h"
#include "common/check.h"
#include "ntt/modular.h"
#include "ntt/reference.h"

namespace nttpim::ntt {

std::vector<std::uint32_t> ntt_four_step(std::span<const std::uint32_t> a,
                                         const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n());
  const std::size_t n = params.n();
  const std::uint64_t q = params.q();
  if (n < 4) {
    std::vector<std::uint32_t> out(a.begin(), a.end());
    forward_ntt(out, params);
    return out;
  }

  // Near-square split n = n1 * n2 (n1 <= n2, both powers of two); the
  // sub-transform roots omega^{n2} (order n1) and omega^{n1} (order n2)
  // come from the *same* omega so the composition equals the size-n NTT.
  const unsigned log_n = exact_log2(n);
  const std::size_t n1 = std::size_t{1} << (log_n / 2);
  const std::size_t n2 = n / n1;
  const std::uint64_t omega = params.omega();
  const std::uint64_t omega1 = pow_mod(omega, n2, q);  // order n1
  const std::uint64_t omega2 = pow_mod(omega, n1, q);  // order n2

  // Step 1: column NTTs. Element (i, j) of the matrix is a[i*n2 + j]; the
  // column-j subsequence has stride n2. Sub-transforms must share the
  // parent's root (omega^{n2}, omega^{n1}), so use the explicit-root
  // kernel rather than the sub-parameters' own derived roots.
  std::vector<std::vector<std::uint32_t>> columns(n2);
  for (std::size_t j = 0; j < n2; ++j) {
    columns[j].resize(n1);
    for (std::size_t i = 0; i < n1; ++i) columns[j][i] = a[i * n2 + j];
    forward_ntt_with_root(columns[j], static_cast<std::uint32_t>(q),
                          static_cast<std::uint32_t>(omega1));
  }

  // Step 2: twiddle scaling by omega^{k1 * j} (geometric in k1 per column).
  for (std::size_t j = 0; j < n2; ++j) {
    const std::uint64_t wj = pow_mod(omega, j, q);
    std::uint64_t w = 1;
    for (std::size_t k1 = 0; k1 < n1; ++k1) {
      columns[j][k1] =
          static_cast<std::uint32_t>(mul_mod(columns[j][k1], w, q));
      w = mul_mod(w, wj, q);
    }
  }

  // Step 3: row NTTs (row k1 gathers the j-th entries), then
  // Step 4: transpose into the output: X[k1 + k2*n1] = row_k1[k2].
  std::vector<std::uint32_t> out(n);
  std::vector<std::uint32_t> row(n2);
  for (std::size_t k1 = 0; k1 < n1; ++k1) {
    for (std::size_t j = 0; j < n2; ++j) row[j] = columns[j][k1];
    forward_ntt_with_root(row, static_cast<std::uint32_t>(q),
                          static_cast<std::uint32_t>(omega2));
    for (std::size_t k2 = 0; k2 < n2; ++k2) out[k1 + k2 * n1] = row[k2];
  }
  return out;
}

}  // namespace nttpim::ntt
