// Montgomery multiplication for 64-bit odd moduli (R = 2^64).
//
// The PIM datapath is 32-bit (the paper's bitwidth); 64-bit arithmetic is
// provided for the host side: CRT reconstruction, wide-modulus parameter
// search, and FHE schemes whose ciphertext moduli exceed one machine word
// before RNS decomposition.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "ntt/modular.h"

namespace nttpim::ntt {

class Montgomery64 {
 public:
  explicit Montgomery64(std::uint64_t q) : q_(q) {
    NTTPIM_EXPECT_MSG(q % 2 == 1, "Montgomery modulus must be odd");
    NTTPIM_EXPECT_MSG(q > 1 && q < (1ULL << 63),
                      "modulus must be in (1, 2^63)");
    // Newton iteration: 6 steps lift q^{-1} mod 2^64 from 3 correct bits.
    std::uint64_t inv = q;
    for (int i = 0; i < 5; ++i) inv *= 2 - q * inv;
    neg_q_inv_ = ~inv + 1;
    // R^2 mod q via repeated doubling of R mod q (avoids 256-bit division):
    // R mod q = ((2^64 - 1) mod q) + 1, wrapped if it hits q.
    std::uint64_t r_mod_q = (~0ULL % q) + 1;
    if (r_mod_q == q) r_mod_q = 0;
    std::uint64_t r2 = r_mod_q;
    for (int i = 0; i < 64; ++i) r2 = add_mod(r2, r2, q);  // * 2^64
    r2_ = r2;
    one_ = to_mont(1);
  }

  std::uint64_t modulus() const noexcept { return q_; }
  std::uint64_t one() const noexcept { return one_; }

  /// Montgomery reduction: T * R^{-1} mod q for T < q * 2^64.
  std::uint64_t redc(unsigned __int128 t) const noexcept {
    const std::uint64_t m = static_cast<std::uint64_t>(t) * neg_q_inv_;
    const unsigned __int128 sum =
        t + static_cast<unsigned __int128>(m) * q_;
    std::uint64_t r = static_cast<std::uint64_t>(sum >> 64);
    if (r >= q_) r -= q_;
    return r;
  }

  std::uint64_t to_mont(std::uint64_t a) const noexcept {
    return redc(static_cast<unsigned __int128>(a % q_) * r2_);
  }

  std::uint64_t from_mont(std::uint64_t a) const noexcept { return redc(a); }

  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const noexcept {
    return redc(static_cast<unsigned __int128>(a) * b);
  }

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const noexcept {
    return add_mod(a, b, q_);
  }

  std::uint64_t sub(std::uint64_t a, std::uint64_t b) const noexcept {
    return sub_mod(a, b, q_);
  }

  std::uint64_t pow(std::uint64_t a, std::uint64_t e) const noexcept {
    std::uint64_t result = one_;
    std::uint64_t base = a;
    while (e != 0) {
      if (e & 1) result = mul(result, base);
      base = mul(base, base);
      e >>= 1;
    }
    return result;
  }

 private:
  std::uint64_t q_;
  std::uint64_t neg_q_inv_;
  std::uint64_t r2_;
  std::uint64_t one_;
};

}  // namespace nttpim::ntt
