// Pease constant-geometry NTT.
//
// The paper (Sec. II.B) discusses Pease's parallel FFT as an alternative to
// Cooley–Tukey: every stage performs the same adjacent-pair butterfly pattern
// followed by a perfect-shuffle data movement, which suits ASIC/FPGA
// pipelines but requires log N shuffling passes — the very cost the paper's
// row-centric mapping avoids. We implement it as a baseline and to quantify
// that data-movement penalty in the kernel benchmarks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ntt/params.h"

namespace nttpim::ntt {

/// Constant-geometry (Pease) NTT: natural input -> bit-reversed output.
/// Mathematically identical to the Gentleman–Sande DIF transform.
std::vector<std::uint32_t> ntt_pease_natural_to_bitrev(
    std::span<const std::uint32_t> a, const NttParams& params);

/// Number of whole-array shuffle passes Pease performs (= log2 N); used by
/// benches to report data movement.
unsigned pease_shuffle_passes(const NttParams& params);

}  // namespace nttpim::ntt
