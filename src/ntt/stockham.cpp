#include "ntt/stockham.h"

#include "common/check.h"
#include "ntt/modular.h"

namespace nttpim::ntt {

std::vector<std::uint32_t> ntt_stockham(std::span<const std::uint32_t> a,
                                        const NttParams& params) {
  NTTPIM_EXPECT(a.size() == params.n());
  const std::size_t n = params.n();
  const std::uint64_t q = params.q();

  // Invariant after the stage with sub-transform length L (r = n/L
  // interleaved transforms): cur[l*r + i] = DFT_L(x[i], x[i+r], ...)[l].
  // The update merges pairs of interleaved length-L transforms into
  // length-2L ones; output lands in natural order with no sorting pass.
  std::vector<std::uint32_t> cur(a.begin(), a.end());
  std::vector<std::uint32_t> nxt(n);

  for (std::size_t sub_len = 1, r = n; sub_len < n; sub_len *= 2) {
    const std::size_t half_r = r / 2;
    const std::uint64_t w_step = params.omega_pow(half_r);  // omega_{2L}
    std::uint64_t w = 1;
    for (std::size_t l = 0; l < sub_len; ++l) {
      for (std::size_t i = 0; i < half_r; ++i) {
        const std::uint64_t even = cur[l * r + i];
        const std::uint64_t odd = mul_mod(cur[l * r + i + half_r], w, q);
        nxt[l * half_r + i] =
            static_cast<std::uint32_t>(add_mod(even, odd, q));
        nxt[(l + sub_len) * half_r + i] =
            static_cast<std::uint32_t>(sub_mod(even, odd, q));
      }
      w = mul_mod(w, w_step, q);
    }
    cur.swap(nxt);
    r = half_r;
  }
  return cur;
}

}  // namespace nttpim::ntt
