#include "ntt/primes.h"

#include <numeric>
#include <stdexcept>

#include "common/bitutil.h"
#include "common/check.h"
#include "ntt/modular.h"

namespace nttpim::ntt {

namespace {

// Strong-probable-prime test to base a; n odd, n-1 = d * 2^r.
bool sprp(std::uint64_t n, std::uint64_t a, std::uint64_t d, unsigned r) {
  std::uint64_t x = pow_mod(a % n, d, n);
  if (x == 1 || x == n - 1) return true;
  for (unsigned i = 1; i < r; ++i) {
    x = mul_mod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

std::uint64_t pollard_rho(std::uint64_t n, std::uint64_t c) {
  // Brent's cycle-finding variant.
  auto f = [n, c](std::uint64_t x) { return add_mod(mul_mod(x, x, n), c, n); };
  std::uint64_t x = 2, y = 2, d = 1;
  std::uint64_t saved_y = y;
  for (std::uint64_t limit = 1; d == 1; limit *= 2) {
    x = y;
    saved_y = y;
    std::uint64_t product = 1;
    for (std::uint64_t i = 0; i < limit && d == 1; ++i) {
      y = f(y);
      const std::uint64_t diff = x > y ? x - y : y - x;
      if (diff == 0) return 0;  // cycle without factor; caller retries
      product = mul_mod(product, diff, n);
      if ((i & 127) == 127 || i + 1 == limit) {
        d = std::gcd(product, n);
        product = 1;
      }
    }
  }
  if (d != n && d != 1) return d;
  // Backtrack one step at a time if the batched gcd overshot.
  std::uint64_t z = saved_y;
  while (true) {
    z = f(z);
    const std::uint64_t diff = x > z ? x - z : z - x;
    const std::uint64_t g = std::gcd(diff, n);
    if (g == 0 || g == n) return 0;
    if (g != 1) return g;
  }
}

void factor_into(std::uint64_t n, std::vector<std::uint64_t>& out) {
  if (n == 1) return;
  if (is_prime(n)) {
    out.push_back(n);
    return;
  }
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL}) {
    if (n % p == 0) {
      out.push_back(p);
      while (n % p == 0) n /= p;
      factor_into(n, out);
      return;
    }
  }
  std::uint64_t d = 0;
  for (std::uint64_t c = 1; d == 0 || d == n; ++c) d = pollard_rho(n, c);
  factor_into(d, out);
  std::uint64_t rest = n;
  while (rest % d == 0) rest /= d;
  factor_into(rest, out);
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  std::uint64_t d = n - 1;
  unsigned r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This base set is deterministic for all n < 2^64 (Sorenson–Webster).
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!sprp(n, a, d, r)) return false;
  }
  return true;
}

std::uint64_t next_prime_congruent_one(std::uint64_t floor,
                                       std::uint64_t modulus_step) {
  NTTPIM_EXPECT(modulus_step != 0);
  std::uint64_t k = floor / modulus_step + 1;
  while (true) {
    const std::uint64_t candidate = k * modulus_step + 1;
    NTTPIM_CHECK_MSG(candidate < (1ULL << 62),
                     "prime search exceeded 2^62 — bad parameters");
    if (candidate > floor && is_prime(candidate)) return candidate;
    ++k;
  }
}

std::uint32_t find_ntt_prime(std::size_t n, unsigned bits) {
  NTTPIM_EXPECT(is_pow2(n));
  NTTPIM_EXPECT_MSG(bits >= 4 && bits <= 31, "bits must be in [4, 31]");
  const std::uint64_t step = 2 * static_cast<std::uint64_t>(n);
  const std::uint64_t top = 1ULL << bits;
  NTTPIM_EXPECT_MSG(step < top, "N too large for the requested bit width");
  // Search downward from 2^bits for the largest q = k*2N + 1 that is prime.
  for (std::uint64_t k = (top - 1) / step; k >= 1; --k) {
    const std::uint64_t candidate = k * step + 1;
    if (candidate < top && is_prime(candidate))
      return static_cast<std::uint32_t>(candidate);
  }
  throw std::runtime_error("no NTT-friendly prime found for given N/bits");
}

std::vector<std::uint32_t> find_ntt_primes(std::size_t n, unsigned bits,
                                           std::size_t count) {
  NTTPIM_EXPECT(is_pow2(n));
  NTTPIM_EXPECT(count >= 1);
  const std::uint64_t step = 2 * static_cast<std::uint64_t>(n);
  const std::uint64_t top = 1ULL << bits;
  NTTPIM_EXPECT_MSG(step < top, "N too large for the requested bit width");
  std::vector<std::uint32_t> primes;
  for (std::uint64_t k = (top - 1) / step; k >= 1 && primes.size() < count;
       --k) {
    const std::uint64_t candidate = k * step + 1;
    if (candidate < top && is_prime(candidate))
      primes.push_back(static_cast<std::uint32_t>(candidate));
  }
  NTTPIM_CHECK_MSG(primes.size() == count,
                   "not enough NTT-friendly primes below 2^bits");
  return primes;
}

std::vector<std::uint64_t> prime_factors(std::uint64_t n) {
  NTTPIM_EXPECT(n >= 1);
  std::vector<std::uint64_t> out;
  factor_into(n, out);
  return out;
}

bool has_order(std::uint64_t w, std::uint64_t n, std::uint64_t q) {
  if (w % q == 0) return false;
  if (pow_mod(w, n, q) != 1) return false;
  for (const std::uint64_t p : prime_factors(n)) {
    if (pow_mod(w, n / p, q) == 1) return false;
  }
  return true;
}

std::uint64_t find_generator(std::uint64_t q) {
  NTTPIM_EXPECT(is_prime(q));
  const std::uint64_t group_order = q - 1;
  const auto factors = prime_factors(group_order);
  for (std::uint64_t g = 2; g < q; ++g) {
    bool generator = true;
    for (const std::uint64_t p : factors) {
      if (pow_mod(g, group_order / p, q) == 1) {
        generator = false;
        break;
      }
    }
    if (generator) return g;
  }
  throw std::runtime_error("no generator found (q not prime?)");
}

std::uint64_t primitive_root_of_unity(std::uint64_t q, std::uint64_t n) {
  NTTPIM_EXPECT_MSG((q - 1) % n == 0, "n must divide q-1");
  const std::uint64_t g = find_generator(q);
  const std::uint64_t w = pow_mod(g, (q - 1) / n, q);
  NTTPIM_CHECK(has_order(w, n, q));
  return w;
}

}  // namespace nttpim::ntt
