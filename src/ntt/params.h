// NTT parameter bundle: transform size, modulus and roots of unity.
//
// This is the "(N, p, q, ...)" parameter set that the host software passes to
// the memory controller when invoking the PIM NTT function (paper Fig. 1 and
// Sec. IV.A).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitutil.h"

namespace nttpim::ntt {

class NttParams {
 public:
  /// Build parameters for a size-`n` cyclic NTT modulo prime `q`.
  /// Requires: n a power of two, q prime with 2n | q-1 (so that a 2n-th root
  /// psi exists, enabling the negacyclic transform as well).
  NttParams(std::size_t n, std::uint32_t q);

  /// Convenience: pick the largest `bits`-bit NTT-friendly prime for size n.
  static NttParams create(std::size_t n, unsigned bits = 31);

  std::size_t n() const noexcept { return n_; }
  unsigned log2n() const noexcept { return log2n_; }
  std::uint32_t q() const noexcept { return q_; }

  /// Primitive n-th root of unity (the NTT twiddle base omega).
  std::uint32_t omega() const noexcept { return omega_; }
  /// omega^{-1} mod q.
  std::uint32_t omega_inv() const noexcept { return omega_inv_; }
  /// Primitive 2n-th root of unity (psi^2 = omega) for negacyclic transforms.
  std::uint32_t psi() const noexcept { return psi_; }
  std::uint32_t psi_inv() const noexcept { return psi_inv_; }
  /// n^{-1} mod q (inverse-transform scale factor).
  std::uint32_t n_inv() const noexcept { return n_inv_; }

  /// omega^e mod q.
  std::uint32_t omega_pow(std::uint64_t e) const;

  /// Stage step w_s = omega^(n / 2^s) for DIT stage s in [1, log2n]:
  /// within a stage the butterfly at in-group offset j uses twiddle w_s^j.
  std::uint32_t stage_step(unsigned stage) const;

  /// Precomputed twiddle table: tw[j] = omega^j for j in [0, n/2).
  const std::vector<std::uint32_t>& twiddles() const;
  /// Precomputed inverse twiddle table: itw[j] = omega^{-j}.
  const std::vector<std::uint32_t>& inv_twiddles() const;

 private:
  std::size_t n_;
  unsigned log2n_;
  std::uint32_t q_;
  std::uint32_t omega_;
  std::uint32_t omega_inv_;
  std::uint32_t psi_;
  std::uint32_t psi_inv_;
  std::uint32_t n_inv_;
  mutable std::vector<std::uint32_t> twiddles_;      // lazily built
  mutable std::vector<std::uint32_t> inv_twiddles_;  // lazily built
};

}  // namespace nttpim::ntt
