// Negacyclic (psi-scaled) NTT over Z_q[X]/(X^N + 1).
//
// FHE schemes use the ring R_q = Z_q[X]/(X^N + 1) (paper Sec. II.B); the
// negacyclic transform is the cyclic NTT with psi^i pre-scaling (psi a
// primitive 2N-th root, psi^2 = omega), making the pointwise product
// correspond to polynomial multiplication modulo X^N + 1.
#pragma once

#include <cstdint>
#include <vector>

#include "ntt/params.h"

namespace nttpim::ntt {

/// Elementwise a[i] *= base^i (geometric scaling — the same operation the
/// PIM realizes with the zero-operand C2 trick; see mapping/mapper.h).
void geometric_scale(std::vector<std::uint32_t>& a, std::uint32_t base,
                     std::uint32_t scale0, std::uint32_t q);

/// Forward negacyclic NTT, natural -> natural.
void forward_negacyclic_ntt(std::vector<std::uint32_t>& a,
                            const NttParams& params);

/// Inverse negacyclic NTT, natural -> natural.
void inverse_negacyclic_ntt(std::vector<std::uint32_t>& a,
                            const NttParams& params);

}  // namespace nttpim::ntt
