#include "ntt/params.h"

#include "common/check.h"
#include "ntt/modular.h"
#include "ntt/primes.h"

namespace nttpim::ntt {

NttParams::NttParams(std::size_t n, std::uint32_t q) : n_(n), q_(q) {
  NTTPIM_EXPECT_MSG(is_pow2(n) && n >= 2, "N must be a power of two >= 2");
  NTTPIM_EXPECT_MSG(is_prime(q), "q must be prime");
  NTTPIM_EXPECT_MSG((q - 1) % (2 * n) == 0,
                    "q must satisfy q ≡ 1 (mod 2N) for psi to exist");
  log2n_ = exact_log2(n);
  psi_ = static_cast<std::uint32_t>(primitive_root_of_unity(q, 2 * n));
  omega_ = static_cast<std::uint32_t>(mul_mod(psi_, psi_, q));
  NTTPIM_CHECK(has_order(omega_, n, q));
  omega_inv_ = static_cast<std::uint32_t>(inv_mod(omega_, q));
  psi_inv_ = static_cast<std::uint32_t>(inv_mod(psi_, q));
  n_inv_ = static_cast<std::uint32_t>(inv_mod(n % q, q));
}

NttParams NttParams::create(std::size_t n, unsigned bits) {
  return NttParams(n, find_ntt_prime(n, bits));
}

std::uint32_t NttParams::omega_pow(std::uint64_t e) const {
  return static_cast<std::uint32_t>(pow_mod(omega_, e, q_));
}

std::uint32_t NttParams::stage_step(unsigned stage) const {
  NTTPIM_EXPECT_MSG(stage >= 1 && stage <= log2n_, "stage out of range");
  return omega_pow(n_ >> stage);
}

const std::vector<std::uint32_t>& NttParams::twiddles() const {
  if (twiddles_.empty()) {
    twiddles_.resize(n_ / 2);
    std::uint64_t w = 1;
    for (auto& t : twiddles_) {
      t = static_cast<std::uint32_t>(w);
      w = mul_mod(w, omega_, q_);
    }
  }
  return twiddles_;
}

const std::vector<std::uint32_t>& NttParams::inv_twiddles() const {
  if (inv_twiddles_.empty()) {
    inv_twiddles_.resize(n_ / 2);
    std::uint64_t w = 1;
    for (auto& t : inv_twiddles_) {
      t = static_cast<std::uint32_t>(w);
      w = mul_mod(w, omega_inv_, q_);
    }
  }
  return inv_twiddles_;
}

}  // namespace nttpim::ntt
