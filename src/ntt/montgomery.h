// Montgomery multiplication for 32-bit odd moduli (R = 2^32).
//
// The paper's butterfly unit "supports ModAdd/Sub and ModMult for arbitrary
// modulo values using the Montgomery reduction algorithm" (Sec. VI.B). This
// is the functional model of that datapath, and also the fast reduction used
// by the optimized CPU baseline.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "ntt/modular.h"

namespace nttpim::ntt {

/// Montgomery context for an odd modulus q < 2^31.
///
/// Values in "Montgomery domain" represent a·R mod q with R = 2^32.
/// REDC(T) computes T·R^{-1} mod q for T < q·R, so
/// mul(aR, bR) = abR — the domain is closed under mul().
class Montgomery32 {
 public:
  explicit Montgomery32(std::uint32_t q) : q_(q) {
    NTTPIM_EXPECT_MSG(q % 2 == 1, "Montgomery modulus must be odd");
    NTTPIM_EXPECT_MSG(q > 1 && q < (1u << 31), "modulus must be in (1, 2^31)");
    // Newton iteration for -q^{-1} mod 2^32: x_{k+1} = x_k (2 - q x_k)
    // doubles the number of correct low bits; q itself is correct mod 2^3.
    std::uint32_t inv = q;
    for (int i = 0; i < 4; ++i) inv *= 2 - q * inv;
    neg_q_inv_ = ~inv + 1;  // -q^{-1} mod 2^32
    // R^2 mod q, used to enter the Montgomery domain.
    r2_ = static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(1) << 64) % q);
    one_ = to_mont(1);
  }

  std::uint32_t modulus() const noexcept { return q_; }
  std::uint32_t one() const noexcept { return one_; }

  /// Montgomery reduction: returns T·R^{-1} mod q for T < q·2^32.
  std::uint32_t redc(std::uint64_t t) const noexcept {
    const std::uint32_t m =
        static_cast<std::uint32_t>(t) * neg_q_inv_;  // mod 2^32
    const std::uint64_t sum = t + static_cast<std::uint64_t>(m) * q_;
    std::uint32_t r = static_cast<std::uint32_t>(sum >> 32);
    if (r >= q_) r -= q_;
    return r;
  }

  /// a (plain) -> aR mod q (Montgomery domain).
  std::uint32_t to_mont(std::uint32_t a) const noexcept {
    return redc(static_cast<std::uint64_t>(a) * r2_);
  }

  /// aR (Montgomery domain) -> a (plain).
  std::uint32_t from_mont(std::uint32_t a) const noexcept {
    return redc(a);
  }

  /// Product in the Montgomery domain: (aR)·(bR) -> abR.
  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const noexcept {
    return redc(static_cast<std::uint64_t>(a) * b);
  }

  std::uint32_t add(std::uint32_t a, std::uint32_t b) const noexcept {
    const std::uint32_t s = a + b;
    return s >= q_ ? s - q_ : s;
  }

  std::uint32_t sub(std::uint32_t a, std::uint32_t b) const noexcept {
    return a >= b ? a - b : a + q_ - b;
  }

  /// a^e in the Montgomery domain (a is Montgomery-form, result too).
  std::uint32_t pow(std::uint32_t a, std::uint64_t e) const noexcept {
    std::uint32_t result = one_;
    std::uint32_t base = a;
    while (e != 0) {
      if (e & 1) result = mul(result, base);
      base = mul(base, base);
      e >>= 1;
    }
    return result;
  }

 private:
  std::uint32_t q_;
  std::uint32_t neg_q_inv_;  // -q^{-1} mod 2^32
  std::uint32_t r2_;         // R^2 mod q
  std::uint32_t one_;        // R mod q
};

}  // namespace nttpim::ntt
