// Polynomial products over Z_q[X]/(X^N - 1) and Z_q[X]/(X^N + 1).
//
// Implements Eq. (1) of the paper, a*b = INTT(NTT(a) ⊙ NTT(b)), plus O(N^2)
// schoolbook versions used as golden models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ntt/params.h"

namespace nttpim::ntt {

/// Schoolbook product modulo X^N - 1 (cyclic convolution).
std::vector<std::uint32_t> cyclic_convolution_schoolbook(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
    std::uint32_t q);

/// Schoolbook product modulo X^N + 1 (negacyclic convolution).
std::vector<std::uint32_t> negacyclic_convolution_schoolbook(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
    std::uint32_t q);

/// Pointwise (Hadamard) product mod q.
std::vector<std::uint32_t> pointwise_mul(std::span<const std::uint32_t> a,
                                         std::span<const std::uint32_t> b,
                                         std::uint32_t q);

/// Cyclic product via NTT (Eq. 1).
std::vector<std::uint32_t> cyclic_convolution_ntt(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
    const NttParams& params);

/// Negacyclic product via psi-scaled NTT.
std::vector<std::uint32_t> negacyclic_convolution_ntt(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
    const NttParams& params);

}  // namespace nttpim::ntt
