#include "service/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nttpim::service {

namespace {

/// p-th percentile (nearest-rank) of a scratch copy of the window: the
/// smallest sample x such that at least p% of the population is <= x, i.e.
/// the ceil(p/100 * n)-th smallest value. The floor() variant this
/// replaces was off by one rank — p50 over [1..100] returned the 51st
/// value, and p50 of a 2-sample window returned the max.
double percentile(std::vector<double>& sorted_scratch, double p) {
  if (sorted_scratch.empty()) return 0;
  const auto n = sorted_scratch.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank > 0) --rank;  // 1-based nearest rank -> 0-based index
  if (rank >= n) rank = n - 1;
  std::nth_element(sorted_scratch.begin(), sorted_scratch.begin() + rank,
                   sorted_scratch.end());
  return sorted_scratch[rank];
}

}  // namespace

LatencyRecorder::LatencyRecorder(std::size_t capacity) : capacity_(capacity) {
  NTTPIM_EXPECT_MSG(capacity >= 1, "latency window needs at least 1 sample");
  window_.reserve(std::min<std::size_t>(capacity, 1024));
}

void LatencyRecorder::record(double us) {
  const sync::MutexLock lk(mu_);
  ++count_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
  if (window_.size() < capacity_) {
    window_.push_back(us);
  } else {
    window_[next_] = us;
    next_ = (next_ + 1) % capacity_;
  }
}

void LatencyRecorder::reset() {
  const sync::MutexLock lk(mu_);
  window_.clear();
  next_ = 0;
  count_ = 0;
  sum_us_ = 0;
  max_us_ = 0;
}

LatencySummary LatencyRecorder::summary() const {
  std::vector<double> scratch;
  LatencySummary s;
  {
    const sync::MutexLock lk(mu_);
    s.count = count_;
    s.mean_us = count_ ? sum_us_ / static_cast<double>(count_) : 0;
    s.max_us = max_us_;
    scratch = window_;
  }
  s.p50_us = percentile(scratch, 50);
  s.p95_us = percentile(scratch, 95);
  s.p99_us = percentile(scratch, 99);
  return s;
}

}  // namespace nttpim::service
