// Cost-aware hierarchical (shard, channel) wave dispatch with local
// rebalancing and cross-shard work stealing.
//
// PR 4's shards pulled whole waves straight off the shared wave-former;
// assignment was "whoever asks next", so a shard chewing a huge mixed wave
// could leave expensive waves queued behind it while its peers idled — the
// load imbalance the paper's row-centric mapping avoids *inside* a device,
// reproduced across devices. PR 5's Dispatcher closed that gap with the
// cost-model-driven scheduling MeNTT / BP-NTT use to balance in-memory NTT
// lanes; this revision extends the same idea one level down, to the
// independent command buses of a multi-channel device (see
// dram::DramGeometry::num_channels):
//
//   wave-former --> Dispatcher --> shard 0 { ch 0 --> merged  } worker 0
//    (coalesce)      |  price &  >         { ch 1 --> pass    }
//                    |  assign   > shard 1 { ch 0 ... }         worker 1
//                    |  (s, ch)       ^-- rebalance across own channels,
//                    |                    steal across shards when idle
//
//  - Assignment: each formed wave is priced *per shard* by an Estimator
//    (backed by each backend's own estimate_wave_cycles — all in the
//    shared modeled-cycle unit, see fhe/ntt_backend.h), scaled by the
//    shard's cost_scale, and pushed onto the (shard, channel) queue that
//    would clear it soonest (smallest per-channel backlog + price). The
//    price is per shard, not per channel: channels of one device are
//    identical buses, so only their backlogs differ. With heterogeneous
//    shards this is what routes cheap waves to a CPU worker while bulk
//    waves stay on the PIM; within a PIM shard it is what spreads bulk
//    waves across buses so the worker can merge one wave per channel into
//    a single channel-overlapped engine pass. `cost_aware = false`
//    degrades to blind round-robin over the flattened (shard, channel)
//    pairs — the FIFO baseline the bench compares against.
//  - Compatibility: an Estimator may return kIncompatibleCycles to mark a
//    (shard, wave) pair unrunnable; assignment and stealing both skip such
//    pairs. (Every current backend runs every wave — the sentinel is the
//    general mechanism for restricted future backends, and for tests.)
//  - Local rebalance: when a worker group-pops one wave per channel
//    (next_waves_for) and some channels come up empty while siblings still
//    hold queued waves, the empty channels take the oldest wave of the
//    most-loaded sibling so the merged pass keeps every bus busy. This
//    never crosses a shard (same backend, same thread), so it is always
//    on, independent of the work_stealing policy, and is reported as
//    `rebalanced`, not `stolen`.
//  - Stealing: only when its *whole* shard is empty does a worker cross
//    shards — local rebalance strictly precedes remote stealing. It takes
//    the oldest compatible wave from the most-loaded peer (channels of the
//    victim probed most-loaded first), re-priced for the thief's backend
//    and landed on the thief's least-backlogged channel. Steals move whole
//    waves, so the thread-confined backend / plan-cache contract is
//    untouched — a wave executes entirely on whichever shard took it, and
//    only the dispatch bookkeeping crosses threads (under the Dispatcher's
//    one mutex).
//  - Deadline pressure (Config::deadline_pressure, QoS): lanes hold waves
//    in (earliest deadline, arrival) order, so the wave a worker pops next
//    is always the most urgent one and a deadlined wave jumps queued bulk;
//    assignment prices an urgent wave against only the queued work ahead
//    of it in lane order; and an idle shard steals the most-deadline-
//    urgent compatible wave anywhere before relieving the most-loaded
//    peer. Deadline-less waves carry +inf, so unclassed traffic behaves
//    exactly as with the flag off.
//  - Backpressure: per-channel queues are bounded in waves; dispatch()
//    blocks while its target channel is full, which stops the wave-former
//    from being drained, which backpressures submitters through the
//    former's own bounded queue.
//
// close() ends intake; workers then drain every queue (an empty own shard
// lets a worker take a leftover peer wave regardless of the stealing
// policy — accepted work always executes) and next_wave(s)_for return
// empty once everything is gone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "service/backend.h"
#include "service/shard_queue.h"
#include "sync/mutex.h"

namespace nttpim::service {

class Dispatcher {
 public:
  /// Dispatch-relevant slice of one shard's BackendDescriptor.
  struct Shard {
    BackendKind kind = BackendKind::kPim;
    /// Multiplies this shard's raw estimates before any comparison or
    /// accounting (see BackendDescriptor::cost_scale).
    double cost_scale = 1.0;
    /// Independent command channels of the shard's device (see
    /// BackendDescriptor::channels). The shard's queue splits per channel.
    std::size_t channels = 1;
  };

  struct Config {
    /// One entry per shard, in worker order.
    std::vector<Shard> shards = {Shard{}};
    std::size_t queue_capacity_waves = 4;  ///< per-channel bound, in waves
    bool cost_aware = true;     ///< least-backlog assignment (false = RR)
    bool work_stealing = true;  ///< idle shards steal from loaded peers
    /// Deadline pressure (the dispatch half of the QoS tentpole): lanes
    /// order by (deadline, arrival) instead of append order, a deadlined
    /// wave's assignment ETA counts only the queued work *ahead of it* in
    /// lane order (it jumps the rest), and a thief takes the most-
    /// deadline-urgent compatible wave across every peer before falling
    /// back to the load-relief steal. With no deadlines in flight all
    /// three reduce exactly to the FIFO behavior, so the flag only
    /// matters for classed traffic — and turning it off is the QoS
    /// bench's FIFO baseline.
    bool deadline_pressure = false;
  };

  /// Estimator return value marking a (shard, wave) pair the shard's
  /// backend cannot execute: assignment skips the shard, thieves skip the
  /// wave.
  static constexpr std::uint64_t kIncompatibleCycles =
      std::numeric_limits<std::uint64_t>::max();

  /// Prices `wave` for `shard`, in the backend's *raw* modeled device
  /// cycles (the dispatcher applies the shard's cost_scale), or
  /// kIncompatibleCycles. Called with the dispatcher's mutex held, on the
  /// dispatching thread and on stealing workers, while other shards
  /// execute — so it must only use share-readable state
  /// (NttBackend::estimate_wave_cycles qualifies) and must not call back
  /// into the Dispatcher. The wave is passed mutably because BatchItems
  /// reference its buffers; the estimator must not actually modify it.
  using Estimator =
      std::function<std::uint64_t(std::size_t shard,
                                  std::vector<Request>& wave)>;

  Dispatcher(const Config& config, Estimator estimator);

  /// Where dispatch() placed a wave — returned so the dispatch loop can
  /// attribute the decision (telemetry's DispatchAssign event) without a
  /// second lock acquisition. Existing callers are free to ignore it.
  struct Assignment {
    std::size_t shard = 0;
    std::size_t channel = 0;
    /// The assignee's scaled price for the wave.
    std::uint64_t estimated_cycles = 0;
    std::uint64_t wave_id = 0;  ///< former-stamped id (0 for test waves)
  };

  /// Price one formed wave per shard and enqueue it on the chosen
  /// compatible (shard, channel) queue, blocking while that channel is
  /// full. After close() the capacity bound is waived instead of blocking
  /// forever (drain semantics: whatever the former already accepted must
  /// still reach a queue). Throws std::logic_error if no shard can run the
  /// wave.
  Assignment dispatch(std::vector<Request>&& wave);

  struct NextWave {
    std::vector<Request> requests;
    /// Former-stamped wave id, carried from the QueuedWave so steals and
    /// rebalances report *which* wave moved (0 for hand-built test waves).
    std::uint64_t wave_id = 0;
    /// The executing shard's scaled price (re-priced on a steal).
    std::uint64_t estimated_cycles = 0;
    /// Channel of the executing shard the wave runs on — the channel hint
    /// the worker stamps on the wave's batch items.
    std::size_t channel = 0;
    bool stolen = false;  ///< taken from a peer under the stealing policy
    /// Moved between channels of the executing shard by a group pop's
    /// local rebalance (never a policy steal — same backend, same thread).
    bool rebalanced = false;
  };

  /// Block until `shard` has work, then return up to one wave per channel
  /// — the group the worker merges into a single channel-overlapped engine
  /// pass. Own channels pop their oldest wave; channels left empty-handed
  /// take the oldest wave of the most-loaded sibling channel
  /// (`rebalanced`). Only when the whole shard is empty does the worker
  /// steal remotely — when stealing is enabled, or after close() — taking
  /// the oldest compatible wave of the most-loaded peer, re-priced, onto
  /// this shard's least-backlogged channel (a group of one). Returns an
  /// empty vector only when the dispatcher is closed and every wave this
  /// shard could run has drained (a closed dispatcher strands nothing: an
  /// incompatible leftover is, by construction, compatible with the shard
  /// it was assigned to). Each returned wave's cost is already accounted
  /// as executing on (shard, its channel); pass each back through
  /// complete() when done.
  std::vector<NextWave> next_waves_for(std::size_t shard);

  /// Single-wave variant of next_waves_for: the oldest wave of this
  /// shard's most-loaded channel, else a remote steal onto the
  /// least-backlogged channel. Same blocking and drain semantics;
  /// nullopt == drained. (Group pops are what production workers use —
  /// this is the granular probe for tests and simple consumers.)
  std::optional<NextWave> next_wave_for(std::size_t shard);

  /// Account the end of a wave next_wave(s)_for(shard) handed out, on the
  /// channel the NextWave named.
  void complete(std::size_t shard, std::uint64_t estimated_cycles,
                std::size_t channel = 0);

  /// Stop intake and let workers drain; idempotent.
  void close();

  /// Estimated outstanding cost (queued + executing) of one shard summed
  /// over its channels, for stats snapshots. Safe from any thread.
  std::uint64_t backlog_cycles(std::size_t shard) const;
  /// One channel's share of the same.
  std::uint64_t backlog_cycles(std::size_t shard, std::size_t channel) const;

  /// Coherent backlog snapshot of one shard: the total and every channel's
  /// share read under a single lock acquisition, so the channel figures
  /// always tile the total exactly. Stats paths that report both must use
  /// this instead of separate backlog_cycles() calls, between which waves
  /// can be pushed, popped, or stolen.
  struct ShardBacklog {
    std::uint64_t total_cycles = 0;
    std::vector<std::uint64_t> channel_cycles;  ///< one entry per channel
  };
  ShardBacklog backlog_snapshot(std::size_t shard) const;

  std::size_t shards() const noexcept { return cfg_.shards.size(); }
  std::size_t channels(std::size_t shard) const {
    return cfg_.shards[shard].channels;
  }

 private:
  /// estimate_(shard, wave) with the shard's cost_scale applied
  /// (kIncompatibleCycles passes through unscaled). Caller holds mu_.
  std::uint64_t priced_for(std::size_t shard, std::vector<Request>& wave) const
      NTTPIM_REQUIRES(mu_);

  /// Remote-steal step shared by the group and single-wave pop paths:
  /// under deadline_pressure, the most-deadline-urgent compatible wave
  /// across all peers (when any peer wave has a real deadline); otherwise
  /// the oldest compatible wave of the most-loaded peer. Either way the
  /// loot is re-priced and accounted as executing on this shard's
  /// least-backlogged channel. Caller holds mu_; returns nullopt when no
  /// peer has a compatible wave.
  std::optional<NextWave> try_steal_for(std::size_t shard)
      NTTPIM_REQUIRES(mu_);

  /// Deadline-pressure steal: the single compatible peer wave with the
  /// earliest (deadline, arrival) key, considering only waves that carry a
  /// real deadline. Caller holds mu_; nullopt when no deadlined
  /// compatible wave is queued anywhere (the caller then falls back to
  /// the load-relief steal).
  std::optional<NextWave> try_steal_urgent_for(std::size_t shard)
      NTTPIM_REQUIRES(mu_);

  /// Land a wave taken from (victim, vc, index i) on `shard`'s
  /// least-backlogged channel at price `cycles`. Caller holds mu_.
  NextWave land_steal(std::size_t shard, std::size_t victim, std::size_t vc,
                      std::size_t i, std::uint64_t cycles)
      NTTPIM_REQUIRES(mu_);

  const Config cfg_;
  Estimator estimate_;
  mutable sync::Mutex mu_;
  sync::CondVar ready_cv_;  ///< workers: wave pushed / close
  sync::CondVar space_cv_;  ///< dispatcher: queue space freed
  /// deque, not vector: ShardQueue holds move-only Requests and emplacing
  /// into a deque never relocates existing elements.
  std::deque<ShardQueue> queues_ NTTPIM_GUARDED_BY(mu_);
  /// Flattened (shard, channel) pairs, shard-major — the round-robin orbit.
  /// Immutable after construction, but only ever read under mu_ anyway.
  std::vector<std::pair<std::size_t, std::size_t>> pairs_
      NTTPIM_GUARDED_BY(mu_);
  /// Round-robin cursor (cost_aware = false).
  std::size_t rr_next_ NTTPIM_GUARDED_BY(mu_) = 0;
  bool closed_ NTTPIM_GUARDED_BY(mu_) = false;
};

}  // namespace nttpim::service
