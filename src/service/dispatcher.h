// Cost-aware wave dispatch with cross-shard work stealing.
//
// PR 4's shards pulled whole waves straight off the shared wave-former;
// assignment was "whoever asks next", so a shard chewing a huge mixed wave
// could leave expensive waves queued behind it while its peers idled — the
// load imbalance the paper's row-centric mapping avoids *inside* a device,
// reproduced across devices. The Dispatcher closes that gap with the same
// cost-model-driven scheduling MeNTT / BP-NTT use to balance in-memory NTT
// lanes:
//
//   wave-former --> Dispatcher --> shard queue 0 --> worker 0
//    (coalesce)      |  price &  > shard queue 1 --> worker 1
//                    |  assign   > ...          <-- steal when idle
//
//  - Assignment: each formed wave is priced *per shard* by an Estimator
//    (backed by each backend's own estimate_wave_cycles — all in the
//    shared modeled-cycle unit, see fhe/ntt_backend.h), scaled by the
//    shard's cost_scale, and pushed onto the queue of the shard that
//    would clear it soonest (smallest backlog + price). With
//    heterogeneous shards this is what routes cheap waves to a CPU worker
//    while bulk waves stay on the PIM. `cost_aware = false` degrades to
//    blind round-robin — the FIFO baseline the bench compares against.
//  - Compatibility: an Estimator may return kIncompatibleCycles to mark a
//    (shard, wave) pair unrunnable; assignment and stealing both skip such
//    pairs. (Every current backend runs every wave — the sentinel is the
//    general mechanism for restricted future backends, and for tests.)
//  - Stealing: a worker whose own queue is empty takes the oldest queued
//    wave *it is compatible with* from the most-loaded peer, re-priced
//    for the thief's backend. Steals move whole waves, so the
//    thread-confined backend / plan-cache contract is untouched — a wave
//    executes entirely on whichever shard took it, and only the dispatch
//    bookkeeping crosses threads (under the Dispatcher's one mutex).
//  - Backpressure: per-shard queues are bounded in waves; dispatch()
//    blocks while its target is full, which stops the wave-former from
//    being drained, which backpressures submitters through the former's
//    own bounded queue.
//
// close() ends intake; workers then drain every queue (an empty own queue
// lets a worker take a leftover peer wave regardless of the stealing
// policy — accepted work always executes) and next_wave_for() returns
// nullopt once everything is gone.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "service/backend.h"
#include "service/shard_queue.h"

namespace nttpim::service {

class Dispatcher {
 public:
  /// Dispatch-relevant slice of one shard's BackendDescriptor.
  struct Shard {
    BackendKind kind = BackendKind::kPim;
    /// Multiplies this shard's raw estimates before any comparison or
    /// accounting (see BackendDescriptor::cost_scale).
    double cost_scale = 1.0;
  };

  struct Config {
    /// One entry per shard, in worker order.
    std::vector<Shard> shards = {Shard{}};
    std::size_t queue_capacity_waves = 4;  ///< per-shard bound, in waves
    bool cost_aware = true;     ///< least-backlog assignment (false = RR)
    bool work_stealing = true;  ///< idle shards steal from loaded peers
  };

  /// Estimator return value marking a (shard, wave) pair the shard's
  /// backend cannot execute: assignment skips the shard, thieves skip the
  /// wave.
  static constexpr std::uint64_t kIncompatibleCycles =
      std::numeric_limits<std::uint64_t>::max();

  /// Prices `wave` for `shard`, in the backend's *raw* modeled device
  /// cycles (the dispatcher applies the shard's cost_scale), or
  /// kIncompatibleCycles. Called with the dispatcher's mutex held, on the
  /// dispatching thread and on stealing workers, while other shards
  /// execute — so it must only use share-readable state
  /// (NttBackend::estimate_wave_cycles qualifies) and must not call back
  /// into the Dispatcher. The wave is passed mutably because BatchItems
  /// reference its buffers; the estimator must not actually modify it.
  using Estimator =
      std::function<std::uint64_t(std::size_t shard,
                                  std::vector<Request>& wave)>;

  Dispatcher(const Config& config, Estimator estimator);

  /// Price one formed wave per shard and enqueue it on the chosen
  /// compatible shard's queue, blocking while that queue is full. After
  /// close() the capacity bound is waived instead of blocking forever
  /// (drain semantics: whatever the former already accepted must still
  /// reach a queue). Throws std::logic_error if no shard can run the wave.
  void dispatch(std::vector<Request>&& wave);

  struct NextWave {
    std::vector<Request> requests;
    /// The executing shard's scaled price (re-priced on a steal).
    std::uint64_t estimated_cycles = 0;
    bool stolen = false;  ///< taken from a peer under the stealing policy
  };

  /// Block until `shard` has a wave to run: its own queue's oldest wave,
  /// else — when stealing is enabled, or after close() — the oldest
  /// compatible wave of the most-loaded peer that has one, re-priced for
  /// this shard's backend. Returns nullopt only when the dispatcher is
  /// closed and every wave this shard could run has drained (a closed
  /// dispatcher strands nothing: an incompatible leftover is, by
  /// construction, compatible with the shard it was assigned to). The
  /// returned wave's cost is already accounted as executing on `shard`;
  /// pass it back through complete() when done.
  std::optional<NextWave> next_wave_for(std::size_t shard);

  /// Account the end of a wave next_wave_for(shard) handed out.
  void complete(std::size_t shard, std::uint64_t estimated_cycles);

  /// Stop intake and let workers drain; idempotent.
  void close();

  /// Estimated outstanding cost (queued + executing) of one shard, for
  /// stats snapshots. Safe from any thread.
  std::uint64_t backlog_cycles(std::size_t shard) const;

  std::size_t shards() const noexcept { return cfg_.shards.size(); }

 private:
  /// estimate_(shard, wave) with the shard's cost_scale applied
  /// (kIncompatibleCycles passes through unscaled). Caller holds mu_.
  std::uint64_t priced_for(std::size_t shard,
                           std::vector<Request>& wave) const;

  const Config cfg_;
  Estimator estimate_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;  ///< workers: wave pushed / close
  std::condition_variable space_cv_;  ///< dispatcher: queue space freed
  /// deque, not vector: ShardQueue holds move-only Requests and emplacing
  /// into a deque never relocates existing elements.
  std::deque<ShardQueue> queues_;
  std::size_t rr_next_ = 0;  ///< round-robin cursor (cost_aware = false)
  bool closed_ = false;
};

}  // namespace nttpim::service
