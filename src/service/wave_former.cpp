#include "service/wave_former.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.h"

namespace nttpim::service {

WaveFormer::WaveFormer(const Config& config)
    : cfg_(config), paused_(config.start_paused) {
  NTTPIM_EXPECT_MSG(cfg_.max_wave_items >= 1,
                    "a wave must hold at least one batch item");
  // >= 2 so a multiply (2 items) always fits: a kBlock submit whose request
  // can never fit would wait forever.
  NTTPIM_EXPECT_MSG(cfg_.capacity_items >= 2,
                    "queue capacity must admit a multiply (2 batch items)");
  NTTPIM_EXPECT_MSG(cfg_.flush_window.count() >= 0,
                    "flush window must be non-negative");
}

WaveFormer::SubmitResult WaveFormer::submit(Request&& request,
                                            SubmitInfo* info) {
  const std::size_t items = request.batch_items();
  sync::MutexLock lk(mu_);
  if (cfg_.overflow == OverflowPolicy::kBlock) {
    // Explicit wait loop, not a predicate lambda: the thread-safety
    // analysis treats a lambda as a separate function, so a predicate
    // touching guarded members could not be checked against mu_.
    while (!closed_ && pending_items_ + items > cfg_.capacity_items)
      space_cv_.wait(lk);
    if (closed_) return SubmitResult::kClosed;
  } else {
    if (closed_) return SubmitResult::kClosed;
    if (pending_items_ + items > cfg_.capacity_items)
      return SubmitResult::kRejected;
  }
  request.enqueued = now();
  request.seq = next_seq_++;
  if (info != nullptr) {
    info->seq = request.seq;
    info->enqueued = request.enqueued;
  }
  pending_items_ += items;
  queue_.push_back(std::move(request));
  // notify_all: several consumers may be parked with different predicates
  // (waiting for any work vs. waiting for a full wave).
  ready_cv_.notify_all();
  return SubmitResult::kAccepted;
}

ServiceClock::time_point WaveFormer::flush_deadline() const {
  // The window always measures against the *oldest* request; EDF tightens
  // it to the earliest pending deadline, so a latency-critical request
  // never waits out the coalescing window behind bulk traffic.
  auto deadline = queue_.front().enqueued + cfg_.flush_window;
  if (cfg_.edf) {
    for (const Request& r : queue_)
      if (r.qos.deadline && *r.qos.deadline < deadline)
        deadline = *r.qos.deadline;
  }
  return deadline;
}

std::vector<Request> WaveFormer::cut_wave() {
  std::vector<Request> wave;
  std::size_t taken = 0;
  if (!cfg_.edf) {
    while (!queue_.empty()) {
      const std::size_t items = queue_.front().batch_items();
      // Never split below one request per wave; otherwise respect the cap
      // (a trailing multiply that would overflow waits for the next wave).
      if (taken != 0 && taken + items > cfg_.max_wave_items) break;
      taken += items;
      wave.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (taken >= cfg_.max_wave_items) break;
    }
  } else {
    // EDF cut: take requests by (effective deadline, priority desc,
    // arrival) until the cap. The deque stays in arrival order — only the
    // selection is ordered — so the FIFO path above and this one agree
    // exactly whenever no request carries a deadline or priority.
    std::vector<std::size_t> order(queue_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](auto a, auto b) {
      const Request& ra = queue_[a];
      const Request& rb = queue_[b];
      const auto da = ra.qos.edf_deadline();
      const auto db = rb.qos.edf_deadline();
      if (da != db) return da < db;
      if (ra.qos.priority != rb.qos.priority)
        return ra.qos.priority > rb.qos.priority;
      return ra.seq < rb.seq;
    });
    std::vector<std::size_t> picked;
    for (const std::size_t idx : order) {
      const std::size_t items = queue_[idx].batch_items();
      if (taken != 0 && taken + items > cfg_.max_wave_items) break;
      taken += items;
      picked.push_back(idx);
      if (taken >= cfg_.max_wave_items) break;
    }
    for (const std::size_t idx : picked)
      wave.push_back(std::move(queue_[idx]));
    // Erase the moved-from slots back-to-front so indices stay valid.
    std::sort(picked.begin(), picked.end());
    for (auto it = picked.rbegin(); it != picked.rend(); ++it)
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  pending_items_ -= taken;
  // Stamp the cut: one monotone wave id shared by every request of the
  // wave (the trace/stats join key downstream), and the cut time the
  // stage breakdown splits former residency from shard-queue wait at.
  const std::uint64_t wave_id = next_wave_id_++;
  const ServiceClock::time_point cut = now();
  for (Request& r : wave) {
    r.wave_id = wave_id;
    r.cut_at = cut;
  }
  return wave;
}

std::vector<Request> WaveFormer::next_wave() {
  sync::MutexLock lk(mu_);
  for (;;) {
    while (!closed_ && (paused_ || queue_.empty())) ready_cv_.wait(lk);
    if (queue_.empty()) {
      if (closed_) return {};
      continue;  // paused was lifted with nothing queued, or a spurious wake
    }

    // Wave forming: flush when full or when the *oldest* request has been
    // waiting flush_window (EDF tightens that to the earliest pending
    // deadline — see flush_deadline()). close() flushes immediately (drain
    // fast); pause() re-gates a consumer even mid-forming, so a staged
    // backlog never leaks out as a partial wave while paused.
    //
    // The deadline is recomputed against the *current* front after every
    // wake. Computing it once per wait (the previous code) let a waiter
    // whose wave was taken by another consumer time out against the
    // departed front's deadline and flush the new front's requests before
    // their window elapsed, shrinking coalesced waves.
    for (;;) {
      if (closed_ || paused_) break;
      if (queue_.empty()) break;  // another consumer took the wave
      if (pending_items_ >= cfg_.max_wave_items) break;
      const auto deadline = flush_deadline();
      if (now() >= deadline) break;
      if (cfg_.clock)
        ready_cv_.wait(lk);  // fake time: tick()/submit/close re-wakes us
      else
        ready_cv_.wait_until(lk, deadline);
    }
    if (paused_ && !closed_) continue;
    if (queue_.empty()) continue;  // another consumer took the wave

    std::vector<Request> wave = cut_wave();
    space_cv_.notify_all();
    return wave;
  }
}

void WaveFormer::pause() {
  const sync::MutexLock lk(mu_);
  paused_ = true;
}

void WaveFormer::resume() {
  {
    const sync::MutexLock lk(mu_);
    paused_ = false;
  }
  ready_cv_.notify_all();
}

void WaveFormer::tick() {
  // Taking the lock (not just notifying) closes the race with a consumer
  // that read the fake time before the caller advanced it but has not yet
  // parked on the condition variable.
  const sync::MutexLock lk(mu_);
  ready_cv_.notify_all();
}

void WaveFormer::close() {
  {
    const sync::MutexLock lk(mu_);
    closed_ = true;
    paused_ = false;  // a paused former still drains on shutdown
  }
  ready_cv_.notify_all();
  space_cv_.notify_all();
}

std::size_t WaveFormer::pending_items() const {
  const sync::MutexLock lk(mu_);
  return pending_items_;
}

bool WaveFormer::closed() const {
  const sync::MutexLock lk(mu_);
  return closed_;
}

}  // namespace nttpim::service
