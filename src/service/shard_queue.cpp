#include "service/shard_queue.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace nttpim::service {

ShardQueue::ShardQueue(std::size_t capacity_waves, std::size_t num_channels,
                       bool deadline_ordered)
    : capacity_(capacity_waves),
      deadline_ordered_(deadline_ordered),
      channels_(num_channels) {
  NTTPIM_EXPECT_MSG(capacity_waves >= 1,
                    "a shard queue must hold at least one wave per channel");
  NTTPIM_EXPECT_MSG(num_channels >= 1,
                    "a shard queue needs at least one channel");
}

const ShardQueue::Channel& ShardQueue::chan(std::size_t channel) const {
  NTTPIM_EXPECT_MSG(channel < channels_.size(), "channel index out of range");
  return channels_[channel];
}

ShardQueue::Channel& ShardQueue::chan(std::size_t channel) {
  NTTPIM_EXPECT_MSG(channel < channels_.size(), "channel index out of range");
  return channels_[channel];
}

bool ShardQueue::empty(sync::Mutex& mu) const noexcept {
  (void)mu;
  for (const Channel& c : channels_)
    if (!c.waves.empty()) return false;
  return true;
}

std::size_t ShardQueue::size(sync::Mutex& mu) const noexcept {
  (void)mu;
  std::size_t total = 0;
  for (const Channel& c : channels_) total += c.waves.size();
  return total;
}

std::uint64_t ShardQueue::queued_cycles(sync::Mutex& mu) const noexcept {
  (void)mu;
  std::uint64_t total = 0;
  for (const Channel& c : channels_) total += c.queued_cycles;
  return total;
}

std::uint64_t ShardQueue::backlog_cycles(sync::Mutex& mu) const noexcept {
  (void)mu;
  std::uint64_t total = 0;
  for (const Channel& c : channels_)
    total += c.queued_cycles + c.executing_cycles;
  return total;
}

void ShardQueue::push(std::size_t channel, QueuedWave&& wave,
                      sync::Mutex& mu) {
  (void)mu;
  // No capacity check: full() is advisory (see the header) — the open
  // Dispatcher blocks on it, the closing one pushes past it to drain.
  Channel& c = chan(channel);
  c.queued_cycles += wave.estimated_cycles;
  if (!deadline_ordered_) {
    c.waves.push_back(std::move(wave));
    return;
  }
  // (deadline, arrival)-ordered lane: insert ahead of every strictly
  // less-urgent wave. upper_bound keeps equal keys in insertion order,
  // and deadline-less waves (key +inf, seq ascending) land at the back —
  // exactly the FIFO append.
  const auto pos = std::upper_bound(
      c.waves.begin(), c.waves.end(), wave,
      [](const QueuedWave& a, const QueuedWave& b) {
        return a.more_urgent_than(b);
      });
  c.waves.insert(pos, std::move(wave));
}

std::uint64_t ShardQueue::queued_cycles_before(
    std::size_t channel, ServiceClock::time_point deadline, std::uint64_t seq,
    sync::Mutex& mu) const {
  (void)mu;
  QueuedWave key;
  key.deadline = deadline;
  key.seq = seq;
  std::uint64_t cycles = 0;
  for (const QueuedWave& w : chan(channel).waves) {
    if (!w.more_urgent_than(key)) break;  // lane is ordered by urgency
    cycles += w.estimated_cycles;
  }
  return cycles;
}

const QueuedWave& ShardQueue::wave_at(std::size_t channel, std::size_t i,
                                      sync::Mutex& mu) const {
  (void)mu;
  const Channel& c = chan(channel);
  NTTPIM_EXPECT_MSG(i < c.waves.size(), "wave index out of range");
  return c.waves[i];
}

QueuedWave& ShardQueue::wave_at(std::size_t channel, std::size_t i,
                                sync::Mutex& mu) {
  (void)mu;
  Channel& c = chan(channel);
  NTTPIM_EXPECT_MSG(i < c.waves.size(), "wave index out of range");
  return c.waves[i];
}

QueuedWave ShardQueue::take_at(std::size_t channel, std::size_t i,
                               sync::Mutex& mu) {
  (void)mu;
  Channel& c = chan(channel);
  NTTPIM_EXPECT_MSG(i < c.waves.size(), "take index out of range");
  QueuedWave wave = std::move(c.waves[i]);
  c.waves.erase(c.waves.begin() + static_cast<std::ptrdiff_t>(i));
  c.queued_cycles -= wave.estimated_cycles;
  return wave;
}

void ShardQueue::begin_wave(std::size_t channel, std::uint64_t estimated_cycles,
                            sync::Mutex& mu) {
  (void)mu;
  chan(channel).executing_cycles += estimated_cycles;
}

void ShardQueue::finish_wave(std::size_t channel,
                             std::uint64_t estimated_cycles, sync::Mutex& mu) {
  (void)mu;
  Channel& c = chan(channel);
  NTTPIM_EXPECT_MSG(c.executing_cycles >= estimated_cycles,
                    "finishing a wave that never began");
  c.executing_cycles -= estimated_cycles;
}

}  // namespace nttpim::service
