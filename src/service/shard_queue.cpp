#include "service/shard_queue.h"

#include <utility>

#include "common/check.h"

namespace nttpim::service {

ShardQueue::ShardQueue(std::size_t capacity_waves)
    : capacity_(capacity_waves) {
  NTTPIM_EXPECT_MSG(capacity_waves >= 1,
                    "a shard queue must hold at least one wave");
}

void ShardQueue::push(QueuedWave&& wave) {
  // No capacity check: full() is advisory (see the header) — the open
  // Dispatcher blocks on it, the closing one pushes past it to drain.
  queued_cycles_ += wave.estimated_cycles;
  waves_.push_back(std::move(wave));
}

const QueuedWave& ShardQueue::wave_at(std::size_t i) const {
  NTTPIM_EXPECT_MSG(i < waves_.size(), "wave index out of range");
  return waves_[i];
}

QueuedWave& ShardQueue::wave_at(std::size_t i) {
  NTTPIM_EXPECT_MSG(i < waves_.size(), "wave index out of range");
  return waves_[i];
}

QueuedWave ShardQueue::take_at(std::size_t i) {
  NTTPIM_EXPECT_MSG(i < waves_.size(), "take index out of range");
  QueuedWave wave = std::move(waves_[i]);
  waves_.erase(waves_.begin() + static_cast<std::ptrdiff_t>(i));
  queued_cycles_ -= wave.estimated_cycles;
  return wave;
}

void ShardQueue::begin_wave(std::uint64_t estimated_cycles) {
  executing_cycles_ += estimated_cycles;
}

void ShardQueue::finish_wave(std::uint64_t estimated_cycles) {
  NTTPIM_EXPECT_MSG(executing_cycles_ >= estimated_cycles,
                    "finishing a wave that never began");
  executing_cycles_ -= estimated_cycles;
}

}  // namespace nttpim::service
