#include "service/shard_queue.h"

#include <utility>

#include "common/check.h"

namespace nttpim::service {

ShardQueue::ShardQueue(std::size_t capacity_waves)
    : capacity_(capacity_waves) {
  NTTPIM_EXPECT_MSG(capacity_waves >= 1,
                    "a shard queue must hold at least one wave");
}

void ShardQueue::push(QueuedWave&& wave) {
  // No capacity check: full() is advisory (see the header) — the open
  // Dispatcher blocks on it, the closing one pushes past it to drain.
  queued_cycles_ += wave.estimated_cycles;
  waves_.push_back(std::move(wave));
}

QueuedWave ShardQueue::take_oldest() {
  NTTPIM_EXPECT_MSG(!waves_.empty(), "take from an empty shard queue");
  QueuedWave wave = std::move(waves_.front());
  waves_.pop_front();
  queued_cycles_ -= wave.estimated_cycles;
  return wave;
}

void ShardQueue::begin_wave(std::uint64_t estimated_cycles) {
  executing_cycles_ += estimated_cycles;
}

void ShardQueue::finish_wave(std::uint64_t estimated_cycles) {
  NTTPIM_EXPECT_MSG(executing_cycles_ >= estimated_cycles,
                    "finishing a wave that never began");
  executing_cycles_ -= estimated_cycles;
}

}  // namespace nttpim::service
