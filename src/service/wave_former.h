// Wave-forming coalescer: the bounded request queue of the serving runtime.
//
// Producers (client threads inside NttService::submit) push Requests into a
// bounded queue; consumers (shard workers) pop *waves* — groups of requests
// sized for one bank-parallel engine pass. A wave flushes when either
//  - the pending pile reaches max_wave_items (NttService sets this to a
//    multiple of the shard device's num_banks(), so a full wave occupies
//    every bank), or
//  - the oldest pending request has waited flush_window (latency bound:
//    coalescing trades queueing delay for occupancy, and the window caps
//    the delay a sparse load pays),
// whichever comes first. Consumers pull independently, so S shards drain
// the queue in parallel and the wave former doubles as the load balancer —
// an idle shard simply grabs the next wave.
//
// QoS (Config::edf): with EDF forming on, a pending *deadline* tightens
// the flush — the former flushes no later than the earliest pending
// deadline, so a latency-critical request never sits out the coalescing
// window behind bulk traffic — and waves are cut in EDF order (earliest
// effective deadline first, then priority descending, then arrival) rather
// than FIFO. Classless requests (no deadline, priority 0) carry an
// effective deadline of +inf and identical priority, so their mutual order
// degenerates to exact arrival order: a stream without QoS fields forms
// bit-identical waves whether edf is on or off.
//
// Capacity is measured in *batch items* (a multiply counts 2), matching
// what bounds device rows and engine-pass size. When full, submit() either
// blocks or rejects per OverflowPolicy — the service's backpressure.
//
// pause()/resume() gate consumers only: while paused, submissions pile up
// but no wave starts forming. This is how tests stage a deterministic
// backlog (guaranteeing occupancy > 1 without sleep-based races) and how
// an operator can stage work before opening the valve.
//
// close() stops new submissions (blocked producers wake and see kClosed),
// un-pauses, and lets consumers drain everything already accepted — the
// graceful-shutdown half of NttService::shutdown(). Once the queue is
// empty, next_wave() returns an empty vector, the consumers' exit signal.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "service/request.h"
#include "sync/mutex.h"

namespace nttpim::service {

class WaveFormer {
 public:
  struct Config {
    std::size_t capacity_items = 1024;   ///< queue bound, in batch items
    std::size_t max_wave_items = 8;      ///< flush size, in batch items
    std::chrono::microseconds flush_window{200};  ///< flush deadline
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    bool start_paused = false;
    /// EDF-within-flush-window forming (see the header comment). Off means
    /// pure FIFO: deadlines and priorities are carried but ignored — the
    /// num_classes = 1 service path and the QoS bench's FIFO baseline.
    bool edf = false;
    /// Testing hook: when set, enqueue timestamps and flush-window
    /// deadlines are read through this function instead of
    /// ServiceClock::now(), and deadline waits become plain condition
    /// waits — advance the fake time, then call tick() so parked
    /// consumers re-read it. Null (the default) means the real clock.
    std::function<ServiceClock::time_point()> clock;
  };

  enum class SubmitResult { kAccepted, kRejected, kClosed };

  /// Out-parameters of an accepted submit. The former stamps seq and the
  /// enqueue time under its lock *after* the request is moved in, so a
  /// caller that wants them back (telemetry emits the Submit /
  /// FormerEnqueue events from the client thread) receives them here.
  /// Only meaningful when submit() returned kAccepted.
  struct SubmitInfo {
    std::uint64_t seq = 0;
    ServiceClock::time_point enqueued{};
  };

  explicit WaveFormer(const Config& config);

  /// Enqueue one request. `request` is moved from only on kAccepted; on
  /// kRejected/kClosed the caller still owns it (and fails its promise).
  /// kBlock blocks until space or close(); kReject never blocks.
  SubmitResult submit(Request&& request, SubmitInfo* info = nullptr);

  /// Block until a wave is ready per the flush policy and return it.
  /// Returns an empty vector only when the former is closed and drained.
  /// Safe to call from many consumer threads.
  std::vector<Request> next_wave();

  void pause();
  void resume();
  void close();

  /// Companion of Config::clock: wake every parked consumer so it
  /// re-evaluates the (fake) time. A real clock needs no tick — the
  /// deadline wait expires on its own.
  void tick();

  std::size_t pending_items() const;
  bool closed() const;

 private:
  ServiceClock::time_point now() const {
    return cfg_.clock ? cfg_.clock() : ServiceClock::now();
  }

  /// Earliest flush instant of the current backlog: the front's
  /// window expiry, tightened (under EDF) by the earliest pending
  /// deadline. Caller holds mu_; queue_ must be non-empty.
  ServiceClock::time_point flush_deadline() const NTTPIM_REQUIRES(mu_);

  /// Cut one wave off the backlog (FIFO, or EDF order per Config::edf),
  /// updating pending_items_. Caller holds mu_; queue_ must be non-empty.
  std::vector<Request> cut_wave() NTTPIM_REQUIRES(mu_);

  const Config cfg_;
  mutable sync::Mutex mu_;
  sync::CondVar ready_cv_;  ///< consumers: work / flush / close
  sync::CondVar space_cv_;  ///< blocked producers
  std::deque<Request> queue_ NTTPIM_GUARDED_BY(mu_);
  std::size_t pending_items_ NTTPIM_GUARDED_BY(mu_) = 0;
  /// Arrival stamp (see Request::seq).
  std::uint64_t next_seq_ NTTPIM_GUARDED_BY(mu_) = 0;
  /// Cut stamp (see Request::wave_id).
  std::uint64_t next_wave_id_ NTTPIM_GUARDED_BY(mu_) = 1;
  bool paused_ NTTPIM_GUARDED_BY(mu_) = false;
  bool closed_ NTTPIM_GUARDED_BY(mu_) = false;
};

}  // namespace nttpim::service
