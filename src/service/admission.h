// Per-tenant token-bucket admission control.
//
// Admission sits *ahead of* the bounded request queue (see
// NttService::enqueue): a tenant that exceeds its contracted rate is shed
// immediately — its requests fail with AdmissionShedError without ever
// costing queue capacity, coalescing delay or a wave slot. That is the
// difference between admission and backpressure: backpressure (the
// former's bounded queue) protects the service from *aggregate* overload
// and punishes whoever submits next, while admission protects the
// well-behaved tenants from a flooding one and punishes exactly the
// flooder.
//
// Each tenant gets a classic token bucket: `burst` tokens of capacity,
// refilled continuously at `rate_per_sec`. One request costs one token;
// a request that finds the bucket empty is shed. Tenants beyond the
// configured vector (and tenants whose entry is unlimited()) are always
// admitted — admission is opt-in per tenant.
//
// The clock is injectable (same idiom as WaveFormer::Config::clock), so
// the refill arithmetic is testable to exact token counts without
// sleeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "service/request.h"
#include "sync/mutex.h"

namespace nttpim::service {

/// Rate contract of one tenant.
struct TokenBucketConfig {
  /// Sustained admission rate, tokens (requests) per second. 0 means the
  /// bucket never refills — the tenant gets exactly `burst` requests, a
  /// deterministic cap tests and staged benches rely on. Must be >= 0.
  double rate_per_sec = 0;
  /// Bucket capacity: the burst a tenant can spend at once (and the level
  /// a fresh bucket starts at). <= 0 marks the tenant unlimited.
  double burst = 0;

  bool unlimited() const noexcept { return burst <= 0; }
};

/// Thread-safe token-bucket bank, one bucket per configured tenant.
class AdmissionController {
 public:
  struct Config {
    /// Bucket per tenant id; tenants at or beyond the end are unlimited.
    std::vector<TokenBucketConfig> tenants;
    /// Testing hook: refill time source (null = ServiceClock::now()).
    std::function<ServiceClock::time_point()> clock;
  };

  enum class Decision { kAdmit, kShed };

  explicit AdmissionController(Config config);

  /// Charge one token to `tenant`'s bucket. kShed when the bucket (after
  /// refill at the current clock) holds less than one token; unlimited
  /// tenants always admit without touching any bucket.
  Decision admit(std::uint32_t tenant);

  /// Current token level of `tenant`'s bucket, refilled to the current
  /// clock (burst for unlimited tenants). Testing/observability only.
  double tokens(std::uint32_t tenant) const;

 private:
  struct Bucket {
    double tokens = 0;
    ServiceClock::time_point last{};  ///< refill high-water mark
  };

  ServiceClock::time_point now() const {
    return cfg_.clock ? cfg_.clock() : ServiceClock::now();
  }
  /// Refill `b` for the time elapsed since its last refill. Caller holds mu_.
  void refill(std::size_t tenant, Bucket& b, ServiceClock::time_point at) const
      NTTPIM_REQUIRES(mu_);

  const Config cfg_;
  mutable sync::Mutex mu_;
  /// Parallel to cfg_.tenants.
  mutable std::vector<Bucket> buckets_ NTTPIM_GUARDED_BY(mu_);
};

}  // namespace nttpim::service
