// NttService: the async serving front end of the NTT-PIM stack.
//
//   client threads                 NttService
//   --------------   submit()   -----------------------------------------
//   poly, params  ------------>  bounded queue --> wave former --> shard 0
//   future/callback   <-------   (backpressure)    (coalesce to    shard 1
//                                                   mixed waves)     ...
//                                                                  shard S-1
//
// Every entry point of the repo so far drives a backend synchronously:
// one caller, one transform, one engine pass — wave occupancy 1. The
// paper's deployment model is the opposite shape: many independent hosts
// issue NTT "write requests" and the PIM executes them bank-parallel.
// NttService closes that gap. Requests from any number of client threads
// are coalesced by a WaveFormer into *mixed waves* (each request keeps its
// own modulus and direction — the heterogeneous batching built in
// transform_batch_mixed), and each wave is executed by one of S shards.
//
// A shard is a worker thread owning a private fhe::NttBackend built from
// its BackendConfig descriptor — a simulated PIM device with its plan
// cache, or a host-CPU worker pool (see service/backend.h). The backend
// lives entirely on its worker thread, so independent backends run in
// parallel while every plan cache stays thread-confined (no locking on
// the hot path, which is also the TSan story: shard state is owned, not
// shared). Mixing kinds is the point: the default config is PIM-only, but
// a descriptor list like {pim8, cpu2} reproduces the paper's deployment
// shape where the host CPU path coexists with the accelerator, absorbing
// small transforms and overflow while bulk waves stay in-memory.
//
// Request kinds:
//  - transform: forward/inverse negacyclic NTT of one polynomial;
//  - multiply: negacyclic product a*b — the shard folds both forward
//    transforms into the wave's engine pass, does the pointwise product on
//    the host, and runs the inverse transforms of the wave's multiplies as
//    one second pass.
//
// Between the former and the shards sits a Dispatcher (dispatcher.h):
// formed waves are priced per shard by each backend's own cost model
// (NttBackend::estimate_wave_cycles — one modeled-cycle unit across
// backends) and assigned to the (shard, channel) pair that would clear
// them soonest — a channel being one independent command bus of a
// multi-channel PIM device (dram::DramGeometry::num_channels). Each
// worker group-pops one wave per channel of its shard and merges them,
// channel-pinned, into a single bus-overlapped engine pass; channels left
// empty rebalance from loaded siblings, and only a fully idle shard
// steals the oldest compatible queued wave of the most-loaded peer —
// whole-wave steals, so every wave still executes entirely on one
// thread-confined backend.
//
// Results come back through a std::future or a fire-and-forget Callback.
// Backpressure is a bounded queue with block/reject policies; shutdown()
// drains everything accepted before joining the shards. stats() is safe
// to call at any time from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>  // std::once_flag only; locking goes through sync::Mutex
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/backend.h"
#include "service/dispatcher.h"
#include "service/request.h"
#include "service/stats.h"
#include "service/wave_former.h"
#include "sync/mutex.h"
#include "telemetry/trace_collector.h"

namespace nttpim::fhe {
class NttBackend;
}

namespace nttpim::service {

/// Wave-forming / admission half of the service configuration.
struct FormerConfig {
  /// Bounded-queue capacity, in batch items (a multiply counts 2).
  std::size_t queue_capacity = 1024;
  /// Waves flush at wave_multiple * (banks_per_shard / channels_per_shard)
  /// batch items — one *channel's* bank set: 1 fills every bank of one
  /// command bus once (the dispatcher then spreads waves across a shard's
  /// channels and the worker merges one per channel into a single engine
  /// pass); k > 1 additionally stacks k items per bank (amortizing pass
  /// overhead at the cost of latency). CPU shards have no banks — waves
  /// stay channel-sized and the CPU lanes simply split whatever arrives.
  std::size_t wave_multiple = 1;
  /// ... or flush when the oldest pending request has waited this long.
  std::chrono::microseconds flush_window{200};
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Start with wave forming gated; call resume() to open the valve.
  /// (Deterministic staging for tests and pre-warmed deployments.)
  bool start_paused = false;
};

/// Dispatch-policy half of the service configuration.
struct DispatchConfig {
  /// Depth of each shard's dispatch queue, in waves. Deeper queues give
  /// the cost-aware assignment and the thieves more to work with; 1
  /// approaches the PR-4 behavior of handing each wave to the next free
  /// shard.
  std::size_t shard_queue_waves = 4;
  /// Price each formed wave per shard (each backend's own
  /// estimate_wave_cycles, scaled by its descriptor's cost_scale) and
  /// assign it to the shard that would clear it soonest. false = blind
  /// round-robin — the FIFO baseline of the dispatch bench.
  bool cost_aware_dispatch = true;
  /// Let a shard whose queue is empty steal the oldest compatible queued
  /// wave from the most-loaded peer (whole-wave steals; see dispatcher.h).
  bool work_stealing = true;
};

/// Execution-tier half of the service configuration: what the shards are.
struct BackendConfig {
  /// When `descriptors` is empty: number of identical PIM shards to build
  /// from the three fields below. Ignored otherwise.
  std::size_t shards = 1;
  /// Banks per default PIM shard device — with channels_per_shard, also
  /// the wave-sizing unit of the former (see FormerConfig::wave_multiple),
  /// regardless of the descriptor list.
  std::size_t banks_per_shard = 8;
  /// Independent command channels per default PIM shard device; the banks
  /// split evenly across them (banks_per_shard must be a multiple). Waves
  /// are sized to one channel's bank set and dispatched per (shard,
  /// channel), so a worker's group pop merges up to channels_per_shard
  /// waves into a single bus-overlapped engine pass (see dispatcher.h).
  std::size_t channels_per_shard = 1;
  /// Per-bank CU buffers (Nb) of each default PIM shard device.
  std::size_t num_buffers = 4;
  /// Device clock for the modeled-cycle accounting (default descriptors
  /// only; explicit descriptors carry their own).
  double freq_mhz = 1200.0;
  /// Explicit shard list: one backend per descriptor, in worker order
  /// (see make_pim_descriptor / make_cpu_descriptor). Non-empty wins over
  /// `shards`; this is how a heterogeneous tier — PIM devices plus CPU
  /// workers — is configured.
  std::vector<BackendDescriptor> descriptors;
};

/// Multi-tenant QoS half of the service configuration.
///
/// `num_classes = 1` (the default) keeps the whole QoS machinery inert:
/// FIFO forming, append-order lanes, no admission control, a single
/// classless stats entry — behavior-identical to the pre-QoS service by
/// construction, whatever the other fields say. With num_classes > 1,
/// requests carry a RequestClass (tenant < num_classes enforced at
/// submit) and the three policy levers below activate.
struct QosConfig {
  /// Distinct request classes (tenants) the service accepts; sizes the
  /// per-class stats and bounds RequestClass::tenant.
  std::size_t num_classes = 1;
  /// EDF-within-flush-window wave forming: the former flushes no later
  /// than the earliest pending deadline and cuts waves in (deadline,
  /// priority, arrival) order (see wave_former.h).
  bool edf_forming = true;
  /// Deadline-pressure dispatch: (deadline, arrival)-ordered lanes,
  /// jump-ahead ETA pricing for deadlined waves, and most-deadline-urgent
  /// steal target selection (see dispatcher.h).
  bool deadline_pressure = true;
  /// Per-tenant token buckets, indexed by tenant id (see admission.h).
  /// Empty (the default) admits everything; tenants beyond the vector are
  /// unlimited. A shed request fails with AdmissionShedError *before*
  /// touching the bounded queue and is counted per class.
  std::vector<TokenBucketConfig> admission;
};

/// Observability half of the service configuration: per-request
/// lifecycle tracing (src/telemetry/). The per-class stage breakdown
/// (ClassStats::stages) is always on — it rides the existing stats lock;
/// what this gates is the event stream behind the Chrome/Perfetto trace
/// export (telemetry/chrome_trace.h).
struct TelemetryConfig {
  /// Record lifecycle TraceEvents into per-thread rings, drainable via
  /// NttService::trace_collector(). Off (the default): no ring is ever
  /// allocated and every instrumentation point costs one relaxed atomic
  /// load and a branch.
  bool enabled = false;
  /// Per-thread ring capacity in events (rounded up to a power of two).
  /// Overflow drops the new event and counts it exactly
  /// (ServiceStats::trace_dropped_events) — never blocks a hot path.
  std::size_t ring_capacity = 1 << 14;
};

/// Service configuration, one sub-struct per layer of the pipeline:
/// admission + classing (qos), coalescing (former), routing (dispatch),
/// execution (backend), observability (telemetry).
struct ServiceConfig {
  BackendConfig backend;
  FormerConfig former;
  DispatchConfig dispatch;
  QosConfig qos;
  TelemetryConfig telemetry;
};

class NttService {
 public:
  /// Spawns the shard workers and returns once every shard has finished
  /// constructing its backend (a multi-bank PimBackend zeroes hundreds of
  /// MB of simulated DRAM — without the barrier, early traffic would race
  /// S concurrent constructions and measure boot, not serving). Throws if
  /// any shard's backend fails to construct.
  explicit NttService(const ServiceConfig& config = {});
  ~NttService();  ///< shutdown(): drains accepted work, joins shards

  NttService(const NttService&) = delete;
  NttService& operator=(const NttService&) = delete;

  /// Async forward/inverse negacyclic NTT of `poly` (moved in). The future
  /// yields the transformed coefficients, or throws QueueFullError /
  /// ServiceStoppedError (backpressure) or the execution error. Direction
  /// and QoS hints travel in `options` (see SubmitOptions).
  std::future<std::vector<std::uint32_t>> submit(
      std::vector<std::uint32_t> poly,
      std::shared_ptr<const ntt::NttParams> params, SubmitOptions options = {});

  /// Fire-and-forget variant: `done` runs on a shard thread (see Callback).
  void submit(std::vector<std::uint32_t> poly,
              std::shared_ptr<const ntt::NttParams> params,
              const SubmitOptions& options, Callback done);

  /// Async negacyclic product a*b in Z_q[X]/(X^N + 1). `options.inverse`
  /// is ignored (the product defines its own directions).
  std::future<std::vector<std::uint32_t>> submit_multiply(
      std::vector<std::uint32_t> a, std::vector<std::uint32_t> b,
      std::shared_ptr<const ntt::NttParams> params, SubmitOptions options = {});

  /// Gate / un-gate wave forming (submissions keep accumulating while
  /// paused). Pausing never interrupts a wave already executing.
  void pause();
  void resume();

  /// Block until every request accepted so far has completed or failed.
  /// The service keeps accepting new work; with concurrent submitters this
  /// is a moving target — it returns at some instant where the backlog hit
  /// zero. Do not call from a Callback (deadlocks the shard on itself).
  void drain();

  /// Graceful stop: no new submissions (they fail with
  /// ServiceStoppedError), every *accepted* request still executes, then
  /// the shard threads are joined. Idempotent and thread-safe; implied by
  /// the destructor. Un-pauses a paused service so the backlog drains.
  void shutdown();

  /// Snapshot, callable at any time from any thread. The request/wave
  /// counters are read atomically as a group; the latency summaries are
  /// sampled alongside but not under the same lock, so a wave completing
  /// concurrently may show its latency samples one snapshot before its
  /// counters (drain() first for fully settled numbers).
  ServiceStats stats() const;

  /// Zero the counters and latency windows so a subsequent stats() covers
  /// only traffic from this point on — the post-warmup idiom of a load
  /// test or a fresh deployment. Requests in flight stay pending (the
  /// snapshot's `pending` survives a reset); they complete into the new
  /// counting epoch.
  void reset_stats();

  /// The lifecycle trace rings (inert unless config().telemetry.enabled).
  /// drain() a Snapshot at a quiesce point and hand it to
  /// telemetry::write_chrome_trace for a Perfetto-loadable timeline.
  telemetry::TraceCollector& trace_collector() noexcept { return collector_; }
  const telemetry::TraceCollector& trace_collector() const noexcept {
    return collector_;
  }

  const ServiceConfig& config() const noexcept { return cfg_; }
  /// Resolved shard descriptors, in worker order (the defaults-expanded
  /// form of config().backend).
  const std::vector<BackendDescriptor>& shard_descriptors() const noexcept {
    return resolved_;
  }
  std::size_t shards() const noexcept { return resolved_.size(); }
  /// Banks of each default PIM shard device == batch items of a full
  /// wave_multiple=1 wave.
  std::size_t num_banks() const noexcept { return cfg_.backend.banks_per_shard; }
  /// Request classes the service accepts (>= 1; see QosConfig).
  std::size_t num_classes() const noexcept { return cfg_.qos.num_classes; }

 private:
  void enqueue(Request&& request);
  void worker(std::size_t shard);
  void dispatch_loop();
  std::uint64_t estimate_wave(std::size_t shard,
                              std::vector<Request>& wave) const;
  void execute_group(std::size_t shard, fhe::NttBackend& backend,
                     std::vector<Dispatcher::NextWave>& group);
  void validate(const Request& request) const;

  const ServiceConfig cfg_;
  /// One descriptor per shard: config().backend.descriptors, or `shards`
  /// copies of the default PIM descriptor.
  const std::vector<BackendDescriptor> resolved_;
  /// Lifecycle trace rings (see TelemetryConfig). Before the worker
  /// threads in declaration order, so it outlives every emitting thread.
  telemetry::TraceCollector collector_;
  /// Engaged iff qos.num_classes > 1 and qos.admission is non-empty:
  /// consulted by enqueue() before the former ever sees the request.
  std::optional<AdmissionController> admission_;
  WaveFormer former_;
  Dispatcher dispatcher_;
  /// Shard backends by index, published by each worker (release store)
  /// before the readiness barrier (null = that shard's construction
  /// failed). The dispatch thread and stealing workers read them through
  /// the share-readable estimate path with an acquire load — pairing with
  /// the publication store, so a reader that sees a pointer sees the
  /// fully constructed backend behind it — and only after the barrier.
  std::vector<std::atomic<fhe::NttBackend*>> backends_;

  mutable sync::Mutex stats_mu_;
  sync::CondVar idle_cv_;  ///< drain() + constructor barrier
  std::size_t shards_ready_ NTTPIM_GUARDED_BY(stats_mu_) = 0;
  std::exception_ptr construction_error_ NTTPIM_GUARDED_BY(stats_mu_);
  std::uint64_t submitted_ NTTPIM_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t accepted_ NTTPIM_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t completed_ NTTPIM_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t rejected_ NTTPIM_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t failed_ NTTPIM_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t waves_ NTTPIM_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t engine_passes_ NTTPIM_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t batch_items_ NTTPIM_GUARDED_BY(stats_mu_) = 0;
  std::vector<ShardStats> shard_stats_ NTTPIM_GUARDED_BY(stats_mu_);
  /// Per-class counter tile of ClassStats (size num_classes; the latency
  /// halves live in the recorders below). Guarded by stats_mu_.
  struct ClassCounters {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t deadline_misses = 0;
  };
  std::vector<ClassCounters> class_counters_ NTTPIM_GUARDED_BY(stats_mu_);
  /// Per-class stage-latency sums (microseconds) behind
  /// ClassStats::stages; stats() divides by count. Guarded by stats_mu_.
  struct StageTotals {
    std::uint64_t count = 0;
    double admission_us = 0;
    double former_us = 0;
    double shard_queue_us = 0;
    double execute_us = 0;
    double completion_us = 0;
  };
  std::vector<StageTotals> stage_totals_ NTTPIM_GUARDED_BY(stats_mu_);

  LatencyRecorder queue_latency_;
  LatencyRecorder service_latency_;
  /// Per-class latency recorders, indexed by tenant (size num_classes).
  /// LatencyRecorder is internally locked, so these need no stats_mu_.
  std::vector<LatencyRecorder> class_queue_latency_;
  std::vector<LatencyRecorder> class_service_latency_;

  std::once_flag shutdown_once_;
  // Threads last: joined before any state above tears down. The dispatch
  // thread is joined first (it closes the dispatcher, releasing workers).
  std::thread dispatch_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace nttpim::service
