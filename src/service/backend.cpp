#include "service/backend.h"

#include <algorithm>

#include "common/check.h"
#include "dram/config.h"
#include "fhe/cpu_backend.h"
#include "fhe/pim_backend.h"

namespace nttpim::service {

const char* to_string(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kPim:
      return "pim";
    case BackendKind::kCpu:
      return "cpu";
  }
  return "?";
}

BackendDescriptor make_pim_descriptor(std::size_t banks_per_shard,
                                      std::size_t num_buffers,
                                      double freq_mhz, double cost_scale,
                                      std::size_t channels) {
  NTTPIM_EXPECT_MSG(banks_per_shard >= 1,
                    "a PIM shard device needs at least one bank");
  NTTPIM_EXPECT_MSG(num_buffers >= 2,
                    "the PIM backend needs C2 support (Nb >= 2)");
  NTTPIM_EXPECT_MSG(cost_scale > 0, "cost_scale must be positive");
  NTTPIM_EXPECT_MSG(channels >= 1 && banks_per_shard % channels == 0,
                    "banks must divide evenly across channels");
  BackendDescriptor d;
  d.kind = BackendKind::kPim;
  d.label = "pim" + std::to_string(banks_per_shard) +
            (channels > 1 ? "x" + std::to_string(channels) : "");
  d.cost_scale = cost_scale;
  d.channels = channels;
  d.factory = [banks_per_shard, num_buffers, freq_mhz, channels] {
    return std::make_unique<fhe::PimBackend>(
        num_buffers, freq_mhz,
        dram::hbm2e_geometry(banks_per_shard, channels));
  };
  return d;
}

BackendDescriptor make_cpu_descriptor(std::size_t threads, double cost_scale,
                                      double freq_mhz,
                                      double cycles_per_point_stage) {
  NTTPIM_EXPECT_MSG(cost_scale > 0, "cost_scale must be positive");
  fhe::CpuBackend::Config cc;
  cc.threads = threads;
  cc.freq_mhz = freq_mhz;
  if (cycles_per_point_stage > 0)
    cc.cycles_per_point_stage = cycles_per_point_stage;
  NTTPIM_EXPECT_MSG(cc.freq_mhz > 0, "the modeled clock must be positive");
  BackendDescriptor d;
  d.kind = BackendKind::kCpu;
  d.label = "cpu" + std::to_string(std::max<std::size_t>(1, threads));
  d.cost_scale = cost_scale;
  d.factory = [cc] { return std::make_unique<fhe::CpuBackend>(cc); };
  return d;
}

}  // namespace nttpim::service
