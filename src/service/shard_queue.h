// Per-shard dispatch queue: bounded FIFOs of priced waves, one per
// channel of the shard's device.
//
// The dispatch layer (see dispatcher.h) holds one ShardQueue per shard,
// split into `channels` sub-queues — one per independent command bus of
// the shard's backend (see dram::DramGeometry::num_channels; CPU shards
// have one). Each entry is a formed wave plus the dispatcher's cycle
// estimate for it; every channel keeps two running cost sums the
// dispatcher's decisions read:
//  - queued_cycles: estimates of the waves sitting in the channel's deque
//    (what a thief can relieve a loaded channel of);
//  - executing_cycles: estimates of waves this shard's worker has popped
//    from the channel but not yet finished (committed work no steal can
//    move).
// Their per-channel sum, backlog_cycles(channel), is that channel's
// estimated time-to-idle — the quantity (shard, channel) assignment
// minimizes and stealing balances; the channel-less overloads sum over
// channels for shard-level decisions (victim choice, stats).
//
// ShardQueue is deliberately NOT self-locking: whole-wave steals must
// inspect and mutate two queues atomically, so the owning Dispatcher
// serializes every access under its single mutex. Waves are coarse (one
// bank-parallel engine pass each), so that one lock is nowhere near the
// hot path.
//
// That external-locking contract is not prose alone: every accessor and
// mutator takes the owning mutex by reference and is annotated
// NTTPIM_REQUIRES(mu), so a clang -Wthread-safety build rejects any call
// site that does not provably hold the dispatcher's lock. The reference is
// unused at runtime — it exists purely as the capability token the
// analysis checks (TSA resolves parameter-named capabilities against the
// lock the caller actually holds, which member-pointer aliases cannot
// express).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "service/request.h"
#include "sync/mutex.h"

namespace nttpim::service {

/// One unit of dispatch: a formed wave plus its estimated execution cost
/// in modeled device cycles (see PimBackend::estimate_wave_cycles) and its
/// urgency key — the earliest effective deadline and earliest arrival
/// sequence across its requests, stamped by the Dispatcher at dispatch().
struct QueuedWave {
  std::vector<Request> requests;
  /// Former-stamped monotone wave id (Request::wave_id of its requests;
  /// 0 only for hand-built test waves). Travels with the wave through
  /// steals and rebalances, so a moved wave stays identifiable in
  /// telemetry and logs.
  std::uint64_t wave_id = 0;
  std::uint64_t estimated_cycles = 0;
  /// min over requests of RequestClass::edf_deadline() (+inf = no
  /// deadline anywhere in the wave).
  ServiceClock::time_point deadline = ServiceClock::time_point::max();
  std::uint64_t seq = 0;  ///< min over requests of Request::seq

  /// Lane-ordering key: earlier deadline first, arrival breaks ties — so
  /// with no deadlines anywhere the order is exactly arrival (FIFO).
  bool more_urgent_than(const QueuedWave& other) const noexcept {
    if (deadline != other.deadline) return deadline < other.deadline;
    return seq < other.seq;
  }
};

class ShardQueue {
 public:
  /// `capacity_waves` is the advisory per-channel bound full() reports.
  /// The queue itself admits pushes past it: capacity is the Dispatcher's
  /// policy (it blocks on full() while open), and its close() drain path
  /// relies on over-capacity pushes to land the tail waves instead of
  /// blocking against workers that may already be gone.
  ///
  /// `deadline_ordered` switches each channel's lane from append-order
  /// (FIFO) to (deadline, arrival) order: push() inserts each wave ahead
  /// of every less-urgent one, so index 0 — what both the owner and a
  /// thief take — is always the most-deadline-urgent wave. Waves without
  /// deadlines carry +inf and thus still drain FIFO among themselves.
  explicit ShardQueue(std::size_t capacity_waves,
                      std::size_t num_channels = 1,
                      bool deadline_ordered = false);

  /// Channel count is fixed at construction and safe to read unlocked.
  std::size_t channels() const noexcept { return channels_.size(); }

  /// Every channel's deque is empty.
  bool empty(sync::Mutex& mu) const noexcept NTTPIM_REQUIRES(mu);
  bool empty(std::size_t channel, sync::Mutex& mu) const NTTPIM_REQUIRES(mu) {
    (void)mu;
    return chan(channel).waves.empty();
  }
  bool full(std::size_t channel, sync::Mutex& mu) const NTTPIM_REQUIRES(mu) {
    (void)mu;
    return chan(channel).waves.size() >= capacity_;
  }
  /// Queued waves across channels.
  std::size_t size(sync::Mutex& mu) const noexcept NTTPIM_REQUIRES(mu);
  std::size_t size(std::size_t channel, sync::Mutex& mu) const
      NTTPIM_REQUIRES(mu) {
    (void)mu;
    return chan(channel).waves.size();
  }

  std::uint64_t queued_cycles(sync::Mutex& mu) const noexcept
      NTTPIM_REQUIRES(mu);
  std::uint64_t queued_cycles(std::size_t channel, sync::Mutex& mu) const
      NTTPIM_REQUIRES(mu) {
    (void)mu;
    return chan(channel).queued_cycles;
  }
  /// Estimated cycles queued on `channel` *ahead of* a wave with urgency
  /// key (deadline, seq) — i.e. the queued work a deadline-ordered lane
  /// would execute first. The deadline-pressure half of assignment prices
  /// an urgent wave's ETA against this instead of the whole-lane backlog,
  /// because the lane lets the urgent wave jump the rest.
  std::uint64_t queued_cycles_before(std::size_t channel,
                                     ServiceClock::time_point deadline,
                                     std::uint64_t seq, sync::Mutex& mu) const
      NTTPIM_REQUIRES(mu);
  std::uint64_t executing_cycles(std::size_t channel, sync::Mutex& mu) const
      NTTPIM_REQUIRES(mu) {
    (void)mu;
    return chan(channel).executing_cycles;
  }
  std::uint64_t backlog_cycles(sync::Mutex& mu) const noexcept
      NTTPIM_REQUIRES(mu);
  std::uint64_t backlog_cycles(std::size_t channel, sync::Mutex& mu) const
      NTTPIM_REQUIRES(mu) {
    (void)mu;
    const Channel& c = chan(channel);
    return c.queued_cycles + c.executing_cycles;
  }

  /// Enqueue a priced wave on one channel (dispatcher side): appended in
  /// FIFO mode, inserted in (deadline, arrival) order when the queue is
  /// deadline_ordered.
  void push(std::size_t channel, QueuedWave&& wave, sync::Mutex& mu)
      NTTPIM_REQUIRES(mu);

  /// Remove and return the front wave queued on `channel` — the oldest
  /// (FIFO mode) or the most-deadline-urgent (deadline_ordered). Both the
  /// owner and a thief take from this end: the owner for latency fairness,
  /// the thief because the front wave has waited longest (or is most at
  /// risk of missing its deadline) and is the least likely to still be
  /// wanted by a busy owner.
  QueuedWave take_oldest(std::size_t channel, sync::Mutex& mu)
      NTTPIM_REQUIRES(mu) {
    return take_at(channel, 0, mu);
  }

  /// Inspect the i-th wave of one channel (0 = oldest) without removing it
  /// — how a thief checks backend compatibility before committing to a
  /// steal. (Mutable overload because the Estimator signature takes the
  /// request vector mutably; estimators must not actually modify it.)
  const QueuedWave& wave_at(std::size_t channel, std::size_t i,
                            sync::Mutex& mu) const NTTPIM_REQUIRES(mu);
  QueuedWave& wave_at(std::size_t channel, std::size_t i, sync::Mutex& mu)
      NTTPIM_REQUIRES(mu);

  /// Remove and return the i-th wave of one channel (0 = oldest):
  /// take_oldest() generalized so a thief can skip waves its backend
  /// cannot run.
  QueuedWave take_at(std::size_t channel, std::size_t i, sync::Mutex& mu)
      NTTPIM_REQUIRES(mu);

  /// Account a wave this shard's worker started / finished executing on
  /// `channel` (the wave may have been taken from a *peer's* deque or
  /// another channel — the cost always follows the executor).
  void begin_wave(std::size_t channel, std::uint64_t estimated_cycles,
                  sync::Mutex& mu) NTTPIM_REQUIRES(mu);
  void finish_wave(std::size_t channel, std::uint64_t estimated_cycles,
                   sync::Mutex& mu) NTTPIM_REQUIRES(mu);

 private:
  struct Channel {
    std::deque<QueuedWave> waves;
    std::uint64_t queued_cycles = 0;
    std::uint64_t executing_cycles = 0;
  };

  // Private helpers carry no annotations: the capability lives on the
  // public API above, and every path to a Channel goes through it.
  const Channel& chan(std::size_t channel) const;
  Channel& chan(std::size_t channel);

  std::size_t capacity_;
  bool deadline_ordered_;
  std::vector<Channel> channels_;
};

}  // namespace nttpim::service
