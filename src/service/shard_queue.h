// Per-shard dispatch queue: bounded FIFOs of priced waves, one per
// channel of the shard's device.
//
// The dispatch layer (see dispatcher.h) holds one ShardQueue per shard,
// split into `channels` sub-queues — one per independent command bus of
// the shard's backend (see dram::DramGeometry::num_channels; CPU shards
// have one). Each entry is a formed wave plus the dispatcher's cycle
// estimate for it; every channel keeps two running cost sums the
// dispatcher's decisions read:
//  - queued_cycles: estimates of the waves sitting in the channel's deque
//    (what a thief can relieve a loaded channel of);
//  - executing_cycles: estimates of waves this shard's worker has popped
//    from the channel but not yet finished (committed work no steal can
//    move).
// Their per-channel sum, backlog_cycles(channel), is that channel's
// estimated time-to-idle — the quantity (shard, channel) assignment
// minimizes and stealing balances; the channel-less overloads sum over
// channels for shard-level decisions (victim choice, stats).
//
// ShardQueue is deliberately NOT self-locking: whole-wave steals must
// inspect and mutate two queues atomically, so the owning Dispatcher
// serializes every access under its single mutex. Waves are coarse (one
// bank-parallel engine pass each), so that one lock is nowhere near the
// hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "service/request.h"

namespace nttpim::service {

/// One unit of dispatch: a formed wave plus its estimated execution cost
/// in modeled device cycles (see PimBackend::estimate_wave_cycles).
struct QueuedWave {
  std::vector<Request> requests;
  std::uint64_t estimated_cycles = 0;
};

class ShardQueue {
 public:
  /// `capacity_waves` is the advisory per-channel bound full() reports.
  /// The queue itself admits pushes past it: capacity is the Dispatcher's
  /// policy (it blocks on full() while open), and its close() drain path
  /// relies on over-capacity pushes to land the tail waves instead of
  /// blocking against workers that may already be gone.
  explicit ShardQueue(std::size_t capacity_waves,
                      std::size_t num_channels = 1);

  std::size_t channels() const noexcept { return channels_.size(); }

  bool empty() const noexcept;  ///< every channel's deque is empty
  bool empty(std::size_t channel) const {
    return chan(channel).waves.empty();
  }
  bool full(std::size_t channel) const {
    return chan(channel).waves.size() >= capacity_;
  }
  std::size_t size() const noexcept;  ///< queued waves across channels
  std::size_t size(std::size_t channel) const {
    return chan(channel).waves.size();
  }

  std::uint64_t queued_cycles() const noexcept;
  std::uint64_t queued_cycles(std::size_t channel) const {
    return chan(channel).queued_cycles;
  }
  std::uint64_t executing_cycles(std::size_t channel) const {
    return chan(channel).executing_cycles;
  }
  std::uint64_t backlog_cycles() const noexcept;
  std::uint64_t backlog_cycles(std::size_t channel) const {
    const Channel& c = chan(channel);
    return c.queued_cycles + c.executing_cycles;
  }

  /// Append a priced wave to one channel's deque (dispatcher side).
  void push(std::size_t channel, QueuedWave&& wave);

  /// Remove and return the oldest wave queued on `channel`. Both the owner
  /// and a thief take from this end: the owner for FIFO latency fairness,
  /// the thief because the oldest wave has waited longest and is the least
  /// likely to still be wanted by a busy owner.
  QueuedWave take_oldest(std::size_t channel) { return take_at(channel, 0); }

  /// Inspect the i-th wave of one channel (0 = oldest) without removing it
  /// — how a thief checks backend compatibility before committing to a
  /// steal. (Mutable overload because the Estimator signature takes the
  /// request vector mutably; estimators must not actually modify it.)
  const QueuedWave& wave_at(std::size_t channel, std::size_t i) const;
  QueuedWave& wave_at(std::size_t channel, std::size_t i);

  /// Remove and return the i-th wave of one channel (0 = oldest):
  /// take_oldest() generalized so a thief can skip waves its backend
  /// cannot run.
  QueuedWave take_at(std::size_t channel, std::size_t i);

  /// Account a wave this shard's worker started / finished executing on
  /// `channel` (the wave may have been taken from a *peer's* deque or
  /// another channel — the cost always follows the executor).
  void begin_wave(std::size_t channel, std::uint64_t estimated_cycles);
  void finish_wave(std::size_t channel, std::uint64_t estimated_cycles);

 private:
  struct Channel {
    std::deque<QueuedWave> waves;
    std::uint64_t queued_cycles = 0;
    std::uint64_t executing_cycles = 0;
  };

  const Channel& chan(std::size_t channel) const;
  Channel& chan(std::size_t channel);

  std::size_t capacity_;
  std::vector<Channel> channels_;
};

}  // namespace nttpim::service
