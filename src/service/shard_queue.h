// Per-shard dispatch queue: a bounded FIFO of priced waves.
//
// The dispatch layer (see dispatcher.h) holds one ShardQueue per shard.
// Each entry is a formed wave plus the dispatcher's cycle estimate for it;
// the queue keeps two running cost sums the dispatcher's decisions read:
//  - queued_cycles: estimates of the waves sitting in the deque (what a
//    thief can relieve a loaded shard of);
//  - executing_cycles: estimates of waves this shard's worker has popped
//    but not yet finished (committed work no steal can move).
// Their sum, backlog_cycles(), is the shard's estimated time-to-idle — the
// quantity cost-aware assignment minimizes and stealing balances.
//
// ShardQueue is deliberately NOT self-locking: whole-wave steals must
// inspect and mutate two queues atomically, so the owning Dispatcher
// serializes every access under its single mutex. Waves are coarse (one
// bank-parallel engine pass each), so that one lock is nowhere near the
// hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "service/request.h"

namespace nttpim::service {

/// One unit of dispatch: a formed wave plus its estimated execution cost
/// in modeled device cycles (see PimBackend::estimate_wave_cycles).
struct QueuedWave {
  std::vector<Request> requests;
  std::uint64_t estimated_cycles = 0;
};

class ShardQueue {
 public:
  /// `capacity_waves` is the advisory bound full() reports. The queue
  /// itself admits pushes past it: capacity is the Dispatcher's policy
  /// (it blocks on full() while open), and its close() drain path relies
  /// on over-capacity pushes to land the tail waves instead of blocking
  /// against workers that may already be gone.
  explicit ShardQueue(std::size_t capacity_waves);

  bool empty() const noexcept { return waves_.empty(); }
  bool full() const noexcept { return waves_.size() >= capacity_; }
  std::size_t size() const noexcept { return waves_.size(); }

  std::uint64_t queued_cycles() const noexcept { return queued_cycles_; }
  std::uint64_t executing_cycles() const noexcept {
    return executing_cycles_;
  }
  std::uint64_t backlog_cycles() const noexcept {
    return queued_cycles_ + executing_cycles_;
  }

  /// Append a priced wave (dispatcher side).
  void push(QueuedWave&& wave);

  /// Remove and return the oldest queued wave. Both the owner and a thief
  /// take from this end: the owner for FIFO latency fairness, the thief
  /// because the oldest wave has waited longest and is the least likely to
  /// still be wanted by a busy owner.
  QueuedWave take_oldest() { return take_at(0); }

  /// Inspect the i-th queued wave (0 = oldest) without removing it — how
  /// a thief checks backend compatibility before committing to a steal.
  /// (Mutable overload because the Estimator signature takes the request
  /// vector mutably; estimators must not actually modify it.)
  const QueuedWave& wave_at(std::size_t i) const;
  QueuedWave& wave_at(std::size_t i);

  /// Remove and return the i-th queued wave (0 = oldest): take_oldest()
  /// generalized so a thief can skip waves its backend cannot run.
  QueuedWave take_at(std::size_t i);

  /// Account a wave this shard's worker started / finished executing (the
  /// wave may have been taken from a *peer's* deque — the cost always
  /// follows the executor).
  void begin_wave(std::uint64_t estimated_cycles);
  void finish_wave(std::uint64_t estimated_cycles);

 private:
  std::size_t capacity_;
  std::deque<QueuedWave> waves_;
  std::uint64_t queued_cycles_ = 0;
  std::uint64_t executing_cycles_ = 0;
};

}  // namespace nttpim::service
