// Backend descriptors: how the serving layer names and builds its shards.
//
// A shard is a worker thread owning one fhe::NttBackend; which *kind* of
// backend is a deployment decision, not a service invariant. The NTT-PIM
// deployment model (like MeNTT / BP-NTT) keeps the host CPU path alive
// next to the in-memory accelerator, so a service is configured as a list
// of BackendDescriptors — e.g. two PIM devices plus a CPU worker pool —
// and the cost-aware dispatcher routes each wave to whichever backend
// clears it soonest, using each backend's own estimate_wave_cycles in the
// shared modeled-cycle unit (see fhe/ntt_backend.h).
//
// The descriptor carries a *factory*, not a backend: the service runs it
// on the shard's worker thread so every backend stays thread-confined from
// construction (the TSan story of the whole subsystem), and a descriptor
// stays copyable so one config can build many services.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace nttpim::fhe {
class NttBackend;
}

namespace nttpim::service {

/// What executes a shard's waves. The dispatcher uses the kind for
/// compatibility bookkeeping and stats/bench reporting; execution itself
/// only ever sees the NttBackend interface.
enum class BackendKind {
  kPim,  ///< simulated NTT-PIM device (fhe::PimBackend)
  kCpu,  ///< host-CPU worker pool (fhe::CpuBackend)
};

const char* to_string(BackendKind kind) noexcept;

/// One shard of a service: how to build its backend and how to weigh its
/// cost estimates.
struct BackendDescriptor {
  BackendKind kind = BackendKind::kPim;
  /// Display name for stats and bench output (defaulted by the factory
  /// helpers to e.g. "pim8" / "cpu2").
  std::string label;
  /// Builds the shard's backend. Invoked exactly once per service, on the
  /// shard's own worker thread (thread confinement starts at
  /// construction); a throwing factory fails the service constructor.
  std::function<std::unique_ptr<fhe::NttBackend>()> factory;
  /// Multiplier the dispatcher applies to this shard's wave estimates
  /// before comparing backlogs — the knob for derating a backend whose
  /// model is known-optimistic (or favoring one) without touching the
  /// backend's own calibration. Must be > 0.
  double cost_scale = 1.0;
  /// Independent command channels of the shard's device (see
  /// dram::DramGeometry::num_channels). The dispatcher splits this shard's
  /// queue per channel and targets (shard, channel); the worker merges one
  /// wave per channel into a single channel-tagged engine pass. 1 for
  /// backends without a channel hierarchy (CPU).
  std::size_t channels = 1;
};

/// Descriptor for a simulated PIM device shard:
/// fhe::PimBackend(num_buffers, freq_mhz,
///                 hbm2e_geometry(banks_per_shard, channels)).
/// banks_per_shard must divide evenly across channels.
BackendDescriptor make_pim_descriptor(std::size_t banks_per_shard = 8,
                                      std::size_t num_buffers = 4,
                                      double freq_mhz = 1200.0,
                                      double cost_scale = 1.0,
                                      std::size_t channels = 1);

/// Descriptor for a host-CPU worker-pool shard (fhe::CpuBackend with
/// `threads` lanes). cycles_per_point_stage <= 0 keeps the documented
/// default fit of the reference kernel; pass
/// CpuBackend::measure_cycles_per_point_stage() for a host-calibrated
/// model. freq_mhz must match the PIM shards' clock so every estimate
/// shares one modeled-cycle unit.
BackendDescriptor make_cpu_descriptor(std::size_t threads = 1,
                                      double cost_scale = 1.0,
                                      double freq_mhz = 1200.0,
                                      double cycles_per_point_stage = 0.0);

}  // namespace nttpim::service
