#include "service/ntt_service.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <utility>

#include "common/check.h"
#include "fhe/ntt_backend.h"
#include "ntt/poly.h"

namespace nttpim::service {

namespace {

std::vector<BackendDescriptor> resolve_descriptors(const ServiceConfig& cfg) {
  const BackendConfig& bc = cfg.backend;
  if (!bc.descriptors.empty()) {
    for (const BackendDescriptor& d : bc.descriptors)
      NTTPIM_EXPECT_MSG(d.factory != nullptr,
                        "every backend descriptor needs a factory");
    return bc.descriptors;
  }
  NTTPIM_EXPECT_MSG(bc.shards >= 1, "the service needs at least one shard");
  std::vector<BackendDescriptor> resolved;
  resolved.reserve(bc.shards);
  for (std::size_t s = 0; s < bc.shards; ++s)
    resolved.push_back(make_pim_descriptor(bc.banks_per_shard, bc.num_buffers,
                                           bc.freq_mhz, /*cost_scale=*/1.0,
                                           bc.channels_per_shard));
  return resolved;
}

/// The whole QoS machinery is gated on num_classes > 1: a classless
/// service is FIFO end to end by construction (see QosConfig).
bool qos_active(const ServiceConfig& cfg) { return cfg.qos.num_classes > 1; }

WaveFormer::Config former_config(const ServiceConfig& cfg) {
  WaveFormer::Config fc;
  fc.capacity_items = cfg.former.queue_capacity;
  // One channel's bank set per wave: the dispatcher spreads the waves
  // across a shard's channels and the worker merges them into one pass.
  fc.max_wave_items = cfg.former.wave_multiple *
                      (cfg.backend.banks_per_shard /
                       cfg.backend.channels_per_shard);
  fc.flush_window = cfg.former.flush_window;
  fc.overflow = cfg.former.overflow;
  fc.start_paused = cfg.former.start_paused;
  fc.edf = qos_active(cfg) && cfg.qos.edf_forming;
  return fc;
}

Dispatcher::Config dispatcher_config(
    const ServiceConfig& cfg, const std::vector<BackendDescriptor>& resolved) {
  Dispatcher::Config dc;
  dc.shards.clear();
  dc.shards.reserve(resolved.size());
  for (const BackendDescriptor& d : resolved)
    dc.shards.push_back({d.kind, d.cost_scale, d.channels});
  dc.queue_capacity_waves = cfg.dispatch.shard_queue_waves;
  dc.cost_aware = cfg.dispatch.cost_aware_dispatch;
  dc.work_stealing = cfg.dispatch.work_stealing;
  dc.deadline_pressure = qos_active(cfg) && cfg.qos.deadline_pressure;
  return dc;
}

double elapsed_us(ServiceClock::time_point from, ServiceClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Batch items of a wave's engine passes: pass 1 runs every transform in
/// its requested direction plus both operands of every multiply forward;
/// pass 2 runs the multiplies' inverse transforms. Items reference the
/// wave's request buffers (stable addresses — the Request objects live in
/// `wave`), so the same helper serves execution and cost estimation.
struct WavePasses {
  std::vector<fhe::BatchItem> forward;
  std::vector<fhe::BatchItem> inverse;
};

WavePasses wave_passes(std::vector<Request>& wave) {
  WavePasses passes;
  passes.forward.reserve(wave.size() * 2);
  for (Request& r : wave) {
    if (r.kind == Request::Kind::kMultiply) {
      passes.forward.push_back({&r.a, r.params.get(), false});
      passes.forward.push_back({&r.b, r.params.get(), false});
      passes.inverse.push_back({&r.a, r.params.get(), true});
    } else {
      passes.forward.push_back({&r.a, r.params.get(), r.inverse});
    }
  }
  return passes;
}

}  // namespace

NttService::NttService(const ServiceConfig& config)
    : cfg_(config),
      resolved_(resolve_descriptors(config)),
      collector_(telemetry::TraceCollector::Config{
          config.telemetry.enabled, config.telemetry.ring_capacity}),
      former_(former_config(config)),
      dispatcher_(dispatcher_config(config, resolved_),
                  [this](std::size_t shard, std::vector<Request>& wave) {
                    return estimate_wave(shard, wave);
                  }),
      backends_(resolved_.size()),  // value-initialized: all null
      shard_stats_(resolved_.size()),
      class_counters_(std::max<std::size_t>(cfg_.qos.num_classes, 1)),
      stage_totals_(class_counters_.size()),
      class_queue_latency_(class_counters_.size()),
      class_service_latency_(class_counters_.size()) {
  NTTPIM_EXPECT_MSG(cfg_.qos.num_classes >= 1,
                    "the service needs at least one request class");
  NTTPIM_EXPECT_MSG(
      cfg_.qos.admission.size() <= cfg_.qos.num_classes,
      "admission buckets beyond qos.num_classes can never be consulted");
  if (qos_active(cfg_) && !cfg_.qos.admission.empty())
    admission_.emplace(AdmissionController::Config{cfg_.qos.admission, {}});
  NTTPIM_EXPECT_MSG(cfg_.backend.banks_per_shard >= 1,
                    "wave sizing needs at least one bank per shard");
  NTTPIM_EXPECT_MSG(
      cfg_.backend.channels_per_shard >= 1 &&
          cfg_.backend.banks_per_shard % cfg_.backend.channels_per_shard == 0,
      "banks_per_shard must split evenly across channels_per_shard");
  NTTPIM_EXPECT_MSG(cfg_.former.wave_multiple >= 1,
                    "wave_multiple must be >= 1");
  NTTPIM_EXPECT_MSG(cfg_.dispatch.shard_queue_waves >= 1,
                    "each shard needs a dispatch queue of at least one wave");
  for (std::size_t s = 0; s < resolved_.size(); ++s)
    shard_stats_[s].channels.resize(resolved_[s].channels);
  workers_.reserve(resolved_.size());
  for (std::size_t s = 0; s < resolved_.size(); ++s)
    workers_.emplace_back([this, s] { worker(s); });

  // Readiness barrier: don't hand the service to callers until every shard
  // backend exists. On a failed construction, drain the survivors and
  // rethrow here (the destructor never runs for a throwing constructor).
  {
    sync::MutexLock lk(stats_mu_);
    while (shards_ready_ != resolved_.size()) idle_cv_.wait(lk);
    // Copy the verdict out while still holding the lock — the join path
    // below runs unlocked and must not touch the guarded slot.
    const std::exception_ptr error = construction_error_;
    lk.unlock();
    if (error) {
      former_.close();
      dispatcher_.close();  // no dispatch thread yet: release the workers
      for (std::thread& t : workers_) t.join();
      std::rethrow_exception(error);
    }
  }
  // Started only after the barrier, so every backends_[] entry the
  // estimator dereferences is already published.
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

NttService::~NttService() { shutdown(); }

void NttService::validate(const Request& request) const {
  NTTPIM_EXPECT_MSG(request.params != nullptr,
                    "a request needs a parameter set");
  NTTPIM_EXPECT_MSG(request.a.size() == request.params->n(),
                    "polynomial length must equal the parameter set's N");
  if (request.kind == Request::Kind::kMultiply)
    NTTPIM_EXPECT_MSG(request.b.size() == request.params->n(),
                      "second operand length must equal the parameter set's N");
  NTTPIM_EXPECT_MSG(request.qos.tenant < cfg_.qos.num_classes,
                    "request tenant must be < qos.num_classes");
}

std::future<std::vector<std::uint32_t>> NttService::submit(
    std::vector<std::uint32_t> poly,
    std::shared_ptr<const ntt::NttParams> params, SubmitOptions options) {
  Request r;
  r.kind = Request::Kind::kTransform;
  r.a = std::move(poly);
  r.params = std::move(params);
  r.inverse = options.inverse;
  r.qos = options.qos;
  auto future = r.promise.get_future();
  enqueue(std::move(r));
  return future;
}

void NttService::submit(std::vector<std::uint32_t> poly,
                        std::shared_ptr<const ntt::NttParams> params,
                        const SubmitOptions& options, Callback done) {
  NTTPIM_EXPECT_MSG(done != nullptr, "fire-and-forget needs a callback");
  Request r;
  r.kind = Request::Kind::kTransform;
  r.a = std::move(poly);
  r.params = std::move(params);
  r.inverse = options.inverse;
  r.qos = options.qos;
  r.callback = std::move(done);
  r.use_callback = true;
  enqueue(std::move(r));
}

std::future<std::vector<std::uint32_t>> NttService::submit_multiply(
    std::vector<std::uint32_t> a, std::vector<std::uint32_t> b,
    std::shared_ptr<const ntt::NttParams> params, SubmitOptions options) {
  Request r;
  r.kind = Request::Kind::kMultiply;
  r.a = std::move(a);
  r.b = std::move(b);
  r.params = std::move(params);
  r.qos = options.qos;
  auto future = r.promise.get_future();
  enqueue(std::move(r));
  return future;
}

void NttService::enqueue(Request&& request) {
  validate(request);  // synchronous misuse -> std::invalid_argument here
  request.submitted = ServiceClock::now();
  const std::uint32_t cls = request.qos.tenant;
  const ServiceClock::time_point submitted = request.submitted;
  // Admission runs *before* the bounded queue: a tenant past its token
  // bucket is shed here, so a flooding tenant never consumes queue
  // capacity, coalescing delay, or a wave slot (see admission.h).
  if (admission_ &&
      admission_->admit(cls) == AdmissionController::Decision::kShed) {
    {
      const sync::MutexLock lk(stats_mu_);
      ++submitted_;
      ++class_counters_[cls].submitted;
      ++class_counters_[cls].shed;
    }
    if (collector_.enabled()) {
      // A shed request never received a seq; its Submit/Shed pair is
      // joined by adjacency on the client thread's ring instead.
      telemetry::TraceEvent e{};
      e.tenant = cls;
      e.kind = telemetry::EventKind::kSubmit;
      e.ts_ns = collector_.to_ns(submitted);
      collector_.emit(e);
      e.kind = telemetry::EventKind::kShed;
      e.ts_ns = collector_.now_ns();
      collector_.emit(e);
    }
    request.fail(std::make_exception_ptr(AdmissionShedError()));
    return;
  }
  {
    // Count the request as accepted *before* the queue sees it, so drain()
    // can never observe completed == accepted while a worker is finishing a
    // request whose submit() hasn't returned yet. Undone on rejection.
    const sync::MutexLock lk(stats_mu_);
    ++submitted_;
    ++class_counters_[cls].submitted;
    ++accepted_;
  }
  WaveFormer::SubmitInfo info;
  switch (former_.submit(std::move(request), &info)) {
    case WaveFormer::SubmitResult::kAccepted:
      if (collector_.enabled()) {
        // The former stamped seq/enqueued after the move, so the client
        // thread emits its lifecycle events backdated from SubmitInfo.
        telemetry::TraceEvent e{};
        e.seq = info.seq;
        e.tenant = cls;
        e.kind = telemetry::EventKind::kSubmit;
        e.ts_ns = collector_.to_ns(submitted);
        collector_.emit(e);
        if (admission_) {
          // The admission verdict falls synchronously at submit entry.
          e.kind = telemetry::EventKind::kAdmit;
          collector_.emit(e);
        }
        e.kind = telemetry::EventKind::kFormerEnqueue;
        e.ts_ns = collector_.to_ns(info.enqueued);
        collector_.emit(e);
      }
      return;
    case WaveFormer::SubmitResult::kRejected:
      {
        const sync::MutexLock lk(stats_mu_);
        --accepted_;
        ++rejected_;
      }
      idle_cv_.notify_all();
      // Only moved from on kAccepted -- the request is still whole here.
      request.fail(std::make_exception_ptr(QueueFullError()));
      return;
    case WaveFormer::SubmitResult::kClosed:
      {
        const sync::MutexLock lk(stats_mu_);
        --accepted_;
        ++rejected_;
      }
      idle_cv_.notify_all();
      request.fail(std::make_exception_ptr(ServiceStoppedError()));
      return;
  }
}

void NttService::worker(std::size_t shard) {
  // The shard's entire execution state -- backend, and for a PIM shard its
  // simulated device, engine and plan cache -- is built here and lives on
  // this thread. Nothing here is shared, so waves on different shards are
  // genuinely parallel host work. (The dispatch thread and stealing peers
  // read the published pointer, but only through the share-readable
  // estimate path -- see backends_.)
  if (collector_.enabled())
    collector_.set_thread_name("shard-" + std::to_string(shard));
  std::unique_ptr<fhe::NttBackend> backend;
  try {
    backend = resolved_[shard].factory();
    NTTPIM_CHECK_MSG(backend != nullptr,
                     "a backend factory returned null");
  } catch (...) {
    const sync::MutexLock lk(stats_mu_);
    construction_error_ = std::current_exception();
  }
  {
    const sync::MutexLock lk(stats_mu_);
    // Release store pairs with estimate_wave's acquire load (see
    // backends_): a reader that sees the pointer sees the construction.
    backends_[shard].store(backend.get(), std::memory_order_release);
    ++shards_ready_;
  }
  idle_cv_.notify_all();
  if (!backend) return;

  for (;;) {
    // Group pop: up to one wave per channel of this shard, merged below
    // into a single channel-overlapped engine pass.
    auto group = dispatcher_.next_waves_for(shard);
    if (group.empty()) return;  // closed and every queue drained
    execute_group(shard, *backend, group);
  }
}

void NttService::dispatch_loop() {
  // Sole consumer of the wave-former: pull each formed wave, price it,
  // hand it to the best compatible shard's queue (Dispatcher blocks when
  // that queue is full, which stalls forming and backpressures
  // submitters). An empty wave means the former is closed and drained --
  // close the dispatcher so the workers drain their queues and exit.
  if (collector_.enabled()) collector_.set_thread_name("dispatcher");
  for (;;) {
    std::vector<Request> wave = former_.next_wave();
    if (wave.empty()) {
      dispatcher_.close();
      return;
    }
    if (collector_.enabled()) {
      // One WaveCut per request, backdated to the former's cut stamp —
      // the flow step that joins each request's seq to its wave_id.
      telemetry::TraceEvent e{};
      e.kind = telemetry::EventKind::kWaveCut;
      for (const Request& r : wave) {
        e.ts_ns = collector_.to_ns(r.cut_at);
        e.seq = r.seq;
        e.wave_id = r.wave_id;
        e.tenant = r.qos.tenant;
        collector_.emit(e);
      }
    }
    const Dispatcher::Assignment placed = dispatcher_.dispatch(std::move(wave));
    if (collector_.enabled()) {
      telemetry::TraceEvent e{};
      e.kind = telemetry::EventKind::kDispatchAssign;
      e.ts_ns = collector_.now_ns();
      e.wave_id = placed.wave_id;
      e.shard = static_cast<std::uint16_t>(placed.shard);
      e.channel = static_cast<std::uint16_t>(placed.channel);
      e.cycles = placed.estimated_cycles;
      collector_.emit(e);
    }
  }
}

std::uint64_t NttService::estimate_wave(std::size_t shard,
                                        std::vector<Request>& wave) const {
  // Acquire pairs with the worker's release publication (see backends_).
  fhe::NttBackend* backend = backends_[shard].load(std::memory_order_acquire);
  if (backend == nullptr) return wave.size();  // construction failed; moot
  WavePasses passes = wave_passes(wave);
  // Waves execute pinned to one channel of the shard's device, so price
  // one channel's worth: pin every item to channel 0 for the estimate
  // (channel-less backends ignore the hint).
  for (fhe::BatchItem& item : passes.forward) item.channel = 0;
  for (fhe::BatchItem& item : passes.inverse) item.channel = 0;
  // A multiply wave runs two passes back-to-back on the same backend, so
  // its cost is the sum of both makespans.
  std::uint64_t cycles = backend->estimate_wave_cycles(passes.forward);
  if (!passes.inverse.empty())
    cycles += backend->estimate_wave_cycles(passes.inverse);
  return cycles;
}

void NttService::execute_group(std::size_t shard, fhe::NttBackend& backend,
                               std::vector<Dispatcher::NextWave>& group) {
  const auto wave_start = ServiceClock::now();
  for (const Dispatcher::NextWave& w : group)
    for (const Request& r : w.requests) {
      const double us = elapsed_us(r.enqueued, wave_start);
      queue_latency_.record(us);
      class_queue_latency_[r.qos.tenant].record(us);
    }
  if (collector_.enabled()) {
    const std::int64_t start_ns = collector_.to_ns(wave_start);
    for (const Dispatcher::NextWave& w : group) {
      telemetry::TraceEvent e{};
      e.ts_ns = start_ns;
      e.wave_id = w.wave_id;
      e.shard = static_cast<std::uint16_t>(shard);
      e.channel = static_cast<std::uint16_t>(w.channel);
      e.cycles = w.estimated_cycles;
      if (w.stolen) {
        e.kind = telemetry::EventKind::kSteal;
        collector_.emit(e);
      }
      if (w.rebalanced) {
        e.kind = telemetry::EventKind::kRebalance;
        collector_.emit(e);
      }
      e.kind = telemetry::EventKind::kExecuteBegin;
      collector_.emit(e);
    }
  }

  // Pass 1: every transform in its requested direction, both operands of
  // every multiply forward -- one heterogeneous engine pass merging the
  // whole group, each wave's items pinned to the channel the dispatcher
  // assigned it so the device overlaps the waves on its command buses
  // (channel-less backends ignore the hint). Pass 2 (only if the group had
  // multiplies): pointwise products on the host, then the group's inverse
  // transforms as one more pass. The inverse items already point at each
  // multiply's `a` buffer, which the pointwise product overwrites in
  // place.
  std::vector<fhe::BatchItem> forward;
  std::vector<fhe::BatchItem> inverse;
  for (Dispatcher::NextWave& w : group) {
    WavePasses wave_items = wave_passes(w.requests);
    for (fhe::BatchItem& item : wave_items.forward) {
      item.channel = static_cast<std::int32_t>(w.channel);
      forward.push_back(item);
    }
    for (fhe::BatchItem& item : wave_items.inverse) {
      item.channel = static_cast<std::int32_t>(w.channel);
      inverse.push_back(item);
    }
  }

  std::uint64_t passes = 0;
  std::uint64_t items = 0;
  bool ok = true;
  try {
    backend.transform_batch_mixed(forward);
    ++passes;
    items += forward.size();

    if (!inverse.empty()) {
      for (Dispatcher::NextWave& w : group)
        for (Request& r : w.requests) {
          if (r.kind != Request::Kind::kMultiply) continue;
          r.a = ntt::pointwise_mul(r.a, r.b, r.params->q());
        }
      backend.transform_batch_mixed(inverse);
      ++passes;
      items += inverse.size();
    }
  } catch (...) {
    // A group fails as a unit: the backend state after a mid-pass throw is
    // unspecified, so every rider sees the same error.
    ok = false;
    const auto error = std::current_exception();
    for (Dispatcher::NextWave& w : group)
      for (Request& r : w.requests) r.fail(error);
  }

  std::size_t requests = 0;
  for (const Dispatcher::NextWave& w : group) requests += w.requests.size();

  const auto done = ServiceClock::now();
  if (collector_.enabled()) {
    // ExecuteEnd is emitted on failure too, so every ExecuteBegin always
    // has its closing pair in the trace.
    const std::int64_t done_ns = collector_.to_ns(done);
    for (const Dispatcher::NextWave& w : group) {
      telemetry::TraceEvent e{};
      e.kind = telemetry::EventKind::kExecuteEnd;
      e.ts_ns = done_ns;
      e.wave_id = w.wave_id;
      e.shard = static_cast<std::uint16_t>(shard);
      e.channel = static_cast<std::uint16_t>(w.channel);
      e.cycles = w.estimated_cycles;
      collector_.emit(e);
    }
  }

  // Per-class deliveries, deadline verdicts and stage-latency sums,
  // applied to the counters under stats_mu_ below (deliver() must not run
  // under that lock).
  std::vector<std::uint64_t> class_completed(class_counters_.size(), 0);
  std::vector<std::uint64_t> class_missed(class_counters_.size(), 0);
  std::vector<StageTotals> stage_delta(class_counters_.size());
  if (ok) {
    for (Dispatcher::NextWave& w : group)
      for (Request& r : w.requests) {
        const double us = elapsed_us(r.enqueued, done);
        service_latency_.record(us);
        class_service_latency_[r.qos.tenant].record(us);
        ++class_completed[r.qos.tenant];
        const bool missed = r.qos.deadline && done > *r.qos.deadline;
        if (missed) ++class_missed[r.qos.tenant];
        r.deliver(std::move(r.a));
        const auto delivered = ServiceClock::now();
        StageTotals& st = stage_delta[r.qos.tenant];
        ++st.count;
        st.admission_us += elapsed_us(r.submitted, r.enqueued);
        st.former_us += elapsed_us(r.enqueued, r.cut_at);
        st.shard_queue_us += elapsed_us(r.cut_at, wave_start);
        st.execute_us += elapsed_us(wave_start, done);
        st.completion_us += elapsed_us(done, delivered);
        if (collector_.enabled()) {
          telemetry::TraceEvent e{};
          e.seq = r.seq;
          e.wave_id = r.wave_id;
          e.tenant = r.qos.tenant;
          e.shard = static_cast<std::uint16_t>(shard);
          e.channel = static_cast<std::uint16_t>(w.channel);
          if (missed) {
            e.kind = telemetry::EventKind::kDeadlineMiss;
            e.ts_ns = collector_.to_ns(done);
            collector_.emit(e);
          }
          e.kind = telemetry::EventKind::kComplete;
          e.ts_ns = collector_.to_ns(delivered);
          collector_.emit(e);
        }
      }
  }

  // Retire the dispatcher's backlog accounting *before* the drain-visible
  // counters below: drain() returns when completed + failed == accepted,
  // and a snapshot taken right after it must already see this group's cost
  // gone from estimated_backlog_cycles.
  for (const Dispatcher::NextWave& w : group)
    dispatcher_.complete(shard, w.estimated_cycles, w.channel);

  {
    const sync::MutexLock lk(stats_mu_);
    waves_ += group.size();
    engine_passes_ += passes;
    batch_items_ += items;
    if (ok)
      completed_ += requests;
    else
      failed_ += requests;
    for (std::size_t c = 0; c < class_counters_.size(); ++c) {
      class_counters_[c].completed += class_completed[c];
      class_counters_[c].deadline_misses += class_missed[c];
      StageTotals& st = stage_totals_[c];
      st.count += stage_delta[c].count;
      st.admission_us += stage_delta[c].admission_us;
      st.former_us += stage_delta[c].former_us;
      st.shard_queue_us += stage_delta[c].shard_queue_us;
      st.execute_us += stage_delta[c].execute_us;
      st.completion_us += stage_delta[c].completion_us;
    }
    ShardStats& ss = shard_stats_[shard];
    ss.waves += group.size();
    ss.engine_passes += passes;
    ss.batch_items += items;
    ss.requests += requests;
    for (const std::uint64_t missed : class_missed)
      ss.deadline_missed_requests += missed;
    for (const Dispatcher::NextWave& w : group) {
      ss.estimated_executed_cycles += w.estimated_cycles;
      if (w.stolen) ++ss.stolen_waves;
      if (w.rebalanced) ++ss.rebalanced_waves;
      ChannelStats& cs = ss.channels[w.channel];
      ++cs.waves;
      if (w.stolen) ++cs.stolen_waves;
      if (w.rebalanced) ++cs.rebalanced_waves;
      cs.estimated_executed_cycles += w.estimated_cycles;
    }
    ss.modeled_cycles = backend.modeled_cycles();
  }
  idle_cv_.notify_all();
}

void NttService::pause() { former_.pause(); }

void NttService::resume() { former_.resume(); }

void NttService::drain() {
  sync::MutexLock lk(stats_mu_);
  while (completed_ + failed_ != accepted_) idle_cv_.wait(lk);
}

void NttService::shutdown() {
  std::call_once(shutdown_once_, [&] {
    former_.close();
    // The dispatch thread drains the former, pushes the tail waves, then
    // closes the dispatcher -- which is what lets the workers finish.
    dispatch_thread_.join();
    for (std::thread& t : workers_) t.join();
  });
}

void NttService::reset_stats() {
  {
    const sync::MutexLock lk(stats_mu_);
    // Re-base the request counters while preserving the drain() invariant
    // completed + failed <= accepted: what's still in flight carries over
    // as the new epoch's accepted-but-pending backlog.
    accepted_ -= completed_ + failed_;
    submitted_ = accepted_;
    completed_ = 0;
    failed_ = 0;
    rejected_ = 0;
    waves_ = 0;
    engine_passes_ = 0;
    batch_items_ = 0;
    for (std::size_t s = 0; s < shard_stats_.size(); ++s) {
      shard_stats_[s] = ShardStats{};
      shard_stats_[s].channels.resize(resolved_[s].channels);
    }
    for (ClassCounters& cc : class_counters_) cc = ClassCounters{};
    for (StageTotals& st : stage_totals_) st = StageTotals{};
  }
  // Telemetry joins the stats epoch: buffered events and ring counters
  // are dropped so a post-warmup trace covers only the measured window.
  collector_.reset();
  queue_latency_.reset();
  service_latency_.reset();
  for (LatencyRecorder& r : class_queue_latency_) r.reset();
  for (LatencyRecorder& r : class_service_latency_) r.reset();
}

ServiceStats NttService::stats() const {
  ServiceStats s;
  {
    const sync::MutexLock lk(stats_mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.failed = failed_;
    s.pending = accepted_ - completed_ - failed_;
    s.waves = waves_;
    s.engine_passes = engine_passes_;
    s.batch_items = batch_items_;
    s.mean_wave_occupancy =
        engine_passes_ ? static_cast<double>(batch_items_) /
                             static_cast<double>(engine_passes_)
                       : 0;
    s.shards = shard_stats_;
    s.classes.resize(class_counters_.size());
    for (std::size_t c = 0; c < class_counters_.size(); ++c) {
      s.classes[c].submitted = class_counters_[c].submitted;
      s.classes[c].completed = class_counters_[c].completed;
      s.classes[c].shed = class_counters_[c].shed;
      s.classes[c].deadline_misses = class_counters_[c].deadline_misses;
      s.shed += class_counters_[c].shed;
      s.deadline_misses += class_counters_[c].deadline_misses;
      const StageTotals& st = stage_totals_[c];
      StageBreakdown& sb = s.classes[c].stages;
      sb.count = st.count;
      if (st.count > 0) {
        const double n = static_cast<double>(st.count);
        sb.admission_wait_us = st.admission_us / n;
        sb.former_residency_us = st.former_us / n;
        sb.shard_queue_wait_us = st.shard_queue_us / n;
        sb.execute_us = st.execute_us / n;
        sb.completion_us = st.completion_us / n;
        sb.total_us = sb.admission_wait_us + sb.former_residency_us +
                      sb.shard_queue_wait_us + sb.execute_us +
                      sb.completion_us;
      }
    }
  }
  // Trace-ring counters are internally synchronized (the collector has
  // its own lock); sampled alongside, like the latency summaries.
  s.trace_events = collector_.total_events();
  s.trace_dropped_events = collector_.dropped_events();
  // Dispatcher backlogs are sampled outside stats_mu_ (the two locks
  // never nest the other way), but each shard's total and per-channel
  // gauges come from one backlog_snapshot() — a single lock acquisition —
  // so they always tile: total == sum over channels. The backend kind is
  // re-stamped from the resolved descriptors so it survives reset_stats().
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    s.shards[i].kind = resolved_[i].kind;
    const Dispatcher::ShardBacklog backlog = dispatcher_.backlog_snapshot(i);
    s.shards[i].estimated_backlog_cycles = backlog.total_cycles;
    for (std::size_t c = 0; c < s.shards[i].channels.size(); ++c)
      s.shards[i].channels[c].estimated_backlog_cycles =
          backlog.channel_cycles[c];
  }
  s.queue_latency = queue_latency_.summary();
  s.service_latency = service_latency_.summary();
  // Class latency summaries share the counters' coherence caveat: sampled
  // alongside, not under stats_mu_.
  for (std::size_t c = 0; c < s.classes.size(); ++c) {
    s.classes[c].queue_latency = class_queue_latency_[c].summary();
    s.classes[c].service_latency = class_service_latency_[c].summary();
  }
  return s;
}

}  // namespace nttpim::service
