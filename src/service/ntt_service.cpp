#include "service/ntt_service.h"

#include <exception>
#include <optional>
#include <utility>

#include "common/check.h"
#include "fhe/ntt_backend.h"
#include "ntt/poly.h"

namespace nttpim::service {

namespace {

std::vector<BackendDescriptor> resolve_descriptors(const ServiceConfig& cfg) {
  const BackendConfig& bc = cfg.backend;
  if (!bc.descriptors.empty()) {
    for (const BackendDescriptor& d : bc.descriptors)
      NTTPIM_EXPECT_MSG(d.factory != nullptr,
                        "every backend descriptor needs a factory");
    return bc.descriptors;
  }
  NTTPIM_EXPECT_MSG(bc.shards >= 1, "the service needs at least one shard");
  std::vector<BackendDescriptor> resolved;
  resolved.reserve(bc.shards);
  for (std::size_t s = 0; s < bc.shards; ++s)
    resolved.push_back(make_pim_descriptor(bc.banks_per_shard, bc.num_buffers,
                                           bc.freq_mhz));
  return resolved;
}

WaveFormer::Config former_config(const ServiceConfig& cfg) {
  WaveFormer::Config fc;
  fc.capacity_items = cfg.former.queue_capacity;
  fc.max_wave_items = cfg.former.wave_multiple * cfg.backend.banks_per_shard;
  fc.flush_window = cfg.former.flush_window;
  fc.overflow = cfg.former.overflow;
  fc.start_paused = cfg.former.start_paused;
  return fc;
}

Dispatcher::Config dispatcher_config(
    const ServiceConfig& cfg, const std::vector<BackendDescriptor>& resolved) {
  Dispatcher::Config dc;
  dc.shards.clear();
  dc.shards.reserve(resolved.size());
  for (const BackendDescriptor& d : resolved)
    dc.shards.push_back({d.kind, d.cost_scale});
  dc.queue_capacity_waves = cfg.dispatch.shard_queue_waves;
  dc.cost_aware = cfg.dispatch.cost_aware_dispatch;
  dc.work_stealing = cfg.dispatch.work_stealing;
  return dc;
}

double elapsed_us(ServiceClock::time_point from, ServiceClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Batch items of a wave's engine passes: pass 1 runs every transform in
/// its requested direction plus both operands of every multiply forward;
/// pass 2 runs the multiplies' inverse transforms. Items reference the
/// wave's request buffers (stable addresses — the Request objects live in
/// `wave`), so the same helper serves execution and cost estimation.
struct WavePasses {
  std::vector<fhe::BatchItem> forward;
  std::vector<fhe::BatchItem> inverse;
};

WavePasses wave_passes(std::vector<Request>& wave) {
  WavePasses passes;
  passes.forward.reserve(wave.size() * 2);
  for (Request& r : wave) {
    if (r.kind == Request::Kind::kMultiply) {
      passes.forward.push_back({&r.a, r.params.get(), false});
      passes.forward.push_back({&r.b, r.params.get(), false});
      passes.inverse.push_back({&r.a, r.params.get(), true});
    } else {
      passes.forward.push_back({&r.a, r.params.get(), r.inverse});
    }
  }
  return passes;
}

}  // namespace

NttService::NttService(const ServiceConfig& config)
    : cfg_(config),
      resolved_(resolve_descriptors(config)),
      former_(former_config(config)),
      dispatcher_(dispatcher_config(config, resolved_),
                  [this](std::size_t shard, std::vector<Request>& wave) {
                    return estimate_wave(shard, wave);
                  }),
      backends_(resolved_.size(), nullptr),
      shard_stats_(resolved_.size()) {
  NTTPIM_EXPECT_MSG(cfg_.backend.banks_per_shard >= 1,
                    "wave sizing needs at least one bank per shard");
  NTTPIM_EXPECT_MSG(cfg_.former.wave_multiple >= 1,
                    "wave_multiple must be >= 1");
  NTTPIM_EXPECT_MSG(cfg_.dispatch.shard_queue_waves >= 1,
                    "each shard needs a dispatch queue of at least one wave");
  workers_.reserve(resolved_.size());
  for (std::size_t s = 0; s < resolved_.size(); ++s)
    workers_.emplace_back([this, s] { worker(s); });

  // Readiness barrier: don't hand the service to callers until every shard
  // backend exists. On a failed construction, drain the survivors and
  // rethrow here (the destructor never runs for a throwing constructor).
  {
    std::unique_lock lk(stats_mu_);
    idle_cv_.wait(lk, [&] { return shards_ready_ == resolved_.size(); });
    if (construction_error_) {
      lk.unlock();
      former_.close();
      dispatcher_.close();  // no dispatch thread yet: release the workers
      for (std::thread& t : workers_) t.join();
      std::rethrow_exception(construction_error_);
    }
  }
  // Started only after the barrier, so every backends_[] entry the
  // estimator dereferences is already published.
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

NttService::~NttService() { shutdown(); }

void NttService::validate(const Request& request) const {
  NTTPIM_EXPECT_MSG(request.params != nullptr,
                    "a request needs a parameter set");
  NTTPIM_EXPECT_MSG(request.a.size() == request.params->n(),
                    "polynomial length must equal the parameter set's N");
  if (request.kind == Request::Kind::kMultiply)
    NTTPIM_EXPECT_MSG(request.b.size() == request.params->n(),
                      "second operand length must equal the parameter set's N");
}

std::future<std::vector<std::uint32_t>> NttService::submit(
    std::vector<std::uint32_t> poly,
    std::shared_ptr<const ntt::NttParams> params, SubmitOptions options) {
  Request r;
  r.kind = Request::Kind::kTransform;
  r.a = std::move(poly);
  r.params = std::move(params);
  r.inverse = options.inverse;
  r.priority = options.priority;
  r.deadline = options.deadline;
  auto future = r.promise.get_future();
  enqueue(std::move(r));
  return future;
}

void NttService::submit(std::vector<std::uint32_t> poly,
                        std::shared_ptr<const ntt::NttParams> params,
                        const SubmitOptions& options, Callback done) {
  NTTPIM_EXPECT_MSG(done != nullptr, "fire-and-forget needs a callback");
  Request r;
  r.kind = Request::Kind::kTransform;
  r.a = std::move(poly);
  r.params = std::move(params);
  r.inverse = options.inverse;
  r.priority = options.priority;
  r.deadline = options.deadline;
  r.callback = std::move(done);
  r.use_callback = true;
  enqueue(std::move(r));
}

std::future<std::vector<std::uint32_t>> NttService::submit_multiply(
    std::vector<std::uint32_t> a, std::vector<std::uint32_t> b,
    std::shared_ptr<const ntt::NttParams> params, SubmitOptions options) {
  Request r;
  r.kind = Request::Kind::kMultiply;
  r.a = std::move(a);
  r.b = std::move(b);
  r.params = std::move(params);
  r.priority = options.priority;
  r.deadline = options.deadline;
  auto future = r.promise.get_future();
  enqueue(std::move(r));
  return future;
}

std::future<std::vector<std::uint32_t>> NttService::submit(
    std::vector<std::uint32_t> poly,
    std::shared_ptr<const ntt::NttParams> params, bool inverse) {
  SubmitOptions options;
  options.inverse = inverse;
  return submit(std::move(poly), std::move(params), options);
}

void NttService::submit(std::vector<std::uint32_t> poly,
                        std::shared_ptr<const ntt::NttParams> params,
                        bool inverse, Callback done) {
  SubmitOptions options;
  options.inverse = inverse;
  submit(std::move(poly), std::move(params), options, std::move(done));
}

void NttService::enqueue(Request&& request) {
  validate(request);  // synchronous misuse -> std::invalid_argument here
  {
    // Count the request as accepted *before* the queue sees it, so drain()
    // can never observe completed == accepted while a worker is finishing a
    // request whose submit() hasn't returned yet. Undone on rejection.
    const std::scoped_lock lk(stats_mu_);
    ++submitted_;
    ++accepted_;
  }
  switch (former_.submit(std::move(request))) {
    case WaveFormer::SubmitResult::kAccepted:
      return;
    case WaveFormer::SubmitResult::kRejected:
      {
        const std::scoped_lock lk(stats_mu_);
        --accepted_;
        ++rejected_;
      }
      idle_cv_.notify_all();
      // Only moved from on kAccepted -- the request is still whole here.
      request.fail(std::make_exception_ptr(QueueFullError()));
      return;
    case WaveFormer::SubmitResult::kClosed:
      {
        const std::scoped_lock lk(stats_mu_);
        --accepted_;
        ++rejected_;
      }
      idle_cv_.notify_all();
      request.fail(std::make_exception_ptr(ServiceStoppedError()));
      return;
  }
}

void NttService::worker(std::size_t shard) {
  // The shard's entire execution state -- backend, and for a PIM shard its
  // simulated device, engine and plan cache -- is built here and lives on
  // this thread. Nothing here is shared, so waves on different shards are
  // genuinely parallel host work. (The dispatch thread and stealing peers
  // read the published pointer, but only through the share-readable
  // estimate path -- see backends_.)
  std::unique_ptr<fhe::NttBackend> backend;
  try {
    backend = resolved_[shard].factory();
    NTTPIM_CHECK_MSG(backend != nullptr,
                     "a backend factory returned null");
  } catch (...) {
    const std::scoped_lock lk(stats_mu_);
    construction_error_ = std::current_exception();
  }
  {
    const std::scoped_lock lk(stats_mu_);
    backends_[shard] = backend.get();
    ++shards_ready_;
  }
  idle_cv_.notify_all();
  if (!backend) return;

  for (;;) {
    auto next = dispatcher_.next_wave_for(shard);
    if (!next) return;  // closed and every queue drained
    if (next->stolen) {
      const std::scoped_lock lk(stats_mu_);
      ++shard_stats_[shard].stolen_waves;
    }
    execute_wave(shard, *backend, next->requests, next->estimated_cycles);
  }
}

void NttService::dispatch_loop() {
  // Sole consumer of the wave-former: pull each formed wave, price it,
  // hand it to the best compatible shard's queue (Dispatcher blocks when
  // that queue is full, which stalls forming and backpressures
  // submitters). An empty wave means the former is closed and drained --
  // close the dispatcher so the workers drain their queues and exit.
  for (;;) {
    std::vector<Request> wave = former_.next_wave();
    if (wave.empty()) {
      dispatcher_.close();
      return;
    }
    dispatcher_.dispatch(std::move(wave));
  }
}

std::uint64_t NttService::estimate_wave(std::size_t shard,
                                        std::vector<Request>& wave) const {
  fhe::NttBackend* backend = backends_[shard];
  if (backend == nullptr) return wave.size();  // construction failed; moot
  WavePasses passes = wave_passes(wave);
  // A multiply wave runs two passes back-to-back on the same backend, so
  // its cost is the sum of both makespans.
  std::uint64_t cycles = backend->estimate_wave_cycles(passes.forward);
  if (!passes.inverse.empty())
    cycles += backend->estimate_wave_cycles(passes.inverse);
  return cycles;
}

void NttService::execute_wave(std::size_t shard, fhe::NttBackend& backend,
                              std::vector<Request>& wave,
                              std::uint64_t estimated_cycles) {
  const auto wave_start = ServiceClock::now();
  for (const Request& r : wave)
    queue_latency_.record(elapsed_us(r.enqueued, wave_start));

  // Pass 1: every transform in its requested direction, both operands of
  // every multiply forward -- one heterogeneous engine pass. Pass 2 (only
  // if the wave had multiplies): pointwise products on the host, then the
  // wave's inverse transforms as one more pass. The inverse items already
  // point at each multiply's `a` buffer, which the pointwise product
  // overwrites in place.
  const WavePasses wave_items = wave_passes(wave);

  std::uint64_t passes = 0;
  std::uint64_t items = 0;
  bool ok = true;
  try {
    backend.transform_batch_mixed(wave_items.forward);
    ++passes;
    items += wave_items.forward.size();

    if (!wave_items.inverse.empty()) {
      for (Request& r : wave) {
        if (r.kind != Request::Kind::kMultiply) continue;
        r.a = ntt::pointwise_mul(r.a, r.b, r.params->q());
      }
      backend.transform_batch_mixed(wave_items.inverse);
      ++passes;
      items += wave_items.inverse.size();
    }
  } catch (...) {
    // A wave fails as a unit: the backend state after a mid-pass throw is
    // unspecified, so every rider sees the same error.
    ok = false;
    const auto error = std::current_exception();
    for (Request& r : wave) r.fail(error);
  }

  if (ok) {
    const auto done = ServiceClock::now();
    for (Request& r : wave) {
      service_latency_.record(elapsed_us(r.enqueued, done));
      r.deliver(std::move(r.a));
    }
  }

  // Retire the dispatcher's backlog accounting *before* the drain-visible
  // counters below: drain() returns when completed + failed == accepted,
  // and a snapshot taken right after it must already see this wave's cost
  // gone from estimated_backlog_cycles.
  dispatcher_.complete(shard, estimated_cycles);

  {
    const std::scoped_lock lk(stats_mu_);
    waves_ += 1;
    engine_passes_ += passes;
    batch_items_ += items;
    if (ok)
      completed_ += wave.size();
    else
      failed_ += wave.size();
    ShardStats& ss = shard_stats_[shard];
    ss.waves += 1;
    ss.engine_passes += passes;
    ss.batch_items += items;
    ss.requests += wave.size();
    ss.estimated_executed_cycles += estimated_cycles;
    ss.modeled_cycles = backend.modeled_cycles();
  }
  idle_cv_.notify_all();
}

void NttService::pause() { former_.pause(); }

void NttService::resume() { former_.resume(); }

void NttService::drain() {
  std::unique_lock lk(stats_mu_);
  idle_cv_.wait(lk, [&] { return completed_ + failed_ == accepted_; });
}

void NttService::shutdown() {
  std::call_once(shutdown_once_, [&] {
    former_.close();
    // The dispatch thread drains the former, pushes the tail waves, then
    // closes the dispatcher -- which is what lets the workers finish.
    dispatch_thread_.join();
    for (std::thread& t : workers_) t.join();
  });
}

void NttService::reset_stats() {
  {
    const std::scoped_lock lk(stats_mu_);
    // Re-base the request counters while preserving the drain() invariant
    // completed + failed <= accepted: what's still in flight carries over
    // as the new epoch's accepted-but-pending backlog.
    accepted_ -= completed_ + failed_;
    submitted_ = accepted_;
    completed_ = 0;
    failed_ = 0;
    rejected_ = 0;
    waves_ = 0;
    engine_passes_ = 0;
    batch_items_ = 0;
    for (ShardStats& ss : shard_stats_) ss = ShardStats{};
  }
  queue_latency_.reset();
  service_latency_.reset();
}

ServiceStats NttService::stats() const {
  ServiceStats s;
  {
    const std::scoped_lock lk(stats_mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.failed = failed_;
    s.pending = accepted_ - completed_ - failed_;
    s.waves = waves_;
    s.engine_passes = engine_passes_;
    s.batch_items = batch_items_;
    s.mean_wave_occupancy =
        engine_passes_ ? static_cast<double>(batch_items_) /
                             static_cast<double>(engine_passes_)
                       : 0;
    s.shards = shard_stats_;
  }
  // Dispatcher backlog snapshots are taken outside stats_mu_ (the two
  // locks never nest the other way, and the estimates are instantaneous
  // gauges anyway). The backend kind is re-stamped from the resolved
  // descriptors so it survives reset_stats().
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    s.shards[i].kind = resolved_[i].kind;
    s.shards[i].estimated_backlog_cycles = dispatcher_.backlog_cycles(i);
  }
  s.queue_latency = queue_latency_.summary();
  s.service_latency = service_latency_.summary();
  return s;
}

}  // namespace nttpim::service
