#include "service/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace nttpim::service {

Dispatcher::Dispatcher(const Config& config, Estimator estimator)
    : cfg_(config), estimate_(std::move(estimator)) {
  NTTPIM_EXPECT_MSG(!cfg_.shards.empty(), "the dispatcher needs a shard");
  NTTPIM_EXPECT_MSG(estimate_ != nullptr, "the dispatcher needs an estimator");
  for (const Shard& shard : cfg_.shards) {
    NTTPIM_EXPECT_MSG(shard.cost_scale > 0, "cost_scale must be positive");
    NTTPIM_EXPECT_MSG(shard.channels >= 1,
                      "a shard needs at least one channel");
  }
  // Guarded members are initialized without the lock: the object is not
  // shared until the constructor returns (TSA exempts constructors for the
  // same reason).
  const sync::MutexLock lk(mu_);
  for (std::size_t s = 0; s < cfg_.shards.size(); ++s) {
    queues_.emplace_back(config.queue_capacity_waves, cfg_.shards[s].channels,
                         cfg_.deadline_pressure);
    for (std::size_t c = 0; c < cfg_.shards[s].channels; ++c)
      pairs_.emplace_back(s, c);
  }
}

std::uint64_t Dispatcher::priced_for(std::size_t shard,
                                     std::vector<Request>& wave) const {
  const std::uint64_t raw = estimate_(shard, wave);
  if (raw == kIncompatibleCycles) return kIncompatibleCycles;
  const double scaled =
      std::ceil(static_cast<double>(raw) * cfg_.shards[shard].cost_scale);
  // Clamp below the sentinel so a huge scaled price stays "very expensive"
  // instead of becoming "incompatible".
  const auto max_price =
      static_cast<double>(kIncompatibleCycles - 1);
  return scaled >= max_price ? kIncompatibleCycles - 1
                             : static_cast<std::uint64_t>(scaled);
}

Dispatcher::Assignment Dispatcher::dispatch(std::vector<Request>&& wave) {
  NTTPIM_EXPECT(!wave.empty());
  sync::MutexLock lk(mu_);
  // The wave's urgency key: earliest effective deadline and earliest
  // arrival across its requests (the former cuts EDF waves, so the head
  // request usually carries both — but a steal-order or lane-order
  // decision must not depend on that).
  auto wave_deadline = ServiceClock::time_point::max();
  auto wave_seq = std::numeric_limits<std::uint64_t>::max();
  // Every request of a former-cut wave shares one wave_id; hand-built
  // test waves may carry 0.
  const std::uint64_t wave_id = wave.front().wave_id;
  for (const Request& r : wave) {
    wave_deadline = std::min(wave_deadline, r.qos.edf_deadline());
    wave_seq = std::min(wave_seq, r.seq);
  }
  const bool urgent =
      cfg_.deadline_pressure &&
      wave_deadline != ServiceClock::time_point::max();
  // Price the wave once per shard (heterogeneous backends price the same
  // wave differently; a shard's channels are identical buses and share its
  // price); incompatible shards drop out here.
  std::vector<std::uint64_t> price(queues_.size());
  bool any_compatible = false;
  for (std::size_t s = 0; s < queues_.size(); ++s) {
    price[s] = priced_for(s, wave);
    any_compatible |= price[s] != kIncompatibleCycles;
  }
  NTTPIM_CHECK_MSG(any_compatible, "no shard can execute the wave");
  for (;;) {
    // Pick the target first, then wait for space *there*: cost-aware mode
    // re-picks after every wake (backlogs moved while we slept), while
    // round-robin keeps its strict order even when other queues are empty
    // — blind assignment blocking behind one slow shard is exactly the
    // pathology the skewed-load bench demonstrates.
    std::size_t target_s = queues_.size();
    std::size_t target_c = 0;
    std::size_t target_idx = 0;  // flattened index (round-robin only)
    if (cfg_.cost_aware) {
      // Smallest completion estimate (channel backlog + this wave's price)
      // among compatible (shard, channel) pairs with space; when every
      // compatible channel is full, smallest overall (and the wait below
      // applies). Ties resolve to the first pair in shard-major order.
      auto best = std::numeric_limits<std::uint64_t>::max();
      bool target_has_space = false;
      for (const auto& [s, c] : pairs_) {
        if (price[s] == kIncompatibleCycles) continue;
        const bool space = !queues_[s].full(c, mu_);
        // Deadline pressure: an urgent wave jumps the less-urgent queued
        // waves of whatever lane it lands in, so its real ETA counts only
        // the executing work plus the queued work *ahead* of its key —
        // a lane drowning in bulk is still a fine home for a critical
        // wave. Deadline-less waves keep the whole-lane backlog.
        const std::uint64_t ahead =
            urgent ? queues_[s].queued_cycles_before(c, wave_deadline,
                                                     wave_seq, mu_) +
                         queues_[s].executing_cycles(c, mu_)
                   : queues_[s].backlog_cycles(c, mu_);
        const std::uint64_t eta = ahead + price[s];
        if (target_s == queues_.size() || (space && !target_has_space) ||
            (space == target_has_space && eta < best)) {
          best = eta;
          target_s = s;
          target_c = c;
          target_has_space = space;
        }
      }
    } else {
      // Round-robin over the flattened compatible (shard, channel) pairs:
      // the cursor advances past the chosen pair only once the push
      // happens, keeping the strict order.
      for (std::size_t probe = 0; probe < pairs_.size(); ++probe) {
        const std::size_t idx = (rr_next_ + probe) % pairs_.size();
        if (price[pairs_[idx].first] != kIncompatibleCycles) {
          target_s = pairs_[idx].first;
          target_c = pairs_[idx].second;
          target_idx = idx;
          break;
        }
      }
    }
    if (closed_ || !queues_[target_s].full(target_c, mu_)) {
      if (!cfg_.cost_aware) rr_next_ = target_idx + 1;
      QueuedWave priced;
      priced.wave_id = wave_id;
      priced.estimated_cycles = price[target_s];
      priced.deadline = wave_deadline;
      priced.seq = wave_seq;
      priced.requests = std::move(wave);
      queues_[target_s].push(target_c, std::move(priced), mu_);
      ready_cv_.notify_all();
      return Assignment{target_s, target_c, price[target_s], wave_id};
    }
    space_cv_.wait(lk);
  }
}

Dispatcher::NextWave Dispatcher::land_steal(std::size_t shard,
                                            std::size_t victim,
                                            std::size_t vc, std::size_t i,
                                            std::uint64_t cycles) {
  // Land the loot on the thief's least-backlogged channel.
  std::size_t tc = 0;
  for (std::size_t c = 1; c < queues_[shard].channels(); ++c)
    if (queues_[shard].backlog_cycles(c, mu_) <
        queues_[shard].backlog_cycles(tc, mu_))
      tc = c;
  QueuedWave wave = queues_[victim].take_at(vc, i, mu_);
  queues_[shard].begin_wave(tc, cycles, mu_);
  space_cv_.notify_all();
  return NextWave{std::move(wave.requests), wave.wave_id, cycles, tc,
                  /*stolen=*/cfg_.work_stealing,
                  /*rebalanced=*/false};
}

std::optional<Dispatcher::NextWave> Dispatcher::try_steal_urgent_for(
    std::size_t shard) {
  // Deadline-pressure target selection: of every compatible peer wave
  // that carries a *real* deadline, take the one with the earliest
  // (deadline, arrival) key — an idle shard is the fastest path to
  // execution, so it should relieve the wave closest to missing, not the
  // merely largest backlog.
  std::size_t best_victim = 0, best_vc = 0, best_i = 0;
  std::uint64_t best_cycles = 0;
  const QueuedWave* best = nullptr;
  for (std::size_t s = 0; s < queues_.size(); ++s) {
    if (s == shard) continue;
    for (std::size_t c = 0; c < queues_[s].channels(); ++c) {
      // Lanes are urgency-ordered under deadline_pressure, so the first
      // compatible deadlined wave of each lane is that lane's candidate.
      for (std::size_t i = 0; i < queues_[s].size(c, mu_); ++i) {
        QueuedWave& w = queues_[s].wave_at(c, i, mu_);
        if (w.deadline == ServiceClock::time_point::max()) break;
        if (best && !w.more_urgent_than(*best)) break;
        const std::uint64_t cycles = priced_for(shard, w.requests);
        if (cycles == kIncompatibleCycles) continue;
        best = &w;
        best_victim = s;
        best_vc = c;
        best_i = i;
        best_cycles = cycles;
        break;
      }
    }
  }
  if (!best) return std::nullopt;
  return land_steal(shard, best_victim, best_vc, best_i, best_cycles);
}

std::optional<Dispatcher::NextWave> Dispatcher::try_steal_for(
    std::size_t shard) {
  if (cfg_.deadline_pressure) {
    if (auto urgent = try_steal_urgent_for(shard)) return urgent;
    // No deadlined wave anywhere: fall through to the load-relief steal.
  }
  // Victim order: queued cost, descending; within the victim, channels by
  // queued cost descending (relieve the bus that is furthest behind).
  std::vector<std::size_t> victims;
  victims.reserve(queues_.size());
  for (std::size_t s = 0; s < queues_.size(); ++s)
    if (s != shard && !queues_[s].empty(mu_)) victims.push_back(s);
  std::sort(victims.begin(), victims.end(), [&](auto a, auto b) {
    return queues_[a].queued_cycles(mu_) > queues_[b].queued_cycles(mu_);
  });
  for (const std::size_t victim : victims) {
    std::vector<std::size_t> vchans;
    for (std::size_t c = 0; c < queues_[victim].channels(); ++c)
      if (!queues_[victim].empty(c, mu_)) vchans.push_back(c);
    std::sort(vchans.begin(), vchans.end(), [&](auto a, auto b) {
      return queues_[victim].queued_cycles(a, mu_) >
             queues_[victim].queued_cycles(b, mu_);
    });
    for (const std::size_t vc : vchans) {
      for (std::size_t i = 0; i < queues_[victim].size(vc, mu_); ++i) {
        const std::uint64_t cycles =
            priced_for(shard, queues_[victim].wave_at(vc, i, mu_).requests);
        if (cycles == kIncompatibleCycles) continue;
        return land_steal(shard, victim, vc, i, cycles);
      }
    }
  }
  return std::nullopt;
}

std::vector<Dispatcher::NextWave> Dispatcher::next_waves_for(
    std::size_t shard) {
  NTTPIM_EXPECT(shard < shards());
  sync::MutexLock lk(mu_);
  for (;;) {
    ShardQueue& own = queues_[shard];
    if (!own.empty(mu_)) {
      // Own waves are compatible by construction (dispatch() only assigns
      // compatible shards) and already priced for this backend. One wave
      // per channel; channels left empty-handed rebalance from the
      // most-loaded sibling so the merged pass keeps every bus busy.
      std::vector<NextWave> group;
      std::vector<std::size_t> starved;
      for (std::size_t c = 0; c < own.channels(); ++c) {
        if (own.empty(c, mu_)) {
          starved.push_back(c);
          continue;
        }
        QueuedWave wave = own.take_oldest(c, mu_);
        own.begin_wave(c, wave.estimated_cycles, mu_);
        group.push_back(NextWave{std::move(wave.requests), wave.wave_id,
                                 wave.estimated_cycles, c,
                                 /*stolen=*/false, /*rebalanced=*/false});
      }
      for (const std::size_t c : starved) {
        std::size_t donor = own.channels();
        for (std::size_t d = 0; d < own.channels(); ++d) {
          if (own.empty(d, mu_)) continue;
          if (donor == own.channels() ||
              own.queued_cycles(d, mu_) > own.queued_cycles(donor, mu_))
            donor = d;
        }
        if (donor == own.channels()) break;  // nothing left to spread
        QueuedWave wave = own.take_oldest(donor, mu_);
        own.begin_wave(c, wave.estimated_cycles, mu_);
        group.push_back(NextWave{std::move(wave.requests), wave.wave_id,
                                 wave.estimated_cycles, c,
                                 /*stolen=*/false, /*rebalanced=*/true});
      }
      space_cv_.notify_all();
      return group;
    }
    // Only an entirely empty shard crosses shard boundaries: local
    // rebalance above strictly precedes remote stealing. After close() an
    // empty-handed worker drains peers even with stealing disabled
    // (accepted work always executes), but those takes are drain
    // reassignments, not policy steals — `stolen` stays false for them.
    if (cfg_.work_stealing || closed_) {
      if (auto stolen = try_steal_for(shard)) {
        std::vector<NextWave> group;
        group.push_back(std::move(*stolen));
        return group;
      }
    }
    if (closed_) return {};
    ready_cv_.wait(lk);
  }
}

std::optional<Dispatcher::NextWave> Dispatcher::next_wave_for(
    std::size_t shard) {
  NTTPIM_EXPECT(shard < shards());
  sync::MutexLock lk(mu_);
  for (;;) {
    ShardQueue& own = queues_[shard];
    if (!own.empty(mu_)) {
      // Oldest wave of the most-loaded own channel.
      std::size_t c = 0;
      bool found = false;
      for (std::size_t d = 0; d < own.channels(); ++d) {
        if (own.empty(d, mu_)) continue;
        if (!found || own.queued_cycles(d, mu_) > own.queued_cycles(c, mu_))
          c = d;
        found = true;
      }
      QueuedWave wave = own.take_oldest(c, mu_);
      own.begin_wave(c, wave.estimated_cycles, mu_);
      space_cv_.notify_all();
      return NextWave{std::move(wave.requests), wave.wave_id,
                      wave.estimated_cycles, c,
                      /*stolen=*/false, /*rebalanced=*/false};
    }
    if (cfg_.work_stealing || closed_) {
      if (auto stolen = try_steal_for(shard)) return stolen;
    }
    if (closed_) return std::nullopt;
    ready_cv_.wait(lk);
  }
}

void Dispatcher::complete(std::size_t shard, std::uint64_t estimated_cycles,
                          std::size_t channel) {
  const sync::MutexLock lk(mu_);
  queues_[shard].finish_wave(channel, estimated_cycles, mu_);
}

void Dispatcher::close() {
  {
    const sync::MutexLock lk(mu_);
    closed_ = true;
  }
  ready_cv_.notify_all();
  space_cv_.notify_all();
}

std::uint64_t Dispatcher::backlog_cycles(std::size_t shard) const {
  const sync::MutexLock lk(mu_);
  return queues_[shard].backlog_cycles(mu_);
}

std::uint64_t Dispatcher::backlog_cycles(std::size_t shard,
                                         std::size_t channel) const {
  const sync::MutexLock lk(mu_);
  return queues_[shard].backlog_cycles(channel, mu_);
}

Dispatcher::ShardBacklog Dispatcher::backlog_snapshot(
    std::size_t shard) const {
  const sync::MutexLock lk(mu_);
  const ShardQueue& q = queues_[shard];
  ShardBacklog snap;
  snap.channel_cycles.reserve(q.channels());
  for (std::size_t c = 0; c < q.channels(); ++c) {
    const std::uint64_t cycles = q.backlog_cycles(c, mu_);
    snap.channel_cycles.push_back(cycles);
    snap.total_cycles += cycles;
  }
  return snap;
}

}  // namespace nttpim::service
