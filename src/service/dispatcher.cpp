#include "service/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace nttpim::service {

Dispatcher::Dispatcher(const Config& config, Estimator estimator)
    : cfg_(config), estimate_(std::move(estimator)) {
  NTTPIM_EXPECT_MSG(!cfg_.shards.empty(), "the dispatcher needs a shard");
  NTTPIM_EXPECT_MSG(estimate_ != nullptr, "the dispatcher needs an estimator");
  for (const Shard& shard : cfg_.shards)
    NTTPIM_EXPECT_MSG(shard.cost_scale > 0, "cost_scale must be positive");
  for (std::size_t s = 0; s < cfg_.shards.size(); ++s)
    queues_.emplace_back(config.queue_capacity_waves);
}

std::uint64_t Dispatcher::priced_for(std::size_t shard,
                                     std::vector<Request>& wave) const {
  const std::uint64_t raw = estimate_(shard, wave);
  if (raw == kIncompatibleCycles) return kIncompatibleCycles;
  const double scaled =
      std::ceil(static_cast<double>(raw) * cfg_.shards[shard].cost_scale);
  // Clamp below the sentinel so a huge scaled price stays "very expensive"
  // instead of becoming "incompatible".
  const auto max_price =
      static_cast<double>(kIncompatibleCycles - 1);
  return scaled >= max_price ? kIncompatibleCycles - 1
                             : static_cast<std::uint64_t>(scaled);
}

void Dispatcher::dispatch(std::vector<Request>&& wave) {
  NTTPIM_EXPECT(!wave.empty());
  std::unique_lock lk(mu_);
  // Price the wave once per shard (heterogeneous backends price the same
  // wave differently); incompatible shards drop out here.
  std::vector<std::uint64_t> price(queues_.size());
  bool any_compatible = false;
  for (std::size_t s = 0; s < queues_.size(); ++s) {
    price[s] = priced_for(s, wave);
    any_compatible |= price[s] != kIncompatibleCycles;
  }
  NTTPIM_CHECK_MSG(any_compatible, "no shard can execute the wave");
  for (;;) {
    // Pick the target first, then wait for space *there*: cost-aware mode
    // re-picks after every wake (backlogs moved while we slept), while
    // round-robin keeps its strict order even when other queues are empty
    // — blind assignment blocking behind one slow shard is exactly the
    // pathology the skewed-load bench demonstrates.
    std::size_t target = queues_.size();
    if (cfg_.cost_aware) {
      // Smallest completion estimate (backlog + this wave's price) among
      // compatible queues with space; when every compatible queue is
      // full, smallest overall (and the wait below applies).
      auto best = std::numeric_limits<std::uint64_t>::max();
      bool target_has_space = false;
      for (std::size_t s = 0; s < queues_.size(); ++s) {
        if (price[s] == kIncompatibleCycles) continue;
        const bool space = !queues_[s].full();
        const std::uint64_t eta = queues_[s].backlog_cycles() + price[s];
        if (target == queues_.size() || (space && !target_has_space) ||
            (space == target_has_space && eta < best)) {
          best = eta;
          target = s;
          target_has_space = space;
        }
      }
    } else {
      // Round-robin over compatible shards: the cursor advances past the
      // chosen shard only once the push happens, keeping the strict order.
      for (std::size_t probe = 0; probe < queues_.size(); ++probe) {
        const std::size_t s = (rr_next_ + probe) % queues_.size();
        if (price[s] != kIncompatibleCycles) {
          target = s;
          break;
        }
      }
    }
    if (closed_ || !queues_[target].full()) {
      if (!cfg_.cost_aware) rr_next_ = target + 1;
      QueuedWave priced;
      priced.estimated_cycles = price[target];
      priced.requests = std::move(wave);
      queues_[target].push(std::move(priced));
      ready_cv_.notify_all();
      return;
    }
    space_cv_.wait(lk);
  }
}

std::optional<Dispatcher::NextWave> Dispatcher::next_wave_for(
    std::size_t shard) {
  NTTPIM_EXPECT(shard < queues_.size());
  std::unique_lock lk(mu_);
  for (;;) {
    if (!queues_[shard].empty()) {
      // Own waves are compatible by construction (dispatch() only assigns
      // compatible shards) and already priced for this backend.
      QueuedWave wave = queues_[shard].take_oldest();
      queues_[shard].begin_wave(wave.estimated_cycles);
      space_cv_.notify_all();
      return NextWave{std::move(wave.requests), wave.estimated_cycles,
                      /*stolen=*/false};
    }
    // Steal: from the most-loaded peer that holds a wave this shard's
    // backend can run, its oldest such wave, re-priced for the thief.
    // After close() an empty-handed worker drains peers even with stealing
    // disabled (accepted work always executes), but those takes are drain
    // reassignments, not policy steals — `stolen` stays false for them.
    if (cfg_.work_stealing || closed_) {
      // Victim order: queued cost, descending.
      std::vector<std::size_t> victims;
      victims.reserve(queues_.size());
      for (std::size_t s = 0; s < queues_.size(); ++s)
        if (s != shard && !queues_[s].empty()) victims.push_back(s);
      std::sort(victims.begin(), victims.end(), [&](auto a, auto b) {
        return queues_[a].queued_cycles() > queues_[b].queued_cycles();
      });
      for (const std::size_t victim : victims) {
        for (std::size_t i = 0; i < queues_[victim].size(); ++i) {
          const std::uint64_t cycles =
              priced_for(shard, queues_[victim].wave_at(i).requests);
          if (cycles == kIncompatibleCycles) continue;
          QueuedWave wave = queues_[victim].take_at(i);
          queues_[shard].begin_wave(cycles);
          space_cv_.notify_all();
          return NextWave{std::move(wave.requests), cycles,
                          /*stolen=*/cfg_.work_stealing};
        }
      }
    }
    if (closed_) return std::nullopt;
    ready_cv_.wait(lk);
  }
}

void Dispatcher::complete(std::size_t shard, std::uint64_t estimated_cycles) {
  const std::scoped_lock lk(mu_);
  queues_[shard].finish_wave(estimated_cycles);
}

void Dispatcher::close() {
  {
    const std::scoped_lock lk(mu_);
    closed_ = true;
  }
  ready_cv_.notify_all();
  space_cv_.notify_all();
}

std::uint64_t Dispatcher::backlog_cycles(std::size_t shard) const {
  const std::scoped_lock lk(mu_);
  return queues_[shard].backlog_cycles();
}

}  // namespace nttpim::service
