#include "service/dispatcher.h"

#include <limits>
#include <utility>

#include "common/check.h"

namespace nttpim::service {

Dispatcher::Dispatcher(const Config& config, Estimator estimator)
    : cfg_(config), estimate_(std::move(estimator)) {
  NTTPIM_EXPECT_MSG(cfg_.shards >= 1, "the dispatcher needs a shard");
  NTTPIM_EXPECT_MSG(estimate_ != nullptr, "the dispatcher needs an estimator");
  for (std::size_t s = 0; s < cfg_.shards; ++s)
    queues_.emplace_back(config.queue_capacity_waves);
}

void Dispatcher::dispatch(std::vector<Request>&& wave) {
  NTTPIM_EXPECT(!wave.empty());
  std::unique_lock lk(mu_);
  for (;;) {
    // Pick the target first, then wait for space *there*: cost-aware mode
    // re-picks after every wake (backlogs moved while we slept), while
    // round-robin keeps its strict order even when other queues are empty
    // — blind assignment blocking behind one slow shard is exactly the
    // pathology the skewed-load bench demonstrates.
    std::size_t target;
    if (cfg_.cost_aware) {
      // Least estimated backlog among queues with space; when every queue
      // is full, least backlog overall (and the wait below applies).
      target = 0;
      auto best = std::numeric_limits<std::uint64_t>::max();
      bool target_has_space = false;
      for (std::size_t s = 0; s < queues_.size(); ++s) {
        const bool space = !queues_[s].full();
        const std::uint64_t backlog = queues_[s].backlog_cycles();
        if ((space && !target_has_space) ||
            (space == target_has_space && backlog < best)) {
          best = backlog;
          target = s;
          target_has_space = space;
        }
      }
    } else {
      target = rr_next_ % queues_.size();
    }
    if (closed_ || !queues_[target].full()) {
      if (!cfg_.cost_aware) ++rr_next_;
      QueuedWave priced;
      priced.estimated_cycles = estimate_(target, wave);
      priced.requests = std::move(wave);
      queues_[target].push(std::move(priced));
      ready_cv_.notify_all();
      return;
    }
    space_cv_.wait(lk);
  }
}

std::optional<Dispatcher::NextWave> Dispatcher::next_wave_for(
    std::size_t shard) {
  NTTPIM_EXPECT(shard < queues_.size());
  std::unique_lock lk(mu_);
  for (;;) {
    if (!queues_[shard].empty()) {
      QueuedWave wave = queues_[shard].take_oldest();
      queues_[shard].begin_wave(wave.estimated_cycles);
      space_cv_.notify_all();
      return NextWave{std::move(wave.requests), wave.estimated_cycles,
                      /*stolen=*/false};
    }
    // Steal: the oldest wave of the peer with the most queued cost. After
    // close() an empty-handed worker drains peers even with stealing
    // disabled (accepted work always executes), but those takes are drain
    // reassignments, not policy steals — `stolen` stays false for them.
    if (cfg_.work_stealing || closed_) {
      std::size_t victim = queues_.size();
      std::uint64_t most_queued = 0;
      for (std::size_t s = 0; s < queues_.size(); ++s) {
        if (s == shard || queues_[s].empty()) continue;
        if (victim == queues_.size() ||
            queues_[s].queued_cycles() > most_queued) {
          victim = s;
          most_queued = queues_[s].queued_cycles();
        }
      }
      if (victim != queues_.size()) {
        QueuedWave wave = queues_[victim].take_oldest();
        queues_[shard].begin_wave(wave.estimated_cycles);
        space_cv_.notify_all();
        return NextWave{std::move(wave.requests), wave.estimated_cycles,
                        /*stolen=*/cfg_.work_stealing};
      }
    }
    if (closed_) return std::nullopt;
    ready_cv_.wait(lk);
  }
}

void Dispatcher::complete(std::size_t shard, std::uint64_t estimated_cycles) {
  const std::scoped_lock lk(mu_);
  queues_[shard].finish_wave(estimated_cycles);
}

void Dispatcher::close() {
  {
    const std::scoped_lock lk(mu_);
    closed_ = true;
  }
  ready_cv_.notify_all();
  space_cv_.notify_all();
}

std::uint64_t Dispatcher::backlog_cycles(std::size_t shard) const {
  const std::scoped_lock lk(mu_);
  return queues_[shard].backlog_cycles();
}

}  // namespace nttpim::service
