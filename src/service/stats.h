// Serving-runtime statistics: latency percentiles and wave occupancy.
//
// The number the whole subsystem exists to move is *mean wave occupancy* —
// batch items per engine pass. A synchronous caller gets occupancy 1 (every
// transform is its own pass); the wave-former's job is to push it toward
// num_banks(), which is exactly the bank-level parallelism the paper defers
// to future work (Sec. VII) and that MeNTT/BP-NTT identify as the PIM
// utilization lever. ServiceStats reports it next to the latency cost paid
// to get it (queue wait before a wave forms, total service time).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "service/backend.h"
#include "sync/mutex.h"

namespace nttpim::service {

/// Summary of one latency population, in microseconds.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_us = 0;  ///< over every recorded sample
  double p50_us = 0;   ///< percentiles over the retained window (below)
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

/// Thread-safe latency reservoir. The mean/max/count cover every sample
/// ever recorded; percentiles are computed over a bounded ring of the most
/// recent `capacity` samples so memory stays flat under serving workloads
/// that run for days.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t capacity = 1 << 16);

  void record(double us);
  LatencySummary summary() const;
  /// Drop every sample (post-warmup steady-state measurement).
  void reset();

 private:
  mutable sync::Mutex mu_;
  /// Ring buffer of the last `capacity_` samples.
  std::vector<double> window_ NTTPIM_GUARDED_BY(mu_);
  std::size_t capacity_;  ///< fixed at construction
  std::size_t next_ NTTPIM_GUARDED_BY(mu_) = 0;
  std::uint64_t count_ NTTPIM_GUARDED_BY(mu_) = 0;
  double sum_us_ NTTPIM_GUARDED_BY(mu_) = 0;
  double max_us_ NTTPIM_GUARDED_BY(mu_) = 0;
};

/// Per-channel slice of one shard's counters: one entry per independent
/// command bus of the shard's device (see BackendDescriptor::channels;
/// CPU shards have one). Waves are dispatched to — and accounted on — a
/// (shard, channel) pair, so these split ShardStats' wave counters by the
/// bus the wave's batch items were pinned to.
struct ChannelStats {
  std::uint64_t waves = 0;  ///< waves executed pinned to this channel
  /// Waves that landed here by a cross-shard steal (the thief's
  /// least-backlogged channel receives the loot).
  std::uint64_t stolen_waves = 0;
  /// Waves moved here from a sibling channel by a group pop's local
  /// rebalance (intra-shard; never counted as stolen).
  std::uint64_t rebalanced_waves = 0;
  /// Sum of the dispatcher's estimates for waves this channel finished.
  std::uint64_t estimated_executed_cycles = 0;
  /// This channel's share of the shard's instantaneous dispatcher backlog.
  std::uint64_t estimated_backlog_cycles = 0;
};

/// Mean per-request wall-clock of each serving stage, for one class's
/// *completed* requests — the aggregation half of the telemetry
/// subsystem (src/telemetry/): where a request's latency actually went.
/// The five stages tile a request's life exactly:
///
///   submit() entry -> accepted past admission into the former
///     (admission_wait) -> cut into a wave (former_residency) -> the
///     wave's engine pass starts (shard_queue_wait) -> passes done
///     (execute) -> this request's result delivered (completion).
///
/// Cross-check against the latency recorders (both measure from the
/// former's enqueue stamp): former_residency + shard_queue_wait equals
/// the queue-latency mean, and adding execute gives the service-latency
/// mean. Always accumulated — stage stamps ride the existing stats lock,
/// so this costs nothing extra and needs no TelemetryConfig gate.
struct StageBreakdown {
  std::uint64_t count = 0;  ///< completed requests averaged below
  double admission_wait_us = 0;    ///< submit() entry -> queued in former
  double former_residency_us = 0;  ///< queued -> cut into a wave
  double shard_queue_wait_us = 0;  ///< cut -> wave's engine pass starts
  double execute_us = 0;    ///< engine passes (incl. host pointwise step)
  double completion_us = 0; ///< passes done -> this result delivered
  double total_us = 0;      ///< submit() entry -> delivered (sum of stages)
};

/// Per-class (per-tenant) slice of the service counters — one entry per
/// configured request class (ServiceConfig::qos.num_classes), keyed by
/// RequestClass::tenant. This is what makes the QoS policies observable:
/// the latency a critical class actually gets, what a flooding tenant was
/// shed, and how many deadlines were honored.
struct ClassStats {
  std::uint64_t submitted = 0;  ///< submit() calls from this tenant
  std::uint64_t completed = 0;  ///< delivered successfully
  /// Shed by per-tenant admission control (AdmissionShedError) — counted
  /// separately from `rejected` backpressure: shedding is a per-tenant
  /// policy verdict, rejection is aggregate queue pressure.
  std::uint64_t shed = 0;
  /// Completed requests whose delivery happened after their deadline.
  /// (Deadline-less requests can never miss.)
  std::uint64_t deadline_misses = 0;
  LatencySummary queue_latency;    ///< submit -> wave starts executing
  LatencySummary service_latency;  ///< submit -> result delivered
  /// Where this class's completed requests spent their time (means).
  StageBreakdown stages;
};

/// Per-shard slice of the service counters (one shard = one worker thread
/// owning one NttBackend).
struct ShardStats {
  /// What executes this shard's waves (from its BackendDescriptor; always
  /// re-stamped by stats(), so it survives reset_stats()).
  BackendKind kind = BackendKind::kPim;
  std::uint64_t waves = 0;          ///< formed waves executed
  std::uint64_t engine_passes = 0;  ///< 1 per wave + 1 if it had multiplies
  std::uint64_t batch_items = 0;    ///< transforms issued across all passes
  std::uint64_t requests = 0;       ///< requests completed (or failed)
  /// Waves this shard pulled from a *peer's* queue because its own was
  /// empty (whole-wave steals; the dispatcher's load-balancing valve).
  std::uint64_t stolen_waves = 0;
  /// Waves a group pop moved between this shard's own channels so the
  /// merged engine pass kept every command bus busy (see dispatcher.h;
  /// disjoint from stolen_waves).
  std::uint64_t rebalanced_waves = 0;
  /// Requests this shard delivered after their deadline had passed (the
  /// per-shard tile of ClassStats::deadline_misses summed over classes).
  std::uint64_t deadline_missed_requests = 0;
  /// Snapshot of the dispatcher's cost estimate for this shard's
  /// outstanding work (queued + executing waves), in modeled device
  /// cycles. Instantaneous, not cumulative: it is what the dispatcher
  /// compares when it assigns the next wave.
  std::uint64_t estimated_backlog_cycles = 0;
  /// Sum of the dispatcher's estimates for every wave this shard has
  /// *finished executing* — the deterministic makespan proxy the hetero
  /// bench compares across backends (wall-clock-free, epoch-reset by
  /// reset_stats() like the other counters).
  std::uint64_t estimated_executed_cycles = 0;
  /// The shard backend's cumulative modeled cycles (simulated engine
  /// cycles for PIM, cost-model price for CPU — see
  /// NttBackend::modeled_cycles) — backend lifetime total, deliberately
  /// NOT re-based by NttService::reset_stats() (the modeled-hardware
  /// account has no epochs).
  std::uint64_t modeled_cycles = 0;
  /// One entry per channel of the shard's device, splitting the wave
  /// counters above by command bus (size == BackendDescriptor::channels;
  /// survives reset_stats()).
  std::vector<ChannelStats> channels;
};

/// Snapshot of the service, safe to take while requests flow (see
/// NttService::stats() for the exact coherence guarantees).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< submit() calls observed
  std::uint64_t completed = 0;  ///< requests delivered successfully
  std::uint64_t rejected = 0;   ///< backpressure rejections (kReject/stopped)
  std::uint64_t failed = 0;     ///< accepted but failed during execution
  std::uint64_t pending = 0;    ///< accepted, not yet completed or failed
  /// Shed by per-tenant admission control before reaching the queue
  /// (sum of ClassStats::shed; disjoint from `rejected`).
  std::uint64_t shed = 0;
  /// Completed after their deadline (sum of ClassStats::deadline_misses).
  std::uint64_t deadline_misses = 0;

  std::uint64_t waves = 0;
  std::uint64_t engine_passes = 0;
  std::uint64_t batch_items = 0;
  /// batch_items / engine_passes — the utilization figure of merit.
  double mean_wave_occupancy = 0;

  LatencySummary queue_latency;    ///< submit -> wave starts executing
  LatencySummary service_latency;  ///< submit -> result delivered

  /// One entry per request class (ServiceConfig::qos.num_classes; always
  /// at least the classless entry 0), splitting the counters and latency
  /// summaries above by RequestClass::tenant.
  std::vector<ClassStats> classes;

  std::vector<ShardStats> shards;

  /// Telemetry ring counters (src/telemetry/), when lifecycle tracing is
  /// enabled (ServiceConfig::telemetry): events recorded on / dropped
  /// from the per-thread trace rings since the last reset_stats(). Both
  /// stay 0 with tracing disabled.
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped_events = 0;
};

}  // namespace nttpim::service
