// Request types of the async NTT serving runtime.
//
// A Request is the unit clients hand to NttService::submit(): one
// polynomial to transform (forward or inverse negacyclic NTT) or one
// negacyclic product of two polynomials. The service owns the coefficient
// data for the request's lifetime — clients move vectors in and receive
// the result through a std::future or a fire-and-forget callback, so no
// client buffer has to stay alive while the request sits in the queue.
//
// Parameter sets travel as shared_ptr<const NttParams>: requests outlive
// the submitting call, so a reference-held parameter set would be a
// use-after-free trap. Sharing one parameter object across thousands of
// requests is also what keeps per-request overhead at two pointer copies.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ntt/params.h"

namespace nttpim::service {

/// Clock every service latency figure is measured on.
using ServiceClock = std::chrono::steady_clock;

/// What submit() does when the bounded request queue is full.
enum class OverflowPolicy {
  kBlock,   ///< block the submitting thread until space frees up
  kReject,  ///< fail the request immediately (QueueFullError in its future)
};

/// Backpressure rejection under OverflowPolicy::kReject: delivered through
/// the request's future/callback, never thrown at the submit() call site.
class QueueFullError : public std::runtime_error {
 public:
  QueueFullError()
      : std::runtime_error(
            "NttService queue full (OverflowPolicy::kReject)") {}
};

/// The service stopped accepting work (shutdown() raced the submission).
class ServiceStoppedError : public std::runtime_error {
 public:
  ServiceStoppedError()
      : std::runtime_error("NttService is shut down") {}
};

/// The request's tenant exhausted its token bucket (see
/// service/admission.h): shed *before* the bounded queue, so a flooding
/// tenant never costs queue space or coalescing delay. Delivered through
/// the request's future/callback like every other submission failure.
class AdmissionShedError : public std::runtime_error {
 public:
  AdmissionShedError()
      : std::runtime_error(
            "request shed by per-tenant admission control") {}
};

/// QoS class of one request: which tenant issued it and how urgent it is.
/// The class travels with the request through every layer — admission
/// buckets and per-class stats key on `tenant`, EDF wave forming and
/// deadline-pressure dispatch act on `deadline` (with `priority` breaking
/// ties). A default-constructed class is "classless": tenant 0, priority
/// 0, no deadline — the FIFO behavior of the pre-QoS service.
struct RequestClass {
  /// Tenant id, in [0, ServiceConfig::qos.num_classes). Indexes the
  /// admission bucket and the per-class stats slot.
  std::uint32_t tenant = 0;
  /// Larger = more urgent. Orders requests with equal effective deadlines
  /// (in particular, all deadline-less requests against each other).
  int priority = 0;
  /// Absolute completion target. Requests with a deadline jump coalescing
  /// delay (the former flushes no later than the earliest pending
  /// deadline) and sort ahead of deadline-less traffic everywhere.
  std::optional<ServiceClock::time_point> deadline;

  /// Deadline used for EDF ordering: the explicit one, or +inf so
  /// deadline-less requests sort after every deadlined one.
  ServiceClock::time_point edf_deadline() const noexcept {
    return deadline ? *deadline : ServiceClock::time_point::max();
  }
};

/// Per-request options of every NttService::submit() variant, so growing
/// the submission surface never multiplies overloads again. The `qos`
/// class (reserved fields until PR 8) is live: EDF wave forming,
/// deadline-pressure dispatch and per-tenant admission all act on it.
struct SubmitOptions {
  /// Transform direction (transforms only; ignored by submit_multiply).
  bool inverse = false;
  /// Tenant / priority / deadline of the request (see RequestClass).
  RequestClass qos;
};

/// Fire-and-forget completion hook. Exactly one of (result, error) is
/// meaningful: error == nullptr on success. Runs on a shard worker thread;
/// it must not throw (exceptions are swallowed to keep the shard alive) and
/// must not call back into the submitting service's blocking APIs
/// (drain/shutdown) — that would deadlock the worker on itself.
using Callback =
    std::function<void(std::vector<std::uint32_t>&& result,
                       std::exception_ptr error)>;

/// One queued unit of work. Internal to the service and its wave-former;
/// clients only ever see the submit() signatures.
struct Request {
  enum class Kind {
    kTransform,  ///< forward/inverse negacyclic NTT of `a`
    kMultiply,   ///< negacyclic product `a * b` in Z_q[X]/(X^N + 1)
  };

  Kind kind = Kind::kTransform;
  std::vector<std::uint32_t> a;
  std::vector<std::uint32_t> b;  ///< second operand, kMultiply only
  std::shared_ptr<const ntt::NttParams> params;
  bool inverse = false;  ///< direction, kTransform only
  RequestClass qos;      ///< tenant / priority / deadline (see SubmitOptions)
  std::promise<std::vector<std::uint32_t>> promise;
  Callback callback;      ///< when set, the promise is not used
  bool use_callback = false;
  /// Stamped at NttService::submit entry, before admission — the zero
  /// point of the telemetry stage breakdown (admission wait =
  /// enqueued - submitted).
  ServiceClock::time_point submitted{};
  ServiceClock::time_point enqueued{};  ///< stamped by the wave-former
  /// Stamped by the wave-former when the request is cut into a wave;
  /// shard-queue wait in the stage breakdown starts here.
  ServiceClock::time_point cut_at{};
  /// Arrival sequence number, stamped by the wave-former. The FIFO
  /// tie-break of every QoS ordering — (deadline, priority, seq) — so
  /// classless traffic keeps exact submission order even under a fake
  /// clock where many requests share one timestamp.
  std::uint64_t seq = 0;
  /// Monotone id of the wave the former cut this request into (1-based;
  /// 0 = not cut yet). Every request of a wave shares it, and it travels
  /// with the wave through dispatch, steals and rebalances — the join
  /// key that makes a moved wave identifiable in traces and stats.
  std::uint64_t wave_id = 0;

  /// Batch items this request contributes to a wave's *forward* engine
  /// pass: a multiply transforms both operands.
  std::size_t batch_items() const noexcept {
    return kind == Kind::kMultiply ? 2 : 1;
  }

  /// Complete the request with `result` (moves it out).
  void deliver(std::vector<std::uint32_t>&& result) {
    if (use_callback) {
      try {
        callback(std::move(result), nullptr);
      } catch (...) {  // see Callback: must-not-throw contract
      }
    } else {
      promise.set_value(std::move(result));
    }
  }

  /// Complete the request with an error.
  void fail(std::exception_ptr error) {
    if (use_callback) {
      try {
        callback({}, std::move(error));
      } catch (...) {
      }
    } else {
      promise.set_exception(std::move(error));
    }
  }
};

}  // namespace nttpim::service
