#include "service/admission.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace nttpim::service {

AdmissionController::AdmissionController(Config config)
    : cfg_(std::move(config)), buckets_(cfg_.tenants.size()) {
  const auto start = now();
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    NTTPIM_EXPECT_MSG(cfg_.tenants[t].rate_per_sec >= 0,
                      "token-bucket refill rate must be >= 0");
    // A fresh bucket is full: a tenant's first burst is always admitted.
    buckets_[t].tokens = std::max(cfg_.tenants[t].burst, 0.0);
    buckets_[t].last = start;
  }
}

void AdmissionController::refill(std::size_t tenant, Bucket& b,
                                 ServiceClock::time_point at) const {
  const TokenBucketConfig& tc = cfg_.tenants[tenant];
  if (at <= b.last) return;  // clock went nowhere (or a fake clock rewound)
  const double elapsed_sec =
      std::chrono::duration<double>(at - b.last).count();
  b.tokens = std::min(tc.burst, b.tokens + tc.rate_per_sec * elapsed_sec);
  b.last = at;
}

AdmissionController::Decision AdmissionController::admit(std::uint32_t tenant) {
  if (tenant >= cfg_.tenants.size() || cfg_.tenants[tenant].unlimited())
    return Decision::kAdmit;
  const auto at = now();
  const sync::MutexLock lk(mu_);
  Bucket& b = buckets_[tenant];
  refill(tenant, b, at);
  if (b.tokens < 1.0) return Decision::kShed;
  b.tokens -= 1.0;
  return Decision::kAdmit;
}

double AdmissionController::tokens(std::uint32_t tenant) const {
  if (tenant >= cfg_.tenants.size()) return 0;
  if (cfg_.tenants[tenant].unlimited())
    return std::max(cfg_.tenants[tenant].burst, 0.0);
  const auto at = now();
  const sync::MutexLock lk(mu_);
  Bucket& b = buckets_[tenant];
  refill(tenant, b, at);
  return b.tokens;
}

}  // namespace nttpim::service
