#include "fhe/bfv.h"

#include <algorithm>

#include "common/check.h"
#include "ntt/modular.h"
#include "ntt/poly.h"
#include "ntt/primes.h"

namespace nttpim::fhe {

namespace {

/// Round-to-nearest division of a signed 128-bit value by a positive one.
std::int64_t round_div(__int128 num, __int128 den) {
  if (num >= 0) return static_cast<std::int64_t>((num + den / 2) / den);
  return -static_cast<std::int64_t>((-num + den / 2) / den);
}

/// Negacyclic convolution of centered-lift integer polynomials (exact, no
/// modular reduction) — the tensor step of BFV multiplication.
std::vector<__int128> integer_negacyclic(const std::vector<std::int64_t>& a,
                                         const std::vector<std::int64_t>& b) {
  const std::size_t n = a.size();
  std::vector<__int128> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      const __int128 prod = static_cast<__int128>(a[i]) * b[j];
      const std::size_t k = (i + j) % n;
      if (i + j < n)
        c[k] += prod;
      else
        c[k] -= prod;
    }
  }
  return c;
}

}  // namespace

Bfv::Bfv(const BfvParams& params, NttBackend& backend, std::uint64_t seed)
    : ntt_(params.n,
           params.q != 0 ? params.q : ntt::find_ntt_prime(params.n, 30)),
      backend_(&backend),
      t_(params.t),
      noise_bound_(params.noise_bound),
      rng_(seed) {
  NTTPIM_EXPECT_MSG(t_ >= 2, "plaintext modulus must be >= 2");
  NTTPIM_EXPECT_MSG(t_ < ntt_.q() / 4, "t must be far smaller than q");
  delta_ = ntt_.q() / t_;
  keygen();
}

void Bfv::keygen() {
  secret_ = random_ternary();
  pk_a_ = random_uniform();
  const Poly e = random_noise();
  // b = -(a*s + e) mod q.
  const Poly as = mul_mod_q(pk_a_, secret_);
  pk_b_.assign(ntt_.n(), 0);
  const std::uint32_t q = ntt_.q();
  for (std::size_t i = 0; i < ntt_.n(); ++i)
    pk_b_[i] = static_cast<std::uint32_t>(
        ntt::neg_mod(ntt::add_mod(as[i], e[i], q), q));
  keys_ready_ = true;
}

Bfv::Poly Bfv::mul_mod_q(const Poly& a, const Poly& b) const {
  auto fa = a;
  auto fb = b;
  backend_->forward(fa, ntt_);
  backend_->forward(fb, ntt_);
  auto fc = ntt::pointwise_mul(fa, fb, ntt_.q());
  backend_->inverse(fc, ntt_);
  return fc;
}

Bfv::Poly Bfv::random_ternary() {
  Poly p(ntt_.n());
  const std::uint32_t q = ntt_.q();
  for (auto& x : p) {
    const std::int64_t v = rng_.next_in(-1, 1);
    x = static_cast<std::uint32_t>((v + q) % q);
  }
  return p;
}

Bfv::Poly Bfv::random_noise() {
  Poly p(ntt_.n());
  const std::uint32_t q = ntt_.q();
  for (auto& x : p) {
    const std::int64_t v = rng_.next_in(-noise_bound_, noise_bound_);
    x = static_cast<std::uint32_t>((v + q) % q);
  }
  return p;
}

Bfv::Poly Bfv::random_uniform() {
  Poly p(ntt_.n());
  for (auto& x : p) x = rng_.next_mod(ntt_.q());
  return p;
}

std::vector<std::int64_t> Bfv::centered(const Poly& a) const {
  const std::int64_t q = ntt_.q();
  std::vector<std::int64_t> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int64_t v = a[i];
    out[i] = v > q / 2 ? v - q : v;
  }
  return out;
}

BfvCiphertext Bfv::encrypt(const std::vector<std::uint32_t>& message) {
  NTTPIM_EXPECT(message.size() == ntt_.n());
  NTTPIM_CHECK(keys_ready_);
  for (const auto m : message)
    NTTPIM_EXPECT_MSG(m < t_, "plaintext coefficients must be in [0, t)");

  const Poly u = random_ternary();
  const Poly e1 = random_noise();
  const Poly e2 = random_noise();
  const std::uint32_t q = ntt_.q();

  Poly c0 = mul_mod_q(pk_b_, u);
  Poly c1 = mul_mod_q(pk_a_, u);
  for (std::size_t i = 0; i < ntt_.n(); ++i) {
    const std::uint64_t dm = ntt::mul_mod(delta_, message[i], q);
    c0[i] = static_cast<std::uint32_t>(
        ntt::add_mod(ntt::add_mod(c0[i], e1[i], q), dm, q));
    c1[i] = static_cast<std::uint32_t>(ntt::add_mod(c1[i], e2[i], q));
  }
  return BfvCiphertext{{std::move(c0), std::move(c1)}};
}

Bfv::Poly Bfv::phase(const BfvCiphertext& ct) const {
  NTTPIM_EXPECT(ct.parts.size() >= 2 && ct.parts.size() <= 3);
  const std::uint32_t q = ntt_.q();
  Poly acc = ct.parts[0];
  const Poly c1s = mul_mod_q(ct.parts[1], secret_);
  for (std::size_t i = 0; i < acc.size(); ++i)
    acc[i] = static_cast<std::uint32_t>(ntt::add_mod(acc[i], c1s[i], q));
  if (ct.parts.size() == 3) {
    const Poly s2 = mul_mod_q(secret_, secret_);
    const Poly c2s2 = mul_mod_q(ct.parts[2], s2);
    for (std::size_t i = 0; i < acc.size(); ++i)
      acc[i] = static_cast<std::uint32_t>(ntt::add_mod(acc[i], c2s2[i], q));
  }
  return acc;
}

std::vector<std::uint32_t> Bfv::decrypt(const BfvCiphertext& ct) const {
  NTTPIM_CHECK(keys_ready_);
  const auto lifted = centered(phase(ct));
  std::vector<std::uint32_t> out(lifted.size());
  const std::int64_t t = t_;
  const std::int64_t q = ntt_.q();
  for (std::size_t i = 0; i < lifted.size(); ++i) {
    const std::int64_t r = round_div(static_cast<__int128>(lifted[i]) * t, q);
    out[i] = static_cast<std::uint32_t>(((r % t) + t) % t);
  }
  return out;
}

BfvCiphertext Bfv::add(const BfvCiphertext& a, const BfvCiphertext& b) const {
  NTTPIM_EXPECT(a.parts.size() == b.parts.size());
  const std::uint32_t q = ntt_.q();
  BfvCiphertext out;
  out.parts.resize(a.parts.size());
  for (std::size_t p = 0; p < a.parts.size(); ++p) {
    out.parts[p].resize(ntt_.n());
    for (std::size_t i = 0; i < ntt_.n(); ++i)
      out.parts[p][i] = static_cast<std::uint32_t>(
          ntt::add_mod(a.parts[p][i], b.parts[p][i], q));
  }
  return out;
}

BfvCiphertext Bfv::multiply(const BfvCiphertext& a,
                            const BfvCiphertext& b) const {
  NTTPIM_EXPECT_MSG(a.degree() == 1 && b.degree() == 1,
                    "multiply expects fresh (degree-1) ciphertexts");
  // Tensor over the integers on centered lifts, then scale by t/q with
  // rounding — the textbook BFV multiplication (no relinearization).
  const auto a0 = centered(a.parts[0]);
  const auto a1 = centered(a.parts[1]);
  const auto b0 = centered(b.parts[0]);
  const auto b1 = centered(b.parts[1]);

  const auto d0 = integer_negacyclic(a0, b0);
  auto d1 = integer_negacyclic(a0, b1);
  const auto d1b = integer_negacyclic(a1, b0);
  for (std::size_t i = 0; i < d1.size(); ++i) d1[i] += d1b[i];
  const auto d2 = integer_negacyclic(a1, b1);

  const std::int64_t q = ntt_.q();
  const auto scale = [&](const std::vector<__int128>& d) {
    Poly out(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
      const std::int64_t r = round_div(d[i] * static_cast<__int128>(t_), q);
      out[i] = static_cast<std::uint32_t>(((r % q) + q) % q);
    }
    return out;
  };
  return BfvCiphertext{{scale(d0), scale(d1), scale(d2)}};
}

std::vector<std::uint32_t> Bfv::plaintext_multiply(
    const std::vector<std::uint32_t>& a,
    const std::vector<std::uint32_t>& b) const {
  return ntt::negacyclic_convolution_schoolbook(a, b, t_);
}

std::uint64_t Bfv::noise_magnitude(const BfvCiphertext& ct,
                                   const std::vector<std::uint32_t>& m) const {
  // noise = phase - Delta*m (centered); budget remains while |noise| < q/2t.
  const std::uint32_t q = ntt_.q();
  Poly expected(ntt_.n());
  for (std::size_t i = 0; i < ntt_.n(); ++i)
    expected[i] = static_cast<std::uint32_t>(ntt::mul_mod(delta_, m[i], q));
  const auto ph = phase(ct);
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < ntt_.n(); ++i) {
    const auto diff = static_cast<std::uint32_t>(
        ntt::sub_mod(ph[i], expected[i], q));
    const std::uint64_t mag = std::min<std::uint64_t>(diff, q - diff);
    worst = std::max(worst, mag);
  }
  return worst;
}

}  // namespace nttpim::fhe
