// A compact educational BFV scheme (Fan–Vercauteren) over R_q.
//
// This is the FHE workload that motivates NTT-PIM (paper Sec. I–II): every
// homomorphic operation is dominated by negacyclic polynomial products,
// which route through the NttBackend — i.e. optionally through the full
// simulated PIM. Implemented: key generation, encryption, decryption,
// homomorphic addition and one tensor-style multiplication (degree-2
// ciphertext output, decrypted directly with s^2 — relinearization keys are
// out of scope for this reproduction and not needed by any experiment).
//
// Single-prime ciphertext modulus q (NTT-friendly, ~30 bits); plaintext
// modulus t with Delta = floor(q/t). Noise is uniform in [-B, B]; secrets
// and encryption randomness are ternary. Parameters are sized for
// correctness of one multiplication at the depths the examples use.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "fhe/pim_backend.h"
#include "ntt/params.h"

namespace nttpim::fhe {

struct BfvParams {
  std::size_t n = 256;        ///< ring dimension
  std::uint32_t q = 0;        ///< ciphertext modulus (0 = auto 30-bit prime)
  std::uint32_t t = 17;       ///< plaintext modulus
  std::int64_t noise_bound = 3;  ///< uniform noise amplitude B
};

/// Ciphertext: a polynomial vector (c0, c1[, c2]) over Z_q.
struct BfvCiphertext {
  std::vector<std::vector<std::uint32_t>> parts;
  std::size_t degree() const noexcept { return parts.size() - 1; }
};

class Bfv {
 public:
  /// `backend` must outlive the scheme object.
  Bfv(const BfvParams& params, NttBackend& backend, std::uint64_t seed = 7);

  const ntt::NttParams& ntt_params() const noexcept { return ntt_; }
  std::uint32_t plaintext_modulus() const noexcept { return t_; }
  std::uint32_t delta() const noexcept { return delta_; }

  /// (Re)generate secret and public keys.
  void keygen();

  /// Encrypt a plaintext polynomial with coefficients in [0, t).
  BfvCiphertext encrypt(const std::vector<std::uint32_t>& message);

  /// Decrypt a degree-1 or degree-2 ciphertext.
  std::vector<std::uint32_t> decrypt(const BfvCiphertext& ct) const;

  /// Homomorphic addition (degrees must match).
  BfvCiphertext add(const BfvCiphertext& a, const BfvCiphertext& b) const;

  /// Homomorphic multiplication of two degree-1 ciphertexts; returns a
  /// degree-2 ciphertext (tensor product with t/q rounding).
  BfvCiphertext multiply(const BfvCiphertext& a,
                         const BfvCiphertext& b) const;

  /// Plaintext-space product (for test oracles): a*b mod (X^N+1, t).
  std::vector<std::uint32_t> plaintext_multiply(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b) const;

  /// Infinity-norm of the decryption noise of `ct` given message `m` —
  /// the remaining noise budget diagnostic used in tests/examples.
  std::uint64_t noise_magnitude(const BfvCiphertext& ct,
                                const std::vector<std::uint32_t>& m) const;

 private:
  using Poly = std::vector<std::uint32_t>;

  Poly mul_mod_q(const Poly& a, const Poly& b) const;
  Poly random_ternary();
  Poly random_noise();
  Poly random_uniform();
  /// Centered lift of a residue vector to signed representatives.
  std::vector<std::int64_t> centered(const Poly& a) const;
  /// Phase c0 + c1 s (+ c2 s^2) mod q.
  Poly phase(const BfvCiphertext& ct) const;

  ntt::NttParams ntt_;
  NttBackend* backend_;
  std::uint32_t t_;
  std::uint32_t delta_;
  std::int64_t noise_bound_;
  mutable Rng rng_;
  Poly secret_;      // ternary secret key (as residues mod q)
  Poly pk_b_, pk_a_; // public key pair
  bool keys_ready_ = false;
};

}  // namespace nttpim::fhe
