#include "fhe/cpu_backend.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/bitutil.h"
#include "common/check.h"
#include "common/random.h"
#include "ntt/negacyclic.h"

namespace nttpim::fhe {

CpuBackend::CpuBackend(const Config& config)
    : cfg_(config),
      lanes_(std::max<std::size_t>(1, config.threads)),
      calibrated_(config.cycles_per_point_stage) {
  NTTPIM_EXPECT_MSG(cfg_.freq_mhz > 0, "the modeled clock must be positive");
  NTTPIM_EXPECT_MSG(cfg_.cycles_per_point_stage > 0,
                    "the fitted cost constant must be positive");
  NTTPIM_EXPECT_MSG(
      cfg_.calibration_alpha >= 0 && cfg_.calibration_alpha <= 1,
      "calibration_alpha must be in [0, 1]");
  pool_.reserve(lanes_ - 1);
  for (std::size_t lane = 1; lane < lanes_; ++lane)
    pool_.emplace_back([this, lane] { pool_main(lane); });
}

CpuBackend::~CpuBackend() {
  {
    const sync::MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
}

void CpuBackend::forward(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  ntt::forward_negacyclic_ntt(a, params);
  modeled_cycles_.fetch_add(item_cycles(params.n()),
                            std::memory_order_relaxed);
  transforms_.fetch_add(1, std::memory_order_relaxed);
}

void CpuBackend::inverse(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  ntt::inverse_negacyclic_ntt(a, params);
  modeled_cycles_.fetch_add(item_cycles(params.n()),
                            std::memory_order_relaxed);
  transforms_.fetch_add(1, std::memory_order_relaxed);
}

void CpuBackend::run_lane(std::size_t lane) noexcept {
  // Lanes touch disjoint polynomials (validated), so the only shared
  // writes are the relaxed counters and the mutex-guarded first error.
  for (std::size_t j = lane; j < batch_.size(); j += lanes_) {
    const BatchItem& item = batch_[j];
    try {
      if (item.inverse)
        ntt::inverse_negacyclic_ntt(*item.poly, *item.params);
      else
        ntt::forward_negacyclic_ntt(*item.poly, *item.params);
      modeled_cycles_.fetch_add(item_cycles(item.params->n()),
                                std::memory_order_relaxed);
      transforms_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      const sync::MutexLock lk(mu_);
      if (!batch_error_) batch_error_ = std::current_exception();
    }
  }
}

void CpuBackend::pool_main(std::size_t lane) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      sync::MutexLock lk(mu_);
      while (!stop_ && epoch_ == seen_epoch) work_cv_.wait(lk);
      if (stop_) return;
      seen_epoch = epoch_;
    }
    run_lane(lane);
    {
      const sync::MutexLock lk(mu_);
      --lanes_running_;
    }
    done_cv_.notify_all();
  }
}

void CpuBackend::transform_batch_mixed(std::span<const BatchItem> items) {
  validate_batch_items(items);
  if (items.empty()) return;
  const bool calibrate = cfg_.calibration_alpha > 0;
  const auto t0 = calibrate ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
  if (lanes_ == 1 || items.size() == 1) {
    // Serial tight loop; let a single item's error propagate directly.
    for (const auto& item : items) {
      if (item.inverse)
        inverse(*item.poly, *item.params);
      else
        forward(*item.poly, *item.params);
    }
  } else {
    {
      const sync::MutexLock lk(mu_);
      batch_ = items;
      batch_error_ = nullptr;
      lanes_running_ = lanes_ - 1;
      ++epoch_;
    }
    work_cv_.notify_all();
    run_lane(0);  // the caller is lane 0
    std::exception_ptr error;
    {
      sync::MutexLock lk(mu_);
      while (lanes_running_ != 0) done_cv_.wait(lk);
      batch_ = {};
      error = std::exchange(batch_error_, nullptr);
    }
    if (error) std::rethrow_exception(error);
  }
  if (calibrate) {
    const auto t1 = std::chrono::steady_clock::now();
    feed_calibration(
        items, std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
}

void CpuBackend::feed_calibration(std::span<const BatchItem> items,
                                  double wall_ns) {
  // Normalize the wave's wall time by its busiest lane's n*log2(n) weight:
  // the lanes ran concurrently, so the wave's duration is the busiest
  // lane's duration — the same placement replay the estimate performs.
  std::vector<double> lane_weight(std::min(lanes_, items.size()), 0.0);
  for (std::size_t j = 0; j < items.size(); ++j) {
    const auto n = static_cast<double>(items[j].params->n());
    lane_weight[j % lanes_] +=
        n * static_cast<double>(exact_log2(items[j].params->n()));
  }
  double busiest = 0;
  for (const double w : lane_weight) busiest = std::max(busiest, w);
  if (busiest <= 0 || wall_ns <= 0) return;  // timer glitch: skip the sample
  const double measured_cycles = wall_ns * cfg_.freq_mhz / 1000.0;
  record_calibration_sample(measured_cycles / busiest);
}

void CpuBackend::record_calibration_sample(double cycles_per_point_stage) {
  if (cfg_.calibration_alpha <= 0) return;
  // A glitched sample must never drive the constant to zero or below.
  const double sample = std::max(cycles_per_point_stage, 1e-3);
  const double prev = calibrated_.load(std::memory_order_relaxed);
  calibrated_.store(
      (1.0 - cfg_.calibration_alpha) * prev + cfg_.calibration_alpha * sample,
      std::memory_order_relaxed);
}

std::uint64_t CpuBackend::item_cycles(std::size_t n) const {
  const auto log2n = static_cast<double>(exact_log2(n));
  return static_cast<std::uint64_t>(cfg_.cycles_per_point_stage *
                                    static_cast<double>(n) * log2n);
}

std::uint64_t CpuBackend::estimated_item_cycles(std::size_t n) const {
  const auto log2n = static_cast<double>(exact_log2(n));
  return static_cast<std::uint64_t>(
      calibrated_.load(std::memory_order_relaxed) * static_cast<double>(n) *
      log2n);
}

std::uint64_t CpuBackend::estimate_wave_cycles(
    std::span<const BatchItem> items) const {
  if (items.empty()) return 0;
  std::vector<std::uint64_t> lane_cycles(std::min(lanes_, items.size()), 0);
  for (std::size_t j = 0; j < items.size(); ++j) {
    NTTPIM_EXPECT_MSG(items[j].params != nullptr,
                      "estimating a wave needs each item's parameter set");
    lane_cycles[j % lanes_] += estimated_item_cycles(items[j].params->n());
  }
  std::uint64_t makespan = 0;
  for (const std::uint64_t c : lane_cycles) makespan = std::max(makespan, c);
  return makespan;
}

double CpuBackend::measure_cycles_per_point_stage(double freq_mhz,
                                                  std::size_t n, int reps) {
  NTTPIM_EXPECT_MSG(freq_mhz > 0, "the modeled clock must be positive");
  NTTPIM_EXPECT_MSG(reps >= 1, "calibration needs at least one rep");
  const auto params = ntt::NttParams::create(n, 29);
  Rng rng(17);
  const auto poly = rng.residues(n, params.q());
  double best_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    auto p = poly;
    const auto t0 = std::chrono::steady_clock::now();
    ntt::forward_negacyclic_ntt(p, params);
    const auto t1 = std::chrono::steady_clock::now();
    best_ns = std::min(
        best_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  // ns -> modeled cycles: one cycle is 1000/freq_mhz ns.
  const double cycles = best_ns * freq_mhz / 1000.0;
  const double fit =
      cycles / (static_cast<double>(n) * static_cast<double>(exact_log2(n)));
  // A timer glitch must never produce a zero/negative constant.
  return std::max(fit, 1e-3);
}

}  // namespace nttpim::fhe
