// The simulated NTT-PIM execution backend (see ntt_backend.h for the
// NttBackend interface it implements and cpu_backend.h for its host-CPU
// peer in the heterogeneous serving tier).
//
// PimBackend is throughput-shaped: it owns one persistent simulated device
// (constructed once, not per transform), memoizes mapped command traces in
// a mapping::PlanCache keyed by (geometry, params, config, job), and offers
// two batch entry points:
//  - transform_batch(): a pile of same-parameter polynomials sharded across
//    the device's banks, one engine pass per wave of num_banks();
//  - transform_batch_mixed(): a *heterogeneous* wave in which every
//    polynomial carries its own parameter set (modulus) and direction —
//    the paper's "running different NTT functions in each bank" — executed
//    as a single engine pass; items beyond num_banks() are stacked at
//    disjoint base rows of the same bank and run back-to-back within the
//    pass (parallel across banks, sequential within one).
// Simulated *hardware* numbers are unchanged by any of this — only host
// wall-clock drops.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dram/command.h"
#include "dram/config.h"
#include "fhe/ntt_backend.h"
#include "mapping/plan_cache.h"
#include "ntt/params.h"
#include "pim/device.h"
#include "sim/engine.h"
#include "sync/thread_confined.h"

namespace nttpim::fhe {

/// Backend that executes every transform on the simulated NTT-PIM device
/// and accumulates the simulated cycle/energy cost.
class PimBackend final : public NttBackend {
 public:
  /// Placement of one batch item within an executed wave (introspection
  /// for tests / reporting: which bank ran which modulus in which
  /// direction at which base row).
  struct WaveSlot {
    std::uint16_t bank = 0;
    std::uint32_t base_row = 0;
    std::size_t n = 0;
    std::uint32_t q = 0;
    bool inverse = false;
    std::uint16_t channel = 0;  ///< command bus serving `bank`
  };

  /// `geometry` fixes the simulated device for the backend's lifetime; the
  /// default is the paper's single-bank Table-I configuration. Use
  /// dram::hbm2e_geometry(B) to enable B-way transform_batch sharding.
  explicit PimBackend(std::size_t num_buffers = 4, double freq_mhz = 1200.0,
                      const dram::DramGeometry& geometry =
                          dram::hbm2e_geometry(1));

  void forward(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;
  void inverse(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;

  /// Batched transform: shard `polys` across the device's banks, one
  /// polynomial per bank, and simulate each wave of num_banks() transforms
  /// in a single engine pass (per-bank traces are cached plans replicated
  /// with rewritten bank ids). Semantics per polynomial are identical to
  /// forward()/inverse(); total_cycles() advances by the *makespan* of each
  /// shared pass, which is what makes this a throughput API.
  void transform_batch(std::span<std::vector<std::uint32_t>> polys,
                       const ntt::NttParams& params,
                       bool inverse = false) override;

  /// Heterogeneous wave: ONE engine pass for the whole span. Items are
  /// placed channel-major: an unhinted item goes to the next channel
  /// round-robin, a hinted item (BatchItem::channel) to its pinned
  /// channel, and within a channel items rotate across that channel's
  /// banks_per_channel() banks; when a bank receives several items they
  /// are placed at disjoint base rows and execute back-to-back within the
  /// pass. (A single-channel device reduces to the classic item j -> bank
  /// j % num_banks() placement.) Per-bank command traces come from the
  /// plan cache (one plan per (params, direction, bank, base_row),
  /// bank-retargeted from the bank-0 twin) and are merged round-robin
  /// across banks so every command bus sees its banks from cycle one
  /// instead of draining them in id order. Rejects aliased items (see
  /// BatchItem).
  void transform_batch_mixed(std::span<const BatchItem> items) override;

  /// Price the wave `items` in modeled device cycles WITHOUT touching the
  /// device: items are placed exactly as transform_batch_mixed would place
  /// them (channel-major round-robin, hints honored); an item whose plan
  /// is already in the plan cache costs its exact command counts priced
  /// through ActModel::estimate_pass_cycles, an unmapped item costs a
  /// deliberately conservative default (so unknown work repels further
  /// load until a shard has actually mapped it). Each channel's makespan
  /// is the busier of its busiest bank's back-to-back total and its
  /// command bus's total occupancy (mapped counts only — the bus is the
  /// resource banks of one channel share); the wave's estimate is the
  /// busiest *channel's* makespan, since channels run on independent
  /// buses. Unlike the transform methods this is safe to call from
  /// another thread while this backend executes (PlanCache::peek_counts
  /// contract) — it is what a cost-aware dispatcher compares per shard.
  std::uint64_t estimate_wave_cycles(
      std::span<const BatchItem> items) const override;

  const dram::DramGeometry& geometry() const noexcept { return geometry_; }
  std::size_t num_banks() const noexcept { return device_.num_banks(); }
  std::size_t num_channels() const noexcept { return geometry_.num_channels; }
  std::size_t banks_per_channel() const noexcept {
    return geometry_.banks_per_channel();
  }

  /// Counter accessors (total_cycles/engine_passes/plan_cache_*,
  /// transform_count) follow the NttBackend contract: safe to read while
  /// another thread drives the backend. Everything else — transforms,
  /// total_energy_nj(), last_wave(), recorded_waves() — requires the
  /// backend to be quiescent or externally synchronized.
  std::uint64_t total_cycles() const noexcept {
    return cycles_.load(std::memory_order_relaxed);
  }
  /// The simulated engine cycles ARE this backend's modeled account.
  std::uint64_t modeled_cycles() const noexcept override {
    return total_cycles();
  }
  double total_energy_nj() const noexcept { return energy_nj_; }
  double total_us() const;
  /// Engine passes executed (one per single transform or batch wave).
  std::uint64_t engine_passes() const noexcept {
    return engine_passes_.load(std::memory_order_relaxed);
  }
  std::uint64_t plan_cache_hits() const noexcept { return plans_.hits(); }
  std::uint64_t plan_cache_misses() const noexcept { return plans_.misses(); }

  /// One recorded engine pass: where every item ran, and the merged
  /// command trace the engine executed.
  struct RecordedWave {
    std::vector<WaveSlot> slots;
    std::vector<dram::Command> trace;
  };

  /// Item placements of the most recent engine pass (always tracked).
  const std::vector<WaveSlot>& last_wave() const noexcept {
    return wave_log_->last_wave;
  }
  /// Record every subsequent pass's placements + merged trace (off by
  /// default: costs memory proportional to the traces). Toggling clears
  /// the log.
  void set_record_waves(bool record) {
    wave_log_->record = record;
    wave_log_->recorded.clear();
  }
  const std::vector<RecordedWave>& recorded_waves() const noexcept {
    return wave_log_->recorded;
  }

 private:
  void transform(std::vector<std::uint32_t>& a, const ntt::NttParams& params,
                 bool inverse_direction);
  /// One engine pass over `wave` (any item count; banks assigned
  /// round-robin, rows packed per bank).
  void run_wave(std::span<const BatchItem> wave);
  std::shared_ptr<const mapping::MappedNtt> plan_for(
      const ntt::NttParams& params, bool inverse_direction,
      std::uint16_t bank, std::uint32_t base_row);

  dram::DramGeometry geometry_;
  std::size_t num_buffers_;
  double freq_mhz_;
  pim::PimDevice device_;
  sim::Engine engine_;
  mapping::PlanCache plans_;
  /// Single-driver written, share-readable (NttBackend counter contract):
  /// relaxed suffices because readers sample monotone totals for stats and
  /// never derive synchronization from them.
  std::atomic<std::uint64_t> cycles_{0};
  double energy_nj_ = 0;  ///< single-driver, quiescent-read (see accessors)
  std::atomic<std::uint64_t> engine_passes_{0};

  /// Wave capture state mutated by every engine pass. Confined to the
  /// driving thread like the transform methods themselves; the wrapper
  /// asserts that contract on every access in debug builds (the accessors
  /// above therefore require quiescence *or the owner thread*, as the
  /// counter-contract comment documents).
  struct WaveLog {
    std::vector<WaveSlot> last_wave;
    std::vector<RecordedWave> recorded;
    bool record = false;
  };
  sync::ThreadConfined<WaveLog> wave_log_;
};

}  // namespace nttpim::fhe
