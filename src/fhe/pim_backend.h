// NTT execution backends for the FHE layer.
//
// Ring operations are expressed against the NttBackend interface so the
// same FHE code can run its transforms either on the host CPU or through
// the full NTT-PIM stack (host interface -> mapper -> cycle simulator),
// demonstrating the paper's deployment model: the application issues NTT
// "write requests" and the PIM executes them in-memory.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/config.h"
#include "ntt/params.h"

namespace nttpim::fhe {

class NttBackend {
 public:
  virtual ~NttBackend() = default;

  /// In-place forward negacyclic NTT, natural order.
  virtual void forward(std::vector<std::uint32_t>& a,
                       const ntt::NttParams& params) = 0;
  /// In-place inverse negacyclic NTT, natural order.
  virtual void inverse(std::vector<std::uint32_t>& a,
                       const ntt::NttParams& params) = 0;

  /// Number of transforms executed so far.
  std::uint64_t transform_count() const noexcept { return transforms_; }

 protected:
  std::uint64_t transforms_ = 0;
};

/// Host-CPU reference backend.
class CpuBackend final : public NttBackend {
 public:
  void forward(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;
  void inverse(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;
};

/// Backend that executes every transform on the simulated NTT-PIM device
/// and accumulates the simulated cycle/energy cost.
class PimBackend final : public NttBackend {
 public:
  explicit PimBackend(std::size_t num_buffers = 4,
                      double freq_mhz = 1200.0);

  void forward(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;
  void inverse(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;

  std::uint64_t total_cycles() const noexcept { return cycles_; }
  double total_energy_nj() const noexcept { return energy_nj_; }
  double total_us() const;

 private:
  void transform(std::vector<std::uint32_t>& a, const ntt::NttParams& params,
                 bool inverse_direction);

  std::size_t num_buffers_;
  double freq_mhz_;
  std::uint64_t cycles_ = 0;
  double energy_nj_ = 0;
};

}  // namespace nttpim::fhe
