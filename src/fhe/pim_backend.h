// NTT execution backends for the FHE layer.
//
// Ring operations are expressed against the NttBackend interface so the
// same FHE code can run its transforms either on the host CPU or through
// the full NTT-PIM stack (host interface -> mapper -> cycle simulator),
// demonstrating the paper's deployment model: the application issues NTT
// "write requests" and the PIM executes them in-memory.
//
// PimBackend is throughput-shaped: it owns one persistent simulated device
// (constructed once, not per transform), memoizes mapped command traces in
// a mapping::PlanCache keyed by (geometry, params, config, job), and offers
// transform_batch() which shards a batch of polynomials across the device's
// banks and simulates them in a single engine pass, so bank-level
// parallelism is exercised end-to-end. Simulated *hardware* numbers are
// unchanged by any of this — only host wall-clock drops.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dram/config.h"
#include "mapping/plan_cache.h"
#include "ntt/params.h"
#include "pim/device.h"
#include "sim/engine.h"

namespace nttpim::fhe {

class NttBackend {
 public:
  virtual ~NttBackend() = default;

  /// In-place forward negacyclic NTT, natural order.
  virtual void forward(std::vector<std::uint32_t>& a,
                       const ntt::NttParams& params) = 0;
  /// In-place inverse negacyclic NTT, natural order.
  virtual void inverse(std::vector<std::uint32_t>& a,
                       const ntt::NttParams& params) = 0;

  /// Number of transforms executed so far.
  std::uint64_t transform_count() const noexcept { return transforms_; }

 protected:
  std::uint64_t transforms_ = 0;
};

/// Host-CPU reference backend.
class CpuBackend final : public NttBackend {
 public:
  void forward(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;
  void inverse(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;
};

/// Backend that executes every transform on the simulated NTT-PIM device
/// and accumulates the simulated cycle/energy cost.
class PimBackend final : public NttBackend {
 public:
  /// `geometry` fixes the simulated device for the backend's lifetime; the
  /// default is the paper's single-bank Table-I configuration. Use
  /// dram::hbm2e_geometry(B) to enable B-way transform_batch sharding.
  explicit PimBackend(std::size_t num_buffers = 4, double freq_mhz = 1200.0,
                      const dram::DramGeometry& geometry =
                          dram::hbm2e_geometry(1));

  void forward(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;
  void inverse(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;

  /// Batched transform: shard `polys` across the device's banks, one
  /// polynomial per bank, and simulate each wave of num_banks() transforms
  /// in a single engine pass (per-bank traces are cached plans replicated
  /// with rewritten bank ids). Semantics per polynomial are identical to
  /// forward()/inverse(); total_cycles() advances by the *makespan* of each
  /// shared pass, which is what makes this a throughput API.
  void transform_batch(std::span<std::vector<std::uint32_t>> polys,
                       const ntt::NttParams& params, bool inverse = false);

  const dram::DramGeometry& geometry() const noexcept { return geometry_; }
  std::size_t num_banks() const noexcept { return device_.num_banks(); }

  std::uint64_t total_cycles() const noexcept { return cycles_; }
  double total_energy_nj() const noexcept { return energy_nj_; }
  double total_us() const;
  /// Engine passes executed (one per single transform or batch wave).
  std::uint64_t engine_passes() const noexcept { return engine_passes_; }
  std::uint64_t plan_cache_hits() const noexcept { return plans_.hits(); }
  std::uint64_t plan_cache_misses() const noexcept { return plans_.misses(); }

 private:
  void transform(std::vector<std::uint32_t>& a, const ntt::NttParams& params,
                 bool inverse_direction);
  /// One engine pass over at most num_banks() polynomials.
  void transform_wave(std::span<std::vector<std::uint32_t>> wave,
                      const ntt::NttParams& params, bool inverse_direction);
  std::shared_ptr<const mapping::MappedNtt> plan_for(
      const ntt::NttParams& params, bool inverse_direction,
      std::uint16_t bank);

  dram::DramGeometry geometry_;
  std::size_t num_buffers_;
  double freq_mhz_;
  pim::PimDevice device_;
  sim::Engine engine_;
  mapping::PlanCache plans_;
  std::uint64_t cycles_ = 0;
  double energy_nj_ = 0;
  std::uint64_t engine_passes_ = 0;
};

}  // namespace nttpim::fhe
