#include "fhe/ntt_backend.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/check.h"

namespace nttpim::fhe {

void NttBackend::validate_batch_items(std::span<const BatchItem> items) {
  std::vector<const std::vector<std::uint32_t>*> polys;
  polys.reserve(items.size());
  for (const auto& item : items) {
    NTTPIM_EXPECT_MSG(item.poly != nullptr && item.params != nullptr,
                      "batch item needs a polynomial and a parameter set");
    polys.push_back(item.poly);
  }
  std::sort(polys.begin(), polys.end());
  NTTPIM_EXPECT_MSG(
      std::adjacent_find(polys.begin(), polys.end()) == polys.end(),
      "batch items must not alias the same polynomial (write-back order "
      "of aliased outputs is unspecified)");
}

std::uint64_t NttBackend::default_item_cycles(std::size_t n) {
  const auto log2n = static_cast<std::uint64_t>(exact_log2(n));
  return 4 * static_cast<std::uint64_t>(n) * (log2n + 2);
}

void NttBackend::transform_batch_mixed(std::span<const BatchItem> items) {
  validate_batch_items(items);
  for (const auto& item : items) {
    if (item.inverse)
      inverse(*item.poly, *item.params);
    else
      forward(*item.poly, *item.params);
  }
}

void NttBackend::transform_batch(std::span<std::vector<std::uint32_t>> polys,
                                 const ntt::NttParams& params, bool inverse) {
  std::vector<BatchItem> items;
  items.reserve(polys.size());
  for (auto& poly : polys) items.push_back({&poly, &params, inverse});
  transform_batch_mixed(items);
}

std::uint64_t NttBackend::estimate_wave_cycles(
    std::span<const BatchItem> items) const {
  std::uint64_t cycles = 0;
  for (const auto& item : items) {
    NTTPIM_EXPECT_MSG(item.params != nullptr,
                      "estimating a wave needs each item's parameter set");
    cycles += default_item_cycles(item.params->n());
  }
  return cycles;
}

}  // namespace nttpim::fhe
