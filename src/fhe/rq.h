// Ring elements of R_q = Z_q[X]/(X^N + 1), RNS-decomposed.
//
// The paper's target ring (Sec. II.B): polynomials of power-of-two length
// with negacyclic wraparound. Elements are stored per RNS limb in natural
// coefficient order; multiplication routes each limb's transforms through
// an NttBackend (CPU or simulated PIM).
#pragma once

#include <cstdint>
#include <vector>

#include "fhe/pim_backend.h"
#include "fhe/rns.h"

namespace nttpim::fhe {

class RqPoly {
 public:
  /// Zero element over `basis` (which must outlive the polynomial).
  explicit RqPoly(const RnsBasis& basis);

  /// From signed "small" coefficients (secrets/noise), centered lift.
  static RqPoly from_signed(const RnsBasis& basis,
                            const std::vector<std::int64_t>& coeffs);

  /// From unsigned wide coefficients in [0, Q).
  static RqPoly from_wide(const RnsBasis& basis,
                          const std::vector<unsigned __int128>& coeffs);

  const RnsBasis& basis() const noexcept { return *basis_; }
  std::size_t n() const noexcept { return basis_->n(); }

  /// Residues of one limb (natural coefficient order).
  const std::vector<std::uint32_t>& limb(std::size_t i) const;
  std::vector<std::uint32_t>& limb(std::size_t i);

  /// CRT-reconstructed coefficients in [0, Q).
  std::vector<unsigned __int128> to_wide() const;

  RqPoly operator+(const RqPoly& other) const;
  RqPoly operator-(const RqPoly& other) const;
  RqPoly negate() const;

  /// Negacyclic product; limb transforms run on `backend`.
  RqPoly multiply(const RqPoly& other, NttBackend& backend) const;

  bool operator==(const RqPoly& other) const = default;

 private:
  const RnsBasis* basis_;
  std::vector<std::vector<std::uint32_t>> limbs_;
};

}  // namespace nttpim::fhe
