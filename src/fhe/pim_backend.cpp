#include "fhe/pim_backend.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/check.h"
#include "mapping/act_model.h"
#include "ntt/negacyclic.h"
#include "pim/host.h"

namespace nttpim::fhe {

namespace {

sim::EngineConfig engine_config(double freq_mhz) {
  sim::EngineConfig ec;
  ec.timing = dram::hbm2e_timing().at_frequency(freq_mhz);
  return ec;
}

/// Replays the channel-major wave placement shared by run_wave and
/// estimate_wave_cycles: an unhinted item takes the next channel
/// round-robin, a hinted item its pinned channel, and each channel rotates
/// across its own banks. With one channel this is exactly the classic
/// item j -> bank j % banks rule.
class WavePlacer {
 public:
  explicit WavePlacer(const dram::DramGeometry& g)
      : channels_(g.num_channels),
        bpc_(g.banks_per_channel()),
        in_channel_(g.num_channels, 0) {}

  std::uint16_t place(const BatchItem& item) {
    std::size_t ch;
    if (item.channel == BatchItem::kAnyChannel) {
      ch = next_auto_++ % channels_;
    } else {
      NTTPIM_EXPECT_MSG(
          item.channel >= 0 &&
              static_cast<std::size_t>(item.channel) < channels_,
          "batch item pins a nonexistent channel");
      ch = static_cast<std::size_t>(item.channel);
    }
    return static_cast<std::uint16_t>(ch * bpc_ + in_channel_[ch]++ % bpc_);
  }

 private:
  std::size_t channels_;
  std::size_t bpc_;
  std::size_t next_auto_ = 0;
  std::vector<std::size_t> in_channel_;
};

}  // namespace

PimBackend::PimBackend(std::size_t num_buffers, double freq_mhz,
                       const dram::DramGeometry& geometry)
    : geometry_(geometry),
      num_buffers_(num_buffers),
      freq_mhz_(freq_mhz),
      device_(geometry, num_buffers),
      engine_(engine_config(freq_mhz)) {
  NTTPIM_EXPECT_MSG(num_buffers >= 2,
                    "the FHE backend needs C2 support (Nb >= 2)");
  NTTPIM_EXPECT_MSG(geometry.banks >= 1, "device needs at least one bank");
  NTTPIM_EXPECT_MSG(geometry.num_channels >= 1 &&
                        geometry.banks % geometry.num_channels == 0,
                    "banks must divide evenly across channels");
}

void PimBackend::forward(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  transform(a, params, /*inverse_direction=*/false);
}

void PimBackend::inverse(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  transform(a, params, /*inverse_direction=*/true);
}

std::shared_ptr<const mapping::MappedNtt> PimBackend::plan_for(
    const ntt::NttParams& params, bool inverse_direction, std::uint16_t bank,
    std::uint32_t base_row) {
  mapping::MapperConfig config;
  config.num_buffers = num_buffers_;
  config.bank = bank;

  mapping::NttJob job;
  job.base_row = base_row;
  job.direction = inverse_direction ? mapping::Direction::kInverse
                                    : mapping::Direction::kForward;
  job.negacyclic = inverse_direction;  // psi^{-i} post-scale on the PIM
  return plans_.get_or_map(geometry_, params, config, job);
}

void PimBackend::transform(std::vector<std::uint32_t>& a,
                           const ntt::NttParams& params,
                           bool inverse_direction) {
  const BatchItem item{&a, &params, inverse_direction};
  run_wave({&item, 1});
}

void PimBackend::transform_batch(std::span<std::vector<std::uint32_t>> polys,
                                 const ntt::NttParams& params, bool inverse) {
  const std::size_t banks = device_.num_banks();
  std::vector<BatchItem> items;
  items.reserve(std::min(banks, polys.size()));
  for (std::size_t first = 0; first < polys.size(); first += banks) {
    const std::size_t count = std::min(banks, polys.size() - first);
    items.clear();
    for (std::size_t i = 0; i < count; ++i)
      items.push_back({&polys[first + i], &params, inverse});
    run_wave(items);
  }
}

void PimBackend::transform_batch_mixed(std::span<const BatchItem> items) {
  validate_batch_items(items);
  if (!items.empty()) run_wave(items);
}

std::uint64_t PimBackend::estimate_wave_cycles(
    std::span<const BatchItem> items) const {
  const dram::DramTiming timing = engine_config(freq_mhz_).timing;
  const std::size_t banks = geometry_.banks;
  std::vector<std::uint64_t> bank_cycles(banks, 0);
  // Total command-bus occupancy per channel (mapped counts only): banks of
  // one channel share one bus, so a channel can never finish faster than
  // its commands can issue — the constraint that makes a multi-channel
  // estimate strictly smaller on bus-bound bulk waves.
  std::vector<std::uint64_t> bus_cycles(geometry_.num_channels, 0);
  WavePlacer placer(geometry_);
  for (std::size_t j = 0; j < items.size(); ++j) {
    const BatchItem& item = items[j];
    NTTPIM_EXPECT_MSG(item.params != nullptr,
                      "estimating a wave needs each item's parameter set");
    mapping::MapperConfig config;
    config.num_buffers = num_buffers_;
    mapping::NttJob job;
    job.direction = item.inverse ? mapping::Direction::kInverse
                                 : mapping::Direction::kForward;
    job.negacyclic = item.inverse;
    const auto key =
        mapping::PlanKey::make(geometry_, *item.params, config, job);
    std::uint64_t cycles;
    std::uint64_t item_bus_cycles = 0;
    if (const auto counts = plans_.peek_counts(key)) {
      cycles = mapping::ActModel::estimate_pass_cycles(*counts, timing);
      // Every command holds its bus one cycle; PARAM holds it two.
      item_bus_cycles = counts->total + counts->params;
    } else {
      cycles = default_item_cycles(item.params->n());
    }
    const std::uint16_t bank = placer.place(item);
    bank_cycles[bank] += cycles;
    bus_cycles[geometry_.channel_of(bank)] += item_bus_cycles;
  }
  std::uint64_t makespan = 0;
  for (std::size_t b = 0; b < banks; ++b) {
    const std::size_t ch = geometry_.channel_of(b);
    makespan = std::max(makespan, std::max(bank_cycles[b], bus_cycles[ch]));
  }
  return makespan;
}

void PimBackend::run_wave(std::span<const BatchItem> wave) {
  NTTPIM_EXPECT(!wave.empty());
  const std::size_t banks = device_.num_banks();
  const std::size_t words_per_row = geometry_.words_per_row();

  // Placement: channel-major round-robin (hints honored — see the header),
  // stacked at each bank's next free row block. Host-side load applies the
  // bit-reversal permutation and (for forward transforms) folds the psi^i
  // negacyclic pre-scale into the data.
  std::vector<std::uint32_t> next_row(banks, 0);
  WaveLog& log = *wave_log_;  // asserts the single-driver contract (debug)
  log.last_wave.clear();
  log.last_wave.reserve(wave.size());
  WavePlacer placer(geometry_);
  std::vector<std::shared_ptr<const mapping::MappedNtt>> plans(wave.size());
  for (std::size_t j = 0; j < wave.size(); ++j) {
    const BatchItem& item = wave[j];
    const ntt::NttParams& params = *item.params;
    NTTPIM_EXPECT(item.poly->size() == params.n());
    const std::uint16_t bank = placer.place(item);
    const std::uint32_t base_row = next_row[bank];
    const auto rows_used = static_cast<std::uint32_t>(
        div_ceil(params.n(), words_per_row));
    NTTPIM_EXPECT_MSG(base_row + rows_used <= geometry_.rows_per_bank,
                      "wave overflows a bank's row capacity");
    next_row[bank] = base_row + rows_used;

    std::vector<std::uint32_t> staged = *item.poly;
    if (!item.inverse)
      ntt::geometric_scale(staged, params.psi(), 1, params.q());
    pim::load_polynomial(device_.bank(bank), base_row, staged);

    plans[j] = plan_for(params, item.inverse, bank, base_row);
    log.last_wave.push_back(
        {bank, base_row, params.n(), params.q(), item.inverse,
         static_cast<std::uint16_t>(geometry_.channel_of(bank))});
  }

  // Merge the per-bank command sequences (items sharing a bank run
  // back-to-back, in item order) round-robin across banks, so the shared
  // command bus sees every bank from the first cycles of the pass instead
  // of draining banks in id order. The engine re-queues commands per bank,
  // so the interleave is cycle-identical to concatenation — it keeps the
  // merged trace honest as a memory-controller command stream.
  sim::RunStats stats;
  if (wave.size() == 1 && !log.record) {
    stats = engine_.run(device_, plans[0]->trace);
  } else {
    // Cursor per bank over its items' traces (in item order): each round
    // emits every bank's next command, copying each command exactly once.
    struct BankCursor {
      std::vector<std::span<const dram::Command>> seqs;
      std::size_t seq = 0;
      std::size_t pos = 0;
    };
    std::vector<BankCursor> cursors(banks);
    std::size_t total = 0;
    for (std::size_t j = 0; j < wave.size(); ++j) {
      cursors[log.last_wave[j].bank].seqs.push_back(plans[j]->trace);
      total += plans[j]->trace.size();
    }
    std::vector<dram::Command> merged;
    merged.reserve(total);
    while (merged.size() < total)
      for (auto& c : cursors) {
        while (c.seq < c.seqs.size() && c.pos == c.seqs[c.seq].size()) {
          ++c.seq;
          c.pos = 0;
        }
        if (c.seq < c.seqs.size()) merged.push_back(c.seqs[c.seq][c.pos++]);
      }
    stats = engine_.run(device_, merged);
    if (log.record)
      log.recorded.push_back({log.last_wave, std::move(merged)});
  }

  for (std::size_t j = 0; j < wave.size(); ++j)
    *wave[j].poly = pim::read_result(device_.bank(log.last_wave[j].bank),
                                     plans[j]->result_base_row,
                                     wave[j].params->n());

  cycles_.fetch_add(stats.cycles, std::memory_order_relaxed);
  energy_nj_ += stats.energy.total_nj();
  engine_passes_.fetch_add(1, std::memory_order_relaxed);
  transforms_.fetch_add(wave.size(), std::memory_order_relaxed);
}

double PimBackend::total_us() const {
  return static_cast<double>(total_cycles()) * (1e3 / freq_mhz_) / 1e3;
}

}  // namespace nttpim::fhe
