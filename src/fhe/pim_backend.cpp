#include "fhe/pim_backend.h"

#include <algorithm>

#include "common/check.h"
#include "ntt/negacyclic.h"
#include "pim/host.h"

namespace nttpim::fhe {

namespace {

sim::EngineConfig engine_config(double freq_mhz) {
  sim::EngineConfig ec;
  ec.timing = dram::hbm2e_timing().at_frequency(freq_mhz);
  return ec;
}

}  // namespace

void CpuBackend::forward(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  ntt::forward_negacyclic_ntt(a, params);
  ++transforms_;
}

void CpuBackend::inverse(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  ntt::inverse_negacyclic_ntt(a, params);
  ++transforms_;
}

PimBackend::PimBackend(std::size_t num_buffers, double freq_mhz,
                       const dram::DramGeometry& geometry)
    : geometry_(geometry),
      num_buffers_(num_buffers),
      freq_mhz_(freq_mhz),
      device_(geometry, num_buffers),
      engine_(engine_config(freq_mhz)) {
  NTTPIM_EXPECT_MSG(num_buffers >= 2,
                    "the FHE backend needs C2 support (Nb >= 2)");
  NTTPIM_EXPECT_MSG(geometry.banks >= 1, "device needs at least one bank");
}

void PimBackend::forward(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  transform(a, params, /*inverse_direction=*/false);
}

void PimBackend::inverse(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  transform(a, params, /*inverse_direction=*/true);
}

std::shared_ptr<const mapping::MappedNtt> PimBackend::plan_for(
    const ntt::NttParams& params, bool inverse_direction,
    std::uint16_t bank) {
  mapping::MapperConfig config;
  config.num_buffers = num_buffers_;
  config.bank = bank;

  mapping::NttJob job;
  job.direction = inverse_direction ? mapping::Direction::kInverse
                                    : mapping::Direction::kForward;
  job.negacyclic = inverse_direction;  // psi^{-i} post-scale on the PIM
  return plans_.get_or_map(geometry_, params, config, job);
}

void PimBackend::transform(std::vector<std::uint32_t>& a,
                           const ntt::NttParams& params,
                           bool inverse_direction) {
  transform_wave({&a, 1}, params, inverse_direction);
}

void PimBackend::transform_batch(std::span<std::vector<std::uint32_t>> polys,
                                 const ntt::NttParams& params, bool inverse) {
  const std::size_t banks = device_.num_banks();
  for (std::size_t first = 0; first < polys.size(); first += banks)
    transform_wave(
        polys.subspan(first, std::min(banks, polys.size() - first)), params,
        inverse);
}

void PimBackend::transform_wave(std::span<std::vector<std::uint32_t>> wave,
                                const ntt::NttParams& params,
                                bool inverse_direction) {
  NTTPIM_EXPECT(wave.size() >= 1 && wave.size() <= device_.num_banks());

  // Host side: place each polynomial in its own bank; the negacyclic
  // forward folds the psi^i pre-scale into the load.
  for (std::size_t b = 0; b < wave.size(); ++b) {
    NTTPIM_EXPECT(wave[b].size() == params.n());
    std::vector<std::uint32_t> staged = wave[b];
    if (!inverse_direction)
      ntt::geometric_scale(staged, params.psi(), 1, params.q());
    pim::load_polynomial(device_.bank(b), 0, staged);
  }

  // Memory-controller side: one cached plan per bank (bank b's plan is the
  // bank-0 plan with rewritten bank ids), merged into one engine pass.
  std::vector<std::shared_ptr<const mapping::MappedNtt>> plans(wave.size());
  for (std::size_t b = 0; b < wave.size(); ++b)
    plans[b] = plan_for(params, inverse_direction,
                        static_cast<std::uint16_t>(b));

  sim::RunStats stats;
  if (wave.size() == 1) {
    stats = engine_.run(device_, plans[0]->trace);
  } else {
    std::vector<dram::Command> merged;
    std::size_t total = 0;
    for (const auto& plan : plans) total += plan->trace.size();
    merged.reserve(total);
    for (const auto& plan : plans)
      merged.insert(merged.end(), plan->trace.begin(), plan->trace.end());
    stats = engine_.run(device_, merged);
  }

  for (std::size_t b = 0; b < wave.size(); ++b)
    wave[b] = pim::read_result(device_.bank(b), plans[b]->result_base_row,
                               params.n());

  cycles_ += stats.cycles;
  energy_nj_ += stats.energy.total_nj();
  ++engine_passes_;
  transforms_ += wave.size();
}

double PimBackend::total_us() const {
  return static_cast<double>(cycles_) * (1e3 / freq_mhz_) / 1e3;
}

}  // namespace nttpim::fhe
