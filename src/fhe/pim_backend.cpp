#include "fhe/pim_backend.h"

#include "common/check.h"
#include "mapping/mapper.h"
#include "mapping/trace.h"
#include "ntt/negacyclic.h"
#include "pim/host.h"
#include "sim/engine.h"

namespace nttpim::fhe {

void CpuBackend::forward(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  ntt::forward_negacyclic_ntt(a, params);
  ++transforms_;
}

void CpuBackend::inverse(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  ntt::inverse_negacyclic_ntt(a, params);
  ++transforms_;
}

PimBackend::PimBackend(std::size_t num_buffers, double freq_mhz)
    : num_buffers_(num_buffers), freq_mhz_(freq_mhz) {
  NTTPIM_EXPECT_MSG(num_buffers >= 2,
                    "the FHE backend needs C2 support (Nb >= 2)");
}

void PimBackend::forward(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  transform(a, params, /*inverse_direction=*/false);
}

void PimBackend::inverse(std::vector<std::uint32_t>& a,
                         const ntt::NttParams& params) {
  transform(a, params, /*inverse_direction=*/true);
}

void PimBackend::transform(std::vector<std::uint32_t>& a,
                           const ntt::NttParams& params,
                           bool inverse_direction) {
  NTTPIM_EXPECT(a.size() == params.n());
  const dram::DramGeometry geometry = dram::hbm2e_geometry(1);
  pim::PimDevice device(geometry, num_buffers_);

  // Host side: negacyclic forward folds the psi^i pre-scale into the load.
  std::vector<std::uint32_t> staged = a;
  if (!inverse_direction)
    ntt::geometric_scale(staged, params.psi(), 1, params.q());
  pim::load_polynomial(device.bank(0), 0, staged);

  mapping::MapperConfig config;
  config.num_buffers = num_buffers_;
  const mapping::RowCentricMapper mapper(geometry, params, config);

  mapping::NttJob job;
  job.direction = inverse_direction ? mapping::Direction::kInverse
                                    : mapping::Direction::kForward;
  job.negacyclic = inverse_direction;  // psi^{-i} post-scale on the PIM
  const auto mapped = mapper.map(job);

  sim::EngineConfig ec;
  ec.timing = dram::hbm2e_timing().at_frequency(freq_mhz_);
  const sim::Engine engine(ec);
  const auto stats = engine.run(device, mapped.trace);

  a = pim::read_result(device.bank(0), mapped.result_base_row, params.n());
  cycles_ += stats.cycles;
  energy_nj_ += stats.energy.total_nj();
  ++transforms_;
}

double PimBackend::total_us() const {
  return static_cast<double>(cycles_) * (1e3 / freq_mhz_) / 1e3;
}

}  // namespace nttpim::fhe
