#include "fhe/rq.h"

#include "common/check.h"
#include "fhe/rns_poly.h"
#include "ntt/modular.h"

namespace nttpim::fhe {

RqPoly::RqPoly(const RnsBasis& basis) : basis_(&basis) {
  limbs_.resize(basis.limb_count());
  for (auto& limb : limbs_) limb.assign(basis.n(), 0);
}

RqPoly RqPoly::from_signed(const RnsBasis& basis,
                           const std::vector<std::int64_t>& coeffs) {
  NTTPIM_EXPECT(coeffs.size() == basis.n());
  RqPoly out(basis);
  for (std::size_t i = 0; i < basis.limb_count(); ++i) {
    const std::int64_t q = basis.prime(i);
    for (std::size_t j = 0; j < coeffs.size(); ++j) {
      const std::int64_t r = ((coeffs[j] % q) + q) % q;
      out.limbs_[i][j] = static_cast<std::uint32_t>(r);
    }
  }
  return out;
}

RqPoly RqPoly::from_wide(const RnsBasis& basis,
                         const std::vector<unsigned __int128>& coeffs) {
  NTTPIM_EXPECT(coeffs.size() == basis.n());
  RqPoly out(basis);
  out.limbs_ = basis.to_rns(coeffs);
  return out;
}

const std::vector<std::uint32_t>& RqPoly::limb(std::size_t i) const {
  NTTPIM_EXPECT(i < limbs_.size());
  return limbs_[i];
}

std::vector<std::uint32_t>& RqPoly::limb(std::size_t i) {
  NTTPIM_EXPECT(i < limbs_.size());
  return limbs_[i];
}

std::vector<unsigned __int128> RqPoly::to_wide() const {
  return basis_->from_rns(limbs_);
}

RqPoly RqPoly::operator+(const RqPoly& other) const {
  NTTPIM_EXPECT(basis_ == other.basis_);
  RqPoly out(*basis_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint32_t q = basis_->prime(i);
    for (std::size_t j = 0; j < limbs_[i].size(); ++j)
      out.limbs_[i][j] = static_cast<std::uint32_t>(
          ntt::add_mod(limbs_[i][j], other.limbs_[i][j], q));
  }
  return out;
}

RqPoly RqPoly::operator-(const RqPoly& other) const {
  NTTPIM_EXPECT(basis_ == other.basis_);
  RqPoly out(*basis_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint32_t q = basis_->prime(i);
    for (std::size_t j = 0; j < limbs_[i].size(); ++j)
      out.limbs_[i][j] = static_cast<std::uint32_t>(
          ntt::sub_mod(limbs_[i][j], other.limbs_[i][j], q));
  }
  return out;
}

RqPoly RqPoly::negate() const {
  RqPoly out(*basis_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint32_t q = basis_->prime(i);
    for (std::size_t j = 0; j < limbs_[i].size(); ++j)
      out.limbs_[i][j] =
          static_cast<std::uint32_t>(ntt::neg_mod(limbs_[i][j], q));
  }
  return out;
}

RqPoly RqPoly::multiply(const RqPoly& other, NttBackend& backend) const {
  NTTPIM_EXPECT(basis_ == other.basis_);
  // All limbs of both operands go through the backend as two heterogeneous
  // waves (forward, inverse) — on a multi-bank PimBackend each wave is one
  // engine pass with a different NTT per bank.
  RqPoly out(*basis_);
  out.limbs_ = rns_limb_product(*basis_, limbs_, other.limbs_, backend);
  return out;
}

}  // namespace nttpim::fhe
