// RNS negacyclic polynomial products over heterogeneous NTT waves.
//
// An RNS-decomposed FHE workload is the paper's bank-heterogeneity claim
// made concrete ("running different NTT functions in each bank"): every
// limb prime q_i gets its own independent NTT, so the limbs of a wide
// product in R_Q = Z_Q[X]/(X^N + 1), Q = q_1*...*q_k, map one-to-one onto
// banks. rns_negacyclic_multiply issues the forward transforms of *all*
// limbs of *both* operands as one mixed wave (one engine pass on a
// PimBackend — limb i of each operand stacked in bank i), does the
// pointwise limb products on the host, issues all inverse transforms as a
// second wave, and CRT-reconstructs.
//
// The ring-element type is fhe::RqPoly (already RNS-decomposed per limb);
// RnsPoly is its workload-facing alias.
#pragma once

#include <cstdint>
#include <vector>

#include "fhe/pim_backend.h"
#include "fhe/rns.h"
#include "fhe/rq.h"

namespace nttpim::fhe {

using RnsPoly = RqPoly;

/// Per-limb negacyclic product core: both operands' limb residues in, the
/// product's limb residues out. Forward NTTs of every limb of both
/// operands form ONE mixed wave, inverse NTTs a second one. When `a` and
/// `b` are the same object (squaring), each limb is transformed once and
/// squared pointwise — no aliased batch items are ever issued.
std::vector<std::vector<std::uint32_t>> rns_limb_product(
    const RnsBasis& basis, const std::vector<std::vector<std::uint32_t>>& a,
    const std::vector<std::vector<std::uint32_t>>& b, NttBackend& backend);

/// Negacyclic product of two RNS polynomials over the same basis.
RnsPoly rns_negacyclic_multiply(const RnsPoly& a, const RnsPoly& b,
                                NttBackend& backend);

/// Convenience overload on wide coefficients in [0, Q): decomposes via
/// `basis`, multiplies, CRT-reconstructs. `a` and `b` may be the same
/// vector (squaring).
std::vector<unsigned __int128> rns_negacyclic_multiply(
    const RnsBasis& basis, const std::vector<unsigned __int128>& a,
    const std::vector<unsigned __int128>& b, NttBackend& backend);

}  // namespace nttpim::fhe
