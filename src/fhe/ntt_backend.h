// The abstract NTT execution backend of the FHE and serving layers.
//
// Ring operations and the serving runtime are expressed against NttBackend
// so the same code can run its transforms on the host CPU (CpuBackend), on
// the full NTT-PIM stack (PimBackend: host interface -> mapper -> cycle
// simulator), or on any future accelerator slot — the deployment model of
// the paper and of MeNTT/BP-NTT, where a host CPU path *coexists* with the
// in-memory accelerator instead of being replaced by it.
//
// The interface is batch-first, because batches are what the serving layer
// dispatches:
//  - transform_batch_mixed(): a heterogeneous wave in which every item
//    carries its own parameter set and direction — the unit of dispatch;
//  - transform_batch(): a same-parameter pile, a convenience over the
//    mixed form;
//  - estimate_wave_cycles(): the backend's own cost model, pricing a wave
//    in *modeled device cycles* (the PIM device clock is the common
//    currency — see ModeledCycles below) without executing anything. This
//    is what a cost-aware dispatcher compares across backends to route
//    each wave to whichever backend clears it soonest.
// Every batch entry point has a documented virtual default, so a minimal
// backend only implements forward()/inverse() and still serves.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "ntt/params.h"

namespace nttpim::fhe {

/// One polynomial of a heterogeneous batch: its own modulus (parameter
/// set) and its own transform direction. `poly` and `params` must outlive
/// the batch call; distinct items must not alias the same vector (the
/// write-back order of aliased outputs would be unspecified — square via
/// fhe::rns_negacyclic_multiply, which transforms shared operands once).
/// Every transform_batch_mixed implementation enforces the aliasing
/// precondition (std::invalid_argument), including the base default path.
struct BatchItem {
  /// `channel` value meaning "backend chooses": multi-channel backends
  /// spread unhinted items across their channels round-robin.
  static constexpr std::int32_t kAnyChannel = -1;

  std::vector<std::uint32_t>* poly = nullptr;
  const ntt::NttParams* params = nullptr;
  bool inverse = false;
  /// Placement hint for channel-partitioned backends (PimBackend): pin the
  /// item to that channel's bank set, so a dispatcher that targets (shard,
  /// channel) keeps concurrent waves on disjoint command buses. Backends
  /// without channels ignore it; a hint >= the backend's channel count is
  /// rejected.
  std::int32_t channel = kAnyChannel;
};

class NttBackend {
 public:
  virtual ~NttBackend() = default;

  /// In-place forward negacyclic NTT, natural order.
  virtual void forward(std::vector<std::uint32_t>& a,
                       const ntt::NttParams& params) = 0;
  /// In-place inverse negacyclic NTT, natural order.
  virtual void inverse(std::vector<std::uint32_t>& a,
                       const ntt::NttParams& params) = 0;

  /// Heterogeneous batch: every item carries its own parameter set and
  /// direction. Default: validate the aliasing precondition, then run the
  /// items in order through forward()/inverse(). PimBackend overrides it
  /// with a single bank-parallel engine pass, CpuBackend with a worker
  /// pool; every override must keep the validation (validate_batch_items).
  virtual void transform_batch_mixed(std::span<const BatchItem> items);

  /// Same-parameter batch: transform every polynomial of `polys` in the
  /// given direction. Default: one mixed wave over the whole span (so a
  /// backend with a parallel mixed path parallelizes this for free).
  /// PimBackend overrides it to shard across banks in device-sized waves.
  virtual void transform_batch(std::span<std::vector<std::uint32_t>> polys,
                               const ntt::NttParams& params,
                               bool inverse = false);

  /// Price the wave `items` in modeled device cycles WITHOUT executing it.
  ///
  /// The unit contract ("ModeledCycles"): one modeled cycle is one tick of
  /// the simulated PIM device clock (PimBackend's freq_mhz, 1200 MHz by
  /// default). Backends that do not simulate hardware normalize their own
  /// cost model into this unit (CpuBackend converts measured-or-fitted
  /// nanoseconds at the same freq_mhz), so a dispatcher can compare
  /// estimates across heterogeneous backends directly.
  ///
  /// Items may carry a null `poly` — only `params`/`inverse` price a wave.
  /// Thread-safety: unlike the transform methods, estimating must be safe
  /// to call from another thread while the backend executes (a dispatcher
  /// prices waves against executing shards).
  ///
  /// Default: the deliberately conservative serial price — the sum of
  /// default_item_cycles over the items, i.e. no parallelism assumed —
  /// so an unpriced backend repels load instead of attracting it.
  virtual std::uint64_t estimate_wave_cycles(
      std::span<const BatchItem> items) const;

  /// Cumulative modeled device cycles this backend has executed, in the
  /// same unit as estimate_wave_cycles. PimBackend reports the simulated
  /// engine cycles; CpuBackend accrues its cost model's price for every
  /// executed wave. Default: 0 (no modeled-hardware account). Safe to read
  /// while another thread drives the backend (monotone counter contract).
  virtual std::uint64_t modeled_cycles() const noexcept { return 0; }

  /// Number of transforms executed so far.
  ///
  /// The single-driver counter contract (referenced as such wherever a
  /// backend counter is annotated): a backend is *single-driver* — all
  /// transform methods require external synchronization, in the serving
  /// stack by thread confinement to the owning shard worker — but the
  /// monotone counters (this one, modeled_cycles(), and PimBackend's
  /// engine-pass/plan-cache counters) are *share-readable*: relaxed
  /// atomics written only by the driving thread and safe to read from any
  /// other thread while a transform runs (e.g. a stats scraper sampling a
  /// serving shard). Relaxed suffices because a counter read orders
  /// nothing — a sample may lag in-flight work, but it is never torn.
  /// This is also why these members carry no GUARDED_BY: there is no
  /// mutex in the contract, and annotating one would force readers to
  /// take a lock the hot path must not pay for.
  std::uint64_t transform_count() const noexcept {
    return transforms_.load(std::memory_order_relaxed);
  }

 protected:
  /// Shared contract of every transform_batch_mixed implementation: items
  /// are complete (poly + params) and reference pairwise-distinct
  /// polynomials. Throws std::invalid_argument.
  static void validate_batch_items(std::span<const BatchItem> items);

  /// Conservative price of one never-measured n-point transform:
  /// 4 * n * (log2 n + 2) modeled cycles — a comfortable factor above the
  /// typical priced cost of a mapped PIM transform (see the calibration
  /// test in test_fhe), so dispatchers treat unknown work as heavy.
  static std::uint64_t default_item_cycles(std::size_t n);

  std::atomic<std::uint64_t> transforms_{0};
};

}  // namespace nttpim::fhe
