#include "fhe/rns.h"

#include "common/check.h"
#include "ntt/modular.h"
#include "ntt/primes.h"

namespace nttpim::fhe {

RnsBasis::RnsBasis(std::size_t n, std::size_t limbs, unsigned bits) : n_(n) {
  NTTPIM_EXPECT_MSG(limbs >= 1 && limbs <= 4,
                    "1..4 limbs supported (products must fit 128 bits)");
  const auto primes = ntt::find_ntt_primes(n, bits, limbs);
  params_.reserve(limbs);
  for (const auto q : primes) params_.emplace_back(n, q);
  finalize();
}

RnsBasis::RnsBasis(std::size_t n, const std::vector<std::uint32_t>& primes)
    : n_(n) {
  NTTPIM_EXPECT(primes.size() >= 1 && primes.size() <= 4);
  params_.reserve(primes.size());
  for (const auto q : primes) params_.emplace_back(n, q);
  finalize();
}

void RnsBasis::finalize() {
  product_ = 1;
  for (const auto& p : params_) {
    for (const auto& other : params_)
      NTTPIM_EXPECT_MSG(&p == &other || p.q() != other.q(),
                        "RNS primes must be distinct");
    product_ *= p.q();
  }
  big_m_.resize(params_.size());
  inv_m_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const std::uint32_t q = params_[i].q();
    big_m_[i] = product_ / q;
    const auto m_mod_q = static_cast<std::uint64_t>(big_m_[i] % q);
    inv_m_[i] = static_cast<std::uint32_t>(ntt::inv_mod(m_mod_q, q));
  }
}

const ntt::NttParams& RnsBasis::params(std::size_t limb) const {
  NTTPIM_EXPECT(limb < params_.size());
  return params_[limb];
}

std::uint32_t RnsBasis::prime(std::size_t limb) const {
  return params(limb).q();
}

std::vector<std::vector<std::uint32_t>> RnsBasis::to_rns(
    const std::vector<unsigned __int128>& coeffs) const {
  // Residues only determine values modulo Q: a coefficient >= Q would be
  // silently aliased to a different representative, so reject it here
  // rather than hand back a decomposition of the wrong number.
  for (const auto& c : coeffs)
    NTTPIM_EXPECT_MSG(c < product_,
                      "RNS input coefficient must lie in [0, Q)");
  std::vector<std::vector<std::uint32_t>> out(limb_count());
  for (std::size_t i = 0; i < limb_count(); ++i) {
    out[i].resize(coeffs.size());
    const std::uint32_t q = params_[i].q();
    for (std::size_t j = 0; j < coeffs.size(); ++j)
      out[i][j] = static_cast<std::uint32_t>(coeffs[j] % q);
  }
  return out;
}

std::vector<unsigned __int128> RnsBasis::from_rns(
    const std::vector<std::vector<std::uint32_t>>& residues) const {
  NTTPIM_EXPECT_MSG(residues.size() == limb_count(),
                    "from_rns needs one residue vector per limb");
  const std::size_t count = residues[0].size();
  for (const auto& limb : residues)
    NTTPIM_EXPECT_MSG(limb.size() == count,
                      "residue vectors must have equal length");
  for (std::size_t i = 0; i < limb_count(); ++i)
    for (const auto r : residues[i])
      NTTPIM_EXPECT_MSG(r < params_[i].q(),
                        "residue out of range for its limb prime");

  std::vector<unsigned __int128> out(count, 0);
  for (std::size_t j = 0; j < count; ++j) {
    unsigned __int128 acc = 0;
    for (std::size_t i = 0; i < limb_count(); ++i) {
      const std::uint32_t q = params_[i].q();
      // term = (r * y_i mod q_i) * M_i, each term < q_i * M_i = Q < 2^124.
      const auto scaled = static_cast<std::uint64_t>(
          ntt::mul_mod(residues[i][j], inv_m_[i], q));
      acc = (acc + scaled * big_m_[i]) % product_;
    }
    out[j] = acc;
  }
  return out;
}

}  // namespace nttpim::fhe
