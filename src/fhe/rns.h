// Residue number system (RNS) over a chain of NTT-friendly primes.
//
// FHE implementations decompose a wide ciphertext modulus Q = q1*q2*...*qk
// into machine-word residues; every limb then runs its own NTT — which is
// exactly the bank-level parallelism the paper exploits ("running different
// NTT functions in each bank"). Up to four 31-bit limbs are supported
// (products fit unsigned __int128).
#pragma once

#include <cstdint>
#include <vector>

#include "ntt/params.h"

namespace nttpim::fhe {

class RnsBasis {
 public:
  /// Basis with `limbs` distinct NTT-friendly primes of ~`bits` bits for
  /// ring dimension n.
  RnsBasis(std::size_t n, std::size_t limbs, unsigned bits = 30);

  /// Basis over explicitly chosen primes.
  RnsBasis(std::size_t n, const std::vector<std::uint32_t>& primes);

  std::size_t limb_count() const noexcept { return params_.size(); }
  std::size_t n() const noexcept { return n_; }
  const ntt::NttParams& params(std::size_t limb) const;
  std::uint32_t prime(std::size_t limb) const;

  /// Q = product of all limb primes (must fit in 128 bits).
  unsigned __int128 modulus_product() const noexcept { return product_; }

  /// Decompose coefficients into per-limb residue vectors. Coefficients
  /// must lie in [0, Q) — anything larger has no faithful RNS image and is
  /// rejected (std::invalid_argument). Empty input yields empty limbs.
  std::vector<std::vector<std::uint32_t>> to_rns(
      const std::vector<unsigned __int128>& coeffs) const;

  /// CRT-reconstruct coefficients in [0, Q) from per-limb residues. Expects
  /// exactly limb_count() equally-sized vectors with residues[i][j] <
  /// prime(i); zero-length limbs reconstruct to an empty vector.
  std::vector<unsigned __int128> from_rns(
      const std::vector<std::vector<std::uint32_t>>& residues) const;

 private:
  void finalize();

  std::size_t n_;
  std::vector<ntt::NttParams> params_;
  unsigned __int128 product_ = 1;
  // CRT precomputation: M_i = Q / q_i and y_i = M_i^{-1} mod q_i.
  std::vector<unsigned __int128> big_m_;
  std::vector<std::uint32_t> inv_m_;
};

}  // namespace nttpim::fhe
