#include "fhe/rns_poly.h"

#include <utility>

#include "common/check.h"
#include "ntt/poly.h"

namespace nttpim::fhe {

std::vector<std::vector<std::uint32_t>> rns_limb_product(
    const RnsBasis& basis, const std::vector<std::vector<std::uint32_t>>& a,
    const std::vector<std::vector<std::uint32_t>>& b, NttBackend& backend) {
  const std::size_t limbs = basis.limb_count();
  NTTPIM_EXPECT(a.size() == limbs && b.size() == limbs);
  for (std::size_t i = 0; i < limbs; ++i)
    NTTPIM_EXPECT(a[i].size() == basis.n() && b[i].size() == basis.n());

  // Squaring shares the operand: transform each limb once.
  const bool square = &a == &b;
  auto fa = a;
  std::vector<std::vector<std::uint32_t>> fb;
  if (!square) fb = b;

  // Wave 1: every limb of every operand forward, a's limbs then b's. The
  // PIM backend places item j in bank j % num_banks(), so with one bank
  // per limb, limb i of BOTH operands stacks in bank i — each bank runs
  // exactly one modulus, different from every other bank's.
  std::vector<BatchItem> wave;
  wave.reserve(limbs * (square ? 1 : 2));
  for (std::size_t i = 0; i < limbs; ++i)
    wave.push_back({&fa[i], &basis.params(i), false});
  if (!square)
    for (std::size_t i = 0; i < limbs; ++i)
      wave.push_back({&fb[i], &basis.params(i), false});
  backend.transform_batch_mixed(wave);

  std::vector<std::vector<std::uint32_t>> prod(limbs);
  for (std::size_t i = 0; i < limbs; ++i)
    prod[i] = ntt::pointwise_mul(fa[i], square ? fa[i] : fb[i],
                                 basis.prime(i));

  // Wave 2: every limb inverse.
  wave.clear();
  for (std::size_t i = 0; i < limbs; ++i)
    wave.push_back({&prod[i], &basis.params(i), true});
  backend.transform_batch_mixed(wave);
  return prod;
}

RnsPoly rns_negacyclic_multiply(const RnsPoly& a, const RnsPoly& b,
                                NttBackend& backend) {
  return a.multiply(b, backend);
}

std::vector<unsigned __int128> rns_negacyclic_multiply(
    const RnsBasis& basis, const std::vector<unsigned __int128>& a,
    const std::vector<unsigned __int128>& b, NttBackend& backend) {
  const auto ra = basis.to_rns(a);
  const auto prod = (&a == &b) ? rns_limb_product(basis, ra, ra, backend)
                               : rns_limb_product(basis, ra, basis.to_rns(b),
                                                  backend);
  return basis.from_rns(prod);
}

}  // namespace nttpim::fhe
