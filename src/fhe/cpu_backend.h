// Host-CPU serving backend.
//
// The CPU reference kernels (ntt/reference + the per-(n,q) twiddle cache)
// started life as validation golden models; CpuBackend promotes them to a
// first-class *serving* backend so the dispatcher can route traffic to
// whichever backend — PIM shard or CPU worker — clears it soonest. That is
// the deployment model NTT-PIM (and MeNTT/BP-NTT) assume: the host CPU
// path coexists with the in-memory accelerator, absorbing small transforms
// and overflow traffic while bulk RNS waves stay on the PIM.
//
// Two things make it production-shaped rather than a loop around the
// golden model:
//  - transform_batch_mixed() dispatches the wave's items over a small
//    worker pool (Config::threads lanes, item j on lane j % lanes; the
//    calling thread drives lane 0), preserving the distinct-vector
//    contract — lanes touch disjoint polynomials, so the only shared state
//    is the relaxed transform counter. threads <= 1 degrades to the tight
//    serial loop.
//  - estimate_wave_cycles() is a calibrated cost model in the same
//    modeled-cycle unit as the PIM backend's (see NttBackend): one item
//    costs cycles_per_point_stage * n * log2(n) modeled cycles — the
//    classic n log n fit. The constant starts from the documented default
//    fit of the reference kernel (or a measure_cycles_per_point_stage()
//    boot measurement) and then *tightens with traffic*: every executed
//    wave's measured wall time feeds a rolling EWMA
//    (Config::calibration_alpha), so routing estimates converge on the
//    deployment host's real speed instead of trusting a boot-time
//    constant. A wave's price replays the pool's lane placement and
//    returns the busiest lane's total, mirroring how PimBackend prices
//    its bank placement. The modeled_cycles() *account* deliberately
//    keeps the boot constant — it is the deterministic cross-backend
//    bookkeeping unit, not a routing estimate.
//
// Thread-safety follows the NttBackend contract: single driver for the
// transform methods (the pool is internal), share-readable monotone
// counters, and estimate_wave_cycles safe from any thread (pure arithmetic
// on immutable config).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "fhe/ntt_backend.h"
#include "sync/mutex.h"

namespace nttpim::fhe {

class CpuBackend final : public NttBackend {
 public:
  struct Config {
    /// Worker-pool lanes for transform_batch_mixed (the calling thread
    /// drives lane 0, so `threads` lanes spawn threads-1 pool threads).
    /// <= 1 means the serial tight loop.
    std::size_t threads = 1;
    /// Modeled device clock the cost model normalizes to, in MHz. Keep it
    /// equal to the PIM shards' freq_mhz so estimates share one unit.
    double freq_mhz = 1200.0;
    /// Fitted cost constant: one n-point transform is priced at
    /// cycles_per_point_stage * n * log2(n) modeled cycles. The default is
    /// the documented fit of the reference negacyclic kernel (measured
    /// ns/(n log2 n) * freq); calibrate on the deployment host with
    /// measure_cycles_per_point_stage() for a tighter starting point.
    double cycles_per_point_stage = 6.0;
    /// EWMA weight of each executed wave's measured calibration sample:
    /// after a wave, calibrated <- (1 - alpha) * calibrated + alpha *
    /// measured cycles-per-point-stage of that wave's busiest lane. 0
    /// disables the feedback (estimates stick to the boot constant);
    /// must be in [0, 1].
    double calibration_alpha = 0.25;
  };

  CpuBackend() : CpuBackend(Config{}) {}
  explicit CpuBackend(const Config& config);
  ~CpuBackend() override;  ///< joins the worker pool

  CpuBackend(const CpuBackend&) = delete;
  CpuBackend& operator=(const CpuBackend&) = delete;

  void forward(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;
  void inverse(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override;

  /// One wave, item j executed on lane j % threads. The wave fails as a
  /// unit: if any item's transform throws, the first error is rethrown
  /// after every lane finished and the wave's output state is unspecified
  /// (same contract as a mid-pass PIM failure).
  void transform_batch_mixed(std::span<const BatchItem> items) override;

  /// Busiest-lane makespan of the fitted per-item prices, using the
  /// *rolling* calibration constant (see Config). Items may carry a null
  /// poly; safe from any thread at any time (the constant is an atomic).
  std::uint64_t estimate_wave_cycles(
      std::span<const BatchItem> items) const override;

  /// Cost-model price of everything executed so far — the CPU has no cycle
  /// simulator, so its modeled-hardware account *is* the calibrated model
  /// (deterministic for a fixed Config, unlike wall-clock).
  std::uint64_t modeled_cycles() const noexcept override {
    return modeled_cycles_.load(std::memory_order_relaxed);
  }

  const Config& config() const noexcept { return cfg_; }
  std::size_t lanes() const noexcept { return lanes_; }

  /// The rolling cost constant estimate_wave_cycles prices with: the boot
  /// Config value until the first executed wave, then the EWMA of
  /// measured samples. Safe from any thread.
  double calibrated_cycles_per_point_stage() const noexcept {
    return calibrated_.load(std::memory_order_relaxed);
  }
  /// Fold one measured cycles-per-point-stage sample into the rolling
  /// constant with weight Config::calibration_alpha (no-op at alpha 0).
  /// Called internally after each executed wave; public so tests and
  /// operators can inject deterministic samples. Single-driver like the
  /// transform methods.
  void record_calibration_sample(double cycles_per_point_stage);

  /// Microbenchmark the reference negacyclic kernel on this host and
  /// return the fitted cycles_per_point_stage at `freq_mhz`: the best of
  /// `reps` timed n-point forward transforms, as modeled cycles per
  /// n*log2(n). Takes ~reps transforms of wall-clock; call it once at
  /// deployment and reuse the constant.
  static double measure_cycles_per_point_stage(double freq_mhz = 1200.0,
                                               std::size_t n = 1024,
                                               int reps = 9);

 private:
  /// Price of one n-point transform in modeled cycles at the boot
  /// constant (the modeled_cycles() accounting unit).
  std::uint64_t item_cycles(std::size_t n) const;
  /// Same price at the rolling calibrated constant (the routing unit).
  std::uint64_t estimated_item_cycles(std::size_t n) const;
  /// Measure one executed wave (wall nanoseconds, busiest-lane weight)
  /// and feed the EWMA.
  void feed_calibration(std::span<const BatchItem> items, double wall_ns);
  /// Execute every item of batch_ whose index % lanes_ == lane.
  void run_lane(std::size_t lane) noexcept;
  void pool_main(std::size_t lane);

  const Config cfg_;
  const std::size_t lanes_;
  std::atomic<std::uint64_t> modeled_cycles_{0};
  std::atomic<double> calibrated_;  ///< rolling cycles-per-point-stage

  // Batch rendezvous: transform_batch_mixed publishes the wave under mu_,
  // bumps the epoch, runs lane 0 itself, and waits for the pool lanes.
  sync::Mutex mu_;
  sync::CondVar work_cv_;  ///< pool: new epoch / stop
  sync::CondVar done_cv_;  ///< caller: all pool lanes finished
  /// Deliberately NOT guarded_by(mu_): the span is published under mu_
  /// (with the epoch bump) but *read lock-free* by run_lane between the
  /// two rendezvous — the epoch handshake through mu_ provides the
  /// happens-before for both the publication and the caller's teardown
  /// (which only clears it after lanes_running_ drained to 0).
  std::span<const BatchItem> batch_{};
  std::uint64_t epoch_ NTTPIM_GUARDED_BY(mu_) = 0;
  std::size_t lanes_running_ NTTPIM_GUARDED_BY(mu_) = 0;
  /// First failing item's error.
  std::exception_ptr batch_error_ NTTPIM_GUARDED_BY(mu_);
  bool stop_ NTTPIM_GUARDED_BY(mu_) = false;
  std::vector<std::thread> pool_;  ///< lanes 1..lanes_-1
};

}  // namespace nttpim::fhe
