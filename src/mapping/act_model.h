// Closed-form row-activation counts for the row-centric mapping
// (paper Sec. III.C's activation analysis, generalized to atom-granular
// buffers and pipelined grouping).
//
// These formulas are validated against the actual traces in the tests and
// used by benches to report the pipelining ACT reduction (Fig. 6c).
#pragma once

#include <cstdint>

#include "mapping/layout.h"
#include "mapping/mapper.h"
#include "mapping/trace.h"

namespace nttpim::mapping {

struct ActModel {
  /// ACTs for the first log R stages: one per row block.
  static std::uint64_t row_blocks(const DataLayout& layout) {
    return layout.rows_used();
  }

  /// Number of intra-row stages for a size-n transform.
  static unsigned intra_row_stage_count(const DataLayout& layout) {
    const unsigned log_wpa = exact_log2(layout.words_per_atom());
    const unsigned log_wpr = exact_log2(layout.words_per_row());
    const unsigned last = std::min(layout.log2n(), log_wpr);
    return last > log_wpa ? last - log_wpa : 0;
  }

  /// ACTs for the first log R stages under the given division strategy:
  /// vertical row blocks open each row once; the stage-major strawman
  /// re-opens every row once per intra-row stage (when several rows exist).
  static std::uint64_t first_stages(const DataLayout& layout,
                                    const MapperConfig& config) {
    if (config.row_centric) return row_blocks(layout);
    const std::uint64_t rows = layout.rows_used();
    if (rows == 1) return 1;  // the single row simply stays open
    return rows * (1 + intra_row_stage_count(layout));
  }

  /// ACTs of one inter-row stage: every row pair costs one opening ACT plus
  /// two ACTs per round of g = c2_slots in-flight atom pairs.
  static std::uint64_t inter_row_stage(const DataLayout& layout,
                                       const MapperConfig& config) {
    const std::uint64_t pairs = layout.rows_used() / 2;
    const std::uint64_t atoms = layout.geometry().atoms_per_row;
    const std::uint64_t rounds = div_ceil(atoms, c2_slots(config));
    return pairs * (1 + 2 * rounds);
  }

  /// Number of inter-row stages for a size-n transform.
  static unsigned inter_row_stage_count(const DataLayout& layout) {
    const unsigned log_wpr = exact_log2(layout.words_per_row());
    return layout.log2n() > log_wpr ? layout.log2n() - log_wpr : 0;
  }

  /// ACTs of the INTT scaling pass: one per row.
  static std::uint64_t scale_pass(const DataLayout& layout) {
    return layout.rows_used();
  }

  /// Total ACTs of the in-place mapping (forward; add scale_pass for the
  /// inverse).
  static std::uint64_t total_forward(const DataLayout& layout,
                                     const MapperConfig& config) {
    std::uint64_t acts = first_stages(layout, config);
    const unsigned stages = inter_row_stage_count(layout);
    acts += stages * inter_row_stage(layout, config);
    return acts;
  }

  /// Closed-form price of one mapped trace in device cycles: every command
  /// class weighted by the timing it occupies the command bus / array for.
  /// This is a scheduling *estimate*, not the engine: it ignores overlap
  /// the engine's software pipelining wins and stalls it pays, but it is
  /// deterministic, O(1) from cached TraceCounts, and ranks plans the same
  /// way the simulator does — which is all a cost-aware dispatcher needs.
  /// (Validated against engine cycles in test_fhe; stays within a small
  /// constant factor across the paper's problem sizes.)
  static std::uint64_t estimate_pass_cycles(const TraceCounts& counts,
                                            const dram::DramTiming& t) {
    std::uint64_t cycles = 0;
    cycles += counts.acts * (t.trcd + t.trp);
    cycles += (counts.column_reads + counts.column_writes) * t.tccd;
    cycles += counts.c1_ops * t.c1_interval;
    cycles += counts.c2_ops * t.c2_interval;
    cycles += counts.scalar_bus * t.scalar_bu_latency;
    cycles += counts.params * t.param_bus_cycles;
    cycles += counts.buf_zeros * t.bufzero_latency;
    return cycles;
  }
};

}  // namespace nttpim::mapping
