// Command trace: the mapper's output, consumed by the simulation engine.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "dram/command.h"
#include "dram/config.h"

namespace nttpim::mapping {

struct TraceCounts {
  std::uint64_t acts = 0;
  std::uint64_t pres = 0;
  std::uint64_t column_reads = 0;
  std::uint64_t column_writes = 0;
  std::uint64_t c1_ops = 0;
  std::uint64_t c2_ops = 0;
  std::uint64_t scalar_bus = 0;
  std::uint64_t params = 0;
  std::uint64_t buf_zeros = 0;
  std::uint64_t total = 0;

  /// ACT count per mapping regime.
  std::map<dram::Regime, std::uint64_t> acts_by_regime;
};

/// Tally command kinds (and ACTs per regime) in a trace.
TraceCounts count_commands(std::span<const dram::Command> trace);

/// Static validity check of a mapped trace, independent of the timing
/// engine: tracks open-row state and buffer data-validity per bank and
/// throws std::logic_error on the first violation (column access to a
/// closed/mismatched row, compute on a never-loaded buffer, C2 with
/// identical operands, buffer index beyond Nb, scalar write without a
/// preceding GSA load of that atom, ...).
void validate_trace(std::span<const dram::Command> trace,
                    const dram::DramGeometry& geometry,
                    std::size_t num_buffers);

/// Result of mapping one NTT invocation.
struct MappedNtt {
  std::vector<dram::Command> trace;
  /// Where the result lives (== input base row unless the in-place-update
  /// ablation ping-pongs into a shadow region).
  std::uint32_t result_base_row = 0;
};

/// Copy of `mapped` with every command's bank id rewritten to `bank`. A
/// mapped trace is bank-relative apart from that field, so this replicates
/// one plan across banks without re-running the mapper (the batched
/// multi-bank backend and the PlanCache rely on this).
MappedNtt retarget_bank(const MappedNtt& mapped, std::uint16_t bank);

}  // namespace nttpim::mapping
