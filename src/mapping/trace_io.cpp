#include "mapping/trace_io.h"

#include <map>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace nttpim::mapping {

using dram::CmdKind;
using dram::Command;
using dram::ParamReg;
using dram::Regime;

namespace {

const char* mnemonic(CmdKind kind) {
  switch (kind) {
    case CmdKind::kAct: return "ACT";
    case CmdKind::kPre: return "PRE";
    case CmdKind::kRefresh: return "REF";
    case CmdKind::kCuRead: return "CU_RD";
    case CmdKind::kCuWrite: return "CU_WR";
    case CmdKind::kC1: return "C1";
    case CmdKind::kC2: return "C2";
    case CmdKind::kParam: return "PARAM";
    case CmdKind::kBufZero: return "BUF0";
    case CmdKind::kScalarRead: return "S_RD";
    case CmdKind::kScalarWrite: return "S_WR";
    case CmdKind::kScalarBu: return "S_BU";
  }
  return "?";
}

const std::map<std::string, CmdKind>& mnemonic_table() {
  static const std::map<std::string, CmdKind> table = {
      {"ACT", CmdKind::kAct},        {"PRE", CmdKind::kPre},
      {"REF", CmdKind::kRefresh},    {"CU_RD", CmdKind::kCuRead},
      {"CU_WR", CmdKind::kCuWrite},  {"C1", CmdKind::kC1},
      {"C2", CmdKind::kC2},          {"PARAM", CmdKind::kParam},
      {"BUF0", CmdKind::kBufZero},   {"S_RD", CmdKind::kScalarRead},
      {"S_WR", CmdKind::kScalarWrite}, {"S_BU", CmdKind::kScalarBu},
  };
  return table;
}

const std::map<std::string, Regime>& regime_table() {
  static const std::map<std::string, Regime> table = {
      {"-", Regime::kNone},          {"setup", Regime::kSetup},
      {"intra-atom", Regime::kIntraAtom}, {"intra-row", Regime::kIntraRow},
      {"inter-row", Regime::kInterRow},   {"scale", Regime::kScale},
  };
  return table;
}

const std::map<std::string, ParamReg>& param_reg_table() {
  static const std::map<std::string, ParamReg> table = {
      {"q", ParamReg::kModulus},
      {"tfg.omega0", ParamReg::kTfgOmega0},
      {"tfg.step", ParamReg::kTfgStep},
      {"c1.root", ParamReg::kC1Root},
  };
  return table;
}

}  // namespace

void write_trace(std::ostream& os, std::span<const dram::Command> trace) {
  for (const auto& cmd : trace) {
    os << mnemonic(cmd.kind) << ' ' << cmd.bank;
    switch (cmd.kind) {
      case CmdKind::kAct:
        os << ' ' << cmd.row;
        break;
      case CmdKind::kPre:
      case CmdKind::kRefresh:
        break;
      case CmdKind::kCuRead:
      case CmdKind::kCuWrite:
        os << ' ' << cmd.row << ' ' << cmd.atom << ' ' << int(cmd.buf);
        break;
      case CmdKind::kC1:
        os << ' ' << int(cmd.buf) << ' ' << int(cmd.stages) << ' '
           << int(cmd.tfg_reset);
        break;
      case CmdKind::kC2:
        os << ' ' << int(cmd.buf) << ' ' << int(cmd.buf2) << ' '
           << int(cmd.tfg_reset);
        break;
      case CmdKind::kParam:
        os << ' ' << dram::to_string(cmd.param_reg) << ' '
           << cmd.param_value;
        break;
      case CmdKind::kBufZero:
        os << ' ' << int(cmd.buf);
        break;
      case CmdKind::kScalarRead:
      case CmdKind::kScalarWrite:
        os << ' ' << cmd.row << ' ' << cmd.atom << ' ' << int(cmd.lane)
           << ' ' << int(cmd.scalar_reg);
        break;
      case CmdKind::kScalarBu:
        os << ' ' << int(cmd.tfg_reset);
        break;
    }
    os << " # " << dram::to_string(cmd.regime) << '\n';
  }
}

std::string trace_to_string(std::span<const dram::Command> trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

std::vector<Command> read_trace(std::istream& is) {
  std::vector<Command> trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments; remember a trailing regime annotation if present.
    Regime regime = Regime::kNone;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      std::istringstream comment(line.substr(hash + 1));
      std::string word;
      if (comment >> word) {
        const auto it = regime_table().find(word);
        if (it != regime_table().end()) regime = it->second;
      }
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) continue;  // blank / comment-only line

    const auto kind_it = mnemonic_table().find(op);
    NTTPIM_EXPECT_MSG(kind_it != mnemonic_table().end(),
                      "unknown mnemonic at line " + std::to_string(line_no));
    Command cmd;
    cmd.kind = kind_it->second;
    cmd.regime = regime;

    const auto read_u = [&](auto& field) {
      std::uint64_t value = 0;
      NTTPIM_EXPECT_MSG(static_cast<bool>(ls >> value),
                        "missing operand at line " + std::to_string(line_no));
      field = static_cast<std::remove_reference_t<decltype(field)>>(value);
    };

    read_u(cmd.bank);
    switch (cmd.kind) {
      case CmdKind::kAct:
        read_u(cmd.row);
        break;
      case CmdKind::kPre:
      case CmdKind::kRefresh:
        break;
      case CmdKind::kCuRead:
      case CmdKind::kCuWrite:
        read_u(cmd.row);
        read_u(cmd.atom);
        read_u(cmd.buf);
        break;
      case CmdKind::kC1: {
        read_u(cmd.buf);
        read_u(cmd.stages);
        unsigned reset = 0;
        NTTPIM_EXPECT_MSG(static_cast<bool>(ls >> reset),
                          "missing reset flag at line " +
                              std::to_string(line_no));
        cmd.tfg_reset = reset != 0;
        break;
      }
      case CmdKind::kC2: {
        read_u(cmd.buf);
        read_u(cmd.buf2);
        unsigned reset = 0;
        NTTPIM_EXPECT_MSG(static_cast<bool>(ls >> reset),
                          "missing reset flag at line " +
                              std::to_string(line_no));
        cmd.tfg_reset = reset != 0;
        break;
      }
      case CmdKind::kParam: {
        std::string reg;
        NTTPIM_EXPECT_MSG(static_cast<bool>(ls >> reg),
                          "missing PARAM register at line " +
                              std::to_string(line_no));
        const auto reg_it = param_reg_table().find(reg);
        NTTPIM_EXPECT_MSG(reg_it != param_reg_table().end(),
                          "unknown PARAM register at line " +
                              std::to_string(line_no));
        cmd.param_reg = reg_it->second;
        read_u(cmd.param_value);
        break;
      }
      case CmdKind::kBufZero:
        read_u(cmd.buf);
        break;
      case CmdKind::kScalarRead:
      case CmdKind::kScalarWrite:
        read_u(cmd.row);
        read_u(cmd.atom);
        read_u(cmd.lane);
        read_u(cmd.scalar_reg);
        break;
      case CmdKind::kScalarBu: {
        unsigned reset = 0;
        NTTPIM_EXPECT_MSG(static_cast<bool>(ls >> reset),
                          "missing reset flag at line " +
                              std::to_string(line_no));
        cmd.tfg_reset = reset != 0;
        break;
      }
    }
    trace.push_back(cmd);
  }
  return trace;
}

std::vector<Command> trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace nttpim::mapping
