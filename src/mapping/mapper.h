// Row-centric NTT-to-DRAM-command mapping — the paper's core contribution
// (Sections III "Our Architecture and Mapping", IV.B "NTT Computation
// Mapping" and V "Pipelining Optimization").
//
// Given an NTT invocation, the memory controller divides the DIT dataflow
// graph into three regimes and emits one linear DRAM command trace:
//
//  1. Row blocks (first log R stages): the DFG is cut *vertically* into
//     N/R independent row-sized blocks; each row is activated exactly once
//     and processed fully: intra-atom stages via C1 per atom, then
//     intra-row stages via C2 on atom pairs (all row-buffer hits).
//  2. Inter-row stages: processed stage-by-stage; atom pairs come from two
//     rows m/R rows apart. Reads/writes are grouped by row so that with
//     g = floor(Nb/2) atom pairs in flight, a round costs only two row
//     activations (Fig. 6c) — the pipelining benefit that *reduces* ACTs.
//  3. In-place update: every BU's outputs return to its input locations
//     (Sec. III.C); with `in_place = false` the mapper instead ping-pongs
//     between the data region and a shadow region, reproducing the paper's
//     argument for why in-place matters (ablation A1 in DESIGN.md).
//
// Pipelining (Sec. V): with S buffer slots the emission is software
// pipelined — reads for op k+S are emitted while op k computes, and with
// S >= 3 writebacks are additionally delayed by one op so that buffer
// drain/refill of one slot overlaps compute of the others.
#pragma once

#include <cstdint>

#include "dram/config.h"
#include "mapping/layout.h"
#include "mapping/trace.h"
#include "ntt/params.h"

namespace nttpim::mapping {

enum class Direction : std::uint8_t { kForward, kInverse };

struct MapperConfig {
  std::size_t num_buffers = 2;  ///< Nb, including the primary (GSA)
  bool pipelined = true;        ///< exploit all buffers (false = Fig. 6 "w/o")
  bool in_place = true;         ///< in-place update (false = shadow ablation)
  /// Vertical (row-block) division of the first log R stages — the paper's
  /// choice. false = the stage-wise "horizontal" division it argues
  /// against: every intra-row stage re-activates every row (ablation).
  bool row_centric = true;
  std::uint16_t bank = 0;
};

struct NttJob {
  std::uint32_t base_row = 0;
  Direction direction = Direction::kForward;
  /// Inverse only: emit the N^{-1} scaling pass (zero-operand C2 trick).
  bool scale_output = true;
  /// Inverse only: fold the psi^{-i} negacyclic post-scale into the pass.
  bool negacyclic = false;
};

class RowCentricMapper {
 public:
  /// `params` must outlive the mapper. Requires num_buffers >= 2 when the
  /// transform has inter-atom stages (use NaiveMapper for Nb = 1).
  RowCentricMapper(const dram::DramGeometry& geometry,
                   const ntt::NttParams& params, MapperConfig config);

  const MapperConfig& config() const noexcept { return config_; }

  MappedNtt map(const NttJob& job) const;

 private:
  const dram::DramGeometry* geometry_;
  const ntt::NttParams* params_;
  MapperConfig config_;
};

/// Pair-slot count available for C2 software pipelining under a config.
std::size_t c2_slots(const MapperConfig& config);
/// Buffer-slot count available for C1 software pipelining under a config.
std::size_t c1_slots(const MapperConfig& config);
/// Writeback delay used by the software-pipelined emission for S slots.
unsigned writeback_delay(std::size_t slots);

}  // namespace nttpim::mapping
