// Command-trace serialization.
//
// Writes the mapper's DRAM command sequence in a line-oriented text format
// (one command per line, akin to the "DRAM cmd seq" of paper Fig. 1) and
// parses it back. Useful for diffing mappings, replaying traces through the
// simulator without re-running the mapper, and debugging.
//
// Format (whitespace-separated):
//   ACT    bank row
//   PRE    bank
//   REF    bank                   (engine-inserted; accepted on parse)
//   CU_RD  bank row atom buf
//   CU_WR  bank row atom buf
//   C1     bank buf stages reset
//   C2     bank bufP bufS reset
//   PARAM  bank reg value
//   BUF0   bank buf
//   S_RD   bank row atom lane reg
//   S_WR   bank row atom lane reg
//   S_BU   bank reset
// Lines starting with '#' are comments; regime annotations are emitted as
// trailing "# <regime>" comments and restored on parse.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "dram/command.h"

namespace nttpim::mapping {

void write_trace(std::ostream& os, std::span<const dram::Command> trace);
std::string trace_to_string(std::span<const dram::Command> trace);

/// Parses a trace; throws std::invalid_argument on malformed input.
std::vector<dram::Command> read_trace(std::istream& is);
std::vector<dram::Command> trace_from_string(const std::string& text);

}  // namespace nttpim::mapping
