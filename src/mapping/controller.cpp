#include "mapping/controller.h"

#include "common/check.h"
#include "ntt/modular.h"

namespace nttpim::mapping {

MemoryController::Response MemoryController::submit(
    const pim::NttRequest& request) {
  NTTPIM_EXPECT_MSG(request.n >= 2, "request needs a transform size");
  NTTPIM_EXPECT_MSG(request.q != 0, "request needs a modulus");
  NTTPIM_EXPECT(request.bank < geometry_.banks);

  // Derive the full parameter set from (n, q); if the host supplied an
  // omega, it must be consistent with the derived root order.
  const ntt::NttParams params(request.n, request.q);
  if (request.omega != 0) {
    NTTPIM_EXPECT_MSG(
        ntt::pow_mod(request.omega, request.n, request.q) == 1,
        "host-supplied omega is not an n-th root of unity mod q");
  }

  mapping::MapperConfig config = config_;
  config.bank = request.bank;
  const mapping::RowCentricMapper mapper(geometry_, params, config);

  mapping::NttJob job;
  job.base_row = request.base_row;
  job.direction = request.inverse ? mapping::Direction::kInverse
                                  : mapping::Direction::kForward;
  auto mapped = mapper.map(job);

  Response response;
  response.bank = request.bank;
  response.result_base_row = mapped.result_base_row;
  response.n = request.n;
  response.first_command = trace_.size();
  response.command_count = mapped.trace.size();
  trace_.insert(trace_.end(), mapped.trace.begin(), mapped.trace.end());
  responses_.push_back(response);
  return response;
}

void MemoryController::clear() {
  trace_.clear();
  responses_.clear();
}

}  // namespace nttpim::mapping
