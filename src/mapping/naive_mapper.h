// Single-buffer (Nb = 1) fallback mapping — the paper's strawman
// (Sec. III.B "Necessity of An Auxiliary Buffer", the "Nb = 1" series of
// Fig. 7).
//
// With only the GSA available, C2 is impossible: beyond the intra-atom
// stages every butterfly runs element-serially through the CU's two scalar
// registers. Each butterfly costs three column reads (operand A, operand B,
// and a re-read of A's atom for the read-modify-write) plus two column
// writes, and in the inter-row regime two row activations — which is why a
// single-buffer PIM is no faster than plain software.
#pragma once

#include "dram/config.h"
#include "mapping/mapper.h"
#include "mapping/trace.h"
#include "ntt/params.h"

namespace nttpim::mapping {

class NaiveMapper {
 public:
  NaiveMapper(const dram::DramGeometry& geometry,
              const ntt::NttParams& params, std::uint16_t bank = 0);

  /// Forward cyclic transforms only (the paper's Nb=1 comparison point).
  MappedNtt map(const NttJob& job) const;

 private:
  const dram::DramGeometry* geometry_;
  const ntt::NttParams* params_;
  std::uint16_t bank_;
};

}  // namespace nttpim::mapping
