#include "mapping/naive_mapper.h"

#include <optional>

#include "common/check.h"
#include "ntt/modular.h"
#include "pim/buffer.h"

namespace nttpim::mapping {

using dram::CmdKind;
using dram::Command;
using dram::ParamReg;
using dram::Regime;

namespace {

class Builder {
 public:
  Builder(const dram::DramGeometry& geometry, const ntt::NttParams& params,
          std::uint16_t bank, const NttJob& job)
      : geometry_(geometry),
        params_(params),
        bank_(bank),
        layout_(geometry, job.base_row, params.n()),
        q_(params.q()) {
    NTTPIM_EXPECT_MSG(job.direction == Direction::kForward && !job.negacyclic,
                      "the single-buffer fallback supports forward cyclic "
                      "transforms only (as evaluated in the paper)");
    NTTPIM_EXPECT_MSG(geometry.words_per_atom() == pim::kAtomWords,
                      "CU datapath requires 8-word atoms");
    log_n_ = layout_.log2n();
    log_wpa_ = exact_log2(geometry.words_per_atom());
    log_wpr_ = exact_log2(geometry.words_per_row());
    base_row_ = job.base_row;
  }

  MappedNtt build() {
    emit_setup();
    emit_c1_phase();
    for (unsigned s = log_wpa_ + 1; s <= log_n_; ++s) emit_scalar_stage(s);
    // Leave the bank precharged (see RowCentricMapper::build).
    if (open_row_.has_value()) emit({.kind = CmdKind::kPre});
    MappedNtt out;
    out.trace = std::move(trace_);
    out.result_base_row = base_row_;
    return out;
  }

 private:
  void emit(Command cmd) {
    cmd.bank = bank_;
    cmd.regime = regime_;
    trace_.push_back(cmd);
  }

  void set_row(std::uint32_t row) {
    if (open_row_ == row) return;
    if (open_row_.has_value()) emit({.kind = CmdKind::kPre});
    emit({.kind = CmdKind::kAct, .row = row});
    open_row_ = row;
  }

  void param(ParamReg reg, std::uint32_t value) {
    emit({.kind = CmdKind::kParam, .param_reg = reg, .param_value = value});
  }

  std::uint32_t omega_pow(std::uint64_t e) const {
    return static_cast<std::uint32_t>(
        ntt::pow_mod(params_.omega(), e, q_));
  }

  void emit_setup() {
    regime_ = Regime::kSetup;
    param(ParamReg::kModulus, q_);
    const unsigned c1s = std::min(log_n_, log_wpa_);
    param(ParamReg::kC1Root, omega_pow(params_.n() >> c1s));
  }

  /// Intra-atom stages still use C1 through the GSA (buffer 0).
  void emit_c1_phase() {
    regime_ = Regime::kIntraAtom;
    const unsigned c1s = std::min(log_n_, log_wpa_);
    for (std::uint32_t r = 0; r < layout_.rows_used(); ++r) {
      set_row(base_row_ + r);
      for (std::uint32_t a = 0; a < layout_.atoms_in_row(r); ++a) {
        const auto atom = static_cast<std::uint16_t>(a);
        emit({.kind = CmdKind::kCuRead,
              .row = base_row_ + r,
              .atom = atom,
              .buf = 0});
        emit({.kind = CmdKind::kC1,
              .buf = 0,
              .stages = static_cast<std::uint8_t>(c1s)});
        emit({.kind = CmdKind::kCuWrite,
              .row = base_row_ + r,
              .atom = atom,
              .buf = 0});
      }
    }
  }

  /// One element-serial butterfly on the word pair (lo_row, atom, lane) x
  /// (hi_row, atom', lane): 3 column reads + 2 column writes + 1 scalar BU.
  void emit_scalar_bu(std::uint32_t row_a, std::uint16_t atom_a,
                      std::uint32_t row_b, std::uint16_t atom_b,
                      std::uint8_t lane, bool tfg_reset) {
    set_row(row_a);
    emit({.kind = CmdKind::kScalarRead,
          .row = row_a,
          .atom = atom_a,
          .lane = lane,
          .scalar_reg = 0});
    set_row(row_b);
    emit({.kind = CmdKind::kScalarRead,
          .row = row_b,
          .atom = atom_b,
          .lane = lane,
          .scalar_reg = 1});
    emit({.kind = CmdKind::kScalarBu, .tfg_reset = tfg_reset});
    // The GSA holds atom B after the second read: write its lane first.
    emit({.kind = CmdKind::kScalarWrite,
          .row = row_b,
          .atom = atom_b,
          .lane = lane,
          .scalar_reg = 1});
    // Re-fetch atom A into the GSA for the read-modify-write of register 0
    // (the latch into scratch register 1 is a harmless side effect).
    set_row(row_a);
    emit({.kind = CmdKind::kScalarRead,
          .row = row_a,
          .atom = atom_a,
          .lane = lane,
          .scalar_reg = 1});
    emit({.kind = CmdKind::kScalarWrite,
          .row = row_a,
          .atom = atom_a,
          .lane = lane,
          .scalar_reg = 0});
  }

  void emit_scalar_stage(unsigned s) {
    const std::size_t m = std::size_t{1} << (s - 1);  // span in words
    const std::size_t wpa = geometry_.words_per_atom();
    const std::size_t wpr = geometry_.words_per_row();
    param(ParamReg::kTfgStep, omega_pow(params_.n() >> s));

    if (s <= log_wpr_) {
      // Intra-row: both operands in the same row; all accesses are hits.
      regime_ = Regime::kIntraRow;
      param(ParamReg::kTfgOmega0, 1);
      for (std::uint32_t r = 0; r < layout_.rows_used(); ++r) {
        const std::uint32_t row = base_row_ + r;
        const std::size_t row_words =
            std::size_t{layout_.atoms_in_row(r)} * wpa;
        for (std::size_t g = 0; g < row_words / (2 * m); ++g) {
          for (std::size_t j = 0; j < m; ++j) {
            const std::size_t off = g * 2 * m + j;
            emit_scalar_bu(row, static_cast<std::uint16_t>(off / wpa),
                           row, static_cast<std::uint16_t>((off + m) / wpa),
                           static_cast<std::uint8_t>(off % wpa),
                           /*tfg_reset=*/j == 0);
          }
        }
      }
    } else {
      // Inter-row: operands dr rows apart; ~2 activations per butterfly.
      regime_ = Regime::kInterRow;
      const auto dr = static_cast<std::uint32_t>(m / wpr);
      const std::uint32_t rows = layout_.rows_used();
      const std::uint32_t w_s = omega_pow(params_.n() >> s);
      for (std::uint32_t block = 0; block < rows; block += 2 * dr) {
        for (std::uint32_t rp = 0; rp < dr; ++rp) {
          const std::uint32_t lo = base_row_ + block + rp;
          const std::uint32_t hi = lo + dr;
          param(ParamReg::kTfgOmega0,
                static_cast<std::uint32_t>(ntt::pow_mod(
                    w_s, static_cast<std::uint64_t>(rp) * wpr, q_)));
          for (std::size_t off = 0; off < wpr; ++off) {
            emit_scalar_bu(lo, static_cast<std::uint16_t>(off / wpa),
                           hi, static_cast<std::uint16_t>(off / wpa),
                           static_cast<std::uint8_t>(off % wpa),
                           /*tfg_reset=*/off == 0);
          }
        }
      }
    }
  }

  const dram::DramGeometry& geometry_;
  const ntt::NttParams& params_;
  std::uint16_t bank_;
  DataLayout layout_;
  std::uint32_t q_;
  unsigned log_n_ = 0;
  unsigned log_wpa_ = 0;
  unsigned log_wpr_ = 0;
  std::uint32_t base_row_ = 0;

  std::vector<Command> trace_;
  Regime regime_ = Regime::kNone;
  std::optional<std::uint32_t> open_row_;
};

}  // namespace

NaiveMapper::NaiveMapper(const dram::DramGeometry& geometry,
                         const ntt::NttParams& params, std::uint16_t bank)
    : geometry_(&geometry), params_(&params), bank_(bank) {}

MappedNtt NaiveMapper::map(const NttJob& job) const {
  Builder builder(*geometry_, *params_, bank_, job);
  return builder.build();
}

}  // namespace nttpim::mapping
