#include "mapping/act_model.h"

// Header-only today; this translation unit pins the header's symbols into
// the mapping library and is the anchor for future out-of-line additions.
