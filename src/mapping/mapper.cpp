#include "mapping/mapper.h"

#include <optional>

#include "common/check.h"
#include "ntt/modular.h"
#include "pim/buffer.h"

namespace nttpim::mapping {

using dram::CmdKind;
using dram::Command;
using dram::ParamReg;
using dram::Regime;

std::size_t c2_slots(const MapperConfig& config) {
  if (!config.pipelined) return 1;
  return std::max<std::size_t>(1, config.num_buffers / 2);
}

std::size_t c1_slots(const MapperConfig& config) {
  if (!config.pipelined) return 1;
  return std::max<std::size_t>(1, config.num_buffers);
}

unsigned writeback_delay(std::size_t slots) { return slots >= 3 ? 1 : 0; }

namespace {

/// One CU operation plus its buffer traffic; all accesses hit the row that
/// is open when the op is emitted (the builder switches rows around calls).
struct CuOp {
  bool is_c2 = true;
  bool zero_p = false;     ///< clear the P-side buffer first (scale pass)
  bool tfg_reset = false;  ///< reset bit on the compute command
  std::uint8_t stages = 3; ///< C1 stage count
  std::uint32_t row = 0;
  std::uint16_t atom_a = 0;  ///< C1 atom / C2 P-side atom
  std::uint16_t atom_b = 0;  ///< C2 S-side atom
  bool read_a = true;
  bool read_b = true;
  bool write_a = true;
  bool write_b = true;
};

enum class SlotMode { kSingleBuffer, kBufferPair };

class Builder {
 public:
  Builder(const dram::DramGeometry& geometry, const ntt::NttParams& params,
          const MapperConfig& config, const NttJob& job)
      : geometry_(geometry),
        params_(params),
        config_(config),
        job_(job),
        layout_(geometry, job.base_row, params.n()),
        q_(params.q()),
        twiddle_base_(job.direction == Direction::kForward
                          ? params.omega()
                          : params.omega_inv()) {
    NTTPIM_EXPECT_MSG(geometry.words_per_atom() == pim::kAtomWords,
                      "CU datapath requires 8-word atoms");
    log_n_ = layout_.log2n();
    log_wpa_ = exact_log2(geometry.words_per_atom());
    log_wpr_ = exact_log2(geometry.words_per_row());
    cur_base_ = job.base_row;
    if (!config_.in_place) {
      shadow_base_ = job.base_row + layout_.rows_used();
      NTTPIM_EXPECT_MSG(
          shadow_base_ + layout_.rows_used() <= geometry.rows_per_bank,
          "shadow region for the no-in-place ablation does not fit");
    }
    if (has_inter_atom_stages()) {
      NTTPIM_EXPECT_MSG(config_.num_buffers >= 2,
                        "inter-atom stages need Nb >= 2 "
                        "(use NaiveMapper for the single-buffer fallback)");
    }
  }

  MappedNtt build() {
    emit_setup();
    if (config_.row_centric)
      emit_row_blocks();
    else
      emit_stage_major_blocks();
    for (unsigned s = log_wpr_ + 1; s <= log_n_; ++s) emit_inter_row_stage(s);
    if (job_.direction == Direction::kInverse && job_.scale_output)
      emit_scale_pass();
    // Leave the bank precharged: the NTT call is complete (the MC sends the
    // write response), and traces of consecutive requests concatenate.
    if (open_row_.has_value()) emit({.kind = CmdKind::kPre});
    MappedNtt out;
    out.trace = std::move(trace_);
    out.result_base_row = cur_base_;
    return out;
  }

 private:
  bool has_inter_atom_stages() const { return log_n_ > log_wpa_; }

  unsigned c1_stage_count() const {
    return std::min(log_n_, log_wpa_);
  }

  // ------------------------------------------------------------- emission

  void emit(Command cmd) {
    cmd.bank = config_.bank;
    cmd.regime = regime_;
    trace_.push_back(cmd);
  }

  /// Open `row`, precharging first if another row is open.
  void set_row(std::uint32_t row) {
    if (open_row_ == row) return;
    if (open_row_.has_value()) emit({.kind = CmdKind::kPre});
    emit({.kind = CmdKind::kAct, .row = row});
    open_row_ = row;
  }

  void param(ParamReg reg, std::uint32_t value) {
    emit({.kind = CmdKind::kParam, .param_reg = reg, .param_value = value});
  }

  /// Deduplicated TFG parameter loads.
  void tfg_params(std::uint32_t omega0, std::uint32_t step) {
    if (cached_omega0_ != omega0) {
      param(ParamReg::kTfgOmega0, omega0);
      cached_omega0_ = omega0;
    }
    if (cached_step_ != step) {
      param(ParamReg::kTfgStep, step);
      cached_step_ = step;
    }
  }

  std::uint32_t base_pow(std::uint64_t e) const {
    return static_cast<std::uint32_t>(ntt::pow_mod(twiddle_base_, e, q_));
  }

  /// Twiddle step w_s = base^(N / 2^s) of DIT stage s.
  std::uint32_t stage_step(unsigned s) const {
    return base_pow(params_.n() >> s);
  }

  void emit_setup() {
    regime_ = Regime::kSetup;
    param(ParamReg::kModulus, q_);
    const unsigned c1s = c1_stage_count();
    // C1's twiddle logic needs a root of order 2^c1s.
    param(ParamReg::kC1Root, base_pow(params_.n() >> c1s));
  }

  // ------------------------------------------- software-pipelined emission

  void emit_ops(const std::vector<CuOp>& ops, SlotMode mode) {
    const std::size_t slots =
        mode == SlotMode::kSingleBuffer ? c1_slots(config_) : c2_slots(config_);
    const unsigned delay = writeback_delay(slots);
    const std::size_t n = ops.size();

    const auto p_buf = [&](std::size_t k) -> std::uint8_t {
      const std::size_t slot = k % slots;
      return static_cast<std::uint8_t>(
          mode == SlotMode::kSingleBuffer ? slot : 2 * slot);
    };
    const auto s_buf = [&](std::size_t k) -> std::uint8_t {
      NTTPIM_CHECK(mode == SlotMode::kBufferPair);
      return static_cast<std::uint8_t>(2 * (k % slots) + 1);
    };

    const auto reads = [&](std::size_t k) {
      if (k >= n) return;
      const CuOp& op = ops[k];
      NTTPIM_CHECK_MSG(open_row_ == op.row,
                       "pipelined op targets a row that is not open");
      if (op.zero_p) emit({.kind = CmdKind::kBufZero, .buf = p_buf(k)});
      if (op.read_a)
        emit({.kind = CmdKind::kCuRead,
              .row = op.row,
              .atom = op.atom_a,
              .buf = p_buf(k)});
      if (op.read_b)
        emit({.kind = CmdKind::kCuRead,
              .row = op.row,
              .atom = op.atom_b,
              .buf = s_buf(k)});
    };
    const auto compute = [&](std::size_t k) {
      const CuOp& op = ops[k];
      if (op.is_c2) {
        emit({.kind = CmdKind::kC2,
              .buf = p_buf(k),
              .buf2 = s_buf(k),
              .tfg_reset = op.tfg_reset});
      } else {
        emit({.kind = CmdKind::kC1, .buf = p_buf(k), .stages = op.stages});
      }
    };
    const auto writes = [&](std::size_t k) {
      if (k >= n) return;
      const CuOp& op = ops[k];
      if (op.write_a)
        emit({.kind = CmdKind::kCuWrite,
              .row = op.row,
              .atom = op.atom_a,
              .buf = p_buf(k)});
      if (op.write_b)
        emit({.kind = CmdKind::kCuWrite,
              .row = op.row,
              .atom = op.atom_b,
              .buf = s_buf(k)});
    };

    // Prologue: prime the first slots.
    for (std::size_t k = 0; k + delay < slots && k < n; ++k) reads(k);
    // Steady state: compute op k, drain op k-delay, refill its slot for
    // op k+slots-delay.
    for (std::size_t k = 0; k < n; ++k) {
      compute(k);
      if (k >= delay) writes(k - delay);
      reads(k + slots - delay);
    }
    // Epilogue: drain the delayed tail.
    for (std::size_t k = n; k < n + delay; ++k)
      if (k >= delay) writes(k - delay);
  }

  // --------------------------------------------------- row-block regime(s)

  /// Stages 1..log R, processed one row at a time (vertical partitioning).
  ///
  /// With the no-in-place ablation, each row's data ping-pongs between the
  /// two regions per stage. The alternation is tracked with row-local
  /// src/dst bases so every row sees the identical sequence; the global
  /// region swap happens once, after all rows finished an (identical) odd
  /// or even number of out-of-place stages.
  void emit_row_blocks() {
    const std::uint32_t region_a = cur_base_;
    const std::uint32_t region_b = shadow_base_;
    const unsigned last = std::min(log_n_, log_wpr_);
    const unsigned ping_pong_stages =
        last > log_wpa_ ? last - log_wpa_ : 0;

    for (std::uint32_t r = 0; r < layout_.rows_used(); ++r) {
      // Intra-atom: C1 per atom, always in place within region A.
      regime_ = Regime::kIntraAtom;
      set_row(region_a + r);
      const unsigned c1s = c1_stage_count();
      std::vector<CuOp> ops;
      ops.reserve(layout_.atoms_in_row(r));
      for (std::uint32_t a = 0; a < layout_.atoms_in_row(r); ++a) {
        ops.push_back(CuOp{.is_c2 = false,
                           .stages = static_cast<std::uint8_t>(c1s),
                           .row = region_a + r,
                           .atom_a = static_cast<std::uint16_t>(a),
                           .read_b = false,
                           .write_b = false});
      }
      emit_ops(ops, SlotMode::kSingleBuffer);

      // Intra-row: C2 on atom pairs within this row.
      regime_ = Regime::kIntraRow;
      std::uint32_t src_base = region_a;
      std::uint32_t dst_base = region_b;
      for (unsigned s = log_wpa_ + 1; s <= last; ++s) {
        emit_intra_row_stage(r, s, src_base,
                             config_.in_place ? src_base : dst_base);
        if (!config_.in_place) std::swap(src_base, dst_base);
      }
    }

    if (!config_.in_place && ping_pong_stages % 2 == 1) swap_regions();
  }

  /// Stage-wise ("horizontal") division of the first log R stages — the
  /// strawman the paper's vertical row blocks beat: each stage sweeps all
  /// rows, so every row is re-activated once per stage instead of once
  /// total. Used for the mapping-ablation bench; supports in-place only.
  void emit_stage_major_blocks() {
    NTTPIM_EXPECT_MSG(config_.in_place,
                      "stage-major ablation supports in-place mapping only");
    const unsigned c1s = c1_stage_count();
    regime_ = Regime::kIntraAtom;
    for (std::uint32_t r = 0; r < layout_.rows_used(); ++r) {
      set_row(cur_base_ + r);
      std::vector<CuOp> ops;
      ops.reserve(layout_.atoms_in_row(r));
      for (std::uint32_t a = 0; a < layout_.atoms_in_row(r); ++a) {
        ops.push_back(CuOp{.is_c2 = false,
                           .stages = static_cast<std::uint8_t>(c1s),
                           .row = cur_base_ + r,
                           .atom_a = static_cast<std::uint16_t>(a),
                           .read_b = false,
                           .write_b = false});
      }
      emit_ops(ops, SlotMode::kSingleBuffer);
    }
    // Horizontal: one full row sweep per stage.
    regime_ = Regime::kIntraRow;
    const unsigned last = std::min(log_n_, log_wpr_);
    for (unsigned s = log_wpa_ + 1; s <= last; ++s)
      for (std::uint32_t r = 0; r < layout_.rows_used(); ++r)
        emit_intra_row_stage(r, s, cur_base_, cur_base_);
  }

  void emit_intra_row_stage(std::uint32_t rel_row, unsigned s,
                            std::uint32_t src_base, std::uint32_t dst_base) {
    const std::size_t m = std::size_t{1} << (s - 1);         // span in words
    const std::size_t da = m >> log_wpa_;                    // span in atoms
    const std::uint32_t atoms = layout_.atoms_in_row(rel_row);
    NTTPIM_CHECK(atoms % (2 * da) == 0);

    tfg_params(/*omega0=*/1, stage_step(s));

    const std::uint32_t src_row = src_base + rel_row;
    std::vector<CuOp> ops;
    ops.reserve(atoms / 2);
    for (std::size_t g = 0; g < atoms / (2 * da); ++g) {
      for (std::size_t t = 0; t < da; ++t) {
        const auto a = static_cast<std::uint16_t>(g * 2 * da + t);
        ops.push_back(CuOp{.tfg_reset = (t == 0),
                           .row = src_row,
                           .atom_a = a,
                           .atom_b = static_cast<std::uint16_t>(a + da)});
      }
    }

    if (src_base == dst_base) {
      set_row(src_row);
      emit_ops(ops, SlotMode::kBufferPair);
    } else {
      emit_ping_pong_rounds(ops, src_row, dst_base + rel_row);
    }
  }

  // ------------------------------------------------------ inter-row regime

  void emit_inter_row_stage(unsigned s) {
    regime_ = Regime::kInterRow;
    const std::size_t wpr = geometry_.words_per_row();
    const std::size_t m = std::size_t{1} << (s - 1);
    const std::uint32_t dr = static_cast<std::uint32_t>(m / wpr);
    const std::uint32_t rows = layout_.rows_used();
    NTTPIM_CHECK(dr >= 1 && rows % (2 * dr) == 0);

    tfg_params(/*omega0=*/1, stage_step(s));
    const std::uint32_t w_s = stage_step(s);

    for (std::uint32_t block = 0; block < rows; block += 2 * dr) {
      for (std::uint32_t rp = 0; rp < dr; ++rp) {
        const std::uint32_t lo = block + rp;       // relative rows
        const std::uint32_t hi = lo + dr;
        // In-group word offset of this row pair's first word.
        const std::uint32_t omega0 = static_cast<std::uint32_t>(ntt::pow_mod(
            w_s, static_cast<std::uint64_t>(rp) * wpr, q_));
        tfg_params(omega0, w_s);
        emit_row_pair(lo, hi);
      }
    }
    if (!config_.in_place) swap_regions();
  }

  /// All 32 atom pairs of one inter-row pair, in rounds of g = #pair-slots
  /// atoms so same-row reads/writes group together (Fig. 6c).
  void emit_row_pair(std::uint32_t rel_lo, std::uint32_t rel_hi) {
    const std::uint32_t atoms = layout_.atoms_in_row(rel_lo);
    const std::size_t g = c2_slots(config_);
    const std::uint32_t src_lo = cur_base_ + rel_lo;
    const std::uint32_t src_hi = cur_base_ + rel_hi;
    const std::uint32_t dst_lo =
        config_.in_place ? src_lo : shadow_row(rel_lo);
    const std::uint32_t dst_hi =
        config_.in_place ? src_hi : shadow_row(rel_hi);

    bool first_c2 = true;
    for (std::uint32_t t0 = 0; t0 < atoms;
         t0 += static_cast<std::uint32_t>(g)) {
      const std::uint32_t t1 =
          std::min(atoms, t0 + static_cast<std::uint32_t>(g));
      // Reads from the low row (a hit after round 0: the round ends with
      // this row open).
      set_row(src_lo);
      for (std::uint32_t t = t0; t < t1; ++t)
        emit({.kind = CmdKind::kCuRead,
              .row = src_lo,
              .atom = static_cast<std::uint16_t>(t),
              .buf = pair_p(t - t0)});
      set_row(src_hi);
      for (std::uint32_t t = t0; t < t1; ++t)
        emit({.kind = CmdKind::kCuRead,
              .row = src_hi,
              .atom = static_cast<std::uint16_t>(t),
              .buf = pair_s(t - t0)});
      for (std::uint32_t t = t0; t < t1; ++t) {
        emit({.kind = CmdKind::kC2,
              .buf = pair_p(t - t0),
              .buf2 = pair_s(t - t0),
              .tfg_reset = first_c2});
        first_c2 = false;
      }
      // S-side writebacks hit the still-open high row.
      set_row(dst_hi);
      for (std::uint32_t t = t0; t < t1; ++t)
        emit({.kind = CmdKind::kCuWrite,
              .row = dst_hi,
              .atom = static_cast<std::uint16_t>(t),
              .buf = pair_s(t - t0)});
      set_row(dst_lo);
      for (std::uint32_t t = t0; t < t1; ++t)
        emit({.kind = CmdKind::kCuWrite,
              .row = dst_lo,
              .atom = static_cast<std::uint16_t>(t),
              .buf = pair_p(t - t0)});
    }
  }

  std::uint8_t pair_p(std::size_t slot) const {
    return static_cast<std::uint8_t>(2 * (slot % c2_slots(config_)));
  }
  std::uint8_t pair_s(std::size_t slot) const {
    return static_cast<std::uint8_t>(2 * (slot % c2_slots(config_)) + 1);
  }

  // -------------------------------------------- no-in-place ablation paths

  std::uint32_t shadow_row(std::uint32_t rel_row) const {
    return shadow_base_ + rel_row;
  }

  /// Round-based out-of-place emission for an intra-row stage: read a batch
  /// from the source row, compute, switch to the shadow row to write.
  void emit_ping_pong_rounds(const std::vector<CuOp>& ops,
                             std::uint32_t src_row, std::uint32_t dst_row) {
    const std::size_t g = c2_slots(config_);
    for (std::size_t k0 = 0; k0 < ops.size(); k0 += g) {
      const std::size_t k1 = std::min(ops.size(), k0 + g);
      set_row(src_row);
      for (std::size_t k = k0; k < k1; ++k) {
        emit({.kind = CmdKind::kCuRead,
              .row = src_row,
              .atom = ops[k].atom_a,
              .buf = pair_p(k - k0)});
        emit({.kind = CmdKind::kCuRead,
              .row = src_row,
              .atom = ops[k].atom_b,
              .buf = pair_s(k - k0)});
      }
      for (std::size_t k = k0; k < k1; ++k)
        emit({.kind = CmdKind::kC2,
              .buf = pair_p(k - k0),
              .buf2 = pair_s(k - k0),
              .tfg_reset = ops[k].tfg_reset});
      set_row(dst_row);
      for (std::size_t k = k0; k < k1; ++k) {
        emit({.kind = CmdKind::kCuWrite,
              .row = dst_row,
              .atom = ops[k].atom_a,
              .buf = pair_p(k - k0)});
        emit({.kind = CmdKind::kCuWrite,
              .row = dst_row,
              .atom = ops[k].atom_b,
              .buf = pair_s(k - k0)});
      }
    }
  }

  void swap_regions() { std::swap(cur_base_, shadow_base_); }

  // ----------------------------------------------------------- scale pass

  /// Elementwise multiply by scale0 * step^i over storage order, using the
  /// zero-operand C2 trick: clear P, read the atom into S, C2 leaves
  /// w_i * S[i] in P, write P back (our documented INTT extension).
  void emit_scale_pass() {
    regime_ = Regime::kScale;
    const std::uint32_t scale0 = params_.n_inv();
    const std::uint32_t step =
        job_.negacyclic ? params_.psi_inv() : std::uint32_t{1};
    tfg_params(scale0, step);

    bool first = true;
    for (std::uint32_t r = 0; r < layout_.rows_used(); ++r) {
      set_row(cur_base_ + r);
      std::vector<CuOp> ops;
      ops.reserve(layout_.atoms_in_row(r));
      for (std::uint32_t a = 0; a < layout_.atoms_in_row(r); ++a) {
        ops.push_back(CuOp{.zero_p = true,
                           .tfg_reset = first,
                           .row = cur_base_ + r,
                           .atom_a = static_cast<std::uint16_t>(a),
                           .atom_b = static_cast<std::uint16_t>(a),
                           .read_a = false,  // P side is zeroed, not read
                           .write_b = false});
        first = false;
      }
      emit_ops(ops, SlotMode::kBufferPair);
    }
  }

  // ----------------------------------------------------------------- state

  const dram::DramGeometry& geometry_;
  const ntt::NttParams& params_;
  const MapperConfig& config_;
  const NttJob& job_;
  DataLayout layout_;
  std::uint32_t q_;
  std::uint64_t twiddle_base_;
  unsigned log_n_ = 0;
  unsigned log_wpa_ = 0;
  unsigned log_wpr_ = 0;

  std::vector<Command> trace_;
  Regime regime_ = Regime::kNone;
  std::optional<std::uint32_t> open_row_;
  std::optional<std::uint32_t> cached_omega0_;
  std::optional<std::uint32_t> cached_step_;
  std::uint32_t cur_base_ = 0;
  std::uint32_t shadow_base_ = 0;
};

}  // namespace

RowCentricMapper::RowCentricMapper(const dram::DramGeometry& geometry,
                                   const ntt::NttParams& params,
                                   MapperConfig config)
    : geometry_(&geometry), params_(&params), config_(config) {
  NTTPIM_EXPECT(config.num_buffers >= 1);
}

MappedNtt RowCentricMapper::map(const NttJob& job) const {
  Builder builder(*geometry_, *params_, config_, job);
  return builder.build();
}

}  // namespace nttpim::mapping
