// Memory-controller front end (paper Fig. 1 and Sec. IV.A).
//
// Software invokes the NTT as a *write request* whose payload is the
// parameter set (N, q, address, direction); the input polynomial is already
// resident in memory. The controller resolves each request's NTT parameters
// (deriving roots of unity from q), runs the row-centric mapping, and
// appends the resulting command sequence to its pending trace. Multiple
// requests — to the same bank back-to-back or to different banks — may be
// queued before executing; per-request PARAM prologues re-configure the CU
// between calls, so moduli can change on every request (the flexibility the
// paper highlights over MeNTT/CryptoPIM).
#pragma once

#include <cstdint>
#include <vector>

#include "dram/config.h"
#include "mapping/mapper.h"
#include "mapping/trace.h"
#include "ntt/params.h"
#include "pim/host.h"

namespace nttpim::mapping {

class MemoryController {
 public:
  MemoryController(const dram::DramGeometry& geometry,
                   mapping::MapperConfig config)
      : geometry_(geometry), config_(config) {}

  struct Response {
    std::uint16_t bank = 0;
    std::uint32_t result_base_row = 0;
    std::size_t n = 0;
    std::size_t first_command = 0;  ///< offsets into the pending trace
    std::size_t command_count = 0;
  };

  /// Queue one NTT request; returns the response descriptor the host will
  /// use to locate the result after execution.
  Response submit(const pim::NttRequest& request);

  /// All queued commands, in submission order (per bank).
  const std::vector<dram::Command>& pending_trace() const noexcept {
    return trace_;
  }

  const std::vector<Response>& responses() const noexcept {
    return responses_;
  }

  /// Drop all queued commands and responses.
  void clear();

 private:
  dram::DramGeometry geometry_;
  mapping::MapperConfig config_;
  std::vector<dram::Command> trace_;
  std::vector<Response> responses_;
};

}  // namespace nttpim::mapping
