#include "mapping/trace.h"

#include <optional>

#include "common/check.h"

namespace nttpim::mapping {

TraceCounts count_commands(std::span<const dram::Command> trace) {
  using dram::CmdKind;
  TraceCounts counts;
  counts.total = trace.size();
  for (const auto& cmd : trace) {
    switch (cmd.kind) {
      case CmdKind::kAct:
        ++counts.acts;
        ++counts.acts_by_regime[cmd.regime];
        break;
      case CmdKind::kPre: ++counts.pres; break;
      case CmdKind::kCuRead: ++counts.column_reads; break;
      case CmdKind::kCuWrite: ++counts.column_writes; break;
      case CmdKind::kScalarRead: ++counts.column_reads; break;
      case CmdKind::kScalarWrite: ++counts.column_writes; break;
      case CmdKind::kC1: ++counts.c1_ops; break;
      case CmdKind::kC2: ++counts.c2_ops; break;
      case CmdKind::kScalarBu: ++counts.scalar_bus; break;
      case CmdKind::kParam: ++counts.params; break;
      case CmdKind::kBufZero: ++counts.buf_zeros; break;
      case CmdKind::kRefresh:
        NTTPIM_CHECK_MSG(false, "traces must not contain refresh commands");
    }
  }
  return counts;
}

namespace {

struct BankCheckState {
  std::optional<std::uint32_t> open_row;
  std::vector<bool> buffer_valid;
  // The atom whose contents currently sit in the GSA (buffer 0), used to
  // validate scalar read-modify-write sequences.
  std::optional<std::pair<std::uint32_t, std::uint16_t>> gsa_atom;
  bool scalar_valid[2] = {false, false};
  bool params_seen = false;
};

}  // namespace

void validate_trace(std::span<const dram::Command> trace,
                    const dram::DramGeometry& geometry,
                    std::size_t num_buffers) {
  using dram::CmdKind;
  std::map<std::uint16_t, BankCheckState> banks;

  auto state_of = [&](std::uint16_t bank) -> BankCheckState& {
    auto [it, inserted] = banks.try_emplace(bank);
    if (inserted) it->second.buffer_valid.assign(num_buffers, false);
    return it->second;
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& cmd = trace[i];
    auto& st = state_of(cmd.bank);

    const auto check_open_row = [&](std::uint32_t row) {
      NTTPIM_CHECK_MSG(st.open_row.has_value(),
                       "column command with bank closed");
      NTTPIM_CHECK_MSG(*st.open_row == row,
                       "column command targets a row that is not open");
      NTTPIM_CHECK_MSG(row < geometry.rows_per_bank, "row out of range");
    };
    const auto check_buf = [&](std::uint8_t b) {
      NTTPIM_CHECK_MSG(b < num_buffers, "buffer index beyond Nb");
    };

    switch (cmd.kind) {
      case CmdKind::kAct:
        NTTPIM_CHECK_MSG(!st.open_row.has_value(),
                         "ACT while another row is open (missing PRE)");
        NTTPIM_CHECK_MSG(cmd.row < geometry.rows_per_bank,
                         "ACT row out of range");
        st.open_row = cmd.row;
        break;
      case CmdKind::kPre:
        NTTPIM_CHECK_MSG(st.open_row.has_value(), "PRE with no open row");
        st.open_row.reset();
        break;
      case CmdKind::kCuRead:
        check_open_row(cmd.row);
        check_buf(cmd.buf);
        NTTPIM_CHECK_MSG(cmd.atom < geometry.atoms_per_row,
                         "atom out of range");
        st.buffer_valid[cmd.buf] = true;
        if (cmd.buf == 0) st.gsa_atom = {{cmd.row, cmd.atom}};
        break;
      case CmdKind::kCuWrite:
        check_open_row(cmd.row);
        check_buf(cmd.buf);
        NTTPIM_CHECK_MSG(st.buffer_valid[cmd.buf],
                         "CU_WR from a buffer that was never loaded");
        break;
      case CmdKind::kC1:
        check_buf(cmd.buf);
        NTTPIM_CHECK_MSG(st.params_seen, "compute before PARAM setup");
        NTTPIM_CHECK_MSG(st.buffer_valid[cmd.buf],
                         "C1 on a buffer that was never loaded");
        break;
      case CmdKind::kC2:
        check_buf(cmd.buf);
        check_buf(cmd.buf2);
        NTTPIM_CHECK_MSG(cmd.buf != cmd.buf2, "C2 operands must differ");
        NTTPIM_CHECK_MSG(st.params_seen, "compute before PARAM setup");
        NTTPIM_CHECK_MSG(
            st.buffer_valid[cmd.buf] && st.buffer_valid[cmd.buf2],
            "C2 on a buffer that was never loaded");
        break;
      case CmdKind::kParam:
        st.params_seen = true;
        break;
      case CmdKind::kBufZero:
        check_buf(cmd.buf);
        st.buffer_valid[cmd.buf] = true;
        break;
      case CmdKind::kScalarRead:
        check_open_row(cmd.row);
        NTTPIM_CHECK_MSG(cmd.lane < geometry.words_per_atom(),
                         "lane out of range");
        NTTPIM_CHECK_MSG(cmd.scalar_reg < 2, "scalar register out of range");
        st.buffer_valid[0] = true;
        st.gsa_atom = {{cmd.row, cmd.atom}};
        st.scalar_valid[cmd.scalar_reg] = true;
        break;
      case CmdKind::kScalarWrite:
        check_open_row(cmd.row);
        NTTPIM_CHECK_MSG(cmd.scalar_reg < 2, "scalar register out of range");
        NTTPIM_CHECK_MSG(st.scalar_valid[cmd.scalar_reg],
                         "scalar write from an empty register");
        NTTPIM_CHECK_MSG(
            st.gsa_atom.has_value() && st.gsa_atom->first == cmd.row &&
                st.gsa_atom->second == cmd.atom,
            "scalar write requires the GSA to hold the target atom "
            "(read-modify-write violated)");
        break;
      case CmdKind::kScalarBu:
        NTTPIM_CHECK_MSG(st.params_seen, "compute before PARAM setup");
        NTTPIM_CHECK_MSG(st.scalar_valid[0] && st.scalar_valid[1],
                         "scalar BU with unloaded operand registers");
        break;
      case CmdKind::kRefresh:
        NTTPIM_CHECK_MSG(false, "traces must not contain refresh commands");
    }
  }
}

MappedNtt retarget_bank(const MappedNtt& mapped, std::uint16_t bank) {
  MappedNtt out = mapped;
  for (auto& cmd : out.trace) cmd.bank = bank;
  return out;
}

}  // namespace nttpim::mapping
