// Physical placement of a polynomial inside a bank.
//
// A length-N polynomial (already bit-reversed by the host) occupies
// consecutive words starting at a row-aligned base. Word index i (relative
// to the polynomial) lives at:
//   row  = base_row + i / words_per_row
//   atom = (i mod words_per_row) / words_per_atom
//   lane = i mod words_per_atom
// DIT stage s pairs words (i, i + 2^(s-1)); for spans >= one atom the two
// words share their lane, which is what makes the Na-way vectorized C2
// butterfly line up (paper Sec. IV.B).
#pragma once

#include <cstdint>

#include "common/bitutil.h"
#include "common/check.h"
#include "dram/config.h"

namespace nttpim::mapping {

struct WordPlace {
  std::uint32_t row;
  std::uint16_t atom;
  std::uint8_t lane;
};

class DataLayout {
 public:
  DataLayout(const dram::DramGeometry& geometry, std::uint32_t base_row,
             std::size_t n)
      : geometry_(&geometry), base_row_(base_row), n_(n) {
    NTTPIM_EXPECT(is_pow2(n) && n >= 2);
    NTTPIM_EXPECT_MSG(base_row + rows_used() <= geometry.rows_per_bank,
                      "polynomial does not fit in the bank");
  }

  const dram::DramGeometry& geometry() const noexcept { return *geometry_; }
  std::uint32_t base_row() const noexcept { return base_row_; }
  std::size_t n() const noexcept { return n_; }
  unsigned log2n() const noexcept { return exact_log2(n_); }

  std::size_t words_per_row() const noexcept {
    return geometry_->words_per_row();
  }
  std::size_t words_per_atom() const noexcept {
    return geometry_->words_per_atom();
  }

  /// Number of (possibly partially used) rows the polynomial occupies.
  std::uint32_t rows_used() const noexcept {
    return static_cast<std::uint32_t>(div_ceil(n_, words_per_row()));
  }

  /// Atoms used within row `row_index` (relative row; all but a trailing
  /// partial row use every atom the polynomial covers).
  std::uint32_t atoms_in_row(std::uint32_t row_index) const {
    NTTPIM_EXPECT(row_index < rows_used());
    const std::size_t remaining = n_ - std::size_t{row_index} * words_per_row();
    const std::size_t words = std::min(remaining, words_per_row());
    return static_cast<std::uint32_t>(div_ceil(words, words_per_atom()));
  }

  WordPlace place(std::size_t word_index) const {
    NTTPIM_EXPECT(word_index < n_);
    const std::size_t wpr = words_per_row();
    const std::size_t wpa = words_per_atom();
    return WordPlace{
        .row = base_row_ + static_cast<std::uint32_t>(word_index / wpr),
        .atom = static_cast<std::uint16_t>((word_index % wpr) / wpa),
        .lane = static_cast<std::uint8_t>(word_index % wpa),
    };
  }

  /// Word index of (relative row, atom, lane 0).
  std::size_t word_of(std::uint32_t rel_row, std::uint32_t atom) const {
    return std::size_t{rel_row} * words_per_row() +
           std::size_t{atom} * words_per_atom();
  }

 private:
  const dram::DramGeometry* geometry_;
  std::uint32_t base_row_;
  std::size_t n_;
};

}  // namespace nttpim::mapping
