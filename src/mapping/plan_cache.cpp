#include "mapping/plan_cache.h"

namespace nttpim::mapping {

PlanKey PlanKey::make(const dram::DramGeometry& geometry,
                      const ntt::NttParams& params,
                      const MapperConfig& config, const NttJob& job) {
  PlanKey key;
  key.word_bytes = geometry.word_bytes;
  key.atom_bytes = geometry.atom_bytes;
  key.atoms_per_row = geometry.atoms_per_row;
  key.rows_per_bank = geometry.rows_per_bank;
  key.n = params.n();
  key.q = params.q();
  key.num_buffers = config.num_buffers;
  key.pipelined = config.pipelined;
  key.in_place = config.in_place;
  key.row_centric = config.row_centric;
  key.bank = config.bank;
  key.base_row = job.base_row;
  key.direction = job.direction;
  key.scale_output = job.scale_output;
  key.negacyclic = job.negacyclic;
  return key;
}

std::shared_ptr<const MappedNtt> PlanCache::get_or_map(
    const dram::DramGeometry& geometry, const ntt::NttParams& params,
    const MapperConfig& config, const NttJob& job) {
  const PlanKey key = PlanKey::make(geometry, params, config, job);
  if (const auto it = plans_.find(key); it != plans_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;

  std::shared_ptr<const MappedNtt> plan;
  if (config.bank != 0) {
    // The trace is bank-relative apart from the bank field: replicate the
    // bank-0 twin when available instead of re-running the mapper.
    PlanKey twin = key;
    twin.bank = 0;
    if (const auto it = plans_.find(twin); it != plans_.end())
      plan = std::make_shared<const MappedNtt>(
          retarget_bank(*it->second, config.bank));
  }
  if (!plan) {
    const RowCentricMapper mapper(geometry, params, config);
    plan = std::make_shared<const MappedNtt>(mapper.map(job));
  }
  plans_.emplace(key, plan);
  return plan;
}

void PlanCache::clear() {
  plans_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace nttpim::mapping
