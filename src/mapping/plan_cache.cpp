#include "mapping/plan_cache.h"

namespace nttpim::mapping {

PlanKey PlanKey::make(const dram::DramGeometry& geometry,
                      const ntt::NttParams& params,
                      const MapperConfig& config, const NttJob& job) {
  PlanKey key;
  key.word_bytes = geometry.word_bytes;
  key.atom_bytes = geometry.atom_bytes;
  key.atoms_per_row = geometry.atoms_per_row;
  key.rows_per_bank = geometry.rows_per_bank;
  key.n = params.n();
  key.q = params.q();
  key.num_buffers = config.num_buffers;
  key.pipelined = config.pipelined;
  key.in_place = config.in_place;
  key.row_centric = config.row_centric;
  key.bank = config.bank;
  key.base_row = job.base_row;
  key.direction = job.direction;
  key.scale_output = job.scale_output;
  key.negacyclic = job.negacyclic;
  return key;
}

std::shared_ptr<const MappedNtt> PlanCache::get_or_map(
    const dram::DramGeometry& geometry, const ntt::NttParams& params,
    const MapperConfig& config, const NttJob& job) {
  const PlanKey key = PlanKey::make(geometry, params, config, job);
  if (const auto it = plans_->find(key); it != plans_->end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<const MappedNtt> plan;
  if (config.bank != 0) {
    // The trace is bank-relative apart from the bank field: any non-bank-0
    // miss is served by replicating the bank-0 twin, mapping (and caching)
    // the twin first if this is the key's first sighting. Mapping at the
    // *requested* bank instead would strand the plan under that bank's key
    // and re-run the mapper for every other bank of a wave — and for
    // bank 0 itself.
    PlanKey twin_key = key;
    twin_key.bank = 0;
    auto twin = plans_->find(twin_key);
    if (twin == plans_->end()) {
      MapperConfig base_config = config;
      base_config.bank = 0;
      const RowCentricMapper mapper(geometry, params, base_config);
      twin = plans_
                 ->emplace(twin_key,
                          std::make_shared<const MappedNtt>(mapper.map(job)))
                 .first;
      record_counts(twin_key, *twin->second);
    }
    plan = std::make_shared<const MappedNtt>(
        retarget_bank(*twin->second, config.bank));
  } else {
    const RowCentricMapper mapper(geometry, params, config);
    plan = std::make_shared<const MappedNtt>(mapper.map(job));
    record_counts(key, *plan);
  }
  plans_->emplace(key, plan);
  return plan;
}

void PlanCache::record_counts(const PlanKey& key, const MappedNtt& plan) {
  const TraceCounts counts = count_commands(plan.trace);
  const sync::MutexLock lk(counts_mu_);
  counts_.emplace(key.cost_key(), counts);
}

std::optional<TraceCounts> PlanCache::peek_counts(const PlanKey& key) const {
  const sync::MutexLock lk(counts_mu_);
  if (const auto it = counts_.find(key.cost_key()); it != counts_.end())
    return it->second;
  return std::nullopt;
}

void PlanCache::clear() {
  plans_->clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  const sync::MutexLock lk(counts_mu_);
  counts_.clear();
}

}  // namespace nttpim::mapping
