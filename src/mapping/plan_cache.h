// Memoization of mapped NTT command traces.
//
// Mapping is pure: the emitted trace depends only on the DRAM geometry, the
// NTT parameter set (n, q), the mapper configuration and the job descriptor
// — never on the polynomial data. FHE workloads issue dozens of transforms
// with identical keys per homomorphic operation (every limb of every
// ciphertext polynomial), so re-running RowCentricMapper::map per transform
// is pure host-side waste. PlanCache memoizes the MappedNtt per key; plans
// are immutable and handed out as shared_ptr so callers can hold them across
// cache mutations.
//
// Bank replication: a mapped trace is bank-relative except for the bank id
// stamped on each command, so a miss that differs from a cached plan only in
// the bank field is served by retarget_bank() (an O(trace) copy) instead of
// a fresh mapper run — the building block of the batched multi-bank backend.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "dram/config.h"
#include "mapping/mapper.h"
#include "mapping/trace.h"
#include "ntt/params.h"
#include "sync/mutex.h"
#include "sync/thread_confined.h"

namespace nttpim::mapping {

/// Value-comparable identity of one mapping invocation.
struct PlanKey {
  // Geometry (everything the layout / emission depends on).
  std::size_t word_bytes = 0;
  std::size_t atom_bytes = 0;
  std::size_t atoms_per_row = 0;
  std::size_t rows_per_bank = 0;
  // NTT parameter set (roots are derived deterministically from n, q).
  std::size_t n = 0;
  std::uint32_t q = 0;
  // MapperConfig.
  std::size_t num_buffers = 0;
  bool pipelined = true;
  bool in_place = true;
  bool row_centric = true;
  std::uint16_t bank = 0;
  // NttJob.
  std::uint32_t base_row = 0;
  Direction direction = Direction::kForward;
  bool scale_output = true;
  bool negacyclic = false;

  friend auto operator<=>(const PlanKey&, const PlanKey&) = default;

  static PlanKey make(const dram::DramGeometry& geometry,
                      const ntt::NttParams& params,
                      const MapperConfig& config, const NttJob& job);

  /// The key under which this plan's *cost* is filed: bank and base row
  /// zeroed, because neither changes a single command count — a trace is
  /// bank-relative apart from the stamped bank id, and base_row only
  /// shifts row addresses. One mapper run therefore prices the plan for
  /// every placement.
  PlanKey cost_key() const {
    PlanKey key = *this;
    key.bank = 0;
    key.base_row = 0;
    return key;
  }
};

class PlanCache {
 public:
  /// Return the memoized plan for (geometry, params, config, job), mapping
  /// it on first use. The mapper only ever runs for bank 0: a non-bank-0
  /// miss maps and caches the bank-0 twin if absent, then serves the
  /// requested bank by rewriting bank ids — so a wave touching banks in any
  /// order costs exactly one mapper run per distinct non-bank key.
  std::shared_ptr<const MappedNtt> get_or_map(
      const dram::DramGeometry& geometry, const ntt::NttParams& params,
      const MapperConfig& config, const NttJob& job);

  /// Command counts of the cached plan for `key`, or nullopt when no plan
  /// with that cost_key() has been mapped yet. Unlike get_or_map this IS
  /// thread-safe against the owning thread: the counts live in a side map
  /// under their own mutex, touched once per fresh mapper run, so a
  /// dispatcher can price waves for a shard while the shard executes
  /// (the cost-aware scheduling idea of MeNTT/BP-NTT-style balancers).
  /// Returns counts, never cycles — pricing them against a clock is
  /// ActModel::estimate_pass_cycles's job.
  std::optional<TraceCounts> peek_counts(const PlanKey& key) const;

  /// hits()/misses() are relaxed atomics: safe to sample from another
  /// thread while the owning thread maps (a serving shard's stats reader).
  /// get_or_map/size/clear still require external synchronization — the
  /// cache itself is single-driver, only the counters (and peek_counts)
  /// are share-readable.
  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const noexcept { return plans_->size(); }
  void clear();

 private:
  using PlanMap = std::map<PlanKey, std::shared_ptr<const MappedNtt>>;

  void record_counts(const PlanKey& key, const MappedNtt& plan);

  /// The single-driver half of the contract above, now checked: debug
  /// builds assert every plans_ access comes from the owning (worker)
  /// thread. Counters and counts_ stay share-readable on purpose.
  sync::ThreadConfined<PlanMap> plans_;
  /// Single-driver written, share-readable: relaxed is sufficient because
  /// readers only sample monotone counters (stats), never infer plan
  /// visibility from them.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  mutable sync::Mutex counts_mu_;  ///< guards counts_ only (see peek_counts)
  std::map<PlanKey, TraceCounts> counts_ NTTPIM_GUARDED_BY(counts_mu_);
};

}  // namespace nttpim::mapping
