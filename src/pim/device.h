// PIM device: banks augmented with atom buffers and a CU each.
//
// PimBank owns the functional state of one bank (cell array, buffers, CU);
// PimDevice owns all banks plus the shared geometry. Command *timing* is the
// simulation engine's job (sim/engine.h); PimBank::apply executes a
// command's functional effect, in program order per bank.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/bank.h"
#include "dram/command.h"
#include "dram/config.h"
#include "pim/buffer.h"
#include "pim/cu.h"

namespace nttpim::pim {

class PimBank {
 public:
  PimBank(const dram::DramGeometry& geometry, std::size_t num_buffers);

  std::size_t num_buffers() const noexcept { return buffers_.size(); }
  dram::DramArray& array() noexcept { return array_; }
  const dram::DramArray& array() const noexcept { return array_; }
  ComputeUnit& cu() noexcept { return cu_; }
  const ComputeUnit& cu() const noexcept { return cu_; }
  const AtomBuffer& buffer(std::size_t index) const;

  /// Execute the functional effect of `cmd` (no timing). ACT/PRE only track
  /// the functionally-open row used to validate column commands.
  void apply(const dram::Command& cmd);

  /// Row currently open from the functional perspective (-1 if closed).
  std::int64_t functional_open_row() const noexcept { return open_row_; }

 private:
  AtomBuffer& buffer_ref(std::size_t index);

  dram::DramArray array_;
  std::vector<AtomBuffer> buffers_;
  ComputeUnit cu_;
  std::int64_t open_row_ = -1;
};

class PimDevice {
 public:
  PimDevice(const dram::DramGeometry& geometry, std::size_t num_buffers);

  const dram::DramGeometry& geometry() const noexcept { return geometry_; }
  std::size_t num_buffers() const noexcept { return num_buffers_; }
  std::size_t num_banks() const noexcept { return banks_.size(); }
  PimBank& bank(std::size_t index);
  const PimBank& bank(std::size_t index) const;

 private:
  dram::DramGeometry geometry_;
  std::size_t num_buffers_;
  std::vector<PimBank> banks_;
};

}  // namespace nttpim::pim
