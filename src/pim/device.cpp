#include "pim/device.h"

#include <algorithm>

#include "common/check.h"

namespace nttpim::pim {

PimBank::PimBank(const dram::DramGeometry& geometry, std::size_t num_buffers)
    : array_(geometry), buffers_(num_buffers) {
  NTTPIM_EXPECT_MSG(num_buffers >= 1, "at least the GSA buffer must exist");
  NTTPIM_EXPECT_MSG(geometry.words_per_atom() == kAtomWords,
                    "geometry atom size must match the CU datapath");
}

const AtomBuffer& PimBank::buffer(std::size_t index) const {
  NTTPIM_EXPECT(index < buffers_.size());
  return buffers_[index];
}

AtomBuffer& PimBank::buffer_ref(std::size_t index) {
  NTTPIM_EXPECT_MSG(index < buffers_.size(),
                    "command references a buffer beyond Nb");
  return buffers_[index];
}

void PimBank::apply(const dram::Command& cmd) {
  using dram::CmdKind;
  switch (cmd.kind) {
    case CmdKind::kAct:
      NTTPIM_CHECK_MSG(open_row_ == -1, "functional ACT on open bank");
      open_row_ = cmd.row;
      break;
    case CmdKind::kPre:
      NTTPIM_CHECK_MSG(open_row_ != -1, "functional PRE on closed bank");
      open_row_ = -1;
      break;
    case CmdKind::kCuRead: {
      NTTPIM_CHECK_MSG(open_row_ == cmd.row, "CU_RD row mismatch");
      const auto atom = array_.read_atom(cmd.row, cmd.atom);
      auto& buf = buffer_ref(cmd.buf);
      std::copy(atom.begin(), atom.end(), buf.words.begin());
      break;
    }
    case CmdKind::kCuWrite: {
      NTTPIM_CHECK_MSG(open_row_ == cmd.row, "CU_WR row mismatch");
      const auto& buf = buffer_ref(cmd.buf);
      array_.write_atom(cmd.row, cmd.atom, buf.words);
      break;
    }
    case CmdKind::kC1:
      cu_.exec_c1(buffer_ref(cmd.buf), cmd.stages);
      break;
    case CmdKind::kC2:
      NTTPIM_EXPECT_MSG(cmd.buf != cmd.buf2,
                        "C2 requires two distinct buffers");
      cu_.exec_c2(buffer_ref(cmd.buf), buffer_ref(cmd.buf2), cmd.tfg_reset);
      break;
    case CmdKind::kParam:
      cu_.load_param(cmd.param_reg, cmd.param_value);
      break;
    case CmdKind::kBufZero:
      buffer_ref(cmd.buf).clear();
      break;
    case CmdKind::kScalarRead: {
      NTTPIM_CHECK_MSG(open_row_ == cmd.row, "S_RD row mismatch");
      // The column read lands the atom in the GSA (buffer 0); the LSU then
      // latches one word into a scalar register.
      const auto atom = array_.read_atom(cmd.row, cmd.atom);
      auto& gsa = buffer_ref(0);
      std::copy(atom.begin(), atom.end(), gsa.words.begin());
      cu_.set_scalar_reg(cmd.scalar_reg, gsa.words[cmd.lane]);
      break;
    }
    case CmdKind::kScalarWrite: {
      NTTPIM_CHECK_MSG(open_row_ == cmd.row, "S_WR row mismatch");
      // Read-modify-write through the GSA: the mapper guarantees the GSA
      // already holds this atom's contents (it issued an S_RD earlier).
      auto& gsa = buffer_ref(0);
      gsa.words[cmd.lane] = cu_.scalar_reg(cmd.scalar_reg);
      array_.write_atom(cmd.row, cmd.atom, gsa.words);
      break;
    }
    case CmdKind::kScalarBu:
      cu_.exec_scalar_bu(cmd.tfg_reset);
      break;
    case CmdKind::kRefresh:
      // Cell contents are retained; nothing to do functionally.
      break;
  }
}

PimDevice::PimDevice(const dram::DramGeometry& geometry,
                     std::size_t num_buffers)
    : geometry_(geometry), num_buffers_(num_buffers) {
  NTTPIM_EXPECT(geometry.banks >= 1);
  banks_.reserve(geometry.banks);
  for (std::size_t b = 0; b < geometry.banks; ++b)
    banks_.emplace_back(geometry, num_buffers);
}

PimBank& PimDevice::bank(std::size_t index) {
  NTTPIM_EXPECT(index < banks_.size());
  return banks_[index];
}

const PimBank& PimDevice::bank(std::size_t index) const {
  NTTPIM_EXPECT(index < banks_.size());
  return banks_[index];
}

}  // namespace nttpim::pim
