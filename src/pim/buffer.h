// Atom buffers (paper Fig. 2).
//
// Buffer 0 is the primary atom buffer P — the bank's existing global sense
// amplifiers. Buffers 1..Nb-1 are the secondary atom buffers S implemented
// with 6T SRAM cells + inverters. Each holds exactly one DRAM atom
// (Na = 8 32-bit words) and is single-ported; concurrency limits are
// enforced by the timing engine, not here.
#pragma once

#include <array>
#include <cstdint>

namespace nttpim::pim {

inline constexpr std::size_t kAtomWords = 8;  ///< Na (32 B / 32-bit words)

struct AtomBuffer {
  std::array<std::uint32_t, kAtomWords> words{};

  void clear() noexcept { words.fill(0); }
};

}  // namespace nttpim::pim
