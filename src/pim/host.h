// Host-side interface (paper Sec. IV.A, Fig. 1).
//
// From software's perspective the NTT function is invoked as a *write
// request* whose "write data" carries the NTT parameters; the input
// polynomial is already resident in memory and only its address is passed.
// The host is also responsible for the bit-reversal permutation (a common
// assumption shared with MeNTT/CryptoPIM), which load_polynomial performs
// while placing data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitutil.h"
#include "common/check.h"
#include "pim/device.h"

namespace nttpim::pim {

/// The NTT invocation request: everything the MC needs to emit commands.
struct NttRequest {
  std::uint16_t bank = 0;
  std::uint32_t base_row = 0;  ///< row-aligned address of the polynomial
  std::size_t n = 0;           ///< polynomial length (power of two)
  std::uint32_t q = 0;         ///< modulus
  std::uint32_t omega = 0;     ///< primitive n-th root of unity
  bool inverse = false;        ///< run the inverse transform
};

/// Place a natural-order polynomial into the bank starting at `base_row`,
/// applying the host-side bit-reversal permutation.
inline void load_polynomial(PimBank& bank, std::uint32_t base_row,
                            std::span<const std::uint32_t> poly) {
  NTTPIM_EXPECT(is_pow2(poly.size()));
  const auto& geometry = bank.array().geometry();
  const std::size_t base_word =
      static_cast<std::size_t>(base_row) * geometry.words_per_row();
  const unsigned bits = exact_log2(poly.size());
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const std::size_t slot = bit_reverse(static_cast<std::uint32_t>(i), bits);
    bank.array().write_linear(base_word + slot, poly[i]);
  }
}

/// Read back `n` words in storage order (natural-order NTT output).
inline std::vector<std::uint32_t> read_result(const PimBank& bank,
                                              std::uint32_t base_row,
                                              std::size_t n) {
  const auto& geometry = bank.array().geometry();
  const std::size_t base_word =
      static_cast<std::size_t>(base_row) * geometry.words_per_row();
  std::vector<std::uint32_t> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = bank.array().read_linear(base_word + i);
  return out;
}

}  // namespace nttpim::pim
