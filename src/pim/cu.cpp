#include "pim/cu.h"

#include "common/check.h"
#include "ntt/modular.h"

namespace nttpim::pim {

using ntt::add_mod;
using ntt::sub_mod;

void ComputeUnit::refresh_c1_steps() {
  // c1_step_pow_[k] = c1_root^(2^k): exec_c1 stage s of `stages` uses the
  // step c1_root^(2^(stages-s)), stages <= 3, so three squarings at PARAM
  // time replace a pow_mod per stage per C1 command.
  c1_step_pow_[0] = barrett_.reduce(c1_root_);
  c1_step_pow_[1] = barrett_.mul(c1_step_pow_[0], c1_step_pow_[0]);
  c1_step_pow_[2] = barrett_.mul(c1_step_pow_[1], c1_step_pow_[1]);
}

void ComputeUnit::load_param(dram::ParamReg reg, std::uint32_t value) {
  switch (reg) {
    case dram::ParamReg::kModulus:
      // The BU's reduction pipelines (Montgomery in hardware, Barrett
      // here) handle 31-bit moduli; reject out-of-range values up front
      // rather than from inside the reducer's constructor.
      NTTPIM_EXPECT_MSG(value > 1 && value < (1u << 31),
                        "modulus must be in (1, 2^31)");
      q_ = value;
      barrett_ = ntt::Barrett32(q_);
      tfg_ = ntt::TwiddleGenerator(q_);
      refresh_c1_steps();
      break;
    case dram::ParamReg::kTfgOmega0:
      tfg_.set_omega0(value);
      break;
    case dram::ParamReg::kTfgStep:
      tfg_.set_step(value);
      break;
    case dram::ParamReg::kC1Root:
      c1_root_ = value % q_;
      refresh_c1_steps();
      break;
  }
}

void ComputeUnit::exec_c1(AtomBuffer& buf, unsigned stages) {
  NTTPIM_EXPECT_MSG(stages >= 1 && stages <= 3,
                    "C1 supports 1..log2(Na) stages");
  const std::size_t points = std::size_t{1} << stages;
  NTTPIM_CHECK(points <= kAtomWords);
  // `stages` DIT stages over the first 2^stages words. The per-stage twiddle
  // step is c1_root^(2^(stages-s)): squaring the root register per stage —
  // exactly what the tiny C1 twiddle logic does in hardware (precomputed
  // here at PARAM-load time).
  for (unsigned s = 1; s <= stages; ++s) {
    const std::size_t m = std::size_t{1} << (s - 1);
    const std::uint32_t step = c1_step_pow_[stages - s];
    for (std::size_t k = 0; k < points; k += 2 * m) {
      std::uint32_t w = 1;
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint64_t u = buf.words[k + j];
        const std::uint64_t t = barrett_.mul(buf.words[k + j + m], w);
        buf.words[k + j] = static_cast<std::uint32_t>(add_mod(u, t, q_));
        buf.words[k + j + m] =
            static_cast<std::uint32_t>(sub_mod(u, t, q_));
        w = barrett_.mul(w, step);
        ++butterflies_;
      }
    }
  }
}

void ComputeUnit::exec_c2(AtomBuffer& p, AtomBuffer& s, bool tfg_reset) {
  NTTPIM_EXPECT_MSG(&p != &s, "C2 operand buffers must be distinct");
  if (tfg_reset) tfg_.reset();
  for (std::size_t j = 0; j < kAtomWords; ++j) {
    const std::uint32_t w = tfg_.next();
    const std::uint64_t a = p.words[j];
    const std::uint64_t t = barrett_.mul(s.words[j], w);
    p.words[j] = static_cast<std::uint32_t>(add_mod(a, t, q_));
    s.words[j] = static_cast<std::uint32_t>(sub_mod(a, t, q_));
    ++butterflies_;
  }
}

void ComputeUnit::set_scalar_reg(unsigned index, std::uint32_t value) {
  NTTPIM_EXPECT(index < 2);
  scalar_[index] = value % q_;
}

std::uint32_t ComputeUnit::scalar_reg(unsigned index) const {
  NTTPIM_EXPECT(index < 2);
  return scalar_[index];
}

void ComputeUnit::exec_scalar_bu(bool tfg_reset) {
  if (tfg_reset) tfg_.reset();
  const std::uint32_t w = tfg_.next();
  const std::uint64_t a = scalar_[0];
  const std::uint64_t t = barrett_.mul(scalar_[1], w);
  scalar_[0] = static_cast<std::uint32_t>(add_mod(a, t, q_));
  scalar_[1] = static_cast<std::uint32_t>(sub_mod(a, t, q_));
  ++butterflies_;
}

}  // namespace nttpim::pim
