// Compute Unit (CU) functional model — paper Fig. 2 (right), Algorithms 1–2.
//
// The CU contains: a fully pipelined butterfly unit (two ModAdd/Sub, one
// ModMult with Montgomery reduction), the twiddle factor generator (TFG),
// two scalar operand registers, parameter registers loaded via PARAM
// commands, and a crossbar connecting buffers to the BU registers.
//
// This class implements the *functional* semantics; latencies live in
// DramTiming and are accounted by the simulation engine. Arithmetic is
// computed directly in Z_q via precomputed Barrett reduction — bit-exact
// with the plain `%` forms in modular.h (cross-checked in test_modular)
// and with the hardware's Montgomery pipeline, but without a 128-bit
// division per butterfly on the host.
#pragma once

#include <cstdint>

#include "dram/command.h"
#include "ntt/barrett.h"
#include "ntt/twiddle.h"
#include "pim/buffer.h"

namespace nttpim::pim {

class ComputeUnit {
 public:
  ComputeUnit() : tfg_(2) {}

  /// PARAM command: load a parameter register.
  void load_param(dram::ParamReg reg, std::uint32_t value);

  std::uint32_t modulus() const noexcept { return q_; }
  const ntt::TwiddleGenerator& tfg() const noexcept { return tfg_; }

  /// C1: in-buffer NTT of one atom — `stages` DIT stages (bit-reversed
  /// layout within the atom), using the C1 root parameter register.
  /// Counts 4*stages butterflies.
  void exec_c1(AtomBuffer& buf, unsigned stages);

  /// C2: Na-way vectorized DIT butterfly across two buffers:
  ///   (p[j], s[j]) <- (p[j] + w_j * s[j],  p[j] - w_j * s[j])
  /// with w_j produced by the TFG (reset first if `tfg_reset`).
  void exec_c2(AtomBuffer& p, AtomBuffer& s, bool tfg_reset);

  /// Scalar path (single-buffer fallback): registers.
  void set_scalar_reg(unsigned index, std::uint32_t value);
  std::uint32_t scalar_reg(unsigned index) const;

  /// One scalar butterfly on (r0, r1) with a TFG twiddle.
  void exec_scalar_bu(bool tfg_reset);

  /// Total butterfly operations executed (for the energy model).
  std::uint64_t butterfly_count() const noexcept { return butterflies_; }

 private:
  /// Re-derive the per-stage C1 twiddle steps (c1_root^(2^k)) after a
  /// modulus or C1-root parameter load.
  void refresh_c1_steps();

  std::uint32_t q_ = 3;  ///< placeholder modulus until PARAM arrives
  ntt::Barrett32 barrett_{3};  ///< host-side stand-in for the BU's reducer
  std::uint32_t c1_root_ = 1;
  std::uint32_t c1_step_pow_[3] = {1, 1, 1};  ///< c1_root^(2^k), k = 0..2
  ntt::TwiddleGenerator tfg_;
  std::uint32_t scalar_[2] = {0, 0};
  std::uint64_t butterflies_ = 0;
};

}  // namespace nttpim::pim
