#include "dram/command.h"

#include <sstream>

namespace nttpim::dram {

const char* to_string(CmdKind kind) {
  switch (kind) {
    case CmdKind::kAct: return "ACT";
    case CmdKind::kPre: return "PRE";
    case CmdKind::kRefresh: return "REF";
    case CmdKind::kCuRead: return "CU_RD";
    case CmdKind::kCuWrite: return "CU_WR";
    case CmdKind::kC1: return "C1";
    case CmdKind::kC2: return "C2";
    case CmdKind::kParam: return "PARAM";
    case CmdKind::kBufZero: return "BUF_ZERO";
    case CmdKind::kScalarRead: return "S_RD";
    case CmdKind::kScalarWrite: return "S_WR";
    case CmdKind::kScalarBu: return "S_BU";
  }
  return "?";
}

const char* to_string(ParamReg reg) {
  switch (reg) {
    case ParamReg::kModulus: return "q";
    case ParamReg::kTfgOmega0: return "tfg.omega0";
    case ParamReg::kTfgStep: return "tfg.step";
    case ParamReg::kC1Root: return "c1.root";
  }
  return "?";
}

const char* to_string(Regime regime) {
  switch (regime) {
    case Regime::kNone: return "-";
    case Regime::kSetup: return "setup";
    case Regime::kIntraAtom: return "intra-atom";
    case Regime::kIntraRow: return "intra-row";
    case Regime::kInterRow: return "inter-row";
    case Regime::kScale: return "scale";
  }
  return "?";
}

std::string describe(const Command& cmd) {
  std::ostringstream os;
  os << to_string(cmd.kind);
  switch (cmd.kind) {
    case CmdKind::kAct:
      os << " row=" << cmd.row;
      break;
    case CmdKind::kPre:
    case CmdKind::kRefresh:
      break;
    case CmdKind::kCuRead:
      os << " row=" << cmd.row << " atom=" << cmd.atom
         << " -> buf" << int(cmd.buf);
      break;
    case CmdKind::kCuWrite:
      os << " buf" << int(cmd.buf) << " -> row=" << cmd.row
         << " atom=" << cmd.atom;
      break;
    case CmdKind::kC1:
      os << " buf" << int(cmd.buf) << " stages=" << int(cmd.stages)
         << (cmd.tfg_reset ? " [tfg-reset]" : "");
      break;
    case CmdKind::kC2:
      os << " P=buf" << int(cmd.buf) << " S=buf" << int(cmd.buf2)
         << (cmd.tfg_reset ? " [tfg-reset]" : "");
      break;
    case CmdKind::kParam:
      os << ' ' << to_string(cmd.param_reg) << '=' << cmd.param_value;
      break;
    case CmdKind::kBufZero:
      os << " buf" << int(cmd.buf);
      break;
    case CmdKind::kScalarRead:
      os << " row=" << cmd.row << " atom=" << cmd.atom
         << " lane=" << int(cmd.lane) << " -> r" << int(cmd.scalar_reg);
      break;
    case CmdKind::kScalarWrite:
      os << " r" << int(cmd.scalar_reg) << " -> row=" << cmd.row
         << " atom=" << cmd.atom << " lane=" << int(cmd.lane);
      break;
    case CmdKind::kScalarBu:
      os << (cmd.tfg_reset ? " [tfg-reset]" : "");
      break;
  }
  os << "  (" << to_string(cmd.regime) << ')';
  return os.str();
}

bool is_column_command(CmdKind kind) {
  switch (kind) {
    case CmdKind::kCuRead:
    case CmdKind::kCuWrite:
    case CmdKind::kScalarRead:
    case CmdKind::kScalarWrite:
      return true;
    default:
      return false;
  }
}

bool is_compute_command(CmdKind kind) {
  switch (kind) {
    case CmdKind::kC1:
    case CmdKind::kC2:
    case CmdKind::kScalarBu:
      return true;
    default:
      return false;
  }
}

}  // namespace nttpim::dram
