#include "dram/energy.h"

namespace nttpim::dram {

EnergyBreakdown compute_energy(const EnergyParams& params,
                               const EnergyCounts& counts,
                               double elapsed_ns) {
  EnergyBreakdown out;
  out.activation_nj =
      static_cast<double>(counts.activations) * params.act_pre_pj / 1e3;
  out.column_nj =
      static_cast<double>(counts.column_transfers) * params.column_pj / 1e3;
  out.compute_nj =
      static_cast<double>(counts.butterflies) * params.bu_op_pj / 1e3;
  out.param_nj =
      static_cast<double>(counts.param_loads) * params.param_pj / 1e3;
  out.refresh_nj =
      static_cast<double>(counts.refreshes) * params.refresh_pj / 1e3;
  // mW * ns = pJ; divide by 1e3 for nJ.
  out.background_nj = params.background_mw * elapsed_ns / 1e3;
  return out;
}

}  // namespace nttpim::dram
