// The extended DRAM command set of NTT-PIM.
//
// Standard commands (ACT/PRE) plus the paper's PIM extensions (Sec. III.D):
//  - CU-read / CU-write: column accesses whose data stops at an atom buffer
//    (P = GSA or a secondary S buffer) instead of chip I/O;
//  - C1: intra-atom NTT on one buffer (Algorithm 1);
//  - C2: one Na-way vectorized butterfly across two buffers (Algorithm 2);
//  - PARAM: load a CU parameter register via the global buffer;
//  - scalar ops used by the single-buffer (Nb=1) fallback mapping;
//  - BUF_ZERO: clear a buffer (enables the zero-operand C2 scaling trick
//    used for INTT/negacyclic support — our documented extension).
#pragma once

#include <cstdint>
#include <string>

namespace nttpim::dram {

enum class CmdKind : std::uint8_t {
  kAct,          ///< activate a row
  kPre,          ///< precharge (close) the open row
  kRefresh,      ///< per-bank refresh (engine-inserted, never in traces)
  kCuRead,       ///< column read into atom buffer `buf`
  kCuWrite,      ///< column write from atom buffer `buf`
  kC1,           ///< intra-atom NTT on buffer `buf` (`stages` stages)
  kC2,           ///< vectorized BU across buffers `buf` (P side) and `buf2`
  kParam,        ///< load parameter register `param_reg` with `param_value`
  kBufZero,      ///< clear buffer `buf`
  kScalarRead,   ///< column read via GSA, latch word `lane` into scalar reg
  kScalarWrite,  ///< store scalar reg into GSA word `lane`, column write
  kScalarBu,     ///< one butterfly on scalar regs (r0, r1)
};

/// CU parameter registers reachable through PARAM commands.
enum class ParamReg : std::uint8_t {
  kModulus,    ///< q
  kTfgOmega0,  ///< TFG sequence start value
  kTfgStep,    ///< TFG per-butterfly step r_omega
  kC1Root,     ///< root of unity of order 2^stages used by C1's twiddle logic
};

/// Mapping regime annotation (paper Sec. IV.B), carried for statistics.
enum class Regime : std::uint8_t {
  kNone,
  kSetup,      ///< parameter loading / prologue
  kIntraAtom,  ///< first log Na stages (C1)
  kIntraRow,   ///< next log(R/Na) stages (C2, buffer hits)
  kInterRow,   ///< remaining stages (C2, row activations)
  kScale,      ///< elementwise scaling passes (INTT / negacyclic extension)
};

struct Command {
  CmdKind kind = CmdKind::kAct;
  std::uint16_t bank = 0;
  std::uint32_t row = 0;   ///< target row (ACT) / expected open row (column)
  std::uint16_t atom = 0;  ///< column address in atoms
  std::uint8_t lane = 0;   ///< word lane for scalar commands
  std::uint8_t buf = 0;    ///< buffer operand (P side for C2)
  std::uint8_t buf2 = 0;   ///< second buffer operand (S side for C2)
  std::uint8_t stages = 3; ///< C1: number of NTT stages (log2 of point count)
  std::uint8_t scalar_reg = 0;  ///< scalar register index (0 or 1)
  bool tfg_reset = false;  ///< reload TFG current value from omega0
  ParamReg param_reg = ParamReg::kModulus;
  std::uint32_t param_value = 0;
  Regime regime = Regime::kNone;
};

const char* to_string(CmdKind kind);
const char* to_string(ParamReg reg);
const char* to_string(Regime regime);

/// One-line human-readable rendering (used by the command_trace example).
std::string describe(const Command& cmd);

/// True for commands that occupy a column-command slot (tCCD applies).
bool is_column_command(CmdKind kind);

/// True for CU compute commands (C1/C2/scalar BU).
bool is_compute_command(CmdKind kind);

}  // namespace nttpim::dram
