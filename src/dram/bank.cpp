#include "dram/bank.h"

#include <algorithm>

#include "common/check.h"

namespace nttpim::dram {

// ---------------------------------------------------------------- DramArray

DramArray::DramArray(const DramGeometry& geometry)
    : geometry_(geometry),
      words_(geometry.rows_per_bank * geometry.words_per_row(), 0) {}

std::size_t DramArray::offset(std::uint32_t row, std::uint32_t atom,
                              std::uint32_t lane) const {
  NTTPIM_EXPECT(row < geometry_.rows_per_bank);
  NTTPIM_EXPECT(atom < geometry_.atoms_per_row);
  NTTPIM_EXPECT(lane < geometry_.words_per_atom());
  return (static_cast<std::size_t>(row) * geometry_.atoms_per_row + atom) *
             geometry_.words_per_atom() +
         lane;
}

std::uint32_t DramArray::read_word(std::uint32_t row, std::uint32_t atom,
                                   std::uint32_t lane) const {
  return words_[offset(row, atom, lane)];
}

void DramArray::write_word(std::uint32_t row, std::uint32_t atom,
                           std::uint32_t lane, std::uint32_t value) {
  words_[offset(row, atom, lane)] = value;
}

std::span<const std::uint32_t> DramArray::read_atom(std::uint32_t row,
                                                    std::uint32_t atom) const {
  const std::size_t base = offset(row, atom, 0);
  return {words_.data() + base, geometry_.words_per_atom()};
}

void DramArray::write_atom(std::uint32_t row, std::uint32_t atom,
                           std::span<const std::uint32_t> words) {
  NTTPIM_EXPECT(words.size() == geometry_.words_per_atom());
  const std::size_t base = offset(row, atom, 0);
  std::copy(words.begin(), words.end(), words_.begin() + base);
}

std::uint32_t DramArray::read_linear(std::size_t word_index) const {
  NTTPIM_EXPECT(word_index < words_.size());
  return words_[word_index];
}

void DramArray::write_linear(std::size_t word_index, std::uint32_t value) {
  NTTPIM_EXPECT(word_index < words_.size());
  words_[word_index] = value;
}

// --------------------------------------------------------------- BankTiming

BankTiming::BankTiming(const DramTiming& timing) : timing_(timing) {}

std::uint64_t BankTiming::earliest_act(std::uint64_t t_min) const {
  NTTPIM_CHECK_MSG(open_row_ == kNoOpenRow,
                   "ACT issued while a row is open (missing PRE)");
  return std::max(t_min, t_ready_act_);
}

std::uint64_t BankTiming::earliest_pre(std::uint64_t t_min) const {
  NTTPIM_CHECK_MSG(open_row_ != kNoOpenRow, "PRE issued with no open row");
  std::uint64_t t = std::max(t_min, t_act_ + timing_.tras);
  t = std::max(t, t_wr_recovery_);
  t = std::max(t, t_rd_to_pre_);
  return t;
}

std::uint64_t BankTiming::earliest_column(std::uint64_t t_min) const {
  NTTPIM_CHECK_MSG(open_row_ != kNoOpenRow,
                   "column command issued with no open row");
  std::uint64_t t = std::max(t_min, t_act_ + timing_.trcd);
  t = std::max(t, t_col_ready_);
  return t;
}

void BankTiming::issue_act(std::uint64_t t, std::uint32_t row) {
  NTTPIM_CHECK(t >= earliest_act(t));
  open_row_ = row;
  t_act_ = t;
  row_ever_opened_ = true;
  ++act_count_;
}

void BankTiming::issue_pre(std::uint64_t t) {
  NTTPIM_CHECK(t >= earliest_pre(t));
  open_row_ = kNoOpenRow;
  t_ready_act_ = t + timing_.trp;
  ++pre_count_;
}

std::uint64_t BankTiming::earliest_refresh(std::uint64_t t_min) const {
  NTTPIM_CHECK_MSG(open_row_ == kNoOpenRow,
                   "refresh requires a precharged bank");
  return std::max(t_min, t_ready_act_);
}

void BankTiming::issue_refresh(std::uint64_t t) {
  NTTPIM_CHECK(t >= earliest_refresh(t));
  t_ready_act_ = t + timing_.trfc;
  ++refresh_count_;
}

std::uint64_t BankTiming::issue_read(std::uint64_t t) {
  NTTPIM_CHECK(t >= earliest_column(t));
  t_col_ready_ = t + timing_.tccd;
  const std::uint64_t data_ready = t + timing_.cl + timing_.burst;
  t_rd_to_pre_ = std::max(t_rd_to_pre_, t + timing_.tccd + timing_.burst);
  ++read_count_;
  return data_ready;
}

std::uint64_t BankTiming::issue_write(std::uint64_t t) {
  NTTPIM_CHECK(t >= earliest_column(t));
  t_col_ready_ = t + timing_.tccd;
  const std::uint64_t data_end = t + timing_.cwl + timing_.burst;
  t_wr_recovery_ = std::max(t_wr_recovery_, data_end + timing_.twr);
  ++write_count_;
  return data_end;
}

}  // namespace nttpim::dram
