// DRAM bank model: functional cell-array storage plus the timing state
// machine that enforces the Table-I constraints.
//
// The two concerns are deliberately separate classes: DramArray is the
// "unmodified cell array" (the paper's key constraint — PIM never changes
// it), BankTiming is the per-bank scheduling state the memory controller /
// simulation engine consults. The simulation engine composes them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dram/config.h"

namespace nttpim::dram {

/// Functional storage of one bank, addressed by (row, atom, lane).
class DramArray {
 public:
  explicit DramArray(const DramGeometry& geometry);

  const DramGeometry& geometry() const noexcept { return geometry_; }

  std::uint32_t read_word(std::uint32_t row, std::uint32_t atom,
                          std::uint32_t lane) const;
  void write_word(std::uint32_t row, std::uint32_t atom, std::uint32_t lane,
                  std::uint32_t value);

  /// Whole-atom access (the granularity of CU-read / CU-write).
  std::span<const std::uint32_t> read_atom(std::uint32_t row,
                                           std::uint32_t atom) const;
  void write_atom(std::uint32_t row, std::uint32_t atom,
                  std::span<const std::uint32_t> words);

  /// Linear word addressing (word index within the bank), used by the host
  /// interface to lay out polynomials.
  std::uint32_t read_linear(std::size_t word_index) const;
  void write_linear(std::size_t word_index, std::uint32_t value);

 private:
  std::size_t offset(std::uint32_t row, std::uint32_t atom,
                     std::uint32_t lane) const;

  DramGeometry geometry_;
  std::vector<std::uint32_t> words_;
};

/// Per-bank timing state machine.
///
/// All methods take/return absolute cycle timestamps. `earliest_*` answers
/// "given the constraints, at which cycle >= t_min could this command
/// issue?"; `issue_*` commits the command at a chosen cycle and updates
/// state. The engine is responsible for also honoring bus and buffer/CU
/// constraints before committing.
class BankTiming {
 public:
  explicit BankTiming(const DramTiming& timing);

  static constexpr std::int64_t kNoOpenRow = -1;

  std::int64_t open_row() const noexcept { return open_row_; }

  std::uint64_t earliest_act(std::uint64_t t_min) const;
  std::uint64_t earliest_pre(std::uint64_t t_min) const;
  /// Earliest issue cycle for a column command (CU/scalar read or write);
  /// requires an open row (checked) and tRCD / tCCD spacing.
  std::uint64_t earliest_column(std::uint64_t t_min) const;

  void issue_act(std::uint64_t t, std::uint32_t row);
  void issue_pre(std::uint64_t t);
  /// Per-bank refresh: requires a closed bank; busy for tRFC.
  std::uint64_t earliest_refresh(std::uint64_t t_min) const;
  void issue_refresh(std::uint64_t t);
  /// Column read issued at t; returns the cycle data is valid in the buffer.
  std::uint64_t issue_read(std::uint64_t t);
  /// Column write issued at t; returns the cycle the write completes in the
  /// array (write recovery starts then).
  std::uint64_t issue_write(std::uint64_t t);

  // Statistics.
  std::uint64_t act_count() const noexcept { return act_count_; }
  std::uint64_t pre_count() const noexcept { return pre_count_; }
  std::uint64_t read_count() const noexcept { return read_count_; }
  std::uint64_t write_count() const noexcept { return write_count_; }
  std::uint64_t refresh_count() const noexcept { return refresh_count_; }

 private:
  const DramTiming timing_;
  std::int64_t open_row_ = kNoOpenRow;
  std::uint64_t t_act_ = 0;           ///< cycle of the last ACT
  std::uint64_t t_ready_act_ = 0;     ///< earliest next ACT (tRP after PRE)
  std::uint64_t t_col_ready_ = 0;     ///< earliest next column cmd (tCCD)
  std::uint64_t t_wr_recovery_ = 0;   ///< earliest PRE w.r.t. write recovery
  std::uint64_t t_rd_to_pre_ = 0;     ///< earliest PRE w.r.t. read completion
  bool row_ever_opened_ = false;
  std::uint64_t act_count_ = 0;
  std::uint64_t pre_count_ = 0;
  std::uint64_t read_count_ = 0;
  std::uint64_t write_count_ = 0;
  std::uint64_t refresh_count_ = 0;
};

}  // namespace nttpim::dram
