// DRAM + CU energy model.
//
// The paper reports NTT energy (Table III) from its HBM2E-based simulation.
// We charge per-event energies for row activation, column transfers and BU
// operations plus a background (standby/peripheral) power term. Constants
// are HBM2E-class values calibrated so the N=1024 / Nb=2 point lands in the
// ballpark of the paper's Table III (see DESIGN.md substitution notes); the
// *scaling shape* across N, Nb and designs is what the model reproduces.
#pragma once

#include <cstdint>

namespace nttpim::dram {

struct EnergyParams {
  double act_pre_pj = 8000.0;   ///< one ACT+PRE pair (row activation energy)
  double column_pj = 400.0;     ///< one 32B column transfer (array <-> buffer)
  double bu_op_pj = 15.0;       ///< one butterfly (ModMult + ModAdd/Sub)
  double param_pj = 20.0;       ///< one parameter-register load
  double refresh_pj = 4000.0;   ///< one per-bank refresh cycle (tRFC)
  double background_mw = 200.0; ///< per-bank standby + peripheral power
};

/// Event counts accumulated by a simulation run.
struct EnergyCounts {
  std::uint64_t activations = 0;
  std::uint64_t column_transfers = 0;
  std::uint64_t butterflies = 0;
  std::uint64_t param_loads = 0;
  std::uint64_t refreshes = 0;
};

struct EnergyBreakdown {
  double activation_nj = 0;
  double column_nj = 0;
  double compute_nj = 0;
  double param_nj = 0;
  double refresh_nj = 0;
  double background_nj = 0;

  double total_nj() const noexcept {
    return activation_nj + column_nj + compute_nj + param_nj + refresh_nj +
           background_nj;
  }
};

/// Fold counts + elapsed time into an energy breakdown.
EnergyBreakdown compute_energy(const EnergyParams& params,
                               const EnergyCounts& counts,
                               double elapsed_ns);

}  // namespace nttpim::dram
