#include "dram/config.h"

#include <cmath>

#include "common/check.h"

namespace nttpim::dram {

namespace {

/// Rescale an analog (ns-fixed) timing given in cycles@from to cycles@to,
/// rounding up (DRAM controllers must round up to whole cycles).
unsigned rescale(unsigned cycles, double from_mhz, double to_mhz) {
  const double ns = static_cast<double>(cycles) * 1e3 / from_mhz;
  const double scaled = ns * to_mhz / 1e3;
  const auto up = static_cast<unsigned>(std::ceil(scaled - 1e-9));
  return up == 0 ? 1 : up;
}

}  // namespace

DramTiming DramTiming::at_frequency(double mhz) const {
  NTTPIM_EXPECT_MSG(mhz > 0, "frequency must be positive");
  DramTiming t = *this;
  t.freq_mhz = mhz;
  t.cl = rescale(cl, freq_mhz, mhz);
  t.cwl = rescale(cwl, freq_mhz, mhz);
  t.tccd = rescale(tccd, freq_mhz, mhz);
  t.trp = rescale(trp, freq_mhz, mhz);
  t.tras = rescale(tras, freq_mhz, mhz);
  t.trcd = rescale(trcd, freq_mhz, mhz);
  t.twr = rescale(twr, freq_mhz, mhz);
  t.burst = rescale(burst, freq_mhz, mhz);
  t.trefi = rescale(trefi, freq_mhz, mhz);
  t.trfc = rescale(trfc, freq_mhz, mhz);
  // CU latencies are cycle-fixed: the logic slows down with the clock.
  return t;
}

DramTiming hbm2e_timing() { return DramTiming{}; }

DramGeometry hbm2e_geometry(std::size_t banks, std::size_t channels) {
  DramGeometry g;
  NTTPIM_EXPECT(banks >= 1);
  NTTPIM_EXPECT_MSG(channels >= 1, "a device needs at least one channel");
  NTTPIM_EXPECT_MSG(banks % channels == 0,
                    "banks must divide evenly across channels");
  g.banks = banks;
  g.num_channels = channels;
  return g;
}

}  // namespace nttpim::dram
