// DRAM geometry and timing configuration (paper Table I, HBM2E-based).
//
// Timing values are specified in cycles at the nominal 1200 MHz clock. For
// the frequency-sensitivity experiment (paper Fig. 8) the *analog* DRAM
// timings are fixed in nanoseconds — at a lower clock they take fewer cycles
// — while CU compute latencies are fixed in cycles (digital logic scales with
// the clock). DramTiming::at_frequency performs that conversion.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nttpim::dram {

/// Nominal HBM2E clock used throughout the paper.
inline constexpr double kNominalFreqMhz = 1200.0;

/// Physical organization of one PIM-augmented DRAM device.
///
/// Banks are partitioned evenly across `num_channels` independent channels
/// (HBM/DDR-style): bank b belongs to channel b / banks_per_channel(), and
/// each channel drives its own command bus — commands serialize only
/// against commands of the *same* channel (see sim/engine.h). The paper's
/// Table-I device is the single-channel special case.
struct DramGeometry {
  std::size_t word_bytes = 4;       ///< NTT coefficient width (32-bit)
  std::size_t atom_bytes = 32;      ///< DRAM atom (HBM transaction unit)
  std::size_t atoms_per_row = 32;   ///< "# of columns per row" in Table I
  std::size_t rows_per_bank = 32768;
  std::size_t banks = 1;
  std::size_t num_channels = 1;     ///< independent command buses; banks
                                    ///< must divide evenly across them
  std::size_t ranks = 1;

  std::size_t words_per_atom() const noexcept {
    return atom_bytes / word_bytes;
  }
  std::size_t words_per_row() const noexcept {
    return atoms_per_row * words_per_atom();
  }
  std::size_t words_per_bank() const noexcept {
    return rows_per_bank * words_per_row();
  }
  std::size_t banks_per_channel() const noexcept {
    return banks / num_channels;
  }
  /// Channel whose command bus serves `bank`.
  std::size_t channel_of(std::size_t bank) const noexcept {
    return bank / banks_per_channel();
  }
};

/// Timing parameters resolved at a specific clock frequency.
///
/// DRAM-array timings (cl..twr) are ns-fixed; compute latencies
/// (c1_latency..) are cycle-fixed.
struct DramTiming {
  double freq_mhz = kNominalFreqMhz;

  // --- DRAM analog timings, in cycles at freq_mhz (Table I at 1200 MHz) ---
  unsigned cl = 14;     ///< column read latency (command -> data at GSA)
  unsigned cwl = 12;    ///< column write latency (command -> data at cells)
  unsigned tccd = 2;    ///< column-command to column-command
  unsigned trp = 14;    ///< precharge to activate
  unsigned tras = 34;   ///< activate to precharge (minimum row-open time)
  unsigned trcd = 14;   ///< activate to first column command
  unsigned twr = 16;    ///< end of write data to precharge
  unsigned burst = 2;   ///< data transfer beats per 32B atom
  unsigned trefi = 4680; ///< refresh interval (3.9 us at 1200 MHz)
  unsigned trfc = 420;  ///< refresh cycle time (350 ns at 1200 MHz)
  /// Stagger refresh across channels (HBM-style): channel c's tREFI clock
  /// is offset by trefi * c / num_channels, so at most one channel's banks
  /// hit their refresh deadline at a time and a multi-channel wave never
  /// sees every command bus stall for tRFC at once. Off by default — the
  /// paper's single-channel device has nothing to stagger, and the seed
  /// baseline stays bit-identical.
  bool stagger_refresh = false;

  // --- CU (digital logic) latencies, cycle-fixed (paper Sec. VI.B) ---
  unsigned c1_latency = 15;        ///< C1 result latency
  unsigned c1_interval = 12;       ///< C1 initiation interval (12 BUs piped)
  unsigned c2_latency = 10;        ///< C2 result latency
  unsigned c2_interval = 8;        ///< C2 initiation interval (8 BUs piped)
  unsigned scalar_bu_latency = 10; ///< one scalar BU through the pipe
  unsigned param_latency = 4;      ///< PARAM: 16-bit chunks via global buffer
  unsigned param_bus_cycles = 2;   ///< bus occupancy of a PARAM command
  unsigned bufzero_latency = 1;    ///< clearing an atom buffer

  double ns_per_cycle() const noexcept { return 1e3 / freq_mhz; }
  double cycles_to_us(std::uint64_t cycles) const noexcept {
    return static_cast<double>(cycles) * ns_per_cycle() / 1e3;
  }

  /// Derive the timing set at a different clock: DRAM timings keep their
  /// absolute nanosecond values (rounded up to whole cycles), CU latencies
  /// keep their cycle counts.
  DramTiming at_frequency(double mhz) const;
};

/// The paper's Table I configuration at 1200 MHz.
DramTiming hbm2e_timing();

/// The paper's Table I geometry (single bank), scaled to `banks` banks
/// split across `channels` independent command buses (banks % channels
/// must be 0).
DramGeometry hbm2e_geometry(std::size_t banks = 1, std::size_t channels = 1);

}  // namespace nttpim::dram
