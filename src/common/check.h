// Lightweight run-time checking for the NTT-PIM library.
//
// Two severity levels are provided:
//  - NTTPIM_CHECK:   precondition / invariant violations that indicate misuse
//                    of a public API. Always enabled; throws std::logic_error
//                    so callers (and tests) can observe the failure.
//  - NTTPIM_EXPECT:  argument validation that throws std::invalid_argument.
//
// Throwing (rather than aborting) follows the C++ Core Guidelines (E.2/I.5):
// errors visible at the interface are reported with exceptions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nttpim {

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "NTTPIM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

[[noreturn]] inline void throw_expect_failure(const char* expr, const char* file,
                                              int line, const std::string& msg) {
  std::ostringstream os;
  os << "invalid argument: (" << expr << ") violated at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace detail

}  // namespace nttpim

#define NTTPIM_CHECK(expr)                                                   \
  do {                                                                       \
    if (!(expr))                                                             \
      ::nttpim::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");  \
  } while (false)

#define NTTPIM_CHECK_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr))                                                             \
      ::nttpim::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                            (msg));                          \
  } while (false)

#define NTTPIM_EXPECT(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::nttpim::detail::throw_expect_failure(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define NTTPIM_EXPECT_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr))                                                             \
      ::nttpim::detail::throw_expect_failure(#expr, __FILE__, __LINE__,      \
                                             (msg));                         \
  } while (false)
