// Deterministic pseudo-random generation for tests, benches and examples.
//
// A small xoshiro256** implementation seeded via splitmix64 so results are
// reproducible across platforms and standard-library versions (std::mt19937
// distributions are not portable across implementations).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace nttpim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // splitmix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) via rejection-free multiply-shift.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // (Lemire's multiply-shift; slight modulo bias is irrelevant for tests.)
    if (bound == 0) return 0;
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform 32-bit residue modulo q.
  std::uint32_t next_mod(std::uint32_t q) noexcept {
    return static_cast<std::uint32_t>(next_below(q));
  }

  /// Vector of `n` residues mod q.
  std::vector<std::uint32_t> residues(std::size_t n, std::uint32_t q) {
    NTTPIM_EXPECT(q != 0);
    std::vector<std::uint32_t> v(n);
    for (auto& x : v) x = next_mod(q);
    return v;
  }

  /// Uniform signed value in [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// 128-bit value in [0, bound) (wide RNS coefficients; the modulo bias
  /// is irrelevant for tests).
  unsigned __int128 next_u128_below(unsigned __int128 bound) noexcept {
    if (bound == 0) return 0;
    // Two explicit draws: operand order of `|` is unsequenced, and results
    // must be reproducible across compilers.
    const std::uint64_t hi = next_u64();
    const std::uint64_t lo = next_u64();
    return ((static_cast<unsigned __int128>(hi) << 64) | lo) % bound;
  }

  /// Vector of `n` wide coefficients in [0, bound).
  std::vector<unsigned __int128> wide_coeffs(std::size_t n,
                                             unsigned __int128 bound) {
    NTTPIM_EXPECT(bound != 0);
    std::vector<unsigned __int128> v(n);
    for (auto& x : v) x = next_u128_below(bound);
    return v;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace nttpim
