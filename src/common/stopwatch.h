// Wall-clock stopwatch for host-side baseline measurements.
#pragma once

#include <chrono>

namespace nttpim {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or last reset().
  double elapsed_ns() const noexcept {
    return std::chrono::duration<double, std::nano>(Clock::now() - start_)
        .count();
  }

  double elapsed_us() const noexcept { return elapsed_ns() / 1e3; }
  double elapsed_ms() const noexcept { return elapsed_ns() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nttpim
