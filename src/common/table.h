// ASCII table formatting for benchmark output.
//
// The benchmark binaries regenerate the paper's tables/figures as plain-text
// rows; TablePrinter lines columns up and renders a compact bordered table.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nttpim {

class TablePrinter {
 public:
  /// Create a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `precision` digits after the point.
  static std::string num(double value, int precision = 2);

  /// Render the table (headers, separator, rows) to `os`.
  void print(std::ostream& os) const;

  /// Render to a string.
  std::string to_string() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nttpim
