// Bit-manipulation helpers used throughout the NTT and mapping code.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace nttpim {

/// True iff `x` is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x > 0.
constexpr unsigned ilog2(std::uint64_t x) {
  NTTPIM_CHECK_MSG(x != 0, "ilog2(0) undefined");
  return static_cast<unsigned>(63 - std::countl_zero(x));
}

/// log2 of a power of two; checks the argument really is one.
constexpr unsigned exact_log2(std::uint64_t x) {
  NTTPIM_CHECK_MSG(is_pow2(x), "exact_log2 requires a power of two");
  return ilog2(x);
}

/// Ceiling division for non-negative integers.
constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  NTTPIM_CHECK(b != 0);
  return (a + b - 1) / b;
}

/// Reverse the low `bits` bits of `x` (the classic FFT bit-reversal index).
constexpr std::uint32_t bit_reverse(std::uint32_t x, unsigned bits) {
  NTTPIM_CHECK(bits <= 32);
  std::uint32_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1u);
    x >>= 1;
  }
  return r;
}

/// Table of bit-reversed indices for a size-`n` (power-of-two) transform.
inline std::vector<std::uint32_t> bit_reverse_table(std::size_t n) {
  NTTPIM_EXPECT(is_pow2(n));
  const unsigned bits = exact_log2(n);
  std::vector<std::uint32_t> table(n);
  for (std::size_t i = 0; i < n; ++i)
    table[i] = bit_reverse(static_cast<std::uint32_t>(i), bits);
  return table;
}

/// Permute `v` in place by the bit-reversal permutation (an involution).
template <typename T>
void bit_reverse_permute(std::vector<T>& v) {
  NTTPIM_EXPECT(is_pow2(v.size()));
  const unsigned bits = exact_log2(v.size());
  for (std::uint32_t i = 0; i < v.size(); ++i) {
    const std::uint32_t j = bit_reverse(i, bits);
    if (j > i) std::swap(v[i], v[j]);
  }
}

}  // namespace nttpim
