#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace nttpim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NTTPIM_EXPECT(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  NTTPIM_EXPECT_MSG(cells.size() == headers_.size(),
                    "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    os << '\n';
  };
  const auto print_sep = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace nttpim
