// Chrome trace-event JSON exporter (loadable in Perfetto / chrome://tracing).
//
// Renders a TraceCollector::Snapshot as the classic trace-event format:
// one track per registered thread (client threads, the dispatcher, one
// per shard worker), waves and request lifecycle stages as "X" complete
// events, dispatch/steal/rebalance/shed decisions as "i" instants, and
// each request as an "s"/"t"/"f" flow chain keyed by its seq — the arrow
// in the viewer that stitches submit -> queued -> cut -> execute ->
// complete across threads.
//
// The exporter is tolerant of incomplete chains (a drained-mid-flight
// request, or pieces lost to ring overflow): a slice whose closing
// anchor is missing gets a minimal duration, and flow pieces are only
// emitted for events actually present.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/trace_collector.h"

namespace nttpim::telemetry {

/// Write `snapshot` as Chrome trace-event JSON to `os`.
void write_chrome_trace(std::ostream& os,
                        const TraceCollector::Snapshot& snapshot);

/// Convenience wrapper rendering to a string (tests, small traces).
std::string chrome_trace_json(const TraceCollector::Snapshot& snapshot);

}  // namespace nttpim::telemetry
