#include "telemetry/trace_collector.h"

#include <utility>

#include "telemetry/ring_buffer.h"

namespace nttpim::telemetry {

namespace {

/// Collector ids start at 1: a default-constructed (disabled) collector
/// keeps id 0 and never consults the thread_local cache.
std::atomic<std::uint64_t> g_next_collector_id{1};

// Per-thread ring cache, two levels. The single slot below is the emit
// fast path (one comparison); the vector is the full registry of every
// (collector id, ring) this thread has registered, consulted on a slot
// miss so a thread alternating between collectors re-registers its
// existing rings instead of duplicating them. In both, the collector id
// guards against staleness: ids are monotone and never reused, so an
// entry for a destroyed collector can never match a live one. Threads
// are matched ONLY through this thread_local state, never by
// std::thread::id — the OS recycles thread ids, and matching on them
// let a new thread adopt a dead thread's ring and name. Entries for
// destroyed collectors linger (a pointer pair per collector the thread
// ever emitted to) but are never dereferenced.
thread_local std::uint64_t t_collector_id = 0;
thread_local void* t_buffer = nullptr;
thread_local std::vector<std::pair<std::uint64_t, void*>> t_rings;

}  // namespace

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kSubmit: return "submit";
    case EventKind::kAdmit: return "admit";
    case EventKind::kShed: return "shed";
    case EventKind::kFormerEnqueue: return "former_enqueue";
    case EventKind::kWaveCut: return "wave_cut";
    case EventKind::kDispatchAssign: return "dispatch_assign";
    case EventKind::kSteal: return "steal";
    case EventKind::kRebalance: return "rebalance";
    case EventKind::kExecuteBegin: return "execute_begin";
    case EventKind::kExecuteEnd: return "execute_end";
    case EventKind::kDeadlineMiss: return "deadline_miss";
    case EventKind::kComplete: return "complete";
  }
  return "unknown";
}

struct TraceCollector::ThreadBuffer {
  ThreadBuffer(std::size_t capacity, std::uint64_t tid, std::string name)
      : ring(capacity), tid(tid), name(std::move(name)) {}

  EventRing ring;
  std::uint64_t tid;
  std::string name;
  std::atomic<std::uint64_t> recorded{0};
  std::atomic<std::uint64_t> dropped{0};
};

TraceCollector::TraceCollector() = default;

TraceCollector::TraceCollector(const Config& config)
    : cfg_(config),
      id_(config.enabled
              ? g_next_collector_id.fetch_add(1, std::memory_order_relaxed)
              : 0) {
  enabled_.store(config.enabled, std::memory_order_relaxed);
}

TraceCollector::~TraceCollector() = default;

void TraceCollector::emit(const TraceEvent& event) {
  if (!enabled()) return;
  ThreadBuffer* buf = t_collector_id == id_
                          ? static_cast<ThreadBuffer*>(t_buffer)
                          : register_thread({});
  if (buf->ring.try_push(event)) {
    buf->recorded.fetch_add(1, std::memory_order_relaxed);
  } else {
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void TraceCollector::set_thread_name(std::string_view name) {
  if (!enabled()) return;
  register_thread(name);
}

TraceCollector::ThreadBuffer* TraceCollector::register_thread(
    std::string_view name) {
  const sync::MutexLock lock(mu_);
  // This thread's ring for *this* collector, if it made one before (the
  // fast-path slot may have been overwritten by another collector). Only
  // the thread_local registry identifies the thread — see its comment.
  ThreadBuffer* buf = nullptr;
  for (const auto& [cid, ptr] : t_rings) {
    if (cid == id_) {
      buf = static_cast<ThreadBuffer*>(ptr);
      break;
    }
  }
  if (buf == nullptr) {
    const std::uint64_t tid = buffers_.size() + 1;
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        cfg_.ring_capacity, tid,
        name.empty() ? "thread-" + std::to_string(tid) : std::string(name)));
    buf = buffers_.back().get();
    t_rings.emplace_back(id_, buf);
  } else if (!name.empty()) {
    buf->name = name;
  }
  t_collector_id = id_;
  t_buffer = buf;
  return buf;
}

TraceCollector::Snapshot TraceCollector::drain() {
  Snapshot snapshot;
  const sync::MutexLock lock(mu_);
  snapshot.threads.reserve(buffers_.size());
  for (const auto& buf : buffers_) {
    ThreadTrace trace;
    trace.name = buf->name;
    trace.tid = buf->tid;
    buf->ring.drain_into(trace.events);
    snapshot.dropped_events += buf->dropped.load(std::memory_order_relaxed);
    snapshot.threads.push_back(std::move(trace));
  }
  return snapshot;
}

void TraceCollector::reset() {
  const sync::MutexLock lock(mu_);
  std::vector<TraceEvent> discard;
  for (const auto& buf : buffers_) {
    discard.clear();
    buf->ring.drain_into(discard);
    buf->recorded.store(0, std::memory_order_relaxed);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t TraceCollector::total_events() const {
  const sync::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_)
    total += buf->recorded.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t TraceCollector::dropped_events() const {
  const sync::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_)
    total += buf->dropped.load(std::memory_order_relaxed);
  return total;
}

std::size_t TraceCollector::thread_count() const {
  const sync::MutexLock lock(mu_);
  return buffers_.size();
}

}  // namespace nttpim::telemetry
