// Fixed-size POD trace events of the serving-stack telemetry subsystem.
//
// One TraceEvent is one timestamped point on a request's or wave's
// lifecycle through the serving runtime (src/service/): submission and
// admission on the client thread, the wave-former's cut, the dispatcher's
// (shard, channel) assignment, steals/rebalances, the engine passes, and
// delivery. Events are deliberately a fixed-size trivially-copyable value
// type: the per-thread rings (ring_buffer.h) store them by plain struct
// assignment, so the producing hot path never allocates and a reader can
// never observe a torn event (publication is a single release store of
// the ring head, after the slot is fully written).
//
// The payload is the join key set of the serving stack: `seq` (the
// wave-former's arrival sequence number) identifies a request across its
// whole life; `wave_id` (monotone, stamped at cut time) identifies a wave
// across dispatch, steals and execution; shard/channel/tenant/cycles
// attribute the decision the event records. Exporters (chrome_trace.h)
// stitch these keys back into per-request flow chains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace nttpim::telemetry {

/// Lifecycle points the serving stack emits. The emitting thread is part
/// of the meaning: Submit/Admit/Shed/FormerEnqueue come from the client
/// thread inside NttService::submit, WaveCut/DispatchAssign from the
/// dispatch thread, and Steal/Rebalance/ExecuteBegin/ExecuteEnd/
/// DeadlineMiss/Complete from the shard worker that ran the wave.
enum class EventKind : std::uint8_t {
  kSubmit = 0,      ///< a request entered NttService::submit (per request)
  kAdmit,           ///< per-tenant admission let it pass (admission on only)
  kShed,            ///< admission shed it — no seq was ever assigned
  kFormerEnqueue,   ///< accepted into the wave-former's bounded queue
  kWaveCut,         ///< the former cut it into a wave (one event per request)
  kDispatchAssign,  ///< the wave was placed on a (shard, channel) lane
  kSteal,           ///< the wave moved across shards by a work steal
  kRebalance,       ///< the wave moved across sibling channels (group pop)
  kExecuteBegin,    ///< a worker started the wave's engine pass(es)
  kExecuteEnd,      ///< the wave's engine pass(es) finished (even on error)
  kDeadlineMiss,    ///< the request completed after its deadline
  kComplete,        ///< the request's result was delivered
};

inline constexpr std::size_t kEventKinds = 12;

/// Exporter/debug name of one kind ("submit", "wave_cut", ...).
const char* to_string(EventKind kind) noexcept;

/// Request-less sentinel for TraceEvent::seq: wave-scoped events carry
/// only the wave, and a shed request never received a sequence number.
inline constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

/// One fixed-size trace sample (40 bytes). Fields a kind does not use
/// stay at their zero/sentinel defaults.
struct TraceEvent {
  std::int64_t ts_ns = 0;      ///< ns since the collector's epoch
  std::uint64_t seq = kNoSeq;  ///< request arrival seq (kNoSeq = none)
  std::uint64_t wave_id = 0;   ///< monotone wave id (0 = not cut yet)
  std::uint64_t cycles = 0;    ///< priced modeled cycles (wave events)
  EventKind kind = EventKind::kSubmit;
  std::uint16_t shard = 0;    ///< executing / assigned shard (wave events)
  std::uint16_t channel = 0;  ///< command bus within the shard
  std::uint32_t tenant = 0;   ///< RequestClass::tenant of the request/wave
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "ring slots are written by struct assignment");

}  // namespace nttpim::telemetry
