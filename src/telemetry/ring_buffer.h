// Bounded single-producer / single-consumer ring of TraceEvents.
//
// One EventRing belongs to one producing thread (see TraceCollector's
// per-thread registration); pushes are wait-free and never allocate or
// lock. One consumer at a time drains — the collector serializes its
// drains under a mutex the producers never touch.
//
// Overflow policy: drop the NEW event. try_push returns false and the
// caller counts the drop, so the counter is exact and the producer never
// blocks. An event is either stored whole or not at all — the consumer
// only reads slots the release-store on head_ has published, never a
// slot mid-write, so events cannot tear.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/trace_event.h"

namespace nttpim::telemetry {

class EventRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2) so the slot
  /// index is a mask, not a modulo.
  explicit EventRing(std::size_t capacity) {
    std::size_t rounded = 2;
    while (rounded < capacity) rounded *= 2;
    slots_.resize(rounded);
  }

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. False = ring full; the event is dropped (count it).
  bool try_push(const TraceEvent& event) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    // Acquire pairs with the consumer's release on tail_: slots the
    // consumer freed are visible before we overwrite them.
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) return false;
    slots_[head & (slots_.size() - 1)] = event;
    // Release publishes the fully written slot to the consumer.
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: append every published event to `out` (in push
  /// order) and free their slots. Returns the number drained.
  std::size_t drain_into(std::vector<TraceEvent>& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    out.reserve(out.size() + static_cast<std::size_t>(head - tail));
    for (std::uint64_t i = tail; i != head; ++i)
      out.push_back(slots_[i & (slots_.size() - 1)]);
    tail_.store(head, std::memory_order_release);
    return static_cast<std::size_t>(head - tail);
  }

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> head_{0};  ///< written by the producer only
  std::atomic<std::uint64_t> tail_{0};  ///< written by the consumer only
};

}  // namespace nttpim::telemetry
