// TraceCollector — the runtime half of the telemetry subsystem.
//
// Owns one bounded SPSC EventRing per producing thread, registered
// lazily on the thread's first emit (or set_thread_name). The emit hot
// path costs one relaxed atomic load and a branch when tracing is
// disabled, and is lock-free and allocation-free when enabled: the
// calling thread caches its ring in a thread_local slot, so only the
// very first event from a thread takes the registration mutex. Drains
// (exporting) and counter reads are cold-path and serialized under that
// same mutex, which producers never touch.
//
// Timestamps are nanoseconds since the collector's construction
// (now_ns / to_ns); exporters convert to trace-viewer units.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sync/mutex.h"
#include "telemetry/trace_event.h"

namespace nttpim::telemetry {

class TraceCollector {
 public:
  struct Config {
    /// Master gate, fixed at construction. Disabled (the default): no
    /// ring is ever allocated and emit() is one relaxed load + branch.
    bool enabled = false;
    /// Per-thread ring capacity in events, rounded up to a power of two.
    /// Overflow drops the new event and counts it (dropped_events()).
    std::size_t ring_capacity = 1 << 14;
  };

  TraceCollector();
  explicit TraceCollector(const Config& config);
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since this collector's construction — the ts_ns unit
  /// of every event it stores.
  std::int64_t now_ns() const noexcept {
    return to_ns(std::chrono::steady_clock::now());
  }
  std::int64_t to_ns(std::chrono::steady_clock::time_point tp) const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
        .count();
  }

  /// Record one event on the calling thread's ring. If the ring is full
  /// the event is dropped and counted — never blocks, never tears.
  void emit(const TraceEvent& event);

  /// Label the calling thread's track in exported traces ("dispatcher",
  /// "shard-0", ...); unnamed threads show as "thread-<tid>". Call sites
  /// should guard any name-string construction behind enabled() — this
  /// is a no-op (and allocates nothing) when tracing is disabled.
  void set_thread_name(std::string_view name);

  struct ThreadTrace {
    std::string name;
    std::uint64_t tid = 0;  ///< stable per-thread id (registration order)
    std::vector<TraceEvent> events;  ///< in emit order for this thread
  };
  struct Snapshot {
    std::vector<ThreadTrace> threads;
    std::uint64_t dropped_events = 0;
  };

  /// Consume every published event. Producers may keep emitting
  /// concurrently; their in-flight events simply land in the next drain.
  Snapshot drain();

  /// Drop all buffered events and zero the recorded/dropped counters.
  /// Like the service's stats epoch, meant to be called at a quiesce
  /// point — events emitted concurrently with the reset may land on
  /// either side of it.
  void reset();

  /// Events recorded (excluding drops) / dropped since the last reset.
  std::uint64_t total_events() const;
  std::uint64_t dropped_events() const;
  /// Threads that have registered a ring.
  std::size_t thread_count() const;

 private:
  struct ThreadBuffer;

  /// Cold path: find-or-create the calling thread's ring via the
  /// thread-local (collector id -> ring) registry — never by thread id,
  /// which the OS recycles (a new thread must never adopt a dead thread's
  /// ring or name). A thread alternating between collectors re-registers
  /// its existing ring instead of duplicating it. Optionally (re)names the
  /// ring and refreshes the thread_local fast-path cache. Returns the ring
  /// buffer.
  ThreadBuffer* register_thread(std::string_view name);

  const Config cfg_{};
  /// Globally unique (monotone, never reused) id of this collector when
  /// enabled; keys the thread_local ring cache so a stale cache entry
  /// from a destroyed collector can never be mistaken for ours.
  const std::uint64_t id_ = 0;
  std::atomic<bool> enabled_{false};
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  /// Registration, drains, counter reads. Guards the buffer *vector*
  /// only: each ThreadBuffer's ring is an SPSC channel its owning
  /// producer writes lock-free (the reason there is no PT_GUARDED_BY —
  /// the pointees are deliberately accessed outside the lock).
  mutable sync::Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ NTTPIM_GUARDED_BY(mu_);
};

}  // namespace nttpim::telemetry
