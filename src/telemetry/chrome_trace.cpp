#include "telemetry/chrome_trace.h"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "telemetry/trace_event.h"

namespace nttpim::telemetry {

namespace {

// All events share one synthetic process; threads are real tracks.
constexpr int kPid = 1;

// Slices whose closing anchor never arrived (drained mid-flight, or the
// anchor was dropped on ring overflow) get 1 ns so the viewer shows them.
constexpr std::int64_t kMinDurNs = 1;

/// Trace-event timestamps are microseconds; keep nanosecond precision
/// as three fixed decimals (also keeps the output deterministic for the
/// golden-file test).
std::string us(std::int64_t ns) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3) << static_cast<double>(ns) / 1e3;
  return out.str();
}

std::string escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

/// Comma/indent bookkeeping for the flat traceEvents array.
class EventArray {
 public:
  explicit EventArray(std::ostream& os) : os_(os) {
    os_ << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  }

  std::ostream& event() {
    if (!first_) os_ << ',';
    first_ = false;
    os_ << "\n    ";
    return os_;
  }

  void finish() { os_ << "\n  ]\n}\n"; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

/// Incremental {"k": v, ...} builder for the "args" payload.
class Args {
 public:
  Args& add(const char* key, std::uint64_t value) {
    if (!body_.empty()) body_ += ", ";
    body_ += '"';
    body_ += key;
    body_ += "\": ";
    body_ += std::to_string(value);
    return *this;
  }

  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

void meta(EventArray& out, std::uint64_t tid, const std::string& name) {
  out.event() << "{\"ph\": \"M\", \"pid\": " << kPid << ", \"tid\": " << tid
              << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
              << escape(name) << "\"}}";
}

void slice(EventArray& out, std::uint64_t tid, const char* cat,
           const std::string& name, std::int64_t ts_ns, std::int64_t dur_ns,
           const std::string& args) {
  if (dur_ns < kMinDurNs) dur_ns = kMinDurNs;
  out.event() << "{\"ph\": \"X\", \"pid\": " << kPid << ", \"tid\": " << tid
              << ", \"ts\": " << us(ts_ns) << ", \"dur\": " << us(dur_ns)
              << ", \"cat\": \"" << cat << "\", \"name\": \"" << escape(name)
              << "\", \"args\": " << args << "}";
}

void instant(EventArray& out, std::uint64_t tid, const char* cat,
             const std::string& name, std::int64_t ts_ns,
             const std::string& args) {
  out.event() << "{\"ph\": \"i\", \"s\": \"t\", \"pid\": " << kPid
              << ", \"tid\": " << tid << ", \"ts\": " << us(ts_ns)
              << ", \"cat\": \"" << cat << "\", \"name\": \"" << escape(name)
              << "\", \"args\": " << args << "}";
}

/// One piece of a request's flow arrow: ph is "s" (start), "t" (step)
/// or "f" (end); the id is the request's seq. The piece binds to the
/// slice open at ts on that thread, which is why flow pieces are always
/// emitted right after their enclosing slice.
void flow(EventArray& out, std::uint64_t tid, const char* ph,
          std::int64_t ts_ns, std::uint64_t id) {
  std::ostream& os = out.event();
  os << "{\"ph\": \"" << ph << "\", \"pid\": " << kPid << ", \"tid\": " << tid
     << ", \"ts\": " << us(ts_ns)
     << ", \"cat\": \"request\", \"name\": \"request\", \"id\": " << id;
  // "bp": "e" binds the terminating piece to its enclosing slice, like
  // the start/step pieces are.
  if (ph[0] == 'f') os << ", \"bp\": \"e\"";
  os << "}";
}

struct RequestIndex {
  std::int64_t enqueue_ts = -1;
  std::int64_t cut_ts = -1;
};

struct WaveIndex {
  std::int64_t assign_ts = -1;
  std::int64_t exec_end_ts = -1;
  std::vector<std::uint64_t> seqs;
};

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const TraceCollector::Snapshot& snapshot) {
  // Pass 1: index the closing anchors each slice/flow needs, keyed by
  // the join keys the events carry (request seq, wave id).
  std::unordered_map<std::uint64_t, RequestIndex> requests;
  std::unordered_map<std::uint64_t, WaveIndex> waves;
  for (const TraceCollector::ThreadTrace& thread : snapshot.threads) {
    for (const TraceEvent& e : thread.events) {
      switch (e.kind) {
        case EventKind::kFormerEnqueue:
          if (e.seq != kNoSeq) requests[e.seq].enqueue_ts = e.ts_ns;
          break;
        case EventKind::kWaveCut:
          if (e.seq != kNoSeq) {
            requests[e.seq].cut_ts = e.ts_ns;
            waves[e.wave_id].seqs.push_back(e.seq);
          }
          break;
        case EventKind::kDispatchAssign:
          waves[e.wave_id].assign_ts = e.ts_ns;
          break;
        case EventKind::kExecuteEnd:
          waves[e.wave_id].exec_end_ts = e.ts_ns;
          break;
        default:
          break;
      }
    }
  }

  EventArray out(os);
  out.event() << "{\"ph\": \"M\", \"pid\": " << kPid
              << ", \"name\": \"process_name\", \"args\": {\"name\": "
              << "\"nttpim-service\"}}";
  for (const TraceCollector::ThreadTrace& thread : snapshot.threads)
    meta(out, thread.tid, thread.name);

  // Pass 2: stream every thread's events in emit order.
  std::unordered_set<std::uint64_t> cut_slice_emitted;
  for (const TraceCollector::ThreadTrace& thread : snapshot.threads) {
    const std::uint64_t tid = thread.tid;
    for (std::size_t i = 0; i < thread.events.size(); ++i) {
      const TraceEvent& e = thread.events[i];
      switch (e.kind) {
        case EventKind::kSubmit: {
          std::int64_t end = -1;
          if (e.seq != kNoSeq) {
            const auto it = requests.find(e.seq);
            if (it != requests.end()) end = it->second.enqueue_ts;
          } else if (i + 1 < thread.events.size() &&
                     thread.events[i + 1].kind == EventKind::kShed) {
            end = thread.events[i + 1].ts_ns;  // shed submits pair locally
          }
          Args args;
          if (e.seq != kNoSeq) args.add("seq", e.seq);
          args.add("tenant", e.tenant);
          slice(out, tid, "request", "submit", e.ts_ns, end - e.ts_ns,
                args.str());
          if (e.seq != kNoSeq) flow(out, tid, "s", e.ts_ns, e.seq);
          break;
        }
        case EventKind::kAdmit:
          instant(out, tid, "request", "admit", e.ts_ns,
                  Args().add("seq", e.seq).add("tenant", e.tenant).str());
          break;
        case EventKind::kShed:
          instant(out, tid, "request", "shed", e.ts_ns,
                  Args().add("tenant", e.tenant).str());
          break;
        case EventKind::kFormerEnqueue: {
          std::int64_t end = -1;
          const auto it = requests.find(e.seq);
          if (it != requests.end()) end = it->second.cut_ts;
          slice(out, tid, "request", "queued", e.ts_ns, end - e.ts_ns,
                Args().add("seq", e.seq).add("tenant", e.tenant).str());
          break;
        }
        case EventKind::kWaveCut: {
          if (cut_slice_emitted.insert(e.wave_id).second) {
            const WaveIndex& wave = waves[e.wave_id];
            slice(out, tid, "wave", "cut wave " + std::to_string(e.wave_id),
                  e.ts_ns, wave.assign_ts - e.ts_ns,
                  Args()
                      .add("wave", e.wave_id)
                      .add("requests", wave.seqs.size())
                      .str());
          }
          if (e.seq != kNoSeq) flow(out, tid, "t", e.ts_ns, e.seq);
          break;
        }
        case EventKind::kDispatchAssign:
          instant(out, tid, "wave",
                  "assign wave " + std::to_string(e.wave_id) + " -> shard " +
                      std::to_string(e.shard) + " ch " +
                      std::to_string(e.channel),
                  e.ts_ns,
                  Args()
                      .add("wave", e.wave_id)
                      .add("shard", e.shard)
                      .add("channel", e.channel)
                      .add("cycles", e.cycles)
                      .str());
          break;
        case EventKind::kSteal:
          instant(out, tid, "wave", "steal wave " + std::to_string(e.wave_id),
                  e.ts_ns,
                  Args().add("wave", e.wave_id).add("cycles", e.cycles).str());
          break;
        case EventKind::kRebalance:
          instant(out, tid, "wave",
                  "rebalance wave " + std::to_string(e.wave_id), e.ts_ns,
                  Args().add("wave", e.wave_id).add("cycles", e.cycles).str());
          break;
        case EventKind::kExecuteBegin: {
          const WaveIndex& wave = waves[e.wave_id];
          slice(out, tid, "wave", "wave " + std::to_string(e.wave_id),
                e.ts_ns, wave.exec_end_ts - e.ts_ns,
                Args()
                    .add("wave", e.wave_id)
                    .add("shard", e.shard)
                    .add("channel", e.channel)
                    .add("cycles", e.cycles)
                    .str());
          for (const std::uint64_t seq : wave.seqs)
            flow(out, tid, "t", e.ts_ns, seq);
          break;
        }
        case EventKind::kExecuteEnd:
          break;  // consumed as the ExecuteBegin slice's duration
        case EventKind::kDeadlineMiss:
          instant(out, tid, "request", "deadline miss", e.ts_ns,
                  Args().add("seq", e.seq).add("tenant", e.tenant).str());
          break;
        case EventKind::kComplete: {
          slice(out, tid, "request", "complete", e.ts_ns, kMinDurNs,
                Args()
                    .add("seq", e.seq)
                    .add("wave", e.wave_id)
                    .add("tenant", e.tenant)
                    .str());
          flow(out, tid, "f", e.ts_ns, e.seq);
          break;
        }
      }
    }
  }
  out.finish();
}

std::string chrome_trace_json(const TraceCollector::Snapshot& snapshot) {
  std::ostringstream out;
  write_chrome_trace(out, snapshot);
  return out.str();
}

}  // namespace nttpim::telemetry
