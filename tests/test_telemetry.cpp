// Telemetry subsystem tests: SPSC ring overflow/concurrency, collector
// gating, service instrumentation (wave ids, flow chains, stage
// breakdown), and the Chrome trace exporter (golden file + parse +
// referential integrity).
//
// Like test_service.cpp, everything is sleep-free: service runs are
// synchronized by futures and drain(), so event counts are exact.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ntt/params.h"
#include "service/dispatcher.h"
#include "service/ntt_service.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/ring_buffer.h"
#include "telemetry/trace_collector.h"
#include "telemetry/trace_event.h"

namespace {

using namespace nttpim;
using service::NttService;
using service::ServiceConfig;
using telemetry::EventKind;
using telemetry::TraceCollector;
using telemetry::TraceEvent;

std::shared_ptr<const ntt::NttParams> make_params(std::size_t n = 256,
                                                  unsigned bits = 30) {
  return std::make_shared<const ntt::NttParams>(
      ntt::NttParams::create(n, bits));
}

TraceEvent event_at(std::int64_t ts_ns, EventKind kind,
                    std::uint64_t seq = telemetry::kNoSeq) {
  TraceEvent e{};
  e.ts_ns = ts_ns;
  e.kind = kind;
  e.seq = seq;
  return e;
}

/// Flatten a snapshot's events (thread order, then ring order).
std::vector<TraceEvent> all_events(const TraceCollector::Snapshot& snap) {
  std::vector<TraceEvent> events;
  for (const auto& thread : snap.threads)
    events.insert(events.end(), thread.events.begin(), thread.events.end());
  return events;
}

std::vector<TraceEvent> events_of_kind(const TraceCollector::Snapshot& snap,
                                       EventKind kind) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : all_events(snap))
    if (e.kind == kind) out.push_back(e);
  return out;
}

// ---------------------------------------------------------------- rings

// Satellite: overflow must drop-and-count exactly, never block, and the
// retained prefix must come back intact and in order.
TEST(EventRing, DropsAndCountsOnOverflow) {
  telemetry::EventRing ring(4);  // already a power of two
  EXPECT_EQ(ring.capacity(), 4u);

  std::size_t pushed = 0;
  std::size_t dropped = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (ring.try_push(event_at(static_cast<std::int64_t>(i),
                               EventKind::kSubmit, i)))
      ++pushed;
    else
      ++dropped;
  }
  EXPECT_EQ(pushed, 4u);
  EXPECT_EQ(dropped, 6u);

  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.drain_into(out), 4u);
  ASSERT_EQ(out.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].seq, i);  // the *new* events were dropped, not these
    EXPECT_EQ(out[i].ts_ns, static_cast<std::int64_t>(i));
  }

  // Drained slots are reusable.
  EXPECT_TRUE(ring.try_push(event_at(99, EventKind::kComplete, 42)));
  out.clear();
  EXPECT_EQ(ring.drain_into(out), 1u);
  EXPECT_EQ(out[0].seq, 42u);
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(telemetry::EventRing(1).capacity(), 2u);
  EXPECT_EQ(telemetry::EventRing(3).capacity(), 4u);
  EXPECT_EQ(telemetry::EventRing(1000).capacity(), 1024u);
}

// The TSan target of the `service` label: one producer emitting while
// another thread drains concurrently. Every event is either received in
// order or counted dropped — nothing lost, nothing torn.
TEST(TraceCollectorConcurrency, ConcurrentProducerAndDrainer) {
  TraceCollector collector({/*enabled=*/true, /*ring_capacity=*/256});
  constexpr std::uint64_t kTotal = 10000;

  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i)
      collector.emit(event_at(static_cast<std::int64_t>(i),
                              EventKind::kSubmit, i));
    // Relaxed: a termination flag only — the join below is the real
    // synchronization, and the post-join drain picks up stragglers.
    done.store(true, std::memory_order_relaxed);
  });

  std::vector<TraceEvent> received;
  while (!done.load(std::memory_order_relaxed)) {
    for (const auto& thread : collector.drain().threads)
      received.insert(received.end(), thread.events.begin(),
                      thread.events.end());
  }
  producer.join();
  for (const auto& thread : collector.drain().threads)
    received.insert(received.end(), thread.events.begin(),
                    thread.events.end());

  EXPECT_EQ(received.size() + collector.dropped_events(), kTotal);
  EXPECT_EQ(received.size(), collector.total_events());
  for (std::size_t i = 1; i < received.size(); ++i)
    ASSERT_LT(received[i - 1].seq, received[i].seq);
}

// ------------------------------------------------------------ collector

// Satellite: the disabled path records nothing and allocates nothing —
// no thread ever registers a ring (thread_count is the allocation proxy:
// rings are the only thing the collector allocates).
TEST(TraceCollectorGating, DisabledCollectorRecordsAndAllocatesNothing) {
  TraceCollector collector;  // default config: disabled
  EXPECT_FALSE(collector.enabled());
  for (int i = 0; i < 100; ++i)
    collector.emit(event_at(i, EventKind::kSubmit));
  collector.set_thread_name("never-registered");

  EXPECT_EQ(collector.thread_count(), 0u);
  EXPECT_EQ(collector.total_events(), 0u);
  EXPECT_EQ(collector.dropped_events(), 0u);
  const auto snap = collector.drain();
  EXPECT_TRUE(snap.threads.empty());
  EXPECT_EQ(snap.dropped_events, 0u);
}

TEST(TraceCollectorGating, OverflowCountsExactlyAndResetZeroes) {
  TraceCollector collector({/*enabled=*/true, /*ring_capacity=*/8});
  for (int i = 0; i < 20; ++i)
    collector.emit(event_at(i, EventKind::kSubmit,
                            static_cast<std::uint64_t>(i)));
  EXPECT_EQ(collector.total_events(), 8u);
  EXPECT_EQ(collector.dropped_events(), 12u);

  const auto snap = collector.drain();
  ASSERT_EQ(snap.threads.size(), 1u);
  EXPECT_EQ(snap.threads[0].events.size(), 8u);
  EXPECT_EQ(snap.dropped_events, 12u);

  collector.reset();
  EXPECT_EQ(collector.total_events(), 0u);
  EXPECT_EQ(collector.dropped_events(), 0u);
  EXPECT_TRUE(all_events(collector.drain()).empty());

  // The ring still works after a reset.
  collector.emit(event_at(1, EventKind::kComplete, 7));
  EXPECT_EQ(collector.total_events(), 1u);
}

TEST(TraceCollectorGating, ThreadNamesLabelTracks) {
  TraceCollector collector({/*enabled=*/true, /*ring_capacity=*/16});
  collector.set_thread_name("dispatcher");
  collector.emit(event_at(1, EventKind::kWaveCut, 0));
  std::thread worker([&] {
    collector.set_thread_name("shard-0");
    collector.emit(event_at(2, EventKind::kExecuteBegin));
  });
  worker.join();

  const auto snap = collector.drain();
  ASSERT_EQ(snap.threads.size(), 2u);
  std::set<std::string> names;
  std::set<std::uint64_t> tids;
  for (const auto& t : snap.threads) {
    names.insert(t.name);
    tids.insert(t.tid);
  }
  EXPECT_EQ(names, (std::set<std::string>{"dispatcher", "shard-0"}));
  EXPECT_EQ(tids, (std::set<std::uint64_t>{1, 2}));
}

// Regression (thread-id reuse): rings are registered by the collector's
// own monotone ids, never by std::thread::id, which the OS recycles. A
// sequence of short-lived named threads — glibc reuses the joined
// thread's id almost immediately — must each get a distinct track with
// its own name; the old id-keyed registry silently merged them, with the
// newest name overwriting the dead thread's track.
TEST(TraceCollectorGating, RecycledThreadIdsGetDistinctTracks) {
  TraceCollector collector({/*enabled=*/true, /*ring_capacity=*/16});
  constexpr int kThreads = 4;
  for (int i = 0; i < kThreads; ++i) {
    std::thread t([&, i] {
      collector.set_thread_name("worker-" + std::to_string(i));
      collector.emit(event_at(i, EventKind::kSubmit,
                              static_cast<std::uint64_t>(i)));
    });
    t.join();  // the next thread may be handed this one's recycled id
  }

  EXPECT_EQ(collector.thread_count(), static_cast<std::size_t>(kThreads));
  const auto snap = collector.drain();
  ASSERT_EQ(snap.threads.size(), static_cast<std::size_t>(kThreads));
  std::set<std::string> names;
  for (const auto& t : snap.threads) {
    ASSERT_EQ(t.events.size(), 1u) << t.name;
    names.insert(t.name);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kThreads));
}

// Regression (collector alternation): a thread emitting into two live
// collectors keeps exactly one ring in each — re-registration must find
// the existing ring via the per-collector registry, not allocate a
// duplicate — and each collector receives exactly its own events. Also
// covers the stale-cache case: a collector constructed after another was
// destroyed must never adopt the dead collector's cached ring.
TEST(TraceCollectorGating, AlternatingCollectorsKeepStableRings) {
  auto first = std::make_unique<TraceCollector>(
      TraceCollector::Config{/*enabled=*/true, /*ring_capacity=*/16});
  TraceCollector second({/*enabled=*/true, /*ring_capacity=*/16});
  std::thread worker([&] {
    first->emit(event_at(1, EventKind::kSubmit, 1));
    second.emit(event_at(2, EventKind::kSubmit, 2));
    first->emit(event_at(3, EventKind::kSubmit, 3));
    second.emit(event_at(4, EventKind::kSubmit, 4));
    first->emit(event_at(5, EventKind::kSubmit, 5));
  });
  worker.join();

  EXPECT_EQ(first->thread_count(), 1u);
  EXPECT_EQ(second.thread_count(), 1u);
  EXPECT_EQ(first->total_events(), 3u);
  EXPECT_EQ(second.total_events(), 2u);

  // Stale-cache case, exercised from *this* thread so its thread_local
  // registry really holds an entry for the collector being destroyed: a
  // collector constructed afterwards must register a fresh ring, never
  // adopt the dead collector's.
  first->emit(event_at(6, EventKind::kSubmit, 6));
  EXPECT_EQ(first->thread_count(), 2u);
  first.reset();
  TraceCollector third({/*enabled=*/true, /*ring_capacity=*/16});
  third.emit(event_at(7, EventKind::kSubmit, 7));
  EXPECT_EQ(third.thread_count(), 1u);
  EXPECT_EQ(third.total_events(), 1u);
  const auto snap = third.drain();
  ASSERT_EQ(snap.threads.size(), 1u);
  ASSERT_EQ(snap.threads[0].events.size(), 1u);
  EXPECT_EQ(snap.threads[0].events[0].seq, 7u);
}

// -------------------------------------------- service instrumentation

// Tentpole + wave_id satellite: wave ids are stamped at cut time,
// monotone and contiguous from 1, shared by every request of a wave, and
// the ids seen at execution are exactly the ids seen at the cut.
TEST(ServiceTelemetry, WaveIdsMonotoneAndStampedAtCut) {
  const auto params = make_params();
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  cfg.former.start_paused = true;  // stage a deterministic backlog
  cfg.telemetry.enabled = true;
  NttService svc(cfg);

  constexpr std::size_t kRequests = 16;
  Rng rng(11);
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i)
    futures.push_back(svc.submit(rng.residues(params->n(), params->q()),
                                 params));
  svc.resume();
  for (auto& f : futures) f.get();
  svc.drain();

  const auto stats = svc.stats();
  const auto snap = svc.trace_collector().drain();
  EXPECT_EQ(snap.dropped_events, 0u);

  const auto cuts = events_of_kind(snap, EventKind::kWaveCut);
  ASSERT_EQ(cuts.size(), kRequests);  // one WaveCut per request
  std::set<std::uint64_t> cut_waves;
  std::set<std::uint64_t> cut_seqs;
  std::map<std::uint64_t, std::int64_t> cut_ts;  // wave -> shared stamp
  for (const TraceEvent& e : cuts) {
    cut_waves.insert(e.wave_id);
    EXPECT_TRUE(cut_seqs.insert(e.seq).second)
        << "seq " << e.seq << " cut twice";
    const auto [it, inserted] = cut_ts.emplace(e.wave_id, e.ts_ns);
    if (!inserted) {
      EXPECT_EQ(it->second, e.ts_ns)
          << "requests of wave " << e.wave_id
          << " carry different cut stamps";
    }
  }
  // Contiguous 1..W, W == executed waves.
  ASSERT_FALSE(cut_waves.empty());
  EXPECT_EQ(*cut_waves.begin(), 1u);
  EXPECT_EQ(*cut_waves.rbegin(), cut_waves.size());
  EXPECT_EQ(cut_waves.size(), stats.waves);
  // Every accepted request was cut exactly once, in seq order 0..N-1.
  EXPECT_EQ(*cut_seqs.begin(), 0u);
  EXPECT_EQ(*cut_seqs.rbegin(), kRequests - 1);

  std::set<std::uint64_t> executed_waves;
  for (const TraceEvent& e : events_of_kind(snap, EventKind::kExecuteBegin))
    executed_waves.insert(e.wave_id);
  EXPECT_EQ(executed_waves, cut_waves);
  std::set<std::uint64_t> assigned_waves;
  for (const TraceEvent& e : events_of_kind(snap, EventKind::kDispatchAssign))
    assigned_waves.insert(e.wave_id);
  EXPECT_EQ(assigned_waves, cut_waves);
}

// Satellite: the dispatcher threads a wave's id through steals — the
// moved wave stays identifiable (Assignment and NextWave both carry it).
TEST(DispatcherWaveId, CarriedThroughDispatchAndSteal) {
  service::Dispatcher::Config dc;
  dc.shards = {service::Dispatcher::Shard{}, service::Dispatcher::Shard{}};
  service::Dispatcher dispatcher(
      dc, [](std::size_t, std::vector<service::Request>&) {
        return std::uint64_t{100};
      });

  std::vector<service::Request> wave(1);
  wave[0].wave_id = 7;
  wave[0].seq = 3;
  const auto placed = dispatcher.dispatch(std::move(wave));
  EXPECT_EQ(placed.wave_id, 7u);

  // The other shard is idle and steals the queued wave.
  const std::size_t thief = placed.shard == 0 ? 1 : 0;
  const auto next = dispatcher.next_wave_for(thief);
  ASSERT_TRUE(next.has_value());
  EXPECT_TRUE(next->stolen);
  EXPECT_EQ(next->wave_id, 7u);
  dispatcher.complete(thief, next->estimated_cycles, next->channel);
  dispatcher.close();
}

// Tentpole: every Complete traces back through the full chain, every
// ExecuteEnd pairs an ExecuteBegin, and event counts match the service's
// own counters.
TEST(ServiceTelemetry, FlowReferentialIntegrity) {
  const auto params = make_params();
  ServiceConfig cfg;
  cfg.backend.shards = 2;
  cfg.backend.banks_per_shard = 4;
  cfg.telemetry.enabled = true;
  NttService svc(cfg);

  constexpr std::size_t kTransforms = 24;
  constexpr std::size_t kMultiplies = 8;
  Rng rng(23);
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  for (std::size_t i = 0; i < kTransforms; ++i)
    futures.push_back(svc.submit(rng.residues(params->n(), params->q()),
                                 params));
  for (std::size_t i = 0; i < kMultiplies; ++i)
    futures.push_back(
        svc.submit_multiply(rng.residues(params->n(), params->q()),
                            rng.residues(params->n(), params->q()), params));
  for (auto& f : futures) f.get();
  svc.drain();

  const auto stats = svc.stats();
  ASSERT_EQ(stats.completed, kTransforms + kMultiplies);
  const auto snap = svc.trace_collector().drain();
  EXPECT_EQ(snap.dropped_events, 0u);

  // ExecuteEnd pairs ExecuteBegin: same multiset of wave ids.
  std::multiset<std::uint64_t> begins, ends;
  for (const TraceEvent& e : events_of_kind(snap, EventKind::kExecuteBegin))
    begins.insert(e.wave_id);
  for (const TraceEvent& e : events_of_kind(snap, EventKind::kExecuteEnd))
    ends.insert(e.wave_id);
  EXPECT_EQ(begins, ends);

  std::set<std::uint64_t> submitted, enqueued, cut;
  for (const TraceEvent& e : events_of_kind(snap, EventKind::kSubmit))
    submitted.insert(e.seq);
  for (const TraceEvent& e : events_of_kind(snap, EventKind::kFormerEnqueue))
    enqueued.insert(e.seq);
  for (const TraceEvent& e : events_of_kind(snap, EventKind::kWaveCut))
    cut.insert(e.seq);

  const auto completes = events_of_kind(snap, EventKind::kComplete);
  EXPECT_EQ(completes.size(), stats.completed);
  for (const TraceEvent& e : completes) {
    EXPECT_TRUE(submitted.count(e.seq)) << "Complete without Submit";
    EXPECT_TRUE(enqueued.count(e.seq)) << "Complete without FormerEnqueue";
    EXPECT_TRUE(cut.count(e.seq)) << "Complete without WaveCut";
    EXPECT_TRUE(begins.count(e.wave_id))
        << "Complete's wave never began executing";
  }

  // The service's counter view saw the same recording activity.
  EXPECT_GT(stats.trace_events, 0u);
  EXPECT_EQ(stats.trace_dropped_events, 0u);
}

// A service with telemetry off must not record anything anywhere.
TEST(ServiceTelemetry, DisabledServiceRecordsNothing) {
  const auto params = make_params();
  ServiceConfig cfg;  // telemetry.enabled defaults to false
  cfg.backend.banks_per_shard = 4;
  NttService svc(cfg);

  Rng rng(5);
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(svc.submit(rng.residues(params->n(), params->q()),
                                 params));
  for (auto& f : futures) f.get();
  svc.drain();

  const auto stats = svc.stats();
  EXPECT_EQ(stats.trace_events, 0u);
  EXPECT_EQ(stats.trace_dropped_events, 0u);
  EXPECT_EQ(svc.trace_collector().thread_count(), 0u);
  EXPECT_TRUE(svc.trace_collector().drain().threads.empty());
  // The stage breakdown is always on, telemetry or not.
  EXPECT_EQ(stats.classes.at(0).stages.count, 8u);
}

// Satellite: reset_stats() zeroes the telemetry counters and buffered
// events along with the rest of the epoch.
TEST(ServiceTelemetry, ResetStatsZeroesTelemetryCounters) {
  const auto params = make_params();
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  cfg.telemetry.enabled = true;
  NttService svc(cfg);

  Rng rng(17);
  for (int round = 0; round < 2; ++round) {
    std::vector<std::future<std::vector<std::uint32_t>>> futures;
    for (int i = 0; i < 8; ++i)
      futures.push_back(svc.submit(rng.residues(params->n(), params->q()),
                                   params));
    for (auto& f : futures) f.get();
    svc.drain();

    EXPECT_GT(svc.stats().trace_events, 0u);
    svc.reset_stats();
    const auto stats = svc.stats();
    EXPECT_EQ(stats.trace_events, 0u);
    EXPECT_EQ(stats.trace_dropped_events, 0u);
    EXPECT_EQ(stats.classes.at(0).stages.count, 0u);
    EXPECT_TRUE(all_events(svc.trace_collector().drain()).empty());
  }
}

// Tentpole: the per-class stage breakdown must be consistent with the
// existing latency recorders — former + shard-queue equals the queue
// latency mean, adding execute gives the service latency mean (all three
// measure from the former's enqueue stamp).
TEST(ServiceTelemetry, StageBreakdownConsistentWithLatencyRecorders) {
  const auto params = make_params();
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  // Telemetry stays off: the breakdown must not depend on tracing.
  NttService svc(cfg);

  constexpr std::size_t kRequests = 64;
  Rng rng(29);
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i)
    futures.push_back(svc.submit(rng.residues(params->n(), params->q()),
                                 params));
  for (auto& f : futures) f.get();
  svc.drain();

  const auto stats = svc.stats();
  const auto& cls = stats.classes.at(0);
  ASSERT_EQ(cls.stages.count, kRequests);
  ASSERT_EQ(cls.queue_latency.count, kRequests);
  ASSERT_EQ(cls.service_latency.count, kRequests);

  // Integer-nanosecond stamps keep the double error far below a
  // millitolerance even after thousands of samples.
  constexpr double kTolUs = 1e-3;
  EXPECT_NEAR(cls.stages.former_residency_us + cls.stages.shard_queue_wait_us,
              cls.queue_latency.mean_us, kTolUs);
  EXPECT_NEAR(cls.stages.former_residency_us +
                  cls.stages.shard_queue_wait_us + cls.stages.execute_us,
              cls.service_latency.mean_us, kTolUs);
  // Stages are individually sane and sum to total.
  EXPECT_GE(cls.stages.admission_wait_us, 0.0);
  EXPECT_GE(cls.stages.completion_us, 0.0);
  EXPECT_GT(cls.stages.execute_us, 0.0);
  EXPECT_NEAR(cls.stages.total_us,
              cls.stages.admission_wait_us + cls.stages.former_residency_us +
                  cls.stages.shard_queue_wait_us + cls.stages.execute_us +
                  cls.stages.completion_us,
              1e-9);
}

// ------------------------------------------------------------- exporter

// Golden file: a tiny hand-built snapshot renders to exactly this JSON.
// (Deliberately brittle — the exporter's output format is a contract for
// downstream tooling; change the golden when you change the format.)
TEST(ChromeTrace, GoldenFile) {
  TraceCollector::Snapshot snap;

  TraceCollector::ThreadTrace client;
  client.name = "client";
  client.tid = 1;
  {
    TraceEvent e{};
    e.kind = EventKind::kSubmit;
    e.ts_ns = 1000;
    e.seq = 0;
    client.events.push_back(e);
    e.kind = EventKind::kFormerEnqueue;
    e.ts_ns = 2000;
    client.events.push_back(e);
  }
  snap.threads.push_back(client);

  TraceCollector::ThreadTrace dispatcher;
  dispatcher.name = "dispatcher";
  dispatcher.tid = 2;
  {
    TraceEvent e{};
    e.kind = EventKind::kWaveCut;
    e.ts_ns = 3000;
    e.seq = 0;
    e.wave_id = 1;
    dispatcher.events.push_back(e);
    e.kind = EventKind::kDispatchAssign;
    e.ts_ns = 4000;
    e.seq = telemetry::kNoSeq;
    e.cycles = 10;
    dispatcher.events.push_back(e);
  }
  snap.threads.push_back(dispatcher);

  TraceCollector::ThreadTrace shard;
  shard.name = "shard-0";
  shard.tid = 3;
  {
    TraceEvent e{};
    e.kind = EventKind::kExecuteBegin;
    e.ts_ns = 5000;
    e.wave_id = 1;
    e.cycles = 10;
    shard.events.push_back(e);
    e.kind = EventKind::kExecuteEnd;
    e.ts_ns = 7000;
    shard.events.push_back(e);
    e.kind = EventKind::kComplete;
    e.ts_ns = 7500;
    e.seq = 0;
    shard.events.push_back(e);
  }
  snap.threads.push_back(shard);

  const std::string expected = R"({
  "displayTimeUnit": "ms",
  "traceEvents": [
    {"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "nttpim-service"}},
    {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name", "args": {"name": "client"}},
    {"ph": "M", "pid": 1, "tid": 2, "name": "thread_name", "args": {"name": "dispatcher"}},
    {"ph": "M", "pid": 1, "tid": 3, "name": "thread_name", "args": {"name": "shard-0"}},
    {"ph": "X", "pid": 1, "tid": 1, "ts": 1.000, "dur": 1.000, "cat": "request", "name": "submit", "args": {"seq": 0, "tenant": 0}},
    {"ph": "s", "pid": 1, "tid": 1, "ts": 1.000, "cat": "request", "name": "request", "id": 0},
    {"ph": "X", "pid": 1, "tid": 1, "ts": 2.000, "dur": 1.000, "cat": "request", "name": "queued", "args": {"seq": 0, "tenant": 0}},
    {"ph": "X", "pid": 1, "tid": 2, "ts": 3.000, "dur": 1.000, "cat": "wave", "name": "cut wave 1", "args": {"wave": 1, "requests": 1}},
    {"ph": "t", "pid": 1, "tid": 2, "ts": 3.000, "cat": "request", "name": "request", "id": 0},
    {"ph": "i", "s": "t", "pid": 1, "tid": 2, "ts": 4.000, "cat": "wave", "name": "assign wave 1 -> shard 0 ch 0", "args": {"wave": 1, "shard": 0, "channel": 0, "cycles": 10}},
    {"ph": "X", "pid": 1, "tid": 3, "ts": 5.000, "dur": 2.000, "cat": "wave", "name": "wave 1", "args": {"wave": 1, "shard": 0, "channel": 0, "cycles": 10}},
    {"ph": "t", "pid": 1, "tid": 3, "ts": 5.000, "cat": "request", "name": "request", "id": 0},
    {"ph": "X", "pid": 1, "tid": 3, "ts": 7.500, "dur": 0.001, "cat": "request", "name": "complete", "args": {"seq": 0, "wave": 1, "tenant": 0}},
    {"ph": "f", "pid": 1, "tid": 3, "ts": 7.500, "cat": "request", "name": "request", "id": 0, "bp": "e"}
  ]
}
)";
  EXPECT_EQ(telemetry::chrome_trace_json(snap), expected);
}

// Minimal strict JSON parser (no DOM) for the parse test — accepting
// exactly the RFC 8259 grammar is the point: the exported trace must be
// loadable by any real JSON parser, not just tolerant ones.
class JsonValidator {
 public:
  static bool valid(const std::string& text) {
    JsonValidator v(text);
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c)
      if (!consume(*c)) return false;
    return true;
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (eof() || !std::isxdigit(static_cast<unsigned char>(
                             text_[pos_++])))
              return false;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    consume('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return false;
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++count;
  return count;
}

// Satellite: the exported JSON of a real service run parses strictly,
// and its flow events reconstruct every completed request (one "s" start
// and one "f" end per completed request).
TEST(ChromeTrace, ExportedJsonParsesAndFlowsMatchCompletions) {
  const auto params = make_params();
  ServiceConfig cfg;
  cfg.backend.shards = 2;
  cfg.backend.banks_per_shard = 4;
  cfg.telemetry.enabled = true;
  NttService svc(cfg);

  constexpr std::size_t kRequests = 32;
  Rng rng(31);
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i)
    futures.push_back(svc.submit(rng.residues(params->n(), params->q()),
                                 params));
  for (auto& f : futures) f.get();
  svc.drain();

  const auto stats = svc.stats();
  ASSERT_EQ(stats.completed, kRequests);
  const auto snap = svc.trace_collector().drain();
  ASSERT_EQ(snap.dropped_events, 0u);
  const std::string json = telemetry::chrome_trace_json(snap);

  EXPECT_TRUE(JsonValidator::valid(json)) << json.substr(0, 400);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"s\""), kRequests);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"f\""), kRequests);
  // One executed slice per wave, plus thread metadata for every track.
  EXPECT_GE(count_occurrences(json, "\"name\": \"wave "), stats.waves);
  EXPECT_GE(count_occurrences(json, "\"thread_name\""), 2u);
}

// The exporter tolerates incomplete chains (events lost to overflow or a
// snapshot taken mid-flight): output still parses.
TEST(ChromeTrace, TolerantOfMissingChainPieces) {
  TraceCollector::Snapshot snap;
  TraceCollector::ThreadTrace t;
  t.name = "orphan";
  t.tid = 1;
  // An ExecuteBegin with no End, a Complete with no Submit, a WaveCut
  // with no assign, and a shed submit with no shed marker.
  TraceEvent e{};
  e.kind = EventKind::kExecuteBegin;
  e.ts_ns = 10;
  e.wave_id = 9;
  t.events.push_back(e);
  e.kind = EventKind::kComplete;
  e.ts_ns = 20;
  e.seq = 5;
  t.events.push_back(e);
  e.kind = EventKind::kWaveCut;
  e.ts_ns = 30;
  e.seq = 6;
  e.wave_id = 4;
  t.events.push_back(e);
  e.kind = EventKind::kSubmit;
  e.ts_ns = 40;
  e.seq = telemetry::kNoSeq;
  t.events.push_back(e);
  snap.threads.push_back(t);
  snap.dropped_events = 3;

  const std::string json = telemetry::chrome_trace_json(snap);
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
}

}  // namespace
