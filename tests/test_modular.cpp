#include "ntt/modular.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ntt/barrett.h"
#include "ntt/goldilocks.h"
#include "ntt/montgomery.h"

namespace nttpim::ntt {
namespace {

constexpr std::uint64_t kPrimes[] = {3, 17, 97, 7681, 12289, 65537,
                                     998244353, 2147473409, 2130706433};

TEST(AddMod, WrapsCorrectly) {
  EXPECT_EQ(add_mod(3, 4, 5), 2u);
  EXPECT_EQ(add_mod(4, 0, 5), 4u);
  EXPECT_EQ(add_mod(4, 4, 5), 3u);
  EXPECT_EQ(add_mod(2147473408, 2147473408, 2147473409), 2147473407u);
}

TEST(SubMod, WrapsCorrectly) {
  EXPECT_EQ(sub_mod(3, 4, 5), 4u);
  EXPECT_EQ(sub_mod(0, 1, 97), 96u);
  EXPECT_EQ(sub_mod(50, 50, 97), 0u);
}

TEST(MulMod, MatchesWideArithmetic) {
  Rng rng(2);
  for (const auto q : kPrimes) {
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t a = rng.next_below(q);
      const std::uint64_t b = rng.next_below(q);
      const auto expected = static_cast<std::uint64_t>(
          static_cast<unsigned __int128>(a) * b % q);
      EXPECT_EQ(mul_mod(a, b, q), expected);
    }
  }
}

TEST(PowMod, SmallCases) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24u);
  EXPECT_EQ(pow_mod(5, 0, 7), 1u);
  EXPECT_EQ(pow_mod(0, 5, 7), 0u);
  EXPECT_EQ(pow_mod(3, 100, 7), pow_mod(3, 100 % 6, 7));  // Fermat
}

TEST(PowMod, FermatLittleTheorem) {
  Rng rng(3);
  for (const auto q : kPrimes) {
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t a = 1 + rng.next_below(q - 1);
      EXPECT_EQ(pow_mod(a, q - 1, q), 1u) << "a=" << a << " q=" << q;
    }
  }
}

TEST(InvMod, ProducesInverses) {
  Rng rng(4);
  for (const auto q : kPrimes) {
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t a = 1 + rng.next_below(q - 1);
      EXPECT_EQ(mul_mod(a, inv_mod(a, q), q), 1u);
    }
  }
}

TEST(InvMod, ZeroThrows) {
  EXPECT_THROW(inv_mod(0, 17), std::invalid_argument);
  EXPECT_THROW(inv_mod(34, 17), std::invalid_argument);
}

TEST(NegMod, Identities) {
  EXPECT_EQ(neg_mod(0, 17), 0u);
  EXPECT_EQ(neg_mod(5, 17), 12u);
  for (std::uint64_t a = 0; a < 17; ++a)
    EXPECT_EQ(add_mod(a, neg_mod(a, 17), 17), 0u);
}

// ------------------------------------------------------------- Montgomery

TEST(Montgomery, RoundTrip) {
  Rng rng(5);
  for (const auto q64 : kPrimes) {
    if (q64 < 3 || q64 >= (1ULL << 31)) continue;
    const auto q = static_cast<std::uint32_t>(q64);
    const Montgomery32 mont(q);
    for (int i = 0; i < 100; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(q));
      EXPECT_EQ(mont.from_mont(mont.to_mont(a)), a);
    }
  }
}

TEST(Montgomery, MulMatchesReference) {
  Rng rng(6);
  for (const auto q64 : kPrimes) {
    if (q64 < 3 || q64 >= (1ULL << 31)) continue;
    const auto q = static_cast<std::uint32_t>(q64);
    const Montgomery32 mont(q);
    for (int i = 0; i < 200; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(q));
      const auto b = static_cast<std::uint32_t>(rng.next_below(q));
      const auto got =
          mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b)));
      EXPECT_EQ(got, mul_mod(a, b, q));
    }
  }
}

TEST(Montgomery, AddSubMatchReference) {
  const std::uint32_t q = 998244353;
  const Montgomery32 mont(q);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(q));
    const auto b = static_cast<std::uint32_t>(rng.next_below(q));
    // add/sub act identically in either domain (they are linear).
    EXPECT_EQ(mont.add(a, b), add_mod(a, b, q));
    EXPECT_EQ(mont.sub(a, b), sub_mod(a, b, q));
  }
}

TEST(Montgomery, PowMatchesReference) {
  const std::uint32_t q = 2147473409;
  const Montgomery32 mont(q);
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const auto a = static_cast<std::uint32_t>(1 + rng.next_below(q - 1));
    const std::uint64_t e = rng.next_below(1 << 20);
    EXPECT_EQ(mont.from_mont(mont.pow(mont.to_mont(a), e)), pow_mod(a, e, q));
  }
}

TEST(Montgomery, OneIsMontgomeryOne) {
  const Montgomery32 mont(12289);
  EXPECT_EQ(mont.from_mont(mont.one()), 1u);
}

TEST(Montgomery, RejectsBadModuli) {
  EXPECT_THROW(Montgomery32(16), std::invalid_argument);  // even
  EXPECT_THROW(Montgomery32(1), std::invalid_argument);
  EXPECT_THROW(Montgomery32(0x80000001u), std::invalid_argument);  // >= 2^31
}

TEST(Montgomery, EdgeOperands) {
  const std::uint32_t q = 2147473409;  // close to 2^31
  const Montgomery32 mont(q);
  const std::uint32_t qm1 = q - 1;
  EXPECT_EQ(mont.from_mont(mont.mul(mont.to_mont(qm1), mont.to_mont(qm1))),
            mul_mod(qm1, qm1, q));
  EXPECT_EQ(mont.from_mont(mont.mul(mont.to_mont(0), mont.to_mont(qm1))), 0u);
}

// ---------------------------------------------------------------- Barrett

TEST(Barrett, ReduceMatchesModulo) {
  Rng rng(9);
  for (const auto q64 : kPrimes) {
    if (q64 < 3 || q64 >= (1ULL << 31)) continue;
    const auto q = static_cast<std::uint32_t>(q64);
    const Barrett32 barrett(q);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t x = rng.next_below(1ULL << 62);
      EXPECT_EQ(barrett.reduce(x), x % q);
    }
  }
}

TEST(Barrett, MulMatchesReference) {
  const std::uint32_t q = 2130706433;
  const Barrett32 barrett(q);
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(q));
    const auto b = static_cast<std::uint32_t>(rng.next_below(q));
    EXPECT_EQ(barrett.mul(a, b), mul_mod(a, b, q));
  }
}

TEST(Barrett, ReduceExactOverFullUint64Range) {
  // The CU butterfly and the TFG reduce products of arbitrary 32-bit
  // operands (up to (2^32 - 1)^2), so exactness must hold beyond 2^62.
  Rng rng(11);
  for (const auto q64 : kPrimes) {
    if (q64 < 3 || q64 >= (1ULL << 31)) continue;
    const auto q = static_cast<std::uint32_t>(q64);
    const Barrett32 barrett(q);
    EXPECT_EQ(barrett.reduce(~std::uint64_t{0}), ~std::uint64_t{0} % q);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t x = rng.next_u64();
      EXPECT_EQ(barrett.reduce(x), x % q);
    }
  }
}

TEST(Barrett, RejectsBadModuli) {
  EXPECT_THROW(Barrett32(1), std::invalid_argument);
  EXPECT_THROW(Barrett32(0x80000001u), std::invalid_argument);
}

// --------------------------------------------------------------- Goldilocks

TEST(Goldilocks, PrimeIsPrime) {
  // p = 2^64 - 2^32 + 1; also phi-friendly: 2^32 | p - 1.
  EXPECT_EQ(kGoldilocksPrime, 0xffffffff00000001ULL);
  EXPECT_EQ((kGoldilocksPrime - 1) % (1ULL << 32), 0u);
}

TEST(Goldilocks, ReduceMatchesWideModulo) {
  Rng rng(0x901d);
  for (int i = 0; i < 500; ++i) {
    const unsigned __int128 x =
        (static_cast<unsigned __int128>(rng.next_u64()) << 64) |
        rng.next_u64();
    EXPECT_EQ(goldilocks_reduce(x),
              static_cast<std::uint64_t>(x % kGoldilocksPrime));
  }
}

TEST(Goldilocks, ReduceEdgeCases) {
  const auto p128 = static_cast<unsigned __int128>(kGoldilocksPrime);
  EXPECT_EQ(goldilocks_reduce(0), 0u);
  EXPECT_EQ(goldilocks_reduce(p128), 0u);
  EXPECT_EQ(goldilocks_reduce(p128 - 1), kGoldilocksPrime - 1);
  EXPECT_EQ(goldilocks_reduce(p128 + 1), 1u);
  EXPECT_EQ(goldilocks_reduce((p128 - 1) * (p128 - 1)),
            static_cast<std::uint64_t>((p128 - 1) * (p128 - 1) %
                                       kGoldilocksPrime));
  // All-ones upper word exercises the carry path.
  EXPECT_EQ(goldilocks_reduce(~static_cast<unsigned __int128>(0)),
            static_cast<std::uint64_t>(~static_cast<unsigned __int128>(0) %
                                       kGoldilocksPrime));
}

TEST(Goldilocks, MulAddSubMatchReference) {
  Rng rng(0x901e);
  const std::uint64_t p = kGoldilocksPrime;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_below(p);
    const std::uint64_t b = rng.next_below(p);
    EXPECT_EQ(goldilocks_mul(a, b), mul_mod(a, b, p));
    EXPECT_EQ(goldilocks_add(a, b), add_mod(a, b, p));
    EXPECT_EQ(goldilocks_sub(a, b), sub_mod(a, b, p));
  }
}

// Property sweep: the three reduction paths agree on random triples.
class ReductionAgreement : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ReductionAgreement, AllPathsAgree) {
  const std::uint32_t q = GetParam();
  const Montgomery32 mont(q);
  const Barrett32 barrett(q);
  Rng rng(q);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(q));
    const auto b = static_cast<std::uint32_t>(rng.next_below(q));
    const auto reference = mul_mod(a, b, q);
    EXPECT_EQ(barrett.mul(a, b), reference);
    EXPECT_EQ(mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))),
              reference);
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, ReductionAgreement,
                         ::testing::Values(3u, 17u, 7681u, 12289u, 65537u,
                                           998244353u, 2130706433u,
                                           2147473409u));

}  // namespace
}  // namespace nttpim::ntt
