#include "common/bitutil.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace nttpim {
namespace {

TEST(IsPow2, RecognizesPowers) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
  EXPECT_TRUE(is_pow2(1ULL << 63));
}

TEST(Ilog2, ExactValues) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(4), 2u);
  EXPECT_EQ(ilog2(1023), 9u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(~0ULL), 63u);
}

TEST(Ilog2, ZeroThrows) { EXPECT_THROW(ilog2(0), std::logic_error); }

TEST(ExactLog2, RequiresPowerOfTwo) {
  EXPECT_EQ(exact_log2(4096), 12u);
  EXPECT_THROW(exact_log2(4097), std::logic_error);
}

TEST(DivCeil, Rounding) {
  EXPECT_EQ(div_ceil(0, 5), 0u);
  EXPECT_EQ(div_ceil(1, 5), 1u);
  EXPECT_EQ(div_ceil(5, 5), 1u);
  EXPECT_EQ(div_ceil(6, 5), 2u);
  EXPECT_EQ(div_ceil(32, 3), 11u);
  EXPECT_THROW(div_ceil(1, 0), std::logic_error);
}

TEST(BitReverse, KnownPatterns) {
  EXPECT_EQ(bit_reverse(0b000, 3), 0b000u);
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b011, 3), 0b110u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  EXPECT_EQ(bit_reverse(1, 10), 512u);
}

TEST(BitReverse, Involution) {
  Rng rng(1);
  for (unsigned bits = 1; bits <= 16; ++bits) {
    for (int i = 0; i < 50; ++i) {
      const auto x =
          static_cast<std::uint32_t>(rng.next_below(1ULL << bits));
      EXPECT_EQ(bit_reverse(bit_reverse(x, bits), bits), x);
    }
  }
}

TEST(BitReverseTable, MatchesScalar) {
  const auto table = bit_reverse_table(64);
  ASSERT_EQ(table.size(), 64u);
  for (std::uint32_t i = 0; i < 64; ++i)
    EXPECT_EQ(table[i], bit_reverse(i, 6));
}

TEST(BitReversePermute, InvolutionOnVectors) {
  Rng rng(7);
  std::vector<std::uint32_t> v(256);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.next_u64());
  const auto original = v;
  bit_reverse_permute(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be a fixed point
  bit_reverse_permute(v);
  EXPECT_EQ(v, original);
}

TEST(BitReversePermute, RejectsNonPowerOfTwo) {
  std::vector<int> v(7);
  EXPECT_THROW(bit_reverse_permute(v), std::invalid_argument);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ResiduesInRange) {
  Rng rng(10);
  const auto v = rng.residues(512, 97);
  ASSERT_EQ(v.size(), 512u);
  for (const auto x : v) EXPECT_LT(x, 97u);
}

}  // namespace
}  // namespace nttpim
