// CpuBackend as a first-class serving backend: pool-vs-serial equivalence,
// the shared batch-validation contract (including the NttBackend default
// path a minimal backend inherits), the calibrated n log n cost model, and
// a CPU-only NttService round trip. Labeled `service` alongside `unit` so
// the TSan CI job exercises the worker-pool rendezvous.
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fhe/cpu_backend.h"
#include "ntt/negacyclic.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "service/backend.h"
#include "service/ntt_service.h"

namespace {

using namespace nttpim;
using fhe::BatchItem;
using fhe::CpuBackend;

ntt::NttParams make_params(std::size_t n = 256, unsigned bits = 30) {
  return ntt::NttParams::create(n, bits);
}

fhe::CpuBackend::Config pool_config(std::size_t threads) {
  CpuBackend::Config cfg;
  cfg.threads = threads;
  return cfg;
}

// A backend that implements nothing beyond the pure virtuals, so every
// batch entry point runs through the NttBackend defaults.
class MinimalBackend final : public fhe::NttBackend {
 public:
  void forward(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override {
    ntt::forward_negacyclic_ntt(a, params);
    transforms_.fetch_add(1, std::memory_order_relaxed);
  }
  void inverse(std::vector<std::uint32_t>& a,
               const ntt::NttParams& params) override {
    ntt::inverse_negacyclic_ntt(a, params);
    transforms_.fetch_add(1, std::memory_order_relaxed);
  }
};

// One mixed wave: three parameter sets, both directions, enough items that
// a 3-lane pool wraps around. Returns {polys, items-into-polys}.
struct MixedWave {
  std::vector<ntt::NttParams> params;
  std::vector<std::vector<std::uint32_t>> polys;
  std::vector<BatchItem> items;
};

MixedWave make_mixed_wave(std::uint64_t seed) {
  MixedWave w;
  w.params.push_back(make_params(256));
  w.params.push_back(make_params(512, 29));
  w.params.push_back(make_params(1024, 29));
  Rng rng(seed);
  for (std::size_t j = 0; j < 8; ++j) {
    const auto& p = w.params[j % w.params.size()];
    w.polys.push_back(rng.residues(p.n(), p.q()));
  }
  for (std::size_t j = 0; j < w.polys.size(); ++j)
    w.items.push_back({&w.polys[j], &w.params[j % w.params.size()],
                       /*inverse=*/j % 3 == 0});
  return w;
}

// -------------------------------------------------------- pool execution

TEST(CpuBackendUnit, PoolMatchesSerialMixedBatch) {
  auto serial_wave = make_mixed_wave(41);
  auto pool_wave = make_mixed_wave(41);
  ASSERT_EQ(serial_wave.polys, pool_wave.polys);

  CpuBackend serial;  // threads = 1: the tight loop
  CpuBackend pool(pool_config(3));
  EXPECT_EQ(serial.lanes(), 1u);
  EXPECT_EQ(pool.lanes(), 3u);

  serial.transform_batch_mixed(serial_wave.items);
  pool.transform_batch_mixed(pool_wave.items);

  EXPECT_EQ(serial_wave.polys, pool_wave.polys);
  EXPECT_EQ(serial.transform_count(), pool.transform_count());
  EXPECT_EQ(serial.modeled_cycles(), pool.modeled_cycles());
}

TEST(CpuBackendUnit, PoolMatchesSingleTransforms) {
  const auto params = make_params(256);
  Rng rng(7);
  auto reference = rng.residues(params.n(), params.q());
  auto batched = reference;

  CpuBackend one_by_one;
  one_by_one.forward(reference, params);

  CpuBackend pool(pool_config(2));
  std::vector<BatchItem> items{{&batched, &params, false}};
  pool.transform_batch_mixed(items);
  EXPECT_EQ(batched, reference);

  // Round trip through the pool path restores the input.
  auto restored = batched;
  std::vector<BatchItem> back{{&restored, &params, true}};
  pool.transform_batch_mixed(back);
  one_by_one.inverse(reference, params);
  EXPECT_EQ(restored, reference);
}

TEST(CpuBackendUnit, PoolSurfacesItemError) {
  const auto params = make_params(256);
  Rng rng(9);
  std::vector<std::vector<std::uint32_t>> polys;
  for (int j = 0; j < 4; ++j) polys.push_back(rng.residues(params.n(), params.q()));
  polys[2].resize(100);  // wrong length: that item's transform throws

  CpuBackend pool(pool_config(2));
  std::vector<BatchItem> items;
  for (auto& p : polys) items.push_back({&p, &params, false});
  EXPECT_THROW(pool.transform_batch_mixed(items), std::invalid_argument);

  // The backend stays usable after a failed wave.
  auto poly = rng.residues(params.n(), params.q());
  std::vector<BatchItem> retry{{&poly, &params, false}};
  EXPECT_NO_THROW(pool.transform_batch_mixed(retry));
}

// ------------------------------------------------ batch-item validation

TEST(CpuBackendUnit, RejectsAliasedAndIncompleteItems) {
  const auto params = make_params(256);
  Rng rng(11);
  auto poly = rng.residues(params.n(), params.q());

  CpuBackend pool(pool_config(2));
  std::vector<BatchItem> aliased{{&poly, &params, false},
                                 {&poly, &params, true}};
  EXPECT_THROW(pool.transform_batch_mixed(aliased), std::invalid_argument);

  std::vector<BatchItem> null_poly{{nullptr, &params, false}};
  EXPECT_THROW(pool.transform_batch_mixed(null_poly), std::invalid_argument);

  std::vector<BatchItem> null_params{{&poly, nullptr, false}};
  EXPECT_THROW(pool.transform_batch_mixed(null_params), std::invalid_argument);
}

// Regression for the distinct-vector precondition on the *base* default
// path: a minimal backend that never overrides transform_batch_mixed must
// reject aliased items too, not silently double-transform the vector.
TEST(CpuBackendUnit, BaseDefaultBatchValidatesAndLoops) {
  const auto params = make_params(256);
  Rng rng(13);
  auto poly = rng.residues(params.n(), params.q());

  MinimalBackend minimal;
  std::vector<BatchItem> aliased{{&poly, &params, false},
                                 {&poly, &params, false}};
  EXPECT_THROW(minimal.transform_batch_mixed(aliased), std::invalid_argument);
  EXPECT_EQ(minimal.transform_count(), 0u);

  // The default path itself serves correctly: same outputs as CpuBackend.
  auto base_wave = make_mixed_wave(17);
  auto cpu_wave = make_mixed_wave(17);
  minimal.transform_batch_mixed(base_wave.items);
  CpuBackend cpu;
  cpu.transform_batch_mixed(cpu_wave.items);
  EXPECT_EQ(base_wave.polys, cpu_wave.polys);
  EXPECT_EQ(minimal.transform_count(), base_wave.items.size());

  // And the same-parameter convenience funnels into the mixed default.
  std::vector<std::vector<std::uint32_t>> polys;
  for (int j = 0; j < 3; ++j) polys.push_back(rng.residues(params.n(), params.q()));
  auto expected = polys;
  minimal.transform_batch(polys, params);
  for (auto& p : expected) cpu.forward(p, params);
  EXPECT_EQ(polys, expected);
}

// ------------------------------------------------------------ cost model

TEST(CpuBackendUnit, EstimateReplaysLanePlacement) {
  const auto p1024 = make_params(1024, 29);
  const auto p256 = make_params(256);
  // item_cycles(n) = 6.0 * n * log2(n) with the default fit.
  constexpr std::uint64_t kBig = 6 * 1024 * 10;   // 61440
  constexpr std::uint64_t kSmall = 6 * 256 * 8;   // 12288
  std::vector<BatchItem> items{{nullptr, &p1024, false},
                               {nullptr, &p256, false},
                               {nullptr, &p256, true}};

  // Two lanes: lane 0 gets items 0 and 2, lane 1 gets item 1.
  CpuBackend two_lanes(pool_config(2));
  EXPECT_EQ(two_lanes.estimate_wave_cycles(items), kBig + kSmall);

  // Serial: the plain sum.
  CpuBackend serial;
  EXPECT_EQ(serial.estimate_wave_cycles(items), kBig + 2 * kSmall);

  // More lanes than items: the single biggest item dominates.
  CpuBackend four_lanes(pool_config(4));
  EXPECT_EQ(four_lanes.estimate_wave_cycles(items), kBig);

  EXPECT_EQ(serial.estimate_wave_cycles({}), 0u);
}

TEST(CpuBackendUnit, ModeledCyclesAccrueCostModelPrice) {
  const auto params = make_params(256);
  constexpr std::uint64_t kItem = 6 * 256 * 8;
  Rng rng(19);

  CpuBackend cpu(pool_config(2));
  EXPECT_EQ(cpu.modeled_cycles(), 0u);

  auto poly = rng.residues(params.n(), params.q());
  cpu.forward(poly, params);
  EXPECT_EQ(cpu.modeled_cycles(), kItem);
  EXPECT_EQ(cpu.transform_count(), 1u);

  auto a = rng.residues(params.n(), params.q());
  auto b = rng.residues(params.n(), params.q());
  std::vector<BatchItem> items{{&a, &params, false}, {&b, &params, true}};
  cpu.transform_batch_mixed(items);
  EXPECT_EQ(cpu.modeled_cycles(), 3 * kItem);
  EXPECT_EQ(cpu.transform_count(), 3u);
}

// Rolling calibration: every executed wave's measured wall time feeds an
// EWMA that refines the *routing* estimates, while the modeled-cycle
// account deliberately keeps the boot constant (the hardware account has
// no epochs — see cpu_backend.h).
TEST(CpuBackendUnit, RollingCalibrationRefinesEstimatesOnly) {
  CpuBackend::Config cfg;
  cfg.calibration_alpha = 0.5;
  CpuBackend cpu(cfg);
  EXPECT_DOUBLE_EQ(cpu.calibrated_cycles_per_point_stage(), 6.0);

  // Injected samples follow the exact EWMA arithmetic.
  cpu.record_calibration_sample(10.0);
  EXPECT_DOUBLE_EQ(cpu.calibrated_cycles_per_point_stage(), 8.0);
  cpu.record_calibration_sample(4.0);
  EXPECT_DOUBLE_EQ(cpu.calibrated_cycles_per_point_stage(), 6.0);
  cpu.record_calibration_sample(2.0);
  EXPECT_DOUBLE_EQ(cpu.calibrated_cycles_per_point_stage(), 4.0);

  // Estimates price with the rolling constant...
  const auto params = make_params(256);
  std::vector<BatchItem> items{{nullptr, &params, false}};
  EXPECT_EQ(cpu.estimate_wave_cycles(items),
            static_cast<std::uint64_t>(4.0 * 256 * 8));

  // ...while the modeled account still charges the boot constant.
  Rng rng(31);
  auto poly = rng.residues(params.n(), params.q());
  cpu.forward(poly, params);
  EXPECT_EQ(cpu.modeled_cycles(), 6u * 256 * 8);

  // A glitched sample clamps instead of collapsing the constant.
  cpu.record_calibration_sample(-5.0);
  EXPECT_GT(cpu.calibrated_cycles_per_point_stage(), 0.0);

  // Executed batches really do feed the EWMA (default alpha 0.25): the
  // constant moves off its seed after real work.
  CpuBackend live;
  auto a = rng.residues(params.n(), params.q());
  auto b = rng.residues(params.n(), params.q());
  std::vector<BatchItem> batch{{&a, &params, false}, {&b, &params, true}};
  live.transform_batch_mixed(batch);
  EXPECT_NE(live.calibrated_cycles_per_point_stage(), 6.0);

  // Alpha 0 freezes the boot constant: samples are ignored.
  CpuBackend::Config frozen;
  frozen.calibration_alpha = 0.0;
  CpuBackend fixed(frozen);
  fixed.record_calibration_sample(50.0);
  EXPECT_DOUBLE_EQ(fixed.calibrated_cycles_per_point_stage(), 6.0);

  CpuBackend::Config bad;
  bad.calibration_alpha = 1.5;
  EXPECT_THROW(CpuBackend{bad}, std::invalid_argument);
}

TEST(CpuBackendUnit, CalibrationReturnsPositiveFiniteFit) {
  const double fit =
      CpuBackend::measure_cycles_per_point_stage(1200.0, 256, /*reps=*/3);
  EXPECT_TRUE(std::isfinite(fit));
  EXPECT_GT(fit, 0.0);

  CpuBackend::Config cfg;
  cfg.cycles_per_point_stage = fit;
  CpuBackend calibrated(cfg);
  const auto params = make_params(256);
  std::vector<BatchItem> items{{nullptr, &params, false}};
  EXPECT_GT(calibrated.estimate_wave_cycles(items), 0u);

  EXPECT_THROW(CpuBackend::measure_cycles_per_point_stage(-1.0),
               std::invalid_argument);
  EXPECT_THROW(CpuBackend::measure_cycles_per_point_stage(1200.0, 256, 0),
               std::invalid_argument);
}

// ----------------------------------------------------- CPU-only serving

TEST(CpuServiceE2E, CpuOnlyServiceMatchesReference) {
  service::ServiceConfig cfg;
  cfg.backend.descriptors = {service::make_cpu_descriptor(/*threads=*/2)};
  cfg.backend.banks_per_shard = 4;
  cfg.former.flush_window = std::chrono::microseconds(200);
  service::NttService svc(cfg);
  ASSERT_EQ(svc.shards(), 1u);
  EXPECT_EQ(svc.shard_descriptors()[0].kind, service::BackendKind::kCpu);

  const auto p256 = std::make_shared<const ntt::NttParams>(make_params(256));
  const auto p512 =
      std::make_shared<const ntt::NttParams>(make_params(512, 29));
  Rng rng(23);
  CpuBackend reference;

  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  std::vector<std::vector<std::uint32_t>> expected;
  for (std::size_t r = 0; r < 12; ++r) {
    const auto& params = (r % 2 == 0) ? p256 : p512;
    auto poly = rng.residues(params->n(), params->q());
    auto want = poly;
    service::SubmitOptions options;
    options.inverse = r % 3 == 0;
    if (options.inverse)
      reference.inverse(want, *params);
    else
      reference.forward(want, *params);
    expected.push_back(std::move(want));
    futures.push_back(svc.submit(std::move(poly), params, options));
  }

  auto a = rng.residues(p256->n(), p256->q());
  auto b = rng.residues(p256->n(), p256->q());
  auto fa = a;
  auto fb = b;
  reference.forward(fa, *p256);
  reference.forward(fb, *p256);
  auto want_product = ntt::pointwise_mul(fa, fb, p256->q());
  reference.inverse(want_product, *p256);
  auto product = svc.submit_multiply(std::move(a), std::move(b), p256);

  for (std::size_t r = 0; r < futures.size(); ++r)
    EXPECT_EQ(futures[r].get(), expected[r]) << "request " << r;
  EXPECT_EQ(product.get(), want_product);

  svc.drain();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, 13u);
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].kind, service::BackendKind::kCpu);
  EXPECT_GT(stats.shards[0].modeled_cycles, 0u);
  EXPECT_GT(stats.shards[0].estimated_executed_cycles, 0u);
}

}  // namespace
