// Negative-compile case: writing a GUARDED_BY member without its mutex —
// the lost-update shape TSan can only catch if a test happens to race.
#include "sync/mutex.h"

namespace {

class Gauge {
 public:
  void set(double v) {
    const nttpim::sync::MutexLock lk(mu_);
    value_ = v;
  }
#ifdef NTTPIM_NEGATIVE
  void set_unlocked(double v) { value_ = v; }  // rejected: no mu_
#endif
  double snap() const {
    const nttpim::sync::MutexLock lk(mu_);
    return value_;
  }

 private:
  mutable nttpim::sync::Mutex mu_;
  double value_ NTTPIM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Gauge g;
#ifdef NTTPIM_NEGATIVE
  g.set_unlocked(1.0);
#else
  g.set(1.0);
#endif
  return g.snap() > 0 ? 0 : 1;
}
