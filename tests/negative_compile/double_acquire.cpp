// Negative-compile case: acquiring a mutex already held — the
// self-deadlock a std::mutex only reveals at runtime (and only on the
// execution that actually reaches the second lock).
#include "sync/mutex.h"

namespace {

nttpim::sync::Mutex mu;
int shared_value NTTPIM_GUARDED_BY(mu) = 0;

int locked_once() {
  mu.lock();
  const int v = ++shared_value;
  mu.unlock();
  return v;
}

#ifdef NTTPIM_NEGATIVE
int locked_twice() {
  mu.lock();
  mu.lock();  // rejected: acquiring mutex 'mu' that is already held
  const int v = ++shared_value;
  mu.unlock();
  mu.unlock();
  return v;
}
#endif

}  // namespace

int main() {
#ifdef NTTPIM_NEGATIVE
  return locked_twice();
#else
  return locked_once();
#endif
}
