// Negative-compile case: calling a REQUIRES(mu_)-annotated helper without
// holding the member mutex — the repo's private-helper idiom (Dispatcher's
// priced_for / try_steal_for), where the caller owns the locking and the
// helper declares the precondition.
#include "sync/mutex.h"

namespace {

class Ledger {
 public:
  void post(int v) {
    const nttpim::sync::MutexLock lk(mu_);
    apply(v);
  }
#ifdef NTTPIM_NEGATIVE
  void post_unlocked(int v) { apply(v); }  // rejected: requires mu_
#endif
  int total() const {
    const nttpim::sync::MutexLock lk(mu_);
    return total_;
  }

 private:
  void apply(int v) NTTPIM_REQUIRES(mu_) { total_ += v; }

  mutable nttpim::sync::Mutex mu_;
  int total_ NTTPIM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger l;
#ifdef NTTPIM_NEGATIVE
  l.post_unlocked(2);
#else
  l.post(2);
#endif
  return l.total() == 2 ? 0 : 1;
}
