// Negative-compile case: releasing a mutex the thread does not hold —
// undefined behavior for std::mutex, rejected statically here.
#include "sync/mutex.h"

namespace {

nttpim::sync::Mutex mu;

void balanced() {
  mu.lock();
  mu.unlock();
}

#ifdef NTTPIM_NEGATIVE
void release_without_acquire() {
  mu.unlock();  // rejected: releasing mutex 'mu' that was not held
}
#endif

}  // namespace

int main() {
#ifdef NTTPIM_NEGATIVE
  release_without_acquire();
#else
  balanced();
#endif
  return 0;
}
