// Negative-compile case: ShardQueue's externally-locked contract, checked
// against the REAL header. Every ShardQueue accessor takes the owning
// sync::Mutex as a parameter-capability annotated NTTPIM_REQUIRES(mu) —
// the machine-checked form of the old "caller holds the dispatcher's
// lock" prose. Control: the Dispatcher idiom (lock held across the call)
// compiles everywhere. Violation: the same call without the lock must be
// rejected ("calling function ... requires holding mutex 'mu'").
#include <cstdint>

#include "service/shard_queue.h"
#include "sync/mutex.h"

namespace {

nttpim::sync::Mutex mu;

std::uint64_t backlog_locked(const nttpim::service::ShardQueue& q) {
  const nttpim::sync::MutexLock lk(mu);
  return q.backlog_cycles(mu);
}

#ifdef NTTPIM_NEGATIVE
std::uint64_t backlog_unlocked(const nttpim::service::ShardQueue& q) {
  return q.backlog_cycles(mu);  // rejected: requires holding mu
}
#endif

}  // namespace

int main() {
  nttpim::service::ShardQueue queue(/*capacity_waves=*/2,
                                    /*num_channels=*/1);
#ifdef NTTPIM_NEGATIVE
  return backlog_unlocked(queue) == 0 ? 0 : 1;
#else
  return backlog_locked(queue) == 0 ? 0 : 1;
#endif
}
