// Negative-compile case: a manual-lock path that forgets the unlock —
// the leak the RAII MutexLock exists to prevent, caught at compile time
// on the rare split-scope paths that do lock by hand.
#include "sync/mutex.h"

namespace {

nttpim::sync::Mutex mu;
int shared_value NTTPIM_GUARDED_BY(mu) = 0;

int balanced() {
  mu.lock();
  const int v = ++shared_value;
  mu.unlock();
  return v;
}

#ifdef NTTPIM_NEGATIVE
int leaks_the_lock() {
  mu.lock();
  return ++shared_value;  // rejected: mutex 'mu' still held at exit
}
#endif

}  // namespace

int main() {
#ifdef NTTPIM_NEGATIVE
  return leaks_the_lock();
#else
  return balanced();
#endif
}
