// Negative-compile case: reading a GUARDED_BY member without its mutex.
// Control: locked reads and writes compile everywhere. Violation: the
// bare read must be rejected by -Werror=thread-safety ("reading variable
// requires holding mutex").
#include "sync/mutex.h"

namespace {

class Counter {
 public:
  void bump() {
    const nttpim::sync::MutexLock lk(mu_);
    ++value_;
  }
  long read() const {
    const nttpim::sync::MutexLock lk(mu_);
    return value_;
  }
#ifdef NTTPIM_NEGATIVE
  long read_unlocked() const { return value_; }  // rejected: no mu_
#endif

 private:
  mutable nttpim::sync::Mutex mu_;
  long value_ NTTPIM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
#ifdef NTTPIM_NEGATIVE
  return static_cast<int>(c.read_unlocked());
#else
  return static_cast<int>(c.read());
#endif
}
