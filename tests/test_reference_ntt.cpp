#include "ntt/reference.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/random.h"
#include "ntt/modular.h"
#include "ntt/negacyclic.h"
#include "ntt/pease.h"
#include "ntt/stockham.h"

namespace nttpim::ntt {
namespace {

std::vector<std::uint32_t> random_poly(std::size_t n, std::uint32_t q,
                                       std::uint64_t seed) {
  Rng rng(seed);
  return rng.residues(n, q);
}

// All fast algorithms must agree with the O(N^2) DFT.
class AlgorithmAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AlgorithmAgreement, EveryAlgorithmMatchesNaiveDft) {
  const std::size_t n = GetParam();
  const NttParams p = NttParams::create(n);
  const auto input = random_poly(n, p.q(), 100 + n);
  const auto golden = naive_dft(input, p);

  {  // DIT: bit-reversed input -> natural output
    auto a = input;
    bit_reverse_permute(a);
    ntt_dit_bitrev_to_natural(a, p);
    EXPECT_EQ(a, golden) << "DIT, n=" << n;
  }
  {  // DIF: natural input -> bit-reversed output
    auto a = input;
    ntt_dif_natural_to_bitrev(a, p);
    bit_reverse_permute(a);
    EXPECT_EQ(a, golden) << "DIF, n=" << n;
  }
  {  // recursive
    EXPECT_EQ(ntt_recursive(input, p), golden) << "recursive, n=" << n;
  }
  {  // Pease constant-geometry
    auto a = ntt_pease_natural_to_bitrev(input, p);
    bit_reverse_permute(a);
    EXPECT_EQ(a, golden) << "Pease, n=" << n;
  }
  {  // Stockham autosort
    EXPECT_EQ(ntt_stockham(input, p), golden) << "Stockham, n=" << n;
  }
  {  // convenience forward
    auto a = input;
    forward_ntt(a, p);
    EXPECT_EQ(a, golden);
  }
  {  // plain-mod and Montgomery CPU baselines
    auto a = input;
    forward_ntt_plain_mod(a, p.q(), p.omega());
    EXPECT_EQ(a, golden) << "plain, n=" << n;
    auto b = input;
    forward_ntt_montgomery(b, p);
    EXPECT_EQ(b, golden) << "montgomery, n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AlgorithmAgreement,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

class RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RoundTrip, InverseUndoesForward) {
  const std::size_t n = GetParam();
  const NttParams p = NttParams::create(n);
  const auto input = random_poly(n, p.q(), 200 + n);
  auto a = input;
  forward_ntt(a, p);
  inverse_ntt(a, p);
  EXPECT_EQ(a, input);
}

TEST_P(RoundTrip, NegacyclicInverseUndoesForward) {
  const std::size_t n = GetParam();
  const NttParams p = NttParams::create(n);
  const auto input = random_poly(n, p.q(), 300 + n);
  auto a = input;
  forward_negacyclic_ntt(a, p);
  inverse_negacyclic_ntt(a, p);
  EXPECT_EQ(a, input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoundTrip,
                         ::testing::Values(2, 8, 64, 512, 1024, 4096, 8192));

TEST(RoundTrip, NaiveIdftInvertsNaiveDft) {
  const NttParams p = NttParams::create(32);
  const auto input = random_poly(32, p.q(), 11);
  EXPECT_EQ(naive_idft(naive_dft(input, p), p), input);
}

TEST(Linearity, TransformIsLinear) {
  const std::size_t n = 128;
  const NttParams p = NttParams::create(n);
  const std::uint64_t q = p.q();
  const auto a = random_poly(n, p.q(), 21);
  const auto b = random_poly(n, p.q(), 22);
  const std::uint32_t c = 12345;

  // NTT(c*a + b) == c*NTT(a) + NTT(b)
  std::vector<std::uint32_t> lhs(n);
  for (std::size_t i = 0; i < n; ++i)
    lhs[i] = static_cast<std::uint32_t>(
        add_mod(mul_mod(c, a[i], q), b[i], q));
  forward_ntt(lhs, p);

  auto fa = a;
  auto fb = b;
  forward_ntt(fa, p);
  forward_ntt(fb, p);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(lhs[i], add_mod(mul_mod(c, fa[i], q), fb[i], q));
  }
}

TEST(KnownValues, ConstantPolynomial) {
  // NTT of a constant c is (N*c, 0, 0, ...): only the DC bin is nonzero.
  const NttParams p = NttParams::create(16);
  std::vector<std::uint32_t> a(16, 3);
  forward_ntt(a, p);
  EXPECT_EQ(a[0], mul_mod(16, 3, p.q()));
  for (std::size_t i = 1; i < 16; ++i) EXPECT_EQ(a[i], 0u);
}

TEST(KnownValues, DeltaTransformsToAllOnes) {
  const NttParams p = NttParams::create(16);
  std::vector<std::uint32_t> a(16, 0);
  a[0] = 1;
  forward_ntt(a, p);
  for (const auto x : a) EXPECT_EQ(x, 1u);
}

TEST(KnownValues, ShiftedDeltaGivesOmegaPowers) {
  const NttParams p = NttParams::create(32);
  std::vector<std::uint32_t> a(32, 0);
  a[1] = 1;  // x^1: NTT[k] = omega^k
  forward_ntt(a, p);
  for (std::size_t k = 0; k < 32; ++k) EXPECT_EQ(a[k], p.omega_pow(k));
}

TEST(GeometricScale, ScalesByGeometricSeries) {
  const std::uint32_t q = 97;
  std::vector<std::uint32_t> a{1, 1, 1, 1};
  geometric_scale(a, /*base=*/3, /*scale0=*/2, q);
  EXPECT_EQ(a, (std::vector<std::uint32_t>{2, 6, 18, 54}));
}

TEST(MultiplePrimes, SameInputDifferentModuli) {
  // The same dataflow must be correct for several moduli (the paper's
  // "arbitrary modulo" flexibility claim).
  for (const std::uint32_t q : {12289u, 40961u, 65537u, 998244353u}) {
    if ((q - 1) % 512 != 0) continue;
    const NttParams p(256, q);
    const auto input = random_poly(256, q, q);
    auto a = input;
    forward_ntt(a, p);
    EXPECT_EQ(a, naive_dft(input, p)) << "q=" << q;
  }
}

TEST(Pease, ShufflePassCountIsLogN) {
  const NttParams p = NttParams::create(1024);
  EXPECT_EQ(pease_shuffle_passes(p), 10u);
}

TEST(InputValidation, SizeMismatchThrows) {
  const NttParams p = NttParams::create(16);
  std::vector<std::uint32_t> wrong(8, 0);
  EXPECT_THROW(ntt_dit_bitrev_to_natural(wrong, p), std::invalid_argument);
  EXPECT_THROW(naive_dft(wrong, p), std::invalid_argument);
  EXPECT_THROW(ntt_stockham(wrong, p), std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::ntt
