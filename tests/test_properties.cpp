// Randomized differential properties across the whole stack: for arbitrary
// seeds, sizes, moduli and mapper configurations, the PIM-simulated result
// must equal the reference transform, configurations must only differ in
// schedule (never in result), and conservation-style invariants must hold.
#include <gtest/gtest.h>

#include "common/random.h"
#include "mapping/act_model.h"
#include "mapping/mapper.h"
#include "mapping/trace.h"
#include "ntt/montgomery64.h"
#include "ntt/primes.h"
#include "sim/runner.h"

namespace nttpim {
namespace {

TEST(PropertyFuzz, RandomConfigurationsAllVerify) {
  // 24 random draws over (n, Nb, pipelined, direction, seed); every one
  // must produce a bit-exact transform.
  Rng meta(0xfeed);
  const std::size_t sizes[] = {16, 64, 128, 256, 512, 1024, 2048};
  for (int trial = 0; trial < 24; ++trial) {
    sim::NttRunConfig config;
    config.n = sizes[meta.next_below(std::size(sizes))];
    config.num_buffers = 2 + meta.next_below(5);  // 2..6
    config.pipelined = meta.next_below(2) == 0;
    config.direction = meta.next_below(4) == 0
                           ? mapping::Direction::kInverse
                           : mapping::Direction::kForward;
    config.seed = meta.next_u64();
    const auto result = sim::run_ntt_on_pim(config);
    EXPECT_TRUE(result.verified)
        << "n=" << config.n << " nb=" << config.num_buffers
        << " pipelined=" << config.pipelined << " seed=" << config.seed;
  }
}

TEST(PropertyFuzz, ScheduleNeverChangesTheResult) {
  // All scheduling knobs produce identical memory images; only cycles and
  // activations differ. (The engine verifies each against the reference,
  // so pairwise equality follows — asserted here via the verified flags
  // plus explicit count relations.)
  for (const std::uint64_t seed : {1ULL, 99ULL, 12345ULL}) {
    sim::NttRunConfig config;
    config.n = 1024;
    config.num_buffers = 6;
    config.seed = seed;

    std::uint64_t prev_cycles = 0;
    for (const bool pipelined : {false, true}) {
      for (const bool in_place : {false, true}) {
        config.pipelined = pipelined;
        config.in_place = in_place;
        const auto r = sim::run_ntt_on_pim(config);
        EXPECT_TRUE(r.verified) << pipelined << in_place << seed;
        prev_cycles = r.stats.cycles;
        EXPECT_GT(prev_cycles, 0u);
      }
    }
  }
}

TEST(PropertyFuzz, TraceCountsAreConfigurationInvariants) {
  // Compute-command counts depend only on N (the DFG), never on the
  // buffer count or schedule.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(512);
  std::uint64_t c1 = 0, c2 = 0;
  bool first = true;
  for (const std::size_t nb : {2u, 3u, 4u, 6u}) {
    for (const bool pipelined : {false, true}) {
      mapping::MapperConfig config;
      config.num_buffers = nb;
      config.pipelined = pipelined;
      const mapping::RowCentricMapper mapper(g, params, config);
      const auto counts =
          mapping::count_commands(mapper.map(mapping::NttJob{}).trace);
      if (first) {
        c1 = counts.c1_ops;
        c2 = counts.c2_ops;
        first = false;
      } else {
        EXPECT_EQ(counts.c1_ops, c1) << nb << pipelined;
        EXPECT_EQ(counts.c2_ops, c2) << nb << pipelined;
      }
      // Reads/writes balance: every atom loaded is written back exactly
      // once per pass over it (in-place property).
      EXPECT_EQ(counts.column_reads, counts.column_writes);
    }
  }
}

TEST(PropertyFuzz, ActModelHoldsAcrossRandomConfigs) {
  Rng meta(0xac7);
  const dram::DramGeometry g = dram::hbm2e_geometry();
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = std::size_t{256}
                          << meta.next_below(6);  // 256..8192
    const ntt::NttParams params = ntt::NttParams::create(n);
    mapping::MapperConfig config;
    config.num_buffers = 2 + meta.next_below(5);
    config.pipelined = meta.next_below(2) == 0;
    config.row_centric = meta.next_below(2) == 0;
    const mapping::RowCentricMapper mapper(g, params, config);
    const auto counts =
        mapping::count_commands(mapper.map(mapping::NttJob{}).trace);
    const mapping::DataLayout layout(g, 0, n);
    EXPECT_EQ(counts.acts, mapping::ActModel::total_forward(layout, config))
        << "n=" << n << " nb=" << config.num_buffers
        << " pipelined=" << config.pipelined
        << " row_centric=" << config.row_centric;
  }
}

TEST(PropertyFuzz, BusUtilizationIsSane) {
  sim::NttRunConfig config;
  config.n = 1024;
  config.num_buffers = 6;
  const auto r = sim::run_ntt_on_pim(config);
  EXPECT_GT(r.stats.bus_utilization(), 0.0);
  EXPECT_LE(r.stats.bus_utilization(), 1.0);
  // Row-centric locality: dozens of column accesses per activation.
  EXPECT_GT(r.stats.column_accesses_per_activation(), 10.0);
}

TEST(PropertyFuzz, Montgomery64MatchesWideArithmetic) {
  Rng rng(0x64);
  for (const std::uint64_t q :
       {1000000007ULL, 2305843009213693951ULL,
        (1ULL << 62) - 57ULL, 4611686018427387847ULL}) {
    if (!ntt::is_prime(q) || q % 2 == 0) continue;
    const ntt::Montgomery64 mont(q);
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t a = rng.next_below(q);
      const std::uint64_t b = rng.next_below(q);
      EXPECT_EQ(mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))),
                ntt::mul_mod(a, b, q))
          << "q=" << q;
    }
    EXPECT_EQ(mont.from_mont(mont.one()), 1u);
    // pow agrees with the scalar reference.
    const std::uint64_t base = rng.next_below(q - 1) + 1;
    EXPECT_EQ(mont.from_mont(mont.pow(mont.to_mont(base), 12345)),
              ntt::pow_mod(base, 12345, q));
  }
}

TEST(PropertyFuzz, Montgomery64RoundTripSweep) {
  const std::uint64_t q = 2305843009213693951ULL;  // Mersenne M61
  const ntt::Montgomery64 mont(q);
  Rng rng(0x6464);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.next_below(q);
    EXPECT_EQ(mont.from_mont(mont.to_mont(a)), a);
  }
  EXPECT_THROW(ntt::Montgomery64(10), std::invalid_argument);   // even
  EXPECT_THROW(ntt::Montgomery64(1), std::invalid_argument);
}

}  // namespace
}  // namespace nttpim
