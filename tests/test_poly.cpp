#include "ntt/poly.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ntt/modular.h"

namespace nttpim::ntt {
namespace {

std::vector<std::uint32_t> random_poly(std::size_t n, std::uint32_t q,
                                       std::uint64_t seed) {
  Rng rng(seed);
  return rng.residues(n, q);
}

class ConvolutionTheorem : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConvolutionTheorem, CyclicNttMatchesSchoolbook) {
  const std::size_t n = GetParam();
  const NttParams p = NttParams::create(n);
  const auto a = random_poly(n, p.q(), 1);
  const auto b = random_poly(n, p.q(), 2);
  EXPECT_EQ(cyclic_convolution_ntt(a, b, p),
            cyclic_convolution_schoolbook(a, b, p.q()));
}

TEST_P(ConvolutionTheorem, NegacyclicNttMatchesSchoolbook) {
  const std::size_t n = GetParam();
  const NttParams p = NttParams::create(n);
  const auto a = random_poly(n, p.q(), 3);
  const auto b = random_poly(n, p.q(), 4);
  EXPECT_EQ(negacyclic_convolution_ntt(a, b, p),
            negacyclic_convolution_schoolbook(a, b, p.q()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConvolutionTheorem,
                         ::testing::Values(2, 4, 8, 32, 128, 512));

TEST(Schoolbook, CyclicWrapsWithoutSign) {
  // (x^(n-1))^2 = x^(2n-2) = x^(n-2) mod x^n - 1.
  const std::uint32_t q = 97;
  std::vector<std::uint32_t> a(4, 0), b(4, 0);
  a[3] = 1;
  b[3] = 1;
  const auto c = cyclic_convolution_schoolbook(a, b, q);
  EXPECT_EQ(c, (std::vector<std::uint32_t>{0, 0, 1, 0}));
}

TEST(Schoolbook, NegacyclicWrapsWithSign) {
  // x^3 * x^3 = x^6 = -x^2 mod x^4 + 1.
  const std::uint32_t q = 97;
  std::vector<std::uint32_t> a(4, 0), b(4, 0);
  a[3] = 1;
  b[3] = 1;
  const auto c = negacyclic_convolution_schoolbook(a, b, q);
  EXPECT_EQ(c, (std::vector<std::uint32_t>{0, 0, q - 1, 0}));
}

TEST(Pointwise, MultipliesElementwise) {
  const std::uint32_t q = 17;
  const std::vector<std::uint32_t> a{1, 2, 3, 16};
  const std::vector<std::uint32_t> b{5, 6, 7, 16};
  EXPECT_EQ(pointwise_mul(a, b, q),
            (std::vector<std::uint32_t>{5, 12, 4, 1}));
}

TEST(Pointwise, SizeMismatchThrows) {
  const std::vector<std::uint32_t> a{1, 2};
  const std::vector<std::uint32_t> b{1};
  EXPECT_THROW(pointwise_mul(a, b, 17), std::invalid_argument);
}

TEST(PolynomialIdentities, MultiplicationByOne) {
  const std::size_t n = 64;
  const NttParams p = NttParams::create(n);
  const auto a = random_poly(n, p.q(), 9);
  std::vector<std::uint32_t> one(n, 0);
  one[0] = 1;
  EXPECT_EQ(cyclic_convolution_ntt(a, one, p), a);
  EXPECT_EQ(negacyclic_convolution_ntt(a, one, p), a);
}

TEST(PolynomialIdentities, Commutativity) {
  const std::size_t n = 32;
  const NttParams p = NttParams::create(n);
  const auto a = random_poly(n, p.q(), 10);
  const auto b = random_poly(n, p.q(), 11);
  EXPECT_EQ(negacyclic_convolution_ntt(a, b, p),
            negacyclic_convolution_ntt(b, a, p));
}

TEST(PolynomialIdentities, MultiplicationByXRotates) {
  // x * a(x) mod x^n + 1 rotates with a sign flip at the wraparound.
  const std::size_t n = 8;
  const NttParams p = NttParams::create(n);
  const auto a = random_poly(n, p.q(), 12);
  std::vector<std::uint32_t> x(n, 0);
  x[1] = 1;
  const auto c = negacyclic_convolution_ntt(a, x, p);
  EXPECT_EQ(c[0], neg_mod(a[n - 1], p.q()));
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(c[i], a[i - 1]);
}

}  // namespace
}  // namespace nttpim::ntt
