// Tests of the annotated synchronization layer (src/sync/): the wrappers
// must behave exactly like the std primitives they carry — the TSA
// annotations are compile-time only — and ThreadConfined must enforce the
// single-driver contract in debug builds while staying a plain value in
// release builds.
//
// Sleep-free like every test in the repo: synchronization is joins,
// condition handshakes, and latches, never wall time.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sync/mutex.h"
#include "sync/thread_confined.h"

namespace {

using namespace nttpim;

// Mutual exclusion: racing unlocked increments of a plain int would lose
// updates (and trip TSan); under the wrapper every update lands.
TEST(SyncMutex, MutexLockProvidesMutualExclusion) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  sync::Mutex mu;
  std::int64_t counter = 0;  // guarded by mu (test-local, no annotation)

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const sync::MutexLock lk(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SyncMutex, TryLockReportsContention) {
  sync::Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  // Another thread must fail while we hold it (same-thread re-try_lock is
  // UB for std::mutex, so probe from a helper).
  bool second = true;
  std::thread probe([&] { second = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(second);
  mu.unlock();
  std::thread retry([&] {
    if (mu.try_lock()) mu.unlock();
  });
  retry.join();
}

TEST(SyncMutex, MutexLockSupportsManualUnlockRelock) {
  sync::Mutex mu;
  sync::MutexLock lk(mu);
  lk.unlock();
  // While released, a helper thread can take and drop the mutex.
  std::thread helper([&] { const sync::MutexLock inner(mu); });
  helper.join();
  lk.lock();  // destructor releases the re-acquired lock
}

// The producer/consumer handshake every converted wait loop in the repo
// uses: explicit `while (!pred) cv.wait(lk)` (the layer deliberately has
// no predicate overload — see sync/mutex.h).
TEST(SyncCondVar, WaitNotifyHandshake) {
  sync::Mutex mu;
  sync::CondVar cv;
  int stage = 0;  // 0 -> 1 (main publishes), 1 -> 2 (worker replies)

  std::thread worker([&] {
    sync::MutexLock lk(mu);
    while (stage != 1) cv.wait(lk);
    stage = 2;
    cv.notify_all();
  });
  {
    sync::MutexLock lk(mu);
    stage = 1;
    cv.notify_all();
    while (stage != 2) cv.wait(lk);
  }
  worker.join();
  EXPECT_EQ(stage, 2);
}

TEST(SyncCondVar, WaitForTimesOutWithoutNotify) {
  sync::Mutex mu;
  sync::CondVar cv;
  sync::MutexLock lk(mu);
  // Nobody notifies: the deadline must bound the wait (a generous bound —
  // the assertion is termination, not timing).
  EXPECT_EQ(cv.wait_for(lk, std::chrono::milliseconds(1)),
            std::cv_status::timeout);
}

TEST(SyncThreadConfined, OwnerThreadAccessesValue) {
  sync::ThreadConfined<std::vector<int>> boxed(3, 7);  // forwarded ctor
  EXPECT_EQ(boxed->size(), 3u);
  EXPECT_EQ((*boxed)[0], 7);
  boxed->push_back(9);
  EXPECT_EQ(boxed.get().back(), 9);
}

// Handoff: construct on this thread, adopt on the worker (the join/start
// edge is the required external synchronization), drive there, adopt back.
TEST(SyncThreadConfined, RebindOwnerTransfersConfinement) {
  sync::ThreadConfined<int> boxed(1);
  std::thread worker([&] {
    boxed.rebind_owner();
    *boxed += 1;
  });
  worker.join();
  boxed.rebind_owner();
  EXPECT_EQ(*boxed, 2);
}

#ifndef NDEBUG
// Debug builds (the ASan/TSan CI jobs) must catch an off-owner access —
// the checked half of the single-driver contract. Compiled out in
// release, where the wrapper is a plain value.
TEST(SyncThreadConfinedDeathTest, OffOwnerAccessAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sync::ThreadConfined<int> boxed(1);
        std::thread offender([&] { (void)*boxed; });
        offender.join();
      },
      "owner thread");
}
#endif

}  // namespace
