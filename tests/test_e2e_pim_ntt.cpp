// End-to-end verification: every mapped configuration, executed on the
// cycle-accurate simulator, must leave exactly the reference NTT in memory.
// This is the equivalent of the paper's front-end-driver functional check
// (Sec. VI.A), swept across sizes, buffer counts and mapper options.
#include <gtest/gtest.h>

#include "sim/runner.h"

namespace nttpim::sim {
namespace {

struct E2eCase {
  std::size_t n;
  std::size_t nb;
  bool pipelined = true;
  bool in_place = true;
};

std::string case_name(const ::testing::TestParamInfo<E2eCase>& info) {
  return "N" + std::to_string(info.param.n) + "_Nb" +
         std::to_string(info.param.nb) +
         (info.param.pipelined ? "" : "_seq") +
         (info.param.in_place ? "" : "_shadow");
}

class ForwardNtt : public ::testing::TestWithParam<E2eCase> {};

TEST_P(ForwardNtt, MemoryImageMatchesReference) {
  const auto& c = GetParam();
  NttRunConfig config;
  config.n = c.n;
  config.num_buffers = c.nb;
  config.pipelined = c.pipelined;
  config.in_place = c.in_place;
  config.seed = 1000 + c.n + c.nb;

  const auto result = run_ntt_on_pim(config);
  EXPECT_TRUE(result.verified)
      << "N=" << c.n << " Nb=" << c.nb << " pipelined=" << c.pipelined
      << " in_place=" << c.in_place;
  EXPECT_GT(result.stats.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BufferSweep, ForwardNtt,
    ::testing::Values(E2eCase{8, 1}, E2eCase{16, 2}, E2eCase{64, 2},
                      E2eCase{128, 3}, E2eCase{256, 2}, E2eCase{256, 4},
                      E2eCase{256, 6}, E2eCase{512, 2}, E2eCase{512, 4},
                      E2eCase{1024, 2}, E2eCase{1024, 4}, E2eCase{1024, 6},
                      E2eCase{2048, 4}, E2eCase{4096, 2}, E2eCase{4096, 6},
                      E2eCase{8192, 4}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    SchedulingVariants, ForwardNtt,
    ::testing::Values(E2eCase{1024, 4, /*pipelined=*/false},
                      E2eCase{1024, 6, /*pipelined=*/false},
                      E2eCase{512, 4, true, /*in_place=*/false},
                      E2eCase{1024, 4, true, /*in_place=*/false},
                      E2eCase{2048, 6, false, /*in_place=*/false}),
    case_name);

class NaiveFallback : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NaiveFallback, SingleBufferStillComputesCorrectly) {
  NttRunConfig config;
  config.n = GetParam();
  config.num_buffers = 1;
  const auto result = run_ntt_on_pim(config);
  EXPECT_TRUE(result.verified) << "N=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, NaiveFallback,
                         ::testing::Values(8, 16, 64, 256, 512, 1024));

TEST(InverseNtt, RoundTripThroughPim) {
  for (const std::size_t n : {std::size_t{64}, std::size_t{512},
                              std::size_t{2048}}) {
    NttRunConfig config;
    config.n = n;
    config.num_buffers = 4;
    config.direction = mapping::Direction::kInverse;
    const auto result = run_ntt_on_pim(config);
    EXPECT_TRUE(result.verified) << "inverse N=" << n;
  }
}

TEST(NegacyclicNtt, ForwardOnPim) {
  NttRunConfig config;
  config.n = 1024;
  config.num_buffers = 4;
  config.negacyclic = true;
  EXPECT_TRUE(run_ntt_on_pim(config).verified);
}

TEST(NegacyclicNtt, InverseOnPim) {
  NttRunConfig config;
  config.n = 1024;
  config.num_buffers = 4;
  config.negacyclic = true;
  config.direction = mapping::Direction::kInverse;
  EXPECT_TRUE(run_ntt_on_pim(config).verified);
}

TEST(Performance, MoreBuffersNeverSlower) {
  // Fig. 7's monotonicity: cycles(Nb=6) <= cycles(Nb=4) <= cycles(Nb=2),
  // and even Nb=2 beats the single-buffer fallback by a wide margin.
  for (const std::size_t n : {std::size_t{256}, std::size_t{1024}}) {
    NttRunConfig config;
    config.n = n;

    config.num_buffers = 1;
    const auto nb1 = run_ntt_on_pim(config);
    config.num_buffers = 2;
    const auto nb2 = run_ntt_on_pim(config);
    config.num_buffers = 4;
    const auto nb4 = run_ntt_on_pim(config);
    config.num_buffers = 6;
    const auto nb6 = run_ntt_on_pim(config);

    EXPECT_LT(nb6.stats.cycles, nb4.stats.cycles) << n;
    EXPECT_LT(nb4.stats.cycles, nb2.stats.cycles) << n;
    EXPECT_LT(nb2.stats.cycles, nb1.stats.cycles) << n;
    EXPECT_GT(static_cast<double>(nb1.stats.cycles),
              5.0 * static_cast<double>(nb2.stats.cycles))
        << "single-buffer should be an order of magnitude slower, N=" << n;
  }
}

TEST(Performance, PipeliningHelps) {
  NttRunConfig config;
  config.n = 2048;
  config.num_buffers = 6;

  config.pipelined = true;
  const auto piped = run_ntt_on_pim(config);
  config.pipelined = false;
  const auto seq = run_ntt_on_pim(config);

  EXPECT_TRUE(piped.verified);
  EXPECT_TRUE(seq.verified);
  EXPECT_LT(piped.stats.cycles, seq.stats.cycles);
  // The pipelined schedule also reduces activations (Fig. 6c).
  EXPECT_LT(piped.stats.activations, seq.stats.activations);
}

TEST(Performance, InPlaceUpdateHelps) {
  NttRunConfig config;
  config.n = 1024;
  config.num_buffers = 4;

  config.in_place = true;
  const auto in_place = run_ntt_on_pim(config);
  config.in_place = false;
  const auto shadow = run_ntt_on_pim(config);

  EXPECT_TRUE(in_place.verified);
  EXPECT_TRUE(shadow.verified);
  EXPECT_LT(in_place.stats.cycles, shadow.stats.cycles);
  EXPECT_LT(in_place.stats.activations, shadow.stats.activations);
}

TEST(StageMajorAblation, VerifiesAndCostsMore) {
  NttRunConfig config;
  config.n = 2048;
  config.num_buffers = 4;

  config.row_centric = true;
  const auto vertical = run_ntt_on_pim(config);
  config.row_centric = false;
  const auto horizontal = run_ntt_on_pim(config);

  EXPECT_TRUE(vertical.verified);
  EXPECT_TRUE(horizontal.verified);
  EXPECT_GT(horizontal.stats.activations, vertical.stats.activations);
  EXPECT_GE(horizontal.stats.cycles, vertical.stats.cycles);
}

TEST(Refresh, DisablingItSpeedsUpButBothVerify) {
  NttRunConfig config;
  config.n = 4096;
  config.num_buffers = 4;

  config.enable_refresh = true;
  const auto with_refresh = run_ntt_on_pim(config);
  config.enable_refresh = false;
  const auto without = run_ntt_on_pim(config);

  EXPECT_TRUE(with_refresh.verified);
  EXPECT_TRUE(without.verified);
  EXPECT_GT(with_refresh.stats.cycles, without.stats.cycles);
  EXPECT_GT(with_refresh.stats.refreshes, 0u);
  EXPECT_EQ(without.stats.refreshes, 0u);
}

TEST(Determinism, SameSeedSameResult) {
  NttRunConfig config;
  config.n = 512;
  config.num_buffers = 4;
  const auto a = run_ntt_on_pim(config);
  const auto b = run_ntt_on_pim(config);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.energy_nj, b.energy_nj);
}

TEST(ArbitraryModulus, FourteenBitKyberStylePrime) {
  // MeNTT is limited to 14/16-bit arithmetic and CryptoPIM to fixed
  // moduli; NTT-PIM handles the classic 14-bit prime and large N equally.
  NttRunConfig config;
  config.n = 2048;
  config.q = 12289;  // 3 * 2^12 + 1
  config.num_buffers = 4;
  const auto result = run_ntt_on_pim(config);
  EXPECT_TRUE(result.verified);
}

TEST(OddBufferCounts, ThreeAndFiveBuffersWork) {
  // Nb need not be even: C2 uses floor(Nb/2) pair slots and C1 rotates
  // over all buffers.
  for (const std::size_t nb : {std::size_t{3}, std::size_t{5}}) {
    NttRunConfig config;
    config.n = 1024;
    config.num_buffers = nb;
    const auto result = run_ntt_on_pim(config);
    EXPECT_TRUE(result.verified) << nb;
  }
}

TEST(ArbitraryModulus, UserSuppliedPrimes) {
  // The paper's flexibility claim: any q with q ≡ 1 (mod 2N) works.
  for (const std::uint32_t q : {40961u, 65537u, 786433u, 5767169u}) {
    NttRunConfig config;
    config.n = 256;
    config.q = q;
    config.num_buffers = 4;
    const auto result = run_ntt_on_pim(config);
    EXPECT_TRUE(result.verified) << "q=" << q;
    EXPECT_EQ(result.q, q);
  }
}

}  // namespace
}  // namespace nttpim::sim
