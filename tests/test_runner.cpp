#include "sim/runner.h"

#include <gtest/gtest.h>

namespace nttpim::sim {
namespace {

TEST(Runner, ReportsConsistentMetrics) {
  NttRunConfig config;
  config.n = 512;
  config.num_buffers = 4;
  const auto r = run_ntt_on_pim(config);

  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.trace_length, r.trace_counts.total);
  EXPECT_EQ(r.stats.activations, r.trace_counts.acts);
  EXPECT_NEAR(r.latency_us, r.stats.us(), 1e-12);
  EXPECT_NEAR(r.energy_nj, r.stats.energy.total_nj(), 1e-9);
  EXPECT_GT(r.q, 0u);
}

TEST(Runner, FrequencySweepMatchesPaperShape) {
  // Fig. 8: quarter clock must cost well under 4x wall-clock, and large-N
  // runs (more inter-row / DRAM-bound) degrade less than small-N ones.
  auto slowdown = [](std::size_t n) {
    NttRunConfig config;
    config.n = n;
    config.num_buffers = 2;
    config.freq_mhz = 1200;
    const double fast = run_ntt_on_pim(config).latency_us;
    config.freq_mhz = 300;
    const double slow = run_ntt_on_pim(config).latency_us;
    return slow / fast;
  };

  const double small_n = slowdown(256);
  const double large_n = slowdown(4096);
  EXPECT_LT(large_n, small_n);
  EXPECT_LT(large_n, 2.5);   // paper reports ~1.65x at large N
  EXPECT_GT(large_n, 1.0);
  EXPECT_LT(small_n, 4.0);
}

TEST(Runner, ParallelBanksScaleNearLinearly) {
  // Near-linear until the shared command bus saturates: at 8 banks the
  // command-dense row-block phase oversubscribes the one-command-per-cycle
  // bus, so efficiency rolls off (the "system-level investigation" the
  // paper defers to future work).
  NttRunConfig config;
  config.n = 1024;
  config.num_buffers = 4;
  const struct {
    std::size_t banks;
    double min_efficiency;
  } cases[] = {{2, 0.95}, {4, 0.85}, {8, 0.70}};
  double prev_speedup = 1.0;
  for (const auto& c : cases) {
    const auto r = run_parallel_ntts(c.banks, config);
    EXPECT_TRUE(r.all_verified) << c.banks;
    EXPECT_GT(r.throughput_speedup,
              c.min_efficiency * static_cast<double>(c.banks)) << c.banks;
    EXPECT_LE(r.throughput_speedup, static_cast<double>(c.banks) * 1.001)
        << c.banks;
    EXPECT_GT(r.throughput_speedup, prev_speedup);
    prev_speedup = r.throughput_speedup;
  }
}

TEST(Runner, RejectsDegenerateConfig) {
  NttRunConfig config;
  config.n = 1;
  EXPECT_THROW(run_ntt_on_pim(config), std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::sim
