#include "mapping/controller.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "mapping/trace.h"
#include "ntt/params.h"
#include "ntt/primes.h"
#include "ntt/reference.h"
#include "pim/host.h"
#include "sim/engine.h"

namespace nttpim::mapping {
namespace {

TEST(MemoryController, BackToBackRequestsWithDifferentModuli) {
  // Two NTT calls on the same bank, different q — the CU must be fully
  // re-parameterized between calls (the paper's flexibility claim).
  const dram::DramGeometry geometry = dram::hbm2e_geometry();
  MemoryController controller(geometry, MapperConfig{.num_buffers = 4});

  const std::uint32_t q1 = ntt::find_ntt_prime(512, 31);
  const std::uint32_t q2 = ntt::find_ntt_prime(512, 30);
  ASSERT_NE(q1, q2);
  const ntt::NttParams p1(512, q1);
  const ntt::NttParams p2(512, q2);

  pim::PimDevice device(geometry, 4);
  Rng rng(1);
  const auto poly1 = rng.residues(512, q1);
  const auto poly2 = rng.residues(512, q2);
  pim::load_polynomial(device.bank(0), 0, poly1);
  pim::load_polynomial(device.bank(0), 16, poly2);  // disjoint rows

  const auto r1 =
      controller.submit({.bank = 0, .base_row = 0, .n = 512, .q = q1});
  const auto r2 =
      controller.submit({.bank = 0, .base_row = 16, .n = 512, .q = q2});
  EXPECT_EQ(controller.responses().size(), 2u);
  EXPECT_EQ(r2.first_command, r1.command_count);

  validate_trace(controller.pending_trace(), geometry, 4);
  const sim::Engine engine(sim::EngineConfig{});
  engine.run(device, controller.pending_trace());

  auto expected1 = poly1;
  ntt::forward_ntt(expected1, p1);
  auto expected2 = poly2;
  ntt::forward_ntt(expected2, p2);
  EXPECT_EQ(pim::read_result(device.bank(0), r1.result_base_row, 512),
            expected1);
  EXPECT_EQ(pim::read_result(device.bank(0), r2.result_base_row, 512),
            expected2);
}

TEST(MemoryController, MixedSizesAndBanks) {
  const dram::DramGeometry geometry = dram::hbm2e_geometry(2);
  MemoryController controller(geometry, MapperConfig{.num_buffers = 4});

  const std::uint32_t q = ntt::find_ntt_prime(1024, 31);
  const ntt::NttParams p_small(256, q);
  const ntt::NttParams p_large(1024, q);

  pim::PimDevice device(geometry, 4);
  Rng rng(2);
  const auto small = rng.residues(256, q);
  const auto large = rng.residues(1024, q);
  pim::load_polynomial(device.bank(0), 0, small);
  pim::load_polynomial(device.bank(1), 0, large);

  const auto ra =
      controller.submit({.bank = 0, .base_row = 0, .n = 256, .q = q});
  const auto rb =
      controller.submit({.bank = 1, .base_row = 0, .n = 1024, .q = q});

  const sim::Engine engine(sim::EngineConfig{});
  engine.run(device, controller.pending_trace());

  auto expected_small = small;
  ntt::forward_ntt(expected_small, p_small);
  auto expected_large = large;
  ntt::forward_ntt(expected_large, p_large);
  EXPECT_EQ(pim::read_result(device.bank(0), ra.result_base_row, 256),
            expected_small);
  EXPECT_EQ(pim::read_result(device.bank(1), rb.result_base_row, 1024),
            expected_large);
}

TEST(MemoryController, ForwardThenInverseRoundTrip) {
  const dram::DramGeometry geometry = dram::hbm2e_geometry();
  MemoryController controller(geometry, MapperConfig{.num_buffers = 4});
  const std::uint32_t q = ntt::find_ntt_prime(256, 31);

  pim::PimDevice device(geometry, 4);
  Rng rng(3);
  const auto poly = rng.residues(256, q);
  pim::load_polynomial(device.bank(0), 0, poly);

  // Forward in place…
  controller.submit({.bank = 0, .base_row = 0, .n = 256, .q = q});
  const sim::Engine engine(sim::EngineConfig{});
  engine.run(device, controller.pending_trace());
  controller.clear();

  // …then host re-stages (bit-reversal is software's job) and inverts.
  const auto freq_domain = pim::read_result(device.bank(0), 0, 256);
  pim::load_polynomial(device.bank(0), 0, freq_domain);
  const auto inv = controller.submit(
      {.bank = 0, .base_row = 0, .n = 256, .q = q, .inverse = true});
  engine.run(device, controller.pending_trace());

  EXPECT_EQ(pim::read_result(device.bank(0), inv.result_base_row, 256),
            poly);
}

TEST(MemoryController, ValidatesRequests) {
  const dram::DramGeometry geometry = dram::hbm2e_geometry();
  MemoryController controller(geometry, MapperConfig{.num_buffers = 2});

  EXPECT_THROW(controller.submit({.bank = 0, .n = 0, .q = 12289}),
               std::invalid_argument);
  EXPECT_THROW(controller.submit({.bank = 0, .n = 256, .q = 0}),
               std::invalid_argument);
  EXPECT_THROW(controller.submit({.bank = 3, .n = 256, .q = 12289}),
               std::invalid_argument);
  // Host-supplied omega must actually be an n-th root of unity.
  EXPECT_THROW(
      controller.submit({.bank = 0, .n = 256, .q = 12289, .omega = 2}),
      std::invalid_argument);
  // Consistent omega is accepted.
  const ntt::NttParams p(256, 12289);
  EXPECT_NO_THROW(controller.submit(
      {.bank = 0, .n = 256, .q = 12289, .omega = p.omega()}));
  controller.clear();
  EXPECT_TRUE(controller.pending_trace().empty());
  EXPECT_TRUE(controller.responses().empty());
}

}  // namespace
}  // namespace nttpim::mapping
