#include "sim/timeline.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "mapping/mapper.h"
#include "ntt/params.h"
#include "pim/host.h"

namespace nttpim::sim {
namespace {

RunStats recorded_run(std::size_t n, std::size_t nb) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(n);
  pim::PimDevice device(g, nb);
  Rng rng(1);
  pim::load_polynomial(device.bank(0), 0, rng.residues(n, params.q()));
  const mapping::RowCentricMapper mapper(g, params,
                                         {.num_buffers = nb});
  EngineConfig config;
  config.record_timeline = true;
  return Engine(config).run(device, mapper.map(mapping::NttJob{}).trace);
}

TEST(Timeline, RecordsEveryCommand) {
  const auto stats = recorded_run(256, 4);
  // Every trace command appears (refresh events may add more).
  EXPECT_GE(stats.timeline.size(), stats.commands);
  for (const auto& e : stats.timeline) EXPECT_LE(e.issue, e.end);
  // Events are recorded in issue order on the shared bus.
  for (std::size_t i = 1; i < stats.timeline.size(); ++i)
    EXPECT_GE(stats.timeline[i].issue, stats.timeline[i - 1].issue);
}

TEST(Timeline, OffByDefault) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(64);
  pim::PimDevice device(g, 2);
  Rng rng(2);
  pim::load_polynomial(device.bank(0), 0, rng.residues(64, params.q()));
  const mapping::RowCentricMapper mapper(g, params, {.num_buffers = 2});
  const auto stats =
      Engine(EngineConfig{}).run(device, mapper.map(mapping::NttJob{}).trace);
  EXPECT_TRUE(stats.timeline.empty());
}

TEST(Timeline, RenderContainsLanesAndGlyphs) {
  const auto stats = recorded_run(256, 2);
  const auto chart = render_timeline(
      stats.timeline, {.from_cycle = 0, .to_cycle = 400,
                       .cycles_per_char = 4});
  EXPECT_NE(chart.find("row:"), std::string::npos);
  EXPECT_NE(chart.find("i/o:"), std::string::npos);
  EXPECT_NE(chart.find("cu :"), std::string::npos);
  EXPECT_NE(chart.find('A'), std::string::npos);  // the first ACT
  EXPECT_NE(chart.find('r'), std::string::npos);  // CU reads
  EXPECT_NE(chart.find('1'), std::string::npos);  // C1 compute
}

TEST(Timeline, WindowFiltersEvents) {
  const auto stats = recorded_run(256, 2);
  // A window after the run's end contains no glyphs, only filler.
  const auto chart = render_timeline(
      stats.timeline, {.from_cycle = stats.cycles + 100,
                       .to_cycle = stats.cycles + 200,
                       .cycles_per_char = 1});
  EXPECT_EQ(chart.find('A'), std::string::npos);
  EXPECT_EQ(chart.find('2'), std::string::npos);
}

TEST(Timeline, RejectsDegenerateWindows) {
  const auto stats = recorded_run(64, 2);
  EXPECT_THROW(render_timeline(stats.timeline,
                               {.from_cycle = 10, .to_cycle = 10}),
               std::invalid_argument);
  EXPECT_THROW(render_timeline(stats.timeline,
                               {.from_cycle = 0, .to_cycle = 100,
                                .cycles_per_char = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::sim
