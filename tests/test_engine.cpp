#include "sim/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "mapping/mapper.h"
#include "mapping/trace.h"
#include "ntt/params.h"
#include "ntt/reference.h"
#include "pim/host.h"

namespace nttpim::sim {
namespace {

using dram::CmdKind;
using dram::Command;

mapping::MappedNtt map_ntt(const dram::DramGeometry& g,
                           const ntt::NttParams& params, std::size_t nb,
                           std::uint16_t bank = 0) {
  mapping::MapperConfig config;
  config.num_buffers = nb;
  config.bank = bank;
  const mapping::RowCentricMapper mapper(g, params, config);
  return mapper.map(mapping::NttJob{});
}

TEST(Engine, StatsMatchTraceCounts) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(512);
  const auto mapped = map_ntt(g, params, 4);

  pim::PimDevice device(g, 4);
  Rng rng(1);
  pim::load_polynomial(device.bank(0), 0, rng.residues(512, params.q()));

  const Engine engine(EngineConfig{});
  const RunStats stats = engine.run(device, mapped.trace);
  const auto counts = mapping::count_commands(mapped.trace);

  EXPECT_EQ(stats.commands, counts.total);
  EXPECT_EQ(stats.activations, counts.acts);
  EXPECT_EQ(stats.precharges, counts.pres);
  EXPECT_EQ(stats.column_reads, counts.column_reads);
  EXPECT_EQ(stats.column_writes, counts.column_writes);
  EXPECT_EQ(stats.compute_ops, counts.c1_ops + counts.c2_ops);
  EXPECT_EQ(stats.param_loads, counts.params);
  // C1 performs 12 butterflies, C2 performs 8.
  EXPECT_EQ(stats.butterflies, counts.c1_ops * 12 + counts.c2_ops * 8);
}

TEST(Engine, Deterministic) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(1024);
  const auto mapped = map_ntt(g, params, 4);

  std::uint64_t cycles[2];
  for (int i = 0; i < 2; ++i) {
    pim::PimDevice device(g, 4);
    Rng rng(7);
    pim::load_polynomial(device.bank(0), 0, rng.residues(1024, params.q()));
    const Engine engine(EngineConfig{});
    cycles[i] = engine.run(device, mapped.trace).cycles;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(Engine, MakespanDominatedByBusFloor) {
  // One command per bus cycle is a hard lower bound on the makespan.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(256);
  const auto mapped = map_ntt(g, params, 6);

  pim::PimDevice device(g, 6);
  Rng rng(2);
  pim::load_polynomial(device.bank(0), 0, rng.residues(256, params.q()));
  const Engine engine(EngineConfig{});
  const RunStats stats = engine.run(device, mapped.trace);
  EXPECT_GE(stats.cycles, mapped.trace.size());
}

TEST(Engine, LowerFrequencyIncreasesWallClock) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(1024);
  const auto mapped = map_ntt(g, params, 2);

  double ns_at[2];
  const double freqs[2] = {1200.0, 300.0};
  for (int i = 0; i < 2; ++i) {
    pim::PimDevice device(g, 2);
    Rng rng(3);
    pim::load_polynomial(device.bank(0), 0, rng.residues(1024, params.q()));
    EngineConfig config;
    config.timing = dram::hbm2e_timing().at_frequency(freqs[i]);
    ns_at[i] = Engine(config).run(device, mapped.trace).ns;
  }
  EXPECT_GT(ns_at[1], ns_at[0]);
  // But nowhere near 4x: DRAM latencies are fixed in ns (paper Fig. 8).
  EXPECT_LT(ns_at[1] / ns_at[0], 4.0);
}

TEST(Engine, MultiBankSharesBusButOverlaps) {
  const dram::DramGeometry g = dram::hbm2e_geometry(2);
  const ntt::NttParams params = ntt::NttParams::create(512);

  pim::PimDevice device(g, 4);
  Rng rng(4);
  std::vector<Command> merged;
  for (std::uint16_t b = 0; b < 2; ++b) {
    pim::load_polynomial(device.bank(b), 0, rng.residues(512, params.q()));
    const auto mapped = map_ntt(g, params, 4, b);
    merged.insert(merged.end(), mapped.trace.begin(), mapped.trace.end());
  }

  const Engine engine(EngineConfig{});
  const std::uint64_t both = engine.run(device, merged).cycles;

  pim::PimDevice single(g, 4);
  Rng rng2(4);
  pim::load_polynomial(single.bank(0), 0, rng2.residues(512, params.q()));
  const std::uint64_t one =
      engine.run(single, map_ntt(g, params, 4, 0).trace).cycles;

  EXPECT_GT(both, one);           // sharing the bus costs something
  EXPECT_LT(both, 2 * one);       // but the banks overlap heavily
  EXPECT_LT(static_cast<double>(both), 1.25 * static_cast<double>(one));
}

TEST(Engine, TwoChannelsDoNotSerialize) {
  // The same two-bank workload as above, but with each bank on its own
  // channel: private command buses remove the sharing penalty entirely,
  // so the two-bank makespan equals a solo single-bank run — and both
  // stay functionally exact.
  const dram::DramGeometry g = dram::hbm2e_geometry(2, 2);
  const ntt::NttParams params = ntt::NttParams::create(512);

  pim::PimDevice device(g, 4);
  Rng rng(4);
  std::vector<std::vector<std::uint32_t>> inputs;
  std::vector<Command> merged;
  for (std::uint16_t b = 0; b < 2; ++b) {
    inputs.push_back(rng.residues(512, params.q()));
    pim::load_polynomial(device.bank(b), 0, inputs.back());
    const auto mapped = map_ntt(g, params, 4, b);
    merged.insert(merged.end(), mapped.trace.begin(), mapped.trace.end());
  }

  const Engine engine(EngineConfig{});
  const RunStats both = engine.run(device, merged);

  pim::PimDevice solo(g, 4);
  pim::load_polynomial(solo.bank(0), 0, inputs[0]);
  const RunStats one = engine.run(solo, map_ntt(g, params, 4, 0).trace);

  ASSERT_EQ(both.channel_makespans.size(), 2u);
  EXPECT_EQ(both.cycles,
            std::max(both.channel_makespans[0], both.channel_makespans[1]));
  EXPECT_GT(both.channel_makespans[0], 0u);
  EXPECT_GT(both.channel_makespans[1], 0u);
  // Neither channel ever waits on the other's bus.
  EXPECT_EQ(both.cycles, one.cycles);

  // The same merged trace on a single shared bus costs strictly more.
  const dram::DramGeometry shared_g = dram::hbm2e_geometry(2, 1);
  pim::PimDevice shared(shared_g, 4);
  for (std::uint16_t b = 0; b < 2; ++b)
    pim::load_polynomial(shared.bank(b), 0, inputs[b]);
  EXPECT_GT(engine.run(shared, merged).cycles, both.cycles);

  for (std::uint16_t b = 0; b < 2; ++b) {
    auto expected = inputs[b];
    ntt::forward_ntt(expected, params);
    EXPECT_EQ(pim::read_result(device.bank(b), 0, 512), expected);
  }
}

TEST(Engine, RejectsUnknownBank) {
  const dram::DramGeometry g = dram::hbm2e_geometry(1);
  pim::PimDevice device(g, 2);
  std::vector<Command> trace{{.kind = CmdKind::kAct, .bank = 3, .row = 0}};
  const Engine engine(EngineConfig{});
  EXPECT_THROW(engine.run(device, trace), std::invalid_argument);
}

TEST(Engine, RefreshOccursAtTrefiRate) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(4096);
  const auto mapped = map_ntt(g, params, 2);

  pim::PimDevice device(g, 2);
  Rng rng(11);
  pim::load_polynomial(device.bank(0), 0, rng.residues(4096, params.q()));
  EngineConfig config;  // refresh on by default
  const RunStats stats = Engine(config).run(device, mapped.trace);

  EXPECT_GT(stats.refreshes, 0u);
  // One refresh per tREFI window (give or take deferral at the edges).
  const double windows = static_cast<double>(stats.cycles) /
                         static_cast<double>(config.timing.trefi);
  EXPECT_NEAR(static_cast<double>(stats.refreshes), windows, windows * 0.2);
}

TEST(Engine, RefreshCostIsBounded) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(4096);
  const auto mapped = map_ntt(g, params, 4);

  std::uint64_t cycles[2];
  const bool flags[2] = {false, true};
  for (int i = 0; i < 2; ++i) {
    pim::PimDevice device(g, 4);
    Rng rng(12);
    pim::load_polynomial(device.bank(0), 0, rng.residues(4096, params.q()));
    EngineConfig config;
    config.enable_refresh = flags[i];
    cycles[i] = Engine(config).run(device, mapped.trace).cycles;
  }
  EXPECT_GT(cycles[1], cycles[0]);  // refresh costs something…
  // …but roughly tRFC/tREFI ~ 9-10%, not more than ~15%.
  EXPECT_LT(static_cast<double>(cycles[1]),
            1.15 * static_cast<double>(cycles[0]));
}

TEST(Engine, RefreshPreservesFunctionalCorrectness) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(2048);
  const auto mapped = map_ntt(g, params, 4);

  pim::PimDevice device(g, 4);
  Rng rng(13);
  const auto input = rng.residues(2048, params.q());
  pim::load_polynomial(device.bank(0), 0, input);
  Engine(EngineConfig{}).run(device, mapped.trace);

  auto expected = input;
  ntt::forward_ntt(expected, params);
  EXPECT_EQ(pim::read_result(device.bank(0), 0, 2048), expected);
}

// Per-channel refresh staggering: channel c's tREFI clock is offset by
// trefi * c / num_channels. With tREFI tuned so the run ends inside the
// second channel's (shifted) first window, the staggered run performs
// strictly fewer refreshes; a single-channel device has nothing to
// stagger, so the flag is exactly a no-op there.
TEST(Engine, StaggeredRefreshOffsetsChannelWindows) {
  const dram::DramGeometry g = dram::hbm2e_geometry(2, 2);
  const ntt::NttParams params = ntt::NttParams::create(2048);

  std::vector<std::vector<std::uint32_t>> inputs;
  std::vector<Command> merged;
  Rng rng(17);
  for (std::uint16_t b = 0; b < 2; ++b) {
    inputs.push_back(rng.residues(2048, params.q()));
    const auto mapped = map_ntt(g, params, 4, b);
    merged.insert(merged.end(), mapped.trace.begin(), mapped.trace.end());
  }
  auto load = [&](pim::PimDevice& device) {
    for (std::uint16_t b = 0; b < 2; ++b)
      pim::load_polynomial(device.bank(b), 0, inputs[b]);
  };

  // Size one refresh window at ~90% of the refresh-free makespan: aligned
  // clocks refresh once per channel, while channel 1's staggered deadline
  // (1.5 * trefi) falls beyond the end of the run.
  EngineConfig probe;
  probe.enable_refresh = false;
  pim::PimDevice dry(g, 4);
  load(dry);
  const std::uint64_t no_refresh_cycles =
      Engine(probe).run(dry, merged).cycles;

  std::uint64_t refreshes[2];
  const bool flags[2] = {false, true};
  for (int i = 0; i < 2; ++i) {
    EngineConfig config;
    config.timing.trefi =
        static_cast<unsigned>(no_refresh_cycles * 9 / 10);
    config.timing.stagger_refresh = flags[i];
    pim::PimDevice device(g, 4);
    load(device);
    const RunStats stats = Engine(config).run(device, merged);
    refreshes[i] = stats.refreshes;

    // Refresh (staggered or not) never perturbs the results.
    for (std::uint16_t b = 0; b < 2; ++b) {
      auto expected = inputs[b];
      ntt::forward_ntt(expected, params);
      EXPECT_EQ(pim::read_result(device.bank(b), 0, 2048), expected);
    }
  }
  EXPECT_GT(refreshes[0], 0u);
  EXPECT_LT(refreshes[1], refreshes[0]);

  // Single channel: offset trefi * 0 / 1 == 0 — bit-identical schedules.
  const dram::DramGeometry g1 = dram::hbm2e_geometry();
  const auto mapped1 = map_ntt(g1, params, 4);
  std::uint64_t cycles1[2];
  for (int i = 0; i < 2; ++i) {
    EngineConfig config;
    config.timing.stagger_refresh = flags[i];
    pim::PimDevice device(g1, 4);
    pim::load_polynomial(device.bank(0), 0, inputs[0]);
    cycles1[i] = Engine(config).run(device, mapped1.trace).cycles;
  }
  EXPECT_EQ(cycles1[0], cycles1[1]);
}

TEST(Engine, EnergyAccountingConsistent) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(512);
  const auto mapped = map_ntt(g, params, 2);

  pim::PimDevice device(g, 2);
  Rng rng(5);
  pim::load_polynomial(device.bank(0), 0, rng.residues(512, params.q()));

  EngineConfig config;
  config.energy.act_pre_pj = 1000;
  config.energy.column_pj = 0;
  config.energy.bu_op_pj = 0;
  config.energy.param_pj = 0;
  config.energy.refresh_pj = 0;
  config.energy.background_mw = 0;
  const RunStats stats = Engine(config).run(device, mapped.trace);
  EXPECT_DOUBLE_EQ(stats.energy.total_nj(),
                   static_cast<double>(stats.activations) * 1.0);
}

}  // namespace
}  // namespace nttpim::sim
