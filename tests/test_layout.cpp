#include "mapping/layout.h"

#include <gtest/gtest.h>

namespace nttpim::mapping {
namespace {

TEST(DataLayout, PlacementMath) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const DataLayout layout(g, /*base_row=*/10, /*n=*/1024);

  EXPECT_EQ(layout.rows_used(), 4u);
  EXPECT_EQ(layout.words_per_row(), 256u);
  EXPECT_EQ(layout.log2n(), 10u);

  const auto p0 = layout.place(0);
  EXPECT_EQ(p0.row, 10u);
  EXPECT_EQ(p0.atom, 0u);
  EXPECT_EQ(p0.lane, 0u);

  const auto p = layout.place(256 + 8 * 5 + 3);
  EXPECT_EQ(p.row, 11u);
  EXPECT_EQ(p.atom, 5u);
  EXPECT_EQ(p.lane, 3u);

  const auto last = layout.place(1023);
  EXPECT_EQ(last.row, 13u);
  EXPECT_EQ(last.atom, 31u);
  EXPECT_EQ(last.lane, 7u);
}

TEST(DataLayout, SpanPartnersShareLane) {
  // DIT stage pairs (i, i+m) with m >= 8 must land in the same lane —
  // the property that makes the 8-way C2 butterfly line up.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const DataLayout layout(g, 0, 4096);
  for (std::size_t m = 8; m < 4096; m <<= 1) {
    for (const std::size_t i : {std::size_t{0}, m / 2, 3 * m / 4}) {
      EXPECT_EQ(layout.place(i).lane, layout.place(i + m).lane)
          << "m=" << m << " i=" << i;
    }
  }
}

TEST(DataLayout, PartialRowAtomCounts) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const DataLayout small(g, 0, 64);
  EXPECT_EQ(small.rows_used(), 1u);
  EXPECT_EQ(small.atoms_in_row(0), 8u);  // 64 words / 8 per atom

  const DataLayout full(g, 0, 512);
  EXPECT_EQ(full.rows_used(), 2u);
  EXPECT_EQ(full.atoms_in_row(0), 32u);
  EXPECT_EQ(full.atoms_in_row(1), 32u);
}

TEST(DataLayout, WordOfIsInverseOfPlace) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const DataLayout layout(g, 7, 2048);
  for (const std::size_t i : {std::size_t{0}, std::size_t{300},
                              std::size_t{1000}, std::size_t{2047}}) {
    const auto p = layout.place(i);
    EXPECT_EQ(layout.word_of(p.row - 7, p.atom) + p.lane, i);
  }
}

TEST(DataLayout, BoundsChecked) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const DataLayout layout(g, 0, 256);
  EXPECT_THROW(layout.place(256), std::invalid_argument);
  EXPECT_THROW(layout.atoms_in_row(1), std::invalid_argument);
  // Does not fit: 32768 rows * 256 words; base row too high.
  EXPECT_THROW(DataLayout(g, 32768 - 3, 2048), std::invalid_argument);
  // Not a power of two.
  EXPECT_THROW(DataLayout(g, 0, 768), std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::mapping
