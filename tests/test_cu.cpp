#include "pim/cu.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/random.h"
#include "ntt/modular.h"
#include "ntt/params.h"
#include "ntt/reference.h"

namespace nttpim::pim {
namespace {

using dram::ParamReg;

// Configure a CU with the parameters the memory controller would send.
ComputeUnit make_cu(const ntt::NttParams& p, unsigned c1_stages = 3) {
  ComputeUnit cu;
  cu.load_param(ParamReg::kModulus, p.q());
  cu.load_param(ParamReg::kC1Root,
                p.omega_pow(p.n() >> c1_stages));
  return cu;
}

TEST(ComputeUnitC1, EightPointNttMatchesReference) {
  const ntt::NttParams p = ntt::NttParams::create(8);
  ComputeUnit cu = make_cu(p);

  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto input = rng.residues(8, p.q());
    AtomBuffer buf;
    auto bitrev = input;
    bit_reverse_permute(bitrev);
    std::copy(bitrev.begin(), bitrev.end(), buf.words.begin());

    cu.exec_c1(buf, 3);

    auto expected = input;
    ntt::forward_ntt(expected, p);
    EXPECT_TRUE(std::equal(buf.words.begin(), buf.words.end(),
                           expected.begin()));
  }
}

TEST(ComputeUnitC1, SubAtomSizes) {
  // stages=1 and 2 compute 2- and 4-point NTTs on the low lanes.
  for (const unsigned stages : {1u, 2u}) {
    const std::size_t n = std::size_t{1} << stages;
    const ntt::NttParams p = ntt::NttParams::create(n);
    ComputeUnit cu = make_cu(p, stages);

    Rng rng(stages);
    const auto input = rng.residues(n, p.q());
    AtomBuffer buf;
    auto bitrev = input;
    bit_reverse_permute(bitrev);
    std::copy(bitrev.begin(), bitrev.end(), buf.words.begin());

    cu.exec_c1(buf, stages);

    auto expected = input;
    ntt::forward_ntt(expected, p);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(buf.words[i], expected[i]) << "stages=" << stages;
  }
}

TEST(ComputeUnitC1, CountsButterflies) {
  const ntt::NttParams p = ntt::NttParams::create(8);
  ComputeUnit cu = make_cu(p);
  AtomBuffer buf;
  cu.exec_c1(buf, 3);
  EXPECT_EQ(cu.butterfly_count(), 12u);  // 3 stages x 4 BUs
}

TEST(ComputeUnitC1, RejectsBadStageCount) {
  const ntt::NttParams p = ntt::NttParams::create(8);
  ComputeUnit cu = make_cu(p);
  AtomBuffer buf;
  EXPECT_THROW(cu.exec_c1(buf, 0), std::invalid_argument);
  EXPECT_THROW(cu.exec_c1(buf, 4), std::invalid_argument);
}

TEST(ComputeUnitC2, VectorizedDitButterfly) {
  const ntt::NttParams p = ntt::NttParams::create(1024);
  ComputeUnit cu = make_cu(p);
  const std::uint32_t q = p.q();

  // Program the TFG like the MC does for a stage with step w and start w0.
  const std::uint32_t w0 = p.omega_pow(5);
  const std::uint32_t step = p.omega_pow(3);
  cu.load_param(ParamReg::kTfgOmega0, w0);
  cu.load_param(ParamReg::kTfgStep, step);

  Rng rng(2);
  AtomBuffer pb, sb;
  std::vector<std::uint32_t> a = rng.residues(8, q);
  std::vector<std::uint32_t> b = rng.residues(8, q);
  std::copy(a.begin(), a.end(), pb.words.begin());
  std::copy(b.begin(), b.end(), sb.words.begin());

  cu.exec_c2(pb, sb, /*tfg_reset=*/true);

  std::uint64_t w = w0;
  for (std::size_t j = 0; j < kAtomWords; ++j) {
    const std::uint64_t t = ntt::mul_mod(b[j], w, q);
    EXPECT_EQ(pb.words[j], ntt::add_mod(a[j], t, q));
    EXPECT_EQ(sb.words[j], ntt::sub_mod(a[j], t, q));
    w = ntt::mul_mod(w, step, q);
  }
}

TEST(ComputeUnitC2, TfgContinuesAcrossCommands) {
  // Without a reset, the second C2 must continue the geometric sequence —
  // the property that lets the MC avoid per-command PARAM traffic.
  const ntt::NttParams p = ntt::NttParams::create(256);
  ComputeUnit cu = make_cu(p);
  cu.load_param(ParamReg::kTfgOmega0, 1);
  cu.load_param(ParamReg::kTfgStep, p.omega());

  AtomBuffer pb, sb;
  pb.words.fill(0);
  sb.words.fill(1);  // P=0, S=1: after C2, S side = -w_j
  cu.exec_c2(pb, sb, true);
  AtomBuffer pb2, sb2;
  pb2.words.fill(0);
  sb2.words.fill(1);
  cu.exec_c2(pb2, sb2, false);

  for (std::size_t j = 0; j < kAtomWords; ++j) {
    EXPECT_EQ(pb.words[j], p.omega_pow(j));       // 0 + w_j * 1
    EXPECT_EQ(pb2.words[j], p.omega_pow(8 + j));  // sequence continued
  }
}

TEST(ComputeUnitC2, ZeroOperandTrickScales) {
  // C2 with P = 0 leaves w_j * S[j] in P: the scaling pass primitive.
  const ntt::NttParams p = ntt::NttParams::create(64);
  ComputeUnit cu = make_cu(p);
  cu.load_param(ParamReg::kTfgOmega0, p.n_inv());
  cu.load_param(ParamReg::kTfgStep, 1);

  Rng rng(3);
  AtomBuffer pb, sb;
  pb.clear();
  const auto data = rng.residues(8, p.q());
  std::copy(data.begin(), data.end(), sb.words.begin());

  cu.exec_c2(pb, sb, true);
  for (std::size_t j = 0; j < kAtomWords; ++j)
    EXPECT_EQ(pb.words[j], ntt::mul_mod(data[j], p.n_inv(), p.q()));
}

TEST(ComputeUnitC2, RejectsAliasedBuffers) {
  const ntt::NttParams p = ntt::NttParams::create(8);
  ComputeUnit cu = make_cu(p);
  AtomBuffer buf;
  EXPECT_THROW(cu.exec_c2(buf, buf, false), std::invalid_argument);
}

TEST(ComputeUnitScalar, ButterflyOnRegisters) {
  const ntt::NttParams p = ntt::NttParams::create(16);
  ComputeUnit cu = make_cu(p);
  const std::uint32_t q = p.q();
  const std::uint32_t w0 = p.omega_pow(2);
  cu.load_param(ParamReg::kTfgOmega0, w0);
  cu.load_param(ParamReg::kTfgStep, p.omega());

  cu.set_scalar_reg(0, 100);
  cu.set_scalar_reg(1, 200);
  cu.exec_scalar_bu(/*tfg_reset=*/true);

  const std::uint64_t t = ntt::mul_mod(200, w0, q);
  EXPECT_EQ(cu.scalar_reg(0), ntt::add_mod(100, t, q));
  EXPECT_EQ(cu.scalar_reg(1), ntt::sub_mod(100, t, q));
  EXPECT_EQ(cu.butterfly_count(), 1u);
}

TEST(ComputeUnitScalar, RegisterIndexChecked) {
  ComputeUnit cu;
  cu.load_param(ParamReg::kModulus, 17);
  EXPECT_THROW(cu.set_scalar_reg(2, 1), std::invalid_argument);
  EXPECT_THROW(cu.scalar_reg(5), std::invalid_argument);
}

TEST(ComputeUnit, ModulusParamResetsTfg) {
  ComputeUnit cu;
  cu.load_param(ParamReg::kModulus, 97);
  cu.load_param(ParamReg::kTfgStep, 3);
  cu.load_param(ParamReg::kModulus, 17);  // re-parameterize (new NTT call)
  EXPECT_EQ(cu.modulus(), 17u);
  EXPECT_EQ(cu.tfg().step(), 1u);  // TFG state rebuilt for the new modulus
}

TEST(ComputeUnit, RejectsDegenerateModulus) {
  ComputeUnit cu;
  EXPECT_THROW(cu.load_param(ParamReg::kModulus, 0),
               std::invalid_argument);
  EXPECT_THROW(cu.load_param(ParamReg::kModulus, 1),
               std::invalid_argument);
  // Beyond the BU datapath's 31-bit modulus range.
  EXPECT_THROW(cu.load_param(ParamReg::kModulus, (1u << 31) + 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::pim
