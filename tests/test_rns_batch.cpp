// Heterogeneous multi-limb batching: a different NTT per bank.
//
// Covers the mixed-wave backend API (transform_batch_mixed), the RNS
// product built on it (rns_negacyclic_multiply), the plan-cache bank-0
// twin fix and the RNS input-validation fixes.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "fhe/cpu_backend.h"
#include "fhe/pim_backend.h"
#include "fhe/rns.h"
#include "fhe/rns_poly.h"
#include "fhe/rq.h"
#include "mapping/plan_cache.h"
#include "ntt/poly.h"

namespace nttpim::fhe {
namespace {

std::vector<unsigned __int128> random_wide(const RnsBasis& basis,
                                           std::uint64_t seed) {
  Rng rng(seed);
  return rng.wide_coeffs(basis.n(), basis.modulus_product());
}

/// Golden model: per-limb u32 schoolbook negacyclic products,
/// CRT-recombined into [0, Q) — the 128-bit CPU reference the PIM result
/// must match bit-for-bit.
std::vector<unsigned __int128> schoolbook_wide_product(
    const RnsBasis& basis, const std::vector<unsigned __int128>& a,
    const std::vector<unsigned __int128>& b) {
  const auto ra = basis.to_rns(a);
  const auto rb = basis.to_rns(b);
  std::vector<std::vector<std::uint32_t>> limbs(basis.limb_count());
  for (std::size_t i = 0; i < basis.limb_count(); ++i)
    limbs[i] = ntt::negacyclic_convolution_schoolbook(ra[i], rb[i],
                                                      basis.prime(i));
  return basis.from_rns(limbs);
}

// ------------------------------------------------------- mixed-wave property

// A mixed heterogeneous wave (4 distinct primes, mixed forward/inverse)
// must be bit-identical per limb to sequential single-bank calls, and its
// one-pass makespan must beat the sum of the sequential runs.
TEST(MixedWave, MatchesSequentialSingleBankAndBeatsItsCycles) {
  const RnsBasis basis(256, 4, 30);
  Rng rng(31);

  std::vector<std::vector<std::uint32_t>> wave_polys(4), seq_polys(4);
  std::vector<bool> inverse = {false, true, false, true};
  for (std::size_t i = 0; i < 4; ++i)
    wave_polys[i] = seq_polys[i] = rng.residues(256, basis.prime(i));

  PimBackend seq(4, 1200.0, dram::hbm2e_geometry(1));
  for (std::size_t i = 0; i < 4; ++i) {
    if (inverse[i])
      seq.inverse(seq_polys[i], basis.params(i));
    else
      seq.forward(seq_polys[i], basis.params(i));
  }
  EXPECT_EQ(seq.engine_passes(), 4u);

  PimBackend wave(4, 1200.0, dram::hbm2e_geometry(4));
  std::vector<BatchItem> items;
  for (std::size_t i = 0; i < 4; ++i)
    items.push_back({&wave_polys[i], &basis.params(i), inverse[i]});
  wave.transform_batch_mixed(items);

  EXPECT_EQ(wave_polys, seq_polys);
  EXPECT_EQ(wave.engine_passes(), 1u);
  EXPECT_EQ(wave.transform_count(), 4u);
  // One bank-parallel pass strictly beats four sequential transforms.
  EXPECT_LT(wave.total_cycles(), seq.total_cycles());

  // Each limb got its own bank and its own modulus.
  ASSERT_EQ(wave.last_wave().size(), 4u);
  std::set<std::uint16_t> banks;
  std::set<std::uint32_t> moduli;
  for (std::size_t i = 0; i < 4; ++i) {
    banks.insert(wave.last_wave()[i].bank);
    moduli.insert(wave.last_wave()[i].q);
    EXPECT_EQ(wave.last_wave()[i].q, basis.prime(i));
    EXPECT_EQ(wave.last_wave()[i].inverse, inverse[i]);
  }
  EXPECT_EQ(banks.size(), 4u);
  EXPECT_EQ(moduli.size(), 4u);
}

// Waves may also mix transform *sizes*.
TEST(MixedWave, HeterogeneousSizesMatchSequential) {
  const ntt::NttParams small = ntt::NttParams::create(128, 29);
  const ntt::NttParams large = ntt::NttParams::create(256, 30);
  Rng rng(32);
  std::vector<std::uint32_t> a = rng.residues(128, small.q());
  std::vector<std::uint32_t> b = rng.residues(256, large.q());
  auto ea = a;
  auto eb = b;

  CpuBackend cpu;
  cpu.forward(ea, small);
  cpu.inverse(eb, large);

  PimBackend pim(4, 1200.0, dram::hbm2e_geometry(2));
  const BatchItem items[] = {{&a, &small, false}, {&b, &large, true}};
  pim.transform_batch_mixed(items);
  EXPECT_EQ(a, ea);
  EXPECT_EQ(b, eb);
  EXPECT_EQ(pim.engine_passes(), 1u);
}

// The CPU backend's default sequential implementation must agree too.
TEST(MixedWave, CpuBackendDefaultImplementation) {
  const RnsBasis basis(64, 2, 28);
  Rng rng(33);
  std::vector<std::vector<std::uint32_t>> polys(2), expected(2);
  for (std::size_t i = 0; i < 2; ++i)
    polys[i] = expected[i] = rng.residues(64, basis.prime(i));

  CpuBackend batch, plain;
  std::vector<BatchItem> items;
  for (std::size_t i = 0; i < 2; ++i)
    items.push_back({&polys[i], &basis.params(i), false});
  batch.transform_batch_mixed(items);
  for (std::size_t i = 0; i < 2; ++i) plain.forward(expected[i], basis.params(i));
  EXPECT_EQ(polys, expected);
  EXPECT_EQ(batch.transform_count(), 2u);
}

TEST(MixedWave, RejectsAliasedItems) {
  const ntt::NttParams params = ntt::NttParams::create(64, 29);
  Rng rng(34);
  auto poly = rng.residues(64, params.q());
  PimBackend pim(4, 1200.0, dram::hbm2e_geometry(2));
  CpuBackend cpu;
  const BatchItem items[] = {{&poly, &params, false}, {&poly, &params, false}};
  EXPECT_THROW(pim.transform_batch_mixed(items), std::invalid_argument);
  EXPECT_THROW(cpu.transform_batch_mixed(items), std::invalid_argument);
  const BatchItem null_item[] = {{nullptr, &params, false}};
  EXPECT_THROW(pim.transform_batch_mixed(null_item), std::invalid_argument);
  EXPECT_THROW(cpu.transform_batch_mixed(null_item), std::invalid_argument);
}

// ----------------------------------------------------- RNS product (tentpole)

// Acceptance: a 4-limb product round-trips bit-identical to the 128-bit
// CPU schoolbook reference, and its forward stage is ONE engine pass with
// 4 distinct moduli in 4 distinct banks.
TEST(RnsProduct, FourLimbsOneForwardPassFourBanksFourModuli) {
  const RnsBasis basis(256, 4, 30);
  PimBackend pim(4, 1200.0, dram::hbm2e_geometry(4));
  pim.set_record_waves(true);

  const auto a = random_wide(basis, 41);
  const auto b = random_wide(basis, 42);
  const auto product = rns_negacyclic_multiply(basis, a, b, pim);
  EXPECT_EQ(product, schoolbook_wide_product(basis, a, b));

  // Exactly two passes: one forward wave (8 transforms), one inverse wave.
  EXPECT_EQ(pim.engine_passes(), 2u);
  EXPECT_EQ(pim.transform_count(), 12u);
  ASSERT_EQ(pim.recorded_waves().size(), 2u);

  const auto& forward = pim.recorded_waves()[0];
  ASSERT_EQ(forward.slots.size(), 8u);  // 4 limbs x 2 operands
  std::set<std::uint16_t> banks;
  std::set<std::uint32_t> moduli;
  for (const auto& slot : forward.slots) {
    EXPECT_FALSE(slot.inverse);
    banks.insert(slot.bank);
    moduli.insert(slot.q);
    // Limb i of both operands shares bank i: one modulus per bank.
    EXPECT_EQ(slot.q, basis.prime(slot.bank));
  }
  EXPECT_EQ(banks.size(), 4u);
  EXPECT_EQ(moduli.size(), 4u);

  // The merged trace programs each bank's CU with that bank's limb prime
  // and nothing else: per-bank heterogeneity down at the command level.
  for (std::uint16_t bank = 0; bank < 4; ++bank) {
    std::size_t param_loads = 0;
    for (const auto& cmd : forward.trace) {
      if (cmd.bank != bank || cmd.kind != dram::CmdKind::kParam ||
          cmd.param_reg != dram::ParamReg::kModulus)
        continue;
      ++param_loads;
      EXPECT_EQ(cmd.param_value, basis.prime(bank));
    }
    EXPECT_GT(param_loads, 0u);
  }

  const auto& inverse = pim.recorded_waves()[1];
  ASSERT_EQ(inverse.slots.size(), 4u);
  for (const auto& slot : inverse.slots) EXPECT_TRUE(slot.inverse);
}

TEST(RnsProduct, MatchesSchoolbookAcrossLimbCountsAndBackends) {
  for (const std::size_t limbs : {1u, 2u, 3u}) {
    const RnsBasis basis(128, limbs, 29);
    const auto a = random_wide(basis, 50 + limbs);
    const auto b = random_wide(basis, 60 + limbs);
    const auto expected = schoolbook_wide_product(basis, a, b);

    CpuBackend cpu;
    EXPECT_EQ(rns_negacyclic_multiply(basis, a, b, cpu), expected);
    PimBackend pim(4, 1200.0, dram::hbm2e_geometry(limbs));
    EXPECT_EQ(rns_negacyclic_multiply(basis, a, b, pim), expected);
    // Fewer banks than transforms: items stack at disjoint base rows of
    // the same bank and run back-to-back within the single pass.
    PimBackend narrow(4, 1200.0, dram::hbm2e_geometry(2));
    EXPECT_EQ(rns_negacyclic_multiply(basis, a, b, narrow), expected);
    EXPECT_EQ(narrow.engine_passes(), 2u);
  }
}

// Squaring: the aliased-operand case the batch API rejects must still be
// expressible — the RNS layer dedupes the operand and squares pointwise.
TEST(RnsProduct, SquaringDedupesTheSharedOperand) {
  const RnsBasis basis(128, 3, 29);
  const auto a = random_wide(basis, 71);
  const auto expected = schoolbook_wide_product(basis, a, a);

  PimBackend pim(4, 1200.0, dram::hbm2e_geometry(3));
  EXPECT_EQ(rns_negacyclic_multiply(basis, a, a, pim), expected);
  // One forward wave of 3 (not 6) transforms plus one inverse wave.
  EXPECT_EQ(pim.engine_passes(), 2u);
  EXPECT_EQ(pim.transform_count(), 6u);

  // Same through the ring-element API multiplying a polynomial by itself.
  const auto pa = RnsPoly::from_wide(basis, a);
  CpuBackend cpu;
  EXPECT_EQ(rns_negacyclic_multiply(pa, pa, cpu).to_wide(), expected);
  EXPECT_EQ(cpu.transform_count(), 6u);
}

// ------------------------------------------------------ plan-cache bank fix

// Requesting a bank != 0 first must map once at bank 0, cache the twin and
// retarget — so the rest of the wave (bank 0 included) is all cache hits
// or O(trace) replications, never a second mapper run.
TEST(PlanCache, NonZeroBankMissMapsAtBankZeroAndCachesTheTwin) {
  const dram::DramGeometry geometry = dram::hbm2e_geometry(4);
  const ntt::NttParams params = ntt::NttParams::create(256, 30);
  mapping::MapperConfig config;
  config.num_buffers = 4;
  mapping::NttJob job;

  mapping::PlanCache cache;
  std::vector<std::shared_ptr<const mapping::MappedNtt>> plans(4);
  for (const std::uint16_t bank : {1, 2, 3}) {
    config.bank = bank;
    plans[bank] = cache.get_or_map(geometry, params, config, job);
  }
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
  // 3 requested banks + the bank-0 twin mapped on the first miss.
  EXPECT_EQ(cache.size(), 4u);

  // Bank 0 itself is now a pure hit (pre-fix: a fourth miss + mapper run).
  config.bank = 0;
  plans[0] = cache.get_or_map(geometry, params, config, job);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 4u);

  // Every retargeted plan is the bank-0 plan with rewritten bank ids.
  for (std::uint16_t bank = 1; bank < 4; ++bank) {
    ASSERT_EQ(plans[bank]->trace.size(), plans[0]->trace.size());
    EXPECT_EQ(plans[bank]->result_base_row, plans[0]->result_base_row);
    auto expected = mapping::retarget_bank(*plans[0], bank);
    for (std::size_t i = 0; i < expected.trace.size(); ++i) {
      EXPECT_EQ(plans[bank]->trace[i].bank, bank);
      EXPECT_EQ(plans[bank]->trace[i].kind, expected.trace[i].kind);
      EXPECT_EQ(plans[bank]->trace[i].row, expected.trace[i].row);
    }
  }

  // Repeats of every bank are hits.
  for (const std::uint16_t bank : {0, 1, 2, 3}) {
    config.bank = bank;
    cache.get_or_map(geometry, params, config, job);
  }
  EXPECT_EQ(cache.hits(), 5u);
  EXPECT_EQ(cache.misses(), 3u);
}

// A 4-bank wave through the backend: one mapper-visible miss per bank key,
// all subsequent waves pure hits.
TEST(PlanCache, FourBankWaveHitsAfterFirstUse) {
  const ntt::NttParams params = ntt::NttParams::create(256, 30);
  PimBackend pim(4, 1200.0, dram::hbm2e_geometry(4));
  Rng rng(81);
  std::vector<std::vector<std::uint32_t>> polys(8);
  for (auto& p : polys) p = rng.residues(256, params.q());

  pim.transform_batch(polys, params);
  EXPECT_EQ(pim.engine_passes(), 2u);
  EXPECT_EQ(pim.plan_cache_misses(), 4u);  // banks 0..3, mapped once
  EXPECT_EQ(pim.plan_cache_hits(), 4u);    // the second wave
}

// ------------------------------------------------------ RNS input validation

TEST(RnsValidation, ToRnsRejectsCoefficientsOutsideQ) {
  const RnsBasis basis(16, 2, 28);
  std::vector<unsigned __int128> coeffs(16, 0);
  coeffs[3] = basis.modulus_product();  // == Q: out of range
  EXPECT_THROW(basis.to_rns(coeffs), std::invalid_argument);
  coeffs[3] = basis.modulus_product() - 1;
  EXPECT_NO_THROW(basis.to_rns(coeffs));
}

TEST(RnsValidation, EmptyInputsRoundTripCleanly) {
  const RnsBasis basis(16, 3, 28);
  const auto limbs = basis.to_rns({});
  ASSERT_EQ(limbs.size(), 3u);
  for (const auto& limb : limbs) EXPECT_TRUE(limb.empty());
  EXPECT_TRUE(basis.from_rns(limbs).empty());
}

TEST(RnsValidation, FromRnsRejectsMalformedResidues) {
  const RnsBasis basis(16, 2, 28);
  // Wrong limb count (including the empty call).
  EXPECT_THROW(basis.from_rns({}), std::invalid_argument);
  EXPECT_THROW(basis.from_rns({{1, 2, 3}}), std::invalid_argument);
  // Ragged lengths.
  EXPECT_THROW(basis.from_rns({{1, 2}, {1}}), std::invalid_argument);
  // Residue out of range for its limb prime.
  EXPECT_THROW(basis.from_rns({{basis.prime(0)}, {0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::fhe
