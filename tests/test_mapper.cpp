#include "mapping/mapper.h"

#include <gtest/gtest.h>

#include "mapping/act_model.h"
#include "mapping/naive_mapper.h"
#include "mapping/trace.h"
#include "ntt/params.h"

namespace nttpim::mapping {
namespace {

using dram::CmdKind;
using dram::Regime;

struct MapCase {
  std::size_t n;
  std::size_t nb;
  bool pipelined;
};

std::string case_name(const ::testing::TestParamInfo<MapCase>& info) {
  return "N" + std::to_string(info.param.n) + "_Nb" +
         std::to_string(info.param.nb) +
         (info.param.pipelined ? "_piped" : "_seq");
}

class MapperTraces : public ::testing::TestWithParam<MapCase> {};

TEST_P(MapperTraces, TraceIsValidAndActCountMatchesModel) {
  const auto [n, nb, pipelined] = GetParam();
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(n);

  MapperConfig config;
  config.num_buffers = nb;
  config.pipelined = pipelined;
  const RowCentricMapper mapper(g, params, config);
  const MappedNtt mapped = mapper.map(NttJob{});

  // Static validity: open-row discipline, buffer indices, load-before-use.
  EXPECT_NO_THROW(validate_trace(mapped.trace, g, nb));
  EXPECT_EQ(mapped.result_base_row, 0u);

  const TraceCounts counts = count_commands(mapped.trace);
  const DataLayout layout(g, 0, n);
  EXPECT_EQ(counts.acts, ActModel::total_forward(layout, config));

  // Each data word is read and written at least once; C2 count is exactly
  // the number of vectorized butterflies in the inter-atom stages.
  const unsigned log_n = layout.log2n();
  const unsigned inter_atom_stages = log_n > 3 ? log_n - 3 : 0;
  EXPECT_EQ(counts.c2_ops, inter_atom_stages * (n / 16));
  EXPECT_EQ(counts.c1_ops, (n + 7) / 8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapperTraces,
    ::testing::Values(MapCase{16, 2, true}, MapCase{64, 2, true},
                      MapCase{256, 2, true}, MapCase{256, 4, true},
                      MapCase{512, 2, true}, MapCase{512, 6, true},
                      MapCase{1024, 2, true}, MapCase{1024, 4, true},
                      MapCase{1024, 6, true}, MapCase{1024, 4, false},
                      MapCase{4096, 2, true}, MapCase{4096, 6, true},
                      MapCase{8192, 4, true}, MapCase{8192, 6, false}),
    case_name);

TEST(Mapper, PipeliningReducesInterRowActivations) {
  // Fig. 6c: grouping same-row accesses with more buffers removes ACTs.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(4096);

  auto acts_for = [&](std::size_t nb) {
    MapperConfig config;
    config.num_buffers = nb;
    const RowCentricMapper mapper(g, params, config);
    const auto counts = count_commands(mapper.map(NttJob{}).trace);
    return counts.acts_by_regime.at(Regime::kInterRow);
  };

  const auto acts2 = acts_for(2);
  const auto acts4 = acts_for(4);
  const auto acts6 = acts_for(6);
  EXPECT_GT(acts2, acts4);
  EXPECT_GT(acts4, acts6);
  // Nb=2 -> Nb=4 roughly halves the round count per row pair.
  EXPECT_NEAR(static_cast<double>(acts2) / static_cast<double>(acts4), 2.0,
              0.15);
}

TEST(Mapper, IntraRegimesNeedNoExtraActivations) {
  // For N <= R the whole transform runs with one activation per row block.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(256);
  const RowCentricMapper mapper(g, params, MapperConfig{});
  const auto counts = count_commands(mapper.map(NttJob{}).trace);
  EXPECT_EQ(counts.acts, 1u);
}

TEST(Mapper, RegimeBoundaries) {
  // N = 8: intra-atom only. N = 16..256: + intra-row. N >= 512: + inter-row.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  auto regimes_for = [&](std::size_t n) {
    const ntt::NttParams params = ntt::NttParams::create(n);
    MapperConfig config;
    config.num_buffers = n > 8 ? 2 : 1;
    const RowCentricMapper mapper(g, params, config);
    const auto trace = mapper.map(NttJob{}).trace;
    bool intra_row = false, inter_row = false;
    for (const auto& cmd : trace) {
      intra_row |= cmd.regime == Regime::kIntraRow &&
                   cmd.kind == CmdKind::kC2;
      inter_row |= cmd.regime == Regime::kInterRow;
    }
    return std::pair{intra_row, inter_row};
  };

  EXPECT_EQ(regimes_for(8), (std::pair{false, false}));
  EXPECT_EQ(regimes_for(16), (std::pair{true, false}));
  EXPECT_EQ(regimes_for(256), (std::pair{true, false}));
  EXPECT_EQ(regimes_for(512), (std::pair{true, true}));
}

TEST(Mapper, InverseEmitsScalePass) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(512);
  const RowCentricMapper mapper(g, params, MapperConfig{});

  NttJob job;
  job.direction = Direction::kInverse;
  const auto trace = mapper.map(job).trace;
  const auto counts = count_commands(trace);
  EXPECT_EQ(counts.buf_zeros, 512u / 8);  // one per atom in the scale pass
  bool scale_seen = false;
  for (const auto& cmd : trace)
    scale_seen |= cmd.regime == Regime::kScale;
  EXPECT_TRUE(scale_seen);

  job.scale_output = false;
  const auto unscaled = count_commands(mapper.map(job).trace);
  EXPECT_EQ(unscaled.buf_zeros, 0u);
}

TEST(Mapper, NoInPlaceAblationPingPongs) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(1024);
  MapperConfig config;
  config.num_buffers = 4;
  config.in_place = false;
  const RowCentricMapper mapper(g, params, config);
  const MappedNtt mapped = mapper.map(NttJob{});

  EXPECT_NO_THROW(validate_trace(mapped.trace, g, 4));
  // 1024 words = 4 rows: 7 ping-pong stages (s=4..10) -> odd -> shadow.
  EXPECT_EQ(mapped.result_base_row, 4u);

  // The ablation must cost strictly more activations than in-place.
  const RowCentricMapper in_place(g, params, MapperConfig{.num_buffers = 4});
  EXPECT_GT(count_commands(mapped.trace).acts,
            count_commands(in_place.map(NttJob{}).trace).acts);
}

TEST(Mapper, ParamDeduplication) {
  // omega0 = 1 is shared across all intra-row stages; the TFG step changes
  // once per stage. PARAM traffic must stay tiny relative to computes.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(1024);
  const RowCentricMapper mapper(g, params, MapperConfig{});
  const auto counts = count_commands(mapper.map(NttJob{}).trace);
  EXPECT_LT(counts.params, counts.c2_ops / 4);
}

TEST(Mapper, RejectsImpossibleConfigs) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(1024);

  // Nb = 1 cannot run inter-atom stages with the row-centric mapper.
  MapperConfig config;
  config.num_buffers = 1;
  const RowCentricMapper mapper(g, params, config);
  EXPECT_THROW(mapper.map(NttJob{}), std::invalid_argument);

  // Shadow region must fit for the ablation.
  dram::DramGeometry tiny = g;
  tiny.rows_per_bank = 4;
  MapperConfig ablation;
  ablation.in_place = false;
  const RowCentricMapper no_room(tiny, params, ablation);
  EXPECT_THROW(no_room.map(NttJob{}), std::invalid_argument);
}

TEST(Mapper, StageMajorAblationCostsMoreActivations) {
  // Sec. IV.B: the vertical row-block division activates each row once for
  // all of the first log R stages; the horizontal (stage-wise) strawman
  // re-activates every row per intra-row stage.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(2048);

  MapperConfig vertical{.num_buffers = 4};
  MapperConfig horizontal{.num_buffers = 4, .row_centric = false};
  const RowCentricMapper vm(g, params, vertical);
  const RowCentricMapper hm(g, params, horizontal);

  const auto v_counts = count_commands(vm.map(NttJob{}).trace);
  const auto h_counts = count_commands(hm.map(NttJob{}).trace);

  const DataLayout layout(g, 0, 2048);
  EXPECT_EQ(v_counts.acts, ActModel::total_forward(layout, vertical));
  EXPECT_EQ(h_counts.acts, ActModel::total_forward(layout, horizontal));
  EXPECT_GT(h_counts.acts, v_counts.acts);
  // 8 rows: stage-major adds 5 extra sweeps of 8 activations each.
  EXPECT_EQ(h_counts.acts - v_counts.acts, 5u * 8u);
  // Identical compute work either way.
  EXPECT_EQ(h_counts.c1_ops, v_counts.c1_ops);
  EXPECT_EQ(h_counts.c2_ops, v_counts.c2_ops);
}

TEST(Mapper, StageMajorSingleRowDegenerates) {
  // With one row the horizontal division costs nothing extra: the row
  // simply stays open across stages.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(256);
  MapperConfig horizontal{.num_buffers = 2, .row_centric = false};
  const RowCentricMapper mapper(g, params, horizontal);
  EXPECT_EQ(count_commands(mapper.map(NttJob{}).trace).acts, 1u);
}

TEST(Mapper, NonZeroBaseRow) {
  // Polynomials need not start at row 0; twiddle selection uses relative
  // rows, so any row-aligned placement must produce a valid trace.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(1024);
  const RowCentricMapper mapper(g, params, MapperConfig{.num_buffers = 4});
  NttJob job;
  job.base_row = 1000;
  const auto mapped = mapper.map(job);
  EXPECT_NO_THROW(validate_trace(mapped.trace, g, 4));
  EXPECT_EQ(mapped.result_base_row, 1000u);
  for (const auto& cmd : mapped.trace) {
    if (cmd.kind == CmdKind::kAct) {
      EXPECT_GE(cmd.row, 1000u);
      EXPECT_LT(cmd.row, 1004u);
    }
  }
}

// ------------------------------------------------------------ naive mapper

TEST(NaiveMapper, TraceValidAndScalarHeavy) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(256);
  const NaiveMapper mapper(g, params);
  const MappedNtt mapped = mapper.map(NttJob{});

  EXPECT_NO_THROW(validate_trace(mapped.trace, g, 1));
  const auto counts = count_commands(mapped.trace);
  // Every inter-atom butterfly is scalar: (log N - 3) * N/2 of them.
  EXPECT_EQ(counts.scalar_bus, 5u * 128u);
  // ... at 3 reads + 2 writes each, plus the C1 phase traffic.
  EXPECT_EQ(counts.column_reads, 5u * 128u * 3u + 32u);
  EXPECT_EQ(counts.column_writes, 5u * 128u * 2u + 32u);
}

TEST(NaiveMapper, InterRowCostsTwoActsPerButterfly) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(512);
  const NaiveMapper mapper(g, params);
  const auto counts = count_commands(mapper.map(NttJob{}).trace);
  // Stage 9 has 256 scalar BUs across rows: ~2 ACTs each.
  const auto inter = counts.acts_by_regime.at(Regime::kInterRow);
  EXPECT_NEAR(static_cast<double>(inter), 2.0 * 256.0, 2.0);
}

TEST(NaiveMapper, RejectsInverse) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(64);
  const NaiveMapper mapper(g, params);
  NttJob job;
  job.direction = Direction::kInverse;
  EXPECT_THROW(mapper.map(job), std::invalid_argument);
}

TEST(Mapper, NonStandardGeometry) {
  // The mapping generalizes over the row width: with 16 atoms per row
  // (128-word rows) the inter-row regime starts at stage 8 instead of 9.
  dram::DramGeometry g = dram::hbm2e_geometry();
  g.atoms_per_row = 16;
  g.rows_per_bank = 1024;
  const ntt::NttParams params = ntt::NttParams::create(1024);

  MapperConfig config{.num_buffers = 4};
  const RowCentricMapper mapper(g, params, config);
  const auto mapped = mapper.map(NttJob{});
  EXPECT_NO_THROW(validate_trace(mapped.trace, g, 4));

  const auto counts = count_commands(mapped.trace);
  const DataLayout layout(g, 0, 1024);
  EXPECT_EQ(layout.rows_used(), 8u);
  // Stages 8..10 are inter-row for 128-word rows.
  EXPECT_EQ(ActModel::inter_row_stage_count(layout), 3u);
  EXPECT_EQ(counts.acts, ActModel::total_forward(layout, config));
}

// ----------------------------------------------------------- trace checker

TEST(ValidateTrace, CatchesColumnToClosedRow) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  std::vector<dram::Command> trace{
      {.kind = CmdKind::kCuRead, .row = 0, .atom = 0, .buf = 0}};
  EXPECT_THROW(validate_trace(trace, g, 2), std::logic_error);
}

TEST(ValidateTrace, CatchesWrongOpenRow) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  std::vector<dram::Command> trace{
      {.kind = CmdKind::kAct, .row = 1},
      {.kind = CmdKind::kCuRead, .row = 2, .atom = 0, .buf = 0}};
  EXPECT_THROW(validate_trace(trace, g, 2), std::logic_error);
}

TEST(ValidateTrace, CatchesUseBeforeLoad) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  std::vector<dram::Command> trace{
      {.kind = CmdKind::kParam, .param_reg = dram::ParamReg::kModulus,
       .param_value = 17},
      {.kind = CmdKind::kC1, .buf = 1}};
  EXPECT_THROW(validate_trace(trace, g, 2), std::logic_error);
}

TEST(ValidateTrace, CatchesAliasedC2) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  std::vector<dram::Command> trace{
      {.kind = CmdKind::kParam, .param_reg = dram::ParamReg::kModulus,
       .param_value = 17},
      {.kind = CmdKind::kAct, .row = 0},
      {.kind = CmdKind::kCuRead, .row = 0, .atom = 0, .buf = 1},
      {.kind = CmdKind::kC2, .buf = 1, .buf2 = 1}};
  EXPECT_THROW(validate_trace(trace, g, 2), std::logic_error);
}

TEST(ValidateTrace, CatchesScalarWriteWithoutGsaAtom) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  std::vector<dram::Command> trace{
      {.kind = CmdKind::kAct, .row = 0},
      {.kind = CmdKind::kScalarRead, .row = 0, .atom = 0, .lane = 0,
       .scalar_reg = 0},
      // GSA holds atom 0; writing into atom 1 would corrupt memory.
      {.kind = CmdKind::kScalarWrite, .row = 0, .atom = 1, .lane = 0,
       .scalar_reg = 0}};
  EXPECT_THROW(validate_trace(trace, g, 1), std::logic_error);
}

}  // namespace
}  // namespace nttpim::mapping
