#include <gtest/gtest.h>

#include "model/area.h"
#include "model/baselines.h"
#include "model/cpu_baseline.h"

namespace nttpim::model {
namespace {

TEST(AreaModel, ReproducesTable2) {
  const AreaModel model;
  // Paper Table II: (Nb, area mm^2, % of bank).
  const struct {
    std::size_t nb;
    double area;
    double percent;
  } rows[] = {{1, 0.0213, 0.504},
              {2, 0.0232, 0.550},
              {4, 0.0263, 0.624},
              {6, 0.0285, 0.676}};
  for (const auto& row : rows) {
    const auto got = model.nttpim_area(row.nb);
    EXPECT_NEAR(got.total_mm2, row.area, 0.0002) << "Nb=" << row.nb;
    EXPECT_NEAR(got.percent_of_bank, row.percent, 0.01) << "Nb=" << row.nb;
  }
}

TEST(AreaModel, LessThanHalfOfNewton) {
  // The paper's headline "less than half of Newton's" holds for the base
  // dual-buffer architecture; even the 6-buffer variant stays tiny
  // (both claims follow from Table II's own numbers).
  const AreaModel model;
  for (const std::size_t nb : {1u, 2u}) {
    EXPECT_LT(model.nttpim_area(nb).total_mm2, 0.5 * model.newton_area());
  }
  for (const std::size_t nb : {4u, 6u}) {
    EXPECT_LT(model.nttpim_area(nb).total_mm2, 0.61 * model.newton_area());
  }
}

TEST(AreaModel, MonotonicInBuffers) {
  const AreaModel model;
  double prev = 0;
  for (std::size_t nb = 1; nb <= 10; ++nb) {
    const double area = model.nttpim_area(nb).total_mm2;
    EXPECT_GT(area, prev);
    prev = area;
  }
}

TEST(AreaModel, BreakdownSumsToTotal) {
  const AreaModel model;
  const auto a = model.nttpim_area(4);
  EXPECT_NEAR(a.modmult_mm2 + a.modaddsub_mm2 + a.tfg_mm2 + a.lsu_ctrl_mm2 +
                  a.buffers_mm2,
              a.total_mm2, 1e-12);
  EXPECT_THROW(model.nttpim_area(0), std::invalid_argument);
}

TEST(Baselines, Table3DataLookup) {
  const auto& designs = table3_designs();
  ASSERT_EQ(designs.size(), 4u);

  const auto& mentt = designs[0];
  EXPECT_EQ(mentt.name, "MeNTT");
  ASSERT_TRUE(mentt.latency_at(1024).has_value());
  EXPECT_DOUBLE_EQ(*mentt.latency_at(1024), 34.3);
  EXPECT_FALSE(mentt.latency_at(4096).has_value());  // beyond its max N

  const auto& x86 = designs[2];
  ASSERT_TRUE(x86.energy_at(4096).has_value());
  EXPECT_DOUBLE_EQ(*x86.energy_at(4096), 10864.64);
}

TEST(Baselines, PaperNttPimRows) {
  const auto& nb2 = paper_nttpim(2);
  EXPECT_DOUBLE_EQ(*nb2.latency_at(1024), 38.19);
  const auto& nb6 = paper_nttpim(6);
  EXPECT_DOUBLE_EQ(*nb6.latency_at(256), 1.94);
  EXPECT_FALSE(nb6.energy_at(256).has_value());
  EXPECT_THROW(paper_nttpim(3), std::invalid_argument);
}

TEST(Baselines, FitInterpolatesReasonably) {
  // The N log N fit should pass near the reported points.
  const auto& x86 = table3_designs()[2];
  for (const std::size_t n : {256u, 1024u, 4096u}) {
    const double fitted = x86.fitted_latency_us(n);
    const double reported = *x86.latency_at(n);
    EXPECT_NEAR(fitted, reported, 0.25 * reported) << "n=" << n;
  }
  // Extrapolation grows monotonically.
  EXPECT_GT(x86.fitted_latency_us(8192), x86.fitted_latency_us(4096));
}

#if defined(__SANITIZE_ADDRESS__)
#define NTTPIM_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(undefined_behavior_sanitizer)
#define NTTPIM_TEST_SANITIZED 1
#endif
#endif

TEST(CpuBaseline, MeasurementsArePositiveAndOrdered) {
  const auto plain = measure_cpu_plain(1024, 3);
  const auto mont = measure_cpu_montgomery(1024, 3);
  EXPECT_GT(plain.latency_us, 0.0);
  EXPECT_GT(mont.latency_us, 0.0);
  EXPECT_GT(plain.energy_uj, 0.0);
  // The Montgomery path should not be slower than the plain-mod path.
  // Relative wall-clock ratios are only meaningful in optimized,
  // uninstrumented builds; sanitizers and -O0 skew the two paths
  // differently.
#if defined(NDEBUG) && !defined(NTTPIM_TEST_SANITIZED)
  EXPECT_LE(mont.latency_us, plain.latency_us * 1.5);
#endif
}

TEST(CpuBaseline, ScalesWithN) {
  const auto small = measure_cpu_plain(256, 3);
  const auto large = measure_cpu_plain(8192, 3);
  EXPECT_GT(large.latency_us, small.latency_us);
}

}  // namespace
}  // namespace nttpim::model
