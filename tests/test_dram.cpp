#include <gtest/gtest.h>

#include "dram/bank.h"
#include "dram/command.h"
#include "dram/config.h"
#include "dram/energy.h"

namespace nttpim::dram {
namespace {

// ------------------------------------------------------------------ config

TEST(Config, Table1Defaults) {
  const DramTiming t = hbm2e_timing();
  EXPECT_EQ(t.cl, 14u);
  EXPECT_EQ(t.tccd, 2u);
  EXPECT_EQ(t.trp, 14u);
  EXPECT_EQ(t.tras, 34u);
  EXPECT_EQ(t.trcd, 14u);
  EXPECT_EQ(t.twr, 16u);
  EXPECT_DOUBLE_EQ(t.freq_mhz, 1200.0);

  const DramGeometry g = hbm2e_geometry();
  EXPECT_EQ(g.atom_bytes, 32u);
  EXPECT_EQ(g.atoms_per_row, 32u);
  EXPECT_EQ(g.rows_per_bank, 32768u);
  EXPECT_EQ(g.words_per_atom(), 8u);
  EXPECT_EQ(g.words_per_row(), 256u);
}

TEST(Config, FrequencyScalingKeepsNanoseconds) {
  const DramTiming base = hbm2e_timing();
  const DramTiming slow = base.at_frequency(300.0);
  // 14 cycles @1200 = 11.67ns -> 3.5 cycles @300 -> rounds up to 4.
  EXPECT_EQ(slow.trcd, 4u);
  EXPECT_EQ(slow.trp, 4u);
  EXPECT_EQ(slow.cl, 4u);
  EXPECT_EQ(slow.tras, 9u);  // 28.33ns -> 8.5 -> 9
  EXPECT_EQ(slow.twr, 4u);
  // CU latencies are cycle-fixed (logic scales with the clock).
  EXPECT_EQ(slow.c1_latency, base.c1_latency);
  EXPECT_EQ(slow.c2_latency, base.c2_latency);
  EXPECT_EQ(slow.scalar_bu_latency, base.scalar_bu_latency);
}

TEST(Config, FrequencyIdentityAtNominal) {
  const DramTiming base = hbm2e_timing();
  const DramTiming same = base.at_frequency(1200.0);
  EXPECT_EQ(same.cl, base.cl);
  EXPECT_EQ(same.tras, base.tras);
  EXPECT_EQ(same.burst, base.burst);
}

TEST(Config, NsPerCycle) {
  const DramTiming t = hbm2e_timing();
  EXPECT_NEAR(t.ns_per_cycle(), 0.8333, 1e-3);
  EXPECT_NEAR(t.cycles_to_us(12000), 10.0, 1e-9);
  EXPECT_THROW(t.at_frequency(0), std::invalid_argument);
}

// ------------------------------------------------------------------- array

TEST(DramArray, WordAddressingRoundTrips) {
  DramGeometry g = hbm2e_geometry();
  g.rows_per_bank = 16;  // keep the test array small
  DramArray array(g);
  array.write_word(3, 7, 5, 0xdeadbeef);
  EXPECT_EQ(array.read_word(3, 7, 5), 0xdeadbeefu);
  EXPECT_EQ(array.read_word(3, 7, 4), 0u);

  // Linear addressing agrees with (row, atom, lane).
  const std::size_t linear = (3 * 32 + 7) * 8 + 5;
  EXPECT_EQ(array.read_linear(linear), 0xdeadbeefu);
  array.write_linear(linear + 1, 42);
  EXPECT_EQ(array.read_word(3, 7, 6), 42u);
}

TEST(DramArray, AtomAccess) {
  DramGeometry g = hbm2e_geometry();
  g.rows_per_bank = 4;
  DramArray array(g);
  const std::vector<std::uint32_t> atom{1, 2, 3, 4, 5, 6, 7, 8};
  array.write_atom(1, 2, atom);
  const auto view = array.read_atom(1, 2);
  EXPECT_TRUE(std::equal(view.begin(), view.end(), atom.begin()));
}

TEST(DramArray, OutOfRangeThrows) {
  DramGeometry g = hbm2e_geometry();
  g.rows_per_bank = 4;
  DramArray array(g);
  EXPECT_THROW(array.read_word(4, 0, 0), std::invalid_argument);
  EXPECT_THROW(array.read_word(0, 32, 0), std::invalid_argument);
  EXPECT_THROW(array.read_word(0, 0, 8), std::invalid_argument);
}

// ------------------------------------------------------------- bank timing

TEST(BankTiming, ActToColumnRespectsTrcd) {
  const DramTiming t = hbm2e_timing();
  BankTiming bank(t);
  bank.issue_act(100, 5);
  EXPECT_EQ(bank.open_row(), 5);
  // A column command at t=100 must be deferred to 100 + tRCD.
  EXPECT_EQ(bank.earliest_column(100), 100 + t.trcd);
  // After tRCD has long passed, t_min dominates.
  EXPECT_EQ(bank.earliest_column(200), 200u);
}

TEST(BankTiming, ColumnToColumnRespectsTccd) {
  const DramTiming t = hbm2e_timing();
  BankTiming bank(t);
  bank.issue_act(0, 1);
  const std::uint64_t first = bank.earliest_column(0);
  bank.issue_read(first);
  EXPECT_EQ(bank.earliest_column(first), first + t.tccd);
}

TEST(BankTiming, ReadDataLatencyIsClPlusBurst) {
  const DramTiming t = hbm2e_timing();
  BankTiming bank(t);
  bank.issue_act(0, 1);
  const std::uint64_t at = bank.earliest_column(0);
  EXPECT_EQ(bank.issue_read(at), at + t.cl + t.burst);
}

TEST(BankTiming, PrechargeRespectsTras) {
  const DramTiming t = hbm2e_timing();
  BankTiming bank(t);
  bank.issue_act(10, 1);
  EXPECT_EQ(bank.earliest_pre(10), 10 + t.tras);
}

TEST(BankTiming, PrechargeRespectsWriteRecovery) {
  const DramTiming t = hbm2e_timing();
  BankTiming bank(t);
  bank.issue_act(0, 1);
  const std::uint64_t wr_at = bank.earliest_column(0);
  const std::uint64_t data_end = bank.issue_write(wr_at);
  EXPECT_EQ(data_end, wr_at + t.cwl + t.burst);
  // PRE must wait until tWR after the write data finished.
  EXPECT_GE(bank.earliest_pre(0), data_end + t.twr);
}

TEST(BankTiming, ActAfterPrechargeRespectsTrp) {
  const DramTiming t = hbm2e_timing();
  BankTiming bank(t);
  bank.issue_act(0, 1);
  const std::uint64_t pre_at = bank.earliest_pre(0);
  bank.issue_pre(pre_at);
  EXPECT_EQ(bank.open_row(), BankTiming::kNoOpenRow);
  EXPECT_EQ(bank.earliest_act(0), pre_at + t.trp);
}

TEST(BankTiming, IllegalTransitionsThrow) {
  const DramTiming t = hbm2e_timing();
  BankTiming bank(t);
  EXPECT_THROW(bank.earliest_pre(0), std::logic_error);     // nothing open
  EXPECT_THROW(bank.earliest_column(0), std::logic_error);  // nothing open
  bank.issue_act(0, 3);
  EXPECT_THROW(bank.earliest_act(100), std::logic_error);  // already open
}

TEST(BankTiming, CountsCommands) {
  const DramTiming t = hbm2e_timing();
  BankTiming bank(t);
  bank.issue_act(0, 1);
  const auto c1 = bank.earliest_column(0);
  bank.issue_read(c1);
  bank.issue_write(bank.earliest_column(c1));
  bank.issue_pre(bank.earliest_pre(0));
  EXPECT_EQ(bank.act_count(), 1u);
  EXPECT_EQ(bank.read_count(), 1u);
  EXPECT_EQ(bank.write_count(), 1u);
  EXPECT_EQ(bank.pre_count(), 1u);
}

// ----------------------------------------------------------------- energy

TEST(Energy, BreakdownArithmetic) {
  EnergyParams params;
  params.act_pre_pj = 1000;
  params.column_pj = 100;
  params.bu_op_pj = 10;
  params.param_pj = 5;
  params.background_mw = 50;

  EnergyCounts counts;
  counts.activations = 4;
  counts.column_transfers = 20;
  counts.butterflies = 100;
  counts.param_loads = 2;

  const auto e = compute_energy(params, counts, /*elapsed_ns=*/2000);
  EXPECT_DOUBLE_EQ(e.activation_nj, 4.0);
  EXPECT_DOUBLE_EQ(e.column_nj, 2.0);
  EXPECT_DOUBLE_EQ(e.compute_nj, 1.0);
  EXPECT_DOUBLE_EQ(e.param_nj, 0.01);
  EXPECT_DOUBLE_EQ(e.background_nj, 100.0);  // 50 mW * 2000 ns = 100 nJ
  EXPECT_DOUBLE_EQ(e.total_nj(), 4.0 + 2.0 + 1.0 + 0.01 + 100.0);
}

// ---------------------------------------------------------------- command

TEST(Command, DescribeIsHumanReadable) {
  Command act{.kind = CmdKind::kAct, .row = 7};
  EXPECT_NE(describe(act).find("ACT"), std::string::npos);
  EXPECT_NE(describe(act).find("row=7"), std::string::npos);

  Command c2{.kind = CmdKind::kC2, .buf = 0, .buf2 = 1, .tfg_reset = true};
  const auto s = describe(c2);
  EXPECT_NE(s.find("C2"), std::string::npos);
  EXPECT_NE(s.find("tfg-reset"), std::string::npos);
}

TEST(Command, KindPredicates) {
  EXPECT_TRUE(is_column_command(CmdKind::kCuRead));
  EXPECT_TRUE(is_column_command(CmdKind::kScalarWrite));
  EXPECT_FALSE(is_column_command(CmdKind::kC1));
  EXPECT_TRUE(is_compute_command(CmdKind::kC2));
  EXPECT_TRUE(is_compute_command(CmdKind::kScalarBu));
  EXPECT_FALSE(is_compute_command(CmdKind::kAct));
}

}  // namespace
}  // namespace nttpim::dram
