// Old-vs-new scheduler equivalence: Engine::run (event-driven, cached
// per-bank earliest-issue times) must be bit-identical to
// Engine::run_reference (the retained full-rescan golden model) — same
// cycles, same per-kind counters, same energy, same commit sequence, same
// memory image. The modeled hardware numbers are the paper-reproduction
// contract; a scheduler speedup must not move them.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "mapping/mapper.h"
#include "ntt/params.h"
#include "ntt/reference.h"
#include "pim/host.h"
#include "sim/engine.h"

namespace nttpim::sim {
namespace {

using dram::Command;

struct Workload {
  dram::DramGeometry geometry;
  std::size_t num_buffers = 4;
  std::vector<Command> trace;
  std::vector<std::vector<std::uint32_t>> inputs;  ///< one per bank
};

/// Independent per-bank NTT traces merged with a seeded random interleave
/// (per-bank order preserved — the only ordering the engine contract
/// guarantees), so the schedulers face arbitrary cross-bank arrival shapes.
Workload make_workload(std::size_t banks, std::size_t n,
                       std::size_t num_buffers, bool inverse, bool negacyclic,
                       std::uint64_t seed) {
  Workload w;
  w.geometry = dram::hbm2e_geometry(banks);
  w.num_buffers = num_buffers;
  const ntt::NttParams params = ntt::NttParams::create(n);

  Rng rng(seed);
  std::vector<std::vector<Command>> per_bank(banks);
  for (std::size_t b = 0; b < banks; ++b) {
    w.inputs.push_back(rng.residues(n, params.q()));

    mapping::MapperConfig mc;
    mc.num_buffers = num_buffers;
    mc.bank = static_cast<std::uint16_t>(b);
    const mapping::RowCentricMapper mapper(w.geometry, params, mc);
    mapping::NttJob job;
    job.direction = inverse ? mapping::Direction::kInverse
                            : mapping::Direction::kForward;
    job.negacyclic = negacyclic && inverse;
    per_bank[b] = mapper.map(job).trace;
  }

  std::vector<std::size_t> heads(banks, 0);
  std::size_t remaining = 0;
  for (const auto& t : per_bank) remaining += t.size();
  while (remaining > 0) {
    const std::size_t pick = rng.next_below(banks);
    if (heads[pick] == per_bank[pick].size()) continue;
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng.next_below(4),
                              per_bank[pick].size() - heads[pick]);
    for (std::size_t i = 0; i < chunk; ++i)
      w.trace.push_back(per_bank[pick][heads[pick]++]);
    remaining -= chunk;
  }
  return w;
}

pim::PimDevice make_device(const Workload& w) {
  pim::PimDevice device(w.geometry, w.num_buffers);
  for (std::size_t b = 0; b < w.inputs.size(); ++b)
    pim::load_polynomial(device.bank(b), 0, w.inputs[b]);
  return device;
}

void expect_identical(const RunStats& fast, const RunStats& ref) {
  EXPECT_EQ(fast.cycles, ref.cycles);
  EXPECT_EQ(fast.activations, ref.activations);
  EXPECT_EQ(fast.precharges, ref.precharges);
  EXPECT_EQ(fast.column_reads, ref.column_reads);
  EXPECT_EQ(fast.column_writes, ref.column_writes);
  EXPECT_EQ(fast.compute_ops, ref.compute_ops);
  EXPECT_EQ(fast.butterflies, ref.butterflies);
  EXPECT_EQ(fast.param_loads, ref.param_loads);
  EXPECT_EQ(fast.refreshes, ref.refreshes);
  EXPECT_EQ(fast.commands, ref.commands);
  EXPECT_EQ(fast.bus_busy_cycles, ref.bus_busy_cycles);
  // Identical integer inputs through identical arithmetic: bitwise equal.
  EXPECT_EQ(fast.ns, ref.ns);
  EXPECT_EQ(fast.energy.total_nj(), ref.energy.total_nj());

  ASSERT_EQ(fast.timeline.size(), ref.timeline.size());
  for (std::size_t i = 0; i < fast.timeline.size(); ++i) {
    EXPECT_EQ(fast.timeline[i].trace_index, ref.timeline[i].trace_index);
    EXPECT_EQ(fast.timeline[i].kind, ref.timeline[i].kind);
    EXPECT_EQ(fast.timeline[i].bank, ref.timeline[i].bank);
    EXPECT_EQ(fast.timeline[i].issue, ref.timeline[i].issue);
    EXPECT_EQ(fast.timeline[i].end, ref.timeline[i].end);
  }
}

void run_both_and_compare(const Workload& w, const EngineConfig& config) {
  const Engine engine(config);
  pim::PimDevice fast_device = make_device(w);
  pim::PimDevice ref_device = make_device(w);
  const RunStats fast = engine.run(fast_device, w.trace);
  const RunStats ref = engine.run_reference(ref_device, w.trace);
  expect_identical(fast, ref);

  const std::size_t n = w.inputs.empty() ? 0 : w.inputs[0].size();
  for (std::size_t b = 0; b < w.inputs.size(); ++b)
    EXPECT_EQ(pim::read_result(fast_device.bank(b), 0, n),
              pim::read_result(ref_device.bank(b), 0, n))
        << "bank " << b;
}

TEST(SchedulerEquivalence, SingleBankWithRefresh) {
  // N = 4096 runs long enough to cross several tREFI deadlines.
  const Workload w = make_workload(1, 4096, 4, false, false, 1);
  EngineConfig config;  // refresh on by default
  config.record_timeline = true;
  run_both_and_compare(w, config);
}

TEST(SchedulerEquivalence, MultiBankInterleavedWithRefresh) {
  const Workload w = make_workload(4, 1024, 4, false, false, 2);
  EngineConfig config;
  config.record_timeline = true;
  run_both_and_compare(w, config);
}

TEST(SchedulerEquivalence, FunctionalOutputMatchesReferenceTransform) {
  const std::size_t n = 1024;
  const Workload w = make_workload(2, n, 4, false, false, 3);
  const Engine engine(EngineConfig{});
  pim::PimDevice device = make_device(w);
  engine.run(device, w.trace);
  const ntt::NttParams params = ntt::NttParams::create(n);
  for (std::size_t b = 0; b < 2; ++b) {
    auto expected = w.inputs[b];
    ntt::forward_ntt(expected, params);
    EXPECT_EQ(pim::read_result(device.bank(b), 0, n), expected);
  }
}

// Seeded sweep over bank counts, sizes, buffer counts, directions and
// interleavings — refresh always enabled, timelines compared event by
// event. Any divergence in the cached earliest-issue bookkeeping (a missed
// invalidation, a non-separable constraint) shows up as a cycle or commit
// mismatch here.
TEST(SchedulerEquivalence, SeededPropertySweep) {
  struct Case {
    std::size_t banks, n, num_buffers;
    bool inverse, negacyclic;
  };
  const Case cases[] = {
      {1, 256, 2, false, false},  {2, 256, 4, true, true},
      {3, 512, 5, false, false},  {4, 512, 2, true, false},
      {2, 1024, 4, false, false}, {4, 1024, 6, true, true},
      {8, 256, 4, false, false},  {2, 2048, 4, false, false},
  };
  std::uint64_t seed = 100;
  for (const Case& c : cases) {
    SCOPED_TRACE(::testing::Message()
                 << "banks=" << c.banks << " n=" << c.n
                 << " nb=" << c.num_buffers << " inverse=" << c.inverse
                 << " negacyclic=" << c.negacyclic << " seed=" << seed);
    const Workload w = make_workload(c.banks, c.n, c.num_buffers, c.inverse,
                                     c.negacyclic, seed++);
    EngineConfig config;
    config.record_timeline = true;
    run_both_and_compare(w, config);
  }
}

}  // namespace
}  // namespace nttpim::sim
