#include "mapping/trace_io.h"

#include <gtest/gtest.h>

#include "mapping/mapper.h"
#include "mapping/naive_mapper.h"
#include "mapping/trace.h"
#include "ntt/params.h"

namespace nttpim::mapping {
namespace {

using dram::CmdKind;
using dram::Command;

bool commands_equal(const Command& a, const Command& b) {
  return a.kind == b.kind && a.bank == b.bank && a.row == b.row &&
         a.atom == b.atom && a.lane == b.lane && a.buf == b.buf &&
         a.buf2 == b.buf2 && a.stages == b.stages &&
         a.scalar_reg == b.scalar_reg && a.tfg_reset == b.tfg_reset &&
         a.param_reg == b.param_reg && a.param_value == b.param_value &&
         a.regime == b.regime;
}

TEST(TraceIo, RowCentricRoundTrip) {
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(1024);
  const RowCentricMapper mapper(g, params, MapperConfig{.num_buffers = 4});
  const auto mapped = mapper.map(NttJob{});

  const auto text = trace_to_string(mapped.trace);
  const auto parsed = trace_from_string(text);
  ASSERT_EQ(parsed.size(), mapped.trace.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_TRUE(commands_equal(parsed[i], mapped.trace[i])) << "index " << i;
  }
}

TEST(TraceIo, NaiveMapperRoundTrip) {
  // Exercises the scalar command encodings (S_RD/S_WR/S_BU).
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(64);
  const NaiveMapper mapper(g, params);
  const auto mapped = mapper.map(NttJob{});

  const auto parsed = trace_from_string(trace_to_string(mapped.trace));
  ASSERT_EQ(parsed.size(), mapped.trace.size());
  for (std::size_t i = 0; i < parsed.size(); ++i)
    EXPECT_TRUE(commands_equal(parsed[i], mapped.trace[i])) << i;
}

TEST(TraceIo, InverseTraceRoundTrip) {
  // Exercises BUF0 and the scale regime annotation.
  const dram::DramGeometry g = dram::hbm2e_geometry();
  const ntt::NttParams params = ntt::NttParams::create(512);
  const RowCentricMapper mapper(g, params, MapperConfig{.num_buffers = 4});
  NttJob job;
  job.direction = Direction::kInverse;
  const auto mapped = mapper.map(job);

  const auto parsed = trace_from_string(trace_to_string(mapped.trace));
  ASSERT_EQ(parsed.size(), mapped.trace.size());
  bool scale_seen = false;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_TRUE(commands_equal(parsed[i], mapped.trace[i])) << i;
    scale_seen |= parsed[i].regime == dram::Regime::kScale;
  }
  EXPECT_TRUE(scale_seen);
}

TEST(TraceIo, ParsesHandWrittenText) {
  const auto trace = trace_from_string(
      "# a comment line\n"
      "ACT 0 7\n"
      "\n"
      "CU_RD 0 7 3 1 # intra-atom\n"
      "PARAM 0 tfg.step 12345 # setup\n"
      "C2 0 0 1 1\n"
      "PRE 0\n");
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[0].kind, CmdKind::kAct);
  EXPECT_EQ(trace[0].row, 7u);
  EXPECT_EQ(trace[1].kind, CmdKind::kCuRead);
  EXPECT_EQ(trace[1].buf, 1);
  EXPECT_EQ(trace[1].regime, dram::Regime::kIntraAtom);
  EXPECT_EQ(trace[2].param_reg, dram::ParamReg::kTfgStep);
  EXPECT_EQ(trace[2].param_value, 12345u);
  EXPECT_TRUE(trace[3].tfg_reset);
  EXPECT_EQ(trace[4].kind, CmdKind::kPre);
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_THROW(trace_from_string("FROB 0 1\n"), std::invalid_argument);
  EXPECT_THROW(trace_from_string("ACT 0\n"), std::invalid_argument);
  EXPECT_THROW(trace_from_string("PARAM 0 bogus.reg 5\n"),
               std::invalid_argument);
  EXPECT_THROW(trace_from_string("C2 0 0\n"), std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::mapping
