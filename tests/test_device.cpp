#include "pim/device.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ntt/params.h"
#include "ntt/reference.h"
#include "pim/host.h"

namespace nttpim::pim {
namespace {

using dram::CmdKind;
using dram::Command;
using dram::ParamReg;

dram::DramGeometry small_geometry(std::size_t banks = 1) {
  dram::DramGeometry g = dram::hbm2e_geometry(banks);
  g.rows_per_bank = 64;
  return g;
}

TEST(PimBank, ActPreTracksFunctionalRow) {
  PimBank bank(small_geometry(), 2);
  EXPECT_EQ(bank.functional_open_row(), -1);
  bank.apply({.kind = CmdKind::kAct, .row = 3});
  EXPECT_EQ(bank.functional_open_row(), 3);
  bank.apply({.kind = CmdKind::kPre});
  EXPECT_EQ(bank.functional_open_row(), -1);
}

TEST(PimBank, DoubleActOrPreThrows) {
  PimBank bank(small_geometry(), 2);
  bank.apply({.kind = CmdKind::kAct, .row = 3});
  EXPECT_THROW(bank.apply({.kind = CmdKind::kAct, .row = 4}),
               std::logic_error);
  bank.apply({.kind = CmdKind::kPre});
  EXPECT_THROW(bank.apply({.kind = CmdKind::kPre}), std::logic_error);
}

TEST(PimBank, CuReadWriteMoveAtoms) {
  PimBank bank(small_geometry(), 2);
  const std::vector<std::uint32_t> atom{10, 20, 30, 40, 50, 60, 70, 80};
  bank.array().write_atom(5, 3, atom);

  bank.apply({.kind = CmdKind::kAct, .row = 5});
  bank.apply({.kind = CmdKind::kCuRead, .row = 5, .atom = 3, .buf = 1});
  EXPECT_TRUE(std::equal(atom.begin(), atom.end(),
                         bank.buffer(1).words.begin()));

  bank.apply({.kind = CmdKind::kCuWrite, .row = 5, .atom = 4, .buf = 1});
  const auto copied = bank.array().read_atom(5, 4);
  EXPECT_TRUE(std::equal(atom.begin(), atom.end(), copied.begin()));
}

TEST(PimBank, RowMismatchThrows) {
  PimBank bank(small_geometry(), 2);
  bank.apply({.kind = CmdKind::kAct, .row = 5});
  EXPECT_THROW(
      bank.apply({.kind = CmdKind::kCuRead, .row = 6, .atom = 0, .buf = 0}),
      std::logic_error);
}

TEST(PimBank, BufferIndexBeyondNbThrows) {
  PimBank bank(small_geometry(), 2);
  bank.apply({.kind = CmdKind::kAct, .row = 0});
  EXPECT_THROW(
      bank.apply({.kind = CmdKind::kCuRead, .row = 0, .atom = 0, .buf = 2}),
      std::invalid_argument);
}

TEST(PimBank, BufZeroClears) {
  PimBank bank(small_geometry(), 3);
  bank.array().write_atom(0, 0, std::vector<std::uint32_t>(8, 9));
  bank.apply({.kind = CmdKind::kAct, .row = 0});
  bank.apply({.kind = CmdKind::kCuRead, .row = 0, .atom = 0, .buf = 2});
  bank.apply({.kind = CmdKind::kBufZero, .buf = 2});
  for (const auto w : bank.buffer(2).words) EXPECT_EQ(w, 0u);
}

TEST(PimBank, ScalarReadModifyWrite) {
  PimBank bank(small_geometry(), 1);
  bank.apply({.kind = CmdKind::kParam,
              .param_reg = ParamReg::kModulus,
              .param_value = 97});
  bank.array().write_atom(2, 1, {{11, 22, 33, 44, 55, 66, 77, 88}});

  bank.apply({.kind = CmdKind::kAct, .row = 2});
  bank.apply({.kind = CmdKind::kScalarRead,
              .row = 2,
              .atom = 1,
              .lane = 4,
              .scalar_reg = 0});
  EXPECT_EQ(bank.cu().scalar_reg(0), 55u);

  // Overwrite lane 4 with register 0's value after clearing it via a BU on
  // (55, 55) with w=1: reg0 = 110 mod 97 = 13.
  bank.apply({.kind = CmdKind::kScalarRead,
              .row = 2,
              .atom = 1,
              .lane = 4,
              .scalar_reg = 1});
  bank.apply({.kind = CmdKind::kScalarBu, .tfg_reset = true});
  bank.apply({.kind = CmdKind::kScalarWrite,
              .row = 2,
              .atom = 1,
              .lane = 4,
              .scalar_reg = 0});
  EXPECT_EQ(bank.array().read_word(2, 1, 4), 13u);
  // Untouched lanes survive the read-modify-write.
  EXPECT_EQ(bank.array().read_word(2, 1, 0), 11u);
  EXPECT_EQ(bank.array().read_word(2, 1, 7), 88u);
}

TEST(PimDevice, IndependentBanks) {
  PimDevice device(small_geometry(4), 2);
  EXPECT_EQ(device.num_banks(), 4u);
  device.bank(0).array().write_word(0, 0, 0, 111);
  device.bank(3).array().write_word(0, 0, 0, 333);
  EXPECT_EQ(device.bank(0).array().read_word(0, 0, 0), 111u);
  EXPECT_EQ(device.bank(1).array().read_word(0, 0, 0), 0u);
  EXPECT_EQ(device.bank(3).array().read_word(0, 0, 0), 333u);
  EXPECT_THROW(device.bank(4), std::invalid_argument);
}

TEST(Host, LoadAppliesBitReversal) {
  PimDevice device(small_geometry(), 2);
  const ntt::NttParams p = ntt::NttParams::create(16);
  Rng rng(5);
  const auto poly = rng.residues(16, p.q());
  load_polynomial(device.bank(0), 0, poly);

  for (std::uint32_t i = 0; i < 16; ++i) {
    const auto slot = bit_reverse(i, 4);
    EXPECT_EQ(device.bank(0).array().read_linear(slot), poly[i]);
  }
}

TEST(Host, ReadResultReturnsStorageOrder) {
  PimDevice device(small_geometry(), 2);
  std::vector<std::uint32_t> data(512);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint32_t>(i * 7);
  // Write linearly at rows 2..3 and read back through the host helper.
  for (std::size_t i = 0; i < data.size(); ++i)
    device.bank(0).array().write_linear(2 * 256 + i, data[i]);
  EXPECT_EQ(read_result(device.bank(0), 2, 512), data);
}

TEST(Host, RoundTripLoadThenRead) {
  // load_polynomial followed by read_result returns the bit-reversed poly;
  // reversing again restores the original (involution).
  PimDevice device(small_geometry(), 2);
  const ntt::NttParams p = ntt::NttParams::create(64);
  Rng rng(6);
  const auto poly = rng.residues(64, p.q());
  load_polynomial(device.bank(0), 1, poly);
  auto stored = read_result(device.bank(0), 1, 64);
  bit_reverse_permute(stored);
  EXPECT_EQ(stored, poly);
}

}  // namespace
}  // namespace nttpim::pim
