// Deterministic concurrency tests of the async NTT serving runtime.
//
// Every test is sleep-free: synchronization is futures, drain(), and the
// pause()/resume() staging hook (submit a backlog while wave forming is
// gated, then open the valve), so occupancy and backpressure assertions
// are exact rather than timing-dependent.
#include <atomic>
#include <future>
#include <latch>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fhe/cpu_backend.h"
#include "fhe/pim_backend.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "service/admission.h"
#include "service/dispatcher.h"
#include "service/ntt_service.h"
#include "service/wave_former.h"
#include "sync/mutex.h"

namespace {

using namespace nttpim;
using service::NttService;
using service::ServiceConfig;

std::shared_ptr<const ntt::NttParams> make_params(std::size_t n = 256,
                                                  unsigned bits = 30) {
  return std::make_shared<const ntt::NttParams>(ntt::NttParams::create(n, bits));
}

std::chrono::microseconds hour() { return std::chrono::microseconds(3600u * 1000000u); }

service::SubmitOptions inv(bool inverse) {
  service::SubmitOptions options;
  options.inverse = inverse;
  return options;
}

// (a) N client threads x M requests, mixed directions and sizes, must be
// bit-identical to a sequential CpuBackend run of the same inputs.
TEST(ServiceE2E, ConcurrentClientsMatchCpuBackend) {
  const auto p256 = make_params(256);
  const auto p512 = make_params(512, 29);

  ServiceConfig cfg;
  cfg.backend.shards = 2;
  cfg.backend.banks_per_shard = 4;
  cfg.former.flush_window = std::chrono::microseconds(200);
  NttService svc(cfg);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRequests = 8;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      fhe::CpuBackend cpu;
      for (std::size_t r = 0; r < kRequests; ++r) {
        const auto& params = (r % 2 == 0) ? p256 : p512;
        const bool inverse = r % 3 == 0;
        auto poly = rng.residues(params->n(), params->q());
        auto expected = poly;
        if (inverse)
          cpu.inverse(expected, *params);
        else
          cpu.forward(expected, *params);
        if (svc.submit(std::move(poly), params, inv(inverse)).get() !=
            expected)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  svc.drain();

  EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0u);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, kThreads * kRequests);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

// (a') Negacyclic products through the service match the CPU reference
// pipeline (forward, pointwise, inverse).
TEST(ServiceE2E, MultiplyMatchesCpuReference) {
  const auto params = make_params(256);
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  NttService svc(cfg);

  Rng rng(7);
  for (int i = 0; i < 3; ++i) {
    auto a = rng.residues(params->n(), params->q());
    auto b = rng.residues(params->n(), params->q());
    fhe::CpuBackend cpu;
    auto fa = a;
    auto fb = b;
    cpu.forward(fa, *params);
    cpu.forward(fb, *params);
    auto expected = ntt::pointwise_mul(fa, fb, params->q());
    cpu.inverse(expected, *params);

    EXPECT_EQ(svc.submit_multiply(std::move(a), std::move(b), params).get(),
              expected);
  }
  svc.drain();  // a future resolves before the wave's counters land
  const auto stats = svc.stats();
  // Each multiply wave runs a forward pass (2 items) and an inverse pass.
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GE(stats.engine_passes, 2u);
}

// (b) A staged backlog must coalesce: occupancy is exactly num_banks when
// the backlog is a multiple of the wave size. pause() + huge window makes
// this deterministic — no sleeps, no scheduling luck.
TEST(ServiceE2E, WaveOccupancyAboveOneUnderConcurrentLoad) {
  const auto params = make_params(256);
  ServiceConfig cfg;
  cfg.backend.shards = 1;
  cfg.backend.banks_per_shard = 8;
  cfg.former.flush_window = hour();  // only size (or shutdown) flushes
  cfg.former.start_paused = true;
  NttService svc(cfg);

  constexpr std::size_t kBacklog = 16;  // 2 full waves of 8
  Rng rng(3);
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  for (std::size_t i = 0; i < kBacklog; ++i)
    futures.push_back(svc.submit(rng.residues(params->n(), params->q()),
                                 params));
  EXPECT_EQ(svc.stats().pending, kBacklog);

  svc.resume();
  for (auto& f : futures) f.get();
  svc.drain();

  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, kBacklog);
  EXPECT_EQ(stats.engine_passes, 2u);
  EXPECT_EQ(stats.batch_items, kBacklog);
  EXPECT_DOUBLE_EQ(stats.mean_wave_occupancy, 8.0);
  EXPECT_GT(stats.mean_wave_occupancy, 1.0);
}

// (c) shutdown() drains: every accepted request completes, even the ones
// still queued behind a paused former when shutdown is called.
TEST(ServiceE2E, ShutdownDrainsQueue) {
  const auto params = make_params(256);
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  cfg.former.flush_window = hour();
  cfg.former.start_paused = true;
  NttService svc(cfg);

  constexpr std::size_t kBacklog = 10;  // 2.5 waves; the tail is partial
  Rng rng(5);
  std::vector<std::vector<std::uint32_t>> inputs;
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  for (std::size_t i = 0; i < kBacklog; ++i) {
    inputs.push_back(rng.residues(params->n(), params->q()));
    futures.push_back(svc.submit(inputs.back(), params));
  }

  svc.shutdown();  // never resumed: shutdown itself must open the valve

  fhe::CpuBackend cpu;
  for (std::size_t i = 0; i < kBacklog; ++i) {
    auto expected = inputs[i];
    cpu.forward(expected, *params);
    EXPECT_EQ(futures[i].get(), expected);
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, kBacklog);
  EXPECT_EQ(stats.pending, 0u);
}

// (d) Backpressure under kReject: the overflowing request's future fails
// with QueueFullError; everything accepted still completes.
TEST(ServiceUnit, RejectPolicySurfacesAsFailedFuture) {
  const auto params = make_params(256);
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  cfg.former.queue_capacity = 4;
  cfg.former.overflow = service::OverflowPolicy::kReject;
  cfg.former.flush_window = hour();
  cfg.former.start_paused = true;  // nothing drains: the queue must fill
  NttService svc(cfg);

  Rng rng(11);
  std::vector<std::future<std::vector<std::uint32_t>>> accepted;
  for (int i = 0; i < 4; ++i)
    accepted.push_back(
        svc.submit(rng.residues(params->n(), params->q()), params));

  auto overflow = svc.submit(rng.residues(params->n(), params->q()), params);
  EXPECT_THROW(overflow.get(), service::QueueFullError);

  const auto stats_before = svc.stats();
  EXPECT_EQ(stats_before.rejected, 1u);
  EXPECT_EQ(stats_before.pending, 4u);

  svc.resume();
  for (auto& f : accepted) EXPECT_NO_THROW(f.get());
  svc.shutdown();
  EXPECT_EQ(svc.stats().completed, 4u);
}

// Submissions racing shutdown fail cleanly instead of hanging.
TEST(ServiceUnit, SubmitAfterShutdownFailsFuture) {
  const auto params = make_params(256);
  NttService svc(ServiceConfig{});
  svc.shutdown();
  auto future = svc.submit(Rng(1).residues(params->n(), params->q()), params);
  EXPECT_THROW(future.get(), service::ServiceStoppedError);
  EXPECT_EQ(svc.stats().rejected, 1u);
}

// Fire-and-forget callbacks: success delivers a result, backpressure
// delivers the error — on a shard (or submitting) thread, never lost.
TEST(ServiceUnit, CallbackVariantDeliversResultAndErrors) {
  const auto params = make_params(256);
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  NttService svc(cfg);

  Rng rng(21);
  auto poly = rng.residues(params->n(), params->q());
  auto expected = poly;
  fhe::CpuBackend cpu;
  cpu.forward(expected, *params);

  std::latch done(1);
  std::atomic<bool> ok{false};
  svc.submit(std::move(poly), params, inv(false),
             [&](std::vector<std::uint32_t>&& result,
                 std::exception_ptr error) {
               // Relaxed flag: the latch publishes it to the waiter.
               ok.store(!error && result == expected,
                        std::memory_order_relaxed);
               done.count_down();
             });
  done.wait();
  EXPECT_TRUE(ok.load(std::memory_order_relaxed));

  svc.shutdown();
  std::latch failed(1);
  std::atomic<bool> saw_error{false};
  svc.submit(rng.residues(params->n(), params->q()), params, inv(false),
             [&](std::vector<std::uint32_t>&&, std::exception_ptr error) {
               saw_error.store(error != nullptr, std::memory_order_relaxed);
               failed.count_down();
             });
  failed.wait();
  EXPECT_TRUE(saw_error.load(std::memory_order_relaxed));
}

// Synchronous argument validation happens at the submit() call site.
TEST(ServiceUnit, SubmitValidatesArguments) {
  const auto params = make_params(256);
  NttService svc(ServiceConfig{});
  EXPECT_THROW(svc.submit({1, 2, 3}, params), std::invalid_argument);
  EXPECT_THROW(svc.submit(std::vector<std::uint32_t>(256, 0), nullptr),
               std::invalid_argument);
  EXPECT_THROW(svc.submit_multiply(std::vector<std::uint32_t>(256, 0),
                                   std::vector<std::uint32_t>(8, 0), params),
               std::invalid_argument);
  ServiceConfig zero_shards;
  zero_shards.backend.shards = 0;
  EXPECT_THROW(NttService{zero_shards}, std::invalid_argument);
}

// reset_stats() starts a clean epoch without disturbing in-flight
// bookkeeping: pending backlog survives, counters restart at zero.
TEST(ServiceUnit, ResetStatsStartsCleanEpoch) {
  const auto params = make_params(256);
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  cfg.former.flush_window = hour();
  cfg.former.start_paused = true;
  NttService svc(cfg);

  Rng rng(31);
  auto warm = svc.submit(rng.residues(params->n(), params->q()), params);
  auto staged = svc.submit(rng.residues(params->n(), params->q()), params);
  svc.reset_stats();

  auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 2u);  // still pending: carried into the epoch
  EXPECT_EQ(stats.pending, 2u);
  EXPECT_EQ(stats.completed, 0u);

  // A 2-item backlog never reaches the 4-item flush size and the window is
  // an hour: shutdown() is what flushes it (close -> immediate drain).
  svc.shutdown();
  warm.get();
  staged.get();
  stats = svc.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.pending, 0u);
}

// Regression (PR 5): nearest-rank percentiles. The old floor() rank was
// off by one — p50 over [1..100] returned the 51st value and p50 of a
// 2-sample window returned the max.
TEST(ServiceUnit, PercentilesUseNearestRank) {
  service::LatencyRecorder recorder;
  for (int v = 100; v >= 1; --v) recorder.record(v);  // order must not matter
  auto s = recorder.summary();
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(s.p95_us, 95.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);
  EXPECT_DOUBLE_EQ(s.max_us, 100.0);

  recorder.reset();
  recorder.record(20);
  recorder.record(10);
  s = recorder.summary();
  EXPECT_DOUBLE_EQ(s.p50_us, 10.0);  // the min, not the max
  EXPECT_DOUBLE_EQ(s.p95_us, 20.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 20.0);

  recorder.reset();
  recorder.record(7);
  s = recorder.summary();
  EXPECT_DOUBLE_EQ(s.p50_us, 7.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 7.0);
}

// Regression (PR 5): the wave-former's timeout flush must be judged
// against the *current* front's deadline. The old code computed the
// deadline once per wait; a waiter whose wave was taken by another
// consumer then timed out against the departed front's deadline and
// flushed fresh requests early, shrinking coalesced waves. Two consumers
// and an injected clock make the schedule exact: no sleeps, no real time.
TEST(ServiceUnit, WaveFormerTimeoutUsesCurrentFrontDeadline) {
  std::atomic<std::int64_t> fake_us{0};
  service::WaveFormer::Config cfg;
  cfg.capacity_items = 16;
  cfg.max_wave_items = 2;
  cfg.flush_window = std::chrono::microseconds(100);
  cfg.clock = [&] {
    return service::ServiceClock::time_point(
        std::chrono::microseconds(fake_us.load(std::memory_order_relaxed)));
  };
  service::WaveFormer former(cfg);

  sync::Mutex waves_mu;
  std::vector<std::vector<std::uint32_t>> waves;  // request tags per wave
  auto consume = [&] {
    for (;;) {
      auto wave = former.next_wave();
      if (wave.empty()) return;
      std::vector<std::uint32_t> tags;
      for (const auto& r : wave) tags.push_back(r.a[0]);
      {
        const sync::MutexLock lk(waves_mu);
        waves.push_back(std::move(tags));
      }
      // Promises resolve only after the wave is published, so a test
      // thread blocked on a future knows `waves` already has its wave.
      for (auto& r : wave) r.promise.set_value({});
    }
  };
  std::thread c1(consume);
  std::thread c2(consume);

  auto submit = [&](std::uint32_t tag) {
    service::Request r;
    r.a = {tag};
    auto f = r.promise.get_future();
    EXPECT_EQ(former.submit(std::move(r)),
              service::WaveFormer::SubmitResult::kAccepted);
    return f;
  };

  // Front 0 flushes alone, but only once its own window has elapsed.
  auto f0 = submit(0);
  fake_us.store(100, std::memory_order_relaxed);
  former.tick();
  f0.get();

  // Fresh front 1 (enqueued at t=100) must NOT flush before t=200 even
  // though a consumer just serviced a deadline at t=100: request 2
  // completes the full wave instead.
  auto f1 = submit(1);
  auto f2 = submit(2);
  f1.get();
  f2.get();

  former.close();
  c1.join();
  c2.join();

  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[0], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(waves[1], (std::vector<std::uint32_t>{1, 2}));
}

namespace former_test {

// Single-consumer fake-clock harness: submit tagged requests (optionally
// deadlined) before the consumer starts, so every cut is deterministic.
struct Harness {
  explicit Harness(service::WaveFormer::Config cfg) {
    cfg.clock = [this] {
      return service::ServiceClock::time_point(
          std::chrono::microseconds(fake_us.load(std::memory_order_relaxed)));
    };
    former.emplace(cfg);
  }

  std::future<std::vector<std::uint32_t>> submit(std::uint32_t tag,
                                std::optional<std::int64_t> deadline_us = {},
                                int priority = 0) {
    service::Request r;
    r.a = {tag};
    r.qos.priority = priority;
    if (deadline_us)
      r.qos.deadline = service::ServiceClock::time_point(
          std::chrono::microseconds(*deadline_us));
    auto f = r.promise.get_future();
    EXPECT_EQ(former->submit(std::move(r)),
              service::WaveFormer::SubmitResult::kAccepted);
    return f;
  }

  /// Drain every formed wave into `waves` (tags, in cut order).
  std::vector<std::vector<std::uint32_t>> run_consumer_to_close() {
    std::vector<std::vector<std::uint32_t>> waves;
    for (;;) {
      auto wave = former->next_wave();
      if (wave.empty()) return waves;
      std::vector<std::uint32_t> tags;
      for (auto& r : wave) {
        tags.push_back(r.a[0]);
        r.promise.set_value({});
      }
      waves.push_back(std::move(tags));
    }
  }

  std::atomic<std::int64_t> fake_us{0};
  std::optional<service::WaveFormer> former;
};

}  // namespace former_test

// EDF forming: with more pending than fits one wave, the cut takes
// requests by (deadline, priority desc, arrival), not arrival order; the
// deadline-less remainder flushes by the plain window.
TEST(ServiceUnit, WaveFormerEdfCutsByDeadlineThenPriorityThenArrival) {
  service::WaveFormer::Config cfg;
  cfg.capacity_items = 16;
  cfg.max_wave_items = 3;
  cfg.flush_window = std::chrono::microseconds(100);
  cfg.edf = true;
  former_test::Harness h(cfg);

  // Arrival order 0..4; urgency says otherwise: 3 (earliest deadline),
  // then 1 (later deadline), then 4 (no deadline but highest priority).
  auto f0 = h.submit(0);
  auto f1 = h.submit(1, /*deadline_us=*/1000);
  auto f2 = h.submit(2);
  auto f3 = h.submit(3, /*deadline_us=*/500);
  auto f4 = h.submit(4, /*deadline_us=*/std::nullopt, /*priority=*/7);

  std::thread consumer;
  std::vector<std::vector<std::uint32_t>> waves;
  consumer = std::thread([&] { waves = h.run_consumer_to_close(); });
  f3.get();  // first wave is out once the most-urgent request resolves
  f1.get();
  f4.get();

  // Remainder {0, 2} has no deadline: it waits out the full window
  // (enqueued at t=0) and flushes in arrival order.
  h.fake_us.store(100, std::memory_order_relaxed);
  h.former->tick();
  f0.get();
  f2.get();

  h.former->close();
  consumer.join();
  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[0], (std::vector<std::uint32_t>{3, 1, 4}));
  EXPECT_EQ(waves[1], (std::vector<std::uint32_t>{0, 2}));
}

// EDF forming: a pending deadline earlier than the front's window expiry
// tightens the flush deadline, so a latency-critical request never waits
// out the coalescing window behind bulk traffic. (The test completing at
// fake time 40 — well before the 100 us window — is the assertion.)
TEST(ServiceUnit, WaveFormerEdfDeadlineTightensFlushWindow) {
  service::WaveFormer::Config cfg;
  cfg.capacity_items = 16;
  cfg.max_wave_items = 16;  // never fills: only a flush can cut
  cfg.flush_window = std::chrono::microseconds(100);
  cfg.edf = true;
  former_test::Harness h(cfg);

  auto f0 = h.submit(0);                        // bulk, window expires at 100
  auto f1 = h.submit(1, /*deadline_us=*/40);    // tightens the flush to 40

  std::thread consumer;
  std::vector<std::vector<std::uint32_t>> waves;
  consumer = std::thread([&] { waves = h.run_consumer_to_close(); });
  h.fake_us.store(40, std::memory_order_relaxed);
  h.former->tick();
  f0.get();
  f1.get();

  h.former->close();
  consumer.join();
  ASSERT_EQ(waves.size(), 1u);
  // One wave, EDF order: the deadlined request leads.
  EXPECT_EQ(waves[0], (std::vector<std::uint32_t>{1, 0}));
}

// Classless regression: with edf off (the num_classes = 1 configuration),
// deadlines and priorities travel inert — cuts are exact FIFO and the
// flush deadline is the front's window alone, deadlines notwithstanding.
TEST(ServiceUnit, WaveFormerWithoutEdfIgnoresDeadlines) {
  service::WaveFormer::Config cfg;
  cfg.capacity_items = 16;
  cfg.max_wave_items = 2;
  cfg.flush_window = std::chrono::microseconds(100);
  cfg.edf = false;
  former_test::Harness h(cfg);

  auto f0 = h.submit(0);
  auto f1 = h.submit(1, /*deadline_us=*/40);  // would lead under EDF
  auto f2 = h.submit(2, /*deadline_us=*/30, /*priority=*/9);

  std::thread consumer;
  std::vector<std::vector<std::uint32_t>> waves;
  consumer = std::thread([&] { waves = h.run_consumer_to_close(); });
  f0.get();
  f1.get();
  // The deadlined leftover must wait out the *window* (no EDF tightening):
  // fake time 50 is past both deadlines but must not flush it.
  h.fake_us.store(50, std::memory_order_relaxed);
  h.former->tick();
  h.fake_us.store(100, std::memory_order_relaxed);
  h.former->tick();
  f2.get();

  h.former->close();
  consumer.join();
  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[0], (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(waves[1], (std::vector<std::uint32_t>{2}));
}

// Token-bucket arithmetic to exact counts under a fake clock: a fresh
// bucket admits its burst, refills continuously at rate_per_sec, rate 0
// never refills, burst <= 0 and unconfigured tenants are unlimited.
TEST(ServiceUnit, AdmissionTokenBucketRefillExactness) {
  using Decision = service::AdmissionController::Decision;
  std::atomic<std::int64_t> fake_us{0};
  service::AdmissionController::Config cfg;
  cfg.tenants = {
      {.rate_per_sec = 2.0, .burst = 2.0},  // tenant 0: 2-deep, 2/sec
      {.rate_per_sec = 0.0, .burst = 3.0},  // tenant 1: hard cap of 3
      {.rate_per_sec = 5.0, .burst = 0.0},  // tenant 2: unlimited
  };
  cfg.clock = [&] {
    return service::ServiceClock::time_point(
        std::chrono::microseconds(fake_us.load(std::memory_order_relaxed)));
  };
  service::AdmissionController adm(std::move(cfg));

  // Tenant 0: the initial burst admits exactly 2, then sheds.
  EXPECT_EQ(adm.admit(0), Decision::kAdmit);
  EXPECT_EQ(adm.admit(0), Decision::kAdmit);
  EXPECT_EQ(adm.admit(0), Decision::kShed);
  EXPECT_DOUBLE_EQ(adm.tokens(0), 0.0);

  // 500 ms at 2/sec refills exactly one token; 250 ms more only half.
  fake_us.store(500000, std::memory_order_relaxed);
  EXPECT_EQ(adm.admit(0), Decision::kAdmit);
  EXPECT_EQ(adm.admit(0), Decision::kShed);
  fake_us.store(750000, std::memory_order_relaxed);
  EXPECT_EQ(adm.admit(0), Decision::kShed);
  EXPECT_DOUBLE_EQ(adm.tokens(0), 0.5);
  // A long idle stretch refills to the burst cap, never beyond.
  fake_us.store(10000000, std::memory_order_relaxed);
  EXPECT_DOUBLE_EQ(adm.tokens(0), 2.0);

  // Tenant 1: rate 0 is a deterministic lifetime cap of `burst`.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(adm.admit(1), Decision::kAdmit);
  EXPECT_EQ(adm.admit(1), Decision::kShed);
  fake_us.store(20000000, std::memory_order_relaxed);
  EXPECT_EQ(adm.admit(1), Decision::kShed);

  // Tenant 2 (burst <= 0) and tenant 9 (unconfigured) always admit.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(adm.admit(2), Decision::kAdmit);
    EXPECT_EQ(adm.admit(9), Decision::kAdmit);
  }
}

namespace dispatch_test {

std::vector<service::Request> tagged_wave(std::uint32_t tag) {
  std::vector<service::Request> wave(1);
  wave[0].a = {tag};
  wave[0].seq = tag;  // arrival stamp: tags are dispatched in order
  return wave;
}

// A wave whose (single) request carries a deadline, for the QoS paths.
std::vector<service::Request> deadlined_wave(std::uint32_t tag,
                                             std::int64_t deadline_us) {
  auto wave = tagged_wave(tag);
  wave[0].qos.deadline = service::ServiceClock::time_point(
      std::chrono::microseconds(deadline_us));
  return wave;
}

std::uint32_t tag_of(const std::vector<service::Request>& wave) {
  return wave.at(0).a.at(0);
}

}  // namespace dispatch_test

// An idle shard steals the *oldest* wave of the most-loaded peer; waves
// from its own queue are not counted as steals. Single-threaded driving
// of the Dispatcher makes every assignment and steal exact.
TEST(ServiceUnit, DispatcherStealsOldestWaveFromLoadedPeer) {
  service::Dispatcher::Config cfg;
  cfg.shards.resize(2);
  cfg.queue_capacity_waves = 4;
  cfg.cost_aware = false;  // round-robin: tags 0,2 -> shard 0; 1,3 -> shard 1
  cfg.work_stealing = true;
  service::Dispatcher dispatcher(
      cfg, [](std::size_t, std::vector<service::Request>&) {
        return std::uint64_t{100};
      });

  for (std::uint32_t tag = 0; tag < 4; ++tag)
    dispatcher.dispatch(dispatch_test::tagged_wave(tag));
  EXPECT_EQ(dispatcher.backlog_cycles(0), 200u);
  EXPECT_EQ(dispatcher.backlog_cycles(1), 200u);

  // Shard 0 drains its own queue first (FIFO), then steals shard 1's
  // waves oldest-first.
  const std::uint32_t expected_tags[] = {0, 2, 1, 3};
  const bool expected_stolen[] = {false, false, true, true};
  for (int i = 0; i < 4; ++i) {
    auto next = dispatcher.next_wave_for(0);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(dispatch_test::tag_of(next->requests), expected_tags[i]);
    EXPECT_EQ(next->stolen, expected_stolen[i]);
    dispatcher.complete(0, next->estimated_cycles);
  }
  EXPECT_EQ(dispatcher.backlog_cycles(0), 0u);
  EXPECT_EQ(dispatcher.backlog_cycles(1), 0u);

  dispatcher.close();
  EXPECT_FALSE(dispatcher.next_wave_for(0).has_value());
  EXPECT_FALSE(dispatcher.next_wave_for(1).has_value());
}

// Cost-aware assignment sends each wave to the smallest estimated
// backlog, so cheap waves pile onto the shard not stuck behind an
// expensive one; after close(), a drain take from a peer is not a steal.
TEST(ServiceUnit, DispatcherCostAwareAssignsLeastBacklog) {
  service::Dispatcher::Config cfg;
  cfg.shards.resize(2);
  cfg.cost_aware = true;
  cfg.work_stealing = false;
  service::Dispatcher dispatcher(
      cfg, [](std::size_t, std::vector<service::Request>& wave) {
        return dispatch_test::tag_of(wave) == 0 ? std::uint64_t{1000}
                                                : std::uint64_t{100};
      });

  dispatcher.dispatch(dispatch_test::tagged_wave(0));  // 1000 -> shard 0
  dispatcher.dispatch(dispatch_test::tagged_wave(1));  // 100  -> shard 1
  dispatcher.dispatch(dispatch_test::tagged_wave(2));  // 100  -> shard 1
  EXPECT_EQ(dispatcher.backlog_cycles(0), 1000u);
  EXPECT_EQ(dispatcher.backlog_cycles(1), 200u);

  auto first = dispatcher.next_wave_for(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(dispatch_test::tag_of(first->requests), 1u);
  EXPECT_FALSE(first->stolen);
  auto second = dispatcher.next_wave_for(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(dispatch_test::tag_of(second->requests), 2u);

  // Stealing is off, so shard 1 would block on shard 0's wave — but after
  // close() it drains the leftover as a reassignment, not a steal.
  dispatcher.close();
  auto drained = dispatcher.next_wave_for(1);
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(dispatch_test::tag_of(drained->requests), 0u);
  EXPECT_FALSE(drained->stolen);
}

// close() must release a dispatch blocked on a full shard queue by
// waiving the capacity bound: every accepted wave still lands and drains.
TEST(ServiceUnit, DispatcherCloseReleasesBlockedDispatch) {
  service::Dispatcher::Config cfg;
  cfg.shards.resize(1);
  cfg.queue_capacity_waves = 1;
  service::Dispatcher dispatcher(
      cfg, [](std::size_t, std::vector<service::Request>&) {
        return std::uint64_t{1};
      });

  dispatcher.dispatch(dispatch_test::tagged_wave(0));  // fills the slot
  std::thread blocked(
      [&] { dispatcher.dispatch(dispatch_test::tagged_wave(1)); });
  // Whichever side of the space wait close() lands on, the second wave
  // must be enqueued past the bound rather than stuck or dropped.
  dispatcher.close();
  blocked.join();

  auto first = dispatcher.next_wave_for(0);
  auto second = dispatcher.next_wave_for(0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(dispatch_test::tag_of(first->requests), 0u);
  EXPECT_EQ(dispatch_test::tag_of(second->requests), 1u);
  EXPECT_FALSE(dispatcher.next_wave_for(0).has_value());
}

// Regression: a shard's total and per-channel backlog gauges must come
// from one lock acquisition (backlog_snapshot), so they always tile —
// total == sum over channels — instead of the separate backlog_cycles()
// calls stats() used to make, between which a wave could land or retire.
TEST(ServiceUnit, DispatcherBacklogSnapshotTiles) {
  service::Dispatcher::Config cfg;
  cfg.shards.resize(1);
  cfg.shards[0].channels = 2;
  cfg.queue_capacity_waves = 4;
  cfg.cost_aware = true;  // least-backlogged channel: 100 -> ch0, 60 -> ch1
  service::Dispatcher dispatcher(
      cfg, [](std::size_t, std::vector<service::Request>& wave) {
        return std::uint64_t{dispatch_test::tag_of(wave) == 0 ? 100u : 60u};
      });
  dispatcher.dispatch(dispatch_test::tagged_wave(0));
  dispatcher.dispatch(dispatch_test::tagged_wave(1));
  dispatcher.dispatch(dispatch_test::tagged_wave(2));  // 60 -> lighter ch1

  const auto snap = dispatcher.backlog_snapshot(0);
  ASSERT_EQ(snap.channel_cycles.size(), 2u);
  EXPECT_EQ(snap.total_cycles, 220u);
  EXPECT_EQ(snap.channel_cycles[0] + snap.channel_cycles[1],
            snap.total_cycles);
  // Consistent with the single-gauge accessors under quiescence.
  EXPECT_EQ(snap.total_cycles, dispatcher.backlog_cycles(0));
  EXPECT_EQ(snap.channel_cycles[0], dispatcher.backlog_cycles(0, 0));
  EXPECT_EQ(snap.channel_cycles[1], dispatcher.backlog_cycles(0, 1));

  // Executing work stays in the total until complete() retires it, on the
  // channel that began it.
  auto group = dispatcher.next_waves_for(0);
  ASSERT_EQ(group.size(), 2u);  // one wave per channel
  const auto executing = dispatcher.backlog_snapshot(0);
  EXPECT_EQ(executing.total_cycles, 220u);
  for (const auto& w : group)
    dispatcher.complete(0, w.estimated_cycles, w.channel);
  const auto after = dispatcher.backlog_snapshot(0);
  EXPECT_EQ(after.total_cycles, 60u);  // the third wave still queued
  EXPECT_EQ(after.channel_cycles[0] + after.channel_cycles[1], 60u);
  dispatcher.close();
}

// Heterogeneous routing: with per-shard estimators, cost-aware dispatch
// sends each wave to the backend that clears it soonest — a bulk wave
// stays on the PIM shard even though the CPU shard is idle, while a small
// wave goes to the CPU once the PIM is backlogged (the deployment shape
// of the paper: CPU absorbs the cheap tail, PIM keeps the bulk).
TEST(ServiceUnit, DispatcherRoutesBulkToPimCheapToCpu) {
  service::Dispatcher::Config cfg;
  cfg.shards = {{service::BackendKind::kPim, 1.0},
                {service::BackendKind::kCpu, 1.0}};
  cfg.cost_aware = true;
  cfg.work_stealing = false;
  // Tag 0 is a bulk RNS wave (bank-parallel PIM: 100; serial-ish CPU:
  // 800); tag 1 is a small wave where the backends are close (50 vs 60).
  service::Dispatcher dispatcher(
      cfg, [](std::size_t shard, std::vector<service::Request>& wave) {
        const bool bulk = dispatch_test::tag_of(wave) == 0;
        if (shard == 0) return bulk ? std::uint64_t{100} : std::uint64_t{50};
        return bulk ? std::uint64_t{800} : std::uint64_t{60};
      });

  // Bulk: 0+100 on PIM beats 0+800 on CPU, idle CPU notwithstanding.
  dispatcher.dispatch(dispatch_test::tagged_wave(0));
  // Cheap: PIM would finish it at 100+50 = 150, the CPU at 60 — routed to
  // the CPU even though its own estimate is the worse of the two.
  dispatcher.dispatch(dispatch_test::tagged_wave(1));
  EXPECT_EQ(dispatcher.backlog_cycles(0), 100u);
  EXPECT_EQ(dispatcher.backlog_cycles(1), 60u);

  auto pim_wave = dispatcher.next_wave_for(0);
  ASSERT_TRUE(pim_wave.has_value());
  EXPECT_EQ(dispatch_test::tag_of(pim_wave->requests), 0u);
  EXPECT_EQ(pim_wave->estimated_cycles, 100u);
  auto cpu_wave = dispatcher.next_wave_for(1);
  ASSERT_TRUE(cpu_wave.has_value());
  EXPECT_EQ(dispatch_test::tag_of(cpu_wave->requests), 1u);
  EXPECT_EQ(cpu_wave->estimated_cycles, 60u);
}

// cost_scale derates a shard's estimates at dispatch time: with identical
// raw estimates, the discounted shard wins and its stored price is the
// scaled one.
TEST(ServiceUnit, DispatcherAppliesCostScale) {
  service::Dispatcher::Config cfg;
  cfg.shards = {{service::BackendKind::kPim, 1.0},
                {service::BackendKind::kPim, 0.5}};
  cfg.cost_aware = true;
  service::Dispatcher dispatcher(
      cfg, [](std::size_t, std::vector<service::Request>&) {
        return std::uint64_t{100};
      });
  dispatcher.dispatch(dispatch_test::tagged_wave(0));
  EXPECT_EQ(dispatcher.backlog_cycles(0), 0u);
  EXPECT_EQ(dispatcher.backlog_cycles(1), 50u);
}

// Stealing respects backend compatibility: a thief skips queued waves its
// backend cannot run (kIncompatibleCycles), steals the oldest one it can
// — re-priced for its own backend — and after close() an all-incompatible
// leftover queue releases the thief instead of stranding it.
TEST(ServiceUnit, DispatcherStealRespectsBackendCompatibility) {
  service::Dispatcher::Config cfg;
  cfg.shards = {{service::BackendKind::kPim, 1.0},
                {service::BackendKind::kCpu, 1.0}};
  cfg.cost_aware = true;
  cfg.work_stealing = true;
  // Shard 1 (CPU) cannot run tag-0 waves at all and prices everything
  // else at 1000 — expensive enough that dispatch assigns both waves to
  // shard 0 and only stealing ever moves one.
  service::Dispatcher dispatcher(
      cfg, [](std::size_t shard, std::vector<service::Request>& wave) {
        if (shard == 0) return std::uint64_t{100};
        if (dispatch_test::tag_of(wave) == 0)
          return service::Dispatcher::kIncompatibleCycles;
        return std::uint64_t{1000};
      });

  dispatcher.dispatch(dispatch_test::tagged_wave(0));  // shard 0 (only fit)
  dispatcher.dispatch(dispatch_test::tagged_wave(1));  // 200 < 1000: shard 0
  EXPECT_EQ(dispatcher.backlog_cycles(0), 200u);

  // The thief must skip the older-but-incompatible tag 0 and take tag 1,
  // re-priced for its own backend.
  auto stolen = dispatcher.next_wave_for(1);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(dispatch_test::tag_of(stolen->requests), 1u);
  EXPECT_TRUE(stolen->stolen);
  EXPECT_EQ(stolen->estimated_cycles, 1000u);
  dispatcher.complete(1, stolen->estimated_cycles);

  // Only the CPU-incompatible wave remains. After close(), shard 1 exits
  // empty-handed (nothing it can run) and shard 0 drains its own wave.
  dispatcher.close();
  EXPECT_FALSE(dispatcher.next_wave_for(1).has_value());
  auto own = dispatcher.next_wave_for(0);
  ASSERT_TRUE(own.has_value());
  EXPECT_EQ(dispatch_test::tag_of(own->requests), 0u);
  EXPECT_FALSE(own->stolen);
  dispatcher.complete(0, own->estimated_cycles);
  EXPECT_FALSE(dispatcher.next_wave_for(0).has_value());
}

// Hierarchical assignment: a multi-channel shard's waves land on the
// least-backlogged *channel*, and a group pop hands back one wave per
// channel — rebalancing a queued wave onto an empty-handed sibling
// channel so the merged pass keeps every bus busy.
TEST(ServiceUnit, DispatcherAssignsLeastBackloggedChannel) {
  service::Dispatcher::Config cfg;
  cfg.shards = {{service::BackendKind::kPim, 1.0, /*channels=*/2}};
  cfg.cost_aware = true;
  cfg.work_stealing = false;  // local rebalance is policy-independent
  service::Dispatcher dispatcher(
      cfg, [](std::size_t, std::vector<service::Request>& wave) {
        switch (dispatch_test::tag_of(wave)) {
          case 1: return std::uint64_t{100};
          case 2: return std::uint64_t{250};
          case 3: return std::uint64_t{10};
          default: return std::uint64_t{500};
        }
      });
  EXPECT_EQ(dispatcher.channels(0), 2u);

  dispatcher.dispatch(dispatch_test::tagged_wave(1));  // tie -> ch 0
  dispatcher.dispatch(dispatch_test::tagged_wave(2));  // 350 vs 250 -> ch 1
  dispatcher.dispatch(dispatch_test::tagged_wave(3));  // 110 vs 260 -> ch 0
  dispatcher.dispatch(dispatch_test::tagged_wave(4));  // 610 vs 750 -> ch 0
  EXPECT_EQ(dispatcher.backlog_cycles(0, 0), 610u);
  EXPECT_EQ(dispatcher.backlog_cycles(0, 1), 250u);
  EXPECT_EQ(dispatcher.backlog_cycles(0), 860u);

  // Group pop 1: both channels have queued waves — one each, FIFO.
  auto group = dispatcher.next_waves_for(0);
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(dispatch_test::tag_of(group[0].requests), 1u);
  EXPECT_EQ(group[0].channel, 0u);
  EXPECT_FALSE(group[0].rebalanced);
  EXPECT_EQ(dispatch_test::tag_of(group[1].requests), 2u);
  EXPECT_EQ(group[1].channel, 1u);
  EXPECT_FALSE(group[1].rebalanced);
  for (const auto& w : group)
    dispatcher.complete(0, w.estimated_cycles, w.channel);

  // Group pop 2: channel 1's queue is empty, so it takes channel 0's
  // remaining wave — rebalanced, never counted as a steal.
  group = dispatcher.next_waves_for(0);
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(dispatch_test::tag_of(group[0].requests), 3u);
  EXPECT_EQ(group[0].channel, 0u);
  EXPECT_FALSE(group[0].rebalanced);
  EXPECT_EQ(dispatch_test::tag_of(group[1].requests), 4u);
  EXPECT_EQ(group[1].channel, 1u);
  EXPECT_TRUE(group[1].rebalanced);
  EXPECT_FALSE(group[1].stolen);
  for (const auto& w : group)
    dispatcher.complete(0, w.estimated_cycles, w.channel);
  EXPECT_EQ(dispatcher.backlog_cycles(0), 0u);

  dispatcher.close();
  EXPECT_TRUE(dispatcher.next_waves_for(0).empty());
}

// Local rebalance strictly precedes remote stealing: while a multi-channel
// shard still holds queued waves of its own, its group pops spread them
// across its channels and never touch a peer; only a fully empty shard
// crosses over — re-pricing the loot and landing it on its
// least-backlogged channel.
TEST(ServiceUnit, DispatcherRebalancesLocallyBeforeStealing) {
  service::Dispatcher::Config cfg;
  cfg.shards = {{service::BackendKind::kPim, 1.0, /*channels=*/2},
                {service::BackendKind::kPim, 1.0, /*channels=*/1}};
  cfg.cost_aware = true;
  cfg.work_stealing = true;
  // Tags 1-4 only fit shard 0 (same prices as above); tag 5 is cheap on
  // shard 1 and lands there.
  service::Dispatcher dispatcher(
      cfg, [](std::size_t shard, std::vector<service::Request>& wave) {
        const std::uint32_t tag = dispatch_test::tag_of(wave);
        if (shard == 1) {
          if (tag != 5) return service::Dispatcher::kIncompatibleCycles;
          return std::uint64_t{40};
        }
        switch (tag) {
          case 1: return std::uint64_t{100};
          case 2: return std::uint64_t{250};
          case 3: return std::uint64_t{10};
          case 4: return std::uint64_t{500};
          default: return std::uint64_t{100};
        }
      });

  for (std::uint32_t tag = 1; tag <= 4; ++tag)
    dispatcher.dispatch(dispatch_test::tagged_wave(tag));
  dispatcher.dispatch(dispatch_test::tagged_wave(5));  // 40 on shard 1 wins
  EXPECT_EQ(dispatcher.backlog_cycles(0), 860u);
  EXPECT_EQ(dispatcher.backlog_cycles(1), 40u);

  // Two group pops clear shard 0's four waves — the second rebalances tag
  // 4 onto channel 1 instead of stealing shard 1's cheaper tag 5.
  for (int pop = 0; pop < 2; ++pop) {
    auto group = dispatcher.next_waves_for(0);
    ASSERT_EQ(group.size(), 2u);
    for (const auto& w : group) {
      EXPECT_FALSE(w.stolen);
      dispatcher.complete(0, w.estimated_cycles, w.channel);
    }
  }
  EXPECT_EQ(dispatcher.backlog_cycles(0), 0u);
  EXPECT_EQ(dispatcher.backlog_cycles(1), 40u);  // untouched by shard 0

  // Now shard 0 is truly empty: the next pop crosses shards, re-priced for
  // the thief (100, not 40) on its least-backlogged channel.
  auto stolen = dispatcher.next_waves_for(0);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(dispatch_test::tag_of(stolen[0].requests), 5u);
  EXPECT_TRUE(stolen[0].stolen);
  EXPECT_FALSE(stolen[0].rebalanced);
  EXPECT_EQ(stolen[0].estimated_cycles, 100u);
  dispatcher.complete(0, stolen[0].estimated_cycles, stolen[0].channel);
  EXPECT_EQ(dispatcher.backlog_cycles(1), 0u);

  dispatcher.close();
  EXPECT_TRUE(dispatcher.next_waves_for(0).empty());
  EXPECT_TRUE(dispatcher.next_waves_for(1).empty());
}

// Deadline pressure, assignment half: an urgent wave's ETA counts only
// the queued work ahead of its (deadline, arrival) key — it jumps queued
// bulk — so it lands by tie-break on shard 0 despite shard 0 holding the
// larger bulk backlog (a deadline-less wave would go to shard 1), and the
// deadline-ordered lane then pops it first, ahead of earlier-arrived bulk.
TEST(ServiceUnit, DispatcherDeadlinePressureJumpsQueuedBulk) {
  service::Dispatcher::Config cfg;
  cfg.shards.resize(2);
  cfg.cost_aware = true;
  cfg.work_stealing = false;
  cfg.deadline_pressure = true;
  service::Dispatcher dispatcher(
      cfg, [](std::size_t, std::vector<service::Request>&) {
        return std::uint64_t{100};
      });

  dispatcher.dispatch(dispatch_test::tagged_wave(0));  // tie -> shard 0
  dispatcher.dispatch(dispatch_test::tagged_wave(1));  // least-backlog -> 1
  dispatcher.dispatch(dispatch_test::tagged_wave(2));  // eta tie -> shard 0
  EXPECT_EQ(dispatcher.backlog_cycles(0), 200u);
  EXPECT_EQ(dispatcher.backlog_cycles(1), 100u);

  // The urgent wave jumps both bulk waves queued on shard 0, so its ETA is
  // 100 everywhere and the tie resolves to shard 0 — without the jump the
  // least-backlog rule would have sent it to shard 1.
  dispatcher.dispatch(dispatch_test::deadlined_wave(3, /*deadline_us=*/100));
  EXPECT_EQ(dispatcher.backlog_cycles(0), 300u);
  EXPECT_EQ(dispatcher.backlog_cycles(1), 100u);

  // Shard 0's lane is urgency-ordered: the deadlined wave pops before the
  // bulk that arrived first.
  const std::uint32_t expected_tags[] = {3, 0, 2};
  for (const std::uint32_t tag : expected_tags) {
    auto next = dispatcher.next_wave_for(0);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(dispatch_test::tag_of(next->requests), tag);
    dispatcher.complete(0, next->estimated_cycles);
  }
  dispatcher.close();
}

// Deadline pressure, steal half: an idle shard takes the most-deadline-
// urgent compatible wave anywhere — even off a lightly loaded victim —
// and only falls back to the load-relief steal (oldest wave of the most-
// loaded peer) once no deadlined wave is queued.
TEST(ServiceUnit, DispatcherDeadlinePressureStealsMostUrgentWave) {
  service::Dispatcher::Config cfg;
  cfg.shards.resize(3);
  cfg.queue_capacity_waves = 4;
  cfg.cost_aware = false;  // round-robin: tag % 3 names the shard
  cfg.work_stealing = true;
  cfg.deadline_pressure = true;
  service::Dispatcher dispatcher(
      cfg, [](std::size_t, std::vector<service::Request>&) {
        return std::uint64_t{100};
      });

  // Shard 0 carries the big bulk backlog {0, 3, 6}; shard 2 is lighter
  // {2, 5} but holds the only deadlined wave (tag 5); shard 1 {1, 4} will
  // go idle and steal.
  for (std::uint32_t tag = 0; tag < 7; ++tag) {
    if (tag == 5)
      dispatcher.dispatch(
          dispatch_test::deadlined_wave(tag, /*deadline_us=*/700));
    else
      dispatcher.dispatch(dispatch_test::tagged_wave(tag));
  }
  EXPECT_EQ(dispatcher.backlog_cycles(0), 300u);
  EXPECT_EQ(dispatcher.backlog_cycles(2), 200u);

  // Drain shard 1's own FIFO lane.
  for (const std::uint32_t tag : {1u, 4u}) {
    auto own = dispatcher.next_wave_for(1);
    ASSERT_TRUE(own.has_value());
    EXPECT_EQ(dispatch_test::tag_of(own->requests), tag);
    EXPECT_FALSE(own->stolen);
    dispatcher.complete(1, own->estimated_cycles);
  }

  // First steal: the deadlined tag 5 off lightly-loaded shard 2, even
  // though the load-relief rule would have picked most-loaded shard 0.
  auto urgent = dispatcher.next_wave_for(1);
  ASSERT_TRUE(urgent.has_value());
  EXPECT_EQ(dispatch_test::tag_of(urgent->requests), 5u);
  EXPECT_TRUE(urgent->stolen);
  dispatcher.complete(1, urgent->estimated_cycles);

  // No deadlines left: the fallback relieves the most-loaded peer (shard
  // 0), oldest wave first.
  auto fallback = dispatcher.next_wave_for(1);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(dispatch_test::tag_of(fallback->requests), 0u);
  EXPECT_TRUE(fallback->stolen);
  dispatcher.complete(1, fallback->estimated_cycles);
  dispatcher.close();
}

// A service on a multi-channel PIM shard serves bit-exact results, sizes
// waves to one channel's bank set, and its per-channel stats tile the
// shard counters.
TEST(ServiceE2E, MultiChannelShardServesAndSplitsStats) {
  const auto params = make_params(256);
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  cfg.backend.channels_per_shard = 2;
  cfg.former.start_paused = true;  // stage a backlog, then open the valve
  NttService svc(cfg);
  ASSERT_EQ(svc.shard_descriptors()[0].channels, 2u);

  Rng rng(71);
  fhe::CpuBackend cpu;
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  std::vector<std::vector<std::uint32_t>> expected;
  for (int r = 0; r < 8; ++r) {
    auto poly = rng.residues(params->n(), params->q());
    expected.push_back(poly);
    cpu.forward(expected.back(), *params);
    futures.push_back(svc.submit(std::move(poly), params, inv(false)));
  }
  svc.resume();
  for (int r = 0; r < 8; ++r) EXPECT_EQ(futures[r].get(), expected[r]);
  svc.drain();

  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, 8u);
  // Waves hold one channel's bank subset (4 banks / 2 channels = 2 items).
  EXPECT_EQ(stats.waves, 4u);
  const auto& ss = stats.shards.at(0);
  ASSERT_EQ(ss.channels.size(), 2u);
  std::uint64_t channel_waves = 0;
  std::uint64_t channel_rebalanced = 0;
  std::uint64_t channel_executed = 0;
  for (const auto& cs : ss.channels) {
    channel_waves += cs.waves;
    channel_rebalanced += cs.rebalanced_waves;
    channel_executed += cs.estimated_executed_cycles;
    EXPECT_EQ(cs.estimated_backlog_cycles, 0u);  // drained
  }
  EXPECT_EQ(channel_waves, ss.waves);
  EXPECT_EQ(channel_rebalanced, ss.rebalanced_waves);
  EXPECT_EQ(channel_executed, ss.estimated_executed_cycles);
}

// Property (PR 5): under a steal-heavy skewed load — bursts of expensive
// and cheap waves staged behind a paused former — every accepted request
// completes exactly once, whichever shard ends up executing it.
TEST(ServiceProperty, StealingConservesRequestsUnderSkewedLoad) {
  const auto cheap = make_params(256);
  const auto costly = make_params(1024, 29);

  ServiceConfig cfg;
  cfg.backend.shards = 2;
  cfg.backend.banks_per_shard = 4;
  cfg.former.flush_window = hour();
  cfg.former.start_paused = true;
  cfg.dispatch.shard_queue_waves = 2;  // small queues force stalls + steals
  NttService svc(cfg);

  // 6 waves of 4: costly, cheap, costly, cheap, ... in submit order.
  constexpr std::size_t kWaves = 6;
  constexpr std::size_t kTotal = kWaves * 4;
  Rng rng(47);
  std::vector<std::atomic<int>> delivered(kTotal);
  std::latch done(kTotal);
  for (std::size_t w = 0; w < kWaves; ++w) {
    const auto& params = (w % 2 == 0) ? costly : cheap;
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t id = w * 4 + i;
      svc.submit(rng.residues(params->n(), params->q()), params, inv(false),
                 [&, id](std::vector<std::uint32_t>&& result,
                         std::exception_ptr error) {
                   if (!error && !result.empty())
                     delivered[id].fetch_add(1, std::memory_order_relaxed);
                   done.count_down();
                 });
    }
  }
  svc.resume();
  done.wait();
  svc.drain();

  for (std::size_t id = 0; id < kTotal; ++id)
    EXPECT_EQ(delivered[id].load(std::memory_order_relaxed), 1) << "request " << id;
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, kTotal);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.waves, kWaves);
  std::uint64_t requests = 0;
  for (const auto& shard : stats.shards) {
    requests += shard.requests;
    EXPECT_EQ(shard.estimated_backlog_cycles, 0u);  // drained
  }
  EXPECT_EQ(requests, kTotal);
}

// Property: the wave-former never loses, duplicates, or fabricates a
// request under concurrent producers and consumers, and every wave
// respects the size cap.
TEST(ServiceProperty, WaveFormerConservesRequestsUnderConcurrency) {
  service::WaveFormer::Config cfg;
  cfg.capacity_items = 64;
  cfg.max_wave_items = 8;
  cfg.flush_window = std::chrono::microseconds(50);
  service::WaveFormer former(cfg);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 64;
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> oversized_waves{0};
  std::vector<std::uint8_t> seen(kProducers * kPerProducer, 0);
  sync::Mutex seen_mu;

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        auto wave = former.next_wave();
        if (wave.empty()) return;
        if (wave.size() > cfg.max_wave_items) oversized_waves.fetch_add(1, std::memory_order_relaxed);
        const sync::MutexLock lk(seen_mu);
        for (auto& r : wave) {
          ++seen[r.a[0]];
          r.promise.set_value({});
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        service::Request r;
        r.kind = service::Request::Kind::kTransform;
        // Tag each request with a unique id in a[0] (never executed).
        r.a = {static_cast<std::uint32_t>(p * kPerProducer + i)};
        auto f = r.promise.get_future();
        ASSERT_EQ(former.submit(std::move(r)),
                  service::WaveFormer::SubmitResult::kAccepted);
        f.get();  // closed loop keeps the bounded queue honest
      }
    });
  }
  for (auto& t : producers) t.join();
  former.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(consumed.load(std::memory_order_relaxed), kProducers * kPerProducer);
  EXPECT_EQ(oversized_waves.load(std::memory_order_relaxed), 0u);
  for (const auto count : seen) EXPECT_EQ(count, 1);
}

// Heterogeneous serving E2E: a mixed PIM + CPU tier under multi-threaded
// load must be bit-identical to the sequential CPU reference, whichever
// backend each wave landed on (transforms are exact integer arithmetic —
// backends are interchangeable by construction, and this is the test).
TEST(ServiceE2E, MixedBackendShardsMatchCpuReference) {
  const auto p256 = make_params(256);
  const auto p1024 = make_params(1024, 29);

  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;  // wave sizing
  cfg.backend.descriptors = {service::make_pim_descriptor(4),
                             service::make_cpu_descriptor(2)};
  cfg.former.flush_window = std::chrono::microseconds(200);
  NttService svc(cfg);
  ASSERT_EQ(svc.shards(), 2u);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRequests = 8;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(9000 + t);
      fhe::CpuBackend cpu;
      for (std::size_t r = 0; r < kRequests; ++r) {
        const auto& params = (r % 2 == 0) ? p256 : p1024;
        if (r % 4 == 3) {
          auto a = rng.residues(params->n(), params->q());
          auto b = rng.residues(params->n(), params->q());
          auto fa = a;
          auto fb = b;
          cpu.forward(fa, *params);
          cpu.forward(fb, *params);
          auto expected = ntt::pointwise_mul(fa, fb, params->q());
          cpu.inverse(expected, *params);
          if (svc.submit_multiply(std::move(a), std::move(b), params).get() !=
              expected)
            mismatches.fetch_add(1, std::memory_order_relaxed);
        } else {
          const bool inverse = r % 3 == 0;
          auto poly = rng.residues(params->n(), params->q());
          auto expected = poly;
          if (inverse)
            cpu.inverse(expected, *params);
          else
            cpu.forward(expected, *params);
          if (svc.submit(std::move(poly), params, inv(inverse)).get() !=
              expected)
            mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  svc.drain();

  EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0u);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, kThreads * kRequests);
  EXPECT_EQ(stats.failed, 0u);
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_EQ(stats.shards[0].kind, service::BackendKind::kPim);
  EXPECT_EQ(stats.shards[1].kind, service::BackendKind::kCpu);
  // Which backend ran what is load-dependent; conservation is not.
  EXPECT_EQ(stats.shards[0].requests + stats.shards[1].requests,
            kThreads * kRequests);
}

// Property: exactly-once completion holds across *mixed* backend shards
// with stealing enabled — a wave stolen across the PIM/CPU boundary is
// still delivered once, and the shard request counts conserve the total.
TEST(ServiceProperty, HeteroStealingConservesRequests) {
  const auto cheap = make_params(256);
  const auto costly = make_params(1024, 29);

  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  cfg.backend.descriptors = {service::make_pim_descriptor(4),
                             service::make_cpu_descriptor(2)};
  cfg.former.flush_window = hour();
  cfg.former.start_paused = true;
  cfg.dispatch.shard_queue_waves = 2;
  NttService svc(cfg);

  constexpr std::size_t kWaves = 6;
  constexpr std::size_t kTotal = kWaves * 4;
  Rng rng(53);
  std::vector<std::atomic<int>> delivered(kTotal);
  std::latch done(kTotal);
  for (std::size_t w = 0; w < kWaves; ++w) {
    const auto& params = (w % 2 == 0) ? costly : cheap;
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t id = w * 4 + i;
      svc.submit(rng.residues(params->n(), params->q()), params, inv(false),
                 [&, id](std::vector<std::uint32_t>&& result,
                         std::exception_ptr error) {
                   if (!error && !result.empty()) delivered[id].fetch_add(1, std::memory_order_relaxed);
                   done.count_down();
                 });
    }
  }
  svc.resume();
  done.wait();
  svc.drain();

  for (std::size_t id = 0; id < kTotal; ++id)
    EXPECT_EQ(delivered[id].load(std::memory_order_relaxed), 1) << "request " << id;
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, kTotal);
  EXPECT_EQ(stats.failed, 0u);
  std::uint64_t requests = 0;
  for (const auto& shard : stats.shards) {
    requests += shard.requests;
    EXPECT_EQ(shard.estimated_backlog_cycles, 0u);
  }
  EXPECT_EQ(requests, kTotal);
}

// QoS class fields travel on a classless (num_classes = 1) service without
// affecting execution: priority and deadline are carried but inert.
TEST(ServiceUnit, SubmitOptionsQosFieldsAreAccepted) {
  const auto params = make_params(256);
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  NttService svc(cfg);

  Rng rng(61);
  auto poly = rng.residues(params->n(), params->q());
  auto expected = poly;
  fhe::CpuBackend cpu;
  cpu.forward(expected, *params);

  service::SubmitOptions options;
  options.qos.priority = 7;
  options.qos.deadline = service::ServiceClock::now() + std::chrono::seconds(1);
  EXPECT_EQ(svc.submit(std::move(poly), params, options).get(), expected);
}

// End-to-end QoS: a flooding tenant with a hard admission cap (rate 0,
// burst 2) is shed deterministically past its burst — failing with
// AdmissionShedError before costing queue capacity — while the
// unconfigured tenant 1 rides through unlimited; per-class stats split
// the counters and deadline misses are charged to the class that missed.
TEST(ServiceE2E, QosShedsFloodingTenantAndCountsDeadlineMisses) {
  const auto params = make_params(256);
  ServiceConfig cfg;
  cfg.backend.banks_per_shard = 4;
  cfg.qos.num_classes = 2;
  cfg.qos.admission = {{.rate_per_sec = 0.0, .burst = 2.0}};  // tenant 0 only
  NttService svc(cfg);

  Rng rng(67);
  fhe::CpuBackend cpu;
  auto make_request = [&] {
    auto poly = rng.residues(params->n(), params->q());
    auto expected = poly;
    cpu.forward(expected, *params);
    return std::pair{std::move(poly), std::move(expected)};
  };

  // Tenant 0 floods: with rate 0 the bucket never refills, so exactly the
  // first `burst` requests land and the rest shed — deterministically.
  service::SubmitOptions bulk;
  bulk.qos.tenant = 0;
  std::vector<std::future<std::vector<std::uint32_t>>> accepted;
  std::vector<std::vector<std::uint32_t>> expected;
  for (int i = 0; i < 4; ++i) {
    auto [poly, want] = make_request();
    auto f = svc.submit(std::move(poly), params, bulk);
    if (i < 2) {
      accepted.push_back(std::move(f));
      expected.push_back(std::move(want));
    } else {
      EXPECT_THROW(f.get(), service::AdmissionShedError);
    }
  }

  // Tenant 1 is past the admission vector: unlimited, but its deadline is
  // already gone, so every completion counts a miss.
  service::SubmitOptions critical;
  critical.qos.tenant = 1;
  critical.qos.priority = 1;
  critical.qos.deadline =
      service::ServiceClock::now() - std::chrono::milliseconds(1);
  for (int i = 0; i < 3; ++i) {
    auto [poly, want] = make_request();
    accepted.push_back(svc.submit(std::move(poly), params, critical));
    expected.push_back(std::move(want));
  }

  for (std::size_t i = 0; i < accepted.size(); ++i)
    EXPECT_EQ(accepted[i].get(), expected[i]);
  svc.drain();

  const auto stats = svc.stats();
  ASSERT_EQ(stats.classes.size(), 2u);
  EXPECT_EQ(stats.classes[0].submitted, 4u);
  EXPECT_EQ(stats.classes[0].shed, 2u);
  EXPECT_EQ(stats.classes[0].completed, 2u);
  EXPECT_EQ(stats.classes[0].deadline_misses, 0u);
  EXPECT_EQ(stats.classes[1].submitted, 3u);
  EXPECT_EQ(stats.classes[1].shed, 0u);
  EXPECT_EQ(stats.classes[1].completed, 3u);
  EXPECT_EQ(stats.classes[1].deadline_misses, 3u);
  EXPECT_EQ(stats.classes[1].service_latency.count, 3u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.deadline_misses, 3u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.rejected, 0u);  // shedding is not backpressure
  std::uint64_t shard_misses = 0;
  for (const auto& shard : stats.shards)
    shard_misses += shard.deadline_missed_requests;
  EXPECT_EQ(shard_misses, 3u);
}

}  // namespace
