#include "ntt/params.h"

#include <gtest/gtest.h>

#include "ntt/modular.h"
#include "ntt/primes.h"

namespace nttpim::ntt {
namespace {

class ParamsInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParamsInvariants, RootsAndInversesConsistent) {
  const std::size_t n = GetParam();
  const NttParams p = NttParams::create(n);
  const std::uint64_t q = p.q();

  EXPECT_TRUE(is_prime(q));
  EXPECT_EQ(q % (2 * n), 1u);

  // omega has order n, psi has order 2n, psi^2 == omega.
  EXPECT_TRUE(has_order(p.omega(), n, q));
  EXPECT_TRUE(has_order(p.psi(), 2 * n, q));
  EXPECT_EQ(mul_mod(p.psi(), p.psi(), q), p.omega());

  // Inverses really invert.
  EXPECT_EQ(mul_mod(p.omega(), p.omega_inv(), q), 1u);
  EXPECT_EQ(mul_mod(p.psi(), p.psi_inv(), q), 1u);
  EXPECT_EQ(mul_mod(n % q, p.n_inv(), q), 1u);

  // psi^n == -1 (the negacyclic sign).
  EXPECT_EQ(pow_mod(p.psi(), n, q), q - 1);
}

TEST_P(ParamsInvariants, StageStepsAreSquares) {
  const std::size_t n = GetParam();
  const NttParams p = NttParams::create(n);
  // w_{s-1} = w_s^2: each earlier stage's step is the square of the next.
  for (unsigned s = 2; s <= p.log2n(); ++s) {
    EXPECT_EQ(mul_mod(p.stage_step(s), p.stage_step(s), p.q()),
              p.stage_step(s - 1));
  }
  // Last stage step is omega itself; first is -1.
  EXPECT_EQ(p.stage_step(p.log2n()), p.omega());
  EXPECT_EQ(p.stage_step(1), p.q() - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParamsInvariants,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024, 4096,
                                           8192));

TEST(Params, TwiddleTablesMatchPowers) {
  const NttParams p = NttParams::create(64);
  const auto& tw = p.twiddles();
  const auto& itw = p.inv_twiddles();
  ASSERT_EQ(tw.size(), 32u);
  ASSERT_EQ(itw.size(), 32u);
  for (std::size_t j = 0; j < tw.size(); ++j) {
    EXPECT_EQ(tw[j], p.omega_pow(j));
    EXPECT_EQ(itw[j], pow_mod(p.omega_inv(), j, p.q()));
    EXPECT_EQ(mul_mod(tw[j], itw[j], p.q()), 1u);
  }
}

TEST(Params, ExplicitModulus) {
  const NttParams p(256, 12289);
  EXPECT_EQ(p.q(), 12289u);
  EXPECT_TRUE(has_order(p.omega(), 256, 12289));
}

TEST(Params, RejectsInvalidArguments) {
  EXPECT_THROW(NttParams(100, 12289), std::invalid_argument);  // not pow2
  EXPECT_THROW(NttParams(256, 12288), std::invalid_argument);  // composite
  EXPECT_THROW(NttParams(8192, 12289), std::invalid_argument); // 2n ∤ q-1
  EXPECT_THROW(NttParams(1, 12289), std::invalid_argument);    // n < 2
}

TEST(Params, StageStepRangeChecked) {
  const NttParams p = NttParams::create(16);
  EXPECT_THROW(p.stage_step(0), std::invalid_argument);
  EXPECT_THROW(p.stage_step(5), std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::ntt
