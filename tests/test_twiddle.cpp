#include "ntt/twiddle.h"

#include <gtest/gtest.h>

#include "ntt/modular.h"
#include "ntt/params.h"

namespace nttpim::ntt {
namespace {

TEST(TwiddleGenerator, GeometricSequence) {
  const std::uint32_t q = 12289;
  TwiddleGenerator tfg(q);
  tfg.set_omega0(7);
  tfg.set_step(3);
  tfg.reset();
  std::uint64_t expected = 7;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(tfg.next(), expected);
    expected = mul_mod(expected, 3, q);
  }
}

TEST(TwiddleGenerator, ResetReloadsOmega0) {
  TwiddleGenerator tfg(97);
  tfg.set_omega0(5);
  tfg.set_step(2);
  tfg.reset();
  EXPECT_EQ(tfg.next(), 5u);
  EXPECT_EQ(tfg.next(), 10u);
  tfg.reset();
  EXPECT_EQ(tfg.next(), 5u);  // back to the start
}

TEST(TwiddleGenerator, Omega0LoadDoesNotDisturbCurrent) {
  TwiddleGenerator tfg(97);
  tfg.set_omega0(5);
  tfg.set_step(1);
  tfg.reset();
  EXPECT_EQ(tfg.next(), 5u);
  tfg.set_omega0(11);          // PARAM arrives mid-sequence
  EXPECT_EQ(tfg.next(), 5u);   // sequence continues (step=1)
  tfg.reset();                 // only reset consumes the new omega0
  EXPECT_EQ(tfg.next(), 11u);
}

TEST(TwiddleGenerator, MatchesStageTwiddlesOfReference) {
  // The TFG with step w_s reproduces the DIT stage-s twiddles w_s^j.
  const NttParams p = NttParams::create(256);
  for (unsigned s = 1; s <= p.log2n(); ++s) {
    TwiddleGenerator tfg(p.q());
    tfg.set_omega0(1);
    tfg.set_step(p.stage_step(s));
    tfg.reset();
    const std::size_t m = std::size_t{1} << (s - 1);
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(tfg.next(), pow_mod(p.stage_step(s), j, p.q()))
          << "s=" << s << " j=" << j;
    }
  }
}

TEST(TwiddleGenerator, ValuesReducedModQ) {
  TwiddleGenerator tfg(7);
  tfg.set_omega0(100);  // > q: must be reduced
  tfg.set_step(100);
  tfg.reset();
  EXPECT_LT(tfg.next(), 7u);
  EXPECT_LT(tfg.next(), 7u);
}

}  // namespace
}  // namespace nttpim::ntt
