#include "ntt/primes.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "ntt/modular.h"

namespace nttpim::ntt {
namespace {

TEST(IsPrime, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(99));
}

TEST(IsPrime, KnownNttPrimes) {
  EXPECT_TRUE(is_prime(7681));        // 2^8-friendly
  EXPECT_TRUE(is_prime(12289));       // Kyber/NewHope prime
  EXPECT_TRUE(is_prime(8380417));     // Dilithium prime
  EXPECT_TRUE(is_prime(998244353));   // competitive-programming favourite
  EXPECT_TRUE(is_prime(2013265921));  // 15*2^27+1
}

TEST(IsPrime, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests; Miller–Rabin must reject them.
  for (const std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 41041ULL,
                                825265ULL, 321197185ULL}) {
    EXPECT_FALSE(is_prime(c)) << c;
  }
}

TEST(IsPrime, LargeComposites) {
  EXPECT_FALSE(is_prime(1ULL << 40));
  EXPECT_FALSE(is_prime((1ULL << 31) - 2));
  // Product of two close primes.
  EXPECT_FALSE(is_prime(65521ULL * 65519ULL));
}

TEST(IsPrime, LargePrimes) {
  EXPECT_TRUE(is_prime((1ULL << 31) - 1));       // Mersenne M31
  EXPECT_TRUE(is_prime(2305843009213693951ULL)); // Mersenne M61
}

TEST(NextPrimeCongruentOne, FindsCorrectResidue) {
  const auto q = next_prime_congruent_one(1000, 16);
  EXPECT_TRUE(is_prime(q));
  EXPECT_GT(q, 1000u);
  EXPECT_EQ(q % 16, 1u);
}

TEST(FindNttPrime, SatisfiesCongruence) {
  for (const std::size_t n : {64ULL, 256ULL, 1024ULL, 4096ULL, 8192ULL}) {
    const auto q = find_ntt_prime(n, 31);
    EXPECT_TRUE(is_prime(q));
    EXPECT_EQ(q % (2 * n), 1u) << "n=" << n;
    EXPECT_LT(q, 1u << 31);
  }
}

TEST(FindNttPrime, SmallBitWidths) {
  const auto q = find_ntt_prime(256, 14);
  EXPECT_TRUE(is_prime(q));
  EXPECT_EQ(q % 512, 1u);
  EXPECT_LT(q, 1u << 14);
  // The search returns the *largest* qualifying prime below 2^14.
  EXPECT_EQ(q, 15361u);  // 15 * 2^10 + 1
  // The classic 14-bit prime 12289 is the largest for n = 2048.
  EXPECT_EQ(find_ntt_prime(2048, 14), 12289u);
}

TEST(FindNttPrimes, DistinctAndValid) {
  const auto primes = find_ntt_primes(1024, 31, 4);
  ASSERT_EQ(primes.size(), 4u);
  for (const auto q : primes) {
    EXPECT_TRUE(is_prime(q));
    EXPECT_EQ(q % 2048, 1u);
  }
  auto sorted = primes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(PrimeFactors, KnownFactorizations) {
  auto f = prime_factors(360);  // 2^3 * 3^2 * 5
  std::sort(f.begin(), f.end());
  EXPECT_EQ(f, (std::vector<std::uint64_t>{2, 3, 5}));

  f = prime_factors(97);
  EXPECT_EQ(f, (std::vector<std::uint64_t>{97}));

  f = prime_factors(1);
  EXPECT_TRUE(f.empty());

  // Semiprime with large factors (exercises Pollard rho).
  f = prime_factors(65521ULL * 65519ULL);
  std::sort(f.begin(), f.end());
  EXPECT_EQ(f, (std::vector<std::uint64_t>{65519, 65521}));
}

TEST(FindGenerator, HasFullOrder) {
  for (const std::uint64_t q : {17ULL, 97ULL, 7681ULL, 12289ULL}) {
    const auto g = find_generator(q);
    EXPECT_TRUE(has_order(g, q - 1, q)) << "q=" << q;
  }
}

TEST(HasOrder, DetectsWrongOrders) {
  // 4 has order 2 mod 5? 4^2=16=1 mod 5; order(4)=2.
  EXPECT_TRUE(has_order(4, 2, 5));
  EXPECT_FALSE(has_order(4, 4, 5));  // 4^2 = 1 already
  EXPECT_FALSE(has_order(1, 2, 5));  // order 1
  EXPECT_FALSE(has_order(0, 2, 5));
}

TEST(PrimitiveRootOfUnity, CorrectOrder) {
  for (const std::size_t n : {8ULL, 64ULL, 1024ULL}) {
    const auto q = find_ntt_prime(n, 31);
    const auto w = primitive_root_of_unity(q, n);
    EXPECT_TRUE(has_order(w, n, q));
    EXPECT_EQ(pow_mod(w, n, q), 1u);
    EXPECT_NE(pow_mod(w, n / 2, q), 1u);
    // omega^{n/2} must be -1 for radix-2 NTT symmetry.
    EXPECT_EQ(pow_mod(w, n / 2, q), q - 1);
  }
}

TEST(PrimitiveRootOfUnity, RejectsNonDividingOrder) {
  EXPECT_THROW(primitive_root_of_unity(17, 5), std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::ntt
