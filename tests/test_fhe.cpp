#include <gtest/gtest.h>

#include "common/random.h"
#include "fhe/bfv.h"
#include "fhe/cpu_backend.h"
#include "fhe/pim_backend.h"
#include "fhe/rns.h"
#include "fhe/rq.h"
#include "ntt/poly.h"

namespace nttpim::fhe {
namespace {

// ---------------------------------------------------------------------- RNS

TEST(RnsBasis, RoundTripsWideCoefficients) {
  const RnsBasis basis(64, 3, 30);
  ASSERT_EQ(basis.limb_count(), 3u);

  Rng rng(1);
  std::vector<unsigned __int128> coeffs(64);
  for (auto& c : coeffs) {
    c = static_cast<unsigned __int128>(rng.next_u64());
    c = (c << 20) % basis.modulus_product();
  }
  EXPECT_EQ(basis.from_rns(basis.to_rns(coeffs)), coeffs);
}

TEST(RnsBasis, PrimesAreDistinctAndNttFriendly) {
  const RnsBasis basis(1024, 4, 30);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(basis.prime(i) % 2048, 1u);
    for (std::size_t j = i + 1; j < 4; ++j)
      EXPECT_NE(basis.prime(i), basis.prime(j));
  }
}

TEST(RnsBasis, ExplicitPrimesValidated) {
  EXPECT_THROW(RnsBasis(64, {12289u, 12289u}), std::invalid_argument);
  EXPECT_THROW(RnsBasis(64, std::vector<std::uint32_t>{}),
               std::invalid_argument);
  EXPECT_THROW(RnsBasis(64, 5, 30), std::invalid_argument);  // > 4 limbs
}

// ------------------------------------------------------------------- RqPoly

TEST(RqPoly, AdditionMatchesCrtArithmetic) {
  const RnsBasis basis(32, 2, 30);
  Rng rng(2);
  std::vector<unsigned __int128> a(32), b(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = rng.next_u64() % basis.modulus_product();
    b[i] = rng.next_u64() % basis.modulus_product();
  }
  const auto pa = RqPoly::from_wide(basis, a);
  const auto pb = RqPoly::from_wide(basis, b);
  const auto sum = (pa + pb).to_wide();
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_EQ(sum[i], (a[i] + b[i]) % basis.modulus_product());
}

TEST(RqPoly, SubtractAndNegateAreConsistent) {
  const RnsBasis basis(16, 2, 30);
  Rng rng(3);
  std::vector<std::int64_t> sa(16), sb(16);
  for (auto& x : sa) x = rng.next_in(-100, 100);
  for (auto& x : sb) x = rng.next_in(-100, 100);
  const auto pa = RqPoly::from_signed(basis, sa);
  const auto pb = RqPoly::from_signed(basis, sb);
  EXPECT_EQ(pa - pb, pa + pb.negate());
}

TEST(RqPoly, MultiplyMatchesSchoolbookPerLimb) {
  const RnsBasis basis(32, 2, 30);
  CpuBackend backend;
  Rng rng(4);

  RqPoly pa(basis), pb(basis);
  for (std::size_t limb = 0; limb < 2; ++limb) {
    pa.limb(limb) = rng.residues(32, basis.prime(limb));
    pb.limb(limb) = rng.residues(32, basis.prime(limb));
  }
  const auto prod = pa.multiply(pb, backend);
  for (std::size_t limb = 0; limb < 2; ++limb) {
    EXPECT_EQ(prod.limb(limb),
              ntt::negacyclic_convolution_schoolbook(
                  pa.limb(limb), pb.limb(limb), basis.prime(limb)));
  }
  EXPECT_EQ(backend.transform_count(), 2u * 3u);  // 2 limbs x (2 fwd + 1 inv)
}

TEST(RqPoly, PimBackendAgreesWithCpuBackend) {
  const RnsBasis basis(256, 2, 30);
  Rng rng(5);
  RqPoly pa(basis), pb(basis);
  for (std::size_t limb = 0; limb < 2; ++limb) {
    pa.limb(limb) = rng.residues(256, basis.prime(limb));
    pb.limb(limb) = rng.residues(256, basis.prime(limb));
  }

  CpuBackend cpu;
  PimBackend pim(4);
  const auto via_cpu = pa.multiply(pb, cpu);
  const auto via_pim = pa.multiply(pb, pim);
  EXPECT_EQ(via_cpu, via_pim);
  EXPECT_GT(pim.total_cycles(), 0u);
  EXPECT_GT(pim.total_energy_nj(), 0.0);
  EXPECT_EQ(pim.transform_count(), 6u);
}

TEST(PimBackend, PlanCacheMemoizesRepeatedTransforms) {
  const ntt::NttParams params = ntt::NttParams::create(256, 30);
  PimBackend pim(4);
  Rng rng(21);
  auto first = rng.residues(256, params.q());
  auto second = rng.residues(256, params.q());

  pim.forward(first, params);
  EXPECT_EQ(pim.plan_cache_hits(), 0u);
  EXPECT_EQ(pim.plan_cache_misses(), 1u);
  const std::uint64_t cycles_first = pim.total_cycles();

  pim.forward(second, params);
  EXPECT_EQ(pim.plan_cache_hits(), 1u);
  EXPECT_EQ(pim.plan_cache_misses(), 1u);
  // The cached plan must cost exactly what the freshly-mapped one did.
  EXPECT_EQ(pim.total_cycles(), 2 * cycles_first);

  pim.inverse(second, params);  // different direction = different plan
  EXPECT_EQ(pim.plan_cache_misses(), 2u);
}

TEST(PimBackend, BatchMatchesCpuBackendPerPolynomial) {
  const ntt::NttParams params = ntt::NttParams::create(256, 30);
  // 5 polynomials over a 2-bank device: three waves (2 + 2 + 1).
  PimBackend pim(4, 1200.0, dram::hbm2e_geometry(2));
  ASSERT_EQ(pim.num_banks(), 2u);
  CpuBackend cpu;

  Rng rng(22);
  std::vector<std::vector<std::uint32_t>> polys(5);
  std::vector<std::vector<std::uint32_t>> expected(5);
  for (std::size_t i = 0; i < polys.size(); ++i) {
    polys[i] = rng.residues(256, params.q());
    expected[i] = polys[i];
    cpu.forward(expected[i], params);
  }

  pim.transform_batch(polys, params);
  EXPECT_EQ(polys, expected);
  EXPECT_EQ(pim.transform_count(), 5u);
  EXPECT_EQ(pim.engine_passes(), 3u);
  // Bank 1's plan is the bank-0 plan with rewritten bank ids, and every
  // wave after the first runs fully from cache.
  EXPECT_EQ(pim.plan_cache_misses(), 2u);
}

TEST(PimBackend, BatchRoundTripsThroughInverse) {
  const ntt::NttParams params = ntt::NttParams::create(128, 29);
  PimBackend pim(4, 1200.0, dram::hbm2e_geometry(4));

  Rng rng(23);
  std::vector<std::vector<std::uint32_t>> polys(4);
  std::vector<std::vector<std::uint32_t>> original(4);
  for (std::size_t i = 0; i < polys.size(); ++i)
    original[i] = polys[i] = rng.residues(128, params.q());

  pim.transform_batch(polys, params, /*inverse=*/false);
  EXPECT_NE(polys, original);
  pim.transform_batch(polys, params, /*inverse=*/true);
  EXPECT_EQ(polys, original);
}

// Cost estimation (the dispatcher's pricing input): a plan-cache miss is
// priced by a deliberately conservative default, a hit by the cached
// plan's command counts — close to what the engine actually charges — and
// estimating never touches the device or its counters.
TEST(PimBackend, EstimateWaveCyclesTracksEngineWithoutTouchingDevice) {
  const ntt::NttParams params = ntt::NttParams::create(256, 30);
  PimBackend pim(4);
  BatchItem item{nullptr, &params, false};

  const std::uint64_t miss_estimate = pim.estimate_wave_cycles({&item, 1});
  EXPECT_GT(miss_estimate, 0u);
  EXPECT_EQ(pim.total_cycles(), 0u);       // device untouched
  EXPECT_EQ(pim.engine_passes(), 0u);
  EXPECT_EQ(pim.plan_cache_misses(), 0u);  // ...and no plan was mapped

  Rng rng(29);
  auto poly = rng.residues(256, params.q());
  pim.forward(poly, params);
  const std::uint64_t actual = pim.total_cycles();

  const std::uint64_t hit_estimate = pim.estimate_wave_cycles({&item, 1});
  // The closed-form price ignores pipelining overlap and stalls; what
  // matters for dispatch is that it sits within a small constant factor
  // of the engine (empirically ~0.6x) and well under the miss default.
  EXPECT_GE(hit_estimate, actual / 4);
  EXPECT_LE(hit_estimate, actual * 4);
  EXPECT_GT(miss_estimate, hit_estimate);
  EXPECT_EQ(pim.total_cycles(), actual);  // estimating still costs nothing
}

// Wave pricing mirrors the executor's placement: items are spread
// round-robin across banks (parallel), stacked items serialize within a
// bank, and a bigger transform prices higher than a smaller one.
TEST(PimBackend, EstimateWaveCyclesModelsBankParallelism) {
  const ntt::NttParams p256 = ntt::NttParams::create(256, 30);
  const ntt::NttParams p1024 = ntt::NttParams::create(1024, 30);
  PimBackend pim(4, 1200.0, dram::hbm2e_geometry(2));

  Rng rng(31);
  auto a = rng.residues(256, p256.q());
  auto b = rng.residues(1024, p1024.q());
  pim.forward(a, p256);
  pim.forward(b, p1024);

  const BatchItem small{nullptr, &p256, false};
  const BatchItem large{nullptr, &p1024, false};
  const auto one_small = pim.estimate_wave_cycles({&small, 1});
  const auto one_large = pim.estimate_wave_cycles({&large, 1});
  EXPECT_GT(one_large, one_small);

  // Two items land in different banks of the 2-bank device: the wave's
  // makespan is the busier bank, not the sum.
  const std::vector<BatchItem> pair{small, large};
  EXPECT_EQ(pim.estimate_wave_cycles(pair), one_large);

  // Three items: the third stacks behind the first in bank 0.
  const std::vector<BatchItem> triple{large, small, large};
  EXPECT_EQ(pim.estimate_wave_cycles(triple), 2 * one_large);
}

// Pricing replays the executor's channel-major placement: items pinned to
// one channel serialize over that channel's bank subset, items spread
// across channels overlap, and an unhinted wave round-robins channels.
TEST(PimBackend, EstimateWaveCyclesModelsChannelParallelism) {
  const ntt::NttParams params = ntt::NttParams::create(256, 30);
  PimBackend pim(4, 1200.0, dram::hbm2e_geometry(4, 2));
  EXPECT_EQ(pim.num_channels(), 2u);
  EXPECT_EQ(pim.banks_per_channel(), 2u);

  Rng rng(37);
  auto poly = rng.residues(256, params.q());
  pim.forward(poly, params);  // cache the plan so pricing uses real counts
  const std::uint64_t device_cycles = pim.total_cycles();

  BatchItem any{nullptr, &params, false};
  BatchItem ch0 = any;
  ch0.channel = 0;
  BatchItem ch1 = any;
  ch1.channel = 1;
  const auto one = pim.estimate_wave_cycles({&any, 1});

  // Three items pinned to channel 0: its two banks take them 2 + 1, so the
  // busiest bank runs two back-to-back — channel 1 never helps.
  const std::vector<BatchItem> pinned{ch0, ch0, ch0};
  EXPECT_EQ(pim.estimate_wave_cycles(pinned), 2 * one);

  // Spread 2 + 1 across the channels and every bank runs at most one item.
  const std::vector<BatchItem> spread{ch0, ch0, ch1};
  EXPECT_EQ(pim.estimate_wave_cycles(spread), one);

  // Unhinted items round-robin the channels: two items land on different
  // channels, not stacked in one.
  const std::vector<BatchItem> both{any, any};
  EXPECT_EQ(pim.estimate_wave_cycles(both), one);

  EXPECT_EQ(pim.total_cycles(), device_cycles);  // estimating is free

  // A hint beyond the device's channel count is a caller bug.
  BatchItem bad = any;
  bad.channel = 2;
  EXPECT_THROW(pim.estimate_wave_cycles({&bad, 1}), std::invalid_argument);
}

// The bus term of the estimate is what makes channel parallelism visible
// to the dispatcher: a bulk wave on one 8-bank device prices strictly
// cheaper when the banks are split over four buses instead of one.
TEST(PimBackend, EstimatePricesMultiChannelBulkWaveCheaper) {
  const ntt::NttParams params = ntt::NttParams::create(256, 30);
  Rng rng(41);
  auto poly = rng.residues(256, params.q());

  std::uint64_t est[2];
  const std::size_t channels[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    PimBackend pim(4, 1200.0, dram::hbm2e_geometry(8, channels[i]));
    auto p = poly;
    pim.forward(p, params);
    const BatchItem item{nullptr, &params, false};
    const std::vector<BatchItem> bulk(16, item);
    est[i] = pim.estimate_wave_cycles(bulk);
  }
  EXPECT_GT(est[0], est[1]);
}

TEST(RqPoly, BasisMismatchRejected) {
  const RnsBasis basis_a(16, 2, 30);
  const RnsBasis basis_b(16, 2, 29);
  const RqPoly pa(basis_a);
  const RqPoly pb(basis_b);
  EXPECT_THROW(pa + pb, std::invalid_argument);
}

// ---------------------------------------------------------------------- BFV

std::vector<std::uint32_t> random_message(std::size_t n, std::uint32_t t,
                                          std::uint64_t seed) {
  Rng rng(seed);
  return rng.residues(n, t);
}

TEST(Bfv, EncryptDecryptRoundTrip) {
  CpuBackend backend;
  BfvParams params;
  params.n = 256;
  params.t = 17;
  Bfv bfv(params, backend, /*seed=*/11);

  for (int trial = 0; trial < 3; ++trial) {
    const auto m = random_message(params.n, params.t, 100 + trial);
    const auto ct = bfv.encrypt(m);
    EXPECT_EQ(bfv.decrypt(ct), m);
  }
}

TEST(Bfv, FreshNoiseIsSmall) {
  CpuBackend backend;
  BfvParams params;
  params.n = 128;
  Bfv bfv(params, backend, 12);
  const auto m = random_message(params.n, params.t, 1);
  const auto ct = bfv.encrypt(m);
  // Correct decryption requires noise < q/(2t); fresh noise is far below.
  EXPECT_LT(bfv.noise_magnitude(ct, m),
            bfv.ntt_params().q() / (2 * params.t) / 16);
}

TEST(Bfv, HomomorphicAddition) {
  CpuBackend backend;
  BfvParams params;
  params.n = 128;
  params.t = 31;
  Bfv bfv(params, backend, 13);

  const auto m1 = random_message(params.n, params.t, 2);
  const auto m2 = random_message(params.n, params.t, 3);
  const auto sum_ct = bfv.add(bfv.encrypt(m1), bfv.encrypt(m2));

  std::vector<std::uint32_t> expected(params.n);
  for (std::size_t i = 0; i < params.n; ++i)
    expected[i] = (m1[i] + m2[i]) % params.t;
  EXPECT_EQ(bfv.decrypt(sum_ct), expected);
}

TEST(Bfv, HomomorphicMultiplication) {
  CpuBackend backend;
  BfvParams params;
  params.n = 64;
  params.t = 5;
  params.noise_bound = 2;
  Bfv bfv(params, backend, 14);

  const auto m1 = random_message(params.n, params.t, 4);
  const auto m2 = random_message(params.n, params.t, 5);
  const auto product = bfv.multiply(bfv.encrypt(m1), bfv.encrypt(m2));
  EXPECT_EQ(product.degree(), 2u);
  EXPECT_EQ(bfv.decrypt(product), bfv.plaintext_multiply(m1, m2));
}

TEST(Bfv, MultiplyThenAdd) {
  CpuBackend backend;
  BfvParams params;
  params.n = 64;
  params.t = 5;
  params.noise_bound = 2;
  Bfv bfv(params, backend, 15);

  const auto m1 = random_message(params.n, params.t, 6);
  const auto m2 = random_message(params.n, params.t, 7);
  const auto prod1 = bfv.multiply(bfv.encrypt(m1), bfv.encrypt(m2));
  const auto prod2 = bfv.multiply(bfv.encrypt(m2), bfv.encrypt(m1));
  const auto sum = bfv.add(prod1, prod2);

  const auto pm = bfv.plaintext_multiply(m1, m2);
  std::vector<std::uint32_t> expected(params.n);
  for (std::size_t i = 0; i < params.n; ++i)
    expected[i] = (2 * pm[i]) % params.t;
  EXPECT_EQ(bfv.decrypt(sum), expected);
}

TEST(Bfv, NoiseGrowsMonotonicallyThroughOperations) {
  CpuBackend backend;
  BfvParams params;
  params.n = 64;
  params.t = 5;
  params.noise_bound = 2;
  Bfv bfv(params, backend, 21);

  const auto m1 = random_message(params.n, params.t, 31);
  const auto m2 = random_message(params.n, params.t, 32);
  const auto ct1 = bfv.encrypt(m1);
  const auto ct2 = bfv.encrypt(m2);

  const auto fresh_noise = bfv.noise_magnitude(ct1, m1);

  std::vector<std::uint32_t> m_sum(params.n);
  for (std::size_t i = 0; i < params.n; ++i)
    m_sum[i] = (m1[i] + m2[i]) % params.t;
  const auto sum_noise = bfv.noise_magnitude(bfv.add(ct1, ct2), m_sum);

  const auto m_prod = bfv.plaintext_multiply(m1, m2);
  const auto prod_noise =
      bfv.noise_magnitude(bfv.multiply(ct1, ct2), m_prod);

  EXPECT_GE(sum_noise, fresh_noise);   // addition adds noise linearly
  EXPECT_GT(prod_noise, sum_noise);    // multiplication amplifies it
  // And all stay within the decryption budget q/(2t).
  EXPECT_LT(prod_noise, bfv.ntt_params().q() / (2 * params.t));
}

TEST(RnsBasis, ProductMatchesLimbPrimes) {
  const RnsBasis basis(128, 3, 28);
  unsigned __int128 product = 1;
  for (std::size_t i = 0; i < basis.limb_count(); ++i)
    product *= basis.prime(i);
  EXPECT_TRUE(product == basis.modulus_product());
}

TEST(Bfv, WorksOnPimBackend) {
  PimBackend backend(4);
  BfvParams params;
  params.n = 64;
  params.t = 17;
  Bfv bfv(params, backend, 16);
  const auto m = random_message(params.n, params.t, 8);
  const auto ct = bfv.encrypt(m);
  EXPECT_EQ(bfv.decrypt(ct), m);
  EXPECT_GT(backend.total_cycles(), 0u);
}

TEST(Bfv, RejectsBadInputs) {
  CpuBackend backend;
  BfvParams params;
  params.n = 64;
  params.t = 17;
  Bfv bfv(params, backend, 17);

  auto m = random_message(params.n, params.t, 9);
  m[0] = params.t;  // out of plaintext range
  EXPECT_THROW(bfv.encrypt(m), std::invalid_argument);

  BfvParams bad;
  bad.n = 64;
  bad.t = 1;  // degenerate plaintext modulus
  EXPECT_THROW(Bfv(bad, backend), std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::fhe
