// Tests for the additional NTT algorithm baselines (radix-4, four-step).
#include <gtest/gtest.h>

#include "common/random.h"
#include "ntt/fourstep.h"
#include "ntt/radix4.h"
#include "ntt/reference.h"

namespace nttpim::ntt {
namespace {

std::vector<std::uint32_t> random_poly(std::size_t n, std::uint32_t q,
                                       std::uint64_t seed) {
  Rng rng(seed);
  return rng.residues(n, q);
}

TEST(IsPow4, Classification) {
  EXPECT_TRUE(is_pow4(4));
  EXPECT_TRUE(is_pow4(16));
  EXPECT_TRUE(is_pow4(1024));
  EXPECT_TRUE(is_pow4(4096));
  EXPECT_FALSE(is_pow4(2));
  EXPECT_FALSE(is_pow4(8));
  EXPECT_FALSE(is_pow4(512));
  EXPECT_FALSE(is_pow4(12));
}

class Radix4Agreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Radix4Agreement, MatchesRadix2) {
  const std::size_t n = GetParam();
  const NttParams p = NttParams::create(n);
  const auto input = random_poly(n, p.q(), n);
  auto expected = input;
  forward_ntt(expected, p);
  EXPECT_EQ(ntt_radix4(input, p), expected);
}

INSTANTIATE_TEST_SUITE_P(PowersOfFour, Radix4Agreement,
                         ::testing::Values(4, 16, 64, 256, 1024, 4096));

TEST(Radix4, RejectsNonPowerOfFour) {
  const NttParams p = NttParams::create(512);
  const auto input = random_poly(512, p.q(), 1);
  EXPECT_THROW(ntt_radix4(input, p), std::invalid_argument);
}

class FourStepAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FourStepAgreement, MatchesDirectTransform) {
  const std::size_t n = GetParam();
  const NttParams p = NttParams::create(n);
  const auto input = random_poly(n, p.q(), 2 * n);
  auto expected = input;
  forward_ntt(expected, p);
  EXPECT_EQ(ntt_four_step(input, p), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FourStepAgreement,
                         ::testing::Values(4, 8, 16, 64, 256, 1024, 2048,
                                           8192));

TEST(FourStep, TinySizesFallBack) {
  const NttParams p = NttParams::create(2);
  const auto input = random_poly(2, p.q(), 9);
  auto expected = input;
  forward_ntt(expected, p);
  EXPECT_EQ(ntt_four_step(input, p), expected);
}

TEST(ForwardNttWithRoot, AgreesWithParamsPath) {
  const NttParams p = NttParams::create(128);
  auto a = random_poly(128, p.q(), 5);
  auto b = a;
  forward_ntt(a, p);
  forward_ntt_with_root(b, p.q(), p.omega());
  EXPECT_EQ(a, b);
}

TEST(ForwardNttWithRoot, RejectsNonRoot) {
  auto a = random_poly(64, 12289, 6);
  EXPECT_THROW(forward_ntt_with_root(a, 12289, 2), std::invalid_argument);
}

}  // namespace
}  // namespace nttpim::ntt
