#include "common/table.h"

#include <gtest/gtest.h>

namespace nttpim {
namespace {

TEST(TablePrinter, RendersAlignedTable) {
  TablePrinter t({"N", "latency"});
  t.add_row({"256", "3.90"});
  t.add_row({"8192", "1000.00"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| N    | latency |"), std::string::npos);
  EXPECT_NE(s.find("| 8192 | 1000.00 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, RejectsArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::num(1234.5678, 3), "1234.568");
}

}  // namespace
}  // namespace nttpim
