// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "dram/config.h"

namespace nttpim::bench {

/// Echo the Table-I architecture parameters every bench runs under, so each
/// report is self-describing.
inline void print_table1_header(const char* title) {
  const dram::DramTiming t = dram::hbm2e_timing();
  const dram::DramGeometry g = dram::hbm2e_geometry();
  std::cout << "==== " << title << " ====\n"
            << "Architecture (paper Table I, HBM2E): atom=" << g.atom_bytes
            << "B, cols/row=" << g.atoms_per_row
            << ", rows/bank=" << g.rows_per_bank << ", banks=" << g.banks
            << "\nTiming @" << t.freq_mhz << " MHz (cycles): CL=" << t.cl
            << " tCCD=" << t.tccd << " tRP=" << t.trp << " tRAS=" << t.tras
            << " tRCD=" << t.trcd << " tWR=" << t.twr
            << " | C1=" << t.c1_latency << " C2=" << t.c2_latency << "\n\n";
}

/// Scan argv for `--json [path]` / `--json=path`. Returns the output path
/// ("-" = stdout) when the flag is present, and strips it from argv so the
/// remaining arguments can go to another flag parser (e.g. google-benchmark).
inline std::optional<std::string> consume_json_flag(int& argc, char** argv) {
  std::optional<std::string> path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      path = "-";
      // A value may follow; a lone "-" (stdout) is a value, not a flag.
      if (i + 1 < argc &&
          (argv[i + 1][0] != '-' || std::string_view(argv[i + 1]) == "-"))
        path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = std::string(arg.substr(7));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return path;
}

/// Scan argv for `--name <value>` / `--name=value`; returns the value when
/// present and strips the flag from argv (same contract as
/// consume_json_flag). `name` includes the dashes, e.g. "--requests".
/// A present flag with no value (end of argv, or another flag where the
/// value belongs) is a usage error: reported to stderr, exit 2.
inline std::optional<std::string> consume_value_flag(int& argc, char** argv,
                                                     std::string_view name) {
  std::optional<std::string> value;
  const std::string prefixed = std::string(name) + "=";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == name) {
      if (i + 1 >= argc || (argv[i + 1][0] == '-' &&
                            std::string_view(argv[i + 1]) != "-")) {
        std::cerr << "missing value for " << name << "\n";
        std::exit(2);
      }
      value = argv[++i];
    } else if (arg.rfind(prefixed, 0) == 0) {
      value = std::string(arg.substr(prefixed.size()));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return value;
}

/// Scan argv for `--trace <path>` / `--trace=path`: where to write the
/// Chrome trace-event JSON of the run's request lifecycles (load the file
/// in Perfetto / chrome://tracing; see src/telemetry/). Returns the output
/// path when the flag is present and strips it from argv — same contract
/// as consume_value_flag, shared by bench_service and service_demo.
inline std::optional<std::string> consume_trace_flag(int& argc, char** argv) {
  return consume_value_flag(argc, argv, "--trace");
}

/// Shared tail of every bench flag parser, run after the known flags were
/// consumed: `--help`/`-h` prints `usage` and exits 0; anything still left
/// in argv is an unknown flag — rejected with the usage text and exit code
/// 2 instead of the historical silent ignore.
inline void finish_flags(int argc, char** argv, std::string_view usage) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage;
      std::exit(0);
    }
  }
  if (argc > 1) {
    std::cerr << "unrecognized argument: " << argv[1] << "\n" << usage;
    std::exit(2);
  }
}

/// Minimal streaming JSON emitter — just what the bench reporters need:
/// nested objects/arrays and string/number/bool scalars, pretty-printed so
/// committed baselines diff cleanly.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() { open('{'); }
  void begin_object(std::string_view key) { open('{', key); }
  void end_object() { close('}'); }
  void begin_array(std::string_view key) { open('[', key); }
  void end_array() { close(']'); }

  void field(std::string_view key, std::string_view value) {
    item(key);
    quote(value);
  }
  void field(std::string_view key, const char* value) {
    field(key, std::string_view(value));
  }
  void field(std::string_view key, bool value) {
    item(key);
    os_ << (value ? "true" : "false");
  }
  template <typename T>
  void field(std::string_view key, T value) {
    static_assert(std::is_arithmetic_v<T>);
    item(key);
    if constexpr (std::is_floating_point_v<T>) {
      // Round-trippable precision: baselines are diffed, so sub-ulp
      // regressions must survive the text round trip.
      const auto saved = os_.precision(std::numeric_limits<T>::max_digits10);
      os_ << value;
      os_.precision(saved);
    } else {
      os_ << +value;
    }
  }

 private:
  void open(char bracket, std::string_view key = {}) {
    item(key);
    os_ << bracket;
    first_ = true;
    ++depth_;
  }
  void close(char bracket) {
    --depth_;
    if (!first_) newline();
    os_ << bracket;
    first_ = false;
    if (depth_ == 0) os_ << '\n';
  }
  void item(std::string_view key) {
    if (depth_ > 0) {
      if (!first_) os_ << ',';
      newline();
    }
    first_ = false;
    if (!key.empty()) {
      quote(key);
      os_ << ": ";
    }
  }
  void newline() {
    os_ << '\n';
    for (int i = 0; i < depth_; ++i) os_ << "  ";
  }
  void quote(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      if (c == '"' || c == '\\') os_ << '\\';
      os_ << c;
    }
    os_ << '"';
  }

  std::ostream& os_;
  int depth_ = 0;
  bool first_ = true;
};

/// Emit the shared architecture block (paper Table I) every JSON report
/// carries, so a baseline is interpretable without the producing binary.
inline void write_architecture(JsonWriter& json) {
  const dram::DramTiming t = dram::hbm2e_timing();
  const dram::DramGeometry g = dram::hbm2e_geometry();
  json.begin_object("architecture");
  json.field("name", "HBM2E (paper Table I)");
  json.field("atom_bytes", g.atom_bytes);
  json.field("atoms_per_row", g.atoms_per_row);
  json.field("rows_per_bank", g.rows_per_bank);
  json.field("banks", g.banks);
  json.field("freq_mhz", t.freq_mhz);
  json.end_object();
}

/// Splice `fragment` (one or more already-rendered depth-1 members, leading
/// separator excluded) into the top-level JSON object held in `text`,
/// first deleting an existing `section_key` member so re-runs are
/// idempotent. Returns false when `text` is not an appendable object (no
/// trailing '}', or a present section whose comma/bracketing cannot be
/// matched) — the caller falls back to a standalone report.
inline bool splice_json_section(std::string& text, std::string_view section_key,
                                std::string fragment) {
  const std::string quoted = '"' + std::string(section_key) + '"';
  if (const std::size_t prev = text.find(quoted); prev != std::string::npos) {
    // Drop the previous section, ending at its value's *matching* close
    // bracket (a hand-merged file may have members after it).
    const std::size_t comma = text.rfind(',', prev);
    const std::size_t open = text.find_first_of("[{", prev);
    std::size_t close = std::string::npos;
    if (open != std::string::npos) {
      const char open_bracket = text[open];
      const char close_bracket = open_bracket == '[' ? ']' : '}';
      int depth = 0;
      for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == open_bracket) ++depth;
        if (text[i] == close_bracket && --depth == 0) {
          close = i;
          break;
        }
      }
    }
    if (comma == std::string::npos || close == std::string::npos) return false;
    text.erase(comma, close + 1 - comma);
  }
  const std::size_t tail = text.find_last_not_of(" \t\r\n");
  const std::size_t last_member =
      tail != std::string::npos && tail > 0 && text[tail] == '}'
          ? text.find_last_not_of(" \t\r\n", tail - 1)
          : std::string::npos;
  if (last_member == std::string::npos) return false;
  while (!fragment.empty() && fragment.back() == '\n') fragment.pop_back();
  // No separating comma after an empty object's '{'.
  const char* separator = text[last_member] == '{' ? "" : ",";
  text.insert(last_member + 1, separator + fragment);
  return true;
}

/// Emit one bench section BENCH_host.json-style. `write_section` renders
/// the section's depth-1 members into a JsonWriter positioned inside the
/// top-level object. When `path` holds an existing JSON object (the file
/// bench_bank_parallel --json wrote), the section is spliced in, replacing
/// any previous run's; otherwise ("-" or absent/unappendable file) a
/// standalone {schema, bench, architecture, section} report is written.
/// Returns a process exit code.
template <typename WriteSection>
int write_host_section(const std::string& path, std::string_view bench_name,
                       std::string_view section_key,
                       WriteSection&& write_section) {
  if (path != "-") {
    std::string existing;
    if (std::ifstream in(path); in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
    if (!existing.empty()) {
      std::ostringstream os;
      JsonWriter json(os);
      json.begin_object();
      write_section(json);
      json.end_object();
      // Render to a fragment for splicing at depth 1.
      const std::string text = os.str();
      const std::size_t open = text.find('{');
      const std::size_t close = text.rfind('}');
      std::string fragment = text.substr(open + 1, close - open - 1);
      if (splice_json_section(existing, section_key, std::move(fragment))) {
        std::ofstream file(path);
        if (!(file << existing)) {
          std::cerr << "cannot write " << path << "\n";
          return 1;
        }
        return 0;
      }
      std::cerr << "warning: " << path << " has an unappendable \""
                << section_key
                << "\" section; writing a standalone report instead\n";
    }
  }
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.field("schema", "nttpim-bench-host-v1");
  json.field("bench", bench_name);
  write_architecture(json);
  write_section(json);
  json.end_object();
  if (path == "-") {
    std::cout << os.str();
    return 0;
  }
  std::ofstream file(path);
  if (!(file << os.str())) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  return 0;
}

}  // namespace nttpim::bench
