// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdint>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

#include "dram/config.h"

namespace nttpim::bench {

/// Echo the Table-I architecture parameters every bench runs under, so each
/// report is self-describing.
inline void print_table1_header(const char* title) {
  const dram::DramTiming t = dram::hbm2e_timing();
  const dram::DramGeometry g = dram::hbm2e_geometry();
  std::cout << "==== " << title << " ====\n"
            << "Architecture (paper Table I, HBM2E): atom=" << g.atom_bytes
            << "B, cols/row=" << g.atoms_per_row
            << ", rows/bank=" << g.rows_per_bank << ", banks=" << g.banks
            << "\nTiming @" << t.freq_mhz << " MHz (cycles): CL=" << t.cl
            << " tCCD=" << t.tccd << " tRP=" << t.trp << " tRAS=" << t.tras
            << " tRCD=" << t.trcd << " tWR=" << t.twr
            << " | C1=" << t.c1_latency << " C2=" << t.c2_latency << "\n\n";
}

/// Scan argv for `--json [path]` / `--json=path`. Returns the output path
/// ("-" = stdout) when the flag is present, and strips it from argv so the
/// remaining arguments can go to another flag parser (e.g. google-benchmark).
inline std::optional<std::string> consume_json_flag(int& argc, char** argv) {
  std::optional<std::string> path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      path = "-";
      if (i + 1 < argc && argv[i + 1][0] != '-') path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = std::string(arg.substr(7));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return path;
}

/// Minimal streaming JSON emitter — just what the bench reporters need:
/// nested objects/arrays and string/number/bool scalars, pretty-printed so
/// committed baselines diff cleanly.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() { open('{'); }
  void begin_object(std::string_view key) { open('{', key); }
  void end_object() { close('}'); }
  void begin_array(std::string_view key) { open('[', key); }
  void end_array() { close(']'); }

  void field(std::string_view key, std::string_view value) {
    item(key);
    quote(value);
  }
  void field(std::string_view key, const char* value) {
    field(key, std::string_view(value));
  }
  void field(std::string_view key, bool value) {
    item(key);
    os_ << (value ? "true" : "false");
  }
  template <typename T>
  void field(std::string_view key, T value) {
    static_assert(std::is_arithmetic_v<T>);
    item(key);
    if constexpr (std::is_floating_point_v<T>) {
      // Round-trippable precision: baselines are diffed, so sub-ulp
      // regressions must survive the text round trip.
      const auto saved = os_.precision(std::numeric_limits<T>::max_digits10);
      os_ << value;
      os_.precision(saved);
    } else {
      os_ << +value;
    }
  }

 private:
  void open(char bracket, std::string_view key = {}) {
    item(key);
    os_ << bracket;
    first_ = true;
    ++depth_;
  }
  void close(char bracket) {
    --depth_;
    if (!first_) newline();
    os_ << bracket;
    first_ = false;
    if (depth_ == 0) os_ << '\n';
  }
  void item(std::string_view key) {
    if (depth_ > 0) {
      if (!first_) os_ << ',';
      newline();
    }
    first_ = false;
    if (!key.empty()) {
      quote(key);
      os_ << ": ";
    }
  }
  void newline() {
    os_ << '\n';
    for (int i = 0; i < depth_; ++i) os_ << "  ";
  }
  void quote(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      if (c == '"' || c == '\\') os_ << '\\';
      os_ << c;
    }
    os_ << '"';
  }

  std::ostream& os_;
  int depth_ = 0;
  bool first_ = true;
};

/// Emit the shared architecture block (paper Table I) every JSON report
/// carries, so a baseline is interpretable without the producing binary.
inline void write_architecture(JsonWriter& json) {
  const dram::DramTiming t = dram::hbm2e_timing();
  const dram::DramGeometry g = dram::hbm2e_geometry();
  json.begin_object("architecture");
  json.field("name", "HBM2E (paper Table I)");
  json.field("atom_bytes", g.atom_bytes);
  json.field("atoms_per_row", g.atoms_per_row);
  json.field("rows_per_bank", g.rows_per_bank);
  json.field("banks", g.banks);
  json.field("freq_mhz", t.freq_mhz);
  json.end_object();
}

}  // namespace nttpim::bench
