// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <iostream>

#include "dram/config.h"

namespace nttpim::bench {

/// Echo the Table-I architecture parameters every bench runs under, so each
/// report is self-describing.
inline void print_table1_header(const char* title) {
  const dram::DramTiming t = dram::hbm2e_timing();
  const dram::DramGeometry g = dram::hbm2e_geometry();
  std::cout << "==== " << title << " ====\n"
            << "Architecture (paper Table I, HBM2E): atom=" << g.atom_bytes
            << "B, cols/row=" << g.atoms_per_row
            << ", rows/bank=" << g.rows_per_bank << ", banks=" << g.banks
            << "\nTiming @" << t.freq_mhz << " MHz (cycles): CL=" << t.cl
            << " tCCD=" << t.tccd << " tRP=" << t.trp << " tRAS=" << t.tras
            << " tRCD=" << t.trcd << " tWR=" << t.twr
            << " | C1=" << t.c1_latency << " C2=" << t.c2_latency << "\n\n";
}

}  // namespace nttpim::bench
