// Bank-level parallelism (paper Sec. VI.A and the future-work note in
// Sec. VII): independent NTTs in independent banks sharing one command bus —
// plus the *host-side* throughput of the simulator stack itself.
//
// Two kinds of numbers, deliberately kept apart:
//  - Modeled hardware numbers (cycles, speedup): produced by the
//    cycle-accurate engine, deterministic, guarded against drift by CI.
//  - Host wall-clock throughput (transforms/sec): how fast the *simulator*
//    chews through an FHE-shaped workload. `--json` emits both as
//    BENCH_host.json; the wall-clock section is a per-machine snapshot
//    (before/after the plan-cache + Barrett + batched-backend work), not a
//    determinism baseline.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "fhe/cpu_backend.h"
#include "fhe/pim_backend.h"
#include "ntt/params.h"
#include "sim/runner.h"

namespace {

using namespace nttpim;

constexpr std::size_t kN = 1024;
constexpr std::size_t kNumBuffers = 4;

struct ModeledPoint {
  std::size_t banks;
  sim::ParallelRunResult result;
};

/// Modeled bank-scaling sweep (deterministic).
std::vector<ModeledPoint> modeled_scaling(bool& all_verified) {
  sim::NttRunConfig config;
  config.n = kN;
  config.num_buffers = kNumBuffers;
  std::vector<ModeledPoint> points;
  for (const std::size_t banks : {1, 2, 4, 8, 16}) {
    ModeledPoint p{banks, sim::run_parallel_ntts(banks, config)};
    all_verified = all_verified && p.result.all_verified;
    points.push_back(p);
  }
  return points;
}

std::vector<std::vector<std::uint32_t>> random_polys(std::size_t count,
                                                     std::uint32_t q,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> polys(count);
  for (auto& p : polys) p = rng.residues(kN, q);
  return polys;
}

bool verify_forward(const std::vector<std::vector<std::uint32_t>>& inputs,
                    const std::vector<std::vector<std::uint32_t>>& outputs,
                    const ntt::NttParams& params) {
  fhe::CpuBackend cpu;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto expected = inputs[i];
    cpu.forward(expected, params);
    if (outputs[i] != expected) return false;
  }
  return true;
}

struct RepeatedResult {
  std::size_t cold_transforms = 0;
  std::size_t warm_transforms = 0;
  double cold_tps = 0;  ///< transforms per second, pre-PR per-call path
  double warm_tps = 0;  ///< transforms per second, persistent + plan cache
  double speedup = 0;
  bool verified = false;
};

/// Repeated-transform FHE workload: the same (N, q) forward negacyclic
/// transform over and over — what a BFV multiply does limb by limb.
/// "Cold" rebuilds the backend per transform, reproducing the pre-cache
/// behavior (device reconstruction + mapper re-run per call); "warm" uses
/// one persistent backend whose plan cache serves every call after the
/// first. Both run the identical cycle-accurate simulation.
RepeatedResult repeated_transform_throughput() {
  const ntt::NttParams params = ntt::NttParams::create(kN);
  RepeatedResult r;
  r.cold_transforms = 16;
  r.warm_transforms = 64;

  {
    const auto inputs = random_polys(r.cold_transforms, params.q(), 1);
    auto outputs = inputs;
    Stopwatch timer;
    for (auto& poly : outputs) {
      fhe::PimBackend backend(kNumBuffers);
      backend.forward(poly, params);
    }
    r.cold_tps = static_cast<double>(r.cold_transforms) /
                 (timer.elapsed_ns() / 1e9);
    r.verified = verify_forward(inputs, outputs, params);
  }
  {
    const auto inputs = random_polys(r.warm_transforms, params.q(), 2);
    auto outputs = inputs;
    fhe::PimBackend backend(kNumBuffers);
    Stopwatch timer;
    for (auto& poly : outputs) backend.forward(poly, params);
    r.warm_tps = static_cast<double>(r.warm_transforms) /
                 (timer.elapsed_ns() / 1e9);
    r.verified = r.verified && verify_forward(inputs, outputs, params);
  }
  r.speedup = r.warm_tps / r.cold_tps;
  return r;
}

struct BatchPoint {
  std::size_t banks = 0;
  std::size_t transforms = 0;
  double tps = 0;                   ///< host transforms per second
  std::uint64_t modeled_cycles = 0; ///< summed makespans of the waves
  double modeled_speedup = 0;       ///< 1-bank cycles / B-bank cycles
  bool verified = false;
};

/// Batched multi-bank throughput: a fixed pile of transforms sharded across
/// B banks, B per engine pass. Host throughput rises both because one
/// engine pass replaces B (amortized scheduling) and because the modeled
/// makespan per wave grows far slower than B (bank-level parallelism).
std::vector<BatchPoint> batch_throughput() {
  const ntt::NttParams params = ntt::NttParams::create(kN);
  constexpr std::size_t kTransforms = 16;
  std::vector<BatchPoint> points;
  for (const std::size_t banks : {1, 2, 4, 8}) {
    BatchPoint p;
    p.banks = banks;
    p.transforms = kTransforms;
    const auto inputs = random_polys(kTransforms, params.q(), 3);
    auto outputs = inputs;
    fhe::PimBackend backend(kNumBuffers, 1200.0,
                            dram::hbm2e_geometry(banks));
    Stopwatch timer;
    backend.transform_batch(outputs, params);
    p.tps = static_cast<double>(kTransforms) / (timer.elapsed_ns() / 1e9);
    p.modeled_cycles = backend.total_cycles();
    p.verified = verify_forward(inputs, outputs, params);
    points.push_back(p);
  }
  for (auto& p : points)
    p.modeled_speedup = static_cast<double>(points[0].modeled_cycles) /
                        static_cast<double>(p.modeled_cycles);
  return points;
}

int run_json(const std::string& path) {
  bool all_verified = true;
  const auto modeled = modeled_scaling(all_verified);
  const RepeatedResult repeated = repeated_transform_throughput();
  const auto batch = batch_throughput();
  all_verified = all_verified && repeated.verified;
  for (const auto& p : batch) all_verified = all_verified && p.verified;

  std::ostringstream os;
  bench::JsonWriter json(os);
  json.begin_object();
  json.field("schema", "nttpim-bench-host-v1");
  json.field("bench", "bench_bank_parallel");
  bench::write_architecture(json);

  json.begin_array("modeled_bank_scaling");
  for (const auto& p : modeled) {
    json.begin_object();
    json.field("banks", p.banks);
    json.field("n", kN);
    json.field("num_buffers", kNumBuffers);
    json.field("makespan_cycles", p.result.cycles);
    json.field("single_bank_cycles", p.result.single_bank_cycles);
    json.field("throughput_speedup", p.result.throughput_speedup);
    json.field("verified", p.result.all_verified);
    json.end_object();
  }
  json.end_array();

  json.begin_object("host_throughput");
  json.field("host_wall_clock", true);
  json.field(
      "note",
      "per-machine snapshot, not a determinism baseline; transforms/sec of "
      "the simulator stack on a repeated forward negacyclic NTT workload");
  json.begin_object("repeated_transforms");
  json.field("n", kN);
  json.field("num_buffers", kNumBuffers);
  json.field("cold_transforms", repeated.cold_transforms);
  json.field("warm_transforms", repeated.warm_transforms);
  json.field("cold_transforms_per_sec", repeated.cold_tps);
  json.field("warm_transforms_per_sec", repeated.warm_tps);
  json.field("warm_over_cold_speedup", repeated.speedup);
  json.field("verified", repeated.verified);
  json.end_object();
  json.begin_array("batched_multi_bank");
  for (const auto& p : batch) {
    json.begin_object();
    json.field("banks", p.banks);
    json.field("transforms", p.transforms);
    json.field("transforms_per_sec", p.tps);
    json.field("modeled_cycles_total", p.modeled_cycles);
    json.field("modeled_throughput_speedup", p.modeled_speedup);
    json.field("verified", p.verified);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.end_object();

  if (!all_verified) {
    std::cerr << "bench aborted: a simulated NTT failed functional "
                 "verification against the reference transform\n";
    return 1;
  }
  if (path == "-") {
    std::cout << os.str();
  } else {
    std::ofstream file(path);
    if (!(file << os.str())) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

constexpr const char* kUsage =
    "usage: bench_bank_parallel [--json [path]]\n"
    "  Bank-level parallelism: modeled bank-scaling sweep plus host\n"
    "  wall-clock throughput of the simulator stack.\n"
    "  --json [path]  write the BENCH_host.json-style report to path\n"
    "                 (\"-\"/no path = stdout)\n";

int main(int argc, char** argv) {
  const auto json_path = bench::consume_json_flag(argc, argv);
  bench::finish_flags(argc, argv, kUsage);
  if (json_path) return run_json(*json_path);

  bench::print_table1_header(
      "Bank-level parallelism (N = 1024, Nb = 4, one NTT per bank)");

  bool all_verified = true;
  const auto modeled = modeled_scaling(all_verified);
  if (!all_verified) {
    std::cerr << "verification FAILED in the modeled scaling sweep\n";
    return EXIT_FAILURE;
  }
  TablePrinter table({"banks", "makespan (cycles)", "1-bank (cycles)",
                      "throughput speedup", "efficiency"});
  for (const auto& p : modeled) {
    table.add_row(
        {std::to_string(p.banks), std::to_string(p.result.cycles),
         std::to_string(p.result.single_bank_cycles),
         TablePrinter::num(p.result.throughput_speedup),
         TablePrinter::num(p.result.throughput_speedup /
                           static_cast<double>(p.banks) * 100.0, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nNear-linear until the shared one-command-per-cycle bus "
               "saturates during the command-dense row-block phase — the "
               "system-level effect the paper defers to future work.\n\n";

  const RepeatedResult repeated = repeated_transform_throughput();
  std::cout << "Host wall-clock, repeated forward NTT (N = " << kN
            << "):\n  per-call rebuild (pre-cache): "
            << TablePrinter::num(repeated.cold_tps, 1)
            << " transforms/s\n  persistent + plan cache:      "
            << TablePrinter::num(repeated.warm_tps, 1)
            << " transforms/s  (" << TablePrinter::num(repeated.speedup)
            << "x)\n\n";

  TablePrinter host({"banks", "host transforms/s", "modeled cycles",
                     "modeled speedup"});
  const auto batch = batch_throughput();
  bool batch_ok = repeated.verified;
  for (const auto& p : batch) {
    batch_ok = batch_ok && p.verified;
    host.add_row({std::to_string(p.banks), TablePrinter::num(p.tps, 1),
                  std::to_string(p.modeled_cycles),
                  TablePrinter::num(p.modeled_speedup)});
  }
  std::cout << "Batched multi-bank backend (16 transforms, one engine pass "
               "per wave of `banks`):\n";
  host.print(std::cout);
  if (!batch_ok) {
    std::cerr << "verification FAILED in the host-throughput section\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
