// Bank-level parallelism (paper Sec. VI.A and the future-work note in
// Sec. VII): independent NTTs in independent banks sharing one command bus.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/runner.h"

int main() {
  using namespace nttpim;
  bench::print_table1_header(
      "Bank-level parallelism (N = 1024, Nb = 4, one NTT per bank)");

  TablePrinter table({"banks", "makespan (cycles)", "1-bank (cycles)",
                      "throughput speedup", "efficiency"});
  sim::NttRunConfig config;
  config.n = 1024;
  config.num_buffers = 4;

  for (const std::size_t banks : {1, 2, 4, 8, 16}) {
    const auto r = sim::run_parallel_ntts(banks, config);
    if (!r.all_verified) {
      std::cerr << "verification FAILED at " << banks << " banks\n";
      return 1;
    }
    table.add_row(
        {std::to_string(banks), std::to_string(r.cycles),
         std::to_string(r.single_bank_cycles),
         TablePrinter::num(r.throughput_speedup),
         TablePrinter::num(r.throughput_speedup /
                           static_cast<double>(banks) * 100.0, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nNear-linear until the shared one-command-per-cycle bus "
               "saturates during the command-dense row-block phase — the "
               "system-level effect the paper defers to future work.\n";
  return 0;
}
