// Extension bench: inverse and negacyclic transforms on the PIM.
//
// The paper evaluates the forward NTT only. Our documented extension
// supports INTT (N^{-1} scaling) and the negacyclic post-scale psi^{-i}
// via the zero-operand C2 trick (DESIGN.md): this bench quantifies the
// overhead of the extra scaling pass relative to the forward transform.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/runner.h"

int main() {
  using namespace nttpim;
  bench::print_table1_header(
      "Extension: inverse / negacyclic transform overhead (Nb = 4)");

  const std::size_t sizes[] = {256, 1024, 4096};

  TablePrinter table({"N", "forward (us)", "inverse (us)",
                      "inv negacyclic (us)", "scale-pass overhead"});
  for (const std::size_t n : sizes) {
    sim::NttRunConfig config;
    config.n = n;
    config.num_buffers = 4;

    const auto fwd = sim::run_ntt_on_pim(config);
    config.direction = mapping::Direction::kInverse;
    const auto inv = sim::run_ntt_on_pim(config);
    config.negacyclic = true;
    const auto inv_nega = sim::run_ntt_on_pim(config);
    if (!fwd.verified || !inv.verified || !inv_nega.verified) {
      std::cerr << "verification FAILED\n";
      return 1;
    }

    table.add_row({std::to_string(n), TablePrinter::num(fwd.latency_us),
                   TablePrinter::num(inv.latency_us),
                   TablePrinter::num(inv_nega.latency_us),
                   TablePrinter::num(inv.latency_us / fwd.latency_us)});
  }
  table.print(std::cout);
  std::cout << "\nThe scaling pass costs one extra sweep over the data "
               "(one activation per row plus N/8 zero-trick C2 ops).\n";
  return 0;
}
