// Ablation for paper Fig. 6 / Sec. V: the effect of pipelined emission.
//
// "w/o pipelining" restricts the mapper to the minimal buffer set (one
// buffer for C1, one pair for C2) even when more exist; "w/ pipelining"
// software-pipelines over all Nb buffers. The gain comes from (i)
// overlapping transfers with compute, and (ii) in the inter-row regime,
// grouping same-row accesses to remove row activations.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/runner.h"

int main() {
  using namespace nttpim;
  bench::print_table1_header("Ablation: pipelining (Fig. 6 / Sec. V)");

  const std::size_t sizes[] = {256, 1024, 4096};
  const std::size_t buffer_counts[] = {2, 4, 6};

  TablePrinter table({"N", "Nb", "cycles w/o", "cycles w/", "speedup",
                      "ACTs w/o", "ACTs w/", "ACT reduction"});
  for (const std::size_t n : sizes) {
    for (const std::size_t nb : buffer_counts) {
      sim::NttRunConfig config;
      config.n = n;
      config.num_buffers = nb;

      config.pipelined = false;
      const auto off = sim::run_ntt_on_pim(config);
      config.pipelined = true;
      const auto on = sim::run_ntt_on_pim(config);
      if (!off.verified || !on.verified) {
        std::cerr << "verification FAILED\n";
        return 1;
      }

      table.add_row(
          {std::to_string(n), std::to_string(nb),
           std::to_string(off.stats.cycles), std::to_string(on.stats.cycles),
           TablePrinter::num(static_cast<double>(off.stats.cycles) /
                             static_cast<double>(on.stats.cycles)),
           std::to_string(off.stats.activations),
           std::to_string(on.stats.activations),
           TablePrinter::num(static_cast<double>(off.stats.activations) /
                             static_cast<double>(on.stats.activations))});
    }
  }
  table.print(std::cout);
  std::cout << "\nNote: at Nb=2 the pipelined and minimal schedules "
               "coincide for C2 phases (one buffer pair), so gains appear "
               "from Nb=4 on; ACT reduction only exists where the inter-row "
               "regime does (N >= 512).\n";
  return 0;
}
