// Regenerates paper Table II: PIM area overhead vs a DRAM bank and Newton.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "model/area.h"

int main() {
  using namespace nttpim;
  bench::print_table1_header("Table II: PIM Area Overhead");

  const model::AreaModel area;
  TablePrinter table({"Architecture", "Nb", "Area (mm^2)", "% of bank",
                      "paper (mm^2)", "paper (%)"});
  table.add_row({"A DRAM bank", "-", TablePrinter::num(area.bank_area(), 4),
                 "-", "4.2208", "-"});
  table.add_row({"Newton", "-", TablePrinter::num(area.newton_area(), 4),
                 TablePrinter::num(area.newton_area() / area.bank_area() *
                                       100.0, 3),
                 "0.0474", "1.123"});

  const struct {
    std::size_t nb;
    const char* paper_area;
    const char* paper_pct;
  } rows[] = {{1, "0.0213", "0.504"},
              {2, "0.0232", "0.550"},
              {4, "0.0263", "0.624"},
              {6, "0.0285", "0.676"}};
  for (const auto& row : rows) {
    const auto a = area.nttpim_area(row.nb);
    table.add_row({"NTT-PIM", std::to_string(row.nb),
                   TablePrinter::num(a.total_mm2, 4),
                   TablePrinter::num(a.percent_of_bank, 3), row.paper_area,
                   row.paper_pct});
  }
  table.print(std::cout);

  std::cout << "\nComponent breakdown (Nb = 4):\n";
  const auto b = area.nttpim_area(4);
  TablePrinter parts({"Component", "Area (mm^2)"});
  parts.add_row({"ModMult (Montgomery, 32b)", TablePrinter::num(b.modmult_mm2, 4)});
  parts.add_row({"2x ModAdd/Sub", TablePrinter::num(b.modaddsub_mm2, 4)});
  parts.add_row({"TFG", TablePrinter::num(b.tfg_mm2, 4)});
  parts.add_row({"LSU + control + crossbar", TablePrinter::num(b.lsu_ctrl_mm2, 4)});
  parts.add_row({"Secondary atom buffers", TablePrinter::num(b.buffers_mm2, 4)});
  parts.print(std::cout);
  return 0;
}
