// Regenerates paper Table III: comparison with previous PIM-based NTT
// accelerators (MeNTT, CryptoPIM), x86 and FPGA, in latency and energy.
//
// Our NTT-PIM rows are simulated; the related-work rows are the numbers
// quoted in the paper (no hardware exists to re-run); x86 is additionally
// measured on this host. Units are us / uJ (see model/baselines.h for the
// unit note on the paper's column headers).
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "model/baselines.h"
#include "model/cpu_baseline.h"
#include "sim/runner.h"

int main() {
  using namespace nttpim;
  bench::print_table1_header("Table III: Comparison with previous work");

  const std::size_t sizes[] = {256, 512, 1024, 2048, 4096};
  const std::size_t buffer_counts[] = {2, 4, 6};

  // Simulate our design once per (N, Nb).
  double sim_us[5][3];
  double sim_uj[5][3];
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) {
      sim::NttRunConfig config;
      config.n = sizes[i];
      config.num_buffers = buffer_counts[j];
      const auto result = sim::run_ntt_on_pim(config);
      if (!result.verified) {
        std::cerr << "verification FAILED\n";
        return 1;
      }
      sim_us[i][j] = result.latency_us;
      sim_uj[i][j] = result.energy_nj / 1e3;
    }
  }

  std::cout << "Latency (us):\n";
  TablePrinter lat({"N", "ours Nb=2", "ours Nb=4", "ours Nb=6", "MeNTT",
                    "CryptoPIM", "x86 paper", "x86 here", "FPGA",
                    "paper Nb=2"});
  for (int i = 0; i < 5; ++i) {
    const auto& designs = model::table3_designs();
    const auto fmt = [&](const std::optional<double>& v) {
      return v ? TablePrinter::num(*v) : std::string("-");
    };
    lat.add_row({std::to_string(sizes[i]), TablePrinter::num(sim_us[i][0]),
                 TablePrinter::num(sim_us[i][1]),
                 TablePrinter::num(sim_us[i][2]),
                 fmt(designs[0].latency_at(sizes[i])),
                 fmt(designs[1].latency_at(sizes[i])),
                 fmt(designs[2].latency_at(sizes[i])),
                 TablePrinter::num(
                     model::measure_cpu_plain(sizes[i]).latency_us),
                 fmt(designs[3].latency_at(sizes[i])),
                 fmt(model::paper_nttpim(2).latency_at(sizes[i]))});
  }
  lat.print(std::cout);

  std::cout << "\nEnergy (uJ):\n";
  TablePrinter energy({"N", "ours Nb=2", "ours Nb=4", "MeNTT", "CryptoPIM",
                       "x86 paper", "x86 here", "FPGA", "paper Nb=2"});
  for (int i = 0; i < 5; ++i) {
    const auto& designs = model::table3_designs();
    const auto fmt = [&](const std::optional<double>& v) {
      return v ? TablePrinter::num(*v) : std::string("-");
    };
    energy.add_row(
        {std::to_string(sizes[i]), TablePrinter::num(sim_uj[i][0]),
         TablePrinter::num(sim_uj[i][1]), fmt(designs[0].energy_at(sizes[i])),
         fmt(designs[1].energy_at(sizes[i])),
         fmt(designs[2].energy_at(sizes[i])),
         TablePrinter::num(model::measure_cpu_plain(sizes[i]).energy_uj),
         fmt(designs[3].energy_at(sizes[i])),
         fmt(model::paper_nttpim(2).energy_at(sizes[i]))});
  }
  energy.print(std::cout);

  std::cout << "\nSpeedup of ours (Nb=6) over related work (from reported "
               "latencies):\n";
  TablePrinter speedup({"N", "vs MeNTT", "vs CryptoPIM", "vs x86 paper",
                        "vs FPGA"});
  for (int i = 0; i < 5; ++i) {
    const auto& designs = model::table3_designs();
    const auto ratio = [&](const std::optional<double>& v) {
      return v ? TablePrinter::num(*v / sim_us[i][2]) + "x"
               : std::string("-");
    };
    speedup.add_row({std::to_string(sizes[i]),
                     ratio(designs[0].latency_at(sizes[i])),
                     ratio(designs[1].latency_at(sizes[i])),
                     ratio(designs[2].latency_at(sizes[i])),
                     ratio(designs[3].latency_at(sizes[i]))});
  }
  speedup.print(std::cout);
  std::cout << "\nPaper claim: 1.7x ~ 17x over the previous best PIM NTT "
               "accelerators, with no modulus/length restrictions.\n";
  return 0;
}
