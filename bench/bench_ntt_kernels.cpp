// google-benchmark microbenchmarks of the NTT kernel library: the
// algorithm variants discussed in paper Sec. II.B (Cooley-Tukey vs Pease vs
// Stockham) and the modular-reduction strategies of the BU datapath
// (Montgomery vs Barrett vs plain `%`).
#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

#include "bench_common.h"
#include "common/bitutil.h"
#include "common/random.h"
#include "ntt/barrett.h"
#include "ntt/fourstep.h"
#include "ntt/montgomery.h"
#include "ntt/params.h"
#include "ntt/pease.h"
#include "ntt/poly.h"
#include "ntt/radix4.h"
#include "ntt/reference.h"
#include "ntt/stockham.h"
#include "sim/runner.h"

namespace {

using namespace nttpim;

const ntt::NttParams& params_for(std::size_t n) {
  static std::map<std::size_t, ntt::NttParams> cache;
  auto it = cache.find(n);
  if (it == cache.end())
    it = cache.emplace(n, ntt::NttParams::create(n)).first;
  return it->second;
}

std::vector<std::uint32_t> input_for(std::size_t n, std::uint32_t q) {
  Rng rng(n);
  return rng.residues(n, q);
}

void BM_NttCooleyTukey(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto a = input;
    bit_reverse_permute(a);
    ntt::ntt_dit_bitrev_to_natural(a, p);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}

void BM_NttGentlemanSande(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto a = input;
    ntt::ntt_dif_natural_to_bitrev(a, p);
    benchmark::DoNotOptimize(a.data());
  }
}

void BM_NttPease(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto out = ntt::ntt_pease_natural_to_bitrev(input, p);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_NttStockham(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto out = ntt::ntt_stockham(input, p);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_NttRadix4(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto out = ntt::ntt_radix4(input, p);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_NttFourStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto out = ntt::ntt_four_step(input, p);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_NttPlainMod(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto a = input;
    ntt::forward_ntt_plain_mod(a, p.q(), p.omega());
    benchmark::DoNotOptimize(a.data());
  }
}

void BM_NttMontgomeryCpu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto a = input;
    ntt::forward_ntt_montgomery(a, p);
    benchmark::DoNotOptimize(a.data());
  }
}

void BM_ReduceMontgomery(benchmark::State& state) {
  const std::uint32_t q = 998244353;
  const ntt::Montgomery32 mont(q);
  Rng rng(1);
  std::vector<std::uint32_t> xs(1024), ys(1024);
  for (auto& x : xs) x = rng.next_mod(q);
  for (auto& y : ys) y = rng.next_mod(q);
  for (auto _ : state) {
    std::uint32_t acc = 1;
    for (std::size_t i = 0; i < xs.size(); ++i)
      acc ^= mont.mul(xs[i], ys[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}

void BM_ReduceBarrett(benchmark::State& state) {
  const std::uint32_t q = 998244353;
  const ntt::Barrett32 barrett(q);
  Rng rng(2);
  std::vector<std::uint32_t> xs(1024), ys(1024);
  for (auto& x : xs) x = rng.next_mod(q);
  for (auto& y : ys) y = rng.next_mod(q);
  for (auto _ : state) {
    std::uint32_t acc = 1;
    for (std::size_t i = 0; i < xs.size(); ++i)
      acc ^= barrett.mul(xs[i], ys[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}

void BM_ReducePlainMod(benchmark::State& state) {
  const std::uint32_t q = 998244353;
  Rng rng(3);
  std::vector<std::uint32_t> xs(1024), ys(1024);
  for (auto& x : xs) x = rng.next_mod(q);
  for (auto& y : ys) y = rng.next_mod(q);
  for (auto _ : state) {
    std::uint32_t acc = 1;
    for (std::size_t i = 0; i < xs.size(); ++i)
      acc ^= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(xs[i]) * ys[i] % q);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}

void BM_PolymulNttVsSchoolbook(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto a = input_for(n, p.q());
  const auto b = input_for(n, p.q() - 1);
  for (auto _ : state) {
    auto c = ntt::negacyclic_convolution_ntt(a, b, p);
    benchmark::DoNotOptimize(c.data());
  }
}

// `--json [path]` perf-baseline mode: instead of wall-clock microbenchmarks,
// run each kernel config through the cycle-accurate PIM simulation and emit
// the cycle / ACT counts that optimization PRs are judged against
// (committed as BENCH_*.json at the repo root).
int run_json_baseline(const std::string& path) {
  using namespace nttpim;

  // Buffer the report and only write the output file once every config has
  // verified, so a broken sim never leaves a plausible-looking baseline on
  // disk for a script that ignores the exit status.
  std::ostringstream os;
  bench::JsonWriter json(os);
  json.begin_object();
  json.field("schema", "nttpim-bench-v1");
  json.field("bench", "bench_ntt_kernels");
  bench::write_architecture(json);
  json.begin_array("kernels");
  bool all_verified = true;
  for (const std::size_t n : {256, 1024, 4096, 16384}) {
    for (const std::size_t num_buffers : {2, 4}) {
      for (const bool negacyclic : {false, true}) {
        sim::NttRunConfig config;
        config.n = n;
        config.num_buffers = num_buffers;
        config.negacyclic = negacyclic;
        const sim::NttRunResult result = sim::run_ntt_on_pim(config);
        all_verified = all_verified && result.verified;

        json.begin_object();
        json.field("n", n);
        json.field("q", result.q);
        json.field("num_buffers", num_buffers);
        json.field("negacyclic", negacyclic);
        json.field("pipelined", config.pipelined);
        json.field("row_centric", config.row_centric);
        json.field("verified", result.verified);
        json.field("cycles", result.stats.cycles);
        json.field("latency_us", result.latency_us);
        json.field("energy_nj", result.energy_nj);
        json.field("activations", result.stats.activations);
        json.field("precharges", result.stats.precharges);
        json.field("column_reads", result.stats.column_reads);
        json.field("column_writes", result.stats.column_writes);
        json.field("compute_ops", result.stats.compute_ops);
        json.field("butterflies", result.stats.butterflies);
        json.field("commands", result.stats.commands);
        json.begin_object("acts_by_regime");
        for (const auto& [regime, acts] : result.trace_counts.acts_by_regime)
          json.field(dram::to_string(regime), acts);
        json.end_object();
        json.end_object();
      }
    }
  }
  json.end_array();
  json.end_object();
  if (!all_verified) {
    std::cerr << "baseline aborted: a simulated NTT failed functional "
                 "verification against the reference transform\n";
    return 1;
  }
  if (path == "-") {
    std::cout << os.str();
  } else {
    std::ofstream file(path);
    if (!(file << os.str())) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

BENCHMARK(BM_NttCooleyTukey)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_NttGentlemanSande)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_NttPease)->RangeMultiplier(4)->Range(256, 4096);
BENCHMARK(BM_NttStockham)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_NttRadix4)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_NttFourStep)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_NttPlainMod)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_NttMontgomeryCpu)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_ReduceMontgomery);
BENCHMARK(BM_ReduceBarrett);
BENCHMARK(BM_ReducePlainMod);
BENCHMARK(BM_PolymulNttVsSchoolbook)->Arg(256)->Arg(1024);

int main(int argc, char** argv) {
  if (const auto json_path = nttpim::bench::consume_json_flag(argc, argv))
    return run_json_baseline(*json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
