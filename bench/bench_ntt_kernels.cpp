// google-benchmark microbenchmarks of the NTT kernel library: the
// algorithm variants discussed in paper Sec. II.B (Cooley-Tukey vs Pease vs
// Stockham) and the modular-reduction strategies of the BU datapath
// (Montgomery vs Barrett vs plain `%`).
#include <benchmark/benchmark.h>

#include "common/bitutil.h"
#include "common/random.h"
#include "ntt/barrett.h"
#include "ntt/fourstep.h"
#include "ntt/montgomery.h"
#include "ntt/params.h"
#include "ntt/pease.h"
#include "ntt/poly.h"
#include "ntt/radix4.h"
#include "ntt/reference.h"
#include "ntt/stockham.h"

namespace {

using namespace nttpim;

const ntt::NttParams& params_for(std::size_t n) {
  static std::map<std::size_t, ntt::NttParams> cache;
  auto it = cache.find(n);
  if (it == cache.end())
    it = cache.emplace(n, ntt::NttParams::create(n)).first;
  return it->second;
}

std::vector<std::uint32_t> input_for(std::size_t n, std::uint32_t q) {
  Rng rng(n);
  return rng.residues(n, q);
}

void BM_NttCooleyTukey(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto a = input;
    bit_reverse_permute(a);
    ntt::ntt_dit_bitrev_to_natural(a, p);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}

void BM_NttGentlemanSande(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto a = input;
    ntt::ntt_dif_natural_to_bitrev(a, p);
    benchmark::DoNotOptimize(a.data());
  }
}

void BM_NttPease(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto out = ntt::ntt_pease_natural_to_bitrev(input, p);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_NttStockham(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto out = ntt::ntt_stockham(input, p);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_NttRadix4(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto out = ntt::ntt_radix4(input, p);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_NttFourStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto out = ntt::ntt_four_step(input, p);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_NttPlainMod(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto a = input;
    ntt::forward_ntt_plain_mod(a, p.q(), p.omega());
    benchmark::DoNotOptimize(a.data());
  }
}

void BM_NttMontgomeryCpu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto input = input_for(n, p.q());
  for (auto _ : state) {
    auto a = input;
    ntt::forward_ntt_montgomery(a, p);
    benchmark::DoNotOptimize(a.data());
  }
}

void BM_ReduceMontgomery(benchmark::State& state) {
  const std::uint32_t q = 998244353;
  const ntt::Montgomery32 mont(q);
  Rng rng(1);
  std::vector<std::uint32_t> xs(1024), ys(1024);
  for (auto& x : xs) x = rng.next_mod(q);
  for (auto& y : ys) y = rng.next_mod(q);
  for (auto _ : state) {
    std::uint32_t acc = 1;
    for (std::size_t i = 0; i < xs.size(); ++i)
      acc ^= mont.mul(xs[i], ys[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}

void BM_ReduceBarrett(benchmark::State& state) {
  const std::uint32_t q = 998244353;
  const ntt::Barrett32 barrett(q);
  Rng rng(2);
  std::vector<std::uint32_t> xs(1024), ys(1024);
  for (auto& x : xs) x = rng.next_mod(q);
  for (auto& y : ys) y = rng.next_mod(q);
  for (auto _ : state) {
    std::uint32_t acc = 1;
    for (std::size_t i = 0; i < xs.size(); ++i)
      acc ^= barrett.mul(xs[i], ys[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}

void BM_ReducePlainMod(benchmark::State& state) {
  const std::uint32_t q = 998244353;
  Rng rng(3);
  std::vector<std::uint32_t> xs(1024), ys(1024);
  for (auto& x : xs) x = rng.next_mod(q);
  for (auto& y : ys) y = rng.next_mod(q);
  for (auto _ : state) {
    std::uint32_t acc = 1;
    for (std::size_t i = 0; i < xs.size(); ++i)
      acc ^= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(xs[i]) * ys[i] % q);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}

void BM_PolymulNttVsSchoolbook(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& p = params_for(n);
  const auto a = input_for(n, p.q());
  const auto b = input_for(n, p.q() - 1);
  for (auto _ : state) {
    auto c = ntt::negacyclic_convolution_ntt(a, b, p);
    benchmark::DoNotOptimize(c.data());
  }
}

}  // namespace

BENCHMARK(BM_NttCooleyTukey)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_NttGentlemanSande)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_NttPease)->RangeMultiplier(4)->Range(256, 4096);
BENCHMARK(BM_NttStockham)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_NttRadix4)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_NttFourStep)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_NttPlainMod)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_NttMontgomeryCpu)->RangeMultiplier(4)->Range(256, 8192);
BENCHMARK(BM_ReduceMontgomery);
BENCHMARK(BM_ReduceBarrett);
BENCHMARK(BM_ReducePlainMod);
BENCHMARK(BM_PolymulNttVsSchoolbook)->Arg(256)->Arg(1024);

BENCHMARK_MAIN();
