// Closed-loop load generator for the async NTT serving runtime.
//
// Each client thread plays a synchronous caller: submit one forward
// negacyclic NTT, block on the future, verify against the CPU reference,
// repeat — the worst case for batch occupancy, since no client ever hands
// the service a pre-formed batch. Everything the serving layer wins, it
// wins by coalescing *independent* requests into mixed waves. The sweep
// crosses client count x shard count x flush window and reports, per
// point:
//  - aggregate requests/sec (host wall-clock, per-machine snapshot);
//  - mean wave occupancy (batch items per engine pass) — the utilization
//    figure the wave-former exists to raise;
//  - service-latency percentiles, i.e. what the coalescing window costs.
//
// A second, skewed-load scenario exercises the dispatch layer: bursts of
// expensive (N = 1024) and cheap (N = 256) requests are staged behind a
// paused former so the wave stream alternates one hot size class with one
// cold one. Blind round-robin assignment then pins every hot wave to the
// same shard — the cross-device imbalance the cost-aware dispatcher and
// work stealing exist to fix — and the scenario is run three ways (FIFO,
// FIFO + stealing, cost-aware + stealing), reporting each mode's
// busiest-shard share of the modeled device cycles and its stolen-wave
// count.
//
// A third scenario prices the heterogeneous backend tier: the same staged
// bulk/small wave stream is served by a lone PIM shard and then by the
// PIM shard plus a host-CPU worker pool, comparing how many waves the CPU
// absorbs and the busiest backend's modeled makespan (see run_hetero).
//
// A fourth scenario prices the channel hierarchy: the same 16-bank device
// runs one bulk 16-item wave with its banks behind 1 vs 4 command buses
// (a deterministic engine pass — splitting the shared bus shortens the
// modeled makespan with bit-identical outputs), then a live 4-channel
// shard serves a staged bulk burst and reports how the hierarchical
// (shard, channel) dispatcher spread the waves per channel.
//
// A fifth scenario prices the multi-tenant QoS layers: a bulk tenant's
// backlog staged *ahead of* a deadlined critical tenant's requests, run
// under FIFO forming, under EDF forming + deadline-pressure dispatch
// (the critical p99 collapses), and once more with a token bucket on the
// bulk tenant (exactly half its requests shed) — see run_qos.
//
// `--json <path>` appends "service_throughput", "service_skewed_dispatch",
// "service_hetero_backends", "service_multi_channel" and "service_qos"
// sections to an existing BENCH_host.json-style object at <path> (or
// writes standalone reports), exactly like bench_rns_limbs.
// `--requests <k>` shrinks the per-client request count (CI smoke runs
// use a small k).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "dram/config.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "fhe/cpu_backend.h"
#include "fhe/pim_backend.h"
#include "fhe/ntt_backend.h"
#include "ntt/params.h"
#include "service/backend.h"
#include "service/dispatcher.h"
#include "service/ntt_service.h"
#include "service/request.h"
#include "telemetry/chrome_trace.h"

namespace {

using namespace nttpim;

constexpr std::size_t kN = 256;
constexpr std::size_t kBanksPerShard = 8;
constexpr std::size_t kNumBuffers = 4;
constexpr std::size_t kDefaultRequestsPerClient = 32;

struct SweepPoint {
  std::size_t clients = 0;
  std::size_t shards = 0;
  std::size_t window_us = 0;
  std::size_t requests = 0;
  double seconds = 0;
  double requests_per_sec = 0;
  std::uint64_t waves = 0;
  std::uint64_t engine_passes = 0;
  double mean_wave_occupancy = 0;
  double queue_p50_us = 0;
  double service_p50_us = 0;
  double service_p95_us = 0;
  double service_p99_us = 0;
  /// Device-time of the busiest shard (modeled cycles). Shards are
  /// independent devices, so this is the modeled makespan of the point:
  /// with 2 shards it falls toward half of the 1-shard figure on *any*
  /// host, while requests_per_sec needs >= shards idle cores to show the
  /// same scaling in wall-clock.
  std::uint64_t modeled_max_shard_cycles = 0;
  bool verified = false;
};

/// One sweep point: `clients` closed-loop client threads, each issuing
/// `requests_per_client` forward transforms one at a time and checking
/// every result against the host CPU transform.
SweepPoint run_point(const std::shared_ptr<const ntt::NttParams>& params,
                     std::size_t clients, std::size_t shards,
                     std::size_t window_us,
                     std::size_t requests_per_client) {
  service::ServiceConfig cfg;
  cfg.backend.shards = shards;
  cfg.backend.banks_per_shard = kBanksPerShard;
  cfg.backend.num_buffers = kNumBuffers;
  cfg.former.queue_capacity = 4096;
  cfg.former.flush_window = std::chrono::microseconds(window_us);
  service::NttService svc(cfg);

  // Warmup outside the timer: lets the shard threads finish building their
  // 8-bank devices, fills every shard's plan cache, and touches the
  // simulated DRAM pages. The sweep prices steady-state serving, not boot.
  {
    Rng rng(7);
    std::vector<std::future<std::vector<std::uint32_t>>> warm;
    for (std::size_t i = 0; i < 4 * shards * kBanksPerShard; ++i)
      warm.push_back(svc.submit(rng.residues(kN, params->q()), params));
    for (auto& f : warm) f.get();
    // A future is fulfilled before the wave's counters land; drain() waits
    // for the bookkeeping too, so the reset starts a clean epoch.
    svc.drain();
    svc.reset_stats();
  }

  std::atomic<std::uint64_t> mismatch_count{0};
  Stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(100 + c);
      fhe::CpuBackend cpu;
      for (std::size_t r = 0; r < requests_per_client; ++r) {
        auto poly = rng.residues(kN, params->q());
        auto expected = poly;
        cpu.forward(expected, *params);
        auto future = svc.submit(std::move(poly), params);
        if (future.get() != expected)
          mismatch_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.elapsed_ns() / 1e9;
  svc.drain();  // settle the last wave's counters before the snapshot
  svc.shutdown();

  const service::ServiceStats stats = svc.stats();
  SweepPoint p;
  p.clients = clients;
  p.shards = shards;
  p.window_us = window_us;
  p.requests = clients * requests_per_client;
  p.seconds = seconds;
  p.requests_per_sec = static_cast<double>(p.requests) / seconds;
  p.waves = stats.waves;
  p.engine_passes = stats.engine_passes;
  p.mean_wave_occupancy = stats.mean_wave_occupancy;
  p.queue_p50_us = stats.queue_latency.p50_us;
  p.service_p50_us = stats.service_latency.p50_us;
  p.service_p95_us = stats.service_latency.p95_us;
  p.service_p99_us = stats.service_latency.p99_us;
  for (const auto& shard : stats.shards)
    p.modeled_max_shard_cycles =
        std::max(p.modeled_max_shard_cycles, shard.modeled_cycles);
  p.verified = mismatch_count.load(std::memory_order_relaxed) == 0 &&
               stats.completed == p.requests && stats.failed == 0;
  return p;
}

// ------------------------------------------------------- skewed dispatch

constexpr std::size_t kSkewedBanksPerShard = 4;
constexpr std::size_t kSkewedWaves = 24;  // alternating hot / cold classes
constexpr std::size_t kSkewedHotN = 1024;
constexpr std::size_t kSkewedColdN = 256;

struct SkewedPoint {
  const char* mode = "";
  std::size_t requests = 0;
  double seconds = 0;
  double requests_per_sec = 0;
  std::uint64_t stolen_waves = 0;
  std::uint64_t busiest_shard_cycles = 0;
  std::uint64_t total_shard_cycles = 0;
  double busiest_share = 0;  ///< busiest / total modeled device cycles
  bool verified = false;
};

/// One skewed-load run: 24 four-item waves staged behind a paused former,
/// alternating N=1024 (hot) and N=256 (cold), released at once onto 2
/// shards. Round-robin assignment resonates with the alternation — every
/// hot wave lands on shard 0 — so the three dispatch modes separate
/// cleanly in busiest-shard share.
SkewedPoint run_skewed(const char* mode, bool cost_aware, bool stealing) {
  const auto hot = std::make_shared<const ntt::NttParams>(
      ntt::NttParams::create(kSkewedHotN, 29));
  const auto cold = std::make_shared<const ntt::NttParams>(
      ntt::NttParams::create(kSkewedColdN, 30));

  service::ServiceConfig cfg;
  cfg.backend.shards = 2;
  cfg.backend.banks_per_shard = kSkewedBanksPerShard;
  cfg.backend.num_buffers = kNumBuffers;
  cfg.former.queue_capacity = 4096;
  cfg.former.flush_window = std::chrono::hours(1);  // only size flushes
  cfg.former.start_paused = true;                   // stage the whole skew, then go
  cfg.dispatch.shard_queue_waves = 2;  // shallow queues: imbalance stalls dispatch
  cfg.dispatch.cost_aware_dispatch = cost_aware;
  cfg.dispatch.work_stealing = stealing;
  service::NttService svc(cfg);

  Rng rng(13);
  fhe::CpuBackend cpu;
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  std::vector<std::vector<std::uint32_t>> expected;
  for (std::size_t w = 0; w < kSkewedWaves; ++w) {
    const auto& params = (w % 2 == 0) ? hot : cold;
    for (std::size_t i = 0; i < kSkewedBanksPerShard; ++i) {
      auto poly = rng.residues(params->n(), params->q());
      expected.push_back(poly);
      cpu.forward(expected.back(), *params);
      futures.push_back(svc.submit(std::move(poly), params));
    }
  }

  Stopwatch timer;
  svc.resume();
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < futures.size(); ++i)
    if (futures[i].get() != expected[i]) ++mismatches;
  const double seconds = timer.elapsed_ns() / 1e9;
  svc.drain();  // settle the last wave's counters before the snapshot
  svc.shutdown();

  const service::ServiceStats stats = svc.stats();
  SkewedPoint p;
  p.mode = mode;
  p.requests = futures.size();
  p.seconds = seconds;
  p.requests_per_sec = static_cast<double>(p.requests) / seconds;
  for (const auto& shard : stats.shards) {
    p.stolen_waves += shard.stolen_waves;
    p.busiest_shard_cycles =
        std::max(p.busiest_shard_cycles, shard.modeled_cycles);
    p.total_shard_cycles += shard.modeled_cycles;
  }
  p.busiest_share = p.total_shard_cycles
                        ? static_cast<double>(p.busiest_shard_cycles) /
                              static_cast<double>(p.total_shard_cycles)
                        : 0;
  p.verified = mismatches == 0 && stats.completed == p.requests &&
               stats.failed == 0;
  return p;
}

std::vector<SkewedPoint> skewed_sweep(bool& all_verified) {
  std::vector<SkewedPoint> points;
  points.push_back(run_skewed("fifo", false, false));
  points.push_back(run_skewed("fifo_steal", false, true));
  points.push_back(run_skewed("cost_aware_steal", true, true));
  for (const auto& p : points) all_verified = all_verified && p.verified;
  return points;
}

void write_skewed_section(bench::JsonWriter& json,
                          const std::vector<SkewedPoint>& points) {
  json.begin_array("service_skewed_dispatch");
  for (const auto& p : points) {
    json.begin_object();
    json.field("mode", p.mode);
    json.field("shards", 2);
    json.field("banks_per_shard", kSkewedBanksPerShard);
    json.field("waves", kSkewedWaves);
    json.field("n_hot", kSkewedHotN);
    json.field("n_cold", kSkewedColdN);
    json.field("requests", p.requests);
    json.field("host_wall_clock", true);
    json.field("host_cores", std::thread::hardware_concurrency());
    json.field("requests_per_sec", p.requests_per_sec);
    json.field("stolen_waves", p.stolen_waves);
    json.field("busiest_shard_cycles", p.busiest_shard_cycles);
    json.field("total_shard_cycles", p.total_shard_cycles);
    json.field("busiest_share", p.busiest_share);
    json.field("verified", p.verified);
    json.end_object();
  }
  json.end_array();
}

// --------------------------------------------------- heterogeneous tier

constexpr std::size_t kHeteroBanks = 4;
constexpr std::size_t kHeteroWaves = 24;  // alternating bulk / small
constexpr std::size_t kHeteroCpuLanes = 4;
constexpr std::size_t kHeteroBulkN = 1024;
constexpr std::size_t kHeteroSmallN = 256;

struct HeteroPoint {
  const char* mode = "";
  std::size_t requests = 0;
  double seconds = 0;
  double requests_per_sec = 0;
  std::uint64_t cpu_waves = 0;
  std::uint64_t pim_waves = 0;
  std::uint64_t cpu_requests = 0;
  /// Live-run accounting: max over shards of estimated_executed_cycles
  /// (the dispatcher's price for every wave the shard finished). Under
  /// load the host CPU races the cycle *simulator*, so the live split is
  /// wall-clock-shaped; the modeled_* fields below are the clean
  /// modeled-makespan comparison.
  std::uint64_t busiest_backend_est_cycles = 0;
  std::uint64_t total_est_cycles = 0;
  /// Modeled-dispatch replay (see run_hetero_replay): the same wave
  /// stream greedily assigned on modeled backlogs alone — deterministic,
  /// no execution racing — and the busiest backend's modeled serial
  /// finish time. This is the makespan figure CI compares across modes.
  std::uint64_t modeled_makespan_cycles = 0;
  std::uint64_t modeled_pim_waves = 0;
  std::uint64_t modeled_cpu_waves = 0;
  bool verified = false;
};

/// Deterministic modeled-makespan replay of the hetero wave stream: build
/// the backends directly from the same descriptors, warm the PIM plan
/// cache with one wave of each size class (so prices are measured, not
/// the conservative default), then feed every wave through a Dispatcher
/// no worker ever pops. Assignment is then pure greedy on modeled
/// backlogs — wall-clock never races the cycle simulator — and each
/// shard's final backlog_cycles() is the modeled serial finish time of
/// the waves routed to it. With measured prices the split lands exactly
/// where the paper's deployment model wants it: bulk waves stay on the
/// PIM (cheap in device cycles), small waves spill to the host CPU.
struct HeteroReplay {
  std::uint64_t makespan_cycles = 0;  ///< busiest backend's backlog
  std::uint64_t pim_waves = 0;
  std::uint64_t cpu_waves = 0;
};

HeteroReplay run_hetero_replay(
    bool add_cpu, const std::shared_ptr<const ntt::NttParams>& bulk,
    const std::shared_ptr<const ntt::NttParams>& small) {
  std::vector<service::BackendDescriptor> descriptors = {
      service::make_pim_descriptor(kHeteroBanks, kNumBuffers)};
  if (add_cpu)
    descriptors.push_back(service::make_cpu_descriptor(kHeteroCpuLanes));
  std::vector<std::unique_ptr<fhe::NttBackend>> backends;
  for (const auto& d : descriptors) backends.push_back(d.factory());

  // Warm the PIM's plan cache so estimates come from measured traces.
  {
    Rng rng(31);
    for (const auto& params : {bulk, small}) {
      std::vector<std::vector<std::uint32_t>> polys;
      std::vector<fhe::BatchItem> items;
      for (std::size_t i = 0; i < kHeteroBanks; ++i)
        polys.push_back(rng.residues(params->n(), params->q()));
      for (auto& p : polys) items.push_back({&p, params.get(), false});
      backends.front()->transform_batch_mixed(items);
    }
  }

  service::Dispatcher::Config cfg;
  cfg.shards.clear();
  for (const auto& d : descriptors)
    cfg.shards.push_back({d.kind, d.cost_scale});
  cfg.queue_capacity_waves = kHeteroWaves;  // nothing pops: never block
  cfg.cost_aware = true;
  cfg.work_stealing = false;
  service::Dispatcher dispatcher(
      cfg, [&](std::size_t shard, std::vector<service::Request>& wave) {
        std::vector<fhe::BatchItem> items;
        items.reserve(wave.size());
        for (auto& r : wave)
          items.push_back({&r.a, r.params.get(), r.inverse});
        return backends[shard]->estimate_wave_cycles(items);
      });

  Rng rng(29);
  std::vector<std::uint64_t> backlog(descriptors.size(), 0);
  std::vector<std::uint64_t> assigned(descriptors.size(), 0);
  for (std::size_t w = 0; w < kHeteroWaves; ++w) {
    const auto& params = (w % 2 == 0) ? bulk : small;
    std::vector<service::Request> wave(kHeteroBanks);
    for (auto& r : wave) {
      r.a = rng.residues(params->n(), params->q());
      r.params = params;
    }
    dispatcher.dispatch(std::move(wave));
    // The shard whose backlog grew is the assignee (prices are > 0).
    for (std::size_t s = 0; s < descriptors.size(); ++s) {
      const std::uint64_t b = dispatcher.backlog_cycles(s);
      if (b != backlog[s]) {
        backlog[s] = b;
        ++assigned[s];
      }
    }
  }

  HeteroReplay r;
  for (std::size_t s = 0; s < descriptors.size(); ++s) {
    r.makespan_cycles = std::max(r.makespan_cycles, backlog[s]);
    if (descriptors[s].kind == service::BackendKind::kCpu)
      r.cpu_waves += assigned[s];
    else
      r.pim_waves += assigned[s];
  }
  return r;
}

/// One heterogeneous-tier run: the bulk/small wave stream staged behind a
/// paused former, released onto a single 4-bank PIM shard ("pim_only") or
/// the same shard next to a host-CPU worker pool ("mixed"). Shallow
/// dispatch queues make the simulated device back up immediately — the
/// overflow traffic the CPU tier exists to absorb: cost-aware dispatch
/// spills waves to the CPU whenever its price-plus-backlog beats the
/// queued-up PIM's. Work stealing is off here on purpose: steals trigger
/// on wall-clock idleness (the host CPU races a cycle *simulator*), while
/// this scenario compares *modeled* makespans, so routing must stay
/// purely price-driven.
HeteroPoint run_hetero(const char* mode, bool add_cpu) {
  const auto bulk = std::make_shared<const ntt::NttParams>(
      ntt::NttParams::create(kHeteroBulkN, 29));
  const auto small = std::make_shared<const ntt::NttParams>(
      ntt::NttParams::create(kHeteroSmallN, 30));

  service::ServiceConfig cfg;
  cfg.backend.descriptors = {
      service::make_pim_descriptor(kHeteroBanks, kNumBuffers)};
  if (add_cpu)
    cfg.backend.descriptors.push_back(
        service::make_cpu_descriptor(kHeteroCpuLanes));
  cfg.backend.banks_per_shard = kHeteroBanks;
  cfg.former.queue_capacity = 4096;
  cfg.former.flush_window = std::chrono::hours(1);  // only size flushes
  cfg.former.start_paused = true;  // stage the whole burst, then go
  cfg.dispatch.shard_queue_waves = 2;  // shallow: overflow reaches dispatch
  cfg.dispatch.cost_aware_dispatch = true;
  cfg.dispatch.work_stealing = false;  // see above
  service::NttService svc(cfg);

  Rng rng(29);
  fhe::CpuBackend cpu;
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  std::vector<std::vector<std::uint32_t>> expected;
  for (std::size_t w = 0; w < kHeteroWaves; ++w) {
    const auto& params = (w % 2 == 0) ? bulk : small;
    for (std::size_t i = 0; i < kHeteroBanks; ++i) {
      auto poly = rng.residues(params->n(), params->q());
      expected.push_back(poly);
      cpu.forward(expected.back(), *params);
      futures.push_back(svc.submit(std::move(poly), params));
    }
  }

  Stopwatch timer;
  svc.resume();
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < futures.size(); ++i)
    if (futures[i].get() != expected[i]) ++mismatches;
  const double seconds = timer.elapsed_ns() / 1e9;
  svc.drain();  // settle the last wave's counters before the snapshot
  svc.shutdown();

  const service::ServiceStats stats = svc.stats();
  HeteroPoint p;
  p.mode = mode;
  p.requests = futures.size();
  p.seconds = seconds;
  p.requests_per_sec = static_cast<double>(p.requests) / seconds;
  for (const auto& shard : stats.shards) {
    if (shard.kind == service::BackendKind::kCpu) {
      p.cpu_waves += shard.waves;
      p.cpu_requests += shard.requests;
    } else {
      p.pim_waves += shard.waves;
    }
    p.busiest_backend_est_cycles =
        std::max(p.busiest_backend_est_cycles, shard.estimated_executed_cycles);
    p.total_est_cycles += shard.estimated_executed_cycles;
  }
  p.verified = mismatches == 0 && stats.completed == p.requests &&
               stats.failed == 0;

  const HeteroReplay replay = run_hetero_replay(add_cpu, bulk, small);
  p.modeled_makespan_cycles = replay.makespan_cycles;
  p.modeled_pim_waves = replay.pim_waves;
  p.modeled_cpu_waves = replay.cpu_waves;
  return p;
}

std::vector<HeteroPoint> hetero_sweep(bool& all_verified) {
  std::vector<HeteroPoint> points;
  points.push_back(run_hetero("pim_only", false));
  points.push_back(run_hetero("mixed", true));
  for (const auto& p : points) all_verified = all_verified && p.verified;
  return points;
}

void write_hetero_section(bench::JsonWriter& json,
                          const std::vector<HeteroPoint>& points) {
  json.begin_array("service_hetero_backends");
  for (const auto& p : points) {
    json.begin_object();
    json.field("mode", p.mode);
    json.field("pim_banks", kHeteroBanks);
    json.field("cpu_lanes", kHeteroCpuLanes);
    json.field("waves", kHeteroWaves);
    json.field("n_bulk", kHeteroBulkN);
    json.field("n_small", kHeteroSmallN);
    json.field("requests", p.requests);
    json.field("host_wall_clock", true);
    json.field("host_cores", std::thread::hardware_concurrency());
    json.field("requests_per_sec", p.requests_per_sec);
    json.field("cpu_waves", p.cpu_waves);
    json.field("pim_waves", p.pim_waves);
    json.field("cpu_requests", p.cpu_requests);
    json.field("busiest_backend_est_cycles", p.busiest_backend_est_cycles);
    json.field("total_est_cycles", p.total_est_cycles);
    json.field("modeled_makespan_cycles", p.modeled_makespan_cycles);
    json.field("modeled_pim_waves", p.modeled_pim_waves);
    json.field("modeled_cpu_waves", p.modeled_cpu_waves);
    json.field("verified", p.verified);
    json.end_object();
  }
  json.end_array();
}

// ----------------------------------------------------- channel hierarchy

constexpr std::size_t kChannelBanks = 16;
constexpr std::size_t kChannelChannels = 4;
constexpr std::size_t kChannelBulkN = 1024;
constexpr std::size_t kChannelServiceRequests = 32;

struct ChannelPoint {
  const char* mode = "";
  std::size_t channels = 0;
  std::size_t requests = 0;
  /// engine_pass mode: the pass's engine cycles (deterministic, the
  /// modeled makespan of the bulk wave on this bus layout).
  std::uint64_t modeled_makespan_cycles = 0;
  /// service mode: host wall-clock throughput plus the per-channel wave
  /// split the hierarchical dispatcher produced.
  double requests_per_sec = 0;
  std::uint64_t waves = 0;
  std::vector<std::uint64_t> channel_waves;
  bool verified = false;
};

/// Deterministic engine-pass point: one bulk 16-item N=1024 wave filling a
/// 16-bank device whose banks sit behind `channels` command buses. Bulk
/// waves are bus-bound — every bank's trace fights for command slots — so
/// partitioning the banks across private per-channel buses shortens the
/// pass's makespan while the outputs stay bit-identical. No wall clock
/// anywhere: the cycles are the simulator's and reproduce on any host.
ChannelPoint run_channel_pass(std::size_t channels) {
  const ntt::NttParams params = ntt::NttParams::create(kChannelBulkN, 29);
  fhe::PimBackend pim(kNumBuffers, 1200.0,
                      dram::hbm2e_geometry(kChannelBanks, channels));

  Rng rng(43);
  fhe::CpuBackend cpu;
  std::vector<std::vector<std::uint32_t>> polys(kChannelBanks);
  std::vector<std::vector<std::uint32_t>> expected(kChannelBanks);
  for (std::size_t i = 0; i < kChannelBanks; ++i) {
    polys[i] = rng.residues(kChannelBulkN, params.q());
    expected[i] = polys[i];
    cpu.forward(expected[i], params);
  }
  std::vector<fhe::BatchItem> items;
  items.reserve(kChannelBanks);
  for (auto& poly : polys) items.push_back({&poly, &params, false});
  pim.transform_batch_mixed(items);

  ChannelPoint p;
  p.mode = "engine_pass";
  p.channels = channels;
  p.requests = kChannelBanks;
  p.modeled_makespan_cycles = pim.total_cycles();
  p.verified = polys == expected;
  return p;
}

/// Live multi-channel shard: a staged burst of bulk transforms released
/// onto one 16-bank, 4-channel shard. The former sizes waves to one
/// channel's bank set (4 items), so the burst forms 8 waves and the
/// (shard, channel) dispatcher spreads them across the four channel
/// queues; the worker then merges one wave per channel into a single
/// engine pass, overlapping the channels' buses.
ChannelPoint run_channel_service() {
  const auto params = std::make_shared<const ntt::NttParams>(
      ntt::NttParams::create(kChannelBulkN, 29));

  service::ServiceConfig cfg;
  cfg.backend.shards = 1;
  cfg.backend.banks_per_shard = kChannelBanks;
  cfg.backend.channels_per_shard = kChannelChannels;
  cfg.backend.num_buffers = kNumBuffers;
  cfg.former.queue_capacity = 4096;
  cfg.former.flush_window = std::chrono::hours(1);  // only size flushes
  cfg.former.start_paused = true;  // stage the whole burst, then go
  cfg.dispatch.shard_queue_waves = 8;  // deep: the burst queues up
  service::NttService svc(cfg);

  Rng rng(47);
  fhe::CpuBackend cpu;
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  std::vector<std::vector<std::uint32_t>> expected;
  for (std::size_t i = 0; i < kChannelServiceRequests; ++i) {
    auto poly = rng.residues(kChannelBulkN, params->q());
    expected.push_back(poly);
    cpu.forward(expected.back(), *params);
    futures.push_back(svc.submit(std::move(poly), params));
  }

  Stopwatch timer;
  svc.resume();
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < futures.size(); ++i)
    if (futures[i].get() != expected[i]) ++mismatches;
  const double seconds = timer.elapsed_ns() / 1e9;
  svc.drain();  // settle the last wave's counters before the snapshot
  svc.shutdown();

  const service::ServiceStats stats = svc.stats();
  ChannelPoint p;
  p.mode = "service";
  p.channels = kChannelChannels;
  p.requests = futures.size();
  p.requests_per_sec = static_cast<double>(p.requests) / seconds;
  const service::ShardStats& shard = stats.shards.front();
  p.waves = shard.waves;
  for (const auto& cs : shard.channels) p.channel_waves.push_back(cs.waves);
  p.verified = mismatches == 0 && stats.completed == p.requests &&
               stats.failed == 0;
  return p;
}

std::vector<ChannelPoint> channel_sweep(bool& all_verified) {
  std::vector<ChannelPoint> points;
  points.push_back(run_channel_pass(1));
  points.push_back(run_channel_pass(kChannelChannels));
  points.push_back(run_channel_service());
  for (const auto& p : points) all_verified = all_verified && p.verified;
  return points;
}

void write_channel_section(bench::JsonWriter& json,
                           const std::vector<ChannelPoint>& points) {
  json.begin_array("service_multi_channel");
  for (const auto& p : points) {
    json.begin_object();
    json.field("mode", p.mode);
    json.field("banks", kChannelBanks);
    json.field("channels", p.channels);
    json.field("n", kChannelBulkN);
    json.field("requests", p.requests);
    if (p.channel_waves.empty()) {  // engine_pass: simulator cycles only
      json.field("modeled_makespan_cycles", p.modeled_makespan_cycles);
    } else {  // service: wall-clock point with the per-channel wave split
      json.field("host_wall_clock", true);
      json.field("host_cores", std::thread::hardware_concurrency());
      json.field("requests_per_sec", p.requests_per_sec);
      json.field("waves", p.waves);
      json.begin_array("channel_waves");
      for (const std::uint64_t w : p.channel_waves) json.field("", w);
      json.end_array();
    }
    json.field("verified", p.verified);
    json.end_object();
  }
  json.end_array();
}

// ------------------------------------------------------ multi-tenant QoS

constexpr std::size_t kQosBanksPerShard = 4;
constexpr std::size_t kQosBulkRequests = 64;   // tenant 0, N=1024, staged first
constexpr std::size_t kQosCriticalRequests = 8;  // tenant 1, deadlined
constexpr std::size_t kQosBulkN = 1024;
constexpr std::size_t kQosCriticalN = 256;
constexpr double kQosOverloadBurst = 32;  // of 64 bulk submits -> 32 shed

struct QosPoint {
  const char* mode = "";
  std::size_t requests = 0;
  std::uint64_t shed = 0;
  std::uint64_t critical_deadline_misses = 0;
  double background_p50_us = 0;
  double background_p99_us = 0;
  double critical_p50_us = 0;
  double critical_p99_us = 0;
  bool verified = false;
};

/// One QoS run: 64 bulk N=1024 transforms (tenant 0) staged behind a
/// paused former *ahead of* 8 deadlined critical N=256 transforms (tenant
/// 1), then released at once onto a single 4-bank shard — the worst
/// ordering for the latecomer. Under FIFO forming the critical tenant
/// waits out the whole bulk backlog (its p99 ~ the makespan); with the
/// QoS policies on, EDF forming cuts the critical requests into the first
/// waves and deadline pressure keeps them ahead in the lanes, so the
/// critical p99 collapses while the bulk p99 barely moves (the bulk
/// backlog is device-bound either way). The overload mode adds a hard
/// token bucket on the bulk tenant: exactly 32 of its 64 requests shed
/// with AdmissionShedError, deterministically.
/// When `trace_path` is set, lifecycle tracing is enabled for the run and
/// the resulting Chrome trace-event JSON is written there after shutdown
/// (load it in Perfetto / chrome://tracing: one track per service thread,
/// flow arrows stitching each request submit -> cut -> execute ->
/// complete). A failed write fails the point's `verified`.
QosPoint run_qos(const char* mode, bool qos_policies, bool overload,
                 const std::optional<std::string>& trace_path = std::nullopt) {
  const auto bulk_params = std::make_shared<const ntt::NttParams>(
      ntt::NttParams::create(kQosBulkN, 29));
  const auto critical_params = std::make_shared<const ntt::NttParams>(
      ntt::NttParams::create(kQosCriticalN, 30));

  service::ServiceConfig cfg;
  cfg.backend.shards = 1;
  cfg.backend.banks_per_shard = kQosBanksPerShard;
  cfg.backend.num_buffers = kNumBuffers;
  cfg.former.queue_capacity = 4096;
  cfg.former.flush_window = std::chrono::hours(1);  // only size flushes
  cfg.former.start_paused = true;  // stage bulk-then-critical, then go
  cfg.qos.num_classes = 2;         // per-class stats in every mode
  cfg.qos.edf_forming = qos_policies;
  cfg.qos.deadline_pressure = qos_policies;
  if (overload)
    cfg.qos.admission = {{.rate_per_sec = 0.0, .burst = kQosOverloadBurst}};
  cfg.telemetry.enabled = trace_path.has_value();
  service::NttService svc(cfg);

  Rng rng(53);
  fhe::CpuBackend cpu;
  std::vector<std::future<std::vector<std::uint32_t>>> futures;
  std::vector<std::vector<std::uint32_t>> expected;
  service::SubmitOptions bulk;
  bulk.qos.tenant = 0;
  for (std::size_t i = 0; i < kQosBulkRequests; ++i) {
    auto poly = rng.residues(bulk_params->n(), bulk_params->q());
    expected.push_back(poly);
    cpu.forward(expected.back(), *bulk_params);
    futures.push_back(svc.submit(std::move(poly), bulk_params, bulk));
  }
  service::SubmitOptions critical;
  critical.qos.tenant = 1;
  critical.qos.priority = 10;
  critical.qos.deadline =
      service::ServiceClock::now() + std::chrono::milliseconds(1);
  for (std::size_t i = 0; i < kQosCriticalRequests; ++i) {
    auto poly = rng.residues(critical_params->n(), critical_params->q());
    expected.push_back(poly);
    cpu.forward(expected.back(), *critical_params);
    futures.push_back(svc.submit(std::move(poly), critical_params, critical));
  }

  svc.resume();
  std::size_t mismatches = 0;
  std::size_t sheds = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      if (futures[i].get() != expected[i]) ++mismatches;
    } catch (const service::AdmissionShedError&) {
      // Deterministic under rate 0: exactly the bulk submits past the
      // burst (the staging loop is single-threaded).
      if (i < static_cast<std::size_t>(kQosOverloadBurst) ||
          i >= kQosBulkRequests)
        ++mismatches;
      ++sheds;
    }
  }
  svc.drain();  // settle the last wave's counters before the snapshot
  svc.shutdown();

  bool trace_written = true;
  if (trace_path) {
    std::ofstream out(*trace_path);
    telemetry::write_chrome_trace(out, svc.trace_collector().drain());
    trace_written = out.good();
    if (!trace_written)
      std::cerr << "cannot write trace to " << *trace_path << "\n";
  }

  const service::ServiceStats stats = svc.stats();
  QosPoint p;
  p.mode = mode;
  p.requests = futures.size();
  p.shed = stats.shed;
  p.critical_deadline_misses = stats.classes.at(1).deadline_misses;
  p.background_p50_us = stats.classes.at(0).service_latency.p50_us;
  p.background_p99_us = stats.classes.at(0).service_latency.p99_us;
  p.critical_p50_us = stats.classes.at(1).service_latency.p50_us;
  p.critical_p99_us = stats.classes.at(1).service_latency.p99_us;
  const std::uint64_t expected_shed =
      overload ? kQosBulkRequests -
                     static_cast<std::uint64_t>(kQosOverloadBurst)
               : 0;
  p.verified = mismatches == 0 && sheds == expected_shed &&
               stats.shed == expected_shed && stats.failed == 0 &&
               stats.completed == p.requests - expected_shed && trace_written;
  return p;
}

/// The exported trace (--trace) covers the "qos" run — the most eventful
/// scenario: two tenants, EDF cuts, deadline pressure, 72 full lifecycles.
std::vector<QosPoint> qos_sweep(bool& all_verified,
                                const std::optional<std::string>& trace_path) {
  std::vector<QosPoint> points;
  points.push_back(run_qos("fifo", false, false));
  points.push_back(run_qos("qos", true, false, trace_path));
  points.push_back(run_qos("qos_overload", true, true));
  for (const auto& p : points) all_verified = all_verified && p.verified;
  return points;
}

void write_qos_section(bench::JsonWriter& json,
                       const std::vector<QosPoint>& points) {
  json.begin_array("service_qos");
  for (const auto& p : points) {
    json.begin_object();
    json.field("mode", p.mode);
    json.field("shards", 1);
    json.field("banks_per_shard", kQosBanksPerShard);
    json.field("bulk_requests", kQosBulkRequests);
    json.field("critical_requests", kQosCriticalRequests);
    json.field("n_bulk", kQosBulkN);
    json.field("n_critical", kQosCriticalN);
    json.field("host_wall_clock", true);
    json.field("host_cores", std::thread::hardware_concurrency());
    json.field("shed_requests", p.shed);
    json.field("critical_deadline_misses", p.critical_deadline_misses);
    json.field("background_p50_us", p.background_p50_us);
    json.field("background_p99_us", p.background_p99_us);
    json.field("critical_p50_us", p.critical_p50_us);
    json.field("critical_p99_us", p.critical_p99_us);
    json.field("verified", p.verified);
    json.end_object();
  }
  json.end_array();
}

// ------------------------------------------------------ telemetry overhead

constexpr std::size_t kTelemetryClients = 16;

struct TelemetryPoint {
  std::size_t requests = 0;  ///< per run (off and on each serve this many)
  double requests_per_sec_off = 0;  ///< best of the interleaved repeats
  double requests_per_sec_on = 0;
  double on_off_ratio = 0;  ///< tracing-on / tracing-off throughput
  std::uint64_t trace_events = 0;  ///< recorded by the best tracing-on run
  std::uint64_t trace_dropped_events = 0;
  double stage_total_us = 0;  ///< mean submit->delivered, from the stages
  bool verified = false;
};

struct TelemetryRun {
  double requests_per_sec = 0;
  service::ServiceStats stats;
};

/// One overhead run: 16 closed-loop clients hammering a single shard with
/// no CPU cross-check (the check would dominate the client loop and mask
/// any tracing cost — correctness is the throughput sweep's job). The only
/// difference between the off and on runs is ServiceConfig::telemetry.
TelemetryRun run_telemetry_once(
    const std::shared_ptr<const ntt::NttParams>& params, bool tracing,
    std::size_t requests_per_client) {
  service::ServiceConfig cfg;
  cfg.backend.shards = 1;
  cfg.backend.banks_per_shard = kBanksPerShard;
  cfg.backend.num_buffers = kNumBuffers;
  cfg.former.queue_capacity = 4096;
  cfg.former.flush_window = std::chrono::microseconds(500);
  cfg.telemetry.enabled = tracing;
  service::NttService svc(cfg);

  // Steady-state measurement: every client thread runs a short warmup on
  // its *own* thread before the timer starts — that is what registers the
  // thread's trace ring (the first emit allocates and faults it in),
  // fills the shard's plan cache and touches the simulated DRAM pages.
  // First-touch costs are boot, not the tracing hot path being priced.
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kTelemetryClients);
  for (std::size_t c = 0; c < kTelemetryClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(200 + c);
      for (std::size_t r = 0; r < 2; ++r)
        svc.submit(rng.residues(kN, params->q()), params).get();
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t r = 0; r < requests_per_client; ++r)
        svc.submit(rng.residues(kN, params->q()), params).get();
    });
  }
  while (ready.load(std::memory_order_acquire) < kTelemetryClients)
    std::this_thread::yield();
  // Warmup futures are fulfilled, but drain() also waits for the waves'
  // bookkeeping, so the reset below starts a clean epoch.
  svc.drain();
  svc.reset_stats();
  Stopwatch timer;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double seconds = timer.elapsed_ns() / 1e9;
  svc.drain();
  svc.shutdown();

  TelemetryRun run;
  run.requests_per_sec =
      static_cast<double>(kTelemetryClients * requests_per_client) / seconds;
  run.stats = svc.stats();
  return run;
}

/// Prices the tracing hot path: identical closed-loop runs with telemetry
/// off and on, interleaved (off, on, off, on, ...) so host noise hits
/// both alike, best-of each. CI asserts on_off_ratio >= 0.95 — the "tracing is
/// cheap enough to leave on" contract. `verified` additionally cross-
/// checks the stage breakdown against the latency recorders (the stages
/// must tile the recorded means) and that the off runs recorded nothing.
TelemetryPoint run_telemetry(std::size_t requests_per_client) {
  // CI asserts a 5% bound on this comparison, so the runs must be long
  // enough to average scheduler noise even when --requests shrinks the
  // rest of the bench to smoke size: floor the per-client count.
  requests_per_client = std::max<std::size_t>(requests_per_client, 48);
  const auto params = std::make_shared<const ntt::NttParams>(
      ntt::NttParams::create(kN, 30));
  TelemetryPoint p;
  p.requests = kTelemetryClients * requests_per_client;

  bool ok = true;
  service::ServiceStats on_stats;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const TelemetryRun off =
        run_telemetry_once(params, false, requests_per_client);
    const TelemetryRun on =
        run_telemetry_once(params, true, requests_per_client);
    ok = ok && off.stats.completed == p.requests && off.stats.failed == 0 &&
         on.stats.completed == p.requests && on.stats.failed == 0 &&
         off.stats.trace_events == 0 && off.stats.trace_dropped_events == 0 &&
         on.stats.trace_events > 0;
    p.requests_per_sec_off =
        std::max(p.requests_per_sec_off, off.requests_per_sec);
    if (on.requests_per_sec > p.requests_per_sec_on) {
      p.requests_per_sec_on = on.requests_per_sec;
      on_stats = on.stats;
    }
  }
  p.on_off_ratio = p.requests_per_sec_off > 0
                       ? p.requests_per_sec_on / p.requests_per_sec_off
                       : 0;
  p.trace_events = on_stats.trace_events;
  p.trace_dropped_events = on_stats.trace_dropped_events;

  const service::ClassStats& cls = on_stats.classes.at(0);
  const service::StageBreakdown& sb = cls.stages;
  p.stage_total_us = sb.total_us;
  const double tol = 1e-3 + 1e-6 * cls.service_latency.mean_us;
  ok = ok && sb.count == p.requests &&
       std::abs(sb.former_residency_us + sb.shard_queue_wait_us -
                cls.queue_latency.mean_us) <= tol &&
       std::abs(sb.former_residency_us + sb.shard_queue_wait_us +
                sb.execute_us - cls.service_latency.mean_us) <= tol;
  p.verified = ok;
  return p;
}

void write_telemetry_section(bench::JsonWriter& json,
                             const TelemetryPoint& p) {
  json.begin_object("service_telemetry");
  json.field("clients", kTelemetryClients);
  json.field("shards", 1);
  json.field("banks_per_shard", kBanksPerShard);
  json.field("n", kN);
  json.field("requests", p.requests);
  json.field("host_wall_clock", true);
  json.field("host_cores", std::thread::hardware_concurrency());
  json.field("requests_per_sec_off", p.requests_per_sec_off);
  json.field("requests_per_sec_on", p.requests_per_sec_on);
  json.field("on_off_ratio", p.on_off_ratio);
  json.field("trace_events", p.trace_events);
  json.field("trace_dropped_events", p.trace_dropped_events);
  json.field("stage_total_us", p.stage_total_us);
  json.field("verified", p.verified);
  json.end_object();
}

std::vector<SweepPoint> sweep(std::size_t requests_per_client,
                              bool& all_verified) {
  const auto params = std::make_shared<const ntt::NttParams>(
      ntt::NttParams::create(kN, 30));
  std::vector<SweepPoint> points;
  // Shard scaling under a fixed coalescing window: does a second simulated
  // device buy aggregate throughput once enough independent clients keep
  // the queue non-empty?
  for (const std::size_t shards : {1, 2}) {
    for (const std::size_t clients : {1, 4, 8, 16, 32}) {
      points.push_back(
          run_point(params, clients, shards, 500, requests_per_client));
      all_verified = all_verified && points.back().verified;
    }
  }
  // Window sweep at a fixed load: occupancy (and with it modeled
  // efficiency) bought with queueing latency.
  for (const std::size_t window_us : {0, 100, 2000}) {
    points.push_back(
        run_point(params, 16, 1, window_us, requests_per_client));
    all_verified = all_verified && points.back().verified;
  }
  return points;
}

void write_section(bench::JsonWriter& json,
                   const std::vector<SweepPoint>& points) {
  json.begin_array("service_throughput");
  for (const auto& p : points) {
    json.begin_object();
    json.field("clients", p.clients);
    json.field("shards", p.shards);
    json.field("banks_per_shard", kBanksPerShard);
    json.field("n", kN);
    json.field("num_buffers", kNumBuffers);
    json.field("flush_window_us", p.window_us);
    json.field("requests", p.requests);
    json.field("host_wall_clock", true);
    json.field("host_cores", std::thread::hardware_concurrency());
    json.field("requests_per_sec", p.requests_per_sec);
    json.field("modeled_max_shard_cycles", p.modeled_max_shard_cycles);
    json.field("waves", p.waves);
    json.field("engine_passes", p.engine_passes);
    json.field("mean_wave_occupancy", p.mean_wave_occupancy);
    json.field("queue_p50_us", p.queue_p50_us);
    json.field("service_p50_us", p.service_p50_us);
    json.field("service_p95_us", p.service_p95_us);
    json.field("service_p99_us", p.service_p99_us);
    json.field("verified", p.verified);
    json.end_object();
  }
  json.end_array();
}

int run_json(const std::string& path, std::size_t requests_per_client,
             const std::optional<std::string>& trace_path) {
  bool all_verified = true;
  const auto points = sweep(requests_per_client, all_verified);
  const auto skewed = skewed_sweep(all_verified);
  const auto hetero = hetero_sweep(all_verified);
  const auto channel = channel_sweep(all_verified);
  const auto qos = qos_sweep(all_verified, trace_path);
  const auto telemetry = run_telemetry(requests_per_client);
  all_verified = all_verified && telemetry.verified;
  if (!all_verified) {
    std::cerr << "bench aborted: a served transform failed verification "
                 "against the CPU backend\n";
    return 1;
  }
  int rc = bench::write_host_section(
      path, "bench_service", "service_throughput",
      [&](bench::JsonWriter& json) { write_section(json, points); });
  if (rc != 0) return rc;
  rc = bench::write_host_section(
      path, "bench_service", "service_skewed_dispatch",
      [&](bench::JsonWriter& json) { write_skewed_section(json, skewed); });
  if (rc != 0) return rc;
  rc = bench::write_host_section(
      path, "bench_service", "service_hetero_backends",
      [&](bench::JsonWriter& json) { write_hetero_section(json, hetero); });
  if (rc != 0) return rc;
  rc = bench::write_host_section(
      path, "bench_service", "service_multi_channel",
      [&](bench::JsonWriter& json) { write_channel_section(json, channel); });
  if (rc != 0) return rc;
  rc = bench::write_host_section(
      path, "bench_service", "service_qos",
      [&](bench::JsonWriter& json) { write_qos_section(json, qos); });
  if (rc != 0) return rc;
  return bench::write_host_section(
      path, "bench_service", "service_telemetry",
      [&](bench::JsonWriter& json) { write_telemetry_section(json, telemetry); });
}

constexpr const char* kUsage =
    "usage: bench_service [--json [path]] [--requests <per-client>]\n"
    "                     [--trace <path>]\n"
    "  Closed-loop load generator for the async NTT serving runtime:\n"
    "  client count x shard count x flush window sweep reporting aggregate\n"
    "  requests/sec, mean wave occupancy and latency percentiles, plus a\n"
    "  skewed-load dispatch comparison (FIFO vs stealing vs cost-aware),\n"
    "  a heterogeneous-tier comparison (PIM-only vs PIM + CPU pool), a\n"
    "  channel-hierarchy comparison (16 banks behind 1 vs 4 command buses\n"
    "  plus a live 4-channel shard), a multi-tenant QoS comparison\n"
    "  (bulk-ahead-of-critical staging under FIFO vs EDF + deadline\n"
    "  pressure vs added token-bucket overload shedding) and a telemetry\n"
    "  overhead comparison (identical runs with lifecycle tracing off vs\n"
    "  on; CI holds the on/off throughput ratio above 0.95).\n"
    "  --json [path]       append service_throughput,\n"
    "                      service_skewed_dispatch,\n"
    "                      service_hetero_backends,\n"
    "                      service_multi_channel, service_qos and\n"
    "                      service_telemetry sections to the\n"
    "                      BENCH_host.json-style object at path (or\n"
    "                      write a standalone report; \"-\"/no path = "
    "stdout)\n"
    "  --requests <count>  requests per client (default 32)\n"
    "  --trace <path>      write a Chrome trace-event JSON of the QoS\n"
    "                      scenario's \"qos\" run to <path> (open it in\n"
    "                      Perfetto / chrome://tracing)\n";

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = bench::consume_json_flag(argc, argv);
  const auto trace_path = bench::consume_trace_flag(argc, argv);
  std::size_t requests_per_client = kDefaultRequestsPerClient;
  if (const auto requests = bench::consume_value_flag(argc, argv,
                                                      "--requests")) {
    const long parsed = std::strtol(requests->c_str(), nullptr, 10);
    if (parsed <= 0) {
      std::cerr << "--requests needs a positive count\n" << kUsage;
      return 2;
    }
    requests_per_client = static_cast<std::size_t>(parsed);
  }
  bench::finish_flags(argc, argv, kUsage);
  if (json_path) return run_json(*json_path, requests_per_client, trace_path);

  bench::print_table1_header(
      "Async serving runtime (N = 256, closed-loop clients, waves of "
      "banks = 8)");

  bool all_verified = true;
  const auto points = sweep(requests_per_client, all_verified);
  TablePrinter table({"clients", "shards", "window (us)", "requests/s",
                      "occupancy", "p50 (us)", "p95 (us)",
                      "busiest shard (cyc)", "verified"});
  for (const auto& p : points)
    table.add_row({std::to_string(p.clients), std::to_string(p.shards),
                   std::to_string(p.window_us),
                   TablePrinter::num(p.requests_per_sec, 1),
                   TablePrinter::num(p.mean_wave_occupancy),
                   TablePrinter::num(p.service_p50_us, 1),
                   TablePrinter::num(p.service_p95_us, 1),
                   std::to_string(p.modeled_max_shard_cycles),
                   p.verified ? "YES" : "NO"});
  table.print(std::cout);
  std::cout << "\nOccupancy (batch items per engine pass) is what the "
               "wave-former buys: independent synchronous clients end up "
               "sharing bank-parallel engine passes. The window sweep "
               "prices it — a longer flush window raises occupancy and "
               "p50 latency together. Sharding halves the busiest device's "
               "modeled cycles on any host; seeing the same x2 in "
               "requests/sec additionally needs >= shards free host cores "
               "(this host: "
            << std::thread::hardware_concurrency() << ").\n";

  const auto skewed = skewed_sweep(all_verified);
  std::cout << "\n==== Skewed dispatch (2 shards, alternating N="
            << kSkewedHotN << " / N=" << kSkewedColdN << " waves) ====\n";
  TablePrinter skew_table({"mode", "requests/s", "stolen waves",
                           "busiest shard (cyc)", "busiest share",
                           "verified"});
  for (const auto& p : skewed)
    skew_table.add_row({p.mode, TablePrinter::num(p.requests_per_sec, 1),
                        std::to_string(p.stolen_waves),
                        std::to_string(p.busiest_shard_cycles),
                        TablePrinter::num(p.busiest_share),
                        p.verified ? "YES" : "NO"});
  skew_table.print(std::cout);
  std::cout << "\nRound-robin assignment resonates with the alternating "
               "size classes — every expensive wave lands on shard 0 "
               "(busiest share ~ its cost share). Stealing lets the idle "
               "shard take the oldest queued wave of the loaded one, and "
               "cost-aware assignment avoids most of the imbalance before "
               "it forms.\n";

  const auto hetero = hetero_sweep(all_verified);
  std::cout << "\n==== Heterogeneous tier (bulk N=" << kHeteroBulkN
            << " / small N=" << kHeteroSmallN
            << " waves, PIM-only vs PIM + CPU pool) ====\n";
  TablePrinter hetero_table({"mode", "requests/s", "pim waves", "cpu waves",
                             "modeled makespan (cyc)", "modeled pim/cpu",
                             "verified"});
  for (const auto& p : hetero)
    hetero_table.add_row(
        {p.mode, TablePrinter::num(p.requests_per_sec, 1),
         std::to_string(p.pim_waves), std::to_string(p.cpu_waves),
         std::to_string(p.modeled_makespan_cycles),
         std::to_string(p.modeled_pim_waves) + "/" +
             std::to_string(p.modeled_cpu_waves),
         p.verified ? "YES" : "NO"});
  hetero_table.print(std::cout);
  std::cout << "\nLive run: a host-CPU pool next to the PIM shard absorbs "
               "the overflow the moment the device backs up (cpu waves, "
               "requests/s). Modeled replay: greedy dispatch on modeled "
               "backlogs alone keeps bulk waves on the PIM, spills small "
               "waves to the CPU, and cuts the busiest backend's modeled "
               "makespan versus queueing every wave on one device.\n";

  const auto channel = channel_sweep(all_verified);
  std::cout << "\n==== Channel hierarchy (" << kChannelBanks
            << " banks, bulk N=" << kChannelBulkN
            << " waves, 1 vs " << kChannelChannels
            << " command buses) ====\n";
  TablePrinter chan_table({"mode", "channels", "makespan (cyc)",
                           "requests/s", "channel waves", "verified"});
  for (const auto& p : channel) {
    std::string split;
    for (std::size_t i = 0; i < p.channel_waves.size(); ++i)
      split += (i ? "/" : "") + std::to_string(p.channel_waves[i]);
    chan_table.add_row(
        {p.mode, std::to_string(p.channels),
         p.modeled_makespan_cycles
             ? std::to_string(p.modeled_makespan_cycles)
             : "-",
         p.requests_per_sec ? TablePrinter::num(p.requests_per_sec, 1) : "-",
         split.empty() ? "-" : split, p.verified ? "YES" : "NO"});
  }
  chan_table.print(std::cout);
  std::cout << "\nA bulk wave filling every bank is bus-bound: one shared "
               "command bus serializes all 16 bank traces. Splitting the "
               "banks across per-channel buses removes the cross-channel "
               "serialization (the engine_pass rows are deterministic "
               "simulator cycles, identical on any host). The service row "
               "shows the hierarchical dispatcher spreading the formed "
               "waves across the shard's channel queues so the worker can "
               "merge one wave per channel into each engine pass.\n";

  const auto qos = qos_sweep(all_verified, trace_path);
  std::cout << "\n==== Multi-tenant QoS (" << kQosBulkRequests
            << " bulk N=" << kQosBulkN << " staged ahead of "
            << kQosCriticalRequests << " deadlined critical N="
            << kQosCriticalN << ") ====\n";
  TablePrinter qos_table({"mode", "shed", "crit misses", "crit p50 (us)",
                          "crit p99 (us)", "bulk p99 (us)", "verified"});
  for (const auto& p : qos)
    qos_table.add_row({p.mode, std::to_string(p.shed),
                       std::to_string(p.critical_deadline_misses),
                       TablePrinter::num(p.critical_p50_us, 1),
                       TablePrinter::num(p.critical_p99_us, 1),
                       TablePrinter::num(p.background_p99_us, 1),
                       p.verified ? "YES" : "NO"});
  qos_table.print(std::cout);
  std::cout << "\nFIFO forming makes the latecomer critical tenant wait "
               "out the entire staged bulk backlog (crit p99 ~ the run's "
               "makespan). EDF forming + deadline-pressure dispatch cut "
               "the deadlined requests into the first waves, collapsing "
               "the critical p99 while the device-bound bulk p99 barely "
               "moves; the overload mode's token bucket sheds exactly the "
               "bulk requests past its burst before they cost anything.\n";
  if (trace_path)
    std::cout << "\nWrote Chrome trace of the \"qos\" run to " << *trace_path
              << " (open it in Perfetto / chrome://tracing).\n";

  const auto telemetry = run_telemetry(requests_per_client);
  all_verified = all_verified && telemetry.verified;
  std::cout << "\n==== Telemetry overhead (" << kTelemetryClients
            << " clients, 1 shard, lifecycle tracing off vs on) ====\n";
  TablePrinter tel_table({"requests/s off", "requests/s on", "on/off",
                          "events", "dropped", "verified"});
  tel_table.add_row({TablePrinter::num(telemetry.requests_per_sec_off, 1),
                     TablePrinter::num(telemetry.requests_per_sec_on, 1),
                     TablePrinter::num(telemetry.on_off_ratio),
                     std::to_string(telemetry.trace_events),
                     std::to_string(telemetry.trace_dropped_events),
                     telemetry.verified ? "YES" : "NO"});
  tel_table.print(std::cout);
  std::cout << "\nThe tracing hot path is one relaxed atomic load when "
               "disabled and a lock-free push into a per-thread ring when "
               "enabled, so the on/off throughput ratio stays near 1 (CI "
               "holds it above 0.95). `verified` also cross-checks the "
               "per-class stage breakdown against the latency recorders: "
               "former + shard-queue must equal the queue-latency mean, "
               "plus execute the service-latency mean.\n";
  return all_verified ? EXIT_SUCCESS : EXIT_FAILURE;
}
