// Ablation for paper Sec. IV.B: vertical (row-block) vs horizontal
// (stage-wise) division of the NTT dataflow graph, plus the cost of
// periodic refresh (simulation-fidelity knob).
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/runner.h"

int main() {
  using namespace nttpim;
  bench::print_table1_header(
      "Ablation: DFG division strategy (Sec. IV.B) and refresh");

  std::cout << "Vertical row blocks (paper) vs stage-wise sweeps:\n";
  TablePrinter table({"N", "ACTs vertical", "ACTs stage-wise", "cycles vert",
                      "cycles stage-wise", "slowdown"});
  for (const std::size_t n : {512, 1024, 2048, 4096, 8192}) {
    sim::NttRunConfig config;
    config.n = n;
    config.num_buffers = 4;

    config.row_centric = true;
    const auto vertical = sim::run_ntt_on_pim(config);
    config.row_centric = false;
    const auto horizontal = sim::run_ntt_on_pim(config);
    if (!vertical.verified || !horizontal.verified) {
      std::cerr << "verification FAILED\n";
      return 1;
    }
    table.add_row(
        {std::to_string(n), std::to_string(vertical.stats.activations),
         std::to_string(horizontal.stats.activations),
         std::to_string(vertical.stats.cycles),
         std::to_string(horizontal.stats.cycles),
         TablePrinter::num(static_cast<double>(horizontal.stats.cycles) /
                           static_cast<double>(vertical.stats.cycles))});
  }
  table.print(std::cout);
  std::cout << "\nThe stage-wise strawman re-activates every row once per "
               "intra-row stage; the effect is visible at every N > R and "
               "bounded because inter-row stages dominate large N.\n\n";

  std::cout << "Periodic refresh (tREFI=3.9us, tRFC=350ns):\n";
  TablePrinter refresh({"N", "cycles w/o REF", "cycles w/ REF", "overhead",
                        "refreshes"});
  for (const std::size_t n : {1024, 4096, 8192}) {
    sim::NttRunConfig config;
    config.n = n;
    config.num_buffers = 2;

    config.enable_refresh = false;
    const auto off = sim::run_ntt_on_pim(config);
    config.enable_refresh = true;
    const auto on = sim::run_ntt_on_pim(config);
    refresh.add_row(
        {std::to_string(n), std::to_string(off.stats.cycles),
         std::to_string(on.stats.cycles),
         TablePrinter::num((static_cast<double>(on.stats.cycles) /
                                static_cast<double>(off.stats.cycles) -
                            1.0) * 100.0, 1) + "%",
         std::to_string(on.stats.refreshes)});
  }
  refresh.print(std::cout);
  return 0;
}
