// Regenerates paper Fig. 8: sensitivity to the PIM clock frequency
// (Nb = 2). DRAM array timings are fixed in nanoseconds; only the CU logic
// slows down with the clock, so latency degrades far less than linearly —
// the paper reports only ~1.65x at a 4x slower clock for long polynomials.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "model/cpu_baseline.h"
#include "sim/runner.h"

int main() {
  using namespace nttpim;
  bench::print_table1_header(
      "Fig. 8: Sensitivity to clock frequency (Nb = 2, latency in us)");

  const std::size_t sizes[] = {256, 512, 1024, 2048, 4096, 8192};
  const double freqs[] = {1200, 900, 600, 300};

  TablePrinter table({"N", "1200MHz", "900MHz", "600MHz", "300MHz",
                      "300/1200 ratio", "x86 plain"});
  for (const std::size_t n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    double us_at[4];
    int i = 0;
    for (const double f : freqs) {
      sim::NttRunConfig config;
      config.n = n;
      config.num_buffers = 2;
      config.freq_mhz = f;
      const auto result = sim::run_ntt_on_pim(config);
      if (!result.verified) {
        std::cerr << "verification FAILED for N=" << n << " f=" << f << "\n";
        return 1;
      }
      us_at[i++] = result.latency_us;
      row.push_back(TablePrinter::num(result.latency_us));
    }
    row.push_back(TablePrinter::num(us_at[3] / us_at[0]));
    row.push_back(TablePrinter::num(model::measure_cpu_plain(n).latency_us));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nPaper claim: large-N runs slow down only ~1.65x when the "
               "clock drops 4x (DRAM latency dominates).\n";
  return 0;
}
