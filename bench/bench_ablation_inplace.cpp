// Ablation for paper Sec. III.C: the in-place update.
//
// Without in-place update the C2 stages must write somewhere else — here a
// shadow region the mapping ping-pongs against — so every inter-atom stage
// pays extra row switches. This quantifies why BU-grained scheduling with
// in-place writeback is load-bearing for the architecture.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/runner.h"

int main() {
  using namespace nttpim;
  bench::print_table1_header("Ablation: in-place update (Sec. III.C)");

  const std::size_t sizes[] = {256, 512, 1024, 2048, 4096};

  TablePrinter table({"N", "cycles in-place", "cycles shadow", "slowdown",
                      "ACTs in-place", "ACTs shadow", "ACT factor"});
  for (const std::size_t n : sizes) {
    sim::NttRunConfig config;
    config.n = n;
    config.num_buffers = 4;

    config.in_place = true;
    const auto in_place = sim::run_ntt_on_pim(config);
    config.in_place = false;
    const auto shadow = sim::run_ntt_on_pim(config);
    if (!in_place.verified || !shadow.verified) {
      std::cerr << "verification FAILED\n";
      return 1;
    }

    table.add_row(
        {std::to_string(n), std::to_string(in_place.stats.cycles),
         std::to_string(shadow.stats.cycles),
         TablePrinter::num(static_cast<double>(shadow.stats.cycles) /
                           static_cast<double>(in_place.stats.cycles)),
         std::to_string(in_place.stats.activations),
         std::to_string(shadow.stats.activations),
         TablePrinter::num(static_cast<double>(shadow.stats.activations) /
                           static_cast<double>(in_place.stats.activations))});
  }
  table.print(std::cout);
  std::cout << "\nPaper argument: with only P and S occupied by inputs, "
               "in-place update removes the need for a third buffer or an "
               "output region — the shadow variant shows the cost of not "
               "having it.\n";
  return 0;
}
