// Multi-limb RNS scaling: heterogeneous NTT waves, one limb prime per bank.
//
// The RNS counterpart of bench_bank_parallel's homogeneous sweep: a full
// negacyclic product in R_Q with limbs in {1,2,3,4} on a device with one
// bank per limb. Each product is two heterogeneous engine passes (all
// forward transforms of both operands, then all inverse transforms), so
// multi-limb waves should scale like multi-bank waves — modeled cycles per
// product grow far slower than the limb count, while every bank runs a
// *different* NTT function (the paper's bank-heterogeneity claim).
//
// Same split as bench_bank_parallel: modeled cycles are deterministic
// engine output; transforms/sec is host wall-clock (per-machine snapshot).
// `--json <path>` appends an "rns_limb_scaling" section to an existing
// BENCH_host.json-style object at <path> (or writes a standalone report).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "fhe/pim_backend.h"
#include "fhe/rns.h"
#include "fhe/rns_poly.h"

namespace {

using namespace nttpim;

constexpr std::size_t kN = 1024;
constexpr std::size_t kNumBuffers = 4;
constexpr std::size_t kProducts = 8;

struct LimbPoint {
  std::size_t limbs = 0;
  std::size_t products = 0;
  std::size_t transforms = 0;         ///< 3 * limbs per product
  std::uint64_t engine_passes = 0;    ///< 2 per product
  std::uint64_t modeled_cycles = 0;   ///< summed makespans of the waves
  double modeled_cycles_per_limb = 0; ///< cycles / (products * limbs)
  double tps = 0;                     ///< host transforms per second
  bool verified = false;
};


/// One sweep point: kProducts RNS products with `limbs` limbs on a device
/// with one bank per limb, verified against the CPU backend's result.
LimbPoint run_limbs(std::size_t limbs) {
  const fhe::RnsBasis basis(kN, limbs, 30);
  fhe::PimBackend backend(kNumBuffers, 1200.0, dram::hbm2e_geometry(limbs));
  fhe::CpuBackend cpu;

  LimbPoint p;
  p.limbs = limbs;
  p.products = kProducts;
  Rng rng(1000 + limbs);
  std::vector<std::vector<unsigned __int128>> as, bs, results;
  for (std::size_t i = 0; i < kProducts; ++i) {
    as.push_back(rng.wide_coeffs(kN, basis.modulus_product()));
    bs.push_back(rng.wide_coeffs(kN, basis.modulus_product()));
  }

  Stopwatch timer;
  for (std::size_t i = 0; i < kProducts; ++i)
    results.push_back(fhe::rns_negacyclic_multiply(basis, as[i], bs[i],
                                                   backend));
  const double seconds = timer.elapsed_ns() / 1e9;

  p.transforms = backend.transform_count();
  p.engine_passes = backend.engine_passes();
  p.modeled_cycles = backend.total_cycles();
  p.modeled_cycles_per_limb =
      static_cast<double>(p.modeled_cycles) /
      static_cast<double>(kProducts * limbs);
  p.tps = static_cast<double>(p.transforms) / seconds;

  p.verified = true;
  for (std::size_t i = 0; i < kProducts && p.verified; ++i)
    p.verified = results[i] ==
                 fhe::rns_negacyclic_multiply(basis, as[i], bs[i], cpu);
  return p;
}

std::vector<LimbPoint> sweep(bool& all_verified) {
  std::vector<LimbPoint> points;
  for (const std::size_t limbs : {1, 2, 3, 4}) {
    points.push_back(run_limbs(limbs));
    all_verified = all_verified && points.back().verified;
  }
  return points;
}

void write_section(bench::JsonWriter& json,
                   const std::vector<LimbPoint>& points) {
  json.begin_array("rns_limb_scaling");
  for (const auto& p : points) {
    json.begin_object();
    json.field("limbs", p.limbs);
    json.field("banks", p.limbs);
    json.field("n", kN);
    json.field("num_buffers", kNumBuffers);
    json.field("products", p.products);
    json.field("transforms", p.transforms);
    json.field("engine_passes", p.engine_passes);
    json.field("host_wall_clock", true);
    json.field("transforms_per_sec", p.tps);
    json.field("modeled_cycles_total", p.modeled_cycles);
    json.field("modeled_cycles_per_limb", p.modeled_cycles_per_limb);
    json.field("verified", p.verified);
    json.end_object();
  }
  json.end_array();
}

/// Render the section as a fragment (`"rns_limb_scaling": [...]`) indented
/// for splicing at depth 1 of an existing top-level object.
std::string section_fragment(const std::vector<LimbPoint>& points) {
  std::ostringstream os;
  bench::JsonWriter json(os);
  json.begin_object();
  write_section(json, points);
  json.end_object();
  std::string text = os.str();
  const std::size_t open = text.find('{');
  const std::size_t close = text.rfind('}');
  return text.substr(open + 1, close - open - 1);
}

int run_json(const std::string& path) {
  bool all_verified = true;
  const auto points = sweep(all_verified);
  if (!all_verified) {
    std::cerr << "bench aborted: an RNS product failed verification "
                 "against the CPU backend\n";
    return 1;
  }

  // Append mode: splice the section into an existing top-level JSON object
  // (the BENCH_host.json written by bench_bank_parallel --json), replacing
  // any previous rns_limb_scaling section so re-runs are idempotent.
  std::string existing;
  if (path != "-") {
    if (std::ifstream in(path); in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  if (const std::size_t prev = existing.find("\"rns_limb_scaling\"");
      prev != std::string::npos) {
    // Drop the previous section, ending at its array's *matching* ']' (a
    // hand-merged file may have members after it). A file where the
    // section has no preceding comma or no well-bracketed array is not
    // appendable — fall through to the standalone rewrite instead.
    const std::size_t comma = existing.rfind(',', prev);
    const std::size_t open = existing.find('[', prev);
    std::size_t close = std::string::npos;
    if (open != std::string::npos) {
      int depth = 0;
      for (std::size_t i = open; i < existing.size(); ++i) {
        if (existing[i] == '[') ++depth;
        if (existing[i] == ']' && --depth == 0) {
          close = i;
          break;
        }
      }
    }
    if (comma != std::string::npos && close != std::string::npos) {
      existing.erase(comma, close + 1 - comma);
    } else {
      std::cerr << "warning: " << path
                << " has an unappendable rns_limb_scaling section; "
                   "writing a standalone report instead\n";
      existing.clear();
    }
  }
  const std::size_t tail = existing.find_last_not_of(" \t\r\n");
  const std::size_t last_member =
      tail != std::string::npos && tail > 0 && existing[tail] == '}'
          ? existing.find_last_not_of(" \t\r\n", tail - 1)
          : std::string::npos;
  if (last_member != std::string::npos) {
    std::string fragment = section_fragment(points);
    while (!fragment.empty() && fragment.back() == '\n') fragment.pop_back();
    // No separating comma after an empty object's '{'.
    const char* separator = existing[last_member] == '{' ? "" : ",";
    existing.insert(last_member + 1, separator + fragment);
    std::ofstream file(path);
    if (!(file << existing)) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    return 0;
  }

  // Standalone report.
  std::ostringstream os;
  bench::JsonWriter json(os);
  json.begin_object();
  json.field("schema", "nttpim-bench-host-v1");
  json.field("bench", "bench_rns_limbs");
  bench::write_architecture(json);
  write_section(json, points);
  json.end_object();
  if (path == "-") {
    std::cout << os.str();
  } else {
    std::ofstream file(path);
    if (!(file << os.str())) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto json_path = bench::consume_json_flag(argc, argv))
    return run_json(*json_path);

  bench::print_table1_header(
      "RNS multi-limb scaling (N = 1024, Nb = 4, one limb prime per bank)");

  bool all_verified = true;
  const auto points = sweep(all_verified);
  TablePrinter table({"limbs (=banks)", "products", "engine passes",
                      "modeled cycles", "cycles/limb", "host transforms/s",
                      "verified"});
  for (const auto& p : points)
    table.add_row({std::to_string(p.limbs), std::to_string(p.products),
                   std::to_string(p.engine_passes),
                   std::to_string(p.modeled_cycles),
                   TablePrinter::num(p.modeled_cycles_per_limb, 1),
                   TablePrinter::num(p.tps, 1), p.verified ? "YES" : "NO"});
  table.print(std::cout);
  std::cout << "\nEach product is two heterogeneous engine passes (all "
               "forward NTTs of both operands, then all inverse NTTs) with "
               "a different limb prime in every bank; cycles/limb falling "
               "with the limb count is bank-level parallelism applied to "
               "an RNS workload.\n";
  return all_verified ? EXIT_SUCCESS : EXIT_FAILURE;
}
