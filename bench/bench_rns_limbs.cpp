// Multi-limb RNS scaling: heterogeneous NTT waves, one limb prime per bank.
//
// The RNS counterpart of bench_bank_parallel's homogeneous sweep: a full
// negacyclic product in R_Q with limbs in {1,2,3,4} on a device with one
// bank per limb. Each product is two heterogeneous engine passes (all
// forward transforms of both operands, then all inverse transforms), so
// multi-limb waves should scale like multi-bank waves — modeled cycles per
// product grow far slower than the limb count, while every bank runs a
// *different* NTT function (the paper's bank-heterogeneity claim).
//
// Same split as bench_bank_parallel: modeled cycles are deterministic
// engine output; transforms/sec is host wall-clock (per-machine snapshot).
// `--json <path>` appends an "rns_limb_scaling" section to an existing
// BENCH_host.json-style object at <path> (or writes a standalone report).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "fhe/cpu_backend.h"
#include "fhe/pim_backend.h"
#include "fhe/rns.h"
#include "fhe/rns_poly.h"

namespace {

using namespace nttpim;

constexpr std::size_t kN = 1024;
constexpr std::size_t kNumBuffers = 4;
constexpr std::size_t kProducts = 8;

struct LimbPoint {
  std::size_t limbs = 0;
  std::size_t products = 0;
  std::size_t transforms = 0;         ///< 3 * limbs per product
  std::uint64_t engine_passes = 0;    ///< 2 per product
  std::uint64_t modeled_cycles = 0;   ///< summed makespans of the waves
  double modeled_cycles_per_limb = 0; ///< cycles / (products * limbs)
  double tps = 0;                     ///< host transforms per second
  bool verified = false;
};


/// One sweep point: kProducts RNS products with `limbs` limbs on a device
/// with one bank per limb, verified against the CPU backend's result.
LimbPoint run_limbs(std::size_t limbs) {
  const fhe::RnsBasis basis(kN, limbs, 30);
  fhe::PimBackend backend(kNumBuffers, 1200.0, dram::hbm2e_geometry(limbs));
  fhe::CpuBackend cpu;

  LimbPoint p;
  p.limbs = limbs;
  p.products = kProducts;
  Rng rng(1000 + limbs);
  std::vector<std::vector<unsigned __int128>> as, bs, results;
  for (std::size_t i = 0; i < kProducts; ++i) {
    as.push_back(rng.wide_coeffs(kN, basis.modulus_product()));
    bs.push_back(rng.wide_coeffs(kN, basis.modulus_product()));
  }

  Stopwatch timer;
  for (std::size_t i = 0; i < kProducts; ++i)
    results.push_back(fhe::rns_negacyclic_multiply(basis, as[i], bs[i],
                                                   backend));
  const double seconds = timer.elapsed_ns() / 1e9;

  p.transforms = backend.transform_count();
  p.engine_passes = backend.engine_passes();
  p.modeled_cycles = backend.total_cycles();
  p.modeled_cycles_per_limb =
      static_cast<double>(p.modeled_cycles) /
      static_cast<double>(kProducts * limbs);
  p.tps = static_cast<double>(p.transforms) / seconds;

  p.verified = true;
  for (std::size_t i = 0; i < kProducts && p.verified; ++i)
    p.verified = results[i] ==
                 fhe::rns_negacyclic_multiply(basis, as[i], bs[i], cpu);
  return p;
}

std::vector<LimbPoint> sweep(bool& all_verified) {
  std::vector<LimbPoint> points;
  for (const std::size_t limbs : {1, 2, 3, 4}) {
    points.push_back(run_limbs(limbs));
    all_verified = all_verified && points.back().verified;
  }
  return points;
}

void write_section(bench::JsonWriter& json,
                   const std::vector<LimbPoint>& points) {
  json.begin_array("rns_limb_scaling");
  for (const auto& p : points) {
    json.begin_object();
    json.field("limbs", p.limbs);
    json.field("banks", p.limbs);
    json.field("n", kN);
    json.field("num_buffers", kNumBuffers);
    json.field("products", p.products);
    json.field("transforms", p.transforms);
    json.field("engine_passes", p.engine_passes);
    json.field("host_wall_clock", true);
    json.field("transforms_per_sec", p.tps);
    json.field("modeled_cycles_total", p.modeled_cycles);
    json.field("modeled_cycles_per_limb", p.modeled_cycles_per_limb);
    json.field("verified", p.verified);
    json.end_object();
  }
  json.end_array();
}

int run_json(const std::string& path) {
  bool all_verified = true;
  const auto points = sweep(all_verified);
  if (!all_verified) {
    std::cerr << "bench aborted: an RNS product failed verification "
                 "against the CPU backend\n";
    return 1;
  }
  // Append mode (shared with the other host benches): splice the section
  // into an existing BENCH_host.json-style object, or write standalone.
  return bench::write_host_section(
      path, "bench_rns_limbs", "rns_limb_scaling",
      [&](bench::JsonWriter& json) { write_section(json, points); });
}

}  // namespace

constexpr const char* kUsage =
    "usage: bench_rns_limbs [--json [path]]\n"
    "  RNS multi-limb scaling: negacyclic products with limbs in {1,2,3,4},\n"
    "  one limb prime per bank, two heterogeneous engine passes per product.\n"
    "  --json [path]  append an rns_limb_scaling section to the\n"
    "                 BENCH_host.json-style object at path (or write a\n"
    "                 standalone report; \"-\"/no path = stdout)\n";

int main(int argc, char** argv) {
  const auto json_path = bench::consume_json_flag(argc, argv);
  bench::finish_flags(argc, argv, kUsage);
  if (json_path) return run_json(*json_path);

  bench::print_table1_header(
      "RNS multi-limb scaling (N = 1024, Nb = 4, one limb prime per bank)");

  bool all_verified = true;
  const auto points = sweep(all_verified);
  TablePrinter table({"limbs (=banks)", "products", "engine passes",
                      "modeled cycles", "cycles/limb", "host transforms/s",
                      "verified"});
  for (const auto& p : points)
    table.add_row({std::to_string(p.limbs), std::to_string(p.products),
                   std::to_string(p.engine_passes),
                   std::to_string(p.modeled_cycles),
                   TablePrinter::num(p.modeled_cycles_per_limb, 1),
                   TablePrinter::num(p.tps, 1), p.verified ? "YES" : "NO"});
  table.print(std::cout);
  std::cout << "\nEach product is two heterogeneous engine passes (all "
               "forward NTTs of both operands, then all inverse NTTs) with "
               "a different limb prime in every bank; cycles/limb falling "
               "with the limb count is bank-level parallelism applied to "
               "an RNS workload.\n";
  return all_verified ? EXIT_SUCCESS : EXIT_FAILURE;
}
